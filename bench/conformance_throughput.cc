/**
 * @file
 * Conformance harness throughput: generate seeded random designs and
 * push each through the full differential oracle matrix (engines,
 * resimulate-vs-reference, io round trip, serve echo), reporting
 * designs-checked-per-second and the divergence count. Emits
 * BENCH_conformance.json for CI trajectory tracking.
 *
 *   conformance_throughput [--seeds N] [--first S] [--jobs N]
 *                          [--probes K] [--json PATH]
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "batch/batch.hh"
#include "bench_util.hh"
#include "gen/conformance.hh"
#include "gen/generate.hh"
#include "support/stopwatch.hh"
#include "support/table.hh"

using namespace omnisim;

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    std::uint32_t seeds = 256;
    std::uint64_t first = 1;
    std::uint32_t jobs = 0;
    std::uint32_t probes = 4;
    std::string jsonPath = "BENCH_conformance.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--seeds") && i + 1 < argc)
            seeds = bench::parseArgU32("--seeds", argv[++i], 1u << 22);
        else if (!std::strcmp(argv[i], "--first") && i + 1 < argc) {
            // Seeds are full u64 (matching `omnisim_cli fuzz --seed`,
            // which also rejects signs and leaves first+i headroom).
            const char *text = argv[++i];
            char *end = nullptr;
            first = std::strtoull(text, &end, 10);
            if (*text == '-' || *text == '+' || end == text ||
                *end != '\0' ||
                first > ~std::uint64_t{0} - (1u << 24)) {
                std::fprintf(stderr, "--first expects an unsigned "
                             "integer, got '%s'\n", text);
                return 2;
            }
        }
        else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc)
            jobs = bench::parseArgU32("--jobs", argv[++i], 4096);
        else if (!std::strcmp(argv[i], "--probes") && i + 1 < argc)
            probes = bench::parseArgU32("--probes", argv[++i], 64);
        else if (!std::strcmp(argv[i], "--json") && i + 1 < argc)
            jsonPath = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: conformance_throughput [--seeds N] "
                         "[--first S] [--jobs N] [--probes K] "
                         "[--json PATH]\n");
            return 2;
        }
    }

    gen::ConformanceOptions copts;
    copts.resimProbes = probes;
    const gen::GenConfig cfg;

    struct Slot
    {
        char type = '?';
        SimStatus baseline = SimStatus::Ok;
        std::uint32_t probesRun = 0;
        bool clean = true;
    };
    std::vector<Slot> slots(seeds);

    Stopwatch sw;
    batch::BatchRunner runner({jobs});
    runner.forEachIndex(slots.size(), [&](std::size_t i) {
        const gen::GenSpec spec =
            gen::generateSpec(first + i, cfg);
        const gen::ConformanceReport rep =
            gen::checkConformance(spec, copts);
        slots[i] = {rep.designType, rep.baseline, rep.probesRun,
                    rep.clean()};
    });
    const double wall = sw.seconds();

    std::size_t typeA = 0, typeB = 0, typeC = 0, deadlocks = 0;
    std::size_t divergences = 0;
    std::uint64_t probesRun = 0;
    for (const Slot &s : slots) {
        typeA += s.type == 'A';
        typeB += s.type == 'B';
        typeC += s.type == 'C';
        deadlocks += s.baseline == SimStatus::Deadlock;
        divergences += !s.clean;
        probesRun += s.probesRun;
    }
    const double rate = wall > 0 ? seeds / wall : 0.0;

    TablePrinter t({"Seeds", "Type A", "Type B", "Type C", "Deadlocks",
                    "Probes", "Diverged", "Designs/s"});
    t.addRow({strf("%u", seeds), strf("%zu", typeA), strf("%zu", typeB),
              strf("%zu", typeC), strf("%zu", deadlocks),
              strf("%llu", static_cast<unsigned long long>(probesRun)),
              strf("%zu", divergences), strf("%.1f", rate)});
    t.print(std::cout);
    std::printf("%u generated designs through the full oracle matrix in "
                "%s (%u jobs)\n", seeds, bench::fmtSeconds(wall).c_str(),
                runner.jobs());

    bench::BenchJson json("conformance_throughput", jsonPath);
    json.key("seeds").num(seeds);
    json.key("first_seed").num(first);
    json.key("jobs").num(runner.jobs());
    json.key("probes_per_design").num(probes);
    json.key("wall_seconds").num(wall);
    json.key("designs_per_second").num(rate);
    json.key("divergences").num(divergences);
    json.key("type_a").num(typeA);
    json.key("type_b").num(typeB);
    json.key("type_c").num(typeC);
    json.key("deadlock_baselines").num(deadlocks);
    json.key("depth_probes").num(probesRun);
    return json.exitCode(divergences == 0);
}
