/**
 * @file
 * Reproduces Table 5 of the paper: OmniSim vs LightningSimV2 on the
 * Type A benchmark suite. Columns mirror the paper: LightningSim total,
 * OmniSim total split into front-end (FE) and multi-threaded execution
 * (MT), and the speedup. The shape to reproduce: parity on the small
 * kernels, clear OmniSim wins on the large dataflow designs (FlowGNN /
 * INR-Arch / SkyNet analogues) where the multi-threaded architecture
 * pays off. Emits BENCH_lightningsim.json (per-design times and the
 * geomean speedup) for the CI trajectory.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

namespace
{

/** Best-of-three wall-clock measurement of a callable. */
template <typename F>
double
bestOfThree(F &&f)
{
    double best = 1e100;
    for (int i = 0; i < 3; ++i) {
        Stopwatch sw;
        f();
        best = std::min(best, sw.seconds());
    }
    return best;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    std::cout << "Table 5: OmniSim vs LightningSimV2 on the Type A "
                 "suite\n\n";

    TablePrinter t({"Benchmark", "LSv2 Total", "OmniSim Total", "FE",
                    "MT", "Speedup", "Cycles equal"});
    GeomeanAccum speedups;
    BenchJson json("table5_lightningsim", "BENCH_lightningsim.json");
    json.json().key("designs").beginArray();
    for (const auto &e : designs::typeADesigns()) {
        // LightningSim end-to-end (front end + both phases).
        Cycles ls_cycles = 0;
        const double ls_time = bestOfThree([&] {
            FrontEndRun fe = runFrontEnd(e);
            const SimResult r = simulateLightningSim(fe.cd);
            ls_cycles = r.totalCycles;
        });

        // OmniSim end-to-end, with the FE/MT split of the paper.
        Cycles om_cycles = 0;
        double fe_time = 0;
        double mt_time = 0;
        const double om_time = bestOfThree([&] {
            Stopwatch total;
            FrontEndRun fe = runFrontEnd(e);
            fe_time = fe.seconds;
            Stopwatch mt;
            const SimResult r = simulateOmniSim(fe.cd);
            mt_time = mt.seconds();
            om_cycles = r.totalCycles;
            (void)total;
        });

        const double speedup = ls_time / om_time;
        speedups.add(speedup);
        json.json().beginObject();
        json.key("name").str(e.name);
        json.key("lightningsim_seconds").num(ls_time);
        json.key("omnisim_seconds").num(om_time);
        json.key("frontend_seconds").num(fe_time);
        json.key("multithread_seconds").num(mt_time);
        json.key("speedup").num(speedup);
        json.key("cycles_equal").boolean(ls_cycles == om_cycles);
        json.json().endObject();
        t.addRow({e.name, fmtSeconds(ls_time), fmtSeconds(om_time),
                  fmtSeconds(fe_time), fmtSeconds(mt_time),
                  fmtSpeedup(speedup),
                  ls_cycles == om_cycles ? "yes" : "NO"});
    }
    t.print(std::cout);
    std::cout << "\nGeomean speedup over LightningSimV2: "
              << fmtSpeedup(speedups.value())
              << "  (paper: 1.26x geomean; up to 6.61x on SkyNet)\n"
              << "Note: the paper's FE is dominated by clang-compiling "
                 "LLVM IR (~2 s); this reproduction's DSL front end is "
                 "microseconds, so totals are smaller across the board "
                 "while the relative MT behaviour is preserved.\n";
    json.json().endArray();
    json.key("speedup_geomean").num(speedups.value());
    return json.exitCode();
}
