/**
 * @file
 * DSE throughput over the design registry: run a budgeted grid
 * exploration of every registered design's joint FIFO depth space and
 * measure configurations per second plus the §7.2 incremental-hit rate
 * — the fraction of configurations served by constraint-checked
 * re-simulation instead of a full run, which is what makes
 * thousand-point searches cost milliseconds (Table 6's workflow at
 * scale).
 *
 * A second measurement isolates the compiled-run engine itself: for
 * each design, the same randomized depth probes are replayed through
 * resimulate() (CompiledRun delta relaxation) and through
 * resimulateReference() (the pre-compiled per-call full graph rebuild),
 * and the ratio is reported as the incremental-serving speedup.
 *
 * Results are written to BENCH_dse.json (configs/s, incremental-hit
 * rate, per-design and geomean resimulate speedup) so CI can track the
 * performance trajectory.
 *
 * Usage: dse_throughput [--budget N] [--jobs N] [--json PATH] [design ...]
 *   With no designs named, covers the full Type B/C + Type A registry.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "dse/dse.hh"
#include "support/prng.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

namespace
{

/** Timing of one engine's resimulate path over a fixed probe set. */
struct ResimTiming
{
    double compiledSeconds = 0;
    double referenceSeconds = 0;
    std::uint64_t probes = 0;
    std::uint64_t reused = 0;

    double
    speedup() const
    {
        return compiledSeconds > 0 ? referenceSeconds / compiledSeconds
                                   : 0.0;
    }
};

/**
 * Replay randomized depth probes through both resimulate paths of one
 * completed run. Probes mirror the grid's geometric 1..8 ladder with
 * occasional multi-FIFO changes — the shape a DSE search produces.
 */
ResimTiming
measureResim(const designs::DesignEntry &entry)
{
    ResimTiming rt;
    FrontEndRun fe = runFrontEnd(entry);
    OmniSim engine(fe.cd);
    if (engine.run().status != SimStatus::Ok)
        return rt;

    const std::size_t nfifos = fe.design->fifos().size();
    if (nfifos == 0)
        return rt; // nothing to resize — no incremental surface
    std::vector<std::uint32_t> base;
    for (const auto &f : fe.design->fifos())
        base.push_back(f.depth);

    Prng prng(0xd5eu + nfifos);
    std::vector<std::vector<std::uint32_t>> probes;
    for (int i = 0; i < 24; ++i) {
        std::vector<std::uint32_t> d = base;
        const std::size_t touches = 1 + prng.below(nfifos);
        for (std::size_t k = 0; k < touches; ++k)
            d[prng.below(nfifos)] = 1u << prng.below(4); // 1,2,4,8
        probes.push_back(std::move(d));
    }

    // The acceptance metric is throughput on *incrementally-served*
    // evaluations (the ones the EvalCache takes from the pool), so
    // probes that diverge — and fall back to a fresh engine run either
    // way — are classified first and excluded from the timing loops.
    std::vector<std::vector<std::uint32_t>> served;
    for (const auto &d : probes)
        if (engine.resimulate(d).reused)
            served.push_back(d);
    rt.probes = probes.size();
    rt.reused = served.size();
    if (served.empty())
        return rt;

    // Repeat until both paths accumulate measurable wall time.
    const int reps = 50;
    Stopwatch sw;
    for (int r = 0; r < reps; ++r)
        for (const auto &d : served)
            (void)engine.resimulate(d);
    rt.compiledSeconds = sw.seconds();
    Stopwatch swRef;
    for (int r = 0; r < reps; ++r)
        for (const auto &d : served)
            (void)engine.resimulateReference(d);
    rt.referenceSeconds = swRef.seconds();
    return rt;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);

    std::size_t budget = 32;
    unsigned jobs = 0;
    std::string jsonPath = "BENCH_dse.json";
    std::vector<std::string> only;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--budget" && i + 1 < argc)
            budget = parseArgU32("--budget", argv[++i], 1u << 24);
        else if (arg == "--jobs" && i + 1 < argc)
            jobs = parseArgU32("--jobs", argv[++i], 4096);
        else if (arg == "--json" && i + 1 < argc)
            jsonPath = argv[++i];
        else
            only.push_back(arg);
    }

    const std::vector<const designs::DesignEntry *> entries =
        registrySuite(only);

    std::cout << "Grid DSE over every design's joint FIFO depth space "
                 "(geometric 1..8 per FIFO,\nbudget "
              << budget << " configs per design)\n\n";

    BenchJson json("dse_throughput", jsonPath);
    json.key("budget").num(budget);
    json.json().key("designs").beginArray();

    TablePrinter t({"Design", "Fifos", "Evals", "Incr", "Full", "Hit%",
                    "Wall", "Cfg/s", "Resim-speedup"});
    std::size_t totalEvals = 0, totalIncr = 0, totalFull = 0;
    double totalWall = 0.0;
    GeomeanAccum speedups;
    for (const auto *e : entries) {
        dse::DseOptions opts;
        opts.strategy = "grid";
        opts.budget = budget;
        opts.jobs = jobs;
        const Design probe = e->build();
        for (const auto &f : probe.fifos())
            opts.space.fifos.push_back({f.name, 1, 8, true});

        const dse::DseReport rep = dse::explore(e->name, e->build, opts);
        const ResimTiming rt = measureResim(*e);
        speedups.add(rt.speedup());
        totalEvals += rep.evaluations.size();
        totalIncr += rep.incrementalHits;
        totalFull += rep.fullRuns;
        totalWall += rep.wallSeconds;
        t.addRow({e->name, strf("%zu", opts.space.fifos.size()),
                  strf("%zu", rep.evaluations.size()),
                  strf("%zu", rep.incrementalHits),
                  strf("%zu", rep.fullRuns),
                  strf("%.1f", rep.hitRate() * 100.0),
                  fmtSeconds(rep.wallSeconds),
                  strf("%.1f", rep.configsPerSecond()),
                  rt.speedup() > 0 ? strf("%.1fx", rt.speedup()) : "-"});

        json.json().beginObject();
        json.key("name").str(e->name);
        json.key("fifos").num(opts.space.fifos.size());
        json.key("evaluations").num(rep.evaluations.size());
        json.key("incremental_hits").num(rep.incrementalHits);
        json.key("full_runs").num(rep.fullRuns);
        json.key("incremental_hit_rate").num(rep.hitRate());
        json.key("wall_seconds").num(rep.wallSeconds);
        json.key("configs_per_second").num(rep.configsPerSecond());
        json.key("resim_probes").num(rt.probes);
        json.key("resim_reused").num(rt.reused);
        json.key("resim_compiled_seconds").num(rt.compiledSeconds);
        json.key("resim_reference_seconds").num(rt.referenceSeconds);
        json.key("resim_speedup_vs_full_rebuild").num(rt.speedup());
        json.json().endObject();
    }
    json.json().endArray();
    t.print(std::cout);

    const std::size_t served = totalIncr + totalFull;
    const double hitRate =
        served ? static_cast<double>(totalIncr) /
                     static_cast<double>(served)
               : 0.0;
    const double cfgPerS =
        totalWall > 0.0 ? static_cast<double>(totalEvals) / totalWall : 0.0;
    const double speedupGeomean = speedups.value();
    std::cout << "\n"
              << totalEvals << " configurations across " << entries.size()
              << " designs in " << fmtSeconds(totalWall) << " ("
              << strf("%.1f", cfgPerS)
              << " configs/s); incremental-hit rate "
              << strf("%.1f%%", hitRate * 100.0)
              << "\ncompiled resimulate() vs per-call full rebuild: "
              << strf("%.1fx", speedupGeomean) << " geomean speedup\n";

    json.key("totals").beginObject();
    json.key("designs").num(entries.size());
    json.key("evaluations").num(totalEvals);
    json.key("incremental_hits").num(totalIncr);
    json.key("full_runs").num(totalFull);
    json.key("incremental_hit_rate").num(hitRate);
    json.key("wall_seconds").num(totalWall);
    json.key("configs_per_second").num(cfgPerS);
    json.key("resim_speedup_geomean").num(speedupGeomean);
    json.json().endObject();
    return json.exitCode();
}
