/**
 * @file
 * DSE throughput over the design registry: run a budgeted grid
 * exploration of every registered design's joint FIFO depth space and
 * measure configurations per second plus the §7.2 incremental-hit rate
 * — the fraction of configurations served by constraint-checked
 * re-simulation instead of a full run, which is what makes
 * thousand-point searches cost milliseconds (Table 6's workflow at
 * scale).
 *
 * Usage: dse_throughput [--budget N] [--jobs N] [design ...]
 *   With no designs named, covers the full Type B/C + Type A registry.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "dse/dse.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

int
main(int argc, char **argv)
{
    setLogQuiet(true);

    std::size_t budget = 32;
    unsigned jobs = 0;
    std::vector<std::string> only;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--budget" && i + 1 < argc)
            budget = std::strtoul(argv[++i], nullptr, 10);
        else if (arg == "--jobs" && i + 1 < argc)
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        else
            only.push_back(arg);
    }

    std::vector<const designs::DesignEntry *> entries;
    if (only.empty()) {
        for (const auto *suite :
             {&designs::typeBCDesigns(), &designs::typeADesigns()})
            for (const auto &e : *suite)
                entries.push_back(&e);
    } else {
        for (const std::string &name : only)
            entries.push_back(&designs::findDesign(name));
    }

    std::cout << "Grid DSE over every design's joint FIFO depth space "
                 "(geometric 1..8 per FIFO,\nbudget "
              << budget << " configs per design)\n\n";

    TablePrinter t({"Design", "Fifos", "Evals", "Incr", "Full", "Hit%",
                    "Wall", "Cfg/s"});
    std::size_t totalEvals = 0, totalIncr = 0, totalFull = 0;
    double totalWall = 0.0;
    for (const auto *e : entries) {
        dse::DseOptions opts;
        opts.strategy = "grid";
        opts.budget = budget;
        opts.jobs = jobs;
        const Design probe = e->build();
        for (const auto &f : probe.fifos())
            opts.space.fifos.push_back({f.name, 1, 8, true});

        const dse::DseReport rep = dse::explore(e->name, e->build, opts);
        totalEvals += rep.evaluations.size();
        totalIncr += rep.incrementalHits;
        totalFull += rep.fullRuns;
        totalWall += rep.wallSeconds;
        t.addRow({e->name, strf("%zu", opts.space.fifos.size()),
                  strf("%zu", rep.evaluations.size()),
                  strf("%zu", rep.incrementalHits),
                  strf("%zu", rep.fullRuns),
                  strf("%.1f", rep.hitRate() * 100.0),
                  fmtSeconds(rep.wallSeconds),
                  strf("%.1f", rep.configsPerSecond())});
    }
    t.print(std::cout);

    const std::size_t served = totalIncr + totalFull;
    std::cout << "\n"
              << totalEvals << " configurations across " << entries.size()
              << " designs in " << fmtSeconds(totalWall) << " ("
              << strf("%.1f", totalWall > 0.0
                                  ? static_cast<double>(totalEvals) /
                                        totalWall
                                  : 0.0)
              << " configs/s); incremental-hit rate "
              << strf("%.1f%%",
                      served ? 100.0 * static_cast<double>(totalIncr) /
                                   static_cast<double>(served)
                             : 0.0)
              << "\n";
    return 0;
}
