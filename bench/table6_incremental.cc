/**
 * @file
 * Reproduces Table 6 of the paper: incremental re-simulation of
 * fig4_ex5 under changed FIFO depths.
 *
 *  - initial run with depths (2,2);
 *  - (2,100): deepening the overflow FIFO violates no recorded query
 *    constraint, so the simulation graph is reused and re-finalized in
 *    microseconds (the paper measures 77.86 us, a ~2.7e4x speedup);
 *  - (100,2): deepening the first-choice FIFO flips previously-failed
 *    NB writes, so the graph cannot be reused and a full multi-threaded
 *    re-run is needed — still faster than a from-scratch run because
 *    the compiled design is reused (paper: 6.77x).
 *
 * Emits BENCH_incremental.json (times and speedups for each row) so CI
 * can track the incremental-path trajectory.
 */

#include <iostream>

#include "bench_util.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

int
main()
{
    setLogQuiet(true);
    std::cout << "Table 6: incremental re-simulation of fig4_ex5 under "
                 "different FIFO depths\n\n";

    const auto &entry = designs::findDesign("fig4_ex5");

    // Initial run, depths (2,2) — includes front-end compilation.
    Stopwatch init_sw;
    FrontEndRun fe = runFrontEnd(entry);
    Stopwatch mt_sw;
    OmniSim engine(fe.cd);
    const SimResult initial = engine.run();
    const double mt_time = mt_sw.seconds();
    const double init_time = init_sw.seconds();
    if (initial.status != SimStatus::Ok) {
        std::cerr << "initial run failed\n";
        return 1;
    }

    BenchJson json("table6_incremental", "BENCH_incremental.json");
    json.key("design").str(entry.name);
    json.key("initial_seconds").num(init_time);
    json.key("frontend_seconds").num(fe.seconds);
    json.key("multithread_seconds").num(mt_time);

    TablePrinter t({"Description", "Depths", "Incr. time", "OK?",
                    "FE", "MT", "Total", "Speedup"});
    t.addRow({"Initial run", "(2, 2)", "-", "-",
              fmtSeconds(fe.seconds), fmtSeconds(mt_time),
              fmtSeconds(init_time), "-"});

    // --- Row 2: constraint-satisfying change -> reuse ----------------
    {
        Stopwatch sw;
        const IncrementalOutcome inc = engine.resimulate({2, 100});
        const double inc_time = sw.seconds();
        t.addRow({"Incremental", "(2, 100)", fmtSeconds(inc_time),
                  inc.reused ? "yes" : "NO", "-", "-",
                  fmtSeconds(inc_time),
                  strf("(%.0fx)", init_time / inc_time)});
        if (inc.reused) {
            std::cout << "  (2,100) reused graph: "
                      << initial.totalCycles << " -> "
                      << inc.result.totalCycles << " cycles\n";
        } else {
            std::cout << "  (2,100) UNEXPECTEDLY not reused: "
                      << inc.reason << "\n";
        }
        json.key("incremental").beginObject();
        json.key("reused").boolean(inc.reused);
        json.key("via_delta").boolean(inc.viaDelta);
        json.key("seconds").num(inc_time);
        json.key("speedup_vs_initial")
            .num(inc_time > 0.0 ? init_time / inc_time : 0.0);
        json.json().endObject();
    }

    // --- Row 3: constraint-violating change -> full MT re-run --------
    {
        Stopwatch check_sw;
        const IncrementalOutcome inc = engine.resimulate({100, 2});
        const double check_time = check_sw.seconds();

        Design d2 = entry.build();
        d2.setFifoDepth(0, 100);
        d2.setFifoDepth(1, 2);
        const CompiledDesign cd2 = compile(d2); // reuse "compiled" design
        Stopwatch rerun_sw;
        const SimResult rerun = simulateOmniSim(cd2);
        const double rerun_time = rerun_sw.seconds();

        t.addRow({"Non-incremental", "(100, 2)", fmtSeconds(check_time),
                  inc.reused ? "REUSED?!" : "no", "-",
                  fmtSeconds(rerun_time),
                  fmtSeconds(check_time + rerun_time),
                  strf("(%.1fx)",
                       init_time / (check_time + rerun_time))});
        std::cout << "  (100,2) constraint check: "
                  << (inc.reused ? "reused (unexpected)" : inc.reason)
                  << "\n  full re-run: " << rerun.totalCycles
                  << " cycles, P1/P2 = "
                  << rerun.scalar("processed_by_P1") << "/"
                  << rerun.scalar("processed_by_P2") << "\n";
        json.key("non_incremental").beginObject();
        json.key("reused").boolean(inc.reused);
        json.key("check_seconds").num(check_time);
        json.key("rerun_seconds").num(rerun_time);
        json.key("speedup_vs_initial")
            .num(check_time + rerun_time > 0.0
                     ? init_time / (check_time + rerun_time)
                     : 0.0);
        json.json().endObject();
    }

    std::cout << "\n";
    t.print(std::cout);
    std::cout << "\nPaper reference: initial 2.10 s; incremental "
                 "77.86 us (2.7e4x); non-incremental 0.31 s (6.77x).\n";
    return json.exitCode();
}
