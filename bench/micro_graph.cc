/**
 * @file
 * google-benchmark micro-benchmarks for the §7.3.1 graph-representation
 * discussion: adjacency-list SimGraph (grow + traverse while building)
 * vs CSR (bulk build, fast traversal) — plus FIFO-table and TimingModel
 * hot-path costs.
 */

#include <benchmark/benchmark.h>

#include "graph/csr.hh"
#include "graph/longest_path.hh"
#include "graph/simgraph.hh"
#include "runtime/fifo_table.hh"
#include "runtime/timing.hh"
#include "support/prng.hh"

namespace omnisim
{
namespace
{

std::vector<CsrGraph::EdgeSpec>
randomDag(std::size_t n, Prng &prng)
{
    std::vector<CsrGraph::EdgeSpec> edges;
    edges.reserve(n * 2);
    for (std::size_t i = 1; i < n; ++i) {
        const int fanin = 1 + static_cast<int>(prng.below(2));
        for (int k = 0; k < fanin; ++k)
            edges.push_back({prng.below(i), i, prng.below(4)});
    }
    return edges;
}

void
BM_SimGraphBuildAndPath(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Prng prng(7);
    const auto edges = randomDag(n, prng);
    std::vector<Cycles> seed(n, 0);
    seed[0] = 1;
    for (auto _ : state) {
        SimGraph g;
        g.reserve(n, edges.size());
        for (std::size_t i = 0; i < n; ++i)
            g.addNode(NodeInfo{});
        for (const auto &e : edges)
            g.addEdge(e.src, e.dst, e.weight);
        auto pr = longestPath(g, seed);
        benchmark::DoNotOptimize(pr.time.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_SimGraphBuildAndPath)->Arg(1 << 12)->Arg(1 << 16);

void
BM_CsrBuildAndPath(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    Prng prng(7);
    const auto edges = randomDag(n, prng);
    std::vector<Cycles> seed(n, 0);
    seed[0] = 1;
    for (auto _ : state) {
        CsrGraph g(n, edges);
        auto pr = longestPath(g, seed);
        benchmark::DoNotOptimize(pr.time.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(edges.size()));
}
BENCHMARK(BM_CsrBuildAndPath)->Arg(1 << 12)->Arg(1 << 16);

void
BM_SimGraphPartialTraversal(benchmark::State &state)
{
    // The access pattern OmniSim needs: traverse repeatedly while the
    // graph keeps growing (zero-copy partial traversal).
    const auto n = static_cast<std::size_t>(state.range(0));
    Prng prng(9);
    const auto edges = randomDag(n, prng);
    for (auto _ : state) {
        SimGraph g;
        g.reserve(n, edges.size());
        std::size_t added_nodes = 0;
        std::size_t added_edges = 0;
        std::uint64_t sum = 0;
        const std::size_t chunk = n / 8;
        while (added_nodes < n) {
            const std::size_t upto =
                std::min(n, added_nodes + chunk);
            for (; added_nodes < upto; ++added_nodes)
                g.addNode(NodeInfo{});
            while (added_edges < edges.size() &&
                   edges[added_edges].dst < added_nodes) {
                g.addEdge(edges[added_edges].src,
                          edges[added_edges].dst,
                          edges[added_edges].weight);
                ++added_edges;
            }
            // Query pass over the partial graph.
            for (std::size_t v = 0; v < added_nodes; v += 17)
                g.forEachOut(v, [&](std::uint64_t d, Cycles w) {
                    sum += d + w;
                });
        }
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_SimGraphPartialTraversal)->Arg(1 << 14);

void
BM_FifoTableCommit(benchmark::State &state)
{
    for (auto _ : state) {
        FifoTable t;
        for (std::uint32_t i = 0; i < 4096; ++i) {
            t.commitWrite(i, i + 1, i);
            t.commitRead(i + 2, i);
        }
        benchmark::DoNotOptimize(t.reads());
    }
    state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_FifoTableCommit);

void
BM_TimingModelPipeline(benchmark::State &state)
{
    for (auto _ : state) {
        TimingModel tm(0, 1);
        tm.pipelineBegin(2);
        for (int i = 0; i < 4096; ++i) {
            tm.iterBegin();
            tm.commitOp(tm.earliest(), 1, static_cast<std::uint64_t>(i));
            tm.commitOp(tm.earliest(), 1,
                        static_cast<std::uint64_t>(i) | (1ull << 32));
        }
        tm.pipelineEnd();
        benchmark::DoNotOptimize(tm.now());
    }
    state.SetItemsProcessed(state.iterations() * 8192);
}
BENCHMARK(BM_TimingModelPipeline);

} // namespace
} // namespace omnisim

BENCHMARK_MAIN();
