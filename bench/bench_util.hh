/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the paper's
 * tables and figures.
 */

#ifndef OMNISIM_BENCH_BENCH_UTIL_HH
#define OMNISIM_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "core/omnisim.hh"
#include "cosim/cosim.hh"
#include "csim/csim.hh"
#include "design/frontend.hh"
#include "designs/common.hh"
#include "lightningsim/lightningsim.hh"
#include "support/logging.hh"
#include "support/stats.hh"
#include "support/stopwatch.hh"

namespace omnisim::bench
{

/**
 * Checked unsigned argv value for bench harnesses: exit 2 on junk or
 * out-of-range input rather than a silent strtoul truncation into the
 * 32-bit destination (the CLI's parseUnsigned/parseU32 equivalent for
 * binaries without a UsageError path).
 */
inline std::uint32_t
parseArgU32(const char *flag, const char *text, unsigned long long max)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || v > max) {
        std::fprintf(stderr, "%s expects an integer in [0, %llu], got "
                     "'%s'\n", flag, max, text);
        std::exit(2);
    }
    return static_cast<std::uint32_t>(v);
}

/** Format seconds with sensible units. */
inline std::string
fmtSeconds(double s)
{
    if (s < 1e-3)
        return strf("%.2f us", s * 1e6);
    if (s < 1.0)
        return strf("%.2f ms", s * 1e3);
    return strf("%.2f s", s);
}

/** Format a speedup factor. */
inline std::string
fmtSpeedup(double x)
{
    return strf("%.2fx", x);
}

/**
 * The design set a registry-wide harness covers: the full Type B/C +
 * Type A suites when @p only is empty, otherwise the named subset
 * (findDesign exits with a listing on an unknown name).
 */
inline std::vector<const designs::DesignEntry *>
registrySuite(const std::vector<std::string> &only)
{
    std::vector<const designs::DesignEntry *> entries;
    if (only.empty()) {
        for (const auto *suite :
             {&designs::typeBCDesigns(), &designs::typeADesigns()})
            for (const auto &e : *suite)
                entries.push_back(&e);
    } else {
        for (const std::string &name : only)
            entries.push_back(&designs::findDesign(name));
    }
    return entries;
}

/**
 * Per-design factor samples and the registry geomean every harness
 * headlines. Only finite positive samples count — a skipped design
 * (zero wall clock, non-Ok status) contributes nothing rather than
 * zeroing the product.
 */
class GeomeanAccum
{
  public:
    void
    add(double x)
    {
        if (std::isfinite(x) && x > 0.0)
            xs_.push_back(x);
    }

    std::size_t samples() const { return xs_.size(); }
    double value() const { return geomean(xs_); }
    const std::vector<double> &samplesVec() const { return xs_; }

  private:
    std::vector<double> xs_;
};

/** Compact functional summary of a run (the Table 3 cell contents). */
inline std::string
describeRun(const SimResult &r)
{
    switch (r.status) {
      case SimStatus::Crash:
        return "@E Simulation failed: SIGSEGV.";
      case SimStatus::Deadlock:
        return "DEADLOCK DETECTED";
      case SimStatus::Timeout:
        return "(hangs; op watchdog)";
      case SimStatus::Unsupported:
        return "(unsupported)";
      case SimStatus::Ok:
        break;
    }
    std::string out;
    for (const auto &[name, vals] : r.memories) {
        if (vals.size() != 1)
            continue; // scalars only; arrays are checked by tests
        if (!out.empty())
            out += "; ";
        out += strf("%s = %lld", name.c_str(),
                    static_cast<long long>(vals[0]));
    }
    for (const auto &w : r.warnings) {
        if (w.find("read while empty") != std::string::npos) {
            out = "WARNING(read-empty); " + out;
            break;
        }
    }
    for (const auto &w : r.warnings) {
        if (w.find("leftover") != std::string::npos) {
            out += "; WARNING(leftover)";
            break;
        }
    }
    return out;
}

/**
 * Minimal JSON document builder for the machine-readable BENCH_*.json
 * files every harness emits alongside its human-readable table, so CI
 * can track the performance trajectory. Values are appended in call
 * order; the builder inserts commas and closes scopes. No dependency,
 * no escaping beyond the characters bench output actually uses.
 */
class JsonWriter
{
  public:
    JsonWriter() { out_ += '{'; }

    JsonWriter &
    key(const std::string &k)
    {
        comma();
        out_ += quote(k) + ":";
        fresh_ = true;
        return *this;
    }

    JsonWriter &str(const std::string &v) { return raw(quote(v)); }

    /** Non-finite doubles (a zero-wall-clock division) become 0 —
     *  bare `inf`/`nan` tokens are not valid JSON. */
    JsonWriter &
    num(double v)
    {
        return raw(std::isfinite(v) ? strf("%.6g", v) : "0");
    }

    /** Any integral count (size_t, uint64_t, unsigned, ...). */
    template <typename Int,
              typename = std::enable_if_t<std::is_integral_v<Int>>>
    JsonWriter &
    num(Int v)
    {
        return raw(strf("%llu", static_cast<unsigned long long>(v)));
    }

    JsonWriter &boolean(bool v) { return raw(v ? "true" : "false"); }

    JsonWriter &beginObject() { return open('{'); }
    JsonWriter &endObject() { return close('}'); }
    JsonWriter &beginArray() { return open('['); }
    JsonWriter &endArray() { return close(']'); }

    /** Close the top-level object and return the document. */
    std::string
    finish()
    {
        out_ += '}';
        return out_;
    }

    /** finish() into a file; reports success on stdout for CI logs. */
    bool
    writeFile(const std::string &path)
    {
        const std::string doc = finish();
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return false;
        }
        std::fputs(doc.c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
        return true;
    }

  private:
    static std::string
    quote(const std::string &s)
    {
        std::string q = "\"";
        for (const char c : s) {
            if (c == '"' || c == '\\')
                q += '\\';
            q += c;
        }
        return q + "\"";
    }

    void
    comma()
    {
        if (!fresh_)
            out_ += ',';
        fresh_ = false;
    }

    JsonWriter &
    raw(const std::string &v)
    {
        if (!fresh_)
            out_ += ',';
        out_ += v;
        fresh_ = false;
        return *this;
    }

    JsonWriter &
    open(char c)
    {
        if (!fresh_)
            out_ += ',';
        out_ += c;
        fresh_ = true;
        return *this;
    }

    JsonWriter &
    close(char c)
    {
        out_ += c;
        fresh_ = false;
        return *this;
    }

    std::string out_;
    bool fresh_ = true;
};

/**
 * The shared frame of every BENCH_*.json trajectory file: a JsonWriter
 * pre-seeded with the "bench" identity key, the output path (after any
 * --json override), and the write-plus-gate exit code main() returns —
 * so a harness cannot forget the identity key, report success without
 * the file landing, or pass CI with its acceptance gate failed.
 */
class BenchJson
{
  public:
    BenchJson(const std::string &bench, std::string path)
        : path_(std::move(path))
    {
        json_.key("bench").str(bench);
    }

    JsonWriter &json() { return json_; }
    JsonWriter &key(const std::string &k) { return json_.key(k); }

    /** Write the document; 0 only when it landed AND the gate held. */
    int
    exitCode(bool pass = true)
    {
        return json_.writeFile(path_) && pass ? 0 : 1;
    }

  private:
    JsonWriter json_;
    std::string path_;
};

/**
 * Timed front-end compilation: design construction (including any static
 * scheduling the builder performs) plus validation/classification. The
 * design is heap-allocated so CompiledDesign's pointer stays stable.
 */
struct FrontEndRun
{
    std::unique_ptr<Design> design;
    CompiledDesign cd;
    double seconds = 0;
};

inline FrontEndRun
runFrontEnd(const designs::DesignEntry &e)
{
    Stopwatch sw;
    FrontEndRun fe;
    fe.design = std::make_unique<Design>(e.build());
    fe.cd = compile(*fe.design);
    fe.seconds = sw.seconds();
    return fe;
}

} // namespace omnisim::bench

#endif // OMNISIM_BENCH_BENCH_UTIL_HH
