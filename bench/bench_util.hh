/**
 * @file
 * Shared helpers for the benchmark harnesses that regenerate the paper's
 * tables and figures.
 */

#ifndef OMNISIM_BENCH_BENCH_UTIL_HH
#define OMNISIM_BENCH_BENCH_UTIL_HH

#include <memory>
#include <string>

#include "core/omnisim.hh"
#include "cosim/cosim.hh"
#include "csim/csim.hh"
#include "design/frontend.hh"
#include "designs/common.hh"
#include "lightningsim/lightningsim.hh"
#include "support/logging.hh"
#include "support/stopwatch.hh"

namespace omnisim::bench
{

/** Format seconds with sensible units. */
inline std::string
fmtSeconds(double s)
{
    if (s < 1e-3)
        return strf("%.2f us", s * 1e6);
    if (s < 1.0)
        return strf("%.2f ms", s * 1e3);
    return strf("%.2f s", s);
}

/** Format a speedup factor. */
inline std::string
fmtSpeedup(double x)
{
    return strf("%.2fx", x);
}

/** Compact functional summary of a run (the Table 3 cell contents). */
inline std::string
describeRun(const SimResult &r)
{
    switch (r.status) {
      case SimStatus::Crash:
        return "@E Simulation failed: SIGSEGV.";
      case SimStatus::Deadlock:
        return "DEADLOCK DETECTED";
      case SimStatus::Timeout:
        return "(hangs; op watchdog)";
      case SimStatus::Unsupported:
        return "(unsupported)";
      case SimStatus::Ok:
        break;
    }
    std::string out;
    for (const auto &[name, vals] : r.memories) {
        if (vals.size() != 1)
            continue; // scalars only; arrays are checked by tests
        if (!out.empty())
            out += "; ";
        out += strf("%s = %lld", name.c_str(),
                    static_cast<long long>(vals[0]));
    }
    for (const auto &w : r.warnings) {
        if (w.find("read while empty") != std::string::npos) {
            out = "WARNING(read-empty); " + out;
            break;
        }
    }
    for (const auto &w : r.warnings) {
        if (w.find("leftover") != std::string::npos) {
            out += "; WARNING(leftover)";
            break;
        }
    }
    return out;
}

/**
 * Timed front-end compilation: design construction (including any static
 * scheduling the builder performs) plus validation/classification. The
 * design is heap-allocated so CompiledDesign's pointer stays stable.
 */
struct FrontEndRun
{
    std::unique_ptr<Design> design;
    CompiledDesign cd;
    double seconds = 0;
};

inline FrontEndRun
runFrontEnd(const designs::DesignEntry &e)
{
    Stopwatch sw;
    FrontEndRun fe;
    fe.design = std::make_unique<Design>(e.build());
    fe.cd = compile(*fe.design);
    fe.seconds = sw.seconds();
    return fe;
}

} // namespace omnisim::bench

#endif // OMNISIM_BENCH_BENCH_UTIL_HH
