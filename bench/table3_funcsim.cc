/**
 * @file
 * Reproduces Table 3 of the paper: functionality-simulation outputs of
 * C-sim, Co-sim and OmniSim across the eleven Type B/C designs. The
 * property to check: C-sim crashes or silently mis-computes on every
 * design, while OmniSim matches Co-sim exactly.
 */

#include <iostream>

#include "bench_util.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

int
main()
{
    setLogQuiet(true);
    std::cout << "Table 3: Func Sim comparison across C-sim, Co-sim and "
                 "OmniSim (Type B/C designs)\n\n";

    TablePrinter t({"Design", "C-sim", "Co-sim", "OmniSim", "Match"});
    int matches = 0;
    for (const auto &e : designs::typeBCDesigns()) {
        FrontEndRun fe = runFrontEnd(e);

        const SimResult cs = simulateCSim(fe.cd);

        CosimOptions co_opts;
        co_opts.modelRtlCost = false; // functional comparison only
        const SimResult co = simulateCosim(fe.cd, co_opts);

        const SimResult om = simulateOmniSim(fe.cd);

        const bool match =
            om.status == co.status && om.memories == co.memories &&
            (co.status != SimStatus::Ok ||
             om.totalCycles == co.totalCycles);
        matches += match;

        t.addRow({e.name, describeRun(cs), describeRun(co),
                  describeRun(om), match ? "exact" : "MISMATCH"});
    }
    t.print(std::cout);
    std::cout << "\nOmniSim matched Co-sim on " << matches << "/"
              << designs::typeBCDesigns().size() << " designs "
              << "(paper: 11/11; C-sim is wrong on all of them).\n";
    return 0;
}
