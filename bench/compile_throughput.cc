/**
 * @file
 * Graph-compilation pipeline effectiveness and cost over the design
 * registry (the tentpole of the src/opt/ work): how much of each
 * frozen run's graph the -O1 pass pipeline eliminates, what that
 * costs at cold-simulate time, and what it buys back when a stored
 * run is rehydrated.
 *
 * For every registry design whose baseline run completes Ok:
 *
 *   elimination — CompileStats of the engine's own -O1 freeze:
 *           nodes/edges/constraints before and after, with the
 *           per-pass breakdown (lattice-prune / chain-collapse /
 *           dedup). The acceptance gate is a >= 25% registry geomean
 *           of the per-design node+edge elimination fraction.
 *   cold simulate — end-to-end run() wall time at -O0 vs -O1 (the
 *           pipeline runs inside the freeze, so this prices the
 *           passes themselves).
 *   rehydration — StoredRun::open() wall time on a v2 image (no
 *           layout section: recompile through the passes on load)
 *           vs a v3 image (persisted layout: decode + validate
 *           only), the cross-process payoff of persisting the
 *           compiled form.
 *
 * Results land in BENCH_compile.json (per-design counters, per-pass
 * breakdown, timing columns, totals with the elimination geomean)
 * for the CI trajectory; exit status enforces the >= 25% gate.
 *
 * Usage: compile_throughput [--reps N] [--json PATH] [--store DIR]
 *                           [design ...]
 */

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "io/run_io.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

namespace
{

namespace fs = std::filesystem;

/** The acceptance bar: registry geomean node+edge elimination. */
constexpr double kMinEliminationGeomean = 0.25;

bool
writeImage(const std::string &path, const std::string &image)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const bool wrote =
        std::fwrite(image.data(), 1, image.size(), f) == image.size();
    return std::fclose(f) == 0 && wrote;
}

/** Mean seconds of one StoredRun::open over @p reps repetitions. */
double
timeRehydrate(const std::string &path, unsigned reps)
{
    Stopwatch sw;
    for (unsigned r = 0; r < reps; ++r)
        (void)io::StoredRun::open(path);
    return sw.seconds() / reps;
}

void
emitPasses(JsonWriter &json, const opt::CompileStats &stats)
{
    json.key("passes").beginArray();
    for (const auto &p : stats.passes) {
        json.beginObject();
        json.key("pass").str(p.pass);
        json.key("nodes_eliminated").num(p.nodesEliminated);
        json.key("edges_eliminated").num(p.edgesEliminated);
        json.key("constraints_eliminated").num(p.constraintsEliminated);
        json.endObject();
    }
    json.endArray();
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);

    unsigned reps = 5;
    std::string jsonPath = "BENCH_compile.json";
    std::string storeDir = "compile_bench_store";
    std::vector<std::string> only;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--reps" && i + 1 < argc)
            reps = parseArgU32("--reps", argv[++i], 1u << 16);
        else if (arg == "--json" && i + 1 < argc)
            jsonPath = argv[++i];
        else if (arg == "--store" && i + 1 < argc)
            storeDir = argv[++i];
        else
            only.push_back(arg);
    }
    reps = std::max(1u, reps);

    const std::vector<const designs::DesignEntry *> entries =
        registrySuite(only);

    std::cout << "Graph compilation pipeline over the design registry "
                 "(-O1 freeze vs -O0,\nv3 layout rehydration vs v2 "
                 "recompile-on-load)\n\n";

    fs::create_directories(storeDir);

    BenchJson json("compile_throughput", jsonPath);
    json.key("reps").num(reps);
    json.json().key("designs").beginArray();

    TablePrinter t({"Design", "Nodes", "Edges", "Cons", "Elim%",
                    "Sim O0", "Sim O1", "Rehyd v2", "Rehyd v3"});
    GeomeanAccum eliminations;
    opt::CompileStats totals;
    bool firstTotal = true;
    std::size_t covered = 0, skipped = 0;
    for (const auto *e : entries) {
        FrontEndRun fe = runFrontEnd(*e);

        // Cold -O1 simulate: the pipeline runs inside the freeze.
        Stopwatch o1Sw;
        OmniSim o1(fe.cd);
        const SimResult r1 = o1.run();
        const double o1Seconds = o1Sw.seconds();
        if (r1.status != SimStatus::Ok) {
            ++skipped; // deadlock registry entries have no frozen run
            t.addRow({e->name, "-", "-", "-", "-",
                      simStatusName(r1.status), "-", "-", "-"});
            continue;
        }
        ++covered;
        const opt::CompileStats stats = o1.compileStats();

        // Cold -O0 simulate: identical trace, identity freeze.
        OmniSimOptions o0Opts;
        o0Opts.optLevel = opt::OptLevel::O0;
        Stopwatch o0Sw;
        OmniSim o0(fe.cd, o0Opts);
        (void)o0.run();
        const double o0Seconds = o0Sw.seconds();

        // Rehydration: v3 (persisted layout) vs v2 (recompile on load).
        RunSnapshot snap;
        if (!o1.exportSnapshot(snap)) {
            std::cerr << e->name << ": exportSnapshot failed\n";
            return 1;
        }
        io::RunFileMeta meta;
        meta.design = e->name;
        meta.engine = "omnisim";
        meta.fingerprint = io::designFingerprint(*fe.design);
        const std::string v3Path = storeDir + "/" + e->name + ".v3.run";
        const std::string v2Path = storeDir + "/" + e->name + ".v2.run";
        if (!writeImage(v3Path, io::encodeRun(meta, snap)) ||
            !writeImage(v2Path, io::encodeRunV2(meta, snap))) {
            std::cerr << "cannot write run images under " << storeDir
                      << "\n";
            return 1;
        }
        const double v2Seconds = timeRehydrate(v2Path, reps);
        const double v3Seconds = timeRehydrate(v3Path, reps);

        eliminations.add(stats.elimination());
        if (firstTotal) {
            totals = stats;
            firstTotal = false;
        } else {
            totals.accumulate(stats);
        }

        t.addRow({e->name,
                  strf("%llu -> %llu",
                       static_cast<unsigned long long>(stats.origNodes),
                       static_cast<unsigned long long>(stats.optNodes)),
                  strf("%llu -> %llu",
                       static_cast<unsigned long long>(stats.origEdges),
                       static_cast<unsigned long long>(stats.optEdges)),
                  strf("%llu -> %llu",
                       static_cast<unsigned long long>(
                           stats.origConstraints),
                       static_cast<unsigned long long>(
                           stats.keptConstraints)),
                  strf("%.1f", stats.elimination() * 100.0),
                  fmtSeconds(o0Seconds), fmtSeconds(o1Seconds),
                  fmtSeconds(v2Seconds), fmtSeconds(v3Seconds)});

        json.json().beginObject();
        json.key("name").str(e->name);
        json.key("level").str(optLevelName(stats.level));
        json.key("orig_nodes").num(stats.origNodes);
        json.key("opt_nodes").num(stats.optNodes);
        json.key("orig_edges").num(stats.origEdges);
        json.key("opt_edges").num(stats.optEdges);
        json.key("orig_constraints").num(stats.origConstraints);
        json.key("kept_constraints").num(stats.keptConstraints);
        json.key("elimination").num(stats.elimination());
        emitPasses(json.json(), stats);
        json.key("cold_o0_seconds").num(o0Seconds);
        json.key("cold_o1_seconds").num(o1Seconds);
        json.key("rehydrate_v2_seconds").num(v2Seconds);
        json.key("rehydrate_v3_seconds").num(v3Seconds);
        json.key("rehydrate_speedup")
            .num(v3Seconds > 0 ? v2Seconds / v3Seconds : 0.0);
        json.json().endObject();
    }
    json.json().endArray();
    t.print(std::cout);

    const double elimGeomean = eliminations.value();
    const bool pass = elimGeomean >= kMinEliminationGeomean;
    std::cout << "\n" << covered << " designs compiled (" << skipped
              << " skipped); node+edge elimination geomean "
              << strf("%.1f%%", elimGeomean * 100.0) << " (gate: >= "
              << strf("%.0f%%", kMinEliminationGeomean * 100.0) << " — "
              << (pass ? "PASS" : "FAIL") << ")\n";
    for (const auto &p : totals.passes)
        std::cout << "  " << p.pass << ": -" << p.nodesEliminated
                  << " nodes, -" << p.edgesEliminated << " edges, -"
                  << p.constraintsEliminated << " constraints\n";

    json.key("totals").beginObject();
    json.key("designs").num(covered);
    json.key("skipped").num(skipped);
    json.key("orig_nodes").num(totals.origNodes);
    json.key("opt_nodes").num(totals.optNodes);
    json.key("orig_edges").num(totals.origEdges);
    json.key("opt_edges").num(totals.optEdges);
    json.key("orig_constraints").num(totals.origConstraints);
    json.key("kept_constraints").num(totals.keptConstraints);
    json.key("elimination_geomean").num(elimGeomean);
    json.key("elimination_gate").num(kMinEliminationGeomean);
    emitPasses(json.json(), totals);
    json.json().endObject();

    fs::remove_all(storeDir);
    return json.exitCode(pass);
}
