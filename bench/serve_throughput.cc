/**
 * @file
 * Serve-layer throughput and warm-vs-cold latency, measured through the
 * actual JSON-lines protocol (src/serve/) rather than the C++ API, so
 * the numbers include parsing, dispatch, and response marshalling.
 *
 * For every registry design (or the named subset):
 *
 *   cold  — a fresh service instance with an empty RunStore answers
 *           `simulate`: full trace + compile + multi-threaded engine
 *           run, published to the store.
 *   warm  — a second, fresh service instance over the now-populated
 *           store answers `resimulate`: rehydrate the stored run and
 *           serve the §7.2 incremental cost. The first warm request
 *           (which pays the one-time decode + CompiledRun freeze) and
 *           the steady state are reported separately; the headline
 *           speedup is the steady-state warm-cache latency vs cold —
 *           the per-request number a serving process actually
 *           amortizes to — with the first-request geomean alongside
 *           it. Every steady-state probe is a previously-unseen depth
 *           vector, so each one is a genuine constraint-checked delta
 *           relaxation, never a memo-table re-hit; probes the pool
 *           refuses (divergent — a full engine run either way) are
 *           excluded from the warm latency, and their count is
 *           reported.
 *
 * A final phase streams a mixed resimulate workload through the
 * TaskPool dispatch path and reports requests/second — now with per-op
 * p50/p99 latency (straight from the obs histograms the serve layer
 * keeps anyway) — followed by a telemetry overhead measurement:
 * interleaved dispatch trials with the obs registry disabled vs
 * enabled. Telemetry is advertised as cheap enough to stay on in
 * production; the bench's exit status enforces it (enabled throughput
 * must stay within --overhead-tolerance percent, default 5, of
 * disabled).
 *
 * A second overhead gate covers structured logging (src/obs/log.hh) in
 * its production configuration — enabled at level warn, so debug+
 * events pay formatting and flight-ring recording, trace events cost
 * two relaxed loads, and nothing sinks — with the same interleaved-
 * trial discipline: enabled throughput must stay within
 * --overhead-tolerance percent of logger-disabled.
 *
 * Results land in BENCH_serve.json (per-design cold/warm seconds and
 * speedup, geomean speedup, requests/s, per-op quantiles, overhead
 * ratios) for the CI trajectory; the acceptance bar is warm >= 5x cold
 * on the registry geomean plus the telemetry and logging overhead
 * gates.
 *
 * Usage: serve_throughput [--repeats N] [--requests N] [--jobs N]
 *                         [--json PATH] [--store DIR]
 *                         [--overhead-tolerance PCT] [design ...]
 */

#include <algorithm>
#include <filesystem>
#include <functional>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "serve/json.hh"
#include "serve/service.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

namespace
{

namespace fs = std::filesystem;

struct DesignTiming
{
    std::string name;
    std::vector<std::string> fifoNames;
    std::vector<std::uint32_t> baseDepths;
    bool ok = false;           ///< Cold run completed with status Ok.
    bool warmIncremental = false;
    unsigned steadyServed = 0;   ///< Unseen probes served incrementally.
    unsigned steadyDiverged = 0; ///< Probes that fell back to full runs.
    double coldSeconds = 0;
    double warmFirstSeconds = 0;
    double warmSteadySeconds = 0;

    double
    speedupFirst() const
    {
        return warmFirstSeconds > 0 ? coldSeconds / warmFirstSeconds : 0;
    }

    double
    speedupSteady() const
    {
        return warmSteadySeconds > 0 ? coldSeconds / warmSteadySeconds
                                     : 0;
    }
};

/** Handle one request line and parse the response. */
serve::JsonValue
ask(serve::SimService &svc, const std::string &line)
{
    return serve::JsonValue::parse(svc.handle(line));
}

std::string
simulateLine(const std::string &design)
{
    return strf("{\"id\":1,\"op\":\"simulate\",\"design\":%s}",
                serve::jsonQuote(design).c_str());
}

std::string
resimulateLine(const std::string &design, int id)
{
    return strf("{\"id\":%d,\"op\":\"resimulate\",\"design\":%s}", id,
                serve::jsonQuote(design).c_str());
}

/**
 * Run `trialsPerArm` off/on trial pairs (alternating which arm goes
 * first, since trial cost drifts with the monotone probe depths) and
 * gate on the MEDIAN of the per-pair on/off ratios. Overhead gates run
 * on shared CI hosts whose scheduler steals double-digit percentages
 * of throughput in bursts lasting longer than one trial; the two arms
 * of a pair run milliseconds apart, so a burst slows both and cancels
 * out of that pair's ratio, and the median then discards the pairs a
 * burst straddled. Comparing each arm's independent median — let alone
 * mean or best-of — leaves that common-mode noise in the statistic.
 * The per-arm medians are returned for display only.
 */
struct OverheadResult
{
    double offRps = 0; ///< Median off-arm req/s (display).
    double onRps = 0;  ///< Median on-arm req/s (display).
    double ratio = 1;  ///< Median per-pair on/off ratio (the gate).
};

OverheadResult
medianOverhead(const std::function<double(bool)> &trial,
               unsigned trialsPerArm)
{
    std::vector<double> off, on, ratios;
    for (unsigned pair = 0; pair < trialsPerArm; ++pair) {
        double offRps, onRps;
        if (pair % 2 == 0) {
            offRps = trial(false);
            onRps = trial(true);
        } else {
            onRps = trial(true);
            offRps = trial(false);
        }
        off.push_back(offRps);
        on.push_back(onRps);
        if (offRps > 0)
            ratios.push_back(onRps / offRps);
    }
    const auto median = [](std::vector<double> &v) {
        std::sort(v.begin(), v.end());
        const std::size_t n = v.size();
        return n == 0 ? 0.0
                      : (n % 2 ? v[n / 2]
                               : 0.5 * (v[n / 2 - 1] + v[n / 2]));
    };
    OverheadResult r;
    r.offRps = median(off);
    r.onRps = median(on);
    r.ratio = ratios.empty() ? 1.0 : median(ratios);
    return r;
}

/**
 * A previously-unseen probe: deepen one FIFO (rotating) by a
 * probe-unique amount so that no two probes — and no probe and the
 * stored base — share a depth vector. Deepening keeps most probes on
 * the §7.2 reuse path while still exercising real delta relaxation.
 */
std::string
probeLine(const DesignTiming &dt, unsigned probe, int id)
{
    const std::size_t f = probe % dt.fifoNames.size();
    const std::uint32_t depth =
        dt.baseDepths[f] + 1 + probe;
    return strf("{\"id\":%d,\"op\":\"resimulate\",\"design\":%s,"
                "\"depths\":{%s:%u}}",
                id, serve::jsonQuote(dt.name).c_str(),
                serve::jsonQuote(dt.fifoNames[f]).c_str(), depth);
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);

    unsigned repeats = 16;
    unsigned requests = 64;
    unsigned jobs = 0;
    unsigned overheadTolerance = 5; // percent
    std::string jsonPath = "BENCH_serve.json";
    std::string storeDir = "serve_bench_store";
    std::vector<std::string> only;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--repeats" && i + 1 < argc)
            repeats = parseArgU32("--repeats", argv[++i], 1u << 16);
        else if (arg == "--requests" && i + 1 < argc)
            requests = parseArgU32("--requests", argv[++i], 1u << 20);
        else if (arg == "--jobs" && i + 1 < argc)
            jobs = parseArgU32("--jobs", argv[++i], 4096);
        else if (arg == "--overhead-tolerance" && i + 1 < argc)
            overheadTolerance =
                parseArgU32("--overhead-tolerance", argv[++i], 100);
        else if (arg == "--json" && i + 1 < argc)
            jsonPath = argv[++i];
        else if (arg == "--store" && i + 1 < argc)
            storeDir = argv[++i];
        else
            only.push_back(arg);
    }
    repeats = std::max(1u, repeats);

    // The registry is process-global; start from zero so the per-op
    // quantiles reported below describe this run alone.
    obs::Registry::global().resetAll();
    obs::setTelemetryEnabled(true);

    const std::vector<const designs::DesignEntry *> entries =
        registrySuite(only);

    fs::remove_all(storeDir); // cold means cold

    std::cout << "Warm-vs-cold serving through the JSON-lines protocol "
                 "(store: " << storeDir << ")\n\n";

    TablePrinter t({"Design", "Cold", "Warm(1st)", "Warm(steady)",
                    "Speedup", "Served"});
    std::vector<DesignTiming> timings;
    for (const auto *e : entries) {
        DesignTiming dt;
        dt.name = e->name;
        {
            const Design d = e->build();
            for (const auto &f : d.fifos()) {
                dt.fifoNames.push_back(f.name);
                dt.baseDepths.push_back(f.depth);
            }
        }

        // Cold: fresh service, empty store.
        {
            serve::SimService cold({1, storeDir, 4, {}});
            Stopwatch sw;
            const serve::JsonValue r = ask(cold, simulateLine(e->name));
            dt.coldSeconds = sw.seconds();
            const serve::JsonValue *okv = r.find("ok");
            const serve::JsonValue *status = r.find("status");
            dt.ok = okv && okv->boolean() && status &&
                    status->str() == "Ok";
        }

        if (dt.ok && !dt.fifoNames.empty()) {
            // Warm: a different service instance — the cross-process
            // story — served purely from the store.
            serve::SimService warm({1, storeDir, 4, {}});
            Stopwatch first;
            const serve::JsonValue r =
                ask(warm, resimulateLine(e->name, 1));
            dt.warmFirstSeconds = first.seconds();
            const serve::JsonValue *method = r.find("method");
            dt.warmIncremental =
                method && method->str() == "incremental";

            // Steady state over unseen vectors: each probe is a real
            // §7.2 delta relaxation through the whole protocol stack.
            // Divergent probes (full engine runs either way) are timed
            // out of the warm latency but counted.
            double steadyTotal = 0;
            for (unsigned i = 0; i < repeats; ++i) {
                const std::string line = probeLine(dt, i, 2 + i);
                Stopwatch one;
                const serve::JsonValue pr = ask(warm, line);
                const double seconds = one.seconds();
                const serve::JsonValue *m = pr.find("method");
                const serve::JsonValue *cached = pr.find("cached");
                if (m && m->str() == "incremental" &&
                    !(cached && cached->boolean())) {
                    steadyTotal += seconds;
                    ++dt.steadyServed;
                } else {
                    ++dt.steadyDiverged;
                }
            }
            if (dt.steadyServed > 0)
                dt.warmSteadySeconds = steadyTotal / dt.steadyServed;
        }

        t.addRow({dt.name, dt.ok ? fmtSeconds(dt.coldSeconds) : "-",
                  dt.ok ? fmtSeconds(dt.warmFirstSeconds) : "-",
                  dt.steadyServed > 0 ? fmtSeconds(dt.warmSteadySeconds)
                                      : "-",
                  dt.speedupSteady() > 0
                      ? strf("%.0fx", dt.speedupSteady())
                      : "-",
                  dt.ok ? strf("%u incr / %u full", dt.steadyServed,
                               dt.steadyDiverged)
                        : "skipped"});
        timings.push_back(dt);
    }
    t.print(std::cout);

    // Mixed-workload dispatch throughput on one warm service.
    double requestSeconds = 0;
    std::size_t requestCount = 0;
    {
        serve::SimService svc({jobs, storeDir, 4, {}});
        std::vector<std::string> lines;
        std::size_t okDesigns = 0;
        for (const auto &dt : timings)
            okDesigns += dt.ok ? 1 : 0;
        if (okDesigns > 0) {
            // Unique probes again: dispatch throughput measures the
            // §7.2 serving path under concurrency, not memo lookups.
            int id = 0;
            unsigned probe = 1000; // disjoint from the steady range
            while (lines.size() < requests) {
                for (const auto &dt : timings)
                    if (dt.ok && !dt.fifoNames.empty() &&
                        lines.size() < requests)
                        lines.push_back(probeLine(dt, probe, id++));
                ++probe;
            }
            std::mutex mu;
            std::size_t answered = 0;
            Stopwatch sw;
            for (auto &line : lines)
                svc.submit(std::move(line), [&](std::string) {
                    std::lock_guard<std::mutex> lock(mu);
                    ++answered;
                });
            svc.drain();
            requestSeconds = sw.seconds();
            requestCount = answered;
        }
    }
    const double reqPerS =
        requestSeconds > 0 ? static_cast<double>(requestCount) /
                                 requestSeconds
                           : 0.0;

    // Per-op latency quantiles, read straight from the serve layer's
    // own obs histograms — the same numbers a `metrics` request would
    // report. Snapshot now, before the overhead trials below add more
    // samples.
    struct OpQuantiles
    {
        std::string op;
        obs::Histogram::Snapshot snap;
    };
    std::vector<OpQuantiles> opQuantiles;
    for (const char *op : {"simulate", "resimulate"}) {
        OpQuantiles q;
        q.op = op;
        q.snap = obs::Registry::global()
                     .histogram(std::string("serve.request_us.") + op)
                     .snapshot();
        if (q.snap.count > 0)
            opQuantiles.push_back(std::move(q));
    }
    const obs::Histogram::Snapshot queueWait =
        obs::Registry::global()
            .histogram("serve.queue_wait_us")
            .snapshot();

    // Telemetry overhead: interleaved dispatch trials on one warm
    // service with the registry disabled vs enabled. Every trial gets
    // a fresh, disjoint probe range — memoized repeats would be cheap
    // re-hits and mask any difference — so both arms do identical
    // §7.2 relaxation work. Each arm reports the median of many short
    // trials (see medianOverhead); the gate lands in the exit status.
    double disabledRps = 0, enabledRps = 0, overheadRatio = 1.0;
    unsigned overheadRequests = 0;
    bool overheadOk = true;
    {
        std::vector<const DesignTiming *> okd;
        for (const auto &dt : timings)
            if (dt.ok && !dt.fifoNames.empty())
                okd.push_back(&dt);
        if (!okd.empty()) {
            overheadRequests = std::max(requests, 96u);
            serve::SimService svc({jobs, storeDir, 4, {}});
            // Past the dispatch-phase range but well under the serve
            // layer's 2^20 depth cap, so every probe is a genuine
            // incremental request rather than a validation error.
            unsigned probeBase = 100000;
            const auto trial = [&](bool telemetry) {
                std::vector<std::string> lines;
                int id = 1;
                unsigned probe = probeBase;
                while (lines.size() < overheadRequests) {
                    for (const auto *dt : okd)
                        if (lines.size() < overheadRequests)
                            lines.push_back(probeLine(*dt, probe, id++));
                    ++probe;
                }
                probeBase = probe + 1;
                obs::setTelemetryEnabled(telemetry);
                std::mutex mu;
                std::size_t answered = 0;
                Stopwatch sw;
                for (auto &line : lines)
                    svc.submit(std::move(line), [&](std::string) {
                        std::lock_guard<std::mutex> lock(mu);
                        ++answered;
                    });
                svc.drain();
                const double seconds = sw.seconds();
                obs::setTelemetryEnabled(true);
                return seconds > 0
                           ? static_cast<double>(answered) / seconds
                           : 0.0;
            };
            (void)trial(true); // warm-up: one-time rehydrate + freeze
            const OverheadResult med = medianOverhead(trial, 9);
            disabledRps = med.offRps;
            enabledRps = med.onRps;
            overheadRatio = med.ratio;
            overheadOk =
                overheadRatio >= 1.0 - overheadTolerance / 100.0;
        }
    }

    // Structured-logging overhead: same interleaved-trial shape, but
    // toggling the obs logger (production configuration: enabled at
    // level warn — successful requests sink nothing, debug+ events
    // still pay the format + flight-ring recording, and trace events
    // cost two relaxed loads). The gate enforces the README claim that
    // logging is cheap enough to leave on in production.
    double logOffRps = 0, logOnRps = 0, loggingRatio = 1.0;
    unsigned loggingRequests = 0;
    bool loggingOk = true;
    {
        std::vector<const DesignTiming *> okd;
        for (const auto &dt : timings)
            if (dt.ok && !dt.fifoNames.empty())
                okd.push_back(&dt);
        if (!okd.empty()) {
            loggingRequests = std::max(requests, 96u);
            serve::SimService svc({jobs, storeDir, 4, {}});
            obs::setLogLevel(obs::LogLevel::Warn);
            unsigned probeBase = 200000; // disjoint from every phase above
            const auto trial = [&](bool logOn) {
                std::vector<std::string> lines;
                int id = 1;
                unsigned probe = probeBase;
                while (lines.size() < loggingRequests) {
                    for (const auto *dt : okd)
                        if (lines.size() < loggingRequests)
                            lines.push_back(probeLine(*dt, probe, id++));
                    ++probe;
                }
                probeBase = probe + 1;
                obs::setLogEnabled(logOn);
                std::mutex mu;
                std::size_t answered = 0;
                Stopwatch sw;
                for (auto &line : lines)
                    svc.submit(std::move(line), [&](std::string) {
                        std::lock_guard<std::mutex> lock(mu);
                        ++answered;
                    });
                svc.drain();
                const double seconds = sw.seconds();
                obs::setLogEnabled(false);
                return seconds > 0
                           ? static_cast<double>(answered) / seconds
                           : 0.0;
            };
            (void)trial(false); // warm-up: one-time rehydrate + freeze
            const OverheadResult med = medianOverhead(trial, 9);
            logOffRps = med.offRps;
            logOnRps = med.onRps;
            loggingRatio = med.ratio;
            loggingOk =
                loggingRatio >= 1.0 - overheadTolerance / 100.0;
        }
    }

    GeomeanAccum steadySpeedups, firstSpeedups;
    std::size_t warmIncr = 0, covered = 0, probesServed = 0,
                probesDiverged = 0;
    for (const auto &dt : timings) {
        if (!dt.ok)
            continue;
        ++covered;
        probesServed += dt.steadyServed;
        probesDiverged += dt.steadyDiverged;
        if (dt.warmIncremental) {
            ++warmIncr;
            firstSpeedups.add(dt.speedupFirst());
        }
        steadySpeedups.add(dt.speedupSteady());
    }
    const double speedupGeomean = steadySpeedups.value();
    const double firstGeomean = firstSpeedups.value();
    std::cout << "\n" << covered << " designs served (" << warmIncr
              << " warm-incremental, " << probesServed
              << " unseen probes incremental, " << probesDiverged
              << " divergent); warm resimulate vs cold simulate: "
              << strf("%.0fx", speedupGeomean)
              << " geomean steady-state ("
              << strf("%.1fx", firstGeomean)
              << " including one-time rehydration)\n"
              << requestCount << " dispatched requests in "
              << fmtSeconds(requestSeconds) << " ("
              << strf("%.1f", reqPerS) << " req/s)\n";
    for (const auto &q : opQuantiles)
        std::cout << "  " << q.op << ": "
                  << strf("p50 %.0fus p99 %.0fus over %llu requests",
                          q.snap.quantile(0.50), q.snap.quantile(0.99),
                          static_cast<unsigned long long>(q.snap.count))
                  << "\n";
    if (queueWait.count > 0)
        std::cout << "  queue wait: "
                  << strf("p50 %.0fus p99 %.0fus",
                          queueWait.quantile(0.50),
                          queueWait.quantile(0.99))
                  << "\n";
    if (overheadRequests > 0)
        std::cout << "telemetry overhead: "
                  << strf("%.1f", disabledRps) << " req/s off vs "
                  << strf("%.1f", enabledRps) << " req/s on (ratio "
                  << strf("%.3f", overheadRatio) << ", gate >= "
                  << strf("%.2f", 1.0 - overheadTolerance / 100.0)
                  << (overheadOk ? ", ok)\n" : ", FAILED)\n");
    if (loggingRequests > 0)
        std::cout << "logging overhead (level=warn): "
                  << strf("%.1f", logOffRps) << " req/s off vs "
                  << strf("%.1f", logOnRps) << " req/s on (ratio "
                  << strf("%.3f", loggingRatio) << ", gate >= "
                  << strf("%.2f", 1.0 - overheadTolerance / 100.0)
                  << (loggingOk ? ", ok)\n" : ", FAILED)\n");

    BenchJson json("serve_throughput", jsonPath);
    json.key("repeats").num(repeats);
    json.json().key("designs").beginArray();
    for (const auto &dt : timings) {
        json.json().beginObject();
        json.key("name").str(dt.name);
        json.key("cold_ok").boolean(dt.ok);
        json.key("warm_incremental").boolean(dt.warmIncremental);
        json.key("cold_seconds").num(dt.coldSeconds);
        json.key("warm_first_seconds").num(dt.warmFirstSeconds);
        json.key("warm_steady_seconds").num(dt.warmSteadySeconds);
        json.key("steady_probes_incremental").num(dt.steadyServed);
        json.key("steady_probes_diverged").num(dt.steadyDiverged);
        json.key("warm_speedup").num(dt.speedupSteady());
        json.key("warm_first_speedup").num(dt.speedupFirst());
        json.json().endObject();
    }
    json.json().endArray();
    json.key("totals").beginObject();
    json.key("designs_served").num(covered);
    json.key("warm_incremental").num(warmIncr);
    json.key("steady_probes_incremental").num(probesServed);
    json.key("steady_probes_diverged").num(probesDiverged);
    json.key("warm_speedup_geomean").num(speedupGeomean);
    json.key("warm_first_speedup_geomean").num(firstGeomean);
    json.key("dispatched_requests").num(requestCount);
    json.key("dispatch_wall_seconds").num(requestSeconds);
    json.key("requests_per_second").num(reqPerS);
    json.json().endObject();
    json.key("ops").beginObject();
    for (const auto &q : opQuantiles) {
        json.key(q.op).beginObject();
        json.key("count").num(
            static_cast<std::uint64_t>(q.snap.count));
        json.key("p50_us").num(q.snap.quantile(0.50));
        json.key("p99_us").num(q.snap.quantile(0.99));
        json.json().endObject();
    }
    json.key("queue_wait").beginObject();
    json.key("count").num(static_cast<std::uint64_t>(queueWait.count));
    json.key("p50_us").num(queueWait.quantile(0.50));
    json.key("p99_us").num(queueWait.quantile(0.99));
    json.json().endObject();
    json.json().endObject();
    json.key("overhead").beginObject();
    json.key("requests_per_trial").num(overheadRequests);
    json.key("disabled_rps").num(disabledRps);
    json.key("enabled_rps").num(enabledRps);
    json.key("ratio").num(overheadRatio);
    json.key("tolerance_pct").num(overheadTolerance);
    json.key("ok").boolean(overheadOk);
    json.json().endObject();
    json.key("logging_overhead").beginObject();
    json.key("requests_per_trial").num(loggingRequests);
    json.key("disabled_rps").num(logOffRps);
    json.key("enabled_rps").num(logOnRps);
    json.key("ratio").num(loggingRatio);
    json.key("tolerance_pct").num(overheadTolerance);
    json.key("ok").boolean(loggingOk);
    json.json().endObject();

    fs::remove_all(storeDir);
    return json.exitCode(overheadOk && loggingOk);
}
