/**
 * @file
 * Serve-layer throughput and warm-vs-cold latency, measured through the
 * actual JSON-lines protocol (src/serve/) rather than the C++ API, so
 * the numbers include parsing, dispatch, and response marshalling.
 *
 * For every registry design (or the named subset):
 *
 *   cold  — a fresh service instance with an empty RunStore answers
 *           `simulate`: full trace + compile + multi-threaded engine
 *           run, published to the store.
 *   warm  — a second, fresh service instance over the now-populated
 *           store answers `resimulate`: rehydrate the stored run and
 *           serve the §7.2 incremental cost. The first warm request
 *           (which pays the one-time decode + CompiledRun freeze) and
 *           the steady state are reported separately; the headline
 *           speedup is the steady-state warm-cache latency vs cold —
 *           the per-request number a serving process actually
 *           amortizes to — with the first-request geomean alongside
 *           it. Every steady-state probe is a previously-unseen depth
 *           vector, so each one is a genuine constraint-checked delta
 *           relaxation, never a memo-table re-hit; probes the pool
 *           refuses (divergent — a full engine run either way) are
 *           excluded from the warm latency, and their count is
 *           reported.
 *
 * A final phase streams a mixed resimulate workload through the
 * TaskPool dispatch path and reports requests/second.
 *
 * Results land in BENCH_serve.json (per-design cold/warm seconds and
 * speedup, geomean speedup, requests/s) for the CI trajectory; the
 * acceptance bar is warm >= 5x cold on the registry geomean.
 *
 * Usage: serve_throughput [--repeats N] [--requests N] [--jobs N]
 *                         [--json PATH] [--store DIR] [design ...]
 */

#include <filesystem>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "serve/json.hh"
#include "serve/service.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

namespace
{

namespace fs = std::filesystem;

struct DesignTiming
{
    std::string name;
    std::vector<std::string> fifoNames;
    std::vector<std::uint32_t> baseDepths;
    bool ok = false;           ///< Cold run completed with status Ok.
    bool warmIncremental = false;
    unsigned steadyServed = 0;   ///< Unseen probes served incrementally.
    unsigned steadyDiverged = 0; ///< Probes that fell back to full runs.
    double coldSeconds = 0;
    double warmFirstSeconds = 0;
    double warmSteadySeconds = 0;

    double
    speedupFirst() const
    {
        return warmFirstSeconds > 0 ? coldSeconds / warmFirstSeconds : 0;
    }

    double
    speedupSteady() const
    {
        return warmSteadySeconds > 0 ? coldSeconds / warmSteadySeconds
                                     : 0;
    }
};

/** Handle one request line and parse the response. */
serve::JsonValue
ask(serve::SimService &svc, const std::string &line)
{
    return serve::JsonValue::parse(svc.handle(line));
}

std::string
simulateLine(const std::string &design)
{
    return strf("{\"id\":1,\"op\":\"simulate\",\"design\":%s}",
                serve::jsonQuote(design).c_str());
}

std::string
resimulateLine(const std::string &design, int id)
{
    return strf("{\"id\":%d,\"op\":\"resimulate\",\"design\":%s}", id,
                serve::jsonQuote(design).c_str());
}

/**
 * A previously-unseen probe: deepen one FIFO (rotating) by a
 * probe-unique amount so that no two probes — and no probe and the
 * stored base — share a depth vector. Deepening keeps most probes on
 * the §7.2 reuse path while still exercising real delta relaxation.
 */
std::string
probeLine(const DesignTiming &dt, unsigned probe, int id)
{
    const std::size_t f = probe % dt.fifoNames.size();
    const std::uint32_t depth =
        dt.baseDepths[f] + 1 + probe;
    return strf("{\"id\":%d,\"op\":\"resimulate\",\"design\":%s,"
                "\"depths\":{%s:%u}}",
                id, serve::jsonQuote(dt.name).c_str(),
                serve::jsonQuote(dt.fifoNames[f]).c_str(), depth);
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);

    unsigned repeats = 16;
    unsigned requests = 64;
    unsigned jobs = 0;
    std::string jsonPath = "BENCH_serve.json";
    std::string storeDir = "serve_bench_store";
    std::vector<std::string> only;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--repeats" && i + 1 < argc)
            repeats = parseArgU32("--repeats", argv[++i], 1u << 16);
        else if (arg == "--requests" && i + 1 < argc)
            requests = parseArgU32("--requests", argv[++i], 1u << 20);
        else if (arg == "--jobs" && i + 1 < argc)
            jobs = parseArgU32("--jobs", argv[++i], 4096);
        else if (arg == "--json" && i + 1 < argc)
            jsonPath = argv[++i];
        else if (arg == "--store" && i + 1 < argc)
            storeDir = argv[++i];
        else
            only.push_back(arg);
    }
    repeats = std::max(1u, repeats);

    const std::vector<const designs::DesignEntry *> entries =
        registrySuite(only);

    fs::remove_all(storeDir); // cold means cold

    std::cout << "Warm-vs-cold serving through the JSON-lines protocol "
                 "(store: " << storeDir << ")\n\n";

    TablePrinter t({"Design", "Cold", "Warm(1st)", "Warm(steady)",
                    "Speedup", "Served"});
    std::vector<DesignTiming> timings;
    for (const auto *e : entries) {
        DesignTiming dt;
        dt.name = e->name;
        {
            const Design d = e->build();
            for (const auto &f : d.fifos()) {
                dt.fifoNames.push_back(f.name);
                dt.baseDepths.push_back(f.depth);
            }
        }

        // Cold: fresh service, empty store.
        {
            serve::SimService cold({1, storeDir, 4, {}});
            Stopwatch sw;
            const serve::JsonValue r = ask(cold, simulateLine(e->name));
            dt.coldSeconds = sw.seconds();
            const serve::JsonValue *okv = r.find("ok");
            const serve::JsonValue *status = r.find("status");
            dt.ok = okv && okv->boolean() && status &&
                    status->str() == "Ok";
        }

        if (dt.ok && !dt.fifoNames.empty()) {
            // Warm: a different service instance — the cross-process
            // story — served purely from the store.
            serve::SimService warm({1, storeDir, 4, {}});
            Stopwatch first;
            const serve::JsonValue r =
                ask(warm, resimulateLine(e->name, 1));
            dt.warmFirstSeconds = first.seconds();
            const serve::JsonValue *method = r.find("method");
            dt.warmIncremental =
                method && method->str() == "incremental";

            // Steady state over unseen vectors: each probe is a real
            // §7.2 delta relaxation through the whole protocol stack.
            // Divergent probes (full engine runs either way) are timed
            // out of the warm latency but counted.
            double steadyTotal = 0;
            for (unsigned i = 0; i < repeats; ++i) {
                const std::string line = probeLine(dt, i, 2 + i);
                Stopwatch one;
                const serve::JsonValue pr = ask(warm, line);
                const double seconds = one.seconds();
                const serve::JsonValue *m = pr.find("method");
                const serve::JsonValue *cached = pr.find("cached");
                if (m && m->str() == "incremental" &&
                    !(cached && cached->boolean())) {
                    steadyTotal += seconds;
                    ++dt.steadyServed;
                } else {
                    ++dt.steadyDiverged;
                }
            }
            if (dt.steadyServed > 0)
                dt.warmSteadySeconds = steadyTotal / dt.steadyServed;
        }

        t.addRow({dt.name, dt.ok ? fmtSeconds(dt.coldSeconds) : "-",
                  dt.ok ? fmtSeconds(dt.warmFirstSeconds) : "-",
                  dt.steadyServed > 0 ? fmtSeconds(dt.warmSteadySeconds)
                                      : "-",
                  dt.speedupSteady() > 0
                      ? strf("%.0fx", dt.speedupSteady())
                      : "-",
                  dt.ok ? strf("%u incr / %u full", dt.steadyServed,
                               dt.steadyDiverged)
                        : "skipped"});
        timings.push_back(dt);
    }
    t.print(std::cout);

    // Mixed-workload dispatch throughput on one warm service.
    double requestSeconds = 0;
    std::size_t requestCount = 0;
    {
        serve::SimService svc({jobs, storeDir, 4, {}});
        std::vector<std::string> lines;
        std::size_t okDesigns = 0;
        for (const auto &dt : timings)
            okDesigns += dt.ok ? 1 : 0;
        if (okDesigns > 0) {
            // Unique probes again: dispatch throughput measures the
            // §7.2 serving path under concurrency, not memo lookups.
            int id = 0;
            unsigned probe = 1000; // disjoint from the steady range
            while (lines.size() < requests) {
                for (const auto &dt : timings)
                    if (dt.ok && !dt.fifoNames.empty() &&
                        lines.size() < requests)
                        lines.push_back(probeLine(dt, probe, id++));
                ++probe;
            }
            std::mutex mu;
            std::size_t answered = 0;
            Stopwatch sw;
            for (auto &line : lines)
                svc.submit(std::move(line), [&](std::string) {
                    std::lock_guard<std::mutex> lock(mu);
                    ++answered;
                });
            svc.drain();
            requestSeconds = sw.seconds();
            requestCount = answered;
        }
    }
    const double reqPerS =
        requestSeconds > 0 ? static_cast<double>(requestCount) /
                                 requestSeconds
                           : 0.0;

    GeomeanAccum steadySpeedups, firstSpeedups;
    std::size_t warmIncr = 0, covered = 0, probesServed = 0,
                probesDiverged = 0;
    for (const auto &dt : timings) {
        if (!dt.ok)
            continue;
        ++covered;
        probesServed += dt.steadyServed;
        probesDiverged += dt.steadyDiverged;
        if (dt.warmIncremental) {
            ++warmIncr;
            firstSpeedups.add(dt.speedupFirst());
        }
        steadySpeedups.add(dt.speedupSteady());
    }
    const double speedupGeomean = steadySpeedups.value();
    const double firstGeomean = firstSpeedups.value();
    std::cout << "\n" << covered << " designs served (" << warmIncr
              << " warm-incremental, " << probesServed
              << " unseen probes incremental, " << probesDiverged
              << " divergent); warm resimulate vs cold simulate: "
              << strf("%.0fx", speedupGeomean)
              << " geomean steady-state ("
              << strf("%.1fx", firstGeomean)
              << " including one-time rehydration)\n"
              << requestCount << " dispatched requests in "
              << fmtSeconds(requestSeconds) << " ("
              << strf("%.1f", reqPerS) << " req/s)\n";

    BenchJson json("serve_throughput", jsonPath);
    json.key("repeats").num(repeats);
    json.json().key("designs").beginArray();
    for (const auto &dt : timings) {
        json.json().beginObject();
        json.key("name").str(dt.name);
        json.key("cold_ok").boolean(dt.ok);
        json.key("warm_incremental").boolean(dt.warmIncremental);
        json.key("cold_seconds").num(dt.coldSeconds);
        json.key("warm_first_seconds").num(dt.warmFirstSeconds);
        json.key("warm_steady_seconds").num(dt.warmSteadySeconds);
        json.key("steady_probes_incremental").num(dt.steadyServed);
        json.key("steady_probes_diverged").num(dt.steadyDiverged);
        json.key("warm_speedup").num(dt.speedupSteady());
        json.key("warm_first_speedup").num(dt.speedupFirst());
        json.json().endObject();
    }
    json.json().endArray();
    json.key("totals").beginObject();
    json.key("designs_served").num(covered);
    json.key("warm_incremental").num(warmIncr);
    json.key("steady_probes_incremental").num(probesServed);
    json.key("steady_probes_diverged").num(probesDiverged);
    json.key("warm_speedup_geomean").num(speedupGeomean);
    json.key("warm_first_speedup_geomean").num(firstGeomean);
    json.key("dispatched_requests").num(requestCount);
    json.key("dispatch_wall_seconds").num(requestSeconds);
    json.key("requests_per_second").num(reqPerS);
    json.json().endObject();

    fs::remove_all(storeDir);
    return json.exitCode();
}
