/**
 * @file
 * Ablation: redundant FIFO-check elimination (§7.3.2). A design whose
 * generated code is littered with empty()/full() checks whose results
 * are never used measures the query traffic and runtime saved by
 * replacing them with skippable markers.
 */

#include <iostream>

#include "bench_util.hh"
#include "design/context.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

namespace
{

/** A stream pipeline whose consumer polls status noisily per element. */
Design
buildCheckHeavy(std::size_t n)
{
    Design d("check_heavy");
    const MemId data = d.addMemory("data", n);
    const MemId out = d.addMemory("out", 1);
    d.setInput(data, designs::iotaData(n));
    const FifoId f = d.declareFifo("f", 4, AccessKind::Blocking,
                                   AccessKind::NonBlocking);
    const ModuleId p = d.addModule("producer", [=](Context &ctx) {
        PipelineScope pipe(ctx, 1);
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            ctx.fullUnused(f); // generated-code noise
            ctx.write(f, ctx.load(data, i));
        }
    });
    const ModuleId c = d.addModule(
        "consumer",
        [=](Context &ctx) {
            Value sum = 0;
            for (std::size_t i = 0; i < n; ++i) {
                ctx.emptyUnused(f); // unused status check x3
                ctx.emptyUnused(f);
                ctx.emptyUnused(f);
                sum += ctx.read(f);
            }
            ctx.store(out, 0, sum);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});
    d.connectFifo(f, p, c);
    return d;
}

} // namespace

int
main()
{
    setLogQuiet(true);
    std::cout << "Ablation: redundant FIFO-check elimination (S7.3.2)\n\n";

    const std::size_t n = 100'000;
    Design d = buildCheckHeavy(n);
    const CompiledDesign cd = compile(d);

    TablePrinter t({"Configuration", "Time", "Events", "Queries",
                    "Skipped", "Cycles"});
    for (bool elide : {true, false}) {
        OmniSimOptions opts;
        opts.elideUnusedChecks = elide;
        Stopwatch sw;
        const SimResult r = simulateOmniSim(cd, opts);
        const double secs = sw.seconds();
        t.addRow({elide ? "elision ON (default)" : "elision OFF",
                  fmtSeconds(secs),
                  strf("%llu",
                       static_cast<unsigned long long>(r.stats.events)),
                  strf("%llu",
                       static_cast<unsigned long long>(r.stats.queries)),
                  strf("%llu", static_cast<unsigned long long>(
                                   r.stats.queriesSkipped)),
                  strf("%llu", static_cast<unsigned long long>(
                                   r.totalCycles))});
    }
    t.print(std::cout);
    std::cout << "\nFunctional results and cycle counts are identical; "
                 "the pass only removes dead status-query work.\n";
    return 0;
}
