/**
 * @file
 * Partitioned parallel relaxation: speedup and bit-identity of the
 * rank-leveled multi-threaded resimulate() paths on large generated
 * designs.
 *
 * For each seed the large-regime generator (gen::largeGenConfig)
 * produces a design with hundreds-to-thousands of processes; one
 * OmniSim run freezes it, the snapshot is rehydrated into a StoredRun,
 * and a fixed set of randomized depth probes — half small deltas (the
 * worklist fast path), half broad perturbations (the full leveled
 * relaxation) — is replayed through StoredRun::resimulate() at one
 * lane and at --jobs lanes on the SAME object. Every parallel answer
 * is compared field-by-field against the serial one first; only then
 * are both paths timed over --reps repetitions.
 *
 * Acceptance gate (the harness's exit status):
 *   - bit-identity of every probe at every lane count, always;
 *   - geomean parallel speedup >= 2.0, only when the host actually has
 *     >= 8 hardware threads and --jobs >= 8 — a single-core CI box
 *     cannot speed anything up, but it must still prove identity.
 *
 * Results land in BENCH_parallel.json so CI can track the trajectory.
 *
 * Usage: parallel_relax [--seed S] [--count N] [--probes K] [--reps R]
 *                       [--jobs J] [--min-procs P] [--max-procs P]
 *                       [--json PATH]
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "gen/generate.hh"
#include "gen/spec.hh"
#include "io/run_io.hh"
#include "support/prng.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

namespace
{

/** First field-level difference between two outcomes, or "". */
std::string
outcomeDiff(const IncrementalOutcome &a, const IncrementalOutcome &b)
{
    if (a.reused != b.reused)
        return strf("reused %d vs %d", a.reused, b.reused);
    if (a.reason != b.reason)
        return strf("reason '%s' vs '%s'", a.reason.c_str(),
                    b.reason.c_str());
    if (a.viaDelta != b.viaDelta)
        return strf("viaDelta %d vs %d", a.viaDelta, b.viaDelta);
    if (!a.reused)
        return "";
    if (a.result.status != b.result.status)
        return strf("status %s vs %s", simStatusName(a.result.status),
                    simStatusName(b.result.status));
    if (a.result.totalCycles != b.result.totalCycles)
        return strf("cycles %llu vs %llu",
                    static_cast<unsigned long long>(a.result.totalCycles),
                    static_cast<unsigned long long>(b.result.totalCycles));
    if (a.result.memories != b.result.memories)
        return "memories differ";
    return "";
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);

    std::uint64_t seed0 = 7;
    std::uint32_t count = 2;
    std::uint32_t probes = 12;
    std::uint32_t reps = 3;
    unsigned jobs = 8;
    std::uint32_t minProcs = 0; // 0 = keep the large-regime default
    std::uint32_t maxProcs = 0;
    std::string jsonPath = "BENCH_parallel.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc)
            seed0 = parseArgU32("--seed", argv[++i], 1u << 30);
        else if (arg == "--count" && i + 1 < argc)
            count = parseArgU32("--count", argv[++i], 1u << 16);
        else if (arg == "--probes" && i + 1 < argc)
            probes = parseArgU32("--probes", argv[++i], 1u << 12);
        else if (arg == "--reps" && i + 1 < argc)
            reps = parseArgU32("--reps", argv[++i], 1u << 12);
        else if (arg == "--jobs" && i + 1 < argc)
            jobs = parseArgU32("--jobs", argv[++i], 4096);
        else if (arg == "--min-procs" && i + 1 < argc)
            minProcs = parseArgU32("--min-procs", argv[++i],
                                   gen::kMaxGenProcs);
        else if (arg == "--max-procs" && i + 1 < argc)
            maxProcs = parseArgU32("--max-procs", argv[++i],
                                   gen::kMaxGenProcs);
        else if (arg == "--json" && i + 1 < argc)
            jsonPath = argv[++i];
        else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            return 2;
        }
    }
    if (jobs < 2)
        jobs = 2;
    if (probes == 0 || reps == 0 || count == 0) {
        std::fprintf(stderr, "--count/--probes/--reps must be >= 1\n");
        return 2;
    }

    gen::GenConfig cfg = gen::largeGenConfig();
    if (minProcs)
        cfg.minProcs = minProcs;
    if (maxProcs)
        cfg.maxProcs = std::max(maxProcs, cfg.minProcs);

    const unsigned hw = std::thread::hardware_concurrency();
    const bool gateSpeedup = hw >= 8 && jobs >= 8;

    std::cout << "Partitioned parallel relaxation: jobs=" << jobs
              << " vs serial on " << count
              << " large generated design(s) (" << hw
              << " hardware threads; speedup gate "
              << (gateSpeedup ? "enforced" : "identity-only") << ")\n\n";

    BenchJson json("parallel_relax", jsonPath);
    json.key("jobs").num(jobs);
    json.key("hardware_concurrency").num(hw);
    json.key("speedup_gate_enforced").boolean(gateSpeedup);
    json.json().key("designs").beginArray();

    TablePrinter t({"Seed", "Procs", "Nodes", "Levels", "MaxWidth",
                    "Probes", "Serial", "Parallel", "Speedup",
                    "Identical"});
    GeomeanAccum speedups;
    bool allIdentical = true;
    std::size_t measured = 0;
    for (std::uint32_t k = 0; k < count; ++k) {
        const std::uint64_t seed = seed0 + k;
        const gen::GenSpec spec = gen::generateSpec(seed, cfg);
        const Design d = gen::materialize(spec);
        const CompiledDesign cd = compile(d);

        OmniSim engine(cd);
        if (engine.run().status != SimStatus::Ok) {
            t.addRow({strf("%llu", static_cast<unsigned long long>(seed)),
                      strf("%zu", spec.procs.size()), "-", "-", "-", "-",
                      "-", "-", "-", "skipped (non-Ok baseline)"});
            continue;
        }
        RunSnapshot snap;
        if (!engine.exportSnapshot(snap))
            continue;
        io::RunFileMeta meta;
        meta.design = d.name();
        meta.engine = "omnisim";
        meta.fingerprint = io::designFingerprint(d);
        const std::unique_ptr<io::StoredRun> run =
            io::StoredRun::rehydrate(std::move(snap), std::move(meta));
        const opt::PartitionPlan &plan = run->compiled().layout().part;

        const std::vector<std::uint32_t> &base = run->baseDepths();
        const std::size_t nfifos = base.size();
        if (nfifos == 0)
            continue;

        // Probe set: the first half touches a handful of FIFOs (the
        // delta worklist path), the second half perturbs a quarter of
        // them (trips the changed-cone budget into the full leveled
        // relaxation) — both parallel paths get timed.
        Prng prng(seed ^ 0x9a7a11e1u);
        std::vector<std::vector<std::uint32_t>> set;
        for (std::uint32_t p = 0; p < probes; ++p) {
            std::vector<std::uint32_t> depths = base;
            const std::size_t touches =
                p < probes / 2
                    ? 1 + prng.below(std::min<std::size_t>(4, nfifos))
                    : 1 + prng.below(std::max<std::size_t>(1, nfifos / 4));
            for (std::size_t i = 0; i < touches; ++i)
                depths[prng.below(nfifos)] =
                    static_cast<std::uint32_t>(1 + prng.below(12));
            set.push_back(std::move(depths));
        }

        // Bit-identity before any timing: every probe, serial vs two
        // parallel lane counts, on the same StoredRun object.
        bool identical = true;
        for (const auto &depths : set) {
            const IncrementalOutcome serial = run->resimulate(depths, 1);
            for (const unsigned j : {2u, jobs}) {
                const std::string diff =
                    outcomeDiff(serial, run->resimulate(depths, j));
                if (!diff.empty()) {
                    identical = false;
                    allIdentical = false;
                    std::fprintf(stderr,
                                 "IDENTITY FAILURE seed %llu jobs %u: "
                                 "%s\n",
                                 static_cast<unsigned long long>(seed), j,
                                 diff.c_str());
                }
            }
        }

        Stopwatch swSerial;
        for (std::uint32_t r = 0; r < reps; ++r)
            for (const auto &depths : set)
                (void)run->resimulate(depths, 1);
        const double serialSec = swSerial.seconds();
        Stopwatch swParallel;
        for (std::uint32_t r = 0; r < reps; ++r)
            for (const auto &depths : set)
                (void)run->resimulate(depths, jobs);
        const double parallelSec = swParallel.seconds();
        const double speedup =
            parallelSec > 0 ? serialSec / parallelSec : 0.0;
        speedups.add(speedup);
        ++measured;

        t.addRow({strf("%llu", static_cast<unsigned long long>(seed)),
                  strf("%zu", spec.procs.size()),
                  strf("%zu", run->compiled().numNodes()),
                  strf("%u", plan.levels()),
                  strf("%u", plan.maxLevelWidth),
                  strf("%zu", set.size()), fmtSeconds(serialSec),
                  fmtSeconds(parallelSec), fmtSpeedup(speedup),
                  identical ? "yes" : "NO"});

        json.json().beginObject();
        json.key("seed").num(seed);
        json.key("procs").num(spec.procs.size());
        json.key("nodes").num(run->compiled().numNodes());
        json.key("plan_valid").boolean(plan.valid);
        json.key("levels").num(plan.levels());
        json.key("cones").num(plan.cones());
        json.key("max_level_width").num(plan.maxLevelWidth);
        json.key("frontier_edges").num(plan.frontierEdges);
        json.key("probes").num(set.size());
        json.key("reps").num(reps);
        json.key("serial_seconds").num(serialSec);
        json.key("parallel_seconds").num(parallelSec);
        json.key("speedup").num(speedup);
        json.key("identical").boolean(identical);
        json.json().endObject();
    }
    json.json().endArray();
    t.print(std::cout);

    const double geomean = speedups.value();
    std::cout << "\nparallel resimulate() vs serial: "
              << fmtSpeedup(geomean) << " geomean speedup across "
              << measured << " design(s); bit-identity "
              << (allIdentical ? "held on every probe" : "VIOLATED")
              << "\n";

    const bool pass =
        allIdentical && measured > 0 && (!gateSpeedup || geomean >= 2.0);
    if (gateSpeedup && geomean < 2.0)
        std::cout << "ACCEPTANCE FAILURE: speedup gate (>= 2.0x) not "
                     "met\n";

    json.key("totals").beginObject();
    json.key("designs_measured").num(measured);
    json.key("speedup_geomean").num(geomean);
    json.key("all_identical").boolean(allIdentical);
    json.key("pass").boolean(pass);
    json.json().endObject();
    return json.exitCode(pass);
}
