/**
 * @file
 * Reproduces Fig. 8 of the paper on the Type B/C suite:
 *  (a) cycle accuracy of OmniSim against co-simulation,
 *  (b) wall-clock runtime of OmniSim vs co-simulation (speedup), and
 *  (c) the OmniSim runtime breakdown into front-end compilation and
 *      multi-threaded core execution.
 *
 * Co-simulation runs with the synthetic RTL cost model enabled (that is
 * what makes real co-simulation slow); OmniSim numbers are end-to-end,
 * including front-end compilation, as in the paper. Emits
 * BENCH_cosim.json (per-design times and the geomean speedup) for the
 * CI trajectory.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

int
main()
{
    setLogQuiet(true);
    std::cout << "Fig. 8: OmniSim vs C/RTL co-simulation on the Type B/C "
                 "suite\n\n";

    TablePrinter t({"Design", "Co-sim cycles", "OmniSim cycles", "Delta",
                    "Co-sim time", "OmniSim time", "Speedup", "FE", "MT"});
    GeomeanAccum speedups;
    BenchJson json("fig8_cosim", "BENCH_cosim.json");
    json.json().key("designs").beginArray();
    for (const auto &e : designs::typeBCDesigns()) {
        // --- co-simulation with RTL cost model (the slow baseline) ---
        Stopwatch co_sw;
        FrontEndRun co_fe = runFrontEnd(e);
        const SimResult co = simulateCosim(co_fe.cd);
        const double co_time = co_sw.seconds();

        // --- OmniSim end-to-end: front end + multi-thread execution ---
        Stopwatch om_sw;
        FrontEndRun om_fe = runFrontEnd(e);
        Stopwatch mt_sw;
        const SimResult om = simulateOmniSim(om_fe.cd);
        const double mt_time = mt_sw.seconds();
        const double om_time = om_sw.seconds();

        std::string acc;
        if (co.status == SimStatus::Deadlock &&
            om.status == SimStatus::Deadlock) {
            acc = "deadlock detected";
        } else if (co.status == SimStatus::Ok && om.status == SimStatus::Ok) {
            const double delta =
                co.totalCycles == 0
                    ? 0.0
                    : 100.0 *
                          (static_cast<double>(om.totalCycles) -
                           static_cast<double>(co.totalCycles)) /
                          static_cast<double>(co.totalCycles);
            acc = strf("%+.2f%%", delta);
        } else {
            acc = "status mismatch";
        }

        const double speedup = co_time / om_time;
        speedups.add(speedup);
        json.json().beginObject();
        json.key("name").str(e.name);
        json.key("status_match")
            .boolean(co.status == om.status);
        json.key("cosim_cycles").num(co.totalCycles);
        json.key("omnisim_cycles").num(om.totalCycles);
        json.key("cosim_seconds").num(co_time);
        json.key("omnisim_seconds").num(om_time);
        json.key("frontend_seconds").num(om_fe.seconds);
        json.key("multithread_seconds").num(mt_time);
        json.key("speedup").num(speedup);
        json.json().endObject();
        t.addRow({e.name,
                  co.status == SimStatus::Ok
                      ? strf("%llu", static_cast<unsigned long long>(
                                         co.totalCycles))
                      : simStatusName(co.status),
                  om.status == SimStatus::Ok
                      ? strf("%llu", static_cast<unsigned long long>(
                                         om.totalCycles))
                      : simStatusName(om.status),
                  acc, fmtSeconds(co_time), fmtSeconds(om_time),
                  fmtSpeedup(speedup), fmtSeconds(om_fe.seconds),
                  fmtSeconds(mt_time)});
    }
    t.print(std::cout);
    std::cout << "\nGeomean speedup over co-simulation: "
              << fmtSpeedup(speedups.value())
              << "  (paper: 30.7x geomean, up to 35.9x; see "
                 "EXPERIMENTS.md for the substitution notes)\n"
              << "Fig. 8(a) deltas are 0.00% by construction in eager "
                 "mode — the paper reports <=0.2%.\n"
              << "Fig. 8(c): front-end compilation (FE) vs core "
                 "multi-thread execution (MT) columns above.\n";
    json.json().endArray();
    json.key("speedup_geomean").num(speedups.value());
    return json.exitCode();
}
