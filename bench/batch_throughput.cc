/**
 * @file
 * Batch-simulation scaling: fan the full design registry (Table 4
 * Type B/C suite plus the Type A suite) out across a growing worker
 * pool and measure aggregate throughput in simulations per second.
 * This is the workload large-scale design-space exploration produces —
 * many independent simulations where end-to-end rate matters more than
 * single-run latency.
 *
 * Usage: batch_throughput [jobs ...]
 *   With no arguments, sweeps 1, 2, 4, ... up to hardware_concurrency.
 */

#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "batch/batch.hh"
#include "bench_util.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

int
main(int argc, char **argv)
{
    setLogQuiet(true);

    std::vector<unsigned> jobsList;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            jobsList.push_back(parseArgU32("jobs", argv[i], 4096));
    } else {
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        for (unsigned j = 1; j < hw; j *= 2)
            jobsList.push_back(j);
        jobsList.push_back(hw);
    }

    // Two seeds per design: the registered configuration plus one
    // deterministic depth perturbation, doubling the batch without
    // doubling the registry.
    const std::vector<batch::Scenario> scenarios =
        batch::registryScenarios({batch::EngineKind::OmniSim}, 2);

    std::cout << "Batch throughput over the full design registry ("
              << scenarios.size() << " scenarios, OmniSim engine)\n\n";

    TablePrinter t({"Jobs", "Ok", "Other", "Wall", "Sims/s", "Speedup"});
    double baseline = 0.0;
    for (const unsigned jobs : jobsList) {
        const batch::BatchReport rep =
            batch::BatchRunner({jobs}).run(scenarios);
        if (baseline == 0.0)
            baseline = rep.wallSeconds;
        t.addRow({strf("%u", rep.jobs),
                  strf("%zu", rep.okCount()),
                  strf("%zu", rep.outcomes.size() - rep.okCount()),
                  fmtSeconds(rep.wallSeconds),
                  strf("%.1f", rep.throughput()),
                  fmtSpeedup(rep.wallSeconds > 0.0
                                 ? baseline / rep.wallSeconds
                                 : 0.0)});
    }
    t.print(std::cout);
    std::cout << "\n'Other' counts non-Ok engine statuses (deadlocks "
                 "injected by depth perturbation etc.); they are "
                 "expected and identical across pool sizes.\n";
    return 0;
}
