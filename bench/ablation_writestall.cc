/**
 * @file
 * Ablation: eager vs lazy blocking-write stalls (§6.2's "threads with
 * only blocking writes never pause" optimization). Lazy mode trades a
 * little accuracy on query-heavy designs (the paper's <=0.2% deltas in
 * Fig. 8a) for fewer thread pauses; eager mode is exact by construction.
 */

#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

int
main()
{
    setLogQuiet(true);
    std::cout << "Ablation: eager vs lazy blocking-write stalls\n\n";

    TablePrinter t({"Design", "Eager cycles", "Lazy cycles", "Delta",
                    "Eager pauses", "Lazy pauses", "Func match"});
    std::vector<std::string> names;
    for (const auto &e : designs::typeBCDesigns())
        names.push_back(e.name);
    for (const char *n : {"axis_stream", "accum_dataflow",
                          "inr_arch_lite", "skynet_lite"})
        names.push_back(n);

    for (const auto &name : names) {
        FrontEndRun fe = runFrontEnd(designs::findDesign(name));

        OmniSimOptions eager;
        const SimResult a = simulateOmniSim(fe.cd, eager);

        OmniSimOptions lazy;
        lazy.eagerWriteStall = false;
        const SimResult b = simulateOmniSim(fe.cd, lazy);

        std::string delta = "-";
        if (a.status == SimStatus::Ok && b.status == SimStatus::Ok) {
            delta = strf("%+.3f%%",
                         100.0 *
                             (static_cast<double>(b.totalCycles) -
                              static_cast<double>(a.totalCycles)) /
                             static_cast<double>(a.totalCycles));
        }
        t.addRow({name,
                  a.status == SimStatus::Ok
                      ? strf("%llu", static_cast<unsigned long long>(
                                         a.totalCycles))
                      : simStatusName(a.status),
                  b.status == SimStatus::Ok
                      ? strf("%llu", static_cast<unsigned long long>(
                                         b.totalCycles))
                      : simStatusName(b.status),
                  delta,
                  strf("%llu", static_cast<unsigned long long>(
                                   a.stats.threadPauses)),
                  strf("%llu", static_cast<unsigned long long>(
                                   b.stats.threadPauses)),
                  a.memories == b.memories ? "yes" : "DIFFERS"});
    }
    t.print(std::cout);
    std::cout << "\nEager mode is the default: exact cycles (Fig. 8a at "
                 "0.00%). Lazy mode reproduces the paper's "
                 "finalization-repaired approximation.\n";
    return 0;
}
