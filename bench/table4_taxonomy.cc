/**
 * @file
 * Reproduces Table 4 of the paper: the evaluated Type B and Type C
 * designs with their taxonomy classification (type, module/FIFO counts,
 * access style, cyclicity), produced by the §3.1 classifier.
 */

#include <iostream>

#include "bench_util.hh"
#include "design/classify.hh"
#include "support/table.hh"

using namespace omnisim;
using namespace omnisim::bench;

int
main()
{
    setLogQuiet(true);
    std::cout << "Table 4: evaluated Type B and Type C designs\n\n";

    TablePrinter t({"Name", "Type", "#Mod", "#FIFO", "B/NB", "Cyclic?",
                    "FuncSim", "PerfSim", "Description"});
    for (const auto &e : designs::typeBCDesigns()) {
        Design d = e.build();
        const DesignSummary s = summarize(d);
        const Classification c = classify(d);
        t.addRow({s.name, designTypeName(s.type),
                  strf("%zu", s.numModules), strf("%zu", s.numFifos),
                  s.accessStyle, s.cyclic ? "Yes" : "No",
                  simLevelName(c.funcSimLevel),
                  simLevelName(c.perfSimLevel), e.description});
    }
    t.print(std::cout);

    std::cout << "\nType A suite (Table 5 workloads):\n\n";
    TablePrinter ta({"Name", "Type", "#Mod", "#FIFO", "Description"});
    for (const auto &e : designs::typeADesigns()) {
        Design d = e.build();
        const DesignSummary s = summarize(d);
        ta.addRow({s.name, designTypeName(s.type),
                   strf("%zu", s.numModules), strf("%zu", s.numFifos),
                   e.description});
    }
    ta.print(std::cout);
    return 0;
}
