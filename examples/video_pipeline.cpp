/**
 * @file
 * Real-time video pipeline with frame dropping — the paper's §2.2.1
 * non-blocking motivation: "a real-time video processor must handle
 * frames as they arrive; a non-blocking pipeline allows frames to be
 * dropped under heavy load, avoiding backpressure".
 *
 * A camera produces a frame every `framePeriod` cycles; the encoder
 * takes a data-dependent number of cycles per frame. Frames that
 * arrive while the ingest FIFO is full are dropped. The question a
 * designer actually asks — "how many frames do I drop at this FIFO
 * depth?" — is answered here by OmniSim in milliseconds.
 *
 * Build & run:  ./build/examples/video_pipeline
 */

#include <cstdio>

#include "core/omnisim.hh"
#include "design/context.hh"
#include "design/frontend.hh"
#include "support/prng.hh"

using namespace omnisim;

namespace
{

Design
buildPipeline(std::size_t frames, std::uint32_t fifo_depth)
{
    Design d("video_pipeline");
    const MemId complexity = d.addMemory("complexity", frames);
    const MemId stats = d.addMemory("stats", 3); // encoded, dropped, bits
    {
        Prng prng(42);
        std::vector<Value> cx(frames);
        for (std::size_t i = 0; i < frames; ++i) {
            // Scene cuts every ~50 frames triple the encode cost.
            cx[i] = (i % 50 < 3) ? prng.range(18, 26) : prng.range(5, 9);
        }
        d.setInput(complexity, cx);
    }

    const FifoId ingest = d.declareFifo("ingest", fifo_depth,
                                        AccessKind::NonBlocking,
                                        AccessKind::Blocking);

    constexpr Cycles frame_period = 10;

    const ModuleId camera = d.addModule(
        "camera",
        [=](Context &ctx) {
            Value dropped = 0;
            for (std::size_t f = 0; f < frames; ++f) {
                if (!ctx.writeNb(ingest, ctx.load(complexity, f)))
                    ++dropped; // frame lost: encoder too far behind
                ctx.advance(frame_period - 1);
            }
            ctx.write(ingest, -1); // end of stream
            ctx.store(stats, 1, dropped);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});

    const ModuleId encoder = d.addModule("encoder", [=](Context &ctx) {
        Value encoded = 0;
        Value bits = 0;
        for (;;) {
            const Value cx = ctx.read(ingest);
            if (cx < 0)
                break;
            ctx.advance(static_cast<Cycles>(cx)); // encode latency
            ++encoded;
            bits += cx * 100;
        }
        ctx.store(stats, 0, encoded);
        ctx.store(stats, 2, bits);
    });

    d.connectFifo(ingest, camera, encoder);
    return d;
}

} // namespace

int
main()
{
    constexpr std::size_t frames = 3000;
    std::printf("Camera at 1 frame / 10 cycles; encoder cost 5-26 "
                "cycles/frame (scene cuts are expensive).\n");
    std::printf("%-11s %-9s %-9s %-11s %s\n", "FIFO depth", "encoded",
                "dropped", "drop rate", "pipeline cycles");

    for (std::uint32_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
        Design d = buildPipeline(frames, depth);
        const CompiledDesign cd = compile(d);
        const SimResult r = simulateOmniSim(cd);
        if (!r.ok()) {
            std::printf("%-11u %s\n", depth, simStatusName(r.status));
            continue;
        }
        const auto &s = r.memories.at("stats");
        std::printf("%-11u %-9lld %-9lld %-10.2f%% %llu\n", depth,
                    static_cast<long long>(s[0]),
                    static_cast<long long>(s[1]),
                    100.0 * static_cast<double>(s[1]) / frames,
                    static_cast<unsigned long long>(r.totalCycles));
    }

    std::printf("\nA deeper ingest FIFO rides out scene-cut bursts: the "
                "designer reads off the\nsmallest depth with an "
                "acceptable drop rate. C simulation would report zero\n"
                "drops at every depth (infinite streams).\n");
    return 0;
}
