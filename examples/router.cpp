/**
 * @file
 * Congestion-aware network router — the Type C use case from the
 * paper's introduction: "a network router that dynamically changes
 * output ports depending on congestion" is impossible to validate with
 * C simulation and classically requires RTL simulation.
 *
 * A classifier module routes packets to three output queues with
 * non-blocking writes, falling back to the next port (and ultimately
 * dropping) under backpressure. Port servers drain their queues at
 * different speeds. The routing decision — and therefore the packet
 * distribution — depends on exact hardware timing.
 *
 * Build & run:  ./build/examples/router
 */

#include <cstdio>

#include "core/omnisim.hh"
#include "cosim/cosim.hh"
#include "csim/csim.hh"
#include "design/context.hh"
#include "design/frontend.hh"
#include "support/prng.hh"

using namespace omnisim;

namespace
{

Design
buildRouter(std::size_t packets)
{
    Design d("router");
    const MemId traffic = d.addMemory("traffic", packets);
    const MemId delivered = d.addMemory("delivered", 3);
    const MemId dropped_out = d.addMemory("dropped", 1);
    {
        Prng prng(2026);
        std::vector<Value> pkts(packets);
        for (auto &p : pkts)
            p = prng.range(1, 1'000'000);
        d.setInput(traffic, pkts);
    }

    const FifoId port[3] = {
        d.declareFifo("port0", 4, AccessKind::Mixed),
        d.declareFifo("port1", 4, AccessKind::Mixed),
        d.declareFifo("port2", 4, AccessKind::Mixed),
    };

    const ModuleId classifier = d.addModule(
        "classifier",
        [=](Context &ctx) {
            Value dropped = 0;
            for (std::size_t i = 0; i < packets; ++i) {
                const Value pkt = ctx.load(traffic, i);
                // Preferred port from the header; spill to the next
                // port under congestion; drop when everything is full.
                const int pref = static_cast<int>(pkt % 3);
                bool sent = false;
                for (int k = 0; k < 3 && !sent; ++k)
                    sent = ctx.writeNb(port[(pref + k) % 3], pkt);
                if (!sent)
                    ++dropped;
            }
            for (const FifoId p : port)
                ctx.write(p, -1); // end-of-stream
            ctx.store(dropped_out, 0, dropped);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});

    ModuleId servers[3];
    const Cycles service_time[3] = {1, 3, 6}; // fast / medium / slow
    for (int p = 0; p < 3; ++p) {
        const FifoId in_f = port[p];
        const Cycles lat = service_time[p];
        servers[p] = d.addModule(strf("server%d", p), [=](Context &ctx) {
            Value count = 0;
            for (;;) {
                const Value pkt = ctx.read(in_f);
                if (pkt < 0)
                    break;
                ctx.advance(lat);
                ++count;
            }
            ctx.store(delivered, static_cast<std::uint64_t>(p), count);
        });
    }
    for (int p = 0; p < 3; ++p)
        d.connectFifo(port[p], classifier, servers[p]);
    return d;
}

void
report(const char *engine, const SimResult &r)
{
    if (!r.ok()) {
        std::printf("%-8s: %s\n", engine, simStatusName(r.status));
        return;
    }
    const auto &del = r.memories.at("delivered");
    std::printf("%-8s: port0=%lld port1=%lld port2=%lld dropped=%lld"
                "%s%s\n",
                engine, static_cast<long long>(del[0]),
                static_cast<long long>(del[1]),
                static_cast<long long>(del[2]),
                static_cast<long long>(r.scalar("dropped")),
                r.totalCycles ? strf("  (total %llu cycles)",
                                     static_cast<unsigned long long>(
                                         r.totalCycles))
                                    .c_str()
                              : "",
                "");
}

} // namespace

int
main()
{
    constexpr std::size_t packets = 5000;
    Design d = buildRouter(packets);
    const CompiledDesign cd = compile(d);

    std::printf("Routing %zu packets across 3 ports with NB fallback\n\n",
                packets);
    report("C-sim", simulateCSim(cd)); // everything lands on the
                                       // preferred port: no congestion
                                       // exists at C level
    CosimOptions co;
    co.modelRtlCost = false;
    report("Co-sim", simulateCosim(cd, co));
    report("OmniSim", simulateOmniSim(cd));

    std::printf("\nUnder real hardware timing the slow ports congest and "
                "traffic spills over —\nexactly the behaviour C "
                "simulation cannot express (Sec. 1 of the paper).\n");
    return 0;
}
