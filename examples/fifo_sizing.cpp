/**
 * @file
 * FIFO design-space exploration with incremental re-simulation (§7.2).
 *
 * Sizing FIFOs is the canonical HLS tuning task: too small stalls or
 * deadlocks, too big burns BRAM. This example sweeps the two FIFO
 * depths of a reconvergent dataflow design. After one full OmniSim run,
 * each candidate configuration is first attempted incrementally —
 * microseconds when the recorded constraints still hold — and only
 * falls back to a full re-run when behaviour would change, exactly the
 * Table 6 workflow.
 *
 * Build & run:  ./build/examples/fifo_sizing
 */

#include <cstdio>
#include <vector>

#include "core/omnisim.hh"
#include "design/context.hh"
#include "design/frontend.hh"
#include "designs/common.hh"
#include "support/stopwatch.hh"

using namespace omnisim;

namespace
{

/** Splitter feeds two unbalanced branches that a joiner recombines:
 *  the classic reconvergence that makes FIFO sizing non-obvious. */
Design
buildReconvergent(std::uint32_t depth_fast, std::uint32_t depth_slow)
{
    constexpr std::size_t n = 2000;
    Design d("reconvergent");
    const MemId data = d.addMemory("data", n);
    const MemId out = d.addMemory("out", 1);
    d.setInput(data, omnisim::designs::iotaData(n));

    const FifoId fast_f = d.declareFifo("fast", depth_fast);
    const FifoId slow_f = d.declareFifo("slow", depth_slow);
    const FifoId fast_o = d.declareFifo("fast_o", 2);
    const FifoId slow_o = d.declareFifo("slow_o", 2);

    const ModuleId split = d.addModule("split", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i) {
            const Value v = ctx.load(data, i);
            ctx.write(fast_f, v);
            ctx.write(slow_f, v);
        }
    });
    const ModuleId fast = d.addModule("fast_path", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(fast_o, ctx.read(fast_f) * 2);
    });
    const ModuleId slow = d.addModule("slow_path", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i) {
            const Value v = ctx.read(slow_f);
            // Bursty transform: every 4th element is expensive. Deeper
            // FIFOs smooth the bursts, which is what makes sizing a
            // genuine trade-off.
            ctx.advance(i % 4 == 0 ? 13 : 1);
            ctx.write(slow_o, v * v);
        }
    });
    const ModuleId join = d.addModule("join", [=](Context &ctx) {
        Value acc = 0;
        for (std::size_t i = 0; i < n; ++i)
            acc += ctx.read(fast_o) ^ ctx.read(slow_o);
        ctx.store(out, 0, acc);
    });

    d.connectFifo(fast_f, split, fast);
    d.connectFifo(slow_f, split, slow);
    d.connectFifo(fast_o, fast, join);
    d.connectFifo(slow_o, slow, join);
    return d;
}

} // namespace

int
main()
{
    setLogQuiet(true);

    // Baseline run at generous depths records the simulation graph.
    Design base = buildReconvergent(64, 64);
    const CompiledDesign cd = compile(base);
    OmniSim engine(cd);
    Stopwatch full_sw;
    const SimResult baseline = engine.run();
    const double full_ms = full_sw.millis();
    if (!baseline.ok()) {
        std::printf("baseline failed: %s\n", baseline.message.c_str());
        return 1;
    }
    std::printf("baseline (64,64): %llu cycles, full run %.2f ms\n\n",
                static_cast<unsigned long long>(baseline.totalCycles),
                full_ms);

    std::printf("%-12s %-10s %-14s %-10s %s\n", "fast depth",
                "slow depth", "cycles", "method", "analysis time");
    std::uint64_t incremental_hits = 0;
    std::uint64_t fallbacks = 0;
    for (std::uint32_t fast : {1u, 2u, 4u, 8u, 16u}) {
        for (std::uint32_t slow : {1u, 2u, 4u, 8u, 16u}) {
            Stopwatch sw;
            const IncrementalOutcome inc =
                engine.resimulate({fast, slow, 2, 2});
            if (inc.reused) {
                ++incremental_hits;
                std::printf("%-12u %-10u %-14llu %-10s %.1f us\n", fast,
                            slow,
                            static_cast<unsigned long long>(
                                inc.result.totalCycles),
                            "incr", sw.micros());
                continue;
            }
            // Constraints diverged (e.g. the configuration deadlocks):
            // fall back to a full run, as Table 6's last row does.
            ++fallbacks;
            Design d2 = buildReconvergent(fast, slow);
            const CompiledDesign cd2 = compile(d2);
            const SimResult r = simulateOmniSim(cd2);
            std::printf("%-12u %-10u %-14s %-10s %.2f ms\n", fast, slow,
                        r.ok() ? strf("%llu",
                                      static_cast<unsigned long long>(
                                          r.totalCycles))
                                     .c_str()
                               : simStatusName(r.status),
                        "full", sw.millis());
        }
    }
    std::printf("\n%llu configurations re-analyzed incrementally, %llu "
                "needed a full re-run.\n",
                static_cast<unsigned long long>(incremental_hits),
                static_cast<unsigned long long>(fallbacks));
    std::printf("Latency is bound by the slow path's aggregate compute, "
                "so every depth >= 1 hits\nthe same cycle count — the "
                "sweep proves the FIFOs can shrink to depth 1 for free\n"
                "BRAM savings, and each answer cost microseconds instead "
                "of a full re-simulation.\n");
    return 0;
}
