/**
 * @file
 * Joint FIFO sizing with the DSE subsystem (§7.2 of the paper).
 *
 * Sizing FIFOs is the canonical HLS tuning task: too small stalls or
 * deadlocks, too big burns BRAM. This example explores all four FIFO
 * depths of the registered `reconvergent` design — a splitter feeding
 * two phase-shifted bursty branches that a joiner recombines, so the
 * depths genuinely trade buffer cost against latency. An exhaustive
 * grid establishes ground truth, then greedy coordinate descent finds
 * the same min-latency configuration with a fraction of the
 * evaluations; in both searches almost every configuration is served
 * by incremental re-simulation (microseconds) instead of a full run —
 * exactly the Table 6 workflow, driven by a policy engine.
 *
 * Build & run:  ./build/example_fifo_sizing
 */

#include <cstdio>

#include "dse/dse.hh"
#include "support/logging.hh"

using namespace omnisim;

namespace
{

void
printSearch(const char *title, const dse::DseReport &rep)
{
    std::printf("%s\n", title);
    std::printf("  evaluated %zu configs: %zu full runs, %zu incremental "
                "(%.1f%% incremental), %.3f s\n",
                rep.evaluations.size(), rep.fullRuns, rep.incrementalHits,
                rep.hitRate() * 100.0, rep.wallSeconds);

    std::printf("  Pareto frontier (cost = total buffer slots):\n");
    for (const auto &e : rep.frontier) {
        std::printf("    cost %-4llu cycles %-7llu",
                    static_cast<unsigned long long>(e.cost),
                    static_cast<unsigned long long>(e.latency));
        for (const std::size_t a : rep.axes)
            std::printf(" %s=%u", rep.fifoNames[a].c_str(), e.depths[a]);
        std::printf("%s%s\n",
                    e.depths == rep.minLatency.depths ? "  <- min-latency"
                                                      : "",
                    e.depths == rep.knee.depths ? "  <- knee" : "");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    setLogQuiet(true);

    // Explore all four FIFOs over geometric depth ladders 1..16.
    dse::DseOptions opts;
    opts.strategy = "grid";
    opts.budget = 1024; // 5^4 = 625 grid points fit comfortably

    const dse::DseReport grid =
        dse::exploreRegistered("reconvergent", opts);
    if (!grid.anyOk) {
        std::printf("no configuration completed\n");
        return 1;
    }
    printSearch("exhaustive grid (ground truth):", grid);

    opts.strategy = "greedy";
    opts.budget = 128;
    const dse::DseReport greedy =
        dse::exploreRegistered("reconvergent", opts);
    printSearch("greedy coordinate descent:", greedy);

    std::printf("grid searched %zu configs; greedy reached cycles=%llu "
                "(grid optimum %llu) in %zu configs — %s\n",
                grid.evaluations.size(),
                static_cast<unsigned long long>(greedy.minLatency.latency),
                static_cast<unsigned long long>(grid.minLatency.latency),
                greedy.evaluations.size(),
                greedy.minLatency.latency == grid.minLatency.latency
                    ? "same optimum, far fewer simulations"
                    : "a near-optimal configuration");
    std::printf("Each configuration cost microseconds, not a full "
                "re-simulation: the recorded\nconstraints of a handful of "
                "full runs answered everything else (§7.2).\n");
    return 0;
}
