/**
 * @file
 * Quickstart: the paper's Fig. 2 motivating example, end to end.
 *
 * A compute module halves each input value; a timer module counts the
 * hardware cycles it spends polling for results. Naive C simulation
 * gets the count wrong (0 — it depends on OS thread luck); OmniSim
 * reports the exact hardware answer at near-C speed, matching
 * cycle-accurate co-simulation.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/omnisim.hh"
#include "cosim/cosim.hh"
#include "csim/csim.hh"
#include "design/classify.hh"
#include "design/context.hh"
#include "design/frontend.hh"
#include "support/stopwatch.hh"

using namespace omnisim;

int
main()
{
    // ---- 1. Describe the hardware as a dataflow design --------------
    constexpr std::size_t n = 1000;
    Design design("fig2_quickstart");

    const MemId data = design.addMemory("data", n);
    const MemId cycles_out = design.addMemory("cycles", 1);
    const MemId sum_out = design.addMemory("sum", 1);
    {
        std::vector<Value> in(n);
        for (std::size_t i = 0; i < n; ++i)
            in[i] = static_cast<Value>(2 * i + 10);
        design.setInput(data, in);
    }

    const FifoId d_in = design.declareFifo("d_in", 2);
    const FifoId results = design.declareFifo("FIFO", 2,
                                              AccessKind::Blocking,
                                              AccessKind::NonBlocking);

    const ModuleId feeder = design.addModule("feeder", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(d_in, ctx.load(data, i));
    });

    const ModuleId compute = design.addModule("compute", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i) {
            const Value d = ctx.read(d_in);
            ctx.advance(1); // d_out = d / 2 takes one cycle
            ctx.write(results, d / 2);
        }
    });

    // The timer polls the result FIFO — functionality that *depends on
    // hardware timing* (Type C in the paper's taxonomy).
    const ModuleId timer = design.addModule(
        "timer",
        [=](Context &ctx) {
            Value cycles = 0;
            Value sum = 0;
            for (std::size_t i = 0; i < n; ++i) {
                while (ctx.empty(results)) {
                    ++cycles;
                    ctx.advance(1);
                }
                sum += ctx.read(results);
            }
            ctx.store(cycles_out, 0, cycles);
            ctx.store(sum_out, 0, sum);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});

    design.connectFifo(d_in, feeder, compute);
    design.connectFifo(results, compute, timer);

    // ---- 2. Front-end compilation + taxonomy ------------------------
    const CompiledDesign cd = compile(design);
    std::printf("design '%s': Type %s, FuncSim %s / PerfSim %s\n\n",
                design.name().c_str(),
                designTypeName(cd.classification.type),
                simLevelName(cd.classification.funcSimLevel),
                simLevelName(cd.classification.perfSimLevel));

    // ---- 3. Naive C simulation gets the timer wrong ------------------
    const SimResult cs = simulateCSim(cd);
    std::printf("C-sim   : timer counted %lld cycles (WRONG — thread "
                "scheduling, not hardware)\n",
                static_cast<long long>(cs.scalar("cycles")));

    // ---- 4. Co-simulation: the slow ground truth ---------------------
    Stopwatch co_sw;
    const SimResult co = simulateCosim(cd);
    std::printf("Co-sim  : timer counted %lld cycles, total %llu cycles "
                "(%.2f ms)\n",
                static_cast<long long>(co.scalar("cycles")),
                static_cast<unsigned long long>(co.totalCycles),
                co_sw.millis());

    // ---- 5. OmniSim: same answer at near-C speed ---------------------
    Stopwatch om_sw;
    const SimResult om = simulateOmniSim(cd);
    std::printf("OmniSim : timer counted %lld cycles, total %llu cycles "
                "(%.2f ms) — %s\n",
                static_cast<long long>(om.scalar("cycles")),
                static_cast<unsigned long long>(om.totalCycles),
                om_sw.millis(),
                om.scalar("cycles") == co.scalar("cycles") &&
                        om.totalCycles == co.totalCycles
                    ? "matches co-sim exactly"
                    : "MISMATCH?!");
    return 0;
}
