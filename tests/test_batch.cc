/**
 * @file
 * Batch-simulation subsystem tests: parallel fan-out must be
 * bit-identical to serial execution, failing scenarios must be isolated
 * instead of aborting the batch, and the scenario generators must cover
 * the registry deterministically.
 */

#include <gtest/gtest.h>

#include "batch/batch.hh"
#include "helpers.hh"

using namespace omnisim;
using namespace omnisim::batch;

namespace
{

/** A small but representative scenario mix: Type A, Type B/C, a design
 *  that deadlocks, and seed-perturbed variants of each. */
std::vector<Scenario>
mixedScenarios()
{
    std::vector<Scenario> out;
    for (const char *design :
         {"fifo_chain", "fir_filter", "fig4_ex2", "fig4_ex5",
          "deadlock"}) {
        for (std::uint64_t seed : {0, 1}) {
            Scenario s;
            s.design = design;
            s.seed = seed;
            out.push_back(std::move(s));
        }
    }
    return out;
}

void
expectSameOutcome(const ScenarioOutcome &a, const ScenarioOutcome &b)
{
    const std::string label = a.scenario.label();
    EXPECT_EQ(a.scenario.design, b.scenario.design) << label;
    EXPECT_EQ(a.failed, b.failed) << label;
    EXPECT_EQ(a.error, b.error) << label;
    EXPECT_EQ(a.result.status, b.result.status) << label;
    EXPECT_EQ(a.result.totalCycles, b.result.totalCycles) << label;
    EXPECT_EQ(a.result.memories, b.result.memories) << label;
    EXPECT_EQ(a.result.warnings, b.result.warnings) << label;
}

} // namespace

TEST(Batch, EngineKindNamesRoundTrip)
{
    for (EngineKind e : {EngineKind::CSim, EngineKind::Cosim,
                         EngineKind::LightningSim, EngineKind::OmniSim}) {
        EngineKind parsed;
        ASSERT_TRUE(parseEngineKind(engineKindName(e), parsed));
        EXPECT_EQ(parsed, e);
    }
    EngineKind parsed;
    EXPECT_FALSE(parseEngineKind("verilator", parsed));
}

TEST(Batch, ScenarioLabelIsDescriptive)
{
    Scenario s;
    s.design = "fifo_chain";
    s.engine = EngineKind::Cosim;
    s.seed = 7;
    s.depths.push_back({"a", 12});
    EXPECT_EQ(s.label(), "fifo_chain/cosim/s7/a=12");
}

TEST(Batch, RunnerResolvesJobCount)
{
    EXPECT_GE(BatchRunner({0}).jobs(), 1u);
    EXPECT_EQ(BatchRunner({3}).jobs(), 3u);
}

TEST(Batch, ParallelMatchesSerialBitExactly)
{
    const std::vector<Scenario> scenarios = mixedScenarios();
    const BatchReport serial = BatchRunner({1}).run(scenarios);
    const BatchReport parallel = BatchRunner({4}).run(scenarios);

    ASSERT_EQ(serial.outcomes.size(), scenarios.size());
    ASSERT_EQ(parallel.outcomes.size(), scenarios.size());
    EXPECT_EQ(serial.jobs, 1u);
    EXPECT_EQ(parallel.jobs, 4u);
    for (std::size_t i = 0; i < scenarios.size(); ++i)
        expectSameOutcome(serial.outcomes[i], parallel.outcomes[i]);
}

TEST(Batch, RepeatedRunsAreDeterministic)
{
    Scenario s;
    s.design = "fig4_ex5"; // Type C: timing-dependent functionality
    s.seed = 3;
    const ScenarioOutcome a = runScenario(s);
    const ScenarioOutcome b = runScenario(s);
    expectSameOutcome(a, b);
}

TEST(Batch, FailingScenarioDoesNotAbortBatch)
{
    std::vector<Scenario> scenarios(3);
    scenarios[0].design = "fifo_chain";
    scenarios[1].design = "no_such_design";
    scenarios[2].design = "deadlock"; // engine-detected deadlock
    const BatchReport rep = BatchRunner({2}).run(scenarios);

    ASSERT_EQ(rep.outcomes.size(), 3u);
    EXPECT_TRUE(rep.outcomes[0].ok());
    EXPECT_TRUE(rep.outcomes[1].failed);
    EXPECT_NE(rep.outcomes[1].error.find("no_such_design"),
              std::string::npos);
    EXPECT_FALSE(rep.outcomes[2].failed);
    EXPECT_EQ(rep.outcomes[2].result.status, SimStatus::Deadlock);
    EXPECT_EQ(rep.okCount(), 1u);
    EXPECT_EQ(rep.failedCount(), 1u);
}

TEST(Batch, BadDepthOverrideIsIsolated)
{
    std::vector<Scenario> scenarios(2);
    scenarios[0].design = "fifo_chain";
    scenarios[0].depths.push_back({"nope", 4});
    scenarios[1].design = "fifo_chain";
    const BatchReport rep = BatchRunner({2}).run(scenarios);
    EXPECT_TRUE(rep.outcomes[0].failed);
    EXPECT_NE(rep.outcomes[0].error.find("nope"), std::string::npos);
    EXPECT_TRUE(rep.outcomes[1].ok());
}

TEST(Batch, DepthOverrideChangesTiming)
{
    Scenario shallow;
    shallow.design = "fifo_chain";
    shallow.depths.push_back({"a", 1});
    shallow.depths.push_back({"b", 1});
    Scenario deep = shallow;
    deep.depths = {{"a", 64}, {"b", 64}};

    const ScenarioOutcome s = runScenario(shallow);
    const ScenarioOutcome d = runScenario(deep);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(s.result.memories, d.result.memories);
    EXPECT_LE(d.result.totalCycles, s.result.totalCycles);
}

TEST(Batch, SeedPerturbationPreservesFunctionality)
{
    // fifo_chain is Type A: any depth assignment yields the same sums.
    const Scenario base{"fifo_chain", EngineKind::OmniSim, 0, {}};
    const ScenarioOutcome ref = runScenario(base);
    ASSERT_TRUE(ref.ok());
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        Scenario s = base;
        s.seed = seed;
        const ScenarioOutcome o = runScenario(s);
        ASSERT_TRUE(o.ok()) << s.label();
        EXPECT_EQ(o.result.memories, ref.result.memories) << s.label();
    }
}

TEST(Batch, RegistryScenariosCoverBothSuitesTimesEnginesTimesSeeds)
{
    const std::size_t designs = designs::typeBCDesigns().size() +
                                designs::typeADesigns().size();
    const auto scenarios = registryScenarios(
        {EngineKind::OmniSim, EngineKind::Cosim}, 3);
    EXPECT_EQ(scenarios.size(), designs * 2 * 3);
}

TEST(Batch, ReportAggregatesAreConsistent)
{
    const BatchReport rep = BatchRunner({2}).run(mixedScenarios());
    EXPECT_GT(rep.wallSeconds, 0.0);
    EXPECT_GT(rep.throughput(), 0.0);
    EXPECT_LE(rep.okCount() + rep.failedCount(), rep.outcomes.size());
    for (const auto &o : rep.outcomes)
        EXPECT_GE(o.seconds, 0.0) << o.scenario.label();
}

TEST(Batch, EmptyBatchIsANoOp)
{
    const BatchReport rep = BatchRunner({4}).run({});
    EXPECT_TRUE(rep.outcomes.empty());
    EXPECT_EQ(rep.okCount(), 0u);
    EXPECT_EQ(rep.throughput(), 0.0);
}

TEST(Batch, FifoChainSumsWorkloadUnderEveryEngine)
{
    // 1 + 2 + ... + 1024.
    constexpr Value expected = 1024 * 1025 / 2;
    for (EngineKind e : {EngineKind::CSim, EngineKind::Cosim,
                         EngineKind::LightningSim, EngineKind::OmniSim}) {
        Scenario s;
        s.design = "fifo_chain";
        s.engine = e;
        const ScenarioOutcome o = runScenario(s);
        ASSERT_TRUE(o.ok()) << engineKindName(e);
        EXPECT_EQ(o.result.scalar("sum_out"), expected)
            << engineKindName(e);
    }
}
