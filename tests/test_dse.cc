/** @file Design-space-exploration engine tests: space resolution, the
 *  memoizing EvalCache and its §7.2 incremental-reuse pool, the four
 *  search strategies, Pareto/knee distillation, and the determinism
 *  contract (fixed seed ⇒ identical results for any worker count). */

#include <algorithm>

#include <gtest/gtest.h>

#include "design/context.hh"
#include "dse/dse.hh"
#include "dse/strategies.hh"
#include "helpers.hh"

namespace omnisim
{
namespace
{

using dse::DepthVector;
using dse::DseOptions;
using dse::DseReport;
using dse::EvalMethod;

std::function<Design()>
builderOf(const char *name)
{
    return designs::findDesign(name).build;
}

/** Ground truth: fresh full simulation under the given depths. */
SimResult
freshRun(const char *name, const DepthVector &depths)
{
    Design d = designs::findDesign(name).build();
    for (std::size_t f = 0; f < depths.size(); ++f)
        d.setFifoDepth(static_cast<FifoId>(f), depths[f]);
    const CompiledDesign cd = compile(d);
    return simulateOmniSim(cd, test::checkedOmniSim());
}

TEST(DseSpace, EmptySpaceCoversEveryFifoGeometrically)
{
    const Design d = designs::findDesign("reconvergent").build();
    const dse::ResolvedSpace rs = dse::resolveSpace(d, {});
    ASSERT_EQ(rs.axes.size(), 4u);
    ASSERT_EQ(rs.base.size(), 4u);
    for (std::size_t a = 0; a < rs.axes.size(); ++a) {
        EXPECT_EQ(rs.names[a], d.fifos()[rs.axes[a]].name);
        EXPECT_EQ(rs.candidates[a],
                  (std::vector<std::uint32_t>{1, 2, 4, 8, 16}));
    }
    EXPECT_EQ(rs.gridSize(), 625u);
    EXPECT_EQ(rs.maxConfig(), (DepthVector{16, 16, 16, 16}));
}

TEST(DseSpace, LinearRangeAndBasePreservation)
{
    const Design d = designs::findDesign("reconvergent").build();
    dse::DseSpace space;
    space.fifos.push_back({"slow", 2, 5, false});
    const dse::ResolvedSpace rs = dse::resolveSpace(d, space);
    ASSERT_EQ(rs.axes.size(), 1u);
    EXPECT_EQ(rs.candidates[0],
              (std::vector<std::uint32_t>{2, 3, 4, 5}));
    // Unexplored FIFOs keep their registered depth.
    const DepthVector max = rs.maxConfig();
    for (std::size_t f = 0; f < d.fifos().size(); ++f) {
        if (f != rs.axes[0]) {
            EXPECT_EQ(max[f], d.fifos()[f].depth);
        }
    }
}

TEST(DseSpace, RejectsUnknownFifoEmptyRangeAndDuplicates)
{
    const Design d = designs::findDesign("reconvergent").build();
    dse::DseSpace unknown;
    unknown.fifos.push_back({"nope", 1, 4, true});
    EXPECT_THROW(dse::resolveSpace(d, unknown), FatalError);

    dse::DseSpace empty;
    empty.fifos.push_back({"slow", 8, 4, true});
    EXPECT_THROW(dse::resolveSpace(d, empty), FatalError);

    dse::DseSpace dup;
    dup.fifos.push_back({"slow", 1, 4, true});
    dup.fifos.push_back({"slow", 1, 8, true});
    EXPECT_THROW(dse::resolveSpace(d, dup), FatalError);
}

TEST(EvalCache, MemoizesAndCountsMethods)
{
    dse::EvalCache cache(builderOf("fifo_chain"), test::checkedOmniSim());
    const dse::Evaluation first = cache.evaluate({8, 8});
    EXPECT_EQ(first.method, EvalMethod::FullRun);
    EXPECT_EQ(first.cost, 16u);
    ASSERT_TRUE(first.ok());

    // A neighbouring configuration reuses the pooled run (§7.2)...
    const dse::Evaluation inc = cache.evaluate({4, 8});
    EXPECT_EQ(inc.method, EvalMethod::Incremental);
    // ...and a repeat of either is a memo hit, not new work.
    cache.evaluate({8, 8});
    cache.evaluate({4, 8});
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.fullRuns(), 1u);
    EXPECT_EQ(cache.incrementalHits(), 1u);
    EXPECT_EQ(cache.cacheHits(), 2u);
}

TEST(EvalCache, RejectsMalformedDepthVectors)
{
    dse::EvalCache cache(builderOf("fifo_chain"));
    EXPECT_THROW(cache.evaluate({4}), FatalError);       // arity
    EXPECT_THROW(cache.evaluate({4, 0}), FatalError);    // zero depth
}

TEST(EvalCache, IncrementalAnswersMatchFreshFullRuns)
{
    dse::EvalCache cache(builderOf("reconvergent"),
                         test::checkedOmniSim());
    cache.evaluate({16, 16, 16, 16}); // seed the reuse pool
    for (const DepthVector &cfg :
         {DepthVector{1, 1, 1, 1}, DepthVector{2, 8, 1, 4},
          DepthVector{16, 1, 2, 4}, DepthVector{3, 5, 7, 2}}) {
        const dse::Evaluation e = cache.evaluate(cfg);
        const SimResult full = freshRun("reconvergent", cfg);
        ASSERT_TRUE(e.ok());
        ASSERT_EQ(full.status, SimStatus::Ok);
        EXPECT_EQ(e.latency, full.totalCycles)
            << "method=" << dse::evalMethodName(e.method);
    }
    // The pooled constraints, not full re-runs, did most of the work.
    EXPECT_GT(cache.incrementalHits(), 0u);
}

TEST(EvalCache, DivergenceFallbackMatchesFreshRun)
{
    // fig4_ex5 is Type C: deepening the first-choice FIFO flips
    // recorded NB outcomes, so reuse is refused and the cache must fall
    // back to a full run that equals a from-scratch simulation.
    dse::EvalCache cache(builderOf("fig4_ex5"), test::checkedOmniSim());
    ASSERT_TRUE(cache.evaluate({2, 2}).ok());

    const dse::Evaluation e = cache.evaluate({100, 2});
    EXPECT_EQ(e.method, EvalMethod::FullRun); // constraints diverged
    const SimResult fresh = freshRun("fig4_ex5", {100, 2});
    ASSERT_EQ(fresh.status, SimStatus::Ok);
    EXPECT_EQ(e.latency, fresh.totalCycles);
}

DseReport
runDse(const char *design, const char *strategy, std::size_t budget,
       unsigned jobs = 0, std::uint64_t seed = 1,
       dse::DseSpace space = {})
{
    DseOptions opts;
    opts.strategy = strategy;
    opts.budget = budget;
    opts.jobs = jobs;
    opts.seed = seed;
    opts.space = std::move(space);
    return dse::exploreRegistered(design, opts);
}

TEST(DseGrid, CoversTheExactCrossProduct)
{
    dse::DseSpace space;
    space.fifos.push_back({"a", 1, 3, false});
    space.fifos.push_back({"b", 1, 3, false});
    const DseReport rep = runDse("fifo_chain", "grid", 64, 2, 1, space);
    EXPECT_EQ(rep.evaluations.size(), 9u);
    for (std::uint32_t a = 1; a <= 3; ++a)
        for (std::uint32_t b = 1; b <= 3; ++b)
            EXPECT_TRUE(std::any_of(
                rep.evaluations.begin(), rep.evaluations.end(),
                [&](const dse::Evaluation &e) {
                    return e.depths == DepthVector{a, b};
                }))
                << a << "," << b;
}

TEST(DseGrid, MajorityOfEvaluationsServedIncrementally)
{
    // The ISSUE acceptance bar: on fifo_chain, most grid evaluations
    // must come from resimulate(), not full re-runs.
    const DseReport rep = runDse("fifo_chain", "grid", 64);
    EXPECT_EQ(rep.evaluations.size(), 25u); // 5 x 5 geometric ladders
    EXPECT_GT(rep.incrementalHits, rep.fullRuns);
    EXPECT_GT(2 * rep.incrementalHits, rep.evaluations.size());
}

TEST(DseGrid, BudgetIsAHardCeiling)
{
    const DseReport rep = runDse("reconvergent", "grid", 7);
    EXPECT_LE(rep.evaluations.size(), 7u);
    EXPECT_GE(rep.evaluations.size(), 1u); // warm start always lands
}

TEST(DseReport, FrontierIsParetoAndKneeLiesOnIt)
{
    const DseReport rep = runDse("reconvergent", "grid", 1024);
    ASSERT_TRUE(rep.anyOk);
    ASSERT_FALSE(rep.frontier.empty());
    for (std::size_t i = 1; i < rep.frontier.size(); ++i) {
        EXPECT_LT(rep.frontier[i - 1].cost, rep.frontier[i].cost);
        EXPECT_GT(rep.frontier[i - 1].latency, rep.frontier[i].latency);
    }
    // No evaluation dominates any frontier point.
    for (const auto &f : rep.frontier)
        for (const auto &e : rep.evaluations) {
            if (e.ok()) {
                EXPECT_FALSE(e.cost <= f.cost && e.latency <= f.latency &&
                             (e.cost < f.cost || e.latency < f.latency))
                    << "frontier point dominated";
            }
        }
    const auto onFrontier = [&](const dse::Evaluation &p) {
        return std::any_of(rep.frontier.begin(), rep.frontier.end(),
                           [&](const dse::Evaluation &f) {
                               return f.depths == p.depths;
                           });
    };
    EXPECT_TRUE(onFrontier(rep.minLatency));
    EXPECT_TRUE(onFrontier(rep.knee));
    EXPECT_EQ(rep.minLatency.latency, rep.frontier.back().latency);
}

TEST(DseStrategies, GreedyFindsTheGridOptimumLatency)
{
    const DseReport grid = runDse("reconvergent", "grid", 1024);
    const DseReport greedy = runDse("reconvergent", "greedy", 128);
    ASSERT_TRUE(grid.anyOk);
    ASSERT_TRUE(greedy.anyOk);
    EXPECT_EQ(greedy.minLatency.latency, grid.minLatency.latency);
    EXPECT_LT(greedy.evaluations.size(), grid.evaluations.size());
}

TEST(DseStrategies, AnnealFindsTheGridOptimumLatency)
{
    const DseReport grid = runDse("reconvergent", "grid", 1024);
    const DseReport anneal = runDse("reconvergent", "anneal", 160, 0, 42);
    ASSERT_TRUE(grid.anyOk);
    ASSERT_TRUE(anneal.anyOk);
    EXPECT_EQ(anneal.minLatency.latency, grid.minLatency.latency);
}

TEST(DseStrategies, AnnealStallBoundTerminatesNearGridBudgets)
{
    // Regression for the ROADMAP open item: `reconvergent --budget 512`
    // puts the budget near the default lattice's 625-point grid, and
    // the cooled chain used to crawl for minutes hunting the last
    // unseen configurations — every wave a full re-walk of the cache.
    // The stall bound (256 consecutive proposals without a new unique
    // configuration) must end the search promptly instead; without it
    // this test effectively hangs under the CI timeout. The chain still
    // has to do real work first: it must reach the grid optimum before
    // stalling out.
    const DseReport rep = runDse("reconvergent", "anneal", 512, 0, 42);
    ASSERT_TRUE(rep.anyOk);
    EXPECT_LE(rep.evaluations.size(), 512u);
    const DseReport grid = runDse("reconvergent", "grid", 1024);
    EXPECT_EQ(rep.minLatency.latency, grid.minLatency.latency);
}

TEST(DseStrategies, BinarySearchMatchesGridOnTheChain)
{
    const DseReport grid = runDse("fifo_chain", "grid", 64);
    const DseReport binary = runDse("fifo_chain", "binary", 64);
    ASSERT_TRUE(grid.anyOk);
    ASSERT_TRUE(binary.anyOk);
    EXPECT_EQ(binary.minLatency.latency, grid.minLatency.latency);
    EXPECT_EQ(binary.minLatency.cost, grid.minLatency.cost);
    EXPECT_LT(binary.evaluations.size(), grid.evaluations.size());
}

/** Strip scheduling-dependent fields so runs can be compared. */
struct Essence
{
    DepthVector depths;
    SimStatus status;
    Cycles latency;
    std::uint64_t cost;

    bool
    operator==(const Essence &o) const
    {
        return depths == o.depths && status == o.status &&
               latency == o.latency && cost == o.cost;
    }
};

std::vector<Essence>
essenceOf(const std::vector<dse::Evaluation> &evals)
{
    std::vector<Essence> out;
    for (const auto &e : evals)
        out.push_back({e.depths, e.status, e.latency, e.cost});
    return out;
}

TEST(DseStrategies, SeededAnnealIsBitIdenticalAcrossWorkerCounts)
{
    // The determinism contract: proposals and acceptance draws are
    // generated serially, evaluations are pure and memoized, so the
    // whole search — not just the best point — is identical whether
    // the waves run on one worker or eight. (The evaluation *method*
    // may differ: pool contents depend on completion order.)
    const DseReport a = runDse("reconvergent", "anneal", 96, 1, 7);
    const DseReport b = runDse("reconvergent", "anneal", 96, 8, 7);
    EXPECT_EQ(essenceOf(a.evaluations), essenceOf(b.evaluations));
    EXPECT_EQ(essenceOf(a.frontier), essenceOf(b.frontier));
    EXPECT_EQ(a.minLatency.depths, b.minLatency.depths);
    EXPECT_EQ(a.knee.depths, b.knee.depths);

    // A different seed explores a different trajectory.
    const DseReport c = runDse("reconvergent", "anneal", 96, 4, 8);
    EXPECT_NE(essenceOf(a.evaluations), essenceOf(c.evaluations));
}

TEST(DseStrategies, GridAndGreedyAreBitIdenticalAcrossWorkerCounts)
{
    for (const char *strategy : {"grid", "greedy"}) {
        const DseReport a = runDse("reconvergent", strategy, 200, 1);
        const DseReport b = runDse("reconvergent", strategy, 200, 6);
        EXPECT_EQ(essenceOf(a.evaluations), essenceOf(b.evaluations))
            << strategy;
        EXPECT_EQ(a.minLatency.depths, b.minLatency.depths) << strategy;
    }
}

TEST(DseStrategies, UnknownStrategyThrows)
{
    DseOptions opts;
    opts.strategy = "quantum";
    EXPECT_THROW(dse::exploreRegistered("fifo_chain", opts), FatalError);
}

TEST(DseExplore, ThrowingCompileIsIsolatedPerEvaluation)
{
    // A design with a declared-but-unconnected FIFO builds fine but
    // fails compile() with a FatalError. Each evaluation must surface
    // that as a Crash with the message attached — never unwind through
    // the worker pool and kill the search.
    const auto builder = []() {
        Design d("broken");
        d.declareFifo("dangling", 2);
        d.addModule("m", [](Context &) {});
        return d;
    };
    DseOptions opts;
    opts.strategy = "grid";
    opts.budget = 4;
    opts.jobs = 2;
    opts.space.fifos.push_back({"dangling", 1, 2, false});
    const DseReport rep = dse::explore("broken", builder, opts);
    EXPECT_FALSE(rep.anyOk);
    ASSERT_FALSE(rep.evaluations.empty());
    for (const auto &e : rep.evaluations) {
        EXPECT_EQ(e.status, SimStatus::Crash);
        EXPECT_FALSE(e.message.empty());
    }
}

TEST(DseExplore, DeadlockingConfigurationsAreReportedNotFatal)
{
    // The reconverge pattern of test_incremental: a producer writing
    // f2 fully before f1 deadlocks when f2 is shallow. The explorer
    // must record those points as Deadlock and keep going.
    dse::DseSpace space;
    space.fifos.push_back({"f1", 1, 8, true});
    space.fifos.push_back({"f2", 1, 8, true});
    DseOptions opts;
    opts.strategy = "grid";
    opts.budget = 64;
    opts.space = space;
    const std::size_t n = 6;
    const auto builder = [n]() {
        Design d("reconverge");
        const MemId out = d.addMemory("out", 1);
        const FifoId f1 = d.declareFifo("f1", 8);
        const FifoId f2 = d.declareFifo("f2", 8);
        const ModuleId p = d.addModule("p", [=](Context &ctx) {
            for (std::size_t i = 0; i < n; ++i)
                ctx.write(f2, static_cast<Value>(i));
            for (std::size_t i = 0; i < n; ++i)
                ctx.write(f1, static_cast<Value>(i));
        });
        const ModuleId c = d.addModule("c", [=](Context &ctx) {
            Value sum = 0;
            for (std::size_t i = 0; i < n; ++i) {
                sum += ctx.read(f1);
                sum += ctx.read(f2);
            }
            ctx.store(out, 0, sum);
        });
        d.connectFifo(f1, p, c);
        d.connectFifo(f2, p, c);
        return d;
    };
    const DseReport rep = dse::explore("reconverge", builder, opts);
    ASSERT_TRUE(rep.anyOk);
    EXPECT_TRUE(std::any_of(rep.evaluations.begin(),
                            rep.evaluations.end(),
                            [](const dse::Evaluation &e) {
                                return e.status == SimStatus::Deadlock;
                            }));
    // Deadlocked points never appear on the frontier.
    for (const auto &f : rep.frontier)
        EXPECT_TRUE(f.ok());
}

} // namespace
} // namespace omnisim
