/** @file Generator + differential conformance harness tests: spec
 *  serialization round trips, generator determinism and coverage, a
 *  fixed-seed conformance corpus across every oracle pair, shrinker
 *  minimality/validity, and one minimized regression repro per
 *  divergence the harness found during development. */

#include <gtest/gtest.h>

#include <set>

#include "design/frontend.hh"
#include "gen/conformance.hh"
#include "gen/generate.hh"
#include "gen/shrink.hh"
#include "gen/spec.hh"
#include "helpers.hh"
#include "support/prng.hh"

namespace omnisim
{
namespace
{

using gen::GenConfig;
using gen::GenEdge;
using gen::GenProc;
using gen::GenSpec;
using gen::PortMode;

/** Corpus-wide conformance options: cheap but complete. */
gen::ConformanceOptions
corpusOptions()
{
    gen::ConformanceOptions o;
    o.resimProbes = 3;
    o.groundTruthProbes = 1;
    return o;
}

// ---------------------------------------------------------------------------
// Spec model and serialization.
// ---------------------------------------------------------------------------

TEST(GenSpec, SerializationRoundTripsGeneratedSpecs)
{
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        const GenSpec spec = gen::generateSpec(seed);
        const std::string text = gen::specToString(spec);
        const GenSpec again = gen::parseSpec(text);
        EXPECT_EQ(spec, again) << text;
        EXPECT_EQ(text, gen::specToString(again));
    }
    // Seeds are full u64: the replay workflow must round-trip the
    // upper half of the seed space too.
    const GenSpec high = gen::generateSpec(0x8000000000000005ull);
    EXPECT_EQ(gen::parseSpec(gen::specToString(high)), high);
}

TEST(GenSpec, ParseRejectsMalformedText)
{
    const GenSpec ok = gen::generateSpec(7);
    const std::string good = gen::specToString(ok);
    EXPECT_NO_THROW(gen::parseSpec(good));
    for (const std::string &bad :
         {std::string("g2;seed=1;items=4;extra=0@0"),
          std::string("g1;seed=1;items=0;extra=0@0"),
          std::string("g1;seed=1;items=4;extra=0@0;X 0>1 d=2 w=b r=b"),
          std::string("g1;seed=1;items=4;extra=0@0;E 0>0 d=2 w=b r=b"),
          std::string("g1;seed=1;items=4;extra=0@0;E 0>1 d=2 w=q r=b"),
          // 2^64 + 1: must be an overflow error, never a silent wrap
          // that replays a different design than the text claims.
          std::string("g1;seed=18446744073709551617;items=4;extra=0@0"),
          // 2^32 + 4 in a 32-bit field: out-of-width, not a wrap to 4.
          std::string("g1;seed=1;items=4294967300;extra=0@0"),
          good + ";", good + "trailing"}) {
        EXPECT_THROW(gen::parseSpec(bad), FatalError) << bad;
    }
}

TEST(GenSpec, ValidationCatchesBrokenStructure)
{
    GenSpec s;
    EXPECT_FALSE(gen::specIsValid(s)); // no processes
    s.procs.resize(2);
    EXPECT_TRUE(gen::specIsValid(s));
    s.edges.push_back({0, 5, 2, PortMode::Blocking, PortMode::Blocking});
    EXPECT_FALSE(gen::specIsValid(s)); // endpoint out of range
    s.edges[0].reader = 1;
    EXPECT_TRUE(gen::specIsValid(s));
    s.edges[0].depth = 0;
    EXPECT_FALSE(gen::specIsValid(s));
    s.edges[0].depth = 2;
    s.extraReads = 1;
    s.extraProc = 0; // proc 0 has no blocking forward in-edge
    EXPECT_FALSE(gen::specIsValid(s));
    s.extraProc = 1;
    EXPECT_TRUE(gen::specIsValid(s));
}

TEST(GenSpec, MaterializeCompilesAcrossSeeds)
{
    std::set<char> types;
    for (std::uint64_t seed = 1; seed <= 120; ++seed) {
        const GenSpec spec = gen::generateSpec(seed);
        Design d = gen::materialize(spec);
        const CompiledDesign cd = compile(d);
        types.insert(designTypeName(cd.classification.type)[0]);
        EXPECT_EQ(d.fifos().size(), spec.edges.size());
        EXPECT_EQ(d.modules().size(), spec.procs.size());
    }
    // The generator must cover the whole taxonomy.
    EXPECT_TRUE(types.count('A'));
    EXPECT_TRUE(types.count('B'));
    EXPECT_TRUE(types.count('C'));
}

TEST(GenSpec, GenerationIsDeterministicAndSeedSensitive)
{
    const GenSpec a1 = gen::generateSpec(42);
    const GenSpec a2 = gen::generateSpec(42);
    EXPECT_EQ(a1, a2);
    // Nearby seeds must decorrelate into different structures.
    std::set<std::string> texts;
    for (std::uint64_t seed = 1; seed <= 16; ++seed)
        texts.insert(gen::specToString(gen::generateSpec(seed)));
    EXPECT_GT(texts.size(), 12u);
}

// ---------------------------------------------------------------------------
// Fixed-seed conformance corpus (the bounded ctest version of `fuzz`).
// ---------------------------------------------------------------------------

TEST(GenConformance, DefaultConfigCorpusIsClean)
{
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        const GenSpec spec = gen::generateSpec(seed);
        const gen::ConformanceReport rep =
            gen::checkConformance(spec, corpusOptions());
        EXPECT_TRUE(rep.clean())
            << "seed " << seed << ": " << rep.summary() << "\nspec: "
            << gen::specToString(spec);
    }
}

TEST(GenConformance, NonBlockingHeavyCorpusIsClean)
{
    GenConfig cfg;
    cfg.pNonBlocking = 0.7;
    cfg.pMixedEnds = 0.15;
    cfg.pResponse = 0.4;
    for (std::uint64_t seed = 1001; seed <= 1040; ++seed) {
        const GenSpec spec = gen::generateSpec(seed, cfg);
        const gen::ConformanceReport rep =
            gen::checkConformance(spec, corpusOptions());
        EXPECT_TRUE(rep.clean())
            << "seed " << seed << ": " << rep.summary() << "\nspec: "
            << gen::specToString(spec);
    }
}

TEST(GenConformance, DeadlockInjectionAgreesAcrossEngines)
{
    GenConfig cfg;
    cfg.pDeadlockInjection = 1.0;
    cfg.pNonBlocking = 0.0;
    cfg.pMixedEnds = 0.0;
    std::size_t deadlocks = 0;
    for (std::uint64_t seed = 2001; seed <= 2020; ++seed) {
        const GenSpec spec = gen::generateSpec(seed, cfg);
        const gen::ConformanceReport rep =
            gen::checkConformance(spec, corpusOptions());
        EXPECT_TRUE(rep.clean())
            << "seed " << seed << ": " << rep.summary() << "\nspec: "
            << gen::specToString(spec);
        deadlocks += rep.baseline == SimStatus::Deadlock;
        if (spec.extraReads > 0) {
            EXPECT_EQ(rep.baseline, SimStatus::Deadlock)
                << "seed " << seed;
        }
    }
    EXPECT_GT(deadlocks, 0u);
}

TEST(GenConformance, ReportSummarizesDivergences)
{
    gen::ConformanceReport rep;
    EXPECT_TRUE(rep.clean());
    EXPECT_EQ(rep.summary(), "");
    rep.divergences.push_back({"omnisim-vs-cosim", "cycles differ"});
    rep.divergences.push_back({"io-round-trip", "meta"});
    EXPECT_FALSE(rep.clean());
    EXPECT_EQ(rep.summary(),
              "omnisim-vs-cosim: cycles differ; io-round-trip: meta");
}

// ---------------------------------------------------------------------------
// Shrinker.
// ---------------------------------------------------------------------------

TEST(GenShrink, MinimizesAgainstSyntheticPredicate)
{
    // "Fails" whenever the spec still contains a non-blocking edge: the
    // shrinker must strip everything else and keep exactly that.
    GenConfig cfg;
    cfg.pNonBlocking = 0.9;
    const GenSpec spec = gen::generateSpec(5, cfg);
    const gen::FailPredicate fails = [](const GenSpec &s) {
        for (const GenEdge &e : s.edges)
            if (e.writeMode == PortMode::NonBlocking ||
                e.readMode == PortMode::NonBlocking)
                return true;
        return false;
    };
    ASSERT_TRUE(fails(spec));
    const gen::ShrinkResult res = gen::shrinkSpec(spec, fails);
    EXPECT_TRUE(fails(res.spec));
    EXPECT_TRUE(gen::specIsValid(res.spec));
    EXPECT_EQ(res.spec.items, 1u);
    EXPECT_EQ(res.spec.edges.size(), 1u);
    EXPECT_LE(res.spec.procs.size(), 2u);
    EXPECT_EQ(res.spec.edges[0].depth, 1u);
    // The surviving spec must still materialize and simulate.
    const gen::ConformanceReport rep =
        gen::checkConformance(res.spec, corpusOptions());
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(GenShrink, RespectsAttemptBudgetAndKeepsFailure)
{
    const GenSpec spec = gen::generateSpec(9);
    std::size_t calls = 0;
    const gen::FailPredicate fails = [&](const GenSpec &) {
        ++calls;
        return true; // everything fails: shrink to the floor
    };
    const gen::ShrinkResult res = gen::shrinkSpec(spec, fails, 64);
    EXPECT_LE(res.attempts, 64u);
    EXPECT_TRUE(gen::specIsValid(res.spec));
    EXPECT_GE(calls, res.attempts);
}

// ---------------------------------------------------------------------------
// Regression repros: minimized specs from divergences the harness found
// during development (each must stay conformant forever).
// ---------------------------------------------------------------------------

/** Run one checked-in repro spec through the full oracle matrix. */
void
expectReproClean(const char *text)
{
    const GenSpec spec = gen::parseSpec(text);
    gen::ConformanceOptions opts = corpusOptions();
    opts.resimProbes = 6; // repros lean on depth probes; probe harder
    const gen::ConformanceReport rep = gen::checkConformance(spec, opts);
    EXPECT_TRUE(rep.clean()) << text << "\n" << rep.summary();
}

TEST(GenRegression, MinimalRequestResponseCycle)
{
    // The smallest Type B shape the generator emits: a blocking
    // request/response pair at depth 1 (the fig4_ex3 skeleton).
    expectReproClean(
        "g1;seed=0;items=4;extra=0@0;"
        "P ii=0 pace=0/0/0/0 src=1+0 chk=-;"
        "P ii=0 pace=0/0/0/0 src=1+0 chk=-;"
        "E 0>1 d=1 w=b r=b;E 1>0 d=1 w=b r=b");
}

TEST(GenRegression, CosimRetroactivePipelinedNbCommit)
{
    // Found by fuzz seed 22, shrunk: a pipelined reader's next-iteration
    // readNb lands at an earlier cycle than its stalled blocking read
    // (the elastic-pipeline rule), so the writer's cycle-t writeNb must
    // not conclude "no space" before that retroactive commit is final.
    // Co-simulation used to treat clock-reached as final and dropped an
    // element OmniSim (correctly) delivered.
    expectReproClean(
        "g1;seed=22;items=2;extra=0@0;"
        "P ii=0 pace=0/0/0/0 src=1+0 chk=-;"
        "P ii=1 pace=0/0/0/0 src=1+0 chk=-;"
        "E 0>1 d=1 w=n r=n;E 0>1 d=1 w=b r=b");
}

TEST(GenRegression, BlindForcedQueryVsElasticFixpoint)
{
    // Found by fuzz seed 614, shrunk: a depth probe re-routes a stall
    // cascade (producer blocked on a shallower FIFO behind a paused
    // query owner) into a quiescent state where the engines must apply
    // the §7.1 earliest-query-false rule without being able to prove
    // its precondition. The engines now resolve floor-provable queries
    // soundly first, report the remaining guess (stats.forcedBlind),
    // and the resimulate-vs-fresh oracle holds guess-free runs to bit
    // equality while still requiring engine agreement on guessed ones.
    expectReproClean(
        "g1;seed=614;items=12;extra=0@0;"
        "P ii=0 pace=0/0/0/0 src=1+0 chk=-;"
        "P ii=1 pace=0/9/38/0 src=1+0 chk=-;"
        "P ii=0 pace=1/0/0/0 src=1+0 chk=-;"
        "E 0>1 d=6 w=b r=b;E 0>2 d=1 w=b r=b;E 1>2 d=1 w=n r=n;"
        "E 0>2 d=1 w=b r=b");
}

TEST(GenRegression, ReusedOkVsSerializedDeadlockProbe)
{
    // Found by fuzz seed 209: a probe made the serialized engines
    // deadlock (with pipelined threads' elastic windows still open)
    // where the recorded-run fixpoint completes; the deadlock is now
    // flagged retro-suspect and both engines must still agree.
    expectReproClean(
        "g1;seed=209;items=5;extra=0@0;"
        "P ii=0 pace=1/0/0/0 src=2+1 chk=f;"
        "P ii=0 pace=1/5/9/2 src=2+7 chk=f;"
        "P ii=3 pace=2/11/37/0 src=1+1 chk=-;"
        "P ii=0 pace=0/2/23/1 src=4+0 chk=f;"
        "P ii=2 pace=1/4/30/3 src=4+1 chk=-;"
        "P ii=0 pace=0/3/32/2 src=2+7 chk=f;"
        "P ii=0 pace=2/0/0/0 src=1+1 chk=ef;"
        "E 0>1 d=1 w=b r=b;E 0>2 d=1 w=b r=b;E 1>3 d=5 w=b r=b;"
        "E 1>4 d=1 w=b r=b;E 4>5 d=1 w=b r=b;E 2>6 d=8 w=b r=n;"
        "E 1>5 d=6 w=b r=b;E 2>3 d=8 w=b r=b");
}

TEST(GenRegression, PipelinedNbBurstProducerProbe)
{
    // Found by fuzz seed 63: reconvergent bursty producer feeding a
    // non-blocking edge whose depth probes used to slip past the
    // recorded-constraint re-check.
    expectReproClean(
        "g1;seed=63;items=35;extra=0@0;"
        "P ii=2 pace=0/0/0/0 src=1+3 chk=ef;"
        "P ii=2 pace=2/5/20/4 src=3+1 chk=-;"
        "P ii=2 pace=0/0/0/0 src=3+4 chk=ef;"
        "E 0>1 d=5 w=b r=b;E 1>2 d=7 w=n r=n;E 0>2 d=7 w=b r=b");
}

} // namespace
} // namespace omnisim
