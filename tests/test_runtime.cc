/** @file Unit tests for the runtime substrate: memory, FIFO tables,
 *  AXI burst state, events and the TimingModel golden semantics. */

#include <gtest/gtest.h>

#include "runtime/axi.hh"
#include "runtime/event.hh"
#include "runtime/fifo_table.hh"
#include "runtime/memory.hh"
#include "runtime/result.hh"
#include "runtime/timing.hh"
#include "support/logging.hh"

namespace omnisim
{
namespace
{

TEST(Memory, FillLoadStore)
{
    MemoryPool pool({{"a", 4}, {"b", 2}});
    pool.fill(0, {10, 20, 30});
    EXPECT_EQ(pool.load(0, 0), 10);
    EXPECT_EQ(pool.load(0, 2), 30);
    EXPECT_EQ(pool.load(0, 3), 0); // zero-initialized remainder
    pool.store(1, 1, -5);
    EXPECT_EQ(pool.load(1, 1), -5);
    EXPECT_EQ(pool.count(), 2u);
    EXPECT_EQ(pool.decl(1).name, "b");
}

TEST(Memory, OutOfBoundsIsSimCrash)
{
    MemoryPool pool({{"a", 4}});
    EXPECT_THROW(pool.load(0, 4), SimCrash);
    EXPECT_THROW(pool.store(0, 100, 1), SimCrash);
    EXPECT_THROW(pool.load(1, 0), SimCrash); // bad id
    try {
        pool.load(0, 9);
    } catch (const SimCrash &c) {
        EXPECT_NE(std::string(c.what()).find("a[9]"), std::string::npos);
    }
}

TEST(FifoTable, CommitOrderAndData)
{
    FifoTable t;
    t.commitWrite(100, 5, 50);
    t.commitWrite(200, 8, 51);
    EXPECT_EQ(t.writes(), 2u);
    EXPECT_EQ(t.reads(), 0u);
    EXPECT_EQ(t.writeCycleOf(1), 5u);
    EXPECT_EQ(t.writeCycleOf(2), 8u);
    EXPECT_EQ(t.writeNodeOf(2), 51u);
    EXPECT_EQ(t.pendingData().size(), 2u);

    EXPECT_EQ(t.commitRead(9, 60), 100);
    EXPECT_EQ(t.commitRead(10, 61), 200);
    EXPECT_EQ(t.reads(), 2u);
    EXPECT_EQ(t.readCycleOf(1), 9u);
    EXPECT_EQ(t.readNodeOf(2), 61u);
    EXPECT_TRUE(t.pendingData().empty());
}

TEST(FifoTable, ReadUnderrunIsDiagnosedNotUndefined)
{
    // A read committed with no unread write used to pop an empty deque
    // (undefined behaviour); it must instead panic with a message that
    // names the offending channel.
    FifoTable t;
    t.setLabel("resultStream");
    EXPECT_DEATH(t.commitRead(1, 10), "resultStream.*read underrun");

    // Draining exactly what was written stays fine ... and one read
    // past the last write is the underrun again.
    FifoTable u;
    u.commitWrite(7, 1, 1);
    EXPECT_EQ(u.commitRead(2, 2), 7);
    EXPECT_DEATH(u.commitRead(3, 3), "'\\?'.*read underrun");
}

TEST(Axi, ReadBurstBeatsAndLatency)
{
    AxiPortState port(AxiConfig{.readLatency = 8, .writeAckLatency = 4});
    port.pushReadReq(100, 3, 10, 7);
    std::uint64_t addr = 0;
    auto d0 = port.popReadBeat(addr);
    EXPECT_EQ(addr, 100u);
    EXPECT_EQ(d0.time, 10u);
    EXPECT_EQ(d0.weight, 8u);
    EXPECT_EQ(d0.tag, 7u);
    auto d1 = port.popReadBeat(addr);
    EXPECT_EQ(addr, 101u);
    EXPECT_EQ(d1.weight, 9u);
    auto d2 = port.popReadBeat(addr);
    EXPECT_EQ(addr, 102u);
    EXPECT_EQ(d2.weight, 10u);
    EXPECT_THROW(port.popReadBeat(addr), FatalError);
}

TEST(Axi, WriteBurstAndResponse)
{
    AxiPortState port(AxiConfig{.readLatency = 8, .writeAckLatency = 4});
    port.pushWriteReq(50, 2, 20, 3);
    std::uint64_t addr = 0;
    auto b0 = port.popWriteBeat(addr);
    EXPECT_EQ(addr, 50u);
    EXPECT_EQ(b0.weight, 1u);
    // Response before all beats is a user error.
    EXPECT_THROW(port.popWriteResp(21, 4), FatalError);
    auto b1 = port.popWriteBeat(addr);
    EXPECT_EQ(addr, 51u);
    EXPECT_EQ(b1.weight, 2u);
    auto resp = port.popWriteResp(22, 5);
    EXPECT_EQ(resp.time, 22u);
    EXPECT_EQ(resp.weight, 4u);
    EXPECT_EQ(resp.tag, 5u);
}

TEST(Events, NamesAndQueryKinds)
{
    EXPECT_STREQ(eventKindName(EventKind::FifoNbWrite), "FifoNbWrite");
    EXPECT_STREQ(eventKindName(EventKind::StartTask), "StartTask");
    EXPECT_TRUE(isQueryKind(EventKind::FifoNbRead));
    EXPECT_TRUE(isQueryKind(EventKind::FifoCanWrite));
    EXPECT_FALSE(isQueryKind(EventKind::FifoRead));
    EXPECT_FALSE(isQueryKind(EventKind::AxiRead));
}

TEST(Result, ScalarAccess)
{
    SimResult r;
    r.memories["x"] = {42};
    EXPECT_EQ(r.scalar("x"), 42);
    EXPECT_THROW(r.scalar("missing"), FatalError);
    EXPECT_STREQ(simStatusName(SimStatus::Deadlock), "Deadlock");
}

// ---- TimingModel: the golden semantics -----------------------------

TEST(Timing, SequentialOpsChainByDuration)
{
    TimingModel tm(0, 1);
    EXPECT_EQ(tm.now(), 1u);
    EXPECT_EQ(tm.earliest(), 1u);
    tm.commitOp(1, 1, 1); // op occupies cycle 1
    EXPECT_EQ(tm.now(), 2u);
    tm.advance(3);
    EXPECT_EQ(tm.earliest(), 5u);
    auto cs = tm.commitOp(5, 1, 2);
    ASSERT_EQ(cs.size(), 1u);
    EXPECT_EQ(cs[0].time, 1u);   // program-order source: op 1
    EXPECT_EQ(cs[0].weight, 4u); // 1 (dur) + 3 (advance)
    EXPECT_EQ(cs[0].tag, 1u);
}

TEST(Timing, StalledOpKeepsScheduledWeight)
{
    TimingModel tm(0, 1);
    tm.commitOp(1, 1, 1);
    // Dependency forces start at 10, but the structural weight stays 1.
    auto cs = tm.commitOp(10, 1, 2);
    ASSERT_EQ(cs.size(), 1u);
    EXPECT_EQ(cs[0].weight, 1u);
    EXPECT_EQ(tm.now(), 11u);
}

TEST(Timing, PaperFigure6Walkthrough)
{
    // Producer: write at 1 (P1), NB writes at 2 (fails) and 3 (P3).
    TimingModel prod(0, 1);
    prod.commitOp(1, 1, 1); // P1 occupies cycle 1
    EXPECT_EQ(prod.earliest(), 2u);
    prod.commitOp(2, 1, 2); // P2 attempt occupies cycle 2
    EXPECT_EQ(prod.earliest(), 3u);
    prod.commitOp(3, 1, 3); // P3 commits at cycle 3

    // Consumer: read C1 after P1 -> cycle 2; C2 after P3 -> cycle 4.
    TimingModel cons(10, 1);
    const Cycles c1 = std::max<Cycles>(cons.earliest(), 1 + 1);
    EXPECT_EQ(c1, 2u);
    cons.commitOp(c1, 1, 11);
    const Cycles c2 = std::max<Cycles>(cons.earliest(), 3 + 1);
    EXPECT_EQ(c2, 4u);
    cons.commitOp(c2, 1, 12);
    // Total latency = last op end = 5, as in the paper's Fig. 6.
    EXPECT_EQ(cons.now(), 5u);
}

TEST(Timing, PipelineInitiationInterval)
{
    TimingModel tm(0, 1);
    tm.pipelineBegin(2);
    for (int i = 0; i < 4; ++i) {
        tm.iterBegin();
        const Cycles t = tm.earliest();
        tm.commitOp(t, 1, 100 + i);
    }
    tm.pipelineEnd();
    // Iterations issue at 1, 3, 5, 7; last ends at 8.
    EXPECT_EQ(tm.now(), 8u);
}

TEST(Timing, PipelineCrossIterationConstraintReported)
{
    TimingModel tm(0, 1);
    tm.pipelineBegin(3);
    tm.iterBegin();
    tm.commitOp(tm.earliest(), 1, 1);
    tm.iterBegin();
    EXPECT_EQ(tm.earliest(), 4u); // 1 + II
    auto cs = tm.commitOp(4, 1, 2);
    ASSERT_EQ(cs.size(), 2u);
    EXPECT_EQ(cs[1].time, 1u);
    EXPECT_EQ(cs[1].weight, 3u);
    EXPECT_EQ(cs[1].tag, 1u);
    tm.pipelineEnd();
}

TEST(Timing, ElasticStallShiftsLaterIterations)
{
    TimingModel tm(0, 1);
    tm.pipelineBegin(1);
    tm.iterBegin();
    tm.commitOp(1, 1, 1);
    tm.iterBegin();
    // Dependency stalls iteration 2 to cycle 9.
    tm.commitOp(9, 1, 2);
    tm.iterBegin();
    // Iteration 3 may not start before 9 + II.
    EXPECT_EQ(tm.earliest(), 10u);
    tm.commitOp(10, 1, 3);
    tm.pipelineEnd();
    EXPECT_EQ(tm.now(), 11u);
}

TEST(Timing, DrainAnchorsAtMaxEndOp)
{
    TimingModel tm(0, 1);
    tm.pipelineBegin(2);
    for (int i = 0; i < 3; ++i) {
        tm.iterBegin();
        tm.commitOp(tm.earliest(), 1, 10 + i);
    }
    tm.pipelineEnd();
    EXPECT_EQ(tm.now(), 6u); // issues 1,3,5; last ends 6
    EXPECT_EQ(tm.lastOpTag(), 12u);
    EXPECT_EQ(tm.lastOpTime(), 5u); // anchor is the op START
    tm.advance(4);
    EXPECT_EQ(tm.now(), 10u);
    // Next op's program-order weight covers duration + drain.
    auto cs = tm.commitOp(10, 1, 99);
    ASSERT_EQ(cs.size(), 1u);
    EXPECT_EQ(cs[0].weight, 5u); // 1 (dur) + 4 (advance)
}

TEST(Timing, NestedPipelinesPropagateDrain)
{
    TimingModel tm(0, 1);
    tm.pipelineBegin(10); // outer
    tm.iterBegin();
    tm.pipelineBegin(1); // inner
    for (int i = 0; i < 5; ++i) {
        tm.iterBegin();
        tm.commitOp(tm.earliest(), 1, i + 1);
    }
    tm.pipelineEnd();
    EXPECT_EQ(tm.now(), 6u);
    tm.pipelineEnd();
    EXPECT_EQ(tm.now(), 6u);
    EXPECT_FALSE(tm.inPipeline());
}

TEST(Timing, CommitBeforeEarliestPanics)
{
    TimingModel tm(0, 5);
    EXPECT_DEATH(tm.commitOp(3, 1, 1), "before earliest");
}

} // namespace
} // namespace omnisim
