/** @file Unit tests for the graph library: adjacency-list simulation
 *  graph, CSR graph, longest-path analysis, WAR edge synthesis. */

#include <gtest/gtest.h>

#include <map>

#include "graph/csr.hh"
#include "graph/longest_path.hh"
#include "graph/simgraph.hh"
#include "graph/war.hh"
#include "support/prng.hh"

namespace omnisim
{
namespace
{

NodeInfo
node(Cycles dur = 1)
{
    NodeInfo n;
    n.duration = dur;
    return n;
}

TEST(SimGraph, InlineFirstEdgeAndOverflow)
{
    SimGraph g;
    const auto a = g.addNode(node());
    const auto b = g.addNode(node());
    const auto c = g.addNode(node());
    const auto d = g.addNode(node());
    g.addEdge(a, b, 1); // inline slot
    g.addEdge(a, c, 2); // overflow pool
    g.addEdge(a, d, 3); // overflow pool
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.numEdges(), 3u);

    std::map<std::uint64_t, Cycles> seen;
    g.forEachOut(a, [&](std::uint64_t dst, Cycles w) { seen[dst] = w; });
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[b], 1u);
    EXPECT_EQ(seen[c], 2u);
    EXPECT_EQ(seen[d], 3u);

    // Nodes without edges iterate nothing.
    int count = 0;
    g.forEachOut(b, [&](std::uint64_t, Cycles) { ++count; });
    EXPECT_EQ(count, 0);
}

TEST(Csr, MatchesEdgeList)
{
    std::vector<CsrGraph::EdgeSpec> edges = {
        {0, 1, 5}, {0, 2, 6}, {1, 2, 7}, {3, 0, 1}};
    CsrGraph g(4, edges);
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.numEdges(), 4u);
    std::map<std::uint64_t, Cycles> seen;
    g.forEachOut(0, [&](std::uint64_t dst, Cycles w) { seen[dst] = w; });
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[1], 5u);
    EXPECT_EQ(seen[2], 6u);
}

TEST(LongestPath, LinearChain)
{
    SimGraph g;
    for (int i = 0; i < 4; ++i)
        g.addNode(node());
    g.addEdge(0, 1, 1);
    g.addEdge(1, 2, 2);
    g.addEdge(2, 3, 3);
    const auto pr = longestPath(g, {1, 0, 0, 0});
    ASSERT_TRUE(pr.acyclic);
    EXPECT_EQ(pr.time[0], 1u);
    EXPECT_EQ(pr.time[1], 2u);
    EXPECT_EQ(pr.time[2], 4u);
    EXPECT_EQ(pr.time[3], 7u);
}

TEST(LongestPath, TakesMaxOverParallelPaths)
{
    SimGraph g;
    for (int i = 0; i < 4; ++i)
        g.addNode(node());
    g.addEdge(0, 1, 10);
    g.addEdge(0, 2, 1);
    g.addEdge(1, 3, 1);
    g.addEdge(2, 3, 5);
    const auto pr = longestPath(g, {1, 0, 0, 0});
    ASSERT_TRUE(pr.acyclic);
    EXPECT_EQ(pr.time[3], 12u); // via node 1
}

TEST(LongestPath, SeedSizeMismatchIsDiagnosed)
{
    // Oversized seeds used to leave stale entries past n in the result
    // and undersized seeds zero-filled silently; both are caller bugs.
    SimGraph g;
    for (int i = 0; i < 3; ++i)
        g.addNode(node());
    g.addEdge(0, 1, 1);
    EXPECT_DEATH(longestPath(g, {1, 0}), "seed has 2 entries for 3");
    EXPECT_DEATH(longestPath(g, {1, 0, 0, 0}), "seed has 4 entries for 3");
    const auto pr = longestPath(g, {1, 0, 0});
    ASSERT_TRUE(pr.acyclic);
    EXPECT_EQ(pr.time.size(), 3u);
}

TEST(LongestPath, DetectsCycle)
{
    SimGraph g;
    for (int i = 0; i < 3; ++i)
        g.addNode(node());
    g.addEdge(0, 1, 1);
    g.addEdge(1, 2, 1);
    g.addEdge(2, 1, 1); // back edge
    const auto pr = longestPath(g, {1, 0, 0});
    EXPECT_FALSE(pr.acyclic);
}

TEST(LongestPath, CsrAndAdjacencyAgree)
{
    Prng prng(42);
    const std::size_t n = 500;
    SimGraph adj;
    std::vector<CsrGraph::EdgeSpec> edges;
    for (std::size_t i = 0; i < n; ++i)
        adj.addNode(node());
    for (std::size_t i = 1; i < n; ++i) {
        // 1-3 random backward-sourced edges keep the graph acyclic.
        const int fanin = 1 + static_cast<int>(prng.below(3));
        for (int k = 0; k < fanin; ++k) {
            const auto src = prng.below(i);
            const auto w = static_cast<Cycles>(prng.below(5));
            adj.addEdge(src, i, w);
            edges.push_back({src, i, w});
        }
    }
    CsrGraph csr(n, edges);
    std::vector<Cycles> seed(n, 0);
    seed[0] = 1;
    const auto pa = longestPath(adj, seed);
    const auto pc = longestPath(csr, seed);
    ASSERT_TRUE(pa.acyclic);
    ASSERT_TRUE(pc.acyclic);
    EXPECT_EQ(pa.time, pc.time);
}

TEST(WarSynthesis, EmitsDepthConstrainedEdges)
{
    FifoTable t;
    // Writes 1..4 at nodes 10..13; reads 1..3 at nodes 20..22.
    for (std::uint64_t w = 0; w < 4; ++w)
        t.commitWrite(0, 0, 10 + w);
    for (std::uint64_t r = 0; r < 3; ++r)
        t.commitRead(0, 20 + r);

    std::vector<std::tuple<std::uint64_t, std::uint64_t, Cycles>> got;
    std::vector<FifoTable> tables;
    tables.push_back(std::move(t));
    synthesizeWarEdges(tables, {2},
                       [&](std::uint64_t s, std::uint64_t d, Cycles w) {
                           got.emplace_back(s, d, w);
                       });
    // Depth 2: write 3 after read 1, write 4 after read 2.
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], std::make_tuple(20ull, 12ull, Cycles{1}));
    EXPECT_EQ(got[1], std::make_tuple(21ull, 13ull, Cycles{1}));
}

TEST(WarSynthesis, DeepFifoEmitsNothing)
{
    FifoTable t;
    for (std::uint64_t w = 0; w < 4; ++w)
        t.commitWrite(0, 0, 10 + w);
    std::vector<FifoTable> tables;
    tables.push_back(std::move(t));
    int count = 0;
    synthesizeWarEdges(tables, {8},
                       [&](std::uint64_t, std::uint64_t, Cycles) {
                           ++count;
                       });
    EXPECT_EQ(count, 0);
}

} // namespace
} // namespace omnisim
