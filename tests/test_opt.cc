/**
 * @file
 * Direct unit coverage of the graph compilation pipeline (src/opt/):
 * pass-manager determinism, per-pass statistics bookkeeping, the -O0
 * identity layout, and bit-identical resimulate() outcomes across
 * compile levels. The conformance fuzzer covers the same equivalence
 * over random designs; these tests pin it on the registry with exact
 * expectations and survive independent of the fuzz corpus.
 */

#include <gtest/gtest.h>

#include "helpers.hh"
#include "opt/layout.hh"
#include "opt/pass_manager.hh"
#include "support/prng.hh"

using namespace omnisim;

namespace
{

/** Run a registry design and export its snapshot. */
RunSnapshot
snapshotOf(const test::Compiled &c)
{
    OmniSim engine(c.cd);
    EXPECT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    EXPECT_TRUE(engine.exportSnapshot(snap));
    return snap;
}

opt::RunLayout
compileSnapshot(const RunSnapshot &snap, opt::OptLevel level)
{
    return opt::PassManager(level).compile(
        {&snap.nodes, &snap.edges, &snap.seed, &snap.tables, &snap.depths,
         &snap.constraints, &snap.tailNode, &snap.tailSlack});
}

TEST(Opt, LevelNamesAndPassList)
{
    EXPECT_STREQ(opt::optLevelName(opt::OptLevel::O0), "O0");
    EXPECT_STREQ(opt::optLevelName(opt::OptLevel::O1), "O1");
    EXPECT_TRUE(opt::PassManager(opt::OptLevel::O0).passNames().empty());
    const auto names = opt::PassManager(opt::OptLevel::O1).passNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_STREQ(names[0], "lattice-prune");
    EXPECT_STREQ(names[1], "chain-collapse");
    EXPECT_STREQ(names[2], "dedup");
    EXPECT_STREQ(names[3], "partition");
}

TEST(Opt, IdentityLayoutAtO0)
{
    const test::Compiled c("fifo_chain");
    const RunSnapshot snap = snapshotOf(c);
    const opt::RunLayout lay = compileSnapshot(snap, opt::OptLevel::O0);

    EXPECT_EQ(lay.level, opt::OptLevel::O0);
    EXPECT_EQ(lay.numNodes, snap.nodes.size());
    EXPECT_EQ(lay.edges.size(), snap.edges.size());
    EXPECT_EQ(lay.cons.size(), snap.constraints.size());
    EXPECT_TRUE(lay.stats.passes.empty());
    EXPECT_DOUBLE_EQ(lay.stats.elimination(), 0.0);
    ASSERT_EQ(lay.remap.size(), snap.nodes.size());
    for (std::size_t n = 0; n < lay.remap.size(); ++n)
        EXPECT_EQ(lay.remap[n], static_cast<std::uint32_t>(n));
}

TEST(Opt, StatsAreConsistentAtO1)
{
    const test::Compiled c("fig4_ex5"); // keeps real constraints at -O1
    const RunSnapshot snap = snapshotOf(c);
    const opt::RunLayout lay = compileSnapshot(snap, opt::OptLevel::O1);
    const opt::CompileStats &s = lay.stats;

    EXPECT_EQ(s.level, opt::OptLevel::O1);
    EXPECT_EQ(s.origNodes, snap.nodes.size());
    EXPECT_EQ(s.origEdges, snap.edges.size());
    EXPECT_EQ(s.origConstraints, snap.constraints.size());
    EXPECT_EQ(s.optNodes, lay.numNodes);
    EXPECT_EQ(s.optEdges, lay.edges.size());
    EXPECT_EQ(s.keptConstraints, lay.cons.size());
    EXPECT_LT(s.optNodes, s.origNodes); // the chains do collapse
    EXPECT_GT(s.keptConstraints, 0u);
    EXPECT_GT(s.elimination(), 0.0);
    EXPECT_LE(s.elimination(), 1.0);

    // Per-pass counters must add up to the whole-pipeline deltas.
    std::uint64_t nodesGone = 0, edgesGone = 0, consGone = 0;
    ASSERT_EQ(s.passes.size(), 4u);
    for (const auto &p : s.passes) {
        nodesGone += p.nodesEliminated;
        edgesGone += p.edgesEliminated;
        consGone += p.constraintsEliminated;
    }
    EXPECT_EQ(nodesGone, s.origNodes - s.optNodes);
    // Chain-collapse also *creates* interval edges, so per-pass edge
    // removal counters bound the net delta from above.
    EXPECT_GE(edgesGone, s.origEdges - s.optEdges);
    EXPECT_EQ(consGone, s.origConstraints - s.keptConstraints);

    // Remap: every entry dropped or a live layout id; every kept
    // constraint's query node survived the passes.
    ASSERT_EQ(lay.remap.size(), snap.nodes.size());
    for (const std::uint32_t l : lay.remap)
        EXPECT_TRUE(l == opt::kDropped || l < lay.numNodes);
    for (const auto &qc : lay.cons) {
        ASSERT_LT(qc.origIndex, snap.constraints.size());
        EXPECT_EQ(lay.remap[snap.constraints[qc.origIndex].node],
                  qc.node);
    }
}

TEST(Opt, CompileIsDeterministic)
{
    const test::Compiled c("reconvergent");
    const RunSnapshot snap = snapshotOf(c);
    const opt::RunLayout a = compileSnapshot(snap, opt::OptLevel::O1);
    const opt::RunLayout b = compileSnapshot(snap, opt::OptLevel::O1);

    EXPECT_EQ(a.numNodes, b.numNodes);
    EXPECT_EQ(a.remap, b.remap);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.dur, b.dur);
    EXPECT_EQ(a.floor, b.floor);
    ASSERT_EQ(a.edges.size(), b.edges.size());
    for (std::size_t e = 0; e < a.edges.size(); ++e) {
        EXPECT_EQ(a.edges[e].src, b.edges[e].src);
        EXPECT_EQ(a.edges[e].dst, b.edges[e].dst);
        EXPECT_EQ(a.edges[e].weight, b.edges[e].weight);
    }
}

TEST(Opt, ResimulateBitIdenticalAcrossLevels)
{
    for (const char *name : {"fifo_chain", "fig4_ex5", "branch",
                             "multicore", "reconvergent"}) {
        SCOPED_TRACE(name);
        const test::Compiled c(name);

        OmniSimOptions o0Opts;
        o0Opts.optLevel = opt::OptLevel::O0;
        OmniSim o0(c.cd, o0Opts);
        OmniSim o1(c.cd); // default -O1
        const SimResult r0 = o0.run();
        const SimResult r1 = o1.run();
        ASSERT_EQ(r0.status, SimStatus::Ok);
        ASSERT_EQ(r1.status, SimStatus::Ok);
        EXPECT_EQ(r0.totalCycles, r1.totalCycles);
        EXPECT_EQ(o1.compileStats().level, opt::OptLevel::O1);

        std::vector<std::uint32_t> base;
        for (const auto &f : c.design.fifos())
            base.push_back(f.depth);
        Prng prng(0x0177u);
        for (int probe = 0; probe < 24; ++probe) {
            std::vector<std::uint32_t> d = base;
            for (auto &depth : d)
                if (prng.below(2))
                    depth = 1 + prng.below(12);
            const IncrementalOutcome i0 = o0.resimulate(d);
            const IncrementalOutcome i1 = o1.resimulate(d);
            EXPECT_EQ(i0.reused, i1.reused);
            EXPECT_EQ(i0.reason, i1.reason);
            if (i0.reused && i1.reused) {
                EXPECT_EQ(i0.result.totalCycles, i1.result.totalCycles);
                EXPECT_EQ(i0.result.memories, i1.result.memories);
            }
        }
    }
}

} // namespace
