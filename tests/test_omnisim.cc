/** @file OmniSim core engine tests: Table 3 functional equivalence with
 *  co-simulation, cycle accuracy (Fig. 8a), deadlock detection (§7.1),
 *  the earliest-query-false rule, and the §7.3.2 check elimination. */

#include <gtest/gtest.h>

#include "design/context.hh"
#include "helpers.hh"

namespace omnisim
{
namespace
{

using test::checkedOmniSim;
using test::Compiled;
using test::fastCosim;

/** Table 3 + Fig. 8(a): OmniSim must match co-simulation exactly on
 *  every Type B/C design — outputs, status, and cycle counts. */
class Table3Test : public ::testing::TestWithParam<const char *>
{};

TEST_P(Table3Test, OmniSimMatchesCosimExactly)
{
    Compiled c(GetParam());
    const SimResult co = simulateCosim(c.cd, fastCosim());
    const SimResult om = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(om.status, co.status);
    EXPECT_EQ(om.memories, co.memories);
    if (co.status == SimStatus::Ok) {
        EXPECT_EQ(om.totalCycles, co.totalCycles);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypeBC, Table3Test,
    ::testing::Values("fig4_ex2", "fig4_ex3", "fig4_ex4a", "fig4_ex4a_d",
                      "fig4_ex4b", "fig4_ex4b_d", "fig4_ex5",
                      "fig2_timer", "deadlock", "branch", "multicore"),
    [](const auto &info) { return std::string(info.param); });

TEST(OmniSim, Ex2SumMatchesPaperExactly)
{
    Compiled c("fig4_ex2");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_EQ(r.scalar("sum_out"), 2051325); // Table 3 value
}

TEST(OmniSim, Ex3SumMatchesPaperExactly)
{
    Compiled c("fig4_ex3");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_EQ(r.scalar("sum"), 4102650); // 2 * sum(1..2025)
}

TEST(OmniSim, DropsActuallyHappenUnderHardwareTiming)
{
    Compiled c("fig4_ex4b");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_GT(r.scalar("dropped"), 0);
    EXPECT_LT(r.scalar("sum_out"), 2051325);
}

TEST(OmniSim, DispatcherPrefersFastPeButUsesBoth)
{
    Compiled c("fig4_ex5");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    const Value p1 = r.scalar("processed_by_P1");
    const Value p2 = r.scalar("processed_by_P2");
    EXPECT_EQ(p1 + p2, 2025);
    EXPECT_GT(p1, p2); // paper shape: 1351 vs 674
    EXPECT_GT(p2, 0);  // but P2 is genuinely used
}

TEST(OmniSim, TimerMeasuresHardwareCyclesNotThreadLuck)
{
    Compiled c("fig2_timer");
    const SimResult om = simulateOmniSim(c.cd, checkedOmniSim());
    const SimResult co = simulateCosim(c.cd, fastCosim());
    ASSERT_EQ(om.status, SimStatus::Ok);
    EXPECT_EQ(om.scalar("cycles"), co.scalar("cycles"));
    EXPECT_GT(om.scalar("cycles"), 0); // unlike C-sim's zero
}

TEST(OmniSim, DetectsDeadlockWithoutHanging)
{
    Compiled c("deadlock");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    EXPECT_EQ(r.status, SimStatus::Deadlock);
    EXPECT_NE(r.message.find("deadlock"), std::string::npos);
}

TEST(OmniSim, EarliestQueryFalseRuleEngages)
{
    // fig4_ex4a's producer outruns its consumer, so many NB writes pend
    // with unknown targets and must be resolved by the §7.1 rule.
    Compiled c("fig4_ex4a");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_GT(r.stats.queries, 0u);
    EXPECT_GT(r.stats.forcedFalse, 0u);
}

TEST(OmniSim, TypeADesignNeverNeedsQueries)
{
    Compiled c("axis_stream");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_EQ(r.stats.queries, 0u);
    EXPECT_EQ(r.stats.forcedFalse, 0u);
}

TEST(OmniSim, DeterministicAcrossManyRuns)
{
    // The central claim: results reflect hardware timing, not OS
    // scheduling. Repeat runs must agree bit-for-bit.
    for (const char *name : {"fig4_ex4b_d", "fig4_ex5", "branch"}) {
        Compiled c(name);
        const SimResult first = simulateOmniSim(c.cd, checkedOmniSim());
        for (int i = 0; i < 8; ++i) {
            const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
            EXPECT_EQ(r.status, first.status) << name;
            EXPECT_EQ(r.totalCycles, first.totalCycles) << name;
            EXPECT_EQ(r.memories, first.memories) << name;
        }
    }
}

TEST(OmniSim, UnusedCheckEliminationSkipsQueries)
{
    // §7.3.2: empty()/full() with unused results become skip markers.
    Design d("deadcheck");
    const std::size_t n = 256;
    const MemId data = d.addMemory("data", n);
    const MemId out = d.addMemory("out", 1);
    d.setInput(data, designs::iotaData(n));
    const FifoId f = d.declareFifo("f", 2, AccessKind::Blocking,
                                   AccessKind::NonBlocking);
    const ModuleId p = d.addModule("p", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(f, ctx.load(data, i));
    });
    const ModuleId c = d.addModule(
        "c",
        [=](Context &ctx) {
            Value sum = 0;
            for (std::size_t i = 0; i < n; ++i) {
                ctx.emptyUnused(f); // result ignored — generated code noise
                sum += ctx.read(f);
            }
            ctx.store(out, 0, sum);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});
    d.connectFifo(f, p, c);
    const CompiledDesign cd = compile(d);

    OmniSimOptions on = checkedOmniSim();
    on.elideUnusedChecks = true;
    OmniSimOptions off = checkedOmniSim();
    off.elideUnusedChecks = false;

    const SimResult with = simulateOmniSim(cd, on);
    const SimResult without = simulateOmniSim(cd, off);
    ASSERT_EQ(with.status, SimStatus::Ok);
    EXPECT_EQ(with.memories, without.memories);
    EXPECT_EQ(with.totalCycles, without.totalCycles);
    EXPECT_EQ(with.stats.queriesSkipped, n);
    EXPECT_EQ(without.stats.queriesSkipped, 0u);
    EXPECT_LT(with.stats.events, without.stats.events);
}

TEST(OmniSim, LazyWriteStallAblationStaysFunctionallyCorrect)
{
    // The paper's T4 optimization: producer-only threads skip write
    // stalls; finalization repairs their timing. Functional outputs
    // must match; Type A cycles must match exactly.
    for (const char *name : {"axis_stream", "accum_dataflow"}) {
        Compiled c(name);
        OmniSimOptions lazy;
        lazy.eagerWriteStall = false;
        const SimResult a = simulateOmniSim(c.cd, checkedOmniSim());
        const SimResult b = simulateOmniSim(c.cd, lazy);
        ASSERT_EQ(b.status, SimStatus::Ok) << name;
        EXPECT_EQ(a.memories, b.memories) << name;
        EXPECT_EQ(a.totalCycles, b.totalCycles) << name;
    }
}

TEST(OmniSim, CrashReportsFaultingTask)
{
    Design d("crash");
    const MemId mem = d.addMemory("m", 2);
    const FifoId f = d.declareFifo("f", 2);
    const ModuleId p = d.addModule("boom", [=](Context &ctx) {
        ctx.write(f, ctx.load(mem, 7));
    });
    const ModuleId c = d.addModule("c", [=](Context &ctx) {
        (void)ctx.read(f);
    });
    d.connectFifo(f, p, c);
    const CompiledDesign cd = compile(d);
    const SimResult r = simulateOmniSim(cd, checkedOmniSim());
    EXPECT_EQ(r.status, SimStatus::Crash);
    EXPECT_NE(r.message.find("boom"), std::string::npos);
}

TEST(OmniSim, OpWatchdogStopsRunawayDesigns)
{
    Design d("runaway");
    const MemId out = d.addMemory("out", 1);
    const FifoId f = d.declareFifo("f", 2, AccessKind::Blocking,
                                   AccessKind::NonBlocking);
    const ModuleId w = d.addModule("w", [=](Context &ctx) {
        ctx.write(f, 1);
    });
    const ModuleId spin = d.addModule(
        "spin",
        [=](Context &ctx) {
            Value v;
            // Never satisfied a second time: spins on readNb forever.
            while (true) {
                if (ctx.readNb(f, v))
                    ctx.store(out, 0, v);
            }
        },
        {.hasInfiniteLoop = true, .behaviorVariesOnNb = true});
    d.connectFifo(f, w, spin);
    const CompiledDesign cd = compile(d);
    OmniSimOptions opts;
    opts.opLimit = 20'000;
    const SimResult r = simulateOmniSim(cd, opts);
    EXPECT_EQ(r.status, SimStatus::Timeout);
}

TEST(OmniSim, GraphStatsPopulated)
{
    Compiled c("fig4_ex3");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_GT(r.stats.graphNodes, 2u * 2025u);
    EXPECT_GT(r.stats.graphEdges, r.stats.graphNodes);
}

TEST(OmniSim, DeadlockedThreadsAreTrackedAsPaused)
{
    // Blocking ping-pong usually resolves in the lock-free spin phase,
    // but a true deadlock forces every thread into a tracked pause —
    // that is exactly what the task tracker (F) detects.
    Compiled c("deadlock");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Deadlock);
    EXPECT_GT(r.stats.threadPauses, 0u);
}

} // namespace
} // namespace omnisim
