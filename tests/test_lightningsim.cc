/** @file LightningSim baseline tests: two-phase decoupled simulation,
 *  the Type A support gate, and Phase-2-only incremental re-analysis. */

#include <gtest/gtest.h>

#include "design/context.hh"
#include "helpers.hh"

namespace omnisim
{
namespace
{

using test::Compiled;
using test::fastCosim;

TEST(LightningSim, MatchesCosimOnPaperExample)
{
    Design d("fig6");
    const MemId out = d.addMemory("out", 2);
    const FifoId f = d.declareFifo("f", 1);
    const ModuleId p = d.addModule("producer", [=](Context &ctx) {
        ctx.write(f, 11);
        ctx.write(f, 22);
    });
    const ModuleId c = d.addModule("consumer", [=](Context &ctx) {
        ctx.store(out, 0, ctx.read(f));
        ctx.store(out, 1, ctx.read(f));
    });
    d.connectFifo(f, p, c);
    const CompiledDesign cd = compile(d);
    const SimResult ls = simulateLightningSim(cd);
    ASSERT_EQ(ls.status, SimStatus::Ok);
    EXPECT_EQ(ls.totalCycles, 5u);
    EXPECT_EQ(simulateCosim(cd, fastCosim()).totalCycles, 5u);
}

TEST(LightningSim, RejectsTypeBandC)
{
    for (const auto &e : designs::typeBCDesigns()) {
        Design d = e.build();
        const CompiledDesign cd = compile(d);
        const SimResult r = simulateLightningSim(cd);
        EXPECT_EQ(r.status, SimStatus::Unsupported) << e.name;
        EXPECT_NE(r.message.find("Type"), std::string::npos) << e.name;
    }
}

TEST(LightningSim, EntireTypeASuiteMatchesOmniSim)
{
    for (const auto &e : designs::typeADesigns()) {
        Design d = e.build();
        const CompiledDesign cd = compile(d);
        const SimResult ls = simulateLightningSim(cd);
        const SimResult om = simulateOmniSim(cd, test::checkedOmniSim());
        ASSERT_EQ(ls.status, SimStatus::Ok) << e.name;
        ASSERT_EQ(om.status, SimStatus::Ok) << e.name;
        EXPECT_EQ(ls.totalCycles, om.totalCycles) << e.name;
        EXPECT_EQ(ls.memories, om.memories) << e.name;
    }
}

TEST(LightningSim, IncrementalReanalysisMatchesFullRun)
{
    // Depth sweep via Phase 2 only must equal full re-simulation.
    Design d = designs::findDesign("accum_dataflow").build();
    CompiledDesign cd = compile(d);
    LightningSim ls(cd);
    ASSERT_EQ(ls.run().status, SimStatus::Ok);

    for (std::uint32_t depth : {1u, 2u, 3u, 8u, 64u}) {
        const LsTiming t = ls.reanalyze({depth, depth});
        ASSERT_TRUE(t.feasible) << depth;

        Design d2 = designs::findDesign("accum_dataflow").build();
        for (std::size_t f = 0; f < d2.fifos().size(); ++f)
            d2.setFifoDepth(static_cast<FifoId>(f), depth);
        const CompiledDesign cd2 = compile(d2);
        const SimResult full = simulateLightningSim(cd2);
        EXPECT_EQ(t.totalCycles, full.totalCycles) << depth;
    }
}

TEST(LightningSim, ReanalysisDetectsDepthDeadlock)
{
    // Reconvergent pattern: consumer needs f1 before f2, producer fills
    // f2 first. With enough depth it works; depth 1 deadlocks.
    Design d("reconverge");
    const MemId out = d.addMemory("out", 1);
    const std::size_t n = 4;
    const FifoId f1 = d.declareFifo("f1", 8);
    const FifoId f2 = d.declareFifo("f2", 8);
    const ModuleId p = d.addModule("p", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(f2, static_cast<Value>(i));
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(f1, static_cast<Value>(10 + i));
    });
    const ModuleId c = d.addModule("c", [=](Context &ctx) {
        Value sum = 0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += ctx.read(f1);
            sum += ctx.read(f2);
        }
        ctx.store(out, 0, sum);
    });
    d.connectFifo(f1, p, c);
    d.connectFifo(f2, p, c);
    CompiledDesign cd = compile(d);
    LightningSim ls(cd);
    ASSERT_EQ(ls.run().status, SimStatus::Ok);

    EXPECT_TRUE(ls.reanalyze({8, 8}).feasible);
    EXPECT_TRUE(ls.reanalyze({8, 4}).feasible);
    EXPECT_FALSE(ls.reanalyze({8, 1}).feasible); // f2 backlog deadlocks
}

TEST(LightningSim, CrashSurfacesFromPhase1)
{
    Design d("crash");
    const MemId mem = d.addMemory("m", 2);
    const FifoId f = d.declareFifo("f", 2);
    const ModuleId p = d.addModule("p", [=](Context &ctx) {
        ctx.write(f, ctx.load(mem, 5));
    });
    const ModuleId c = d.addModule("c", [=](Context &ctx) {
        (void)ctx.read(f);
    });
    d.connectFifo(f, p, c);
    const CompiledDesign cd = compile(d);
    const SimResult r = simulateLightningSim(cd);
    EXPECT_EQ(r.status, SimStatus::Crash);
}

TEST(LightningSim, TraceExposesGraphScale)
{
    Design d = designs::findDesign("axis_stream").build();
    CompiledDesign cd = compile(d);
    LightningSim ls(cd);
    const SimResult r = ls.run();
    ASSERT_EQ(r.status, SimStatus::Ok);
    // 4 modules x entry + 4 FIFO ops per element x 4096 elements.
    EXPECT_GT(r.stats.graphNodes, 4u * 4096u);
    EXPECT_GT(r.stats.graphEdges, r.stats.graphNodes);
    EXPECT_EQ(ls.trace().tails.size(), 4u);
}

} // namespace
} // namespace omnisim
