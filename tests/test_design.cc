/** @file Unit tests for the design DSL, validation passes and the
 *  Type A/B/C taxonomy classifier (Table 4 of the paper). */

#include <gtest/gtest.h>

#include "design/classify.hh"
#include "design/context.hh"
#include "design/frontend.hh"
#include "designs/common.hh"
#include "designs/typebc.hh"
#include "support/logging.hh"

namespace omnisim
{
namespace
{

ModuleBody
noop()
{
    return [](Context &) {};
}

TEST(DesignBuilder, ValidatesArguments)
{
    Design d("t");
    EXPECT_THROW(d.addMemory("m", 0), FatalError);
    const MemId m = d.addMemory("m", 4);
    EXPECT_THROW(d.setInput(m, {1, 2, 3, 4, 5}), FatalError);
    EXPECT_THROW(d.setInput(99, {1}), FatalError);

    const ModuleId a = d.addModule("a", noop());
    const ModuleId b = d.addModule("b", noop());
    EXPECT_THROW(d.addFifo("f", 0, a, b), FatalError); // zero depth
    EXPECT_THROW(d.addFifo("f", 2, a, 99), FatalError);
    const FifoId f = d.addFifo("f", 2, a, b);
    EXPECT_THROW(d.setFifoDepth(f, 0), FatalError);
    d.setFifoDepth(f, 7);
    EXPECT_EQ(d.fifos()[f].depth, 7u);
    EXPECT_THROW(d.addAxiPort("p", 99, m), FatalError);
    EXPECT_THROW(d.addAxiPort("p", a, 99), FatalError);
}

TEST(DesignBuilder, DeclareConnectRoundTrip)
{
    Design d("t");
    const FifoId f = d.declareFifo("f", 3);
    const ModuleId a = d.addModule("a", noop());
    const ModuleId b = d.addModule("b", noop());
    d.connectFifo(f, a, b);
    EXPECT_EQ(d.fifos()[f].writer, a);
    EXPECT_EQ(d.fifos()[f].reader, b);
    EXPECT_THROW(d.connectFifo(9, a, b), FatalError);
    EXPECT_THROW(d.connectFifo(f, a, 42), FatalError);
}

TEST(Frontend, RejectsBrokenDesigns)
{
    Design empty("empty");
    EXPECT_THROW(compile(empty), FatalError);

    Design dup("dup");
    dup.addModule("same", noop());
    dup.addModule("same", noop());
    EXPECT_THROW(compile(dup), FatalError);

    Design dangling("dangling");
    dangling.addModule("a", noop());
    dangling.declareFifo("f", 2);
    EXPECT_THROW(compile(dangling), FatalError);
}

TEST(Frontend, ThreadPlanCoversAllModules)
{
    Design d("t");
    d.addModule("a", noop());
    d.addModule("b", noop());
    d.addModule("c", noop());
    const CompiledDesign cd = compile(d);
    EXPECT_EQ(cd.threadPlan.size(), 3u);
    EXPECT_EQ(cd.threadPlan[0], 0);
    EXPECT_EQ(cd.threadPlan[2], 2);
}

TEST(Classify, BlockingAcyclicIsTypeA)
{
    Design d("a");
    const ModuleId p = d.addModule("p", noop());
    const ModuleId c = d.addModule("c", noop());
    d.addFifo("f", 2, p, c);
    const Classification cls = classify(d);
    EXPECT_EQ(cls.type, DesignType::A);
    EXPECT_FALSE(cls.cyclic);
    EXPECT_FALSE(cls.anyNonBlocking);
    EXPECT_EQ(cls.funcSimLevel, SimLevel::L1);
    EXPECT_EQ(cls.perfSimLevel, SimLevel::L1);
    ASSERT_EQ(cls.topoOrder.size(), 2u);
    EXPECT_EQ(cls.topoOrder[0], p);
    EXPECT_EQ(cls.topoOrder[1], c);
}

TEST(Classify, NonBlockingMakesTypeB)
{
    Design d("b");
    const ModuleId p = d.addModule("p", noop());
    const ModuleId c = d.addModule("c", noop());
    d.addFifo("f", 2, p, c, AccessKind::NonBlocking,
              AccessKind::Blocking);
    const Classification cls = classify(d);
    EXPECT_EQ(cls.type, DesignType::B);
    EXPECT_TRUE(cls.anyNonBlocking);
    EXPECT_EQ(cls.funcSimLevel, SimLevel::L2);
    EXPECT_EQ(cls.perfSimLevel, SimLevel::L3);
}

TEST(Classify, CyclicBlockingIsTypeB)
{
    Design d("b");
    const ModuleId p = d.addModule("p", noop());
    const ModuleId c = d.addModule("c", noop());
    d.addFifo("f1", 2, p, c);
    d.addFifo("f2", 2, c, p);
    const Classification cls = classify(d);
    EXPECT_EQ(cls.type, DesignType::B);
    EXPECT_TRUE(cls.cyclic);
    EXPECT_TRUE(cls.topoOrder.empty());
    ASSERT_EQ(cls.cycles.size(), 1u);
    EXPECT_EQ(cls.cycles[0].size(), 2u);
}

TEST(Classify, BehaviorVariationMakesTypeC)
{
    Design d("c");
    const ModuleId p = d.addModule(
        "p", noop(), {.hasInfiniteLoop = false,
                      .behaviorVariesOnNb = true});
    const ModuleId c = d.addModule("c", noop());
    d.addFifo("f", 2, p, c, AccessKind::NonBlocking,
              AccessKind::NonBlocking);
    const Classification cls = classify(d);
    EXPECT_EQ(cls.type, DesignType::C);
    EXPECT_EQ(cls.funcSimLevel, SimLevel::L3);
    EXPECT_EQ(cls.perfSimLevel, SimLevel::L3);
}

TEST(Classify, BehaviorVariationWithoutNbIsRejected)
{
    Design d("bad");
    const ModuleId p = d.addModule(
        "p", noop(), {.hasInfiniteLoop = false,
                      .behaviorVariesOnNb = true});
    const ModuleId c = d.addModule("c", noop());
    d.addFifo("f", 2, p, c);
    EXPECT_THROW(classify(d), FatalError);
}

TEST(Classify, SelfLoopIsCyclic)
{
    Design d("self");
    const ModuleId m = d.addModule("m", noop());
    d.addFifo("loop", 2, m, m);
    const Classification cls = classify(d);
    EXPECT_TRUE(cls.cyclic);
    ASSERT_EQ(cls.cycles.size(), 1u);
    EXPECT_EQ(cls.cycles[0].size(), 1u);
}

TEST(Classify, TopoOrderPrefersDeclarationOrder)
{
    Design d("topo");
    const ModuleId a = d.addModule("a", noop());
    const ModuleId b = d.addModule("b", noop());
    const ModuleId c = d.addModule("c", noop());
    d.addFifo("f", 2, c, a); // c must precede a
    const Classification cls = classify(d);
    ASSERT_EQ(cls.topoOrder.size(), 3u);
    // b is independent: declaration order places it by lowest id first.
    EXPECT_EQ(cls.topoOrder[0], b);
    EXPECT_EQ(cls.topoOrder[1], c);
    EXPECT_EQ(cls.topoOrder[2], a);
}

/** Table 4 reproduction: every suite design classifies as published. */
struct Table4Row
{
    const char *name;
    DesignType type;
    bool cyclic;
};

class Table4Test : public ::testing::TestWithParam<Table4Row>
{};

TEST_P(Table4Test, MatchesPublishedTaxonomy)
{
    const Table4Row row = GetParam();
    Design d = designs::findDesign(row.name).build();
    const DesignSummary s = summarize(d);
    EXPECT_EQ(s.type, row.type) << row.name;
    EXPECT_EQ(s.cyclic, row.cyclic) << row.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table4, Table4Test,
    ::testing::Values(
        Table4Row{"fig4_ex2", DesignType::B, true},
        Table4Row{"fig4_ex3", DesignType::B, true},
        Table4Row{"fig4_ex4a", DesignType::C, false},
        Table4Row{"fig4_ex4a_d", DesignType::C, true},
        Table4Row{"fig4_ex4b", DesignType::C, false},
        Table4Row{"fig4_ex4b_d", DesignType::C, true},
        Table4Row{"fig4_ex5", DesignType::C, false},
        Table4Row{"fig2_timer", DesignType::C, false},
        Table4Row{"deadlock", DesignType::B, true},
        Table4Row{"branch", DesignType::C, true},
        Table4Row{"multicore", DesignType::C, true}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(Classify, AllTypeASuiteDesignsAreTypeA)
{
    for (const auto &e : designs::typeADesigns()) {
        Design d = e.build();
        const Classification cls = classify(d);
        EXPECT_EQ(cls.type, DesignType::A) << e.name;
        EXPECT_FALSE(cls.cyclic) << e.name;
    }
}

TEST(Classify, MulticoreMatchesTable4Scale)
{
    Design d = designs::buildMulticore();
    EXPECT_EQ(d.modules().size(), 34u); // 16 x 2 + dispatcher + collector
    EXPECT_EQ(d.fifos().size(), 64u);   // 4 per core
}

} // namespace
} // namespace omnisim
