/** @file Additional coverage: DOT export, scheduler properties over
 *  random op graphs, AXI timing through the engines, and assorted edge
 *  cases discovered while hardening the engines. */

#include <gtest/gtest.h>

#include "design/context.hh"
#include "design/dot.hh"
#include "helpers.hh"
#include "sched/schedule.hh"
#include "support/prng.hh"

namespace omnisim
{
namespace
{

using test::checkedOmniSim;
using test::Compiled;
using test::fastCosim;

// ---- DOT export ------------------------------------------------------

TEST(Dot, ContainsModulesAndChannels)
{
    Design d = designs::findDesign("fig4_ex5").build();
    const std::string dot = toDot(d);
    EXPECT_NE(dot.find("digraph \"fig4_ex5\""), std::string::npos);
    EXPECT_NE(dot.find("controller"), std::string::npos);
    EXPECT_NE(dot.find("FIFO1 [2]"), std::string::npos);
    EXPECT_NE(dot.find("Type C"), std::string::npos);
    // NB channels are highlighted.
    EXPECT_NE(dot.find("#c00000"), std::string::npos);
}

TEST(Dot, HighlightsCyclicGroups)
{
    Design d = designs::findDesign("deadlock").build();
    const std::string dot = toDot(d);
    EXPECT_NE(dot.find("#ffd0d0"), std::string::npos);
}

// ---- Scheduler properties over random op graphs ----------------------

class RandomOpGraph : public ::testing::TestWithParam<int>
{};

OpGraph
randomGraph(std::uint64_t seed, std::size_t n)
{
    Prng prng(seed);
    OpGraph g;
    const OpKind kinds[] = {OpKind::Add, OpKind::Mul, OpKind::Load,
                            OpKind::Store, OpKind::Shift, OpKind::Div,
                            OpKind::Select};
    for (std::size_t i = 0; i < n; ++i)
        g.addOp(kinds[prng.below(std::size(kinds))]);
    for (std::size_t i = 1; i < n; ++i) {
        const std::size_t fanin = prng.below(3);
        for (std::size_t k = 0; k < fanin; ++k) {
            const auto src = static_cast<std::uint32_t>(prng.below(i));
            g.addDep(src, static_cast<std::uint32_t>(i));
        }
    }
    return g;
}

TEST_P(RandomOpGraph, ListScheduleRespectsDepsAndResources)
{
    const OpGraph g = randomGraph(GetParam() * 31 + 1, 40);
    Resources res;
    res.alu = 2;
    res.mul = 1;
    res.div = 1;
    res.memPorts = 2;
    const StaticSchedule s = listSchedule(g, res);

    // Dependences: consumer starts after producer finishes.
    for (const auto &d : g.deps()) {
        if (d.distance == 0) {
            EXPECT_GE(s.start[d.to],
                      s.start[d.from] + opLatency(g.kind(d.from)));
        }
    }
    // Resources: per-cycle issue counts within limits.
    std::map<std::pair<Cycles, ResClass>, std::uint32_t> issued;
    for (std::uint32_t op = 0; op < g.numOps(); ++op) {
        const ResClass rc = opResource(g.kind(op));
        if (rc != ResClass::None)
            ++issued[{s.start[op], rc}];
    }
    for (const auto &[key, count] : issued)
        EXPECT_LE(count, res.countOf(key.second));
    // Never better than the unconstrained schedule.
    EXPECT_GE(s.latency, asapSchedule(g).latency);
}

TEST_P(RandomOpGraph, AlapNeverBeforeAsap)
{
    const OpGraph g = randomGraph(GetParam() * 57 + 3, 30);
    const StaticSchedule asap = asapSchedule(g);
    const StaticSchedule alap = alapSchedule(g, asap.latency + 5);
    for (std::uint32_t op = 0; op < g.numOps(); ++op)
        EXPECT_GE(alap.start[op], asap.start[op]) << op;
}

TEST_P(RandomOpGraph, ScheduleLoopIiBounds)
{
    const OpGraph g = randomGraph(GetParam() * 97 + 11, 24);
    Resources res;
    const LoopSchedule ls = scheduleLoop(g, res);
    EXPECT_GE(ls.ii, resMii(g, res));
    EXPECT_GE(ls.ii, recMii(g));
    EXPECT_GE(ls.depth, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOpGraph, ::testing::Range(1, 11));

// ---- AXI timing through the engines ----------------------------------

TEST(AxiTiming, BurstLatencyVisibleInCycles)
{
    // One 4-beat read burst: req at 1, beats at 1+8..1+11, so the last
    // beat occupies cycle 12 and the module ends at 13.
    Design d("axib");
    const MemId mem = d.addMemory("mem", 16);
    const MemId out = d.addMemory("out", 1);
    d.setInput(mem, designs::iotaData(16));
    const AxiId port = d.declareAxiPort("gmem", mem);
    const ModuleId m = d.addModule("reader", [=](Context &ctx) {
        ctx.axiReadReq(port, 0, 4);
        Value sum = 0;
        for (int k = 0; k < 4; ++k)
            sum += ctx.axiRead(port);
        ctx.store(out, 0, sum);
    });
    d.connectAxi(port, m);
    const CompiledDesign cd = compile(d);
    const SimResult co = simulateCosim(cd, fastCosim());
    const SimResult om = simulateOmniSim(cd, checkedOmniSim());
    const SimResult ls = simulateLightningSim(cd);
    ASSERT_EQ(co.status, SimStatus::Ok);
    EXPECT_EQ(co.totalCycles, 13u);
    EXPECT_EQ(om.totalCycles, 13u);
    EXPECT_EQ(ls.totalCycles, 13u);
    EXPECT_EQ(co.scalar("out"), 1 + 2 + 3 + 4);
}

TEST(AxiTiming, WriteResponseWaitsForAck)
{
    Design d("axiw");
    const MemId mem = d.addMemory("mem", 8);
    const MemId out = d.addMemory("out", 1);
    const AxiId port = d.declareAxiPort(
        "gmem", mem, AxiConfig{.readLatency = 8, .writeAckLatency = 6});
    const ModuleId m = d.addModule("writer", [=](Context &ctx) {
        ctx.axiWriteReq(port, 0, 2);
        ctx.axiWrite(port, 7);  // beat at req+1
        ctx.axiWrite(port, 9);  // beat at req+2
        ctx.axiWriteResp(port); // ack 6 cycles after the last beat
        ctx.store(out, 0, 1);
    });
    d.connectAxi(port, m);
    const CompiledDesign cd = compile(d);
    const SimResult co = simulateCosim(cd, fastCosim());
    const SimResult om = simulateOmniSim(cd, checkedOmniSim());
    ASSERT_EQ(co.status, SimStatus::Ok);
    // req@1, beats @2,@3, resp @3+6=9, end 10.
    EXPECT_EQ(co.totalCycles, 10u);
    EXPECT_EQ(om.totalCycles, co.totalCycles);
    EXPECT_EQ(om.memories.at("mem")[0], 7);
    EXPECT_EQ(om.memories.at("mem")[1], 9);
}

// ---- Engine edge cases ------------------------------------------------

TEST(EdgeCases, SingleModuleNoFifosRuns)
{
    Design d("solo");
    const MemId out = d.addMemory("out", 1);
    d.addModule("only", [=](Context &ctx) {
        ctx.advance(41);
        ctx.store(out, 0, 7);
    });
    const CompiledDesign cd = compile(d);
    for (const SimResult &r :
         {simulateCosim(cd, fastCosim()),
          simulateOmniSim(cd, checkedOmniSim()),
          simulateLightningSim(cd)}) {
        ASSERT_EQ(r.status, SimStatus::Ok);
        EXPECT_EQ(r.totalCycles, 42u); // starts at 1 + 41 advance
        EXPECT_EQ(r.scalar("out"), 7);
    }
}

TEST(EdgeCases, EmptyFifoNeverTouchedIsFine)
{
    Design d("untouched");
    const MemId out = d.addMemory("out", 1);
    const FifoId f = d.declareFifo("unused", 2);
    const ModuleId a = d.addModule("a", [=](Context &ctx) {
        ctx.store(out, 0, 1);
    });
    const ModuleId b = d.addModule("b", [](Context &) {});
    d.connectFifo(f, a, b);
    const CompiledDesign cd = compile(d);
    EXPECT_EQ(simulateOmniSim(cd, checkedOmniSim()).status,
              SimStatus::Ok);
    EXPECT_EQ(simulateCosim(cd, fastCosim()).status, SimStatus::Ok);
}

TEST(EdgeCases, DepthOneBackToBackIsFullySerialized)
{
    // With depth 1 every element strictly alternates write/read.
    Design d("serial");
    const MemId out = d.addMemory("out", 1);
    const std::size_t n = 50;
    const FifoId f = d.declareFifo("f", 1);
    const ModuleId p = d.addModule("p", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(f, static_cast<Value>(i));
    });
    const ModuleId c = d.addModule("c", [=](Context &ctx) {
        Value sum = 0;
        for (std::size_t i = 0; i < n; ++i)
            sum += ctx.read(f);
        ctx.store(out, 0, sum);
    });
    d.connectFifo(f, p, c);
    const CompiledDesign cd = compile(d);
    const SimResult co = simulateCosim(cd, fastCosim());
    const SimResult om = simulateOmniSim(cd, checkedOmniSim());
    ASSERT_EQ(co.status, SimStatus::Ok);
    // write@1, read@2, write@3, ... : 2n-1 is the last write, read at
    // 2n, ends 2n+1.
    EXPECT_EQ(co.totalCycles, 2 * n + 1);
    EXPECT_EQ(om.totalCycles, co.totalCycles);
}

TEST(EdgeCases, IncrementalAfterDeadlockIsRefused)
{
    Compiled c("deadlock");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Deadlock);
    const IncrementalOutcome inc = engine.resimulate({2, 2});
    EXPECT_FALSE(inc.reused);
}

TEST(EdgeCases, LargeValuesSurviveTheFifoPath)
{
    Design d("wide");
    const MemId out = d.addMemory("out", 2);
    const FifoId f = d.declareFifo("f", 2);
    const Value big = 0x7ffffffffffffff0LL;
    const ModuleId p = d.addModule("p", [=](Context &ctx) {
        ctx.write(f, big);
        ctx.write(f, -big);
    });
    const ModuleId c = d.addModule("c", [=](Context &ctx) {
        ctx.store(out, 0, ctx.read(f));
        ctx.store(out, 1, ctx.read(f));
    });
    d.connectFifo(f, p, c);
    const CompiledDesign cd = compile(d);
    const SimResult r = simulateOmniSim(cd, checkedOmniSim());
    EXPECT_EQ(r.memories.at("out")[0], big);
    EXPECT_EQ(r.memories.at("out")[1], -big);
}

} // namespace
} // namespace omnisim
