/** @file CompiledRun tests: the delta-driven resimulate() must be
 *  bit-identical to the pre-compiled full-rebuild reference
 *  (OmniSim::resimulateReference) across the design registry, for both
 *  reuse and divergence outcomes, including randomized depth vectors
 *  and the timing-infeasible shrink case. */

#include <gtest/gtest.h>

#include "design/context.hh"
#include "helpers.hh"
#include "support/prng.hh"

namespace omnisim
{
namespace
{

using test::checkedOmniSim;
using test::Compiled;

/** Deterministic per-design PRNG seed (std::hash is not portable). */
std::uint64_t
nameSeed(const std::string &name)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : name)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    return h;
}

/** Both resimulate paths must agree bit-for-bit. */
void
expectIdentical(const IncrementalOutcome &compiled,
                const IncrementalOutcome &reference,
                const std::string &what)
{
    ASSERT_EQ(compiled.reused, reference.reused)
        << what << ": compiled says '" << compiled.reason
        << "', reference says '" << reference.reason << "'";
    EXPECT_EQ(compiled.reason, reference.reason) << what;
    if (compiled.reused) {
        EXPECT_EQ(compiled.result.totalCycles,
                  reference.result.totalCycles) << what;
        EXPECT_EQ(compiled.result.status, reference.result.status) << what;
        EXPECT_EQ(compiled.result.memories, reference.result.memories)
            << what;
    }
}

/** Full fresh simulation under the given depths, as ground truth. */
SimResult
fullRun(const designs::DesignEntry &entry,
        const std::vector<std::uint32_t> &depths)
{
    Design d = entry.build();
    for (std::size_t f = 0; f < depths.size(); ++f)
        d.setFifoDepth(static_cast<FifoId>(f), depths[f]);
    const CompiledDesign cd = compile(d);
    return simulateOmniSim(cd, checkedOmniSim());
}

std::string
depthsLabel(const std::vector<std::uint32_t> &depths)
{
    std::string s = "(";
    for (std::size_t i = 0; i < depths.size(); ++i) {
        if (i)
            s += ',';
        s += std::to_string(depths[i]);
    }
    return s + ")";
}

TEST(CompiledRun, RegistryRandomizedDepthsMatchReference)
{
    // Every registered design, 24 randomized depth vectors each —
    // deepening, shrinking, multi-FIFO joint changes — must take the
    // identical reuse/divergence decision with identical totals and
    // identical divergence reasons on both paths. A few reused vectors
    // per design are additionally checked against a fresh full run.
    std::size_t reusedSeen = 0, divergedSeen = 0;
    for (const auto *suite :
         {&designs::typeBCDesigns(), &designs::typeADesigns()}) {
        for (const auto &entry : *suite) {
            Design d = entry.build();
            if (d.fifos().empty())
                continue;
            const CompiledDesign cd = compile(d);
            OmniSim engine(cd, checkedOmniSim());
            if (engine.run().status != SimStatus::Ok)
                continue;

            std::vector<std::uint32_t> base;
            for (const auto &f : d.fifos())
                base.push_back(f.depth);

            Prng prng(nameSeed(entry.name));
            std::size_t groundTruthBudget = 2;
            for (int probe = 0; probe < 24; ++probe) {
                std::vector<std::uint32_t> depths = base;
                const std::size_t touches = 1 + prng.below(base.size());
                for (std::size_t k = 0; k < touches; ++k) {
                    const std::size_t f = prng.below(base.size());
                    depths[f] = static_cast<std::uint32_t>(
                        1 + prng.below(20));
                }

                const IncrementalOutcome inc = engine.resimulate(depths);
                const IncrementalOutcome ref =
                    engine.resimulateReference(depths);
                expectIdentical(inc, ref,
                                entry.name + " " + depthsLabel(depths));
                EXPECT_TRUE(inc.viaCompiled);
                if (!inc.reused) {
                    ++divergedSeen;
                    continue;
                }
                ++reusedSeen;
                if (groundTruthBudget > 0 && depths != base) {
                    --groundTruthBudget;
                    const SimResult full = fullRun(entry, depths);
                    ASSERT_EQ(full.status, SimStatus::Ok)
                        << entry.name << " " << depthsLabel(depths);
                    EXPECT_EQ(inc.result.totalCycles, full.totalCycles)
                        << entry.name << " " << depthsLabel(depths);
                    EXPECT_EQ(inc.result.memories, full.memories)
                        << entry.name << " " << depthsLabel(depths);
                }
            }
        }
    }
    // The randomized sweep must actually exercise both outcome kinds.
    EXPECT_GT(reusedSeen, 0u);
    EXPECT_GT(divergedSeen, 0u);
}

TEST(CompiledRun, Table6HitAndDivergenceMatchReference)
{
    Compiled c("fig4_ex5");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);

    // Row 2: depth change that satisfies every constraint — reused.
    expectIdentical(engine.resimulate({2, 100}),
                    engine.resimulateReference({2, 100}), "(2,100)");
    const IncrementalOutcome hit = engine.resimulate({2, 100});
    ASSERT_TRUE(hit.reused) << hit.reason;

    // Row 3: flips recorded NB writes — both paths refuse with the
    // exact same first-divergent-constraint message.
    const IncrementalOutcome miss = engine.resimulate({100, 2});
    const IncrementalOutcome missRef = engine.resimulateReference({100, 2});
    EXPECT_FALSE(miss.reused);
    expectIdentical(miss, missRef, "(100,2)");
    EXPECT_NE(miss.reason.find("constraint violated"), std::string::npos);
}

TEST(CompiledRun, InfeasibleShrinkMatchesReference)
{
    // Shrinking a FIFO until the recorded schedule becomes a timing
    // cycle must be refused identically by both paths.
    Design d("reconverge");
    const MemId out = d.addMemory("out", 1);
    const std::size_t n = 6;
    const FifoId f1 = d.declareFifo("f1", 8);
    const FifoId f2 = d.declareFifo("f2", 8);
    const ModuleId p = d.addModule("p", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(f2, static_cast<Value>(i));
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(f1, static_cast<Value>(i));
    });
    const ModuleId c = d.addModule("c", [=](Context &ctx) {
        Value sum = 0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += ctx.read(f1);
            sum += ctx.read(f2);
        }
        ctx.store(out, 0, sum);
    });
    d.connectFifo(f1, p, c);
    d.connectFifo(f2, p, c);
    const CompiledDesign cd = compile(d);
    OmniSim engine(cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);

    const IncrementalOutcome bad = engine.resimulate({8, 1});
    expectIdentical(bad, engine.resimulateReference({8, 1}), "(8,1)");
    EXPECT_FALSE(bad.reused);
    EXPECT_NE(bad.reason.find("infeasible"), std::string::npos);
}

TEST(CompiledRun, IdenticalDepthsServeFromBaselineInstantly)
{
    Compiled c("reconvergent");
    OmniSim engine(c.cd, checkedOmniSim());
    const SimResult initial = engine.run();
    ASSERT_EQ(initial.status, SimStatus::Ok);
    std::vector<std::uint32_t> base;
    for (const auto &f : c.design.fifos())
        base.push_back(f.depth);

    const IncrementalOutcome inc = engine.resimulate(base);
    ASSERT_TRUE(inc.reused) << inc.reason;
    EXPECT_TRUE(inc.viaCompiled);
    EXPECT_TRUE(inc.viaDelta); // no depth changed: the trivial delta
    EXPECT_EQ(inc.result.totalCycles, initial.totalCycles);
}

TEST(CompiledRun, DeltaPathServesSmallDeepening)
{
    // Deepening one FIFO of a Type A design touches only its own WAR
    // cone: the worklist path must decide it without a full pass.
    Compiled c("accum_dataflow");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    std::vector<std::uint32_t> depths;
    for (const auto &f : c.design.fifos())
        depths.push_back(f.depth);
    depths[0] += 6;

    const IncrementalOutcome inc = engine.resimulate(depths);
    ASSERT_TRUE(inc.reused) << inc.reason;
    EXPECT_TRUE(inc.viaDelta);
    expectIdentical(inc, engine.resimulateReference(depths), "deepen");
}

TEST(CompiledRun, ReferencePathStaysAvailableWithoutRun)
{
    Compiled c("fig4_ex5");
    OmniSim engine(c.cd, checkedOmniSim());
    EXPECT_FALSE(engine.resimulate({2, 2}).reused);
    EXPECT_FALSE(engine.resimulateReference({2, 2}).reused);
}

} // namespace
} // namespace omnisim
