/** @file Persistent run store tests: round-trip bit-identity across the
 *  design registry (serialize -> reload -> resimulate equals the
 *  in-process engine and fresh-run ground truth), plus deliberate
 *  corruption, truncation, and version-bump rejection — a bad file must
 *  always be a recoverable FatalError, never UB. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "design/context.hh"
#include "dse/dse.hh"
#include "helpers.hh"
#include "io/run_io.hh"
#include "io/run_store.hh"
#include "io/serial.hh"
#include "support/prng.hh"

namespace omnisim
{
namespace
{

namespace fs = std::filesystem;

using test::checkedOmniSim;
using test::Compiled;

/** Deterministic per-design PRNG seed (std::hash is not portable). */
std::uint64_t
nameSeed(const std::string &name)
{
    return io::fnv1a(name);
}

/** Fresh temp directory under the build-tree scratch root. */
struct TempDir
{
    std::string path;

    explicit TempDir(const std::string &tag)
        : path(test::scratchDir("io_" + tag).string())
    {}

    ~TempDir() { fs::remove_all(path); }
};

void
expectIdentical(const IncrementalOutcome &stored,
                const IncrementalOutcome &live, const std::string &what)
{
    ASSERT_EQ(stored.reused, live.reused)
        << what << ": stored says '" << stored.reason << "', live says '"
        << live.reason << "'";
    EXPECT_EQ(stored.reason, live.reason) << what;
    EXPECT_EQ(stored.viaDelta, live.viaDelta) << what;
    if (stored.reused) {
        EXPECT_EQ(stored.result.totalCycles, live.result.totalCycles)
            << what;
        EXPECT_EQ(stored.result.memories, live.result.memories) << what;
    }
}

TEST(RunIo, RegistryRoundTripBitIdentity)
{
    // Every registered design: run once, serialize, decode into a
    // StoredRun (through actual bytes, not object copies), then drive
    // both the stored and the live engine through randomized depth
    // probes. Decisions, totals, divergence messages, and functional
    // outputs must match bit-for-bit; a few reused probes additionally
    // check against a fresh full simulation as ground truth.
    std::size_t designsCovered = 0, reused = 0, diverged = 0;
    for (const auto *suite :
         {&designs::typeBCDesigns(), &designs::typeADesigns()}) {
        for (const auto &entry : *suite) {
            Design d = entry.build();
            if (d.fifos().empty())
                continue;
            const CompiledDesign cd = compile(d);
            OmniSim engine(cd, checkedOmniSim());
            if (engine.run().status != SimStatus::Ok)
                continue;
            RunSnapshot snap;
            ASSERT_TRUE(engine.exportSnapshot(snap)) << entry.name;

            io::RunFileMeta meta;
            meta.design = entry.name;
            meta.engine = "omnisim";
            meta.fingerprint = io::designFingerprint(d);
            const std::string image = io::encodeRun(meta, snap);

            io::RunFileMeta meta2;
            RunSnapshot snap2;
            io::decodeRun(image, meta2, snap2);
            EXPECT_EQ(meta2.design, entry.name);
            EXPECT_EQ(meta2.fingerprint, meta.fingerprint);
            const std::unique_ptr<io::StoredRun> stored =
                io::StoredRun::rehydrate(std::move(snap2), meta2);

            std::vector<std::uint32_t> base;
            for (const auto &f : d.fifos())
                base.push_back(f.depth);
            EXPECT_EQ(stored->baseDepths(), base) << entry.name;
            EXPECT_EQ(stored->baseline().totalCycles,
                      engine.resimulate(base).result.totalCycles)
                << entry.name;

            Prng prng(nameSeed(entry.name));
            std::size_t groundTruthBudget = 2;
            for (int probe = 0; probe < 16; ++probe) {
                std::vector<std::uint32_t> depths = base;
                const std::size_t touches = 1 + prng.below(base.size());
                for (std::size_t k = 0; k < touches; ++k)
                    depths[prng.below(base.size())] =
                        static_cast<std::uint32_t>(1 + prng.below(20));

                const IncrementalOutcome fromStore =
                    stored->resimulate(depths);
                const IncrementalOutcome live = engine.resimulate(depths);
                expectIdentical(fromStore, live, entry.name);
                if (!fromStore.reused) {
                    ++diverged;
                    continue;
                }
                ++reused;
                if (groundTruthBudget > 0 && depths != base) {
                    --groundTruthBudget;
                    Design fresh = entry.build();
                    for (std::size_t f = 0; f < depths.size(); ++f)
                        fresh.setFifoDepth(static_cast<FifoId>(f),
                                           depths[f]);
                    const CompiledDesign fcd = compile(fresh);
                    const SimResult full =
                        simulateOmniSim(fcd, checkedOmniSim());
                    ASSERT_EQ(full.status, SimStatus::Ok) << entry.name;
                    EXPECT_EQ(fromStore.result.totalCycles,
                              full.totalCycles) << entry.name;
                    EXPECT_EQ(fromStore.result.memories, full.memories)
                        << entry.name;
                }
            }
            ++designsCovered;
        }
    }
    EXPECT_GT(designsCovered, 10u);
    EXPECT_GT(reused, 0u);
    EXPECT_GT(diverged, 0u);
}

TEST(RunIo, StoredRunServesWithoutTheDesign)
{
    // The whole point: after rehydration, resimulate() works without
    // the Design, the DSL, or the trace — only the file's bytes.
    Compiled c("reconvergent");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    ASSERT_TRUE(engine.exportSnapshot(snap));
    io::RunFileMeta meta;
    meta.design = "reconvergent";
    meta.engine = "omnisim";
    const std::string image = io::encodeRun(meta, snap);

    TempDir dir("standalone");
    const std::string path = (fs::path(dir.path) / "r.omnirun").string();
    std::ofstream(path, std::ios::binary) << image;

    const std::unique_ptr<io::StoredRun> run = io::StoredRun::open(path);
    std::vector<std::uint32_t> deeper = run->baseDepths();
    for (auto &d : deeper)
        d += 4;
    const IncrementalOutcome out = run->resimulate(deeper);
    ASSERT_TRUE(out.reused) << out.reason;
    EXPECT_EQ(out.result.totalCycles,
              engine.resimulate(deeper).result.totalCycles);
}

TEST(RunIo, ExportRequiresAValidRun)
{
    Compiled c("fifo_chain");
    OmniSim engine(c.cd, checkedOmniSim());
    RunSnapshot snap;
    EXPECT_FALSE(engine.exportSnapshot(snap)); // run() not called yet
}

TEST(RunIo, TruncationAlwaysRejected)
{
    // Every prefix of a valid file (sampled densely near section
    // boundaries via a stride) must throw FatalError — never crash,
    // never succeed.
    Compiled c("fifo_chain");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    ASSERT_TRUE(engine.exportSnapshot(snap));
    const std::string image = io::encodeRun({"fifo_chain", "omnisim", 1},
                                            snap);

    std::size_t rejected = 0;
    for (std::size_t len = 0; len < image.size();
         len += 1 + len / 97) {
        io::RunFileMeta meta;
        RunSnapshot out;
        EXPECT_THROW(io::decodeRun(std::string_view(image).substr(0, len),
                                   meta, out),
                     FatalError)
            << "prefix length " << len;
        ++rejected;
    }
    EXPECT_GT(rejected, 100u);

    // And the untruncated image still decodes.
    io::RunFileMeta meta;
    RunSnapshot out;
    EXPECT_NO_THROW(io::decodeRun(image, meta, out));
}

TEST(RunIo, BitFlipsAlwaysRejected)
{
    Compiled c("fifo_chain");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    ASSERT_TRUE(engine.exportSnapshot(snap));
    const std::string image = io::encodeRun({"fifo_chain", "omnisim", 1},
                                            snap);

    // Flip one bit at a spread of positions: the checksum (or, for
    // header bytes, the magic/version/size checks) must catch each one.
    Prng prng(0xb17f11b);
    for (int i = 0; i < 64; ++i) {
        std::string bad = image;
        const std::size_t pos = prng.below(bad.size());
        bad[pos] = static_cast<char>(
            bad[pos] ^ static_cast<char>(1u << prng.below(8)));
        io::RunFileMeta meta;
        RunSnapshot out;
        EXPECT_THROW(io::decodeRun(bad, meta, out), FatalError)
            << "flipped byte " << pos;
    }
}

TEST(RunIo, VersionBumpRejected)
{
    Compiled c("fifo_chain");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    ASSERT_TRUE(engine.exportSnapshot(snap));
    std::string image = io::encodeRun({"fifo_chain", "omnisim", 1}, snap);

    // The u32 format version sits right after the 8-byte magic.
    image[8] = static_cast<char>(io::kRunFormatVersion + 1);
    io::RunFileMeta meta;
    RunSnapshot out;
    try {
        io::decodeRun(image, meta, out);
        FAIL() << "version bump not rejected";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST(RunIo, V2FilesStillDecodeAndRecompile)
{
    // A version-2 image (no compiled-layout section) must keep loading
    // under the v3 reader: the layout is recompiled on rehydration and
    // every probe answers bit-identically to the v3 fast path.
    Compiled c("reconvergent");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    ASSERT_TRUE(engine.exportSnapshot(snap));
    const io::RunFileMeta meta{"reconvergent", "omnisim", 7};
    const std::string v2 = io::encodeRunV2(meta, snap);
    const std::string v3 = io::encodeRun(meta, snap);
    EXPECT_LT(v2.size(), v3.size());

    io::RunFileMeta m2;
    RunSnapshot s2;
    std::optional<opt::RunLayout> lay2;
    io::decodeRun(v2, m2, s2, lay2);
    EXPECT_FALSE(lay2.has_value());
    EXPECT_EQ(m2.design, "reconvergent");

    io::RunFileMeta m3;
    RunSnapshot s3;
    std::optional<opt::RunLayout> lay3;
    io::decodeRun(v3, m3, s3, lay3);
    ASSERT_TRUE(lay3.has_value());
    EXPECT_EQ(lay3->stats.origNodes, snap.nodes.size());
    EXPECT_LE(lay3->numNodes, snap.nodes.size());

    TempDir dir("v2compat");
    const std::string p2 = (fs::path(dir.path) / "v2.omnirun").string();
    const std::string p3 = (fs::path(dir.path) / "v3.omnirun").string();
    std::ofstream(p2, std::ios::binary) << v2;
    std::ofstream(p3, std::ios::binary) << v3;
    const std::unique_ptr<io::StoredRun> r2 = io::StoredRun::open(p2);
    const std::unique_ptr<io::StoredRun> r3 = io::StoredRun::open(p3);

    Prng prng(nameSeed("v2compat"));
    const std::vector<std::uint32_t> base = r2->baseDepths();
    for (int probe = 0; probe < 32; ++probe) {
        std::vector<std::uint32_t> depths = base;
        for (auto &dep : depths)
            if (prng.below(2) == 0)
                dep = static_cast<std::uint32_t>(1 + prng.below(12));
        expectIdentical(r2->resimulate(depths), r3->resimulate(depths),
                        "v2-vs-v3 probe");
    }
}

TEST(RunIo, V3FilesRederiveThePartitionPlan)
{
    // A version-3 image carries the layout but no partition plan; the
    // decoder re-derives one from the persisted layout and the
    // snapshot's baseline depths. The builder is deterministic, so the
    // result must match the plan a v4 image persists field-by-field —
    // and probes through both files must answer identically.
    Compiled c("reconvergent");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    ASSERT_TRUE(engine.exportSnapshot(snap));
    const io::RunFileMeta meta{"reconvergent", "omnisim", 7};
    const std::string v3 = io::encodeRunV3(meta, snap);
    const std::string v4 = io::encodeRun(meta, snap);
    EXPECT_LT(v3.size(), v4.size());

    io::RunFileMeta m3, m4;
    RunSnapshot s3, s4;
    std::optional<opt::RunLayout> lay3, lay4;
    io::decodeRun(v3, m3, s3, lay3);
    io::decodeRun(v4, m4, s4, lay4);
    ASSERT_TRUE(lay3.has_value());
    ASSERT_TRUE(lay4.has_value());
    const opt::PartitionPlan &p3 = lay3->part;
    const opt::PartitionPlan &p4 = lay4->part;
    ASSERT_TRUE(p4.valid);
    EXPECT_EQ(p3.valid, p4.valid);
    EXPECT_EQ(p3.order, p4.order);
    EXPECT_EQ(p3.levelOffsets, p4.levelOffsets);
    EXPECT_EQ(p3.coneOffsets, p4.coneOffsets);
    EXPECT_EQ(p3.frontierEdges, p4.frontierEdges);
    EXPECT_EQ(p3.maxLevelWidth, p4.maxLevelWidth);
    EXPECT_EQ(p3.minSafeDepth, p4.minSafeDepth);

    TempDir dir("v3compat");
    const std::string p3path = (fs::path(dir.path) / "v3.omnirun").string();
    const std::string p4path = (fs::path(dir.path) / "v4.omnirun").string();
    std::ofstream(p3path, std::ios::binary) << v3;
    std::ofstream(p4path, std::ios::binary) << v4;
    const std::unique_ptr<io::StoredRun> r3 = io::StoredRun::open(p3path);
    const std::unique_ptr<io::StoredRun> r4 = io::StoredRun::open(p4path);
    Prng prng(nameSeed("v3compat"));
    const std::vector<std::uint32_t> base = r3->baseDepths();
    for (int probe = 0; probe < 24; ++probe) {
        std::vector<std::uint32_t> depths = base;
        for (auto &dep : depths)
            if (prng.below(2) == 0)
                dep = static_cast<std::uint32_t>(1 + prng.below(12));
        expectIdentical(r3->resimulate(depths, 2),
                        r4->resimulate(depths, 2), "v3-vs-v4 probe");
    }
}

TEST(RunIo, TamperedPartitionPlanRejected)
{
    // A checksum-intact v4 plan section whose content breaks a plan
    // invariant must be rejected at decode — the parallel engine's
    // unchecked indexing (and its level-barrier ordering argument)
    // trusts every one of these fields. Tampers are injected by
    // re-encoding through encodeRun's layout parameter, so the whole
    // real decode path runs.
    Compiled c("reconvergent");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    ASSERT_TRUE(engine.exportSnapshot(snap));
    const io::RunFileMeta meta{"reconvergent", "omnisim", 7};
    io::RunFileMeta m;
    RunSnapshot s;
    std::optional<opt::RunLayout> lay;
    io::decodeRun(io::encodeRun(meta, snap), m, s, lay);
    ASSERT_TRUE(lay.has_value());
    ASSERT_TRUE(lay->part.valid);
    ASSERT_FALSE(lay->part.minSafeDepth.empty());

    const auto expectRejected = [&](const opt::RunLayout &bad,
                                    const char *what) {
        const std::string image = io::encodeRun(meta, snap, &bad);
        io::RunFileMeta m2;
        RunSnapshot s2;
        std::optional<opt::RunLayout> lay2;
        EXPECT_THROW(io::decodeRun(image, m2, s2, lay2), FatalError)
            << what;
    };

    {
        opt::RunLayout bad = *lay;
        bad.part.valid = false; // serial plan must carry no level data
        expectRejected(bad, "invalid plan with arrays");
    }
    {
        opt::RunLayout bad = *lay;
        bad.part.maxLevelWidth += 1;
        expectRejected(bad, "overstated level width");
    }
    {
        opt::RunLayout bad = *lay;
        bad.part.frontierEdges += 1;
        expectRejected(bad, "wrong frontier count");
    }
    {
        opt::RunLayout bad = *lay;
        bad.part.minSafeDepth[0] += 1; // levels imply a different value
        expectRejected(bad, "overstated depth threshold");
    }
    {
        opt::RunLayout bad = *lay;
        bad.part.minSafeDepth.pop_back();
        expectRejected(bad, "missing depth threshold");
    }
    {
        opt::RunLayout bad = *lay;
        ASSERT_GE(bad.part.order.size(), 2u);
        bad.part.order[1] = bad.part.order[0]; // not a permutation
        expectRejected(bad, "duplicate order entry");
    }
    {
        opt::RunLayout bad = *lay;
        bad.part.order.pop_back(); // orders fewer nodes than the layout
        expectRejected(bad, "short order");
    }
}

TEST(RunIo, TruncatedLayoutSectionRejected)
{
    // Cut bytes out of the v3 layout section while keeping the header
    // (size + checksum) honest, so only the section parser itself can
    // object — it must throw FatalError, never crash.
    Compiled c("fifo_chain");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    ASSERT_TRUE(engine.exportSnapshot(snap));
    const std::string v3 = io::encodeRun({"fifo_chain", "omnisim", 1},
                                         snap);
    const std::string v2 = io::encodeRunV2({"fifo_chain", "omnisim", 1},
                                           snap);
    const std::size_t hdr = 8 + 4 + 8 + 8;
    const std::size_t layoutBytes =
        (v3.size() - hdr) - (v2.size() - hdr);
    ASSERT_GT(layoutBytes, 16u);

    for (std::size_t cut = 1; cut < layoutBytes; cut += 1 + cut / 13) {
        const std::string payload =
            v3.substr(hdr, v3.size() - hdr - cut);
        io::ByteWriter file;
        file.raw(io::kRunMagic, sizeof(io::kRunMagic));
        file.u32(io::kRunFormatVersion);
        file.u64(io::fnv1a(payload));
        file.u64(payload.size());
        file.raw(payload.data(), payload.size());
        io::RunFileMeta meta;
        RunSnapshot out;
        std::optional<opt::RunLayout> lay;
        EXPECT_THROW(io::decodeRun(file.take(), meta, out, lay),
                     FatalError)
            << "cut " << cut << " bytes";
    }
}

TEST(RunIo, LayoutInvariantViolationsRejected)
{
    // A checksum-intact layout section whose content breaks a solver
    // invariant must be rejected by validateRunLayout — these are the
    // invariants evalConstraint's unchecked indexing relies on.
    // fig4_ex5 keeps most of its recorded constraints at -O1, so
    // the constraint-shaped tampers below actually exercise the checks.
    Compiled c("fig4_ex5");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    ASSERT_TRUE(engine.exportSnapshot(snap));
    const std::string v3 = io::encodeRun({"fig4_ex5", "omnisim", 1},
                                         snap);
    io::RunFileMeta meta;
    RunSnapshot out;
    std::optional<opt::RunLayout> lay;
    io::decodeRun(v3, meta, out, lay);
    ASSERT_TRUE(lay.has_value());
    EXPECT_NO_THROW(io::validateRunLayout(out, *lay));

    {
        opt::RunLayout bad = *lay;
        bad.numNodes = out.nodes.size() + 1;
        EXPECT_THROW(io::validateRunLayout(out, bad), FatalError);
    }
    {
        opt::RunLayout bad = *lay;
        ASSERT_FALSE(bad.remap.empty());
        bad.remap.pop_back();
        EXPECT_THROW(io::validateRunLayout(out, bad), FatalError);
    }
    {
        opt::RunLayout bad = *lay;
        bad.edges.push_back({bad.numNodes + 3, 0, 1});
        EXPECT_THROW(io::validateRunLayout(out, bad), FatalError);
    }
    {
        opt::RunLayout bad = *lay;
        ASSERT_FALSE(bad.fifos.empty());
        bad.fifos[0].readNode.push_back(0);
        EXPECT_THROW(io::validateRunLayout(out, bad), FatalError);
    }
    {
        opt::RunLayout bad = *lay;
        ASSERT_FALSE(bad.cons.empty());
        bad.cons.back().origIndex =
            static_cast<std::uint32_t>(out.constraints.size());
        EXPECT_THROW(io::validateRunLayout(out, bad), FatalError);
    }
    if (lay->cons.size() >= 2) {
        opt::RunLayout bad = *lay;
        std::swap(bad.cons.front().origIndex, bad.cons.back().origIndex);
        EXPECT_THROW(io::validateRunLayout(out, bad), FatalError);
    }
    // Drop a kept read query's pinned target write entry.
    for (const opt::LayoutCons &cons : lay->cons) {
        const QueryRecord &qr = out.constraints[cons.origIndex];
        if ((qr.kind == EventKind::FifoNbRead ||
             qr.kind == EventKind::FifoCanRead) &&
            qr.index <= lay->fifos[qr.fifo].writeNode.size()) {
            opt::RunLayout bad = *lay;
            bad.fifos[qr.fifo].writeNode[qr.index - 1] = opt::kNoNode;
            EXPECT_THROW(io::validateRunLayout(out, bad), FatalError);
            break;
        }
    }
}

TEST(RunIo, BadMagicRejected)
{
    io::RunFileMeta meta;
    RunSnapshot out;
    EXPECT_THROW(io::decodeRun("definitely not a run file", meta, out),
                 FatalError);
    EXPECT_THROW(io::decodeRun("", meta, out), FatalError);
}

TEST(RunIo, SemanticCorruptionRejected)
{
    // A file whose bytes are intact (checksum valid) but whose content
    // violates a cross-index invariant must still be rejected: rebuild
    // the image around a tampered snapshot.
    Compiled c("fifo_chain");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot good;
    ASSERT_TRUE(engine.exportSnapshot(good));

    {
        RunSnapshot bad = good;
        bad.seed.pop_back(); // seed/node arity mismatch
        EXPECT_THROW(io::validateSnapshot(bad), FatalError);
    }
    {
        RunSnapshot bad = good;
        bad.edges.push_back({bad.nodes.size() + 7, 0, 1});
        EXPECT_THROW(io::validateSnapshot(bad), FatalError);
    }
    {
        RunSnapshot bad = good;
        ASSERT_FALSE(bad.depths.empty());
        bad.depths[0] = 0;
        EXPECT_THROW(io::validateSnapshot(bad), FatalError);
    }
    {
        RunSnapshot bad = good;
        bad.result.status = SimStatus::Deadlock;
        EXPECT_THROW(io::validateSnapshot(bad), FatalError);
    }
    {
        RunSnapshot bad = good;
        QueryRecord qr;
        qr.fifo = 0;
        qr.kind = EventKind::FifoRead; // not a query kind
        qr.index = 1;
        qr.node = 0;
        bad.constraints.push_back(qr);
        EXPECT_THROW(io::validateSnapshot(bad), FatalError);
    }
}

TEST(RunStore, PublishLoadRoundTrip)
{
    TempDir dir("store_roundtrip");
    io::RunStore store(dir.path);

    Compiled c("reconvergent");
    const std::uint64_t fp = io::designFingerprint(c.design);
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    ASSERT_TRUE(engine.exportSnapshot(snap));

    ASSERT_TRUE(store.publish("reconvergent", "omnisim", fp, snap));
    EXPECT_EQ(store.count("reconvergent", "omnisim"), 1u);

    const std::unique_ptr<io::StoredRun> run =
        store.load("reconvergent", "omnisim", fp, snap.depths);
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->baseline().totalCycles, snap.result.totalCycles);

    // Wrong fingerprint (a structurally-changed design) is a miss, not
    // an error; so is an unknown depth vector.
    EXPECT_EQ(store.load("reconvergent", "omnisim", fp + 1, snap.depths),
              nullptr);
    std::vector<std::uint32_t> other = snap.depths;
    other[0] += 1;
    EXPECT_EQ(store.load("reconvergent", "omnisim", fp, other), nullptr);

    // Re-publication overwrites atomically, never accumulates.
    ASSERT_TRUE(store.publish("reconvergent", "omnisim", fp, snap));
    EXPECT_EQ(store.count("reconvergent", "omnisim"), 1u);
}

TEST(RunStore, CorruptFilesAreSkippedNotFatal)
{
    TempDir dir("store_corrupt");
    io::RunStore store(dir.path);

    Compiled c("fifo_chain");
    const std::uint64_t fp = io::designFingerprint(c.design);
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    ASSERT_TRUE(engine.exportSnapshot(snap));
    ASSERT_TRUE(store.publish("fifo_chain", "omnisim", fp, snap));

    // Truncate the published file in place.
    const std::string path =
        store.pathFor("fifo_chain", "omnisim", snap.depths);
    fs::resize_file(path, fs::file_size(path) / 2);

    EXPECT_EQ(store.load("fifo_chain", "omnisim", fp, snap.depths),
              nullptr);
    EXPECT_TRUE(
        store.loadAll("fifo_chain", "omnisim", fp, 8).empty());

    // Publishing again replaces the corpse and loads work again.
    ASSERT_TRUE(store.publish("fifo_chain", "omnisim", fp, snap));
    EXPECT_NE(store.load("fifo_chain", "omnisim", fp, snap.depths),
              nullptr);
}

TEST(RunStore, LoadAllWarmStartsTheEvalCache)
{
    TempDir dir("store_warm");
    io::RunStore store(dir.path);
    const designs::DesignEntry &entry =
        designs::findDesign("reconvergent");

    Design d = entry.build();
    std::vector<std::uint32_t> base;
    for (const auto &f : d.fifos())
        base.push_back(f.depth);

    // Process 1: pay for the full run of the registered configuration;
    // the attached store receives it.
    {
        dse::EvalCache cache(entry.build);
        cache.attachStore(&store, "reconvergent");
        EXPECT_EQ(cache.storedWarmStarts(), 0u); // store was empty
        const dse::Evaluation e =
            cache.evaluate(base, /*allowIncremental=*/false);
        ASSERT_TRUE(e.ok());
        EXPECT_EQ(e.method, dse::EvalMethod::FullRun);
        EXPECT_EQ(store.count("reconvergent", "omnisim"), 1u);
    }

    // Process 2 (fresh caches): the same configuration — and nearby
    // reusable ones — resolve incrementally against the rehydrated run
    // without any fresh engine run.
    {
        dse::EvalCache cache(entry.build);
        cache.attachStore(&store, "reconvergent");
        EXPECT_EQ(cache.storedWarmStarts(), 1u);

        const dse::Evaluation e = cache.evaluate(base);
        EXPECT_TRUE(e.ok());
        EXPECT_EQ(e.method, dse::EvalMethod::Incremental);
        EXPECT_EQ(cache.fullRuns(), 0u);

        // Bit-identity of the warm-served evaluation against a fresh
        // engine run of the same configuration.
        const SimResult fresh = simulateOmniSim(compile(d));
        ASSERT_EQ(fresh.status, SimStatus::Ok);
        EXPECT_EQ(e.latency, fresh.totalCycles);
    }

    // A DSE exploration over the warm store also starts from the
    // rehydrated pool instead of an empty one.
    {
        dse::DseOptions opts;
        opts.strategy = "grid";
        opts.budget = 8;
        opts.jobs = 1;
        opts.store = &store;
        const dse::DseReport rep =
            dse::exploreRegistered("reconvergent", opts);
        EXPECT_EQ(rep.storedWarmStarts, 1u);
        EXPECT_GE(store.count("reconvergent", "omnisim"),
                  1u + rep.fullRuns);
    }
}

TEST(RunStore, FingerprintExcludesDepthsButSeesStructure)
{
    Design a = designs::findDesign("reconvergent").build();
    Design b = designs::findDesign("reconvergent").build();
    ASSERT_FALSE(b.fifos().empty());
    b.setFifoDepth(0, b.fifos()[0].depth + 9);
    EXPECT_EQ(io::designFingerprint(a), io::designFingerprint(b))
        << "depths must not change the fingerprint";

    const Design other = designs::findDesign("fifo_chain").build();
    EXPECT_NE(io::designFingerprint(a), io::designFingerprint(other));
}

} // namespace
} // namespace omnisim
