/**
 * @file
 * Shared helpers for the test suite: compile-and-run wrappers that keep
 * the engine option conventions (RTL cost modeling off, finalization
 * verification on) in one place.
 */

#ifndef OMNISIM_TESTS_HELPERS_HH
#define OMNISIM_TESTS_HELPERS_HH

#include <filesystem>
#include <string>

#include "core/omnisim.hh"
#include "cosim/cosim.hh"
#include "csim/csim.hh"
#include "design/frontend.hh"
#include "designs/common.hh"
#include "lightningsim/lightningsim.hh"
#include "support/logging.hh"

namespace omnisim::test
{

/** Root for test scratch files: inside the build tree when CMake
 *  provided OMNISIM_TEST_SCRATCH_DIR, the system temp dir otherwise —
 *  never the source checkout or whatever directory ctest happened to be
 *  invoked from. */
inline std::filesystem::path
scratchRoot()
{
#ifdef OMNISIM_TEST_SCRATCH_DIR
    const std::filesystem::path root{OMNISIM_TEST_SCRATCH_DIR};
#else
    const std::filesystem::path root =
        std::filesystem::temp_directory_path() / "omnisim_test_scratch";
#endif
    std::filesystem::create_directories(root);
    return root;
}

/** A named scratch directory under scratchRoot(), created empty (any
 *  leftover from a previous run is wiped first). */
inline std::filesystem::path
scratchDir(const std::string &tag)
{
    const std::filesystem::path dir = scratchRoot() / tag;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Co-sim options for correctness tests: no synthetic RTL cost. */
inline CosimOptions
fastCosim()
{
    CosimOptions o;
    o.modelRtlCost = false;
    return o;
}

/** OmniSim options for correctness tests: verify finalization. */
inline OmniSimOptions
checkedOmniSim()
{
    OmniSimOptions o;
    o.verifyFinalization = true;
    return o;
}

/** Build + compile a registered design by name. */
struct Compiled
{
    Design design;
    CompiledDesign cd;

    explicit Compiled(const std::string &name)
        : design(designs::findDesign(name).build()), cd(compile(design))
    {}
};

} // namespace omnisim::test

#endif // OMNISIM_TESTS_HELPERS_HH
