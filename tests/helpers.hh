/**
 * @file
 * Shared helpers for the test suite: compile-and-run wrappers that keep
 * the engine option conventions (RTL cost modeling off, finalization
 * verification on) in one place.
 */

#ifndef OMNISIM_TESTS_HELPERS_HH
#define OMNISIM_TESTS_HELPERS_HH

#include "core/omnisim.hh"
#include "cosim/cosim.hh"
#include "csim/csim.hh"
#include "design/frontend.hh"
#include "designs/common.hh"
#include "lightningsim/lightningsim.hh"
#include "support/logging.hh"

namespace omnisim::test
{

/** Co-sim options for correctness tests: no synthetic RTL cost. */
inline CosimOptions
fastCosim()
{
    CosimOptions o;
    o.modelRtlCost = false;
    return o;
}

/** OmniSim options for correctness tests: verify finalization. */
inline OmniSimOptions
checkedOmniSim()
{
    OmniSimOptions o;
    o.verifyFinalization = true;
    return o;
}

/** Build + compile a registered design by name. */
struct Compiled
{
    Design design;
    CompiledDesign cd;

    explicit Compiled(const std::string &name)
        : design(designs::findDesign(name).build()), cd(compile(design))
    {}
};

} // namespace omnisim::test

#endif // OMNISIM_TESTS_HELPERS_HH
