/** @file Unit tests for the static scheduler substrate. */

#include <gtest/gtest.h>

#include "sched/opgraph.hh"
#include "sched/schedule.hh"
#include "support/logging.hh"

namespace omnisim
{
namespace
{

TEST(OpGraph, LatenciesAndResources)
{
    EXPECT_EQ(opLatency(OpKind::Add), 1u);
    EXPECT_EQ(opLatency(OpKind::Mul), 3u);
    EXPECT_EQ(opLatency(OpKind::Div), 16u);
    EXPECT_EQ(opLatency(OpKind::Const), 0u);
    EXPECT_EQ(opResource(OpKind::Mul), ResClass::Mul);
    EXPECT_EQ(opResource(OpKind::Load), ResClass::MemPort);
    EXPECT_EQ(opResource(OpKind::FifoRead), ResClass::None);
}

TEST(Asap, ChainLatency)
{
    OpGraph g;
    const auto a = g.addOp(OpKind::Add);  // 1 cycle
    const auto m = g.addOp(OpKind::Mul);  // 3 cycles
    const auto b = g.addOp(OpKind::Add);  // 1 cycle
    g.addDep(a, m);
    g.addDep(m, b);
    const auto s = asapSchedule(g);
    EXPECT_EQ(s.start[a], 0u);
    EXPECT_EQ(s.start[m], 1u);
    EXPECT_EQ(s.start[b], 4u);
    EXPECT_EQ(s.latency, 5u);
}

TEST(Asap, ParallelOpsShareCycleZero)
{
    OpGraph g;
    const auto a = g.addOp(OpKind::Add);
    const auto b = g.addOp(OpKind::Mul);
    const auto j = g.addOp(OpKind::Add);
    g.addDep(a, j);
    g.addDep(b, j);
    const auto s = asapSchedule(g);
    EXPECT_EQ(s.start[a], 0u);
    EXPECT_EQ(s.start[b], 0u);
    EXPECT_EQ(s.start[j], 3u); // waits for the multiply
    EXPECT_EQ(s.latency, 4u);
}

TEST(Asap, RejectsIntraIterationCycle)
{
    OpGraph g;
    const auto a = g.addOp(OpKind::Add);
    const auto b = g.addOp(OpKind::Add);
    g.addDep(a, b);
    g.addDep(b, a);
    EXPECT_THROW(asapSchedule(g), FatalError);
}

TEST(Alap, PushesSlackLate)
{
    OpGraph g;
    const auto a = g.addOp(OpKind::Add);
    const auto m = g.addOp(OpKind::Mul);
    const auto j = g.addOp(OpKind::Add);
    g.addDep(a, j);
    g.addDep(m, j);
    const auto s = alapSchedule(g, 4);
    EXPECT_EQ(s.start[j], 3u);
    EXPECT_EQ(s.start[m], 0u);
    EXPECT_EQ(s.start[a], 2u); // slack pushed late
    EXPECT_THROW(alapSchedule(g, 2), FatalError);
}

TEST(ListSchedule, RespectsResourceLimits)
{
    // Four independent multiplies through one multiplier: serialized.
    OpGraph g;
    for (int i = 0; i < 4; ++i)
        g.addOp(OpKind::Mul);
    Resources res;
    res.mul = 1;
    const auto s = listSchedule(g, res);
    std::vector<Cycles> starts(s.start);
    std::sort(starts.begin(), starts.end());
    EXPECT_EQ(starts, (std::vector<Cycles>{0, 1, 2, 3}));
    EXPECT_EQ(s.latency, 6u); // last issue at 3 + 3-cycle latency
}

TEST(ListSchedule, TwoUnitsHalveSerialization)
{
    OpGraph g;
    for (int i = 0; i < 4; ++i)
        g.addOp(OpKind::Mul);
    Resources res;
    res.mul = 2;
    const auto s = listSchedule(g, res);
    EXPECT_EQ(s.latency, 4u); // pairs at cycles 0 and 1, ends at 1 + 3
}

TEST(ResMii, CeilOfUsesOverUnits)
{
    OpGraph g;
    for (int i = 0; i < 8; ++i)
        g.addOp(OpKind::Mul);
    Resources res;
    res.mul = 1;
    EXPECT_EQ(resMii(g, res), 8u);
    res.mul = 3;
    EXPECT_EQ(resMii(g, res), 3u);
    res.mul = 8;
    EXPECT_EQ(resMii(g, res), 1u);
}

TEST(RecMii, NoRecurrenceIsOne)
{
    OpGraph g;
    const auto a = g.addOp(OpKind::Add);
    const auto b = g.addOp(OpKind::Mul);
    g.addDep(a, b);
    EXPECT_EQ(recMii(g), 1u);
}

TEST(RecMii, AccumulatorRecurrence)
{
    // acc = acc + x: a 1-cycle add feeding itself with distance 1.
    OpGraph g;
    const auto add = g.addOp(OpKind::Add);
    g.addLoopDep(add, add, 1);
    EXPECT_EQ(recMii(g), 1u);

    // A multiply in the recurrence raises RecMII to its latency.
    OpGraph g2;
    const auto m = g2.addOp(OpKind::Mul);
    const auto a = g2.addOp(OpKind::Add);
    g2.addDep(m, a);
    g2.addLoopDep(a, m, 1);
    EXPECT_EQ(recMii(g2), 4u); // 3 + 1 over distance 1
}

TEST(RecMii, DistanceTwoHalvesRequirement)
{
    OpGraph g;
    const auto m = g.addOp(OpKind::Mul);
    const auto a = g.addOp(OpKind::Add);
    g.addDep(m, a);
    g.addLoopDep(a, m, 2);
    EXPECT_EQ(recMii(g), 2u); // ceil(4 / 2)
}

TEST(ScheduleLoop, CombinesBothBounds)
{
    // 8 muls, 1 multiplier -> ResMII 8 dominates.
    OpGraph g;
    std::uint32_t prev = g.addOp(OpKind::FifoRead);
    for (int i = 0; i < 8; ++i) {
        const auto m = g.addOp(OpKind::Mul);
        g.addDep(prev, m);
        prev = m;
    }
    Resources res;
    res.mul = 1;
    const auto ls = scheduleLoop(g, res);
    EXPECT_EQ(ls.ii, 8u);
    EXPECT_GE(ls.depth, 25u); // 8 chained 3-cycle muls + read
}

TEST(OpGraph, TotalLatencyAndValidation)
{
    OpGraph g;
    g.addOp(OpKind::Add);
    g.addOp(OpKind::Div);
    EXPECT_EQ(g.totalLatency(), 17u);
    EXPECT_DEATH(g.addDep(0, 5), "out of range");
    EXPECT_DEATH(g.addDep(0, 0), "self dependence");
    EXPECT_DEATH(g.addLoopDep(0, 1, 0), "distance");
}

} // namespace
} // namespace omnisim
