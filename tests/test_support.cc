/** @file Unit tests for the support library. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "support/logging.hh"
#include "support/prng.hh"
#include "support/stats.hh"
#include "support/table.hh"

namespace omnisim
{
namespace
{

TEST(Strf, FormatsLikePrintf)
{
    EXPECT_EQ(strf("x=%d y=%s", 42, "abc"), "x=42 y=abc");
    EXPECT_EQ(strf("%05.1f", 2.25), "002.2");
    EXPECT_EQ(strf("plain"), "plain");
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(omnisim_fatal("bad config %d", 7), FatalError);
    try {
        omnisim_fatal("value=%d", 3);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=3");
    }
}

TEST(Logging, QuietFlagRoundTrips)
{
    setLogQuiet(true);
    EXPECT_TRUE(logQuiet());
    setLogQuiet(false);
    EXPECT_FALSE(logQuiet());
    setLogQuiet(true);
}

TEST(Prng, DeterministicForSeed)
{
    Prng a(123);
    Prng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer)
{
    Prng a(1);
    Prng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Prng, BelowRespectsBound)
{
    Prng p(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(p.below(17), 17u);
}

TEST(Prng, RangeInclusive)
{
    Prng p(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = p.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Prng, UniformInUnitInterval)
{
    Prng p(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = p.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RunningStat, BasicMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, ResetMatchesFreshInstance)
{
    RunningStat s;
    for (double x : {3.0, -1.0, 8.5})
        s.push(x);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    // A reset summary must keep accumulating correctly.
    s.push(2.0);
    s.push(6.0);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
}

TEST(RunningStat, MergeEqualsSingleThreadedPushes)
{
    // Parallel-Welford combine: pushing a sample stream into shards and
    // merging must agree with pushing the whole stream into one summary.
    std::vector<double> xs;
    Prng rng(2026);
    for (int i = 0; i < 1000; ++i)
        xs.push_back(static_cast<double>(rng.next() % 10007) / 7.0 - 512.0);

    RunningStat whole;
    for (double x : xs)
        whole.push(x);

    for (std::size_t shards : {2u, 3u, 7u}) {
        std::vector<RunningStat> parts(shards);
        for (std::size_t i = 0; i < xs.size(); ++i)
            parts[i % shards].push(xs[i]);
        RunningStat merged;
        for (const auto &p : parts)
            merged.merge(p);
        EXPECT_EQ(merged.count(), whole.count());
        EXPECT_DOUBLE_EQ(merged.min(), whole.min());
        EXPECT_DOUBLE_EQ(merged.max(), whole.max());
        EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9 * std::abs(whole.sum()));
        EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
        EXPECT_NEAR(merged.stddev(), whole.stddev(), 1e-9);
    }
}

TEST(RunningStat, MergeWithEmptySides)
{
    RunningStat filled;
    filled.push(1.0);
    filled.push(3.0);

    RunningStat ontoEmpty; // empty.merge(filled) copies
    ontoEmpty.merge(filled);
    EXPECT_EQ(ontoEmpty.count(), 2u);
    EXPECT_DOUBLE_EQ(ontoEmpty.mean(), 2.0);
    EXPECT_DOUBLE_EQ(ontoEmpty.min(), 1.0);
    EXPECT_DOUBLE_EQ(ontoEmpty.max(), 3.0);

    RunningStat empty; // filled.merge(empty) is a no-op
    filled.merge(empty);
    EXPECT_EQ(filled.count(), 2u);
    EXPECT_DOUBLE_EQ(filled.mean(), 2.0);
    EXPECT_DOUBLE_EQ(filled.stddev(), ontoEmpty.stddev());
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Geomean, NonPositiveSamplesCollapseDeterministically)
{
    // The geometric mean is undefined at or below zero; instead of
    // exp(-inf)/NaN pollution the result must be exactly 0 in every
    // build type, whatever else is in the vector.
    setLogQuiet(true);
    EXPECT_EQ(geomean({0.0}), 0.0);
    EXPECT_EQ(geomean({2.0, 0.0, 8.0}), 0.0);
    EXPECT_EQ(geomean({-3.0}), 0.0);
    EXPECT_EQ(geomean({5.0, -1.0}), 0.0);
    EXPECT_EQ(geomean({std::numeric_limits<double>::quiet_NaN()}), 0.0);
    setLogQuiet(false);
}

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"A", "Name"});
    t.addRow({"1", "x"});
    t.addRow({"22", "longer"});
    const std::string s = t.str();
    EXPECT_NE(s.find("| A  | Name   |"), std::string::npos);
    EXPECT_NE(s.find("| 22 | longer |"), std::string::npos);
}

TEST(TablePrinter, SeparatorAndMismatchedRow)
{
    TablePrinter t({"A"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    EXPECT_NE(t.str().find("+"), std::string::npos);
    EXPECT_DEATH(t.addRow({"1", "2"}), "row has");
}

} // namespace
} // namespace omnisim
