/**
 * @file
 * Partitioned parallel relaxation: RelaxPool semantics, partition-plan
 * structural invariants on a generated large design, and bit-identity
 * of resimulate() across lane counts — the guarantees the level-barrier
 * engine (src/graph/compiled_run.cc) and the -O1 partition pass
 * (src/opt/partition.cc) advertise. The parallel-vs-serial fuzz oracle
 * covers the same identity over random designs; these tests pin it with
 * exact expectations, including probes the plan must *refuse* to admit.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "gen/generate.hh"
#include "graph/relax_pool.hh"
#include "helpers.hh"
#include "io/run_io.hh"
#include "opt/partition.hh"
#include "support/prng.hh"

using namespace omnisim;

namespace
{

/** First field-level difference between two outcomes, or "". */
std::string
outcomeDiff(const IncrementalOutcome &a, const IncrementalOutcome &b)
{
    if (a.reused != b.reused)
        return "reused differs";
    if (a.reason != b.reason)
        return "reason differs: '" + a.reason + "' vs '" + b.reason + "'";
    if (!a.reused)
        return "";
    if (a.result.status != b.result.status)
        return "status differs";
    if (a.result.totalCycles != b.result.totalCycles)
        return "totalCycles differs";
    if (a.result.memories != b.result.memories)
        return "memories differ";
    return "";
}

/** Large-regime generator config shrunk to test-suite runtimes while
 *  still clearing kParallelMinNodes after the -O1 passes. */
gen::GenConfig
testLargeConfig()
{
    gen::GenConfig cfg = gen::largeGenConfig();
    cfg.minProcs = 96;
    cfg.maxProcs = 128;
    return cfg;
}

/** A generated design big enough to clear kParallelMinNodes after the
 *  -O1 passes, rehydrated into a StoredRun next to its live engine. */
struct LargeRun
{
    Design design;
    CompiledDesign cd;
    std::unique_ptr<OmniSim> engine;
    std::unique_ptr<io::StoredRun> stored;

    explicit LargeRun(std::uint64_t seed)
        : design(gen::materialize(gen::generateSpec(seed,
                                                    testLargeConfig()))),
          cd(compile(design))
    {
        engine = std::make_unique<OmniSim>(cd);
        EXPECT_EQ(engine->run().status, SimStatus::Ok);
        RunSnapshot snap;
        EXPECT_TRUE(engine->exportSnapshot(snap));
        stored = io::StoredRun::rehydrate(std::move(snap));
    }
};

TEST(RelaxPool, LeaseIsExclusiveAndReusable)
{
    RelaxPool &pool = RelaxPool::global();
    {
        const RelaxPool::Lease first = pool.tryAcquire(4);
        ASSERT_TRUE(first.active());
        EXPECT_EQ(first.lanes(), 4u);
        // The team is held: a concurrent caller degrades to serial.
        const RelaxPool::Lease second = pool.tryAcquire(4);
        EXPECT_FALSE(second.active());
    }
    // Released on destruction: the team can be leased again.
    const RelaxPool::Lease again = pool.tryAcquire(2);
    EXPECT_TRUE(again.active());
}

TEST(RelaxPool, InactiveLeaseRunsInline)
{
    const RelaxPool::Lease lease; // default-constructed: inactive
    EXPECT_FALSE(lease.active());
    EXPECT_EQ(lease.lanes(), 1u);
    std::vector<int> calls;
    lease.parallelFor(37, 4, [&](std::size_t b, std::size_t e) {
        calls.push_back(1);
        EXPECT_EQ(b, 0u);
        EXPECT_EQ(e, 37u);
    });
    EXPECT_EQ(calls.size(), 1u); // one fn(0, n) call, caller thread
}

TEST(RelaxPool, ParallelForCoversEveryIndexOnce)
{
    // Lanes may exceed the hardware count (the bit-identity tests below
    // rely on jobs=8 meaning 8 even on a single-core host).
    const RelaxPool::Lease lease = RelaxPool::global().tryAcquire(8);
    ASSERT_TRUE(lease.active());
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<std::uint32_t>> hits(kN);
    lease.parallelFor(kN, 64, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
}

TEST(RelaxPool, JobsBelowTwoStaySerial)
{
    EXPECT_FALSE(RelaxPool::global().tryAcquire(1).active());
}

TEST(ParallelRelax, PartitionPlanInvariants)
{
    const LargeRun run(11);
    const opt::RunLayout &lay = run.stored->compiled().layout();
    const opt::PartitionPlan &p = lay.part;
    ASSERT_TRUE(p.valid);
    ASSERT_GE(lay.numNodes, CompiledRun::kParallelMinNodes);

    // The order is a permutation of the layout nodes.
    const std::size_t n = lay.numNodes;
    ASSERT_EQ(p.order.size(), n);
    std::vector<std::uint8_t> seen(n, 0);
    for (const std::uint32_t v : p.order) {
        ASSERT_LT(v, n);
        ASSERT_FALSE(seen[v]);
        seen[v] = 1;
    }

    // Offsets span the order; every level boundary is a cone boundary.
    ASSERT_GE(p.levels(), 2u);
    ASSERT_EQ(p.levelOffsets.front(), 0u);
    ASSERT_EQ(p.levelOffsets.back(), n);
    ASSERT_EQ(p.coneOffsets.front(), 0u);
    ASSERT_EQ(p.coneOffsets.back(), n);
    std::size_t c = 0;
    std::uint32_t maxWidth = 0;
    for (std::size_t l = 0; l + 1 < p.levelOffsets.size(); ++l) {
        ASSERT_LE(p.levelOffsets[l], p.levelOffsets[l + 1]);
        maxWidth = std::max(maxWidth,
                            p.levelOffsets[l + 1] - p.levelOffsets[l]);
        while (c < p.coneOffsets.size() &&
               p.coneOffsets[c] < p.levelOffsets[l])
            ++c;
        ASSERT_EQ(p.coneOffsets[c], p.levelOffsets[l]);
    }
    EXPECT_EQ(maxWidth, p.maxLevelWidth);

    // Structural edges climb strictly level-up.
    std::vector<std::uint32_t> levelOf(n, 0);
    for (std::size_t l = 0; l + 1 < p.levelOffsets.size(); ++l)
        for (std::uint32_t i = p.levelOffsets[l];
             i < p.levelOffsets[l + 1]; ++i)
            levelOf[p.order[i]] = static_cast<std::uint32_t>(l);
    for (const auto &e : lay.edges)
        ASSERT_LT(levelOf[e.src], levelOf[e.dst]);

    // The admission thresholds are exactly what the levels imply, and
    // the baseline itself admits (else the plan would never be used).
    ASSERT_EQ(p.minSafeDepth.size(), lay.fifos.size());
    EXPECT_EQ(p.minSafeDepth, opt::minSafeDepths(lay, levelOf));
    std::vector<std::uint32_t> clampedBase = run.stored->baseDepths();
    for (std::size_t f = 0; f < clampedBase.size(); ++f)
        clampedBase[f] = std::min(clampedBase[f], lay.fifos[f].cap);
    EXPECT_TRUE(p.admits(clampedBase));
    for (const std::uint32_t d : p.minSafeDepth)
        EXPECT_GE(d, 1u);

    // The frontier count is derived data; keep the builder honest.
    std::vector<std::uint32_t> coneOf(n, 0);
    for (std::size_t k = 0; k + 1 < p.coneOffsets.size(); ++k)
        for (std::uint32_t i = p.coneOffsets[k]; i < p.coneOffsets[k + 1];
             ++i)
            coneOf[p.order[i]] = static_cast<std::uint32_t>(k);
    std::uint64_t frontier = 0;
    for (const auto &e : lay.edges)
        if (coneOf[e.src] != coneOf[e.dst])
            ++frontier;
    EXPECT_EQ(frontier, p.frontierEdges);
}

TEST(ParallelRelax, BitIdenticalAcrossLaneCounts)
{
    const LargeRun run(7);
    const std::vector<std::uint32_t> &base = run.stored->baseDepths();
    const std::size_t nfifos = base.size();
    ASSERT_GT(nfifos, 0u);

    // Randomized probes: small deltas (worklist path), broad
    // perturbations (full leveled pass), and all-ones (shallow probes
    // the plan typically refuses to admit — the serial fallback must
    // produce the same bits). The reference engine is ground truth.
    Prng prng(0x9a7a11e1u);
    std::vector<std::vector<std::uint32_t>> probes;
    for (int k = 0; k < 6; ++k) {
        std::vector<std::uint32_t> d = base;
        const std::size_t touches =
            k < 3 ? 1 + prng.below(4)
                  : 1 + prng.below(std::max<std::size_t>(1, nfifos / 4));
        for (std::size_t i = 0; i < touches; ++i)
            d[prng.below(nfifos)] =
                static_cast<std::uint32_t>(1 + prng.below(12));
        probes.push_back(std::move(d));
    }
    probes.emplace_back(nfifos, 1);
    probes.push_back(base);

    for (std::size_t k = 0; k < probes.size(); ++k) {
        SCOPED_TRACE("probe " + std::to_string(k));
        const IncrementalOutcome ref =
            run.engine->resimulateReference(probes[k]);
        const IncrementalOutcome serial =
            run.stored->resimulate(probes[k], 1);
        EXPECT_EQ(outcomeDiff(ref, serial), "");
        for (const unsigned jobs : {2u, 8u}) {
            const IncrementalOutcome par =
                run.stored->resimulate(probes[k], jobs);
            EXPECT_EQ(outcomeDiff(serial, par), "")
                << "jobs=" << jobs;
        }
    }
}

TEST(ParallelRelax, RegistryDesignsIdenticalAtAnyLaneCount)
{
    // Small designs take the serial path regardless of jobs — the knob
    // must still be accepted and bit-identical everywhere.
    for (const char *name : {"fifo_chain", "fig4_ex5", "reconvergent"}) {
        SCOPED_TRACE(name);
        const test::Compiled c(name);
        OmniSim engine(c.cd);
        ASSERT_EQ(engine.run().status, SimStatus::Ok);
        RunSnapshot snap;
        ASSERT_TRUE(engine.exportSnapshot(snap));
        const auto stored = io::StoredRun::rehydrate(std::move(snap));

        std::vector<std::uint32_t> base;
        for (const auto &f : c.design.fifos())
            base.push_back(f.depth);
        Prng prng(0xbeef);
        for (int probe = 0; probe < 12; ++probe) {
            std::vector<std::uint32_t> d = base;
            for (auto &depth : d)
                if (prng.below(2))
                    depth = 1 + prng.below(8);
            const IncrementalOutcome serial = stored->resimulate(d, 1);
            for (const unsigned jobs : {2u, 8u})
                EXPECT_EQ(outcomeDiff(serial,
                                      stored->resimulate(d, jobs)),
                          "");
        }
    }
}

} // namespace
