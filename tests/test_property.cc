/** @file Property-based tests: the engine-equivalence invariant
 *  (OmniSim == co-sim == LightningSim where applicable) swept over FIFO
 *  depths, random workloads, and randomly generated dataflow designs. */

#include <gtest/gtest.h>

#include <tuple>

#include "design/context.hh"
#include "helpers.hh"
#include "support/prng.hh"

namespace omnisim
{
namespace
{

using test::checkedOmniSim;
using test::fastCosim;

/** Sweep FIFO depths on Type B/C designs: OmniSim must track co-sim
 *  through every depth-induced behavioural change. */
class DepthSweep
    : public ::testing::TestWithParam<std::tuple<const char *, int>>
{};

TEST_P(DepthSweep, OmniSimEqualsCosim)
{
    const auto [name, depth] = GetParam();
    Design d = designs::findDesign(name).build();
    for (std::size_t f = 0; f < d.fifos().size(); ++f)
        d.setFifoDepth(static_cast<FifoId>(f),
                       static_cast<std::uint32_t>(depth));
    const CompiledDesign cd = compile(d);
    const SimResult co = simulateCosim(cd, fastCosim());
    const SimResult om = simulateOmniSim(cd, checkedOmniSim());
    ASSERT_EQ(om.status, co.status);
    EXPECT_EQ(om.memories, co.memories);
    if (co.status == SimStatus::Ok) {
        EXPECT_EQ(om.totalCycles, co.totalCycles);
    }
}

INSTANTIATE_TEST_SUITE_P(
    TypeBC, DepthSweep,
    ::testing::Combine(
        ::testing::Values("fig4_ex4a", "fig4_ex4b", "fig4_ex5",
                          "fig2_timer", "branch"),
        ::testing::Values(1, 2, 3, 5, 16)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param)) + "_d" +
               std::to_string(std::get<1>(info.param));
    });

/** Randomly generated acyclic blocking pipelines: all three simulators
 *  must agree on both outputs and cycle counts. */
class RandomPipeline : public ::testing::TestWithParam<int>
{};

Design
randomPipeline(std::uint64_t seed)
{
    Prng prng(seed);
    const std::size_t stages = 2 + prng.below(4); // 2..5 modules
    const std::size_t n = 64 + prng.below(256);
    Design d(strf("rand_%llu", static_cast<unsigned long long>(seed)));
    const MemId data = d.addMemory("data", n);
    const MemId out = d.addMemory("out", 1);
    {
        std::vector<Value> v(n);
        for (std::size_t i = 0; i < n; ++i)
            v[i] = static_cast<Value>(prng.range(-100, 100));
        d.setInput(data, v);
    }

    std::vector<FifoId> links(stages + 1);
    for (std::size_t s = 0; s <= stages; ++s) {
        links[s] = d.declareFifo(
            strf("l%zu", s), 1 + static_cast<std::uint32_t>(prng.below(4)));
    }

    std::vector<ModuleId> mods;
    mods.push_back(d.addModule("src", [=](Context &ctx) {
        PipelineScope pipe(ctx, 1);
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            ctx.write(links[0], ctx.load(data, i));
        }
    }));
    for (std::size_t s = 0; s < stages; ++s) {
        const FifoId in_f = links[s];
        const FifoId out_f = links[s + 1];
        const auto ii = 1 + static_cast<std::uint32_t>(prng.below(3));
        const auto extra = static_cast<Cycles>(prng.below(3));
        const Value mul = prng.range(1, 5);
        mods.push_back(d.addModule(strf("st%zu", s), [=](Context &ctx) {
            PipelineScope pipe(ctx, ii);
            for (std::size_t i = 0; i < n; ++i) {
                pipe.iter();
                const Value v = ctx.read(in_f);
                if (extra)
                    ctx.advance(extra);
                ctx.write(out_f, v * mul + 1);
            }
        }));
    }
    mods.push_back(d.addModule("sink", [=](Context &ctx) {
        Value sum = 0;
        PipelineScope pipe(ctx, 1);
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            sum += ctx.read(links[stages]);
        }
        ctx.store(out, 0, sum);
    }));

    for (std::size_t s = 0; s <= stages; ++s)
        d.connectFifo(links[s], mods[s], mods[s + 1]);
    return d;
}

TEST_P(RandomPipeline, AllEnginesAgree)
{
    Design d = randomPipeline(static_cast<std::uint64_t>(GetParam()));
    const CompiledDesign cd = compile(d);
    ASSERT_EQ(cd.classification.type, DesignType::A);
    const SimResult co = simulateCosim(cd, fastCosim());
    const SimResult om = simulateOmniSim(cd, checkedOmniSim());
    const SimResult ls = simulateLightningSim(cd);
    ASSERT_EQ(co.status, SimStatus::Ok);
    EXPECT_EQ(om.totalCycles, co.totalCycles);
    EXPECT_EQ(ls.totalCycles, co.totalCycles);
    EXPECT_EQ(om.memories, co.memories);
    EXPECT_EQ(ls.memories, co.memories);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipeline,
                         ::testing::Range(1, 21));

/** Randomly generated Type C stress: a producer with NB drops and a
 *  jittery consumer — OmniSim must equal co-sim for any parameters. */
class RandomNbStress : public ::testing::TestWithParam<int>
{};

TEST_P(RandomNbStress, OmniSimEqualsCosim)
{
    Prng prng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
    const std::size_t n = 128 + prng.below(512);
    const auto depth = 1 + static_cast<std::uint32_t>(prng.below(5));
    const auto prod_pace = static_cast<Cycles>(prng.below(3));
    const auto cons_pace = static_cast<Cycles>(prng.below(4));
    const auto burst = 2 + prng.below(8);

    Design d("nb_stress");
    const MemId data = d.addMemory("data", n);
    const MemId out = d.addMemory("out", 2);
    d.setInput(data, designs::iotaData(n));
    const FifoId f = d.declareFifo("f", depth, AccessKind::NonBlocking,
                                   AccessKind::NonBlocking);
    const ModuleId p = d.addModule(
        "p",
        [=](Context &ctx) {
            Value dropped = 0;
            for (std::size_t i = 0; i < n; ++i) {
                if (!ctx.writeNb(f, ctx.load(data, i)))
                    ++dropped;
                if (prod_pace)
                    ctx.advance(prod_pace);
            }
            ctx.store(out, 1, dropped);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});
    const ModuleId c = d.addModule(
        "c",
        [=](Context &ctx) {
            Value sum = 0;
            for (std::size_t k = 0; k < n; ++k) {
                Value v;
                if (ctx.readNb(f, v))
                    sum += v;
                if (cons_pace)
                    ctx.advance(cons_pace);
                if (k % burst == burst - 1)
                    ctx.advance(3);
            }
            ctx.store(out, 0, sum);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});
    d.connectFifo(f, p, c);
    const CompiledDesign cd = compile(d);

    const SimResult co = simulateCosim(cd, fastCosim());
    const SimResult om = simulateOmniSim(cd, checkedOmniSim());
    ASSERT_EQ(co.status, SimStatus::Ok);
    ASSERT_EQ(om.status, SimStatus::Ok);
    EXPECT_EQ(om.memories, co.memories);
    EXPECT_EQ(om.totalCycles, co.totalCycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNbStress,
                         ::testing::Range(1, 26));

/** Input-data invariance: blocking designs must produce cycle counts
 *  independent of data values (control flow is data-independent). */
TEST(Property, BlockingCyclesAreDataIndependent)
{
    Cycles reference = 0;
    for (int seed = 1; seed <= 4; ++seed) {
        Prng prng(seed);
        Design d = designs::findDesign("fig4_ex3").build();
        std::vector<Value> data(designs::tableN);
        for (auto &v : data)
            v = prng.range(0, 1000);
        d.setInput(0, data);
        const CompiledDesign cd = compile(d);
        const SimResult r = simulateOmniSim(cd, checkedOmniSim());
        ASSERT_EQ(r.status, SimStatus::Ok);
        if (seed == 1)
            reference = r.totalCycles;
        else
            EXPECT_EQ(r.totalCycles, reference);
    }
}

/** Monotonicity: deepening every FIFO can never increase latency. */
TEST(Property, DeeperFifosNeverSlowTypeADesigns)
{
    for (const char *name : {"axis_stream", "accum_dataflow",
                             "inr_arch_lite"}) {
        Cycles prev = ~Cycles{0};
        for (std::uint32_t depth : {1u, 2u, 4u, 16u}) {
            Design d = designs::findDesign(name).build();
            for (std::size_t f = 0; f < d.fifos().size(); ++f)
                d.setFifoDepth(static_cast<FifoId>(f), depth);
            const CompiledDesign cd = compile(d);
            const SimResult r = simulateLightningSim(cd);
            ASSERT_EQ(r.status, SimStatus::Ok) << name;
            EXPECT_LE(r.totalCycles, prev) << name << " depth " << depth;
            prev = r.totalCycles;
        }
    }
}

} // namespace
} // namespace omnisim
