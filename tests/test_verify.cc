/**
 * @file
 * The IR verifier (src/opt/verify.*) under test from both sides:
 *
 *  - a mutation corpus: hand-corrupted layouts/plans must be rejected
 *    with the documented invariant id bracketed in the FatalError
 *    message ([dag], [csr-sorted], [remap-bijective],
 *    [cons-addressable], [threshold-admissible], ...);
 *  - a clean sweep: every registry design and 500 generated designs
 *    compile with verification forced on — the between-pass hooks, the
 *    final materialize check and the partition check must all pass.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gen/generate.hh"
#include "gen/spec.hh"
#include "helpers.hh"
#include "io/run_io.hh"
#include "opt/layout.hh"
#include "opt/pass_manager.hh"
#include "opt/verify.hh"

using namespace omnisim;

namespace
{

/** Run a registry design and export its snapshot. */
RunSnapshot
snapshotOf(const test::Compiled &c)
{
    OmniSim engine(c.cd);
    EXPECT_EQ(engine.run().status, SimStatus::Ok);
    RunSnapshot snap;
    EXPECT_TRUE(engine.exportSnapshot(snap));
    return snap;
}

opt::LayoutInput
inputOf(const RunSnapshot &snap)
{
    return {&snap.nodes, &snap.edges,       &snap.seed,
            &snap.tables, &snap.depths,     &snap.constraints,
            &snap.tailNode, &snap.tailSlack};
}

opt::RunLayout
compileSnapshot(const RunSnapshot &snap, opt::OptLevel level)
{
    return opt::PassManager(level).compile(inputOf(snap));
}

/** Run fn, demand a FatalError, and hand back its message. */
template <typename Fn>
std::string
fatalMessage(Fn &&fn)
{
    try {
        fn();
    } catch (const FatalError &e) {
        return e.what();
    }
    ADD_FAILURE() << "expected the verifier to throw FatalError";
    return "";
}

/** The id the verifier must bracket into the failure message. */
void
expectInvariant(const std::string &msg, const char *id)
{
    EXPECT_NE(msg.find(std::string("[") + id + "]"), std::string::npos)
        << "message was: " << msg;
}

TEST(Verify, CleanLayoutsPassBothLevels)
{
    for (const char *name : {"fifo_chain", "fig4_ex5", "reconvergent"}) {
        SCOPED_TRACE(name);
        const test::Compiled c(name);
        const RunSnapshot snap = snapshotOf(c);
        for (const opt::OptLevel level :
             {opt::OptLevel::O0, opt::OptLevel::O1}) {
            const opt::RunLayout lay = compileSnapshot(snap, level);
            opt::VerifyContext ctx;
            ctx.pass = "test-clean";
            EXPECT_NO_THROW(opt::verifyLayout(lay, ctx));
            EXPECT_NO_THROW(
                opt::verifyPartitionPlan(lay, snap.depths, ctx));
        }
    }
}

TEST(Verify, CycleInjectionIsRejected)
{
    const test::Compiled c("fifo_chain");
    const RunSnapshot snap = snapshotOf(c);
    opt::RunLayout lay = compileSnapshot(snap, opt::OptLevel::O1);
    ASSERT_FALSE(lay.edges.empty());

    // Close a loop: the reverse of an existing edge cannot already be
    // present (the layout is a DAG), so after re-sorting the CSR stays
    // strictly (src, dst)-ordered and the acyclicity check is what fires.
    CsrGraph::EdgeSpec back = lay.edges.front();
    std::swap(back.src, back.dst);
    lay.edges.push_back(back);
    std::sort(lay.edges.begin(), lay.edges.end(),
              [](const CsrGraph::EdgeSpec &a, const CsrGraph::EdgeSpec &b) {
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.dst < b.dst;
              });

    opt::VerifyContext ctx;
    ctx.pass = "test-cycle";
    expectInvariant(fatalMessage([&] { opt::verifyLayout(lay, ctx); }),
                    "dag");
}

TEST(Verify, UnsortedCsrIsRejected)
{
    const test::Compiled c("fifo_chain");
    const RunSnapshot snap = snapshotOf(c);
    opt::RunLayout lay = compileSnapshot(snap, opt::OptLevel::O1);
    ASSERT_GE(lay.edges.size(), 2u);

    std::swap(lay.edges.front(), lay.edges.back());

    opt::VerifyContext ctx;
    ctx.pass = "test-unsorted";
    expectInvariant(fatalMessage([&] { opt::verifyLayout(lay, ctx); }),
                    "csr-sorted");
}

TEST(Verify, RemapCollisionIsRejected)
{
    const test::Compiled c("fifo_chain");
    const RunSnapshot snap = snapshotOf(c);
    opt::RunLayout lay = compileSnapshot(snap, opt::OptLevel::O1);
    ASSERT_GE(lay.numNodes, 2u);

    // Collide every preimage of the last layout node into node 0: the
    // last layout node loses its preimage, so the map is no longer onto.
    const std::uint32_t last =
        static_cast<std::uint32_t>(lay.numNodes - 1);
    for (std::uint32_t &d : lay.remap)
        if (d == last)
            d = 0;

    opt::VerifyContext ctx;
    ctx.pass = "test-collision";
    expectInvariant(fatalMessage([&] { opt::verifyLayout(lay, ctx); }),
                    "remap-bijective");
}

TEST(Verify, StaleConstraintIndicesAreRejected)
{
    const test::Compiled c("fig4_ex5"); // keeps real constraints at -O1
    const RunSnapshot snap = snapshotOf(c);
    opt::RunLayout lay = compileSnapshot(snap, opt::OptLevel::O1);
    ASSERT_FALSE(lay.cons.empty());

    opt::VerifyContext ctx;
    ctx.pass = "test-stale-cons";
    if (lay.cons.size() >= 2) {
        // Duplicate recorded indices violate the strictly-ascending
        // recorded order the resolver depends on.
        opt::RunLayout bad = lay;
        bad.cons[1].origIndex = bad.cons[0].origIndex;
        expectInvariant(
            fatalMessage([&] { opt::verifyLayout(bad, ctx); }),
            "cons-addressable");
    }
    // A query node past the live layout is stale by construction.
    opt::RunLayout bad = lay;
    bad.cons[0].node = static_cast<std::uint32_t>(bad.numNodes);
    expectInvariant(fatalMessage([&] { opt::verifyLayout(bad, ctx); }),
                    "cons-addressable");
}

TEST(Verify, TamperedThresholdsAreRejected)
{
    // Find a registry design whose -O1 compile yields a valid partition
    // plan, then bump one persisted admissibility threshold.
    for (const char *name : {"fifo_chain", "reconvergent", "fig4_ex5",
                             "branch", "multicore"}) {
        const test::Compiled c(name);
        const RunSnapshot snap = snapshotOf(c);
        opt::RunLayout lay = compileSnapshot(snap, opt::OptLevel::O1);
        if (!lay.part.valid || lay.part.minSafeDepth.empty())
            continue;
        SCOPED_TRACE(name);

        lay.part.minSafeDepth[0] += 1;

        opt::VerifyContext ctx;
        ctx.pass = "test-threshold";
        expectInvariant(
            fatalMessage(
                [&] { opt::verifyPartitionPlan(lay, snap.depths, ctx); }),
            "threshold-admissible");
        return;
    }
    FAIL() << "no registry design produced a valid partition plan";
}

TEST(Verify, AccessMapDriftIsRejected)
{
    const test::Compiled c("fifo_chain");
    const RunSnapshot snap = snapshotOf(c);
    opt::RunLayout lay = compileSnapshot(snap, opt::OptLevel::O1);
    ASSERT_FALSE(lay.fifos.empty());

    lay.fifos[0].blockingWrites += 1;

    opt::VerifyContext ctx;
    ctx.pass = "test-acc-drift";
    expectInvariant(fatalMessage([&] { opt::verifyLayout(lay, ctx); }),
                    "acc-map-consistent");
}

TEST(Verify, ChainWeightTamperingIsRejected)
{
    const test::Compiled c("fifo_chain");
    const RunSnapshot snap = snapshotOf(c);
    const opt::LayoutInput in = inputOf(snap);
    opt::RunLayout lay = opt::PassManager(opt::OptLevel::O1).compile(in);
    ASSERT_GT(lay.numNodes, 0u);

    // Stretch one collapsed duration: the re-finalized total drifts.
    lay.dur.back() += 1000;

    opt::VerifyContext ctx;
    ctx.input = &in;
    ctx.pass = "test-weight";
    expectInvariant(fatalMessage([&] { opt::verifyLayout(lay, ctx); }),
                    "chain-weight");
}

TEST(Verify, RegistryCompilesCleanWithVerifierForcedOn)
{
    // Sticky global — every compile below (and in later tests of this
    // binary) runs the between-pass verifier even in Release builds.
    opt::setVerifyEnabled(true);
    ASSERT_TRUE(opt::verifyEnabled());

    const auto sweep = [](const std::vector<designs::DesignEntry> &suite) {
        for (const auto &entry : suite) {
            SCOPED_TRACE(entry.name);
            const Design d = entry.build();
            const CompiledDesign cd = compile(d);
            OmniSim engine(cd, test::checkedOmniSim());
            const SimResult r = engine.run();
            if (r.status != SimStatus::Ok)
                continue; // nothing frozen to verify
            // Round-trip through OMSIMRUN: decodeRun re-verifies the
            // rehydrated layout and plan under pass="rehydrate".
            RunSnapshot snap;
            ASSERT_TRUE(engine.exportSnapshot(snap));
            io::RunFileMeta meta;
            meta.design = d.name();
            meta.engine = "omnisim";
            const std::string bytes = io::encodeRun(meta, snap);
            io::RunFileMeta meta2;
            RunSnapshot snap2;
            EXPECT_NO_THROW(io::decodeRun(bytes, meta2, snap2));
        }
    };
    sweep(designs::typeADesigns());
    sweep(designs::typeBCDesigns());
}

TEST(Verify, FiveHundredGeneratedDesignsCompileClean)
{
    opt::setVerifyEnabled(true);
    int frozen = 0;
    for (std::uint64_t seed = 1; seed <= 500; ++seed) {
        SCOPED_TRACE(seed);
        const gen::GenSpec spec = gen::generateSpec(seed);
        Design d = gen::materialize(spec);
        const CompiledDesign cd = compile(d);
        OmniSim engine(cd, test::checkedOmniSim());
        SimResult r;
        ASSERT_NO_THROW(r = engine.run());
        if (r.status != SimStatus::Ok)
            continue;
        ++frozen;
        // One depth probe re-enters the compiled paths (and, at -O1,
        // the partition admissibility machinery) post-verification.
        std::vector<std::uint32_t> depths;
        for (const auto &f : d.fifos())
            depths.push_back(f.depth + 1);
        ASSERT_NO_THROW((void)engine.resimulate(depths));
    }
    // The generator's deadlock injection is rare: the overwhelming
    // majority of seeds must actually exercise the pass pipeline.
    EXPECT_GT(frozen, 350);
}

} // namespace
