/** @file Cross-engine integration tests over the full design suites,
 *  including functional golden values for the Type A kernels. */

#include <gtest/gtest.h>

#include "design/context.hh"
#include "helpers.hh"

namespace omnisim
{
namespace
{

using test::checkedOmniSim;
using test::Compiled;
using test::fastCosim;

/** Every Type A design: LightningSim and OmniSim agree bit-for-bit. */
class TypeAParity : public ::testing::TestWithParam<const char *>
{};

TEST_P(TypeAParity, LightningSimAndOmniSimAgree)
{
    Compiled c(GetParam());
    const SimResult ls = simulateLightningSim(c.cd);
    const SimResult om = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(ls.status, SimStatus::Ok);
    ASSERT_EQ(om.status, SimStatus::Ok);
    EXPECT_EQ(ls.totalCycles, om.totalCycles);
    EXPECT_EQ(ls.memories, om.memories);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, TypeAParity,
    ::testing::Values("sqrt_fixed", "fir_filter", "window_conv_fixed",
                      "float_conv", "ap_alu", "parallel_loops",
                      "imperfect_loops", "loop_max_bound",
                      "perfect_nested", "pipelined_nested",
                      "sequential_accum", "accum_asserts",
                      "accum_dataflow", "static_memory", "pointer_cast",
                      "double_pointer", "axi4_master", "axis_stream",
                      "multiple_array_access", "uram_ecc",
                      "hamming_fixed", "huffman_encoding",
                      "matrix_multiplication", "parallelized_merge_sort",
                      "vector_add_stream", "flowgnn_lite",
                      "inr_arch_lite", "skynet_lite"),
    [](const auto &info) { return std::string(info.param); });

/** Small/medium Type A designs: co-sim ground truth agrees too. */
class TypeACosim : public ::testing::TestWithParam<const char *>
{};

TEST_P(TypeACosim, CosimAgrees)
{
    Compiled c(GetParam());
    const SimResult co = simulateCosim(c.cd, fastCosim());
    const SimResult om = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(co.status, SimStatus::Ok);
    EXPECT_EQ(om.totalCycles, co.totalCycles);
    EXPECT_EQ(om.memories, co.memories);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, TypeACosim,
    ::testing::Values("sqrt_fixed", "fir_filter", "ap_alu",
                      "parallel_loops", "imperfect_loops",
                      "loop_max_bound", "perfect_nested",
                      "sequential_accum", "accum_dataflow",
                      "static_memory", "double_pointer", "axi4_master",
                      "axis_stream", "multiple_array_access",
                      "huffman_encoding", "matrix_multiplication",
                      "parallelized_merge_sort", "vector_add_stream"),
    [](const auto &info) { return std::string(info.param); });

// ---- Functional golden values ---------------------------------------

TEST(Golden, MatmulAgainstReferenceImplementation)
{
    Compiled c("matrix_multiplication");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    const std::size_t dim = 16;
    const auto &a = c.design.inputs().at(0);
    const auto &b = c.design.inputs().at(1);
    const auto &got = r.memories.at("C");
    for (std::size_t i = 0; i < dim; ++i) {
        for (std::size_t j = 0; j < dim; ++j) {
            Value acc = 0;
            for (std::size_t k = 0; k < dim; ++k)
                acc += a[i * dim + k] * b[k * dim + j];
            ASSERT_EQ(got[i * dim + j], acc) << i << "," << j;
        }
    }
}

TEST(Golden, MergeSortActuallySorts)
{
    Compiled c("parallelized_merge_sort");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    const auto &sorted = r.memories.at("sorted");
    auto expect = c.design.inputs().at(0);
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(sorted, expect);
}

TEST(Golden, VecaddWritesElementwiseSum)
{
    Compiled c("vector_add_stream");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    const auto &a = c.design.inputs().at(0);
    const auto &b = c.design.inputs().at(1);
    const auto &out = r.memories.at("out");
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(out[i], a[i] + b[i]) << i;
}

TEST(Golden, Axi4MasterTransformsEveryElement)
{
    Compiled c("axi4_master");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    const auto &in = c.design.inputs().at(0);
    const auto &out = r.memories.at("ddr_out");
    for (std::size_t i = 0; i < in.size(); ++i)
        ASSERT_EQ(out[i], in[i] * 2 + 1) << i;
}

TEST(Golden, SqrtFixedComputesIntegerRoots)
{
    Compiled c("sqrt_fixed");
    const SimResult r = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    // Spot-check the Newton iteration outcome folded into the sum.
    Value expect = 0;
    for (std::size_t i = 1; i <= 4096; ++i) {
        Value v = static_cast<Value>(i);
        Value x = v;
        for (int it = 0; it < 3; ++it)
            x = (x + v / x) / 2;
        expect += x;
    }
    EXPECT_EQ(r.scalar("sum_out"), expect);
}

TEST(Golden, CsimOmniSimFunctionalParityOnTypeA)
{
    // For Type A designs the naive C simulation is functionally right;
    // OmniSim must match it while adding timing.
    for (const char *name : {"fir_filter", "uram_ecc", "hamming_fixed",
                             "pointer_cast", "static_memory"}) {
        Compiled c(name);
        const SimResult cs = simulateCSim(c.cd);
        const SimResult om = simulateOmniSim(c.cd, checkedOmniSim());
        ASSERT_EQ(cs.status, SimStatus::Ok) << name;
        ASSERT_EQ(om.status, SimStatus::Ok) << name;
        EXPECT_EQ(cs.memories, om.memories) << name;
    }
}

// ---- Scale checks ----------------------------------------------------

TEST(Scale, LargeDesignsExerciseManyModules)
{
    Compiled inr("inr_arch_lite");
    EXPECT_EQ(inr.design.modules().size(), 14u);
    Compiled sky("skynet_lite");
    EXPECT_GE(sky.design.modules().size(), 9u);
    const SimResult r = simulateOmniSim(sky.cd, checkedOmniSim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_GT(r.stats.events, 100'000u);
    EXPECT_GT(r.totalCycles, 25'000u);
}

TEST(Scale, MulticoreRunsAllCoresToCompletion)
{
    Compiled c("multicore");
    const SimResult om = simulateOmniSim(c.cd, checkedOmniSim());
    ASSERT_EQ(om.status, SimStatus::Ok);
    EXPECT_GT(om.scalar("total_executed"), 0);
    EXPECT_GT(om.scalar("total_fetched"), om.scalar("total_executed"));
}

} // namespace
} // namespace omnisim
