/** @file C-sim engine tests: reproduce the failure modes of Table 3. */

#include <gtest/gtest.h>

#include "design/context.hh"
#include "helpers.hh"

namespace omnisim
{
namespace
{

using test::Compiled;

TEST(CSim, DoneSignalDesignsCrashLikeVitis)
{
    // Table 3: fig4_ex2, fig4_ex4a_d, fig4_ex4b_d fail with SIGSEGV
    // because the producer's infinite loop runs off the input array.
    for (const char *name : {"fig4_ex2", "fig4_ex4a_d", "fig4_ex4b_d"}) {
        Compiled c(name);
        const SimResult r = simulateCSim(c.cd);
        EXPECT_EQ(r.status, SimStatus::Crash) << name;
        EXPECT_NE(r.message.find("SIGSEGV"), std::string::npos) << name;
    }
}

TEST(CSim, CyclicBlockingDesignReadsEmptyAndSumsZero)
{
    // Table 3 fig4_ex3: WARNING1 x2025, WARNING2, sum = 0.
    Compiled c("fig4_ex3");
    const SimResult r = simulateCSim(c.cd);
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_EQ(r.scalar("sum"), 0);
    bool read_empty = false;
    bool leftover = false;
    for (const auto &w : r.warnings) {
        if (w.find("read while empty") != std::string::npos &&
            w.find("x2025") != std::string::npos) {
            read_empty = true;
        }
        if (w.find("leftover data") != std::string::npos)
            leftover = true;
    }
    EXPECT_TRUE(read_empty);
    EXPECT_TRUE(leftover);
}

TEST(CSim, NbWritesAlwaysSucceedGivingWrongFullSum)
{
    // Table 3 fig4_ex4a/4b: C-sim silently reports the full sum because
    // infinite streams never drop anything.
    for (const char *name : {"fig4_ex4a", "fig4_ex4b"}) {
        Compiled c(name);
        const SimResult r = simulateCSim(c.cd);
        ASSERT_EQ(r.status, SimStatus::Ok) << name;
        EXPECT_EQ(r.scalar("sum_out"), 2051325) << name;
    }
    Compiled c4b("fig4_ex4b");
    EXPECT_EQ(simulateCSim(c4b.cd).scalar("dropped"), 0);
}

TEST(CSim, DispatcherSendsEverythingToFirstChoice)
{
    // Table 3 fig4_ex5: processed_by_P1 = 2025, P2 = 0.
    Compiled c("fig4_ex5");
    const SimResult r = simulateCSim(c.cd);
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_EQ(r.scalar("processed_by_P1"), 2025);
    EXPECT_EQ(r.scalar("processed_by_P2"), 0);
    EXPECT_EQ(r.scalar("sum_out_P1"), 2051325);
    EXPECT_EQ(r.scalar("sum_out_P2"), 0);
}

TEST(CSim, TimerCountsZeroCycles)
{
    // Table 3 fig2_timer: sequential execution queues every result
    // before the timer runs, so it observes zero wait cycles.
    Compiled c("fig2_timer");
    const SimResult r = simulateCSim(c.cd);
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_EQ(r.scalar("cycles"), 0);
}

TEST(CSim, DeadlockDesignDoesNotHangJustWarns)
{
    // Table 3 deadlock row: C-sim happily reads empty streams.
    Compiled c("deadlock");
    const SimResult r = simulateCSim(c.cd);
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_EQ(r.scalar("sum"), 0);
    EXPECT_FALSE(r.warnings.empty());
}

TEST(CSim, BranchOverfetchesWithoutTiming)
{
    // Table 3 branch: every speculative fetch succeeds at C level.
    Compiled c("branch");
    const SimResult r = simulateCSim(c.cd);
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_EQ(r.scalar("fetched"), 2025);
    EXPECT_GT(r.scalar("executed"), 0);
}

TEST(CSim, TypeADesignsProduceCorrectFunctionalResults)
{
    // C simulation is functionally fine for Type A (that is its job).
    Compiled c("fig4_ex3"); // sanity baseline above covered B; now A:
    Compiled ax("axis_stream");
    const SimResult r = simulateCSim(ax.cd);
    ASSERT_EQ(r.status, SimStatus::Ok);
    // sum(a) + sum(b) with a=1..n, b=3i+7.
    const std::size_t n = 4096;
    Value expect = 0;
    for (std::size_t i = 0; i < n; ++i)
        expect += static_cast<Value>(i + 1) + static_cast<Value>(3 * i + 7);
    EXPECT_EQ(r.scalar("sum_out"), expect);
}

TEST(CSim, OpLimitTurnsRunawayLoopIntoTimeout)
{
    Design d("runaway");
    const MemId out = d.addMemory("out", 1);
    const ModuleId a = d.addModule("spin", [=](Context &ctx) {
        for (;;)
            ctx.advance(1);
    });
    const ModuleId b = d.addModule("other", [=](Context &ctx) {
        ctx.store(out, 0, 1);
    });
    d.addFifo("f", 2, a, b, AccessKind::NonBlocking,
              AccessKind::NonBlocking);
    const CompiledDesign cd = compile(d);
    CSimOptions opts;
    opts.opLimit = 10'000;
    const SimResult r = simulateCSim(cd, opts);
    EXPECT_EQ(r.status, SimStatus::Timeout);
    EXPECT_NE(r.message.find("spin"), std::string::npos);
}

} // namespace
} // namespace omnisim
