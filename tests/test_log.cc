/** @file Structured logging + flight recorder tests: event schema and
 *  sink routing, level filtering with an allocation-free filtered path,
 *  per-thread ordering under concurrent writers, correlation scope
 *  propagation, flight-ring overwrite accounting, and crash-dump
 *  schema/determinism. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "helpers.hh"
#include "obs/context.hh"
#include "obs/flight.hh"
#include "obs/log.hh"
#include "serve/json.hh"
#include "support/logging.hh"
#include "support/sync.hh"

// Thread-local allocation accounting for the zero-allocation fast-path
// test: every global operator new on this thread bumps the counter.
namespace
{
thread_local std::uint64_t tlsAllocs = 0;
} // namespace

void *
operator new(std::size_t size)
{
    ++tlsAllocs;
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

// GCC sees free() paired with a replaced operator new and warns even
// though this replacement is malloc-backed by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace omnisim
{
namespace
{

namespace fs = std::filesystem;
using obs::LogLevel;
using serve::JsonValue;

/** Arm the logger around one test and restore the quiet default. */
struct LogFixture
{
    LogFixture()
    {
        setLogQuiet(true);
        obs::setLogEnabled(true);
        obs::setLogLevel(LogLevel::Warn);
        obs::flightReset();
    }

    ~LogFixture()
    {
        obs::resetLogSink();
        obs::setLogLevel(LogLevel::Warn);
        obs::setLogEnabled(false);
    }
};

/** Custom sink collecting serialized events (thread-safe). */
struct CollectingSink
{
    sync::Mutex mu;
    std::vector<std::string> lines;

    void install()
    {
        obs::setLogSink([this](const std::string &line) {
            sync::LockGuard lock(mu);
            lines.push_back(line);
        });
    }

    std::vector<std::string> snapshot()
    {
        sync::LockGuard lock(mu);
        return lines;
    }
};

std::uint64_t
numField(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    EXPECT_NE(f, nullptr) << key;
    return f ? f->asU64(key, ~0ull) : 0;
}

std::string
strField(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    EXPECT_NE(f, nullptr) << key;
    return f ? f->str() : "";
}

// ---------------------------------------------------------------------------
// Correlation context.
// ---------------------------------------------------------------------------

TEST(ObsContextTest, IdsAreUniqueAndNonZero)
{
    const obs::CorrelationId a = obs::newCorrelationId();
    const obs::CorrelationId b = obs::newCorrelationId();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
}

TEST(ObsContextTest, ScopeNestsAndRestores)
{
    const obs::CorrelationId outerPrev = obs::currentCorrelationId();
    const obs::CorrelationId outer = obs::newCorrelationId();
    {
        obs::CorrelationScope s1(outer);
        EXPECT_EQ(obs::currentCorrelationId(), outer);
        const obs::CorrelationId inner = obs::newCorrelationId();
        {
            obs::CorrelationScope s2(inner);
            EXPECT_EQ(obs::currentCorrelationId(), inner);
        }
        EXPECT_EQ(obs::currentCorrelationId(), outer);
    }
    EXPECT_EQ(obs::currentCorrelationId(), outerPrev);
}

TEST(ObsContextTest, FreshThreadsStartWithNoContext)
{
    obs::CorrelationScope scope(obs::newCorrelationId());
    obs::CorrelationId seen = ~0ull;
    std::thread t([&] { seen = obs::currentCorrelationId(); });
    t.join();
    EXPECT_EQ(seen, 0u);
}

// ---------------------------------------------------------------------------
// Structured events.
// ---------------------------------------------------------------------------

TEST(ObsLogTest, EventSchemaAndCorrelationStamp)
{
    LogFixture fx;
    CollectingSink sink;
    sink.install();

    const obs::CorrelationId cid = obs::newCorrelationId();
    {
        obs::CorrelationScope scope(cid);
        OMNISIM_LOG_WARN("test.event", "value=%d text=%s", 42, "hello");
    }

    const auto lines = sink.snapshot();
    ASSERT_EQ(lines.size(), 1u);
    const JsonValue v = JsonValue::parse(lines[0]);
    EXPECT_GT(numField(v, "ts_ns"), 0u);
    EXPECT_EQ(strField(v, "lvl"), "warn");
    EXPECT_GT(numField(v, "tid"), 0u);
    EXPECT_EQ(numField(v, "cid"), cid);
    EXPECT_EQ(strField(v, "event"), "test.event");
    EXPECT_EQ(strField(v, "msg"), "value=42 text=hello");
}

TEST(ObsLogTest, LevelFilteringGatesSink)
{
    LogFixture fx;
    CollectingSink sink;
    sink.install();

    obs::setLogLevel(LogLevel::Warn);
    OMNISIM_LOG_DEBUG("test.filtered", "below threshold");
    OMNISIM_LOG_INFO("test.filtered", "still below");
    OMNISIM_LOG_WARN("test.kept", "at threshold");
    OMNISIM_LOG_ERROR("test.kept", "above threshold");
    obs::setLogLevel(LogLevel::Trace);
    OMNISIM_LOG_TRACE("test.kept", "now everything flows");

    const auto lines = sink.snapshot();
    ASSERT_EQ(lines.size(), 3u);
    for (const std::string &l : lines)
        EXPECT_EQ(strField(JsonValue::parse(l), "event"), "test.kept");
}

TEST(ObsLogTest, DisabledLoggerEmitsNothing)
{
    LogFixture fx;
    CollectingSink sink;
    sink.install();
    obs::setLogEnabled(false);
    OMNISIM_LOG_ERROR("test.dark", "should not appear");
    obs::setLogEnabled(true);
    EXPECT_TRUE(sink.snapshot().empty());
    EXPECT_EQ(obs::flightEventCount(), 0u);
}

TEST(ObsLogTest, FilteredFastPathDoesNotAllocate)
{
    LogFixture fx;
    obs::setLogLevel(LogLevel::Warn);

    // Warm up: first event on a thread registers its flight ring and
    // sizes the thread-local buffers.
    OMNISIM_LOG_DEBUG("test.warmup", "warmup %d", 0);

    const std::uint64_t before = tlsAllocs;
    for (int i = 0; i < 1000; ++i)
        OMNISIM_LOG_DEBUG("test.fastpath", "filtered event %d", i);
    const std::uint64_t after = tlsAllocs;
    EXPECT_EQ(after, before)
        << "filtered events must not heap-allocate on the hot path";
}

TEST(ObsLogTest, ConcurrentWritersKeepPerThreadOrdering)
{
    LogFixture fx;
    obs::setLogLevel(LogLevel::Trace);
    CollectingSink sink;
    sink.install();

    constexpr int kThreads = 4;
    constexpr int kEvents = 200;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([t] {
            obs::CorrelationScope scope(obs::newCorrelationId());
            for (int i = 0; i < kEvents; ++i)
                OMNISIM_LOG_INFO("test.concurrent", "t=%d i=%d", t, i);
        });
    }
    for (auto &t : pool)
        t.join();

    const auto lines = sink.snapshot();
    ASSERT_EQ(lines.size(),
              static_cast<std::size_t>(kThreads) * kEvents);

    // Per emitting thread: timestamps monotone nondecreasing in sink
    // arrival order, exactly one correlation id, every event parseable.
    std::map<std::uint64_t, std::uint64_t> lastTs;
    std::map<std::uint64_t, std::set<std::uint64_t>> cidsPerTid;
    for (const std::string &l : lines) {
        const JsonValue v = JsonValue::parse(l);
        const std::uint64_t tid = numField(v, "tid");
        const std::uint64_t ts = numField(v, "ts_ns");
        if (const auto it = lastTs.find(tid); it != lastTs.end()) {
            EXPECT_GE(ts, it->second) << "tid " << tid;
        }
        lastTs[tid] = ts;
        cidsPerTid[tid].insert(numField(v, "cid"));
    }
    EXPECT_EQ(lastTs.size(), static_cast<std::size_t>(kThreads));
    for (const auto &[tid, cids] : cidsPerTid)
        EXPECT_EQ(cids.size(), 1u) << "tid " << tid;
}

TEST(ObsLogTest, CaptureCollectsWarnPlusEvenBelowSinkLevel)
{
    LogFixture fx;
    CollectingSink sink;
    sink.install();
    obs::setLogLevel(LogLevel::Error); // sink stricter than capture

    obs::LogCapture capture;
    OMNISIM_LOG_DEBUG("test.capture", "debug: not captured");
    OMNISIM_LOG_WARN("test.capture", "warn: captured");
    OMNISIM_LOG_ERROR("test.capture", "error: captured");

    ASSERT_EQ(capture.lines().size(), 2u);
    EXPECT_EQ(capture.truncated(), 0u);
    EXPECT_EQ(strField(JsonValue::parse(capture.lines()[0]), "lvl"),
              "warn");
    EXPECT_EQ(strField(JsonValue::parse(capture.lines()[1]), "lvl"),
              "error");
    // The sink saw only the error (threshold Error).
    EXPECT_EQ(sink.snapshot().size(), 1u);
}

TEST(ObsLogTest, CaptureCapsAndCountsTruncation)
{
    LogFixture fx;
    obs::LogCapture capture;
    const int total = static_cast<int>(obs::LogCapture::kMaxLines) + 7;
    for (int i = 0; i < total; ++i)
        OMNISIM_LOG_WARN("test.cap", "line %d", i);
    EXPECT_EQ(capture.lines().size(), obs::LogCapture::kMaxLines);
    EXPECT_EQ(capture.truncated(), 7u);
}

TEST(ObsLogTest, FileSinkWritesJsonLines)
{
    LogFixture fx;
    const std::string path =
        (omnisim::test::scratchRoot() / "log_events.jsonl").string();
    fs::remove(path);
    ASSERT_TRUE(obs::setLogFileSink(path));
    OMNISIM_LOG_WARN("test.file", "first");
    OMNISIM_LOG_ERROR("test.file", "second");
    obs::resetLogSink(); // closes the file

    std::ifstream in(path);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(strField(JsonValue::parse(lines[0]), "msg"), "first");
    EXPECT_EQ(strField(JsonValue::parse(lines[1]), "msg"), "second");
    fs::remove(path);
}

TEST(ObsLogTest, WarnRoutesThroughLoggerWhenEnabled)
{
    LogFixture fx;
    CollectingSink sink;
    sink.install();
    warn("routed warning");
    inform("routed info"); // below Warn threshold: ring only
    const auto lines = sink.snapshot();
    ASSERT_EQ(lines.size(), 1u);
    const JsonValue v = JsonValue::parse(lines[0]);
    EXPECT_EQ(strField(v, "event"), "warn");
    EXPECT_EQ(strField(v, "msg"), "routed warning");
}

// ---------------------------------------------------------------------------
// Flight recorder.
// ---------------------------------------------------------------------------

TEST(ObsFlightTest, RingOverwriteAccounting)
{
    LogFixture fx;
    const std::size_t extra = 10;
    const std::uint64_t droppedBefore = obs::flightDroppedCount();
    // All below the sink threshold: ring-only traffic.
    for (std::size_t i = 0; i < obs::kFlightRingEvents + extra; ++i)
        OMNISIM_LOG_DEBUG("test.ring", "event %zu", i);
    EXPECT_EQ(obs::flightEventCount(), obs::kFlightRingEvents);
    EXPECT_EQ(obs::flightDroppedCount() - droppedBefore, extra);

    obs::flightReset();
    EXPECT_EQ(obs::flightEventCount(), 0u);
    EXPECT_EQ(obs::flightDroppedCount(), 0u);
}

TEST(ObsFlightTest, TraceEventsSkipTheRing)
{
    LogFixture fx;
    // Sink wants everything, but the ring keeps only kFlightMinLevel
    // (debug) and above: trace is hot-loop traffic.
    obs::setLogLevel(LogLevel::Trace);
    CollectingSink sink;
    sink.install();
    OMNISIM_LOG_TRACE("test.hot", "ring-exempt");
    OMNISIM_LOG_DEBUG("test.kept", "ring-recorded");
    EXPECT_EQ(sink.snapshot().size(), 2u);
    EXPECT_EQ(obs::flightEventCount(), 1u);
    const JsonValue v =
        JsonValue::parse(obs::flightDumpJson("trace exemption", 0));
    const auto &events = v.find("events")->array();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(strField(events.front(), "event"), "test.kept");
}

TEST(ObsFlightTest, RingKeepsNewestEvents)
{
    LogFixture fx;
    for (std::size_t i = 0; i < obs::kFlightRingEvents + 5; ++i)
        OMNISIM_LOG_DEBUG("test.tail", "event %zu", i);
    const std::string dump = obs::flightDumpJson("tail check", 0);
    const JsonValue v = JsonValue::parse(dump);
    const auto &events = v.find("events")->array();
    ASSERT_EQ(events.size(), obs::kFlightRingEvents);
    // Oldest surviving record is the one right after the overwritten
    // prefix; the last is the newest.
    EXPECT_EQ(strField(events.front(), "msg"), "event 5");
    EXPECT_EQ(strField(events.back(), "msg"),
              strf("event %zu", obs::kFlightRingEvents + 4));
}

TEST(ObsFlightTest, DumpSchemaAndDeterminism)
{
    LogFixture fx;
    const obs::CorrelationId cid = obs::newCorrelationId();
    {
        obs::CorrelationScope scope(cid);
        OMNISIM_LOG_WARN("test.dump", "before the crash");
        OMNISIM_LOG_ERROR("test.dump", "the crash");
    }

    const std::string a = obs::flightDumpJson("unit test", cid);
    const std::string b = obs::flightDumpJson("unit test", cid);

    const JsonValue v = JsonValue::parse(a);
    EXPECT_EQ(strField(v, "schema"), obs::kFlightSchema);
    EXPECT_GT(numField(v, "pid"), 0u);
    EXPECT_EQ(strField(v, "reason"), "unit test");
    EXPECT_EQ(numField(v, "correlation_id"), cid);
    EXPECT_EQ(numField(v, "dropped"), 0u);
    EXPECT_EQ(numField(v, "skipped_threads"), 0u);
    ASSERT_NE(v.find("events"), nullptr);
    ASSERT_NE(v.find("spans"), nullptr);
    ASSERT_NE(v.find("metrics"), nullptr);
    const auto &events = v.find("events")->array();
    ASSERT_EQ(events.size(), 2u);
    for (const JsonValue &e : events) {
        EXPECT_EQ(numField(e, "cid"), cid);
        EXPECT_GT(numField(e, "ts_ns"), 0u);
        EXPECT_GT(numField(e, "tid"), 0u);
    }
    EXPECT_EQ(strField(events[0], "lvl"), "warn");
    EXPECT_EQ(strField(events[1], "lvl"), "error");

    // Dumping is read-only: the event tail must be byte-identical
    // across consecutive dumps (the metrics snapshot may move).
    const JsonValue vb = JsonValue::parse(b);
    EXPECT_EQ(v.find("events")->dump(), vb.find("events")->dump());
    EXPECT_EQ(v.find("spans")->dump(), vb.find("spans")->dump());
}

TEST(ObsFlightTest, WriteCrashDumpProducesSchemaStableFile)
{
    LogFixture fx;
    const std::string dir =
        omnisim::test::scratchDir("log_crash").string();
    obs::setCrashDumpDir(dir);

    OMNISIM_LOG_WARN("test.crashfile", "context before dump");
    const std::string path = obs::writeCrashDump("test dump", 123);
    obs::setCrashDumpDir(".");
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(fs::path(path).parent_path().string(), dir);
    EXPECT_EQ(fs::path(path).filename().string().rfind("omnisim-crash-", 0),
              0u);

    std::ifstream in(path);
    std::string doc((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    const JsonValue v = JsonValue::parse(doc);
    EXPECT_EQ(strField(v, "schema"), obs::kFlightSchema);
    EXPECT_EQ(numField(v, "correlation_id"), 123u);
    fs::remove_all(dir);
}

} // namespace
} // namespace omnisim
