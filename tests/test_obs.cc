/**
 * @file
 * Unit tests for the observability layer (src/obs/): sharded counters
 * and histograms under concurrent writers, log-bucket geometry,
 * quantile estimation, the registry's JSON/Prometheus exposition, and
 * trace spans exported as Chrome trace_event JSON.
 *
 * The metrics registry and the trace rings are process-global, so
 * these tests use uniquely-named instruments and delta-based
 * assertions rather than assuming a pristine registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/json.hh"

namespace omnisim
{
namespace
{

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Registry;

TEST(ObsCounter, ConcurrentWritersAreExact)
{
    Counter c;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 20000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                c.add(1);
        });
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, WeightedAddAndDisableSwitch)
{
    Counter c;
    c.add(5);
    c.add(); // default weight 1
    EXPECT_EQ(c.value(), 6u);

    obs::setTelemetryEnabled(false);
    c.add(100);
    obs::setTelemetryEnabled(true);
    EXPECT_EQ(c.value(), 6u) << "disabled adds must be dropped";
    c.add(1);
    EXPECT_EQ(c.value(), 7u);
}

TEST(ObsGauge, TracksLevelAndIgnoresDisableSwitch)
{
    Gauge g;
    g.add(3);
    g.sub(1);
    EXPECT_EQ(g.value(), 2);

    // Gauges track a live level: a pair that straddles a telemetry
    // toggle must still net to zero, so the switch is ignored.
    {
        obs::ScopedGauge in(g);
        EXPECT_EQ(g.value(), 3);
        obs::setTelemetryEnabled(false);
    }
    obs::setTelemetryEnabled(true);
    EXPECT_EQ(g.value(), 2);
    g.set(-4);
    EXPECT_EQ(g.value(), -4);
}

TEST(ObsHistogram, BucketGeometryInvariants)
{
    // Every value must land in a bucket whose [lo, hi] range contains
    // it, buckets must tile the axis without gaps, and a log bucket is
    // at most a quarter of its own base — so reporting its midpoint is
    // never more than 12.5% off the true value.
    std::uint64_t expectedLo = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        const std::uint64_t lo = Histogram::bucketLo(i);
        const std::uint64_t hi = Histogram::bucketHi(i);
        EXPECT_EQ(lo, expectedLo) << "gap or overlap before bucket " << i;
        EXPECT_GE(hi, lo);
        EXPECT_EQ(Histogram::bucketIndex(lo), i);
        EXPECT_EQ(Histogram::bucketIndex(hi), i);
        if (lo >= 8) {
            const double width = static_cast<double>(hi - lo + 1);
            EXPECT_LE(width / static_cast<double>(lo), 0.25 + 1e-9)
                << "bucket " << i << " too wide for the 12.5% "
                << "midpoint error bound";
        }
        if (hi == ~std::uint64_t{0})
            break; // top bucket reached
        expectedLo = hi + 1;
    }
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{7}, std::uint64_t{8},
          std::uint64_t{1000}, std::uint64_t{123456789},
          ~std::uint64_t{0}}) {
        const std::size_t idx = Histogram::bucketIndex(v);
        ASSERT_LT(idx, Histogram::kBuckets);
        EXPECT_GE(v, Histogram::bucketLo(idx));
        EXPECT_LE(v, Histogram::bucketHi(idx));
    }
}

TEST(ObsHistogram, ConcurrentRecordersAreExactInCountAndSum)
{
    Histogram h;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 10000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&h, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                h.record(static_cast<std::uint64_t>(t) * kPerThread + i);
        });
    for (auto &t : ts)
        t.join();

    const Histogram::Snapshot s = h.snapshot();
    const std::uint64_t n = kThreads * kPerThread;
    EXPECT_EQ(s.count, n);
    EXPECT_EQ(s.sum, n * (n - 1) / 2); // sum of 0..n-1, each once
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, n - 1);
}

TEST(ObsHistogram, QuantilesOrderedAndWithinBucketError)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 10000; ++v)
        h.record(v);
    const Histogram::Snapshot s = h.snapshot();

    const double p50 = s.quantile(0.50);
    const double p90 = s.quantile(0.90);
    const double p99 = s.quantile(0.99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    // Uniform 1..10000: true quantiles are 5000/9000/9900; the log
    // buckets bound relative error at 12.5%.
    EXPECT_NEAR(p50, 5000.0, 5000.0 * 0.125);
    EXPECT_NEAR(p90, 9000.0, 9000.0 * 0.125);
    EXPECT_NEAR(p99, 9900.0, 9900.0 * 0.125);
    // Extremes clamp to the observed range.
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 10000.0);

    h.reset();
    const Histogram::Snapshot empty = h.snapshot();
    EXPECT_EQ(empty.count, 0u);
    EXPECT_EQ(empty.quantile(0.5), 0.0);
    EXPECT_EQ(empty.mean(), 0.0);
}

TEST(ObsHistogram, SingleValueSnapshot)
{
    Histogram h;
    h.record(42);
    const Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.min, 42u);
    EXPECT_EQ(s.max, 42u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.99), 42.0);
}

TEST(ObsHistogram, DisableSwitchDropsRecords)
{
    Histogram h;
    obs::setTelemetryEnabled(false);
    h.record(10);
    obs::setTelemetryEnabled(true);
    EXPECT_EQ(h.snapshot().count, 0u);
    h.record(10);
    EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(ObsRegistry, FindOrCreateReturnsStableHandles)
{
    Registry &r = Registry::global();
    Counter &a = r.counter("test.obs.registry.stable");
    Counter &b = r.counter("test.obs.registry.stable");
    EXPECT_EQ(&a, &b) << "same name must resolve to the same instrument";
    Gauge &g1 = r.gauge("test.obs.registry.gauge");
    Gauge &g2 = r.gauge("test.obs.registry.gauge");
    EXPECT_EQ(&g1, &g2);
    Histogram &h1 = r.histogram("test.obs.registry.hist_us");
    Histogram &h2 = r.histogram("test.obs.registry.hist_us");
    EXPECT_EQ(&h1, &h2);
}

TEST(ObsRegistry, ConcurrentFindOrCreateIsSafe)
{
    Registry &r = Registry::global();
    constexpr int kThreads = 8;
    std::vector<Counter *> seen(kThreads, nullptr);
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t)
        ts.emplace_back([&r, &seen, t] {
            Counter &c = r.counter("test.obs.registry.concurrent");
            c.add(1);
            seen[static_cast<std::size_t>(t)] = &c;
        });
    for (auto &t : ts)
        t.join();
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(t)]);
    EXPECT_GE(seen[0]->value(), static_cast<std::uint64_t>(kThreads));
}

TEST(ObsRegistry, JsonSnapshotParsesAndCarriesQuantiles)
{
    Registry &r = Registry::global();
    r.counter("test.obs.json.counter").add(3);
    r.gauge("test.obs.json.gauge").set(-2);
    Histogram &h = r.histogram("test.obs.json.hist_us");
    h.reset();
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.record(v);

    const serve::JsonValue doc = serve::JsonValue::parse(r.toJson());
    const serve::JsonValue *counters = doc.find("counters");
    ASSERT_NE(counters, nullptr);
    const serve::JsonValue *c = counters->find("test.obs.json.counter");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->number(), 3.0);

    const serve::JsonValue *gauges = doc.find("gauges");
    ASSERT_NE(gauges, nullptr);
    const serve::JsonValue *g = gauges->find("test.obs.json.gauge");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->number(), -2.0);

    const serve::JsonValue *hists = doc.find("histograms");
    ASSERT_NE(hists, nullptr);
    const serve::JsonValue *hv = hists->find("test.obs.json.hist_us");
    ASSERT_NE(hv, nullptr);
    ASSERT_NE(hv->find("count"), nullptr);
    EXPECT_EQ(hv->find("count")->number(), 100.0);
    ASSERT_NE(hv->find("p50"), nullptr);
    ASSERT_NE(hv->find("p99"), nullptr);
    EXPECT_LE(hv->find("p50")->number(), hv->find("p99")->number());
    EXPECT_GT(hv->find("p50")->number(), 0.0);
}

TEST(ObsRegistry, PrometheusExpositionShape)
{
    Registry &r = Registry::global();
    r.counter("test.obs.prom.counter").add(1);
    Histogram &h = r.histogram("test.obs.prom.hist_us");
    h.reset();
    h.record(7);

    const std::string text = r.toPrometheus();
    // Dots mangle to underscores under the omnisim_ prefix.
    EXPECT_NE(text.find("omnisim_test_obs_prom_counter"), std::string::npos);
    EXPECT_NE(text.find("# TYPE omnisim_test_obs_prom_counter counter"),
              std::string::npos);
    EXPECT_NE(text.find("omnisim_test_obs_prom_hist_us_count"),
              std::string::npos);
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
    EXPECT_EQ(text.find("test.obs.prom"), std::string::npos)
        << "raw dotted names must not leak into the exposition";
}

TEST(ObsTrace, SpansFromManyThreadsExportValidChromeJson)
{
    obs::traceStart();
    {
        OMNISIM_SPAN("test.trace.main");
        constexpr int kThreads = 4;
        std::vector<std::thread> ts;
        for (int t = 0; t < kThreads; ++t)
            ts.emplace_back([] {
                for (int i = 0; i < 50; ++i) {
                    OMNISIM_SPAN("test.trace.worker");
                }
            });
        for (auto &t : ts)
            t.join();
    }
    obs::traceStop();

    const std::string json = obs::traceJson();
    const serve::JsonValue doc = serve::JsonValue::parse(json);
    const serve::JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    std::set<double> tids;
    std::size_t workers = 0, mains = 0;
    for (const serve::JsonValue &e : events->array()) {
        const serve::JsonValue *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->str() == "M")
            continue; // metadata record
        EXPECT_EQ(ph->str(), "X");
        const serve::JsonValue *name = e.find("name");
        const serve::JsonValue *ts = e.find("ts");
        const serve::JsonValue *dur = e.find("dur");
        ASSERT_NE(name, nullptr);
        ASSERT_NE(ts, nullptr);
        ASSERT_NE(dur, nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        EXPECT_GE(ts->number(), 0.0);
        EXPECT_GE(dur->number(), 0.0);
        tids.insert(e.find("tid")->number());
        if (name->str() == "test.trace.worker")
            ++workers;
        else if (name->str() == "test.trace.main")
            ++mains;
    }
    EXPECT_EQ(mains, 1u);
    EXPECT_EQ(workers, 4u * 50u);
    EXPECT_GE(tids.size(), 2u) << "worker spans must carry their own tids";
}

TEST(ObsTrace, SessionsAreIsolatedAndDisabledSpansAreFree)
{
    obs::traceStart();
    {
        OMNISIM_SPAN("test.trace.first_session");
    }
    obs::traceStop();
    ASSERT_GE(obs::traceEventCount(), 1u);

    // Spans emitted while tracing is off must not record.
    {
        OMNISIM_SPAN("test.trace.while_disabled");
    }
    const std::string off = obs::traceJson();
    EXPECT_EQ(off.find("test.trace.while_disabled"), std::string::npos);

    // A new session discards the previous one.
    obs::traceStart();
    {
        OMNISIM_SPAN("test.trace.second_session");
    }
    obs::traceStop();
    const std::string second = obs::traceJson();
    EXPECT_EQ(second.find("test.trace.first_session"), std::string::npos);
    EXPECT_NE(second.find("test.trace.second_session"), std::string::npos);
}

TEST(ObsTrace, RingOverflowDropsOldestAndCounts)
{
    obs::traceStart();
    constexpr int kSpans = 20000; // > ring capacity (16384)
    for (int i = 0; i < kSpans; ++i) {
        OMNISIM_SPAN("test.trace.flood");
    }
    obs::traceStop();
    EXPECT_GT(obs::traceDroppedCount(), 0u);
    const std::string json = obs::traceJson();
    const serve::JsonValue doc = serve::JsonValue::parse(json);
    const serve::JsonValue *dropped = doc.find("omnisimDropped");
    ASSERT_NE(dropped, nullptr);
    EXPECT_GT(dropped->number(), 0.0);
    // The newest spans are the ones kept.
    EXPECT_LE(obs::traceEventCount(), 16384u + 64u);
    obs::traceStart(); // leave a clean slate for other tests
    obs::traceStop();
}

TEST(ObsScopedLatency, RecordsOnEveryReturnPath)
{
    Histogram h;
    const auto body = [&h](bool alternate) {
        obs::ScopedLatencyUs timer(h);
        if (alternate)
            return 1;
        return 2;
    };
    body(true);
    body(false);
    EXPECT_EQ(h.snapshot().count, 2u);
}

} // namespace
} // namespace omnisim
