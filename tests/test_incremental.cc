/** @file Incremental re-simulation tests (§7.2 / Table 6): constraint
 *  recording, graph reuse under satisfying depth changes, and fallback
 *  to full re-simulation when a query outcome would flip. */

#include <gtest/gtest.h>

#include "design/context.hh"
#include "helpers.hh"

namespace omnisim
{
namespace
{

using test::checkedOmniSim;
using test::Compiled;

/** Full re-simulation under the given depths, as ground truth. */
SimResult
fullRun(const char *name, const std::vector<std::uint32_t> &depths)
{
    Design d = designs::findDesign(name).build();
    for (std::size_t f = 0; f < depths.size(); ++f)
        d.setFifoDepth(static_cast<FifoId>(f), depths[f]);
    const CompiledDesign cd = compile(d);
    return simulateOmniSim(cd, checkedOmniSim());
}

TEST(Incremental, Table6DeepeningOverflowFifoReuses)
{
    // Table 6 row 2: depths (2,2) -> (2,100). The overflow FIFO gets
    // deeper; no recorded NB outcome flips; the graph is reused.
    Compiled c("fig4_ex5");
    OmniSim engine(c.cd, checkedOmniSim());
    const SimResult initial = engine.run();
    ASSERT_EQ(initial.status, SimStatus::Ok);

    const IncrementalOutcome inc = engine.resimulate({2, 100});
    ASSERT_TRUE(inc.reused) << inc.reason;
    EXPECT_EQ(inc.result.status, SimStatus::Ok);

    const SimResult full = fullRun("fig4_ex5", {2, 100});
    ASSERT_EQ(full.status, SimStatus::Ok);
    EXPECT_EQ(inc.result.totalCycles, full.totalCycles);
    EXPECT_EQ(inc.result.memories, full.memories);
}

TEST(Incremental, Table6DeepeningFirstChoiceFifoViolates)
{
    // Table 6 row 3: depths (2,2) -> (100,2). First-choice writes that
    // failed would now succeed: control flow diverges, reuse refused.
    Compiled c("fig4_ex5");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);

    const IncrementalOutcome inc = engine.resimulate({100, 2});
    EXPECT_FALSE(inc.reused);
    EXPECT_NE(inc.reason.find("constraint violated"), std::string::npos);

    // The full re-run (the Table 6 fallback) is itself fine, and the
    // deeper first-choice FIFO shifts traffic toward P1 — the behaviour
    // change that made graph reuse illegal.
    const SimResult orig = fullRun("fig4_ex5", {2, 2});
    const SimResult full = fullRun("fig4_ex5", {100, 2});
    ASSERT_EQ(full.status, SimStatus::Ok);
    EXPECT_GT(full.scalar("processed_by_P1"), orig.scalar("processed_by_P1"));
    EXPECT_LT(full.scalar("processed_by_P2"), orig.scalar("processed_by_P2"));
}

TEST(Incremental, IdenticalDepthsAlwaysReuseWithSameTotal)
{
    for (const char *name :
         {"fig4_ex4a", "fig4_ex4b", "fig2_timer", "branch"}) {
        Compiled c(name);
        OmniSim engine(c.cd, checkedOmniSim());
        const SimResult initial = engine.run();
        ASSERT_EQ(initial.status, SimStatus::Ok) << name;
        std::vector<std::uint32_t> depths;
        for (const auto &f : c.design.fifos())
            depths.push_back(f.depth);
        const IncrementalOutcome inc = engine.resimulate(depths);
        ASSERT_TRUE(inc.reused) << name << ": " << inc.reason;
        EXPECT_EQ(inc.result.totalCycles, initial.totalCycles) << name;
    }
}

TEST(Incremental, TypeADepthSweepMatchesFullRuns)
{
    // For Type A designs no queries exist, so every depth change that
    // keeps the graph acyclic reuses — and must match a full run.
    Compiled c("accum_dataflow");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    for (std::uint32_t depth : {1u, 2u, 6u, 32u}) {
        const IncrementalOutcome inc = engine.resimulate({depth, depth});
        ASSERT_TRUE(inc.reused) << depth;
        const SimResult full = fullRun("accum_dataflow", {depth, depth});
        EXPECT_EQ(inc.result.totalCycles, full.totalCycles) << depth;
    }
}

TEST(Incremental, RequiresPriorSuccessfulRun)
{
    Compiled c("fig4_ex5");
    OmniSim engine(c.cd, checkedOmniSim());
    const IncrementalOutcome inc = engine.resimulate({2, 2});
    EXPECT_FALSE(inc.reused);
    EXPECT_NE(inc.reason.find("no prior"), std::string::npos);
}

TEST(Incremental, ConstraintsAreRecorded)
{
    Compiled c("fig4_ex5");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);
    const auto &cons = engine.constraints();
    EXPECT_FALSE(cons.empty());
    bool saw_write = false;
    for (const auto &q : cons) {
        EXPECT_TRUE(isQueryKind(q.kind));
        saw_write |= q.kind == EventKind::FifoNbWrite;
    }
    EXPECT_TRUE(saw_write);
}

TEST(Incremental, SimultaneousMultiFifoChangesMatchFullRuns)
{
    // Changing every FIFO depth at once (the shape a joint DSE search
    // produces) must be exactly as accurate as single-FIFO changes:
    // wherever reuse is granted the re-finalized cycles equal a fresh
    // full run, and the functional outputs are untouched.
    Compiled c("reconvergent");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);

    std::size_t reused = 0;
    for (const std::vector<std::uint32_t> &cfg :
         {std::vector<std::uint32_t>{1, 1, 1, 1},
          std::vector<std::uint32_t>{16, 1, 8, 2},
          std::vector<std::uint32_t>{2, 16, 1, 16},
          std::vector<std::uint32_t>{5, 3, 7, 2}}) {
        const IncrementalOutcome inc = engine.resimulate(cfg);
        const SimResult full = fullRun("reconvergent", cfg);
        ASSERT_EQ(full.status, SimStatus::Ok);
        if (!inc.reused)
            continue;
        ++reused;
        EXPECT_EQ(inc.result.totalCycles, full.totalCycles);
        EXPECT_EQ(inc.result.memories, full.memories);
    }
    // A blocking-only design records no queries, so every feasible
    // depth vector must reuse.
    EXPECT_EQ(reused, 4u);
}

TEST(Incremental, MultiFifoDivergenceFallbackMatchesFreshRun)
{
    // Type C: a joint depth change that flips a recorded NB outcome is
    // refused, and the Table 6 fallback — a fresh full run — is the
    // ground truth the DSE EvalCache substitutes. Two independent full
    // runs of the same configuration must agree bit-for-bit, so the
    // fallback is deterministic.
    Compiled c("fig4_ex5");
    OmniSim engine(c.cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);

    const std::vector<std::uint32_t> cfg{100, 50};
    const IncrementalOutcome inc = engine.resimulate(cfg);
    EXPECT_FALSE(inc.reused);
    EXPECT_NE(inc.reason.find("constraint violated"), std::string::npos);

    const SimResult a = fullRun("fig4_ex5", cfg);
    const SimResult b = fullRun("fig4_ex5", cfg);
    ASSERT_EQ(a.status, SimStatus::Ok);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.memories, b.memories);
}

TEST(Incremental, NbWriteStallNeverMasksAnOutcomeFlip)
{
    // Regression: WAR edges used to be synthesized for *committed
    // non-blocking* writes too. Shrinking fig4_ex4a's FIFO to depth 1
    // then let the recomputed schedule *delay* a committed NB write
    // until its success condition held again — but real hardware never
    // delays an NB write; the attempt simply fails, control flow
    // diverges, and the run drops a different element. Reuse must be
    // refused so the EvalCache falls back to a fresh (correct) run.
    Compiled c("fig4_ex4a");
    OmniSim engine(c.cd, checkedOmniSim());
    const SimResult initial = engine.run();
    ASSERT_EQ(initial.status, SimStatus::Ok);

    const IncrementalOutcome inc = engine.resimulate({1});
    EXPECT_FALSE(inc.reused);
    EXPECT_NE(inc.reason.find("constraint violated"), std::string::npos);

    // The fallback full run is the ground truth — and it genuinely
    // differs functionally from the recorded depth-2 trace, which is
    // exactly why reuse had to be refused.
    const SimResult full = fullRun("fig4_ex4a", {1});
    ASSERT_EQ(full.status, SimStatus::Ok);
    EXPECT_NE(full.scalar("sum_out"), initial.scalar("sum_out"));
}

TEST(Incremental, ShrinkingDepthTowardDeadlockIsRefused)
{
    // A design whose recorded schedule becomes infeasible (timing cycle)
    // when a FIFO shrinks must refuse reuse rather than mis-predict.
    Design d("reconverge");
    const MemId out = d.addMemory("out", 1);
    const std::size_t n = 6;
    const FifoId f1 = d.declareFifo("f1", 8);
    const FifoId f2 = d.declareFifo("f2", 8);
    const ModuleId p = d.addModule("p", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(f2, static_cast<Value>(i));
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(f1, static_cast<Value>(i));
    });
    const ModuleId c = d.addModule("c", [=](Context &ctx) {
        Value sum = 0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += ctx.read(f1);
            sum += ctx.read(f2);
        }
        ctx.store(out, 0, sum);
    });
    d.connectFifo(f1, p, c);
    d.connectFifo(f2, p, c);
    const CompiledDesign cd = compile(d);
    OmniSim engine(cd, checkedOmniSim());
    ASSERT_EQ(engine.run().status, SimStatus::Ok);

    EXPECT_TRUE(engine.resimulate({8, 8}).reused);
    const IncrementalOutcome bad = engine.resimulate({8, 1});
    EXPECT_FALSE(bad.reused);
    EXPECT_NE(bad.reason.find("infeasible"), std::string::npos);
}

} // namespace
} // namespace omnisim
