/** @file Co-simulation engine tests: hand-computed cycle semantics
 *  (the paper's Fig. 6 walk-through), deadlock detection, determinism. */

#include <gtest/gtest.h>

#include "design/context.hh"
#include "helpers.hh"

namespace omnisim
{
namespace
{

using test::Compiled;
using test::fastCosim;

/** The paper's running example: producer writes 2, consumer reads 2,
 *  FIFO depth 1. P1@1, C1@2, P2 (write) stalls to 3, C2@4, total 5. */
TEST(Cosim, PaperFigure6BlockingTiming)
{
    Design d("fig6");
    const MemId out = d.addMemory("out", 2);
    const FifoId f = d.declareFifo("f", 1);
    const ModuleId p = d.addModule("producer", [=](Context &ctx) {
        ctx.write(f, 11);
        ctx.write(f, 22);
    });
    const ModuleId c = d.addModule("consumer", [=](Context &ctx) {
        ctx.store(out, 0, ctx.read(f));
        ctx.store(out, 1, ctx.read(f));
    });
    d.connectFifo(f, p, c);
    const CompiledDesign cd = compile(d);
    const SimResult r = simulateCosim(cd, fastCosim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_EQ(r.totalCycles, 5u);
    EXPECT_EQ(r.memories.at("out")[0], 11);
    EXPECT_EQ(r.memories.at("out")[1], 22);
}

TEST(Cosim, DeeperFifoRemovesTheStall)
{
    Design d("fig6_deep");
    const MemId out = d.addMemory("out", 2);
    const FifoId f = d.declareFifo("f", 2);
    const ModuleId p = d.addModule("producer", [=](Context &ctx) {
        ctx.write(f, 1);
        ctx.write(f, 2);
    });
    const ModuleId c = d.addModule("consumer", [=](Context &ctx) {
        ctx.store(out, 0, ctx.read(f));
        ctx.store(out, 1, ctx.read(f));
    });
    d.connectFifo(f, p, c);
    const CompiledDesign cd = compile(d);
    const SimResult r = simulateCosim(cd, fastCosim());
    // Writes at 1,2; reads at 2,3; total 4.
    EXPECT_EQ(r.totalCycles, 4u);
}

TEST(Cosim, NbWriteFailsAtSameCycleAsRead)
{
    // The Fig. 6 bottom walk-through: an NB write at the same cycle as
    // the freeing read must fail ("strictly after" rule).
    Design d("fig6_nb");
    const MemId out = d.addMemory("out", 3);
    const FifoId f = d.declareFifo("f", 1, AccessKind::Mixed,
                                   AccessKind::Blocking);
    const ModuleId p = d.addModule(
        "producer",
        [=](Context &ctx) {
            ctx.write(f, 1);                           // P1 @ 1
            ctx.store(out, 0, ctx.writeNb(f, 2) ? 1 : 0); // P2 @ 2: fail
            ctx.store(out, 1, ctx.writeNb(f, 3) ? 1 : 0); // P3 @ 3: ok
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});
    const ModuleId c = d.addModule("consumer", [=](Context &ctx) {
        (void)ctx.read(f); // C1 @ 2
        ctx.store(out, 2, ctx.read(f)); // C2 @ 4
    });
    d.connectFifo(f, p, c);
    const CompiledDesign cd = compile(d);
    const SimResult r = simulateCosim(cd, fastCosim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    EXPECT_EQ(r.memories.at("out")[0], 0); // P2 discarded
    EXPECT_EQ(r.memories.at("out")[1], 1); // P3 committed
    EXPECT_EQ(r.memories.at("out")[2], 3); // C2 sees P3's value
    EXPECT_EQ(r.totalCycles, 5u);          // C2 @ 4, ends at 5
}

TEST(Cosim, EmptyPollingCountsExactCycles)
{
    // Miniature fig2_timer: compute takes 3 cycles to produce; the
    // timer polls empty() once per cycle.
    Design d("mini_timer");
    const MemId out = d.addMemory("cycles", 1);
    const FifoId f = d.declareFifo("f", 2, AccessKind::Blocking,
                                   AccessKind::NonBlocking);
    const ModuleId comp = d.addModule("compute", [=](Context &ctx) {
        ctx.advance(2);
        ctx.write(f, 7); // write occupies cycle 3
    });
    const ModuleId timer = d.addModule(
        "timer",
        [=](Context &ctx) {
            Value n = 0;
            while (ctx.empty(f)) {
                ++n;
                ctx.advance(1);
            }
            (void)ctx.read(f);
            ctx.store(out, 0, n);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});
    d.connectFifo(f, comp, timer);
    const CompiledDesign cd = compile(d);
    const SimResult r = simulateCosim(cd, fastCosim());
    ASSERT_EQ(r.status, SimStatus::Ok);
    // empty at cycles 1,2,3 (write@3 visible at 4): exactly 3 polls,
    // matching the paper's Fig. 2 ground truth of 3.
    EXPECT_EQ(r.memories.at("cycles")[0], 3);
}

TEST(Cosim, DetectsTrueDeadlockPromptly)
{
    Compiled c("deadlock");
    const SimResult r = simulateCosim(c.cd, fastCosim());
    EXPECT_EQ(r.status, SimStatus::Deadlock);
    EXPECT_NE(r.message.find("DEADLOCK DETECTED"), std::string::npos);
}

TEST(Cosim, DepthInducedDeadlockDetected)
{
    // Reconvergent dataflow with mismatched depths deadlocks: the
    // producer fills f2 while the consumer insists on f1 first.
    Design d("depthlock");
    const MemId out = d.addMemory("out", 1);
    const FifoId f1 = d.declareFifo("f1", 1);
    const FifoId f2 = d.declareFifo("f2", 1);
    const std::size_t n = 8;
    const ModuleId p = d.addModule("p", [=](Context &ctx) {
        // Writes all of f2 first, then f1.
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(f2, static_cast<Value>(i));
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(f1, static_cast<Value>(i));
    });
    const ModuleId c = d.addModule("c", [=](Context &ctx) {
        Value sum = 0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += ctx.read(f1); // needs f1 first
            sum += ctx.read(f2);
        }
        ctx.store(out, 0, sum);
    });
    d.connectFifo(f1, p, c);
    d.connectFifo(f2, p, c);
    const CompiledDesign cd = compile(d);
    const SimResult r = simulateCosim(cd, fastCosim());
    EXPECT_EQ(r.status, SimStatus::Deadlock);
}

TEST(Cosim, CombinationalLoopGuardFires)
{
    Design d("combloop");
    const MemId out = d.addMemory("out", 1);
    const FifoId f = d.declareFifo("f", 2, AccessKind::Blocking,
                                   AccessKind::NonBlocking);
    const ModuleId w = d.addModule("writer", [=](Context &ctx) {
        ctx.advance(1'000'000); // never writes in time
        ctx.write(f, 1);
    });
    const ModuleId r = d.addModule(
        "spinner",
        [=](Context &ctx) {
            // Status-check loop with no advance: a combinational loop.
            while (ctx.empty(f)) {
            }
            ctx.store(out, 0, ctx.read(f));
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});
    d.connectFifo(f, w, r);
    const CompiledDesign cd = compile(d);
    CosimOptions opts = fastCosim();
    opts.combLimit = 1000;
    const SimResult res = simulateCosim(cd, opts);
    EXPECT_EQ(res.status, SimStatus::Crash);
    EXPECT_NE(res.message.find("combinational"), std::string::npos);
}

TEST(Cosim, CrashPropagatesAcrossThreads)
{
    Design d("crash");
    const MemId mem = d.addMemory("m", 4);
    const FifoId f = d.declareFifo("f", 2);
    const ModuleId bad = d.addModule("bad", [=](Context &ctx) {
        ctx.write(f, ctx.load(mem, 99)); // out of bounds
    });
    const ModuleId good = d.addModule("good", [=](Context &ctx) {
        (void)ctx.read(f);
    });
    d.connectFifo(f, bad, good);
    const CompiledDesign cd = compile(d);
    const SimResult r = simulateCosim(cd, fastCosim());
    EXPECT_EQ(r.status, SimStatus::Crash);
    EXPECT_NE(r.message.find("SIGSEGV"), std::string::npos);
}

TEST(Cosim, WatchdogTurnsLivelockIntoTimeout)
{
    // A poller whose producer never produces: livelock, not deadlock
    // (§3.2.4: co-sim does not detect livelocks).
    Design d("livelock");
    const MemId out = d.addMemory("out", 1);
    const FifoId f = d.declareFifo("f", 2, AccessKind::Blocking,
                                   AccessKind::NonBlocking);
    const ModuleId w = d.addModule("never", [=](Context &ctx) {
        ctx.advance(2'000'000);
        ctx.write(f, 1);
    });
    const ModuleId r = d.addModule(
        "poller",
        [=](Context &ctx) {
            while (ctx.empty(f))
                ctx.advance(1);
            ctx.store(out, 0, ctx.read(f));
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});
    d.connectFifo(f, w, r);
    const CompiledDesign cd = compile(d);
    CosimOptions opts = fastCosim();
    opts.maxCycles = 50'000;
    const SimResult res = simulateCosim(cd, opts);
    EXPECT_EQ(res.status, SimStatus::Timeout);
}

TEST(Cosim, DeterministicAcrossRuns)
{
    Compiled c("fig4_ex4b");
    const SimResult first = simulateCosim(c.cd, fastCosim());
    for (int i = 0; i < 5; ++i) {
        const SimResult r = simulateCosim(c.cd, fastCosim());
        EXPECT_EQ(r.status, first.status);
        EXPECT_EQ(r.totalCycles, first.totalCycles);
        EXPECT_EQ(r.memories, first.memories);
    }
}

TEST(Cosim, RtlCostModelChangesOnlySpeed)
{
    Compiled c("fig4_ex3");
    CosimOptions slow = fastCosim();
    slow.modelRtlCost = true;
    slow.gatesPerModule = 100; // keep the test quick
    const SimResult a = simulateCosim(c.cd, fastCosim());
    const SimResult b = simulateCosim(c.cd, slow);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.memories, b.memories);
}

} // namespace
} // namespace omnisim
