/** @file Simulation service tests: JSON protocol parsing, request
 *  dispatch with per-request ids, error isolation, concurrent
 *  submission through the TaskPool, warm-cache serving across service
 *  instances via the RunStore, and graceful shutdown/drain. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <limits>
#include <map>
#include <sstream>
#include <thread>

#include "batch/batch.hh"
#include "design/frontend.hh"
#include "designs/common.hh"
#include "helpers.hh"
#include "obs/log.hh"
#include "serve/json.hh"
#include "serve/service.hh"
#include "support/sync.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define OMNISIM_TEST_UNIX_SOCKETS 1
#endif

namespace omnisim
{
namespace
{

namespace fs = std::filesystem;
using serve::JsonValue;
using serve::SimService;

struct TempDir
{
    std::string path;

    explicit TempDir(const std::string &tag)
        : path(test::scratchDir("serve_" + tag).string())
    {}

    ~TempDir() { fs::remove_all(path); }
};

/** Handle a line and parse the response. */
JsonValue
ask(SimService &svc, const std::string &line)
{
    return JsonValue::parse(svc.handle(line));
}

std::uint64_t
numField(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    EXPECT_NE(f, nullptr) << key;
    return f ? f->asU64(key, ~0ull) : 0;
}

std::string
strField(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    EXPECT_NE(f, nullptr) << key;
    return f ? f->str() : "";
}

bool
okField(const JsonValue &v)
{
    const JsonValue *f = v.find("ok");
    return f && f->isBool() && f->boolean();
}

// ---------------------------------------------------------------------------
// JSON layer.
// ---------------------------------------------------------------------------

TEST(ServeJson, ParsesScalarsObjectsAndArrays)
{
    const JsonValue v = JsonValue::parse(
        R"({"a":1,"b":-2.5,"c":"x\ny","d":[true,false,null],"e":{"f":3}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("a")->number(), 1.0);
    EXPECT_EQ(v.find("b")->number(), -2.5);
    EXPECT_EQ(v.find("c")->str(), "x\ny");
    ASSERT_TRUE(v.find("d")->isArray());
    EXPECT_EQ(v.find("d")->array().size(), 3u);
    EXPECT_TRUE(v.find("d")->array()[2].isNull());
    EXPECT_EQ(v.find("e")->find("f")->number(), 3.0);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ServeJson, UnicodeEscapesDecodeToUtf8)
{
    EXPECT_EQ(JsonValue::parse(R"("\u0041\u00e9")").str(), "A\xc3\xa9");
    EXPECT_EQ(JsonValue::parse(R"("\ud83d\ude00")").str(),
              "\xf0\x9f\x98\x80"); // surrogate pair
    EXPECT_THROW(JsonValue::parse(R"("\ud83d")"), FatalError);
}

TEST(ServeJson, MalformedInputThrowsNeverCrashes)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\":}", "tru", "{\"a\" 1}", "\"unterminated",
          "{\"a\":1}trailing", "nan", "01", "-", "{\"a\":1,}",
          "\"bad \\q escape\"", "[\"\\u12zz\"]"}) {
        EXPECT_THROW(JsonValue::parse(bad), FatalError) << bad;
    }
    // Depth bomb: rejected by the nesting cap, not a stack overflow.
    EXPECT_THROW(JsonValue::parse(std::string(4096, '[')), FatalError);
}

TEST(ServeJson, DumpRoundTripsAndEscapes)
{
    const JsonValue v =
        JsonValue::parse(R"({"s":"a\"b\\c\n","n":[1,2.5,-3]})");
    const JsonValue again = JsonValue::parse(v.dump());
    EXPECT_EQ(again.find("s")->str(), "a\"b\\c\n");
    EXPECT_EQ(again.find("n")->array()[1].number(), 2.5);
}

TEST(ServeJson, U64IntegersAboveTwoPow53RoundTripExactly)
{
    // Ids, depths and cycle counts are 64-bit; routing them through a
    // double silently corrupts anything above 2^53.
    for (const std::uint64_t v :
         {std::uint64_t{9007199254740993ull},    // 2^53 + 1
          std::uint64_t{1234567890123456789ull},
          std::uint64_t{18446744073709551615ull}}) { // u64 max
        const std::string text = strf("%llu",
            static_cast<unsigned long long>(v));
        const JsonValue parsed = JsonValue::parse(text);
        EXPECT_TRUE(parsed.isExactInt()) << text;
        EXPECT_EQ(parsed.asU64("v", ~0ull), v);
        EXPECT_EQ(parsed.dump(), text); // parse -> dump is bit-exact
    }
}

TEST(ServeJson, I64IntegersRoundTripExactly)
{
    EXPECT_EQ(JsonValue::parse("-9223372036854775808").asI64("v"),
              std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(JsonValue::parse("-9007199254740993").asI64("v"),
              -9007199254740993ll);
    EXPECT_EQ(JsonValue::parse("-9223372036854775808").dump(),
              "-9223372036854775808");
    EXPECT_EQ(JsonValue::makeInt(-42).dump(), "-42");
    EXPECT_EQ(JsonValue::makeUInt(18446744073709551615ull).dump(),
              "18446744073709551615");
    // u64 max does not fit i64.
    EXPECT_THROW(JsonValue::parse("18446744073709551615").asI64("v"),
                 FatalError);
}

TEST(ServeJson, OutOfRangeNumbersAreProtocolErrorsNotTruncations)
{
    // Beyond u64: parses as a lossy double, but integer extraction must
    // refuse rather than truncate.
    const JsonValue beyond = JsonValue::parse("18446744073709551616");
    EXPECT_FALSE(beyond.isExactInt());
    EXPECT_THROW(beyond.asU64("v", ~0ull), FatalError);
    // Exponent form above 2^53: the true value is unknowable.
    EXPECT_THROW(JsonValue::parse("9.1e18").asU64("v", ~0ull),
                 FatalError);
    // Small exponent forms are still fine (exactly representable).
    EXPECT_EQ(JsonValue::parse("1e3").asU64("v", ~0ull), 1000u);
    // Fractions, negatives, overflow vs caller maximum.
    EXPECT_THROW(JsonValue::parse("12.5").asU64("v", ~0ull), FatalError);
    EXPECT_THROW(JsonValue::parse("-1").asU64("v", ~0ull), FatalError);
    EXPECT_THROW(JsonValue::parse("256").asU64("v", 255), FatalError);
    // Overflowing doubles are rejected at parse (JSON has no inf).
    EXPECT_THROW(JsonValue::parse("1e999"), FatalError);
}

TEST(ServeJson, BuilderEmitsExact64BitIntegers)
{
    serve::JsonBuilder b;
    b.key("u").num(std::uint64_t{18446744073709551615ull});
    b.key("i").num(std::int64_t{-9223372036854775807ll - 1});
    b.key("w").num(Value{-5}); // Value routes through the signed lane
    const JsonValue v = JsonValue::parse(b.finish());
    EXPECT_EQ(v.find("u")->asU64("u", ~0ull), 18446744073709551615ull);
    EXPECT_EQ(v.find("i")->asI64("i"),
              std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(v.find("w")->asI64("w"), -5);
}

TEST(ServeJson, MalformedSurrogateEscapesAreParseErrors)
{
    // Lone or inverted surrogate halves must never decode to invalid
    // UTF-8 — every malformed shape is a parse error.
    for (const char *bad : {
             R"("\ud800")",        // lone high half
             R"("\udc00")",        // lone low half
             R"("\udc00\ud800")",  // inverted pair
             R"("\ud83d\ud83d")",  // high followed by high
             R"("\ud800A")",       // high followed by a literal
             R"("\ud800\n")",      // high followed by a non-\u escape
             R"("\ud83d\u00e9")", // high followed by a BMP escape
             R"("\ud83d\u")",      // truncated second escape
             R"("\ud83d\udc0")",   // short second escape
         }) {
        EXPECT_THROW(JsonValue::parse(bad), FatalError) << bad;
    }
    // Boundary pairs that are valid must decode to well-formed UTF-8.
    EXPECT_EQ(JsonValue::parse(R"("\ud800\udc00")").str(),
              "\xf0\x90\x80\x80"); // U+10000
    EXPECT_EQ(JsonValue::parse(R"("\udbff\udfff")").str(),
              "\xf4\x8f\xbf\xbf"); // U+10FFFF
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

TEST(SimServiceTest, SimulateMatchesDirectEngineRun)
{
    SimService svc({1, "", 4, {}});
    const JsonValue r = ask(
        svc, R"({"id":7,"op":"simulate","design":"fifo_chain"})");
    ASSERT_TRUE(okField(r)) << r.dump();
    EXPECT_EQ(numField(r, "id"), 7u);
    EXPECT_EQ(strField(r, "op"), "simulate");
    EXPECT_EQ(strField(r, "status"), "Ok");
    EXPECT_EQ(strField(r, "method"), "full");

    const test::Compiled c("fifo_chain");
    const SimResult direct = simulateOmniSim(c.cd);
    EXPECT_EQ(numField(r, "cycles"), direct.totalCycles);
}

TEST(SimServiceTest, ResimulateIsServedIncrementallyAfterSimulate)
{
    SimService svc({1, "", 4, {}});
    ASSERT_TRUE(okField(ask(
        svc, R"({"id":1,"op":"simulate","design":"fifo_chain"})")));
    const JsonValue r = ask(svc,
        R"({"id":2,"op":"resimulate","design":"fifo_chain",)"
        R"("depths":{"a":9,"b":9}})");
    ASSERT_TRUE(okField(r)) << r.dump();
    EXPECT_EQ(strField(r, "method"), "incremental");

    // Ground truth: a fresh engine run at those depths.
    Design d = designs::findDesign("fifo_chain").build();
    d.setFifoDepth(d.fifoByName("a"), 9);
    d.setFifoDepth(d.fifoByName("b"), 9);
    const SimResult fresh = simulateOmniSim(compile(d));
    ASSERT_EQ(fresh.status, SimStatus::Ok);
    EXPECT_EQ(numField(r, "cycles"), fresh.totalCycles);
}

TEST(SimServiceTest, DepthsAcceptArrayForm)
{
    SimService svc({1, "", 4, {}});
    const JsonValue r = ask(svc,
        R"({"id":1,"op":"simulate","design":"fifo_chain",)"
        R"("depths":[3,5]})");
    ASSERT_TRUE(okField(r)) << r.dump();
    EXPECT_EQ(numField(r, "cost"), 8u);
}

TEST(SimServiceTest, ForeignEngineRunsViaScenarioPath)
{
    SimService svc({1, "", 4, {}});
    const JsonValue r = ask(svc,
        R"({"id":1,"op":"simulate","design":"fifo_chain",)"
        R"("engine":"cosim"})");
    ASSERT_TRUE(okField(r)) << r.dump();
    EXPECT_EQ(strField(r, "engine"), "cosim");
    EXPECT_EQ(strField(r, "status"), "Ok");
}

TEST(SimServiceTest, ErrorIsolationKeepsServing)
{
    SimService svc({1, "", 4, {}});

    // Unknown design.
    JsonValue r = ask(
        svc, R"({"id":1,"op":"simulate","design":"no_such_design"})");
    EXPECT_FALSE(okField(r));
    EXPECT_EQ(numField(r, "id"), 1u);
    EXPECT_NE(strField(r, "error").find("no_such_design"),
              std::string::npos);

    // Unknown FIFO in depths.
    r = ask(svc, R"({"id":2,"op":"resimulate","design":"fifo_chain",)"
                 R"("depths":{"zz":4}})");
    EXPECT_FALSE(okField(r));

    // Malformed JSON: id unknown, still a structured error.
    r = JsonValue::parse(svc.handle("{nope"));
    EXPECT_FALSE(okField(r));
    EXPECT_TRUE(r.find("id")->isNull());

    // Missing op / non-object / bad depth types.
    EXPECT_FALSE(okField(ask(svc, R"({"id":3})")));
    EXPECT_FALSE(okField(ask(svc, R"([1,2,3])")));
    EXPECT_FALSE(okField(ask(
        svc, R"({"id":4,"op":"resimulate","design":"fifo_chain",)"
             R"("depths":{"a":-3}})")));
    EXPECT_FALSE(okField(ask(
        svc, R"({"id":5,"op":"simulate","design":"fifo_chain",)"
             R"("engine":"verilator"})")));

    // After all that abuse the service still answers correctly.
    r = ask(svc, R"({"id":6,"op":"simulate","design":"fifo_chain"})");
    EXPECT_TRUE(okField(r)) << r.dump();
    EXPECT_FALSE(svc.shutdownRequested());
}

TEST(SimServiceTest, ErrorResponseCarriesCidAndLogTail)
{
    // Arm the structured logger (quiet: no sink needed — the per-request
    // LogCapture collects warn+ events independently of the sink level).
    setLogQuiet(true);
    obs::setLogEnabled(true);
    SimService svc({1, "", 4, {}});

    // A failing request (FatalError inside the engine layer) must come
    // back as a structured error carrying the request correlation id and
    // the warn+ log tail recorded while serving it.
    const JsonValue bad = ask(
        svc, R"({"id":1,"op":"simulate","design":"no_such_design"})");
    EXPECT_FALSE(okField(bad));
    const std::uint64_t badCid = numField(bad, "cid");
    EXPECT_GT(badCid, 0u);
    const JsonValue *logField = bad.find("log");
    ASSERT_NE(logField, nullptr) << bad.dump();
    ASSERT_FALSE(logField->array().empty());
    bool sawFailureEvent = false;
    for (const JsonValue &e : logField->array()) {
        // Each entry is a full structured event stamped with the same
        // cid the response carries.
        EXPECT_EQ(numField(e, "cid"), badCid);
        EXPECT_NE(e.find("ts_ns"), nullptr);
        EXPECT_NE(e.find("lvl"), nullptr);
        EXPECT_NE(e.find("msg"), nullptr);
        if (strField(e, "event") == "serve.request_failed")
            sawFailureEvent = true;
    }
    EXPECT_TRUE(sawFailureEvent) << bad.dump();
    EXPECT_EQ(bad.find("log_truncated"), nullptr); // nothing dropped

    // The service keeps serving; success responses carry a fresh cid
    // and no log echo.
    const JsonValue ok = ask(
        svc, R"({"id":2,"op":"simulate","design":"fifo_chain"})");
    EXPECT_TRUE(okField(ok)) << ok.dump();
    EXPECT_GT(numField(ok, "cid"), badCid);
    EXPECT_EQ(ok.find("log"), nullptr);

    obs::setLogEnabled(false);
}

TEST(SimServiceTest, DseOpRunsAndReportsFrontier)
{
    SimService svc({1, "", 4, {}});
    const JsonValue r = ask(svc,
        R"({"id":1,"op":"dse","design":"reconvergent","strategy":"grid",)"
        R"("budget":12,"jobs":1})");
    ASSERT_TRUE(okField(r)) << r.dump();
    EXPECT_EQ(strField(r, "strategy"), "grid");
    EXPECT_GE(numField(r, "evaluations"), 1u);
    ASSERT_TRUE(r.find("frontier")->isArray());
    EXPECT_FALSE(r.find("frontier")->array().empty());
    EXPECT_NE(r.find("min_latency"), nullptr);
}

TEST(SimServiceTest, BatchOpRunsScenarios)
{
    SimService svc({1, "", 4, {}});
    const JsonValue r = ask(svc,
        R"({"id":1,"op":"batch","designs":["fifo_chain","fir_filter"],)"
        R"("engines":["omnisim","csim"],"seeds":1,"jobs":2})");
    ASSERT_TRUE(okField(r)) << r.dump();
    EXPECT_EQ(numField(r, "scenarios"), 4u);
    EXPECT_EQ(numField(r, "failed_count"), 0u);
    EXPECT_EQ(r.find("outcomes")->array().size(), 4u);
}

TEST(SimServiceTest, ListAndStatsOps)
{
    SimService svc({1, "", 4, {}});
    const JsonValue list = ask(svc, R"({"id":1,"op":"list"})");
    ASSERT_TRUE(okField(list));
    EXPECT_GT(list.find("designs")->array().size(), 10u);

    const JsonValue stats = ask(svc, R"({"id":2,"op":"stats"})");
    ASSERT_TRUE(okField(stats));
    EXPECT_TRUE(stats.find("store")->isNull());
}

TEST(SimServiceTest, StatsReportsUptimeInflightAndPerOpRequests)
{
    SimService svc({1, "", 4, {}});
    ask(svc, R"({"id":1,"op":"list"})");
    const JsonValue stats = ask(svc, R"({"id":2,"op":"stats"})");
    ASSERT_TRUE(okField(stats));

    const JsonValue *uptime = stats.find("uptime_seconds");
    ASSERT_NE(uptime, nullptr);
    EXPECT_GE(uptime->number(), 0.0);

    const JsonValue *inflight = stats.find("inflight");
    ASSERT_NE(inflight, nullptr);
    // handle() runs synchronously here, so the stats request itself is
    // the only one in flight.
    EXPECT_GE(inflight->number(), 1.0);

    // Per-op request accounting. The obs registry is process-global,
    // so counts are >= what this service served — like a Prometheus
    // scrape — but every known op must be present with its quantiles.
    const JsonValue *reqs = stats.find("requests");
    ASSERT_NE(reqs, nullptr);
    for (const char *op : {"simulate", "resimulate", "list", "stats"}) {
        const JsonValue *entry = reqs->find(op);
        ASSERT_NE(entry, nullptr) << "missing op " << op;
        ASSERT_NE(entry->find("count"), nullptr);
        ASSERT_NE(entry->find("errors"), nullptr);
        ASSERT_NE(entry->find("p50_us"), nullptr);
        ASSERT_NE(entry->find("p99_us"), nullptr);
    }
    EXPECT_GE(reqs->find("list")->find("count")->number(), 1.0);
    ASSERT_NE(stats.find("queue_wait"), nullptr);
}

namespace
{
/** Counter value from a `metrics` response (0 when absent). */
double
metricsCounter(const JsonValue &r, const std::string &name)
{
    const JsonValue *m = r.find("metrics");
    if (!m)
        return 0.0;
    const JsonValue *counters = m->find("counters");
    const JsonValue *c = counters ? counters->find(name) : nullptr;
    return c ? c->number() : 0.0;
}
} // namespace

TEST(SimServiceTest, MetricsOpCountsPerOpAndReportsQuantiles)
{
    SimService svc({1, "", 4, {}});
    const JsonValue before = ask(svc, R"({"id":1,"op":"metrics"})");
    ASSERT_TRUE(okField(before));
    const double sim0 = metricsCounter(before, "serve.requests.simulate");
    const double resim0 =
        metricsCounter(before, "serve.requests.resimulate");

    constexpr int kSimulates = 3;
    for (int i = 0; i < kSimulates; ++i)
        ASSERT_TRUE(okField(ask(
            svc, R"({"id":10,"op":"simulate","design":"fifo_chain"})")));
    ASSERT_TRUE(okField(
        ask(svc, R"({"id":11,"op":"resimulate","design":"fifo_chain"})")));

    const JsonValue after = ask(svc, R"({"id":2,"op":"metrics"})");
    ASSERT_TRUE(okField(after));
    // Delta-based: the registry is process-global, so only the growth
    // caused by the requests above is attributable to this test.
    EXPECT_EQ(metricsCounter(after, "serve.requests.simulate") - sim0,
              kSimulates);
    EXPECT_EQ(metricsCounter(after, "serve.requests.resimulate") - resim0,
              1.0);

    const JsonValue *m = after.find("metrics");
    ASSERT_NE(m, nullptr);
    const JsonValue *hists = m->find("histograms");
    ASSERT_NE(hists, nullptr);
    const JsonValue *lat = hists->find("serve.request_us.simulate");
    ASSERT_NE(lat, nullptr) << "per-op latency histogram missing";
    ASSERT_NE(lat->find("p50"), nullptr);
    ASSERT_NE(lat->find("p99"), nullptr);
    const double p50 = lat->find("p50")->number();
    const double p99 = lat->find("p99")->number();
    EXPECT_GT(p50, 0.0) << "simulate latencies are ms-scale; p50 of 0 "
                           "means the histogram never recorded";
    EXPECT_LE(p50, p99);
}

TEST(SimServiceTest, MetricsOpPrometheusFormat)
{
    SimService svc({1, "", 4, {}});
    ask(svc, R"({"id":1,"op":"list"})");
    const JsonValue r =
        ask(svc, R"({"id":2,"op":"metrics","format":"prometheus"})");
    ASSERT_TRUE(okField(r));
    const JsonValue *prom = r.find("prometheus");
    ASSERT_NE(prom, nullptr);
    EXPECT_NE(prom->str().find("omnisim_serve_requests_list"),
              std::string::npos);
    EXPECT_NE(prom->str().find("# TYPE"), std::string::npos);
}

TEST(SimServiceTest, ShutdownSetsFlagAndEchoesId)
{
    SimService svc({1, "", 4, {}});
    EXPECT_FALSE(svc.shutdownRequested());
    const JsonValue r =
        ask(svc, R"({"id":"bye","op":"shutdown"})");
    EXPECT_TRUE(okField(r));
    EXPECT_EQ(r.find("id")->str(), "bye");
    EXPECT_TRUE(svc.shutdownRequested());
}

// ---------------------------------------------------------------------------
// Concurrency and transports.
// ---------------------------------------------------------------------------

TEST(SimServiceTest, ConcurrentSubmissionsAllAnswer)
{
    SimService svc({4, "", 4, {}});
    constexpr int kRequests = 24;

    sync::Mutex mu;
    std::vector<JsonValue> responses;
    for (int i = 0; i < kRequests; ++i) {
        const std::uint32_t depth = 2 + (i % 6);
        svc.submit(strf("{\"id\":%d,\"op\":\"resimulate\","
                        "\"design\":\"fifo_chain\","
                        "\"depths\":{\"a\":%u}}", i, depth),
                   [&](std::string line) {
                       sync::LockGuard lock(mu);
                       responses.push_back(JsonValue::parse(line));
                   });
    }
    svc.drain();

    ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
    std::vector<bool> seen(kRequests, false);
    for (const JsonValue &r : responses) {
        EXPECT_TRUE(okField(r)) << r.dump();
        const auto id = static_cast<std::size_t>(numField(r, "id"));
        ASSERT_LT(id, seen.size());
        EXPECT_FALSE(seen[id]) << "duplicate response for id " << id;
        seen[id] = true;
    }
    EXPECT_EQ(svc.requestsServed(), static_cast<std::uint64_t>(kRequests));

    // Determinism across the concurrent path: equal depths answered
    // with equal cycles.
    std::map<std::uint64_t, std::uint64_t> byCost;
    for (const JsonValue &r : responses) {
        const std::uint64_t cost = numField(r, "cost");
        const std::uint64_t cycles = numField(r, "cycles");
        const auto [it, fresh] = byCost.emplace(cost, cycles);
        EXPECT_EQ(it->second, cycles) << "cost " << cost;
        (void)fresh;
    }
}

TEST(SimServiceTest, WarmStartAcrossServiceInstances)
{
    TempDir dir("svc_warm");

    // Service instance 1 pays for the trace and publishes it.
    {
        SimService svc({1, dir.path, 4, {}});
        const JsonValue r = ask(
            svc, R"({"id":1,"op":"simulate","design":"reconvergent"})");
        ASSERT_TRUE(okField(r)) << r.dump();
        EXPECT_EQ(strField(r, "method"), "full");
    }

    // Instance 2 — a fresh "process" — serves resimulate incrementally
    // from the stored run without any full engine run.
    {
        SimService svc({1, dir.path, 4, {}});
        const JsonValue r = ask(svc,
            R"({"id":2,"op":"resimulate","design":"reconvergent"})");
        ASSERT_TRUE(okField(r)) << r.dump();
        EXPECT_EQ(strField(r, "method"), "incremental");
    }
}

TEST(SimServiceTest, ServeLinesDrainsAndAnswersShutdownLast)
{
    SimService svc({2, "", 4, {}});
    std::istringstream in(
        "{\"id\":1,\"op\":\"simulate\",\"design\":\"fifo_chain\"}\n"
        "\n" // blank lines are ignored
        "{\"id\":2,\"op\":\"resimulate\",\"design\":\"fifo_chain\","
        "\"depths\":{\"b\":6}}\n"
        "{\"id\":3,\"op\":\"shutdown\"}\n"
        "{\"id\":4,\"op\":\"simulate\",\"design\":\"fifo_chain\"}\n");
    std::ostringstream out;
    EXPECT_EQ(serve::serveLines(svc, in, out), 0);
    EXPECT_TRUE(svc.shutdownRequested());

    std::vector<JsonValue> responses;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line))
        responses.push_back(JsonValue::parse(line));

    // Three responses: the request after shutdown is never read.
    ASSERT_EQ(responses.size(), 3u);
    for (const JsonValue &r : responses)
        EXPECT_TRUE(okField(r)) << r.dump();
    // Shutdown answers last, after the drain.
    EXPECT_EQ(numField(responses.back(), "id"), 3u);
}

TEST(SimServiceTest, UnterminatedFinalLineStillAnswered)
{
    SimService svc({1, "", 4, {}});
    std::istringstream in(R"({"id":1,"op":"stats"})"); // no newline
    std::ostringstream out;
    EXPECT_EQ(serve::serveLines(svc, in, out), 0);
    const JsonValue r = JsonValue::parse(out.str());
    EXPECT_TRUE(okField(r)) << r.dump();
    EXPECT_EQ(numField(r, "id"), 1u);
}

TEST(SimServiceTest, OversizedRequestLineIsRejectedNotBuffered)
{
    // One endless line must not OOM the resident service: it earns a
    // structured error and the session keeps serving.
    SimService svc({1, "", 4, {}});
    std::string input((2u << 20), 'x');
    input += "\n{\"id\":1,\"op\":\"stats\"}\n{\"id\":2,\"op\":"
             "\"shutdown\"}\n";
    std::istringstream in(input);
    std::ostringstream out;
    EXPECT_EQ(serve::serveLines(svc, in, out), 0);

    std::vector<JsonValue> responses;
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line))
        responses.push_back(JsonValue::parse(line));
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_FALSE(okField(responses[0]));
    EXPECT_NE(strField(responses[0], "error").find("exceeds"),
              std::string::npos);
    EXPECT_TRUE(okField(responses[1]));
    EXPECT_TRUE(okField(responses[2]));
    EXPECT_EQ(numField(responses.back(), "id"), 2u);
}

#ifdef OMNISIM_TEST_UNIX_SOCKETS

/** Connect to a Unix socket, retrying while the server binds. */
int
connectWithRetry(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    path.copy(addr.sun_path, path.size());
    for (int attempt = 0; attempt < 400; ++attempt) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return -1;
}

void
sendAll(int fd, const std::string &text)
{
    std::size_t off = 0;
    while (off < text.size()) {
        const ssize_t n =
            ::send(fd, text.data() + off, text.size() - off, 0);
        ASSERT_GT(n, 0);
        off += static_cast<std::size_t>(n);
    }
}

std::string
recvLine(int fd)
{
    std::string out;
    char c = 0;
    while (::recv(fd, &c, 1, 0) == 1 && c != '\n')
        out += c;
    return out;
}

TEST(SimServiceTest, ClientDisconnectMidResponseDoesNotKillService)
{
    // Regression: a client that sends a request and vanishes before
    // reading the response used to be able to take the resident service
    // down (SIGPIPE on the dead socket, or an EINTR treated as a fatal
    // accept/read error). The service must shrug and keep serving.
    TempDir dir("svc_sock");
    const std::string path = dir.path + "/sock";

    SimService svc({2, "", 4, {}});
    int rc = -1;
    std::thread server(
        [&] { rc = serve::serveUnixSocket(svc, path); });

    // Client 1: fire a real request, then slam the connection shut
    // without reading a byte of the response.
    {
        const int fd = connectWithRetry(path);
        ASSERT_GE(fd, 0);
        sendAll(fd,
                "{\"id\":1,\"op\":\"simulate\","
                "\"design\":\"fifo_chain\"}\n");
        ::close(fd);
    }

    // Client 2: the service must still answer, then shut down cleanly.
    {
        const int fd = connectWithRetry(path);
        ASSERT_GE(fd, 0);
        sendAll(fd, "{\"id\":2,\"op\":\"stats\"}\n");
        const JsonValue stats = JsonValue::parse(recvLine(fd));
        EXPECT_TRUE(okField(stats)) << stats.dump();
        EXPECT_EQ(numField(stats, "id"), 2u);
        sendAll(fd, "{\"id\":3,\"op\":\"shutdown\"}\n");
        const JsonValue bye = JsonValue::parse(recvLine(fd));
        EXPECT_TRUE(okField(bye)) << bye.dump();
        ::close(fd);
    }

    server.join();
    EXPECT_EQ(rc, 0);
    EXPECT_TRUE(svc.shutdownRequested());
}

#endif // OMNISIM_TEST_UNIX_SOCKETS

TEST(TaskPoolTest, ExecutesDrainsAndIsolatesExceptions)
{
    batch::TaskPool pool(3);
    EXPECT_EQ(pool.jobs(), 3u);

    std::atomic<int> ran{0};
    for (int i = 0; i < 50; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    // A throwing task must not take a worker down.
    pool.submit([] { throw std::runtime_error("task bug"); });
    for (int i = 0; i < 50; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    pool.drain();
    EXPECT_EQ(ran.load(), 100);
    EXPECT_EQ(pool.completed(), 101u);

    // drain() on an idle pool returns immediately.
    pool.drain();
}

} // namespace
} // namespace omnisim
