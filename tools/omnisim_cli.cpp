/**
 * @file
 * Command-line driver: run any registered benchmark design under any
 * engine, inspect its taxonomy, or sweep FIFO depths.
 *
 * Usage:
 *   omnisim_cli list
 *   omnisim_cli info    <design>
 *   omnisim_cli run     <design> [--engine csim|cosim|lightning|omnisim]
 *                                [--depth FIFO=N]... [--lazy] [--rtl-cost]
 *   omnisim_cli sweep   <design> --fifo NAME --from A --to B
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/omnisim.hh"
#include "cosim/cosim.hh"
#include "csim/csim.hh"
#include "design/classify.hh"
#include "design/dot.hh"
#include "design/frontend.hh"
#include "designs/common.hh"
#include "lightningsim/lightningsim.hh"
#include "support/stopwatch.hh"
#include "support/table.hh"

using namespace omnisim;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  omnisim_cli list\n"
                 "  omnisim_cli info <design>\n"
                 "  omnisim_cli run <design> [--engine csim|cosim|"
                 "lightning|omnisim] [--depth FIFO=N]... [--lazy] "
                 "[--rtl-cost]\n"
                 "  omnisim_cli sweep <design> --fifo NAME --from A "
                 "--to B\n"
                 "  omnisim_cli dot <design>\n");
    return 2;
}

int
cmdList()
{
    TablePrinter t({"Design", "Type", "Description"});
    for (const auto &suite :
         {&designs::typeBCDesigns(), &designs::typeADesigns()}) {
        for (const auto &e : *suite) {
            Design d = e.build();
            t.addRow({e.name, designTypeName(classify(d).type),
                      e.description});
        }
        t.addSeparator();
    }
    t.print(std::cout);
    return 0;
}

int
cmdInfo(const std::string &name)
{
    Design d = designs::findDesign(name).build();
    const Classification c = classify(d);
    std::printf("design   : %s\n", d.name().c_str());
    std::printf("type     : %s (FuncSim %s, PerfSim %s)\n",
                designTypeName(c.type), simLevelName(c.funcSimLevel),
                simLevelName(c.perfSimLevel));
    std::printf("cyclic   : %s\n", c.cyclic ? "yes" : "no");
    std::printf("modules  : %zu\n", d.modules().size());
    for (const auto &m : d.modules())
        std::printf("  - %s%s\n", m.name.c_str(),
                    m.opts.hasInfiniteLoop ? "  [infinite loop]" : "");
    std::printf("fifos    : %zu\n", d.fifos().size());
    for (const auto &f : d.fifos()) {
        std::printf("  - %-12s depth %-4u %s -> %s  (W:%s R:%s)\n",
                    f.name.c_str(), f.depth,
                    d.modules()[f.writer].name.c_str(),
                    d.modules()[f.reader].name.c_str(),
                    accessKindName(f.writeKind),
                    accessKindName(f.readKind));
    }
    std::printf("memories : %zu\n", d.memories().size());
    return 0;
}

FifoId
fifoByName(const Design &d, const std::string &name)
{
    for (std::size_t f = 0; f < d.fifos().size(); ++f)
        if (d.fifos()[f].name == name)
            return static_cast<FifoId>(f);
    omnisim_fatal("no FIFO named '%s'", name.c_str());
}

void
printResult(const SimResult &r, double seconds)
{
    std::printf("status   : %s\n", simStatusName(r.status));
    if (!r.message.empty())
        std::printf("message  : %s\n", r.message.c_str());
    if (r.status == SimStatus::Ok && r.totalCycles)
        std::printf("cycles   : %llu\n",
                    static_cast<unsigned long long>(r.totalCycles));
    for (const auto &[name, vals] : r.memories) {
        if (vals.size() == 1)
            std::printf("%-9s: %lld\n", name.c_str(),
                        static_cast<long long>(vals[0]));
    }
    for (const auto &w : r.warnings)
        std::printf("warning  : %s\n", w.c_str());
    std::printf("events=%llu queries=%llu forcedFalse=%llu "
                "pauses=%llu nodes=%llu edges=%llu\n",
                static_cast<unsigned long long>(r.stats.events),
                static_cast<unsigned long long>(r.stats.queries),
                static_cast<unsigned long long>(r.stats.forcedFalse),
                static_cast<unsigned long long>(r.stats.threadPauses),
                static_cast<unsigned long long>(r.stats.graphNodes),
                static_cast<unsigned long long>(r.stats.graphEdges));
    std::printf("time     : %.3f ms\n", seconds * 1e3);
}

int
cmdRun(const std::string &name, const std::vector<std::string> &args)
{
    std::string engine = "omnisim";
    bool lazy = false;
    bool rtl_cost = false;
    std::vector<std::pair<std::string, std::uint32_t>> depths;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--engine" && i + 1 < args.size()) {
            engine = args[++i];
        } else if (args[i] == "--lazy") {
            lazy = true;
        } else if (args[i] == "--rtl-cost") {
            rtl_cost = true;
        } else if (args[i] == "--depth" && i + 1 < args.size()) {
            const std::string spec = args[++i];
            const auto eq = spec.find('=');
            if (eq == std::string::npos)
                return usage();
            depths.emplace_back(
                spec.substr(0, eq),
                static_cast<std::uint32_t>(
                    std::stoul(spec.substr(eq + 1))));
        } else {
            return usage();
        }
    }

    Design d = designs::findDesign(name).build();
    for (const auto &[fifo, depth] : depths)
        d.setFifoDepth(fifoByName(d, fifo), depth);
    const CompiledDesign cd = compile(d);

    Stopwatch sw;
    SimResult r;
    if (engine == "csim") {
        r = simulateCSim(cd);
    } else if (engine == "cosim") {
        CosimOptions opts;
        opts.modelRtlCost = rtl_cost;
        r = simulateCosim(cd, opts);
    } else if (engine == "lightning") {
        r = simulateLightningSim(cd);
    } else if (engine == "omnisim") {
        OmniSimOptions opts;
        opts.eagerWriteStall = !lazy;
        r = simulateOmniSim(cd, opts);
    } else {
        return usage();
    }
    std::printf("engine   : %s\n", engine.c_str());
    printResult(r, sw.seconds());
    return r.status == SimStatus::Ok ? 0 : 1;
}

int
cmdSweep(const std::string &name, const std::vector<std::string> &args)
{
    std::string fifo;
    std::uint32_t from = 1;
    std::uint32_t to = 16;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--fifo" && i + 1 < args.size())
            fifo = args[++i];
        else if (args[i] == "--from" && i + 1 < args.size())
            from = static_cast<std::uint32_t>(std::stoul(args[++i]));
        else if (args[i] == "--to" && i + 1 < args.size())
            to = static_cast<std::uint32_t>(std::stoul(args[++i]));
        else
            return usage();
    }
    if (fifo.empty() || from < 1 || to < from)
        return usage();

    // One full run records the graph; each depth tries incremental
    // re-simulation first (§7.2), falling back to a full run.
    Design base = designs::findDesign(name).build();
    const FifoId target = fifoByName(base, fifo);
    const CompiledDesign cd = compile(base);
    OmniSim eng(cd);
    const SimResult first = eng.run();
    if (first.status != SimStatus::Ok) {
        std::printf("baseline run: %s\n", simStatusName(first.status));
        return 1;
    }

    TablePrinter t({"Depth", "Cycles", "Method"});
    for (std::uint32_t depth = from; depth <= to; ++depth) {
        std::vector<std::uint32_t> ds;
        for (const auto &f : base.fifos())
            ds.push_back(f.depth);
        ds[static_cast<std::size_t>(target)] = depth;
        const IncrementalOutcome inc = eng.resimulate(ds);
        if (inc.reused) {
            t.addRow({strf("%u", depth),
                      strf("%llu", static_cast<unsigned long long>(
                                       inc.result.totalCycles)),
                      "incremental"});
            continue;
        }
        Design d2 = designs::findDesign(name).build();
        d2.setFifoDepth(target, depth);
        const CompiledDesign cd2 = compile(d2);
        const SimResult r = simulateOmniSim(cd2);
        t.addRow({strf("%u", depth),
                  r.status == SimStatus::Ok
                      ? strf("%llu", static_cast<unsigned long long>(
                                         r.totalCycles))
                      : simStatusName(r.status),
                  "full re-run"});
    }
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    std::vector<std::string> rest(argv + 2, argv + argc);
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "info" && !rest.empty())
            return cmdInfo(rest[0]);
        if (cmd == "dot" && !rest.empty()) {
            Design d = designs::findDesign(rest[0]).build();
            std::fputs(toDot(d).c_str(), stdout);
            return 0;
        }
        if (cmd == "run" && !rest.empty()) {
            return cmdRun(rest[0],
                          {rest.begin() + 1, rest.end()});
        }
        if (cmd == "sweep" && !rest.empty()) {
            return cmdSweep(rest[0],
                            {rest.begin() + 1, rest.end()});
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
