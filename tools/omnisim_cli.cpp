/**
 * @file
 * Command-line driver: run any registered benchmark design under any
 * engine, inspect its taxonomy, or sweep FIFO depths.
 *
 * Usage:
 *   omnisim_cli list
 *   omnisim_cli info    <design>
 *   omnisim_cli run     <design> [--engine csim|cosim|lightning|omnisim]
 *                                [--depth FIFO=N]... [--lazy] [--rtl-cost]
 *   omnisim_cli sweep   <design> --fifo NAME --from A --to B [--jobs N]
 *   omnisim_cli batch   [--jobs N] [--engines csim,cosim,lightning,omnisim]
 *                       [--seeds K] [--designs a,b,...]
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "batch/batch.hh"
#include "core/omnisim.hh"
#include "cosim/cosim.hh"
#include "csim/csim.hh"
#include "design/classify.hh"
#include "design/dot.hh"
#include "design/frontend.hh"
#include "designs/common.hh"
#include "lightningsim/lightningsim.hh"
#include "support/stopwatch.hh"
#include "support/table.hh"

using namespace omnisim;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  omnisim_cli list\n"
                 "  omnisim_cli info <design>\n"
                 "  omnisim_cli run <design> [--engine csim|cosim|"
                 "lightning|omnisim] [--depth FIFO=N]... [--lazy] "
                 "[--rtl-cost]\n"
                 "  omnisim_cli sweep <design> --fifo NAME --from A "
                 "--to B [--jobs N]\n"
                 "  omnisim_cli batch [--jobs N] [--engines "
                 "csim,cosim,lightning,omnisim] [--seeds K] "
                 "[--designs a,b,...]\n"
                 "  omnisim_cli dot <design>\n");
    return 2;
}

int
cmdList()
{
    TablePrinter t({"Design", "Type", "Description"});
    for (const auto &suite :
         {&designs::typeBCDesigns(), &designs::typeADesigns()}) {
        for (const auto &e : *suite) {
            Design d = e.build();
            t.addRow({e.name, designTypeName(classify(d).type),
                      e.description});
        }
        t.addSeparator();
    }
    t.print(std::cout);
    return 0;
}

int
cmdInfo(const std::string &name)
{
    Design d = designs::findDesign(name).build();
    const Classification c = classify(d);
    std::printf("design   : %s\n", d.name().c_str());
    std::printf("type     : %s (FuncSim %s, PerfSim %s)\n",
                designTypeName(c.type), simLevelName(c.funcSimLevel),
                simLevelName(c.perfSimLevel));
    std::printf("cyclic   : %s\n", c.cyclic ? "yes" : "no");
    std::printf("modules  : %zu\n", d.modules().size());
    for (const auto &m : d.modules())
        std::printf("  - %s%s\n", m.name.c_str(),
                    m.opts.hasInfiniteLoop ? "  [infinite loop]" : "");
    std::printf("fifos    : %zu\n", d.fifos().size());
    for (const auto &f : d.fifos()) {
        std::printf("  - %-12s depth %-4u %s -> %s  (W:%s R:%s)\n",
                    f.name.c_str(), f.depth,
                    d.modules()[f.writer].name.c_str(),
                    d.modules()[f.reader].name.c_str(),
                    accessKindName(f.writeKind),
                    accessKindName(f.readKind));
    }
    std::printf("memories : %zu\n", d.memories().size());
    return 0;
}

void
printResult(const SimResult &r, double seconds)
{
    std::printf("status   : %s\n", simStatusName(r.status));
    if (!r.message.empty())
        std::printf("message  : %s\n", r.message.c_str());
    if (r.status == SimStatus::Ok && r.totalCycles)
        std::printf("cycles   : %llu\n",
                    static_cast<unsigned long long>(r.totalCycles));
    for (const auto &[name, vals] : r.memories) {
        if (vals.size() == 1)
            std::printf("%-9s: %lld\n", name.c_str(),
                        static_cast<long long>(vals[0]));
    }
    for (const auto &w : r.warnings)
        std::printf("warning  : %s\n", w.c_str());
    std::printf("events=%llu queries=%llu forcedFalse=%llu "
                "pauses=%llu nodes=%llu edges=%llu\n",
                static_cast<unsigned long long>(r.stats.events),
                static_cast<unsigned long long>(r.stats.queries),
                static_cast<unsigned long long>(r.stats.forcedFalse),
                static_cast<unsigned long long>(r.stats.threadPauses),
                static_cast<unsigned long long>(r.stats.graphNodes),
                static_cast<unsigned long long>(r.stats.graphEdges));
    std::printf("time     : %.3f ms\n", seconds * 1e3);
}

int
cmdRun(const std::string &name, const std::vector<std::string> &args)
{
    std::string engine = "omnisim";
    bool lazy = false;
    bool rtl_cost = false;
    std::vector<std::pair<std::string, std::uint32_t>> depths;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--engine" && i + 1 < args.size()) {
            engine = args[++i];
        } else if (args[i] == "--lazy") {
            lazy = true;
        } else if (args[i] == "--rtl-cost") {
            rtl_cost = true;
        } else if (args[i] == "--depth" && i + 1 < args.size()) {
            const std::string spec = args[++i];
            const auto eq = spec.find('=');
            if (eq == std::string::npos)
                return usage();
            depths.emplace_back(
                spec.substr(0, eq),
                static_cast<std::uint32_t>(
                    std::stoul(spec.substr(eq + 1))));
        } else {
            return usage();
        }
    }

    Design d = designs::findDesign(name).build();
    for (const auto &[fifo, depth] : depths)
        d.setFifoDepth(d.fifoByName(fifo), depth);
    const CompiledDesign cd = compile(d);

    Stopwatch sw;
    SimResult r;
    if (engine == "csim") {
        r = simulateCSim(cd);
    } else if (engine == "cosim") {
        CosimOptions opts;
        opts.modelRtlCost = rtl_cost;
        r = simulateCosim(cd, opts);
    } else if (engine == "lightning") {
        r = simulateLightningSim(cd);
    } else if (engine == "omnisim") {
        OmniSimOptions opts;
        opts.eagerWriteStall = !lazy;
        r = simulateOmniSim(cd, opts);
    } else {
        return usage();
    }
    std::printf("engine   : %s\n", engine.c_str());
    printResult(r, sw.seconds());
    return r.status == SimStatus::Ok ? 0 : 1;
}

int
cmdSweep(const std::string &name, const std::vector<std::string> &args)
{
    std::string fifo;
    std::uint32_t from = 1;
    std::uint32_t to = 16;
    unsigned jobs = 0;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--fifo" && i + 1 < args.size())
            fifo = args[++i];
        else if (args[i] == "--from" && i + 1 < args.size())
            from = static_cast<std::uint32_t>(std::stoul(args[++i]));
        else if (args[i] == "--to" && i + 1 < args.size())
            to = static_cast<std::uint32_t>(std::stoul(args[++i]));
        else if (args[i] == "--jobs" && i + 1 < args.size())
            jobs = static_cast<unsigned>(std::stoul(args[++i]));
        else
            return usage();
    }
    if (fifo.empty() || from < 1 || to < from)
        return usage();

    // One full run records the graph; each depth tries incremental
    // re-simulation first (§7.2). Depths whose constraints diverge need a
    // full re-run — those are independent simulations, so they are fanned
    // out across the batch worker pool instead of run one by one.
    Design base = designs::findDesign(name).build();
    const FifoId target = base.fifoByName(fifo);
    const CompiledDesign cd = compile(base);
    OmniSim eng(cd);
    const SimResult first = eng.run();
    if (first.status != SimStatus::Ok) {
        std::printf("baseline run: %s\n", simStatusName(first.status));
        return 1;
    }

    std::map<std::uint32_t, Cycles> incremental;
    std::vector<batch::Scenario> fallback;
    for (std::uint32_t depth = from; depth <= to; ++depth) {
        std::vector<std::uint32_t> ds;
        for (const auto &f : base.fifos())
            ds.push_back(f.depth);
        ds[static_cast<std::size_t>(target)] = depth;
        const IncrementalOutcome inc = eng.resimulate(ds);
        if (inc.reused) {
            incremental.emplace(depth, inc.result.totalCycles);
            continue;
        }
        batch::Scenario s;
        s.design = name;
        s.depths.push_back({fifo, depth});
        fallback.push_back(std::move(s));
    }
    const batch::BatchReport rep =
        batch::BatchRunner({jobs}).run(fallback);

    TablePrinter t({"Depth", "Cycles", "Method"});
    std::size_t fb = 0;
    for (std::uint32_t depth = from; depth <= to; ++depth) {
        if (const auto it = incremental.find(depth);
            it != incremental.end()) {
            t.addRow({strf("%u", depth),
                      strf("%llu", static_cast<unsigned long long>(
                                       it->second)),
                      "incremental"});
            continue;
        }
        const batch::ScenarioOutcome &o = rep.outcomes[fb++];
        t.addRow({strf("%u", depth),
                  o.ok() ? strf("%llu", static_cast<unsigned long long>(
                                    o.result.totalCycles))
                         : (o.failed ? o.error.c_str()
                                     : simStatusName(o.result.status)),
                  "full re-run"});
    }
    t.print(std::cout);
    if (!fallback.empty())
        std::printf("full re-runs: %zu across %u jobs in %.3f s "
                    "(%.1f sims/s)\n",
                    fallback.size(), rep.jobs, rep.wallSeconds,
                    rep.throughput());
    // A fallback run that never produced an engine result (unknown
    // FIFO, engine exception) is an error; non-Ok engine statuses at
    // some depths are normal sweep outcomes.
    return rep.failedCount() == 0 ? 0 : 1;
}

/** Split "a,b,c" into its comma-separated parts. */
std::vector<std::string>
splitList(const std::string &spec)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        if (end > pos)
            out.push_back(spec.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

int
cmdBatch(const std::vector<std::string> &args)
{
    unsigned jobs = 0;
    unsigned seeds = 1;
    std::vector<batch::EngineKind> engines;
    std::vector<std::string> only;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--jobs" && i + 1 < args.size()) {
            jobs = static_cast<unsigned>(std::stoul(args[++i]));
        } else if (args[i] == "--seeds" && i + 1 < args.size()) {
            seeds = static_cast<unsigned>(std::stoul(args[++i]));
        } else if (args[i] == "--engines" && i + 1 < args.size()) {
            for (const std::string &n : splitList(args[++i])) {
                batch::EngineKind e;
                if (!batch::parseEngineKind(n, e)) {
                    std::fprintf(stderr, "unknown engine '%s'\n",
                                 n.c_str());
                    return usage();
                }
                engines.push_back(e);
            }
        } else if (args[i] == "--designs" && i + 1 < args.size()) {
            only = splitList(args[++i]);
        } else {
            return usage();
        }
    }
    if (engines.empty())
        engines.push_back(batch::EngineKind::OmniSim);
    if (seeds < 1)
        seeds = 1;

    const std::vector<batch::Scenario> scenarios =
        batch::registryScenarios(engines, seeds, only);

    const batch::BatchReport rep =
        batch::BatchRunner({jobs}).run(scenarios);

    TablePrinter t({"Design", "Engine", "Seed", "Status", "Cycles",
                    "Time"});
    for (const auto &o : rep.outcomes) {
        t.addRow({o.scenario.design,
                  batch::engineKindName(o.scenario.engine),
                  strf("%llu", static_cast<unsigned long long>(
                                   o.scenario.seed)),
                  o.failed ? "error" : simStatusName(o.result.status),
                  o.ok() ? strf("%llu", static_cast<unsigned long long>(
                                    o.result.totalCycles))
                         : "-",
                  strf("%.2f ms", o.seconds * 1e3)});
    }
    t.print(std::cout);
    std::printf("scenarios=%zu ok=%zu failed=%zu jobs=%u wall=%.3f s "
                "throughput=%.1f sims/s\n",
                rep.outcomes.size(), rep.okCount(), rep.failedCount(),
                rep.jobs, rep.wallSeconds, rep.throughput());
    // Non-Ok engine statuses (deadlock, crash) are legitimate
    // exploration outcomes; only configuration failures are errors.
    return rep.failedCount() == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    std::vector<std::string> rest(argv + 2, argv + argc);
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "info" && !rest.empty())
            return cmdInfo(rest[0]);
        if (cmd == "dot" && !rest.empty()) {
            Design d = designs::findDesign(rest[0]).build();
            std::fputs(toDot(d).c_str(), stdout);
            return 0;
        }
        if (cmd == "run" && !rest.empty()) {
            return cmdRun(rest[0],
                          {rest.begin() + 1, rest.end()});
        }
        if (cmd == "sweep" && !rest.empty()) {
            return cmdSweep(rest[0],
                            {rest.begin() + 1, rest.end()});
        }
        if (cmd == "batch")
            return cmdBatch(rest);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    } catch (const std::invalid_argument &) {
        std::fprintf(stderr, "error: expected a number in an argument "
                             "value\n");
        return 2;
    } catch (const std::out_of_range &) {
        std::fprintf(stderr, "error: numeric argument value out of "
                             "range\n");
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
