/**
 * @file
 * Command-line driver: run any registered benchmark design under any
 * engine, inspect its taxonomy, sweep FIFO depths, or explore the joint
 * FIFO depth space with the DSE engine.
 *
 * Usage:
 *   omnisim_cli list
 *   omnisim_cli info    <design>
 *   omnisim_cli dot     <design> [--optimized]
 *   omnisim_cli run     <design> [--engine csim|cosim|lightning|omnisim]
 *                                [--depth FIFO=N]... [--lazy] [--rtl-cost]
 *   omnisim_cli sweep   <design> (--fifo NAME [--from A] [--to B])...
 *                                [--jobs N]
 *   omnisim_cli dse     <design> [--strategy grid|binary|greedy|anneal]
 *                                [--budget N] [--jobs N] [--seed N]
 *                                (--fifo NAME [--from A] [--to B])...
 *                                [--linear] [--csv]
 *   omnisim_cli batch   [--jobs N] [--engines csim,cosim,lightning,omnisim]
 *                       [--seeds K] [--designs a,b,...]
 *   omnisim_cli serve   [--jobs N] [--store DIR] [--socket PATH]
 *   omnisim_cli fuzz    [--seed S] [--count N] [--jobs N] [--probes K]
 *                       [--budget SEC] [--no-shrink] [--replay SPEC]
 *
 * dot renders the module/FIFO graph; with --optimized it simulates the
 * design once and renders the -O1 compiled run graph instead (diffable
 * against the -O0 trace; see src/opt/).
 * serve/dse/batch/fuzz print focused usage on --help or malformed flags.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "batch/batch.hh"
#include "core/omnisim.hh"
#include "cosim/cosim.hh"
#include "csim/csim.hh"
#include "design/classify.hh"
#include "design/dot.hh"
#include "design/frontend.hh"
#include "designs/common.hh"
#include "dse/dse.hh"
#include "dse/strategies.hh"
#include "gen/conformance.hh"
#include "gen/generate.hh"
#include "gen/shrink.hh"
#include "io/run_store.hh"
#include "lightningsim/lightningsim.hh"
#include "obs/context.hh"
#include "obs/flight.hh"
#include "obs/log.hh"
#include "obs/trace.hh"
#include "opt/verify.hh"
#include "serve/service.hh"
#include "support/stopwatch.hh"
#include "support/table.hh"

using namespace omnisim;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  omnisim_cli list\n"
                 "  omnisim_cli info <design>\n"
                 "  omnisim_cli run <design> [--engine csim|cosim|"
                 "lightning|omnisim] [--depth FIFO=N]... [--lazy] "
                 "[--rtl-cost]\n"
                 "  omnisim_cli sweep <design> (--fifo NAME [--from A] "
                 "[--to B])... [--jobs N]\n"
                 "  omnisim_cli dse <design> ...       (dse --help for "
                 "details)\n"
                 "  omnisim_cli batch ...              (batch --help for "
                 "details)\n"
                 "  omnisim_cli serve ...              (serve --help for "
                 "details)\n"
                 "  omnisim_cli fuzz ...               (fuzz --help for "
                 "details)\n"
                 "  omnisim_cli dot <design> [--optimized]\n"
                 "\n"
                 "  `simulate` is an alias for `run`. Any command also "
                 "accepts\n"
                 "  --trace-out FILE.json to record Perfetto-loadable "
                 "trace spans\n"
                 "  (Chrome trace_event format) for the whole "
                 "invocation, and\n"
                 "  --jobs N to size both the worker pools and the "
                 "engine's\n"
                 "  relaxation lanes (0 = all cores; answers are "
                 "bit-identical\n"
                 "  at any value). Structured diagnostics: --log-out "
                 "FILE.jsonl\n"
                 "  (one JSON event per line), --log-level "
                 "trace|debug|info|warn|error\n"
                 "  (default warn), --crash-dir DIR for flight-recorder "
                 "crash dumps.\n"
                 "  --verify runs the IR verifier between every compile "
                 "pass and on\n"
                 "  run-file rehydration (always on in Debug builds).\n");
    return 2;
}

/** Focused per-subcommand usage text (the --help / bad-args target). */
const char *
subcommandUsage(const std::string &cmd)
{
    if (cmd == "dse") {
        return "usage: omnisim_cli dse <design> [options]\n"
               "\n"
               "Explore the joint FIFO depth space of a registered "
               "design.\n"
               "\n"
               "options:\n"
               "  --strategy grid|binary|greedy|anneal  search strategy "
               "(default grid)\n"
               "  --budget N     max unique configurations to evaluate "
               "(default 512)\n"
               "  --jobs N       worker threads and engine relaxation "
               "lanes\n"
               "                 (default: all cores / serial)\n"
               "  --seed N       PRNG seed for randomized strategies\n"
               "  --fifo NAME [--from A] [--to B]\n"
               "                 one explored axis; repeatable (default: "
               "every FIFO, 1..16)\n"
               "  --linear       dense linear candidate ranges instead "
               "of geometric\n"
               "  --csv          machine-readable output\n"
               "  --store DIR    persistent run store: warm-start from "
               "prior runs\n"
               "                 and publish new full runs\n";
    }
    if (cmd == "batch") {
        return "usage: omnisim_cli batch [options]\n"
               "\n"
               "Fan registry designs x engines x seeds across a worker "
               "pool.\n"
               "\n"
               "options:\n"
               "  --jobs N            worker threads (default: all "
               "cores)\n"
               "  --engines a,b,...   engines to run: csim, cosim, "
               "lightning, omnisim\n"
               "                      (default omnisim)\n"
               "  --seeds K           workload seeds 0..K-1 per design "
               "(default 1)\n"
               "  --designs a,b,...   restrict to named designs "
               "(default: whole registry)\n";
    }
    if (cmd == "fuzz") {
        return "usage: omnisim_cli fuzz [options]\n"
               "\n"
               "Randomized differential conformance: generate seeded "
               "dataflow designs\n"
               "and run each through every oracle pair (omnisim vs "
               "cosim vs csim vs\n"
               "lightningsim, resimulate vs reference across random "
               "depth deltas,\n"
               "run_io serialize->rehydrate round trips, serve-protocol "
               "echo). Any\n"
               "divergence is shrunk to a minimal reproducer spec.\n"
               "\n"
               "options:\n"
               "  --seed S       first seed (default 1)\n"
               "  --count N      seeds to sweep (default 1000)\n"
               "  --jobs N       worker threads and engine relaxation "
               "lanes\n"
               "                 (default: all cores / serial)\n"
               "  --probes K     depth probes per design through the "
               "resimulate/io\n"
               "                 oracles (default 4)\n"
               "  --large        large-regime generator (hundreds to "
               "thousands of\n"
               "                 processes; exercises the partitioned "
               "parallel\n"
               "                 relaxation paths)\n"
               "  --budget SEC   stop starting new seeds after SEC "
               "seconds\n"
               "  --no-shrink    report divergent seeds without "
               "minimizing them\n"
               "  --max-shrink N shrink candidate budget per divergence "
               "(default 800)\n"
               "  --replay SPEC  re-run the oracle matrix on one "
               "serialized spec\n"
               "                 (the string a previous fuzz run "
               "printed)\n"
               "  --verify       run the IR verifier between every "
               "compile pass\n"
               "                 and on every rehydration as an extra "
               "oracle\n";
    }
    if (cmd == "serve") {
        return "usage: omnisim_cli serve [options]\n"
               "\n"
               "Long-lived simulation service speaking JSON-lines "
               "requests on stdin/stdout\n"
               "or a Unix socket. Ops: simulate, resimulate, dse, "
               "batch, list, stats,\n"
               "shutdown. See README 'Simulation service' for the "
               "protocol.\n"
               "\n"
               "options:\n"
               "  --jobs N       request worker threads and engine "
               "relaxation\n"
               "                 lanes (default: all cores / serial)\n"
               "  --store DIR    persistent run store directory; "
               "rehydrates prior runs\n"
               "                 for warm-cache serving and publishes "
               "new ones\n"
               "  --socket PATH  serve a Unix-domain socket instead of "
               "stdin/stdout\n"
               "  --lazy         lazy write stalls for omnisim runs "
               "(ablation)\n"
               "  --log-out FILE / --log-level L  (global) structured "
               "JSON event\n"
               "                 log; error responses echo each "
               "request's warn+ tail\n";
    }
    return nullptr;
}

/**
 * Per-subcommand bad-args exit: print the focused usage for serve, dse
 * and batch (the subcommands with non-trivial flag sets) instead of the
 * generic top-level blob.
 */
int
subUsageError(const std::string &cmd)
{
    const char *text = subcommandUsage(cmd);
    if (!text)
        return usage();
    std::fputs(text, stderr);
    return 2;
}

/** @return true when any argument asks for help. */
bool
wantsHelp(const std::vector<std::string> &args)
{
    return std::find(args.begin(), args.end(), "--help") != args.end() ||
           std::find(args.begin(), args.end(), "-h") != args.end();
}

/** Malformed command line (exit 2), as opposed to a FatalError from a
 *  bad design/FIFO name (exit 1). */
struct UsageError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * The global --jobs N flag, pre-scanned out of any command line (like
 * --trace-out): one knob sizing both the subcommand worker pools —
 * where 0 keeps their historical all-cores default — and the engine's
 * relaxation lanes (OmniSimOptions::jobs), which stay serial unless
 * the flag is given. Resimulation answers are bit-identical at any
 * value, so this only ever trades wall-clock.
 */
struct JobsFlag
{
    bool set = false;
    unsigned value = 0;

    /** Worker-pool width (0 = hardware concurrency). */
    unsigned pool() const { return set ? value : 0; }

    /** Engine relaxation lanes (unset = serial). */
    unsigned lanes() const { return set ? value : 1; }
};

/**
 * Parse an unsigned integer CLI argument value, uniformly. Every
 * numeric flag goes through here so range violations and junk input
 * produce one error shape instead of a raw std::stoul throw.
 *
 * @throws UsageError when text is not an integer in [min, max].
 */
std::uint64_t
parseUnsigned(const char *flag, const std::string &text, std::uint64_t min,
              std::uint64_t max)
{
    std::uint64_t v = 0;
    bool bad = text.empty() || text[0] == '-';
    if (!bad) {
        try {
            std::size_t pos = 0;
            v = std::stoull(text, &pos);
            bad = pos != text.size();
        } catch (const std::exception &) {
            bad = true;
        }
    }
    if (bad || v < min || v > max)
        throw UsageError(
            strf("%s expects an integer in [%llu, %llu], got '%s'", flag,
                 static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max), text.c_str()));
    return v;
}

/**
 * parseUnsigned for values narrowed into 32-bit fields (FIFO depths,
 * worker counts, sweep bounds). The cap is clamped to UINT32_MAX before
 * the range check so that a value above the destination width is a
 * usage error (exit 2) instead of a silent truncation — a raw
 * static_cast of the 64-bit parse would quietly wrap depths like 2^32+4
 * to 4.
 */
std::uint32_t
parseU32(const char *flag, const std::string &text, std::uint64_t min,
         std::uint64_t max)
{
    const std::uint64_t cap = std::min<std::uint64_t>(
        max, std::numeric_limits<std::uint32_t>::max());
    return static_cast<std::uint32_t>(parseUnsigned(flag, text, min, cap));
}

int
cmdList()
{
    TablePrinter t({"Design", "Type", "Description"});
    for (const auto &suite :
         {&designs::typeBCDesigns(), &designs::typeADesigns()}) {
        for (const auto &e : *suite) {
            Design d = e.build();
            t.addRow({e.name, designTypeName(classify(d).type),
                      e.description});
        }
        t.addSeparator();
    }
    t.print(std::cout);
    return 0;
}

int
cmdInfo(const std::string &name)
{
    Design d = designs::findDesign(name).build();
    const Classification c = classify(d);
    std::printf("design   : %s\n", d.name().c_str());
    std::printf("type     : %s (FuncSim %s, PerfSim %s)\n",
                designTypeName(c.type), simLevelName(c.funcSimLevel),
                simLevelName(c.perfSimLevel));
    std::printf("cyclic   : %s\n", c.cyclic ? "yes" : "no");
    std::printf("modules  : %zu\n", d.modules().size());
    for (const auto &m : d.modules())
        std::printf("  - %s%s\n", m.name.c_str(),
                    m.opts.hasInfiniteLoop ? "  [infinite loop]" : "");
    std::printf("fifos    : %zu\n", d.fifos().size());
    for (const auto &f : d.fifos()) {
        std::printf("  - %-12s depth %-4u %s -> %s  (W:%s R:%s)\n",
                    f.name.c_str(), f.depth,
                    d.modules()[f.writer].name.c_str(),
                    d.modules()[f.reader].name.c_str(),
                    accessKindName(f.writeKind),
                    accessKindName(f.readKind));
    }
    std::printf("memories : %zu\n", d.memories().size());
    return 0;
}

void
printResult(const SimResult &r, double seconds)
{
    std::printf("status   : %s\n", simStatusName(r.status));
    if (!r.message.empty())
        std::printf("message  : %s\n", r.message.c_str());
    if (r.status == SimStatus::Ok && r.totalCycles)
        std::printf("cycles   : %llu\n",
                    static_cast<unsigned long long>(r.totalCycles));
    for (const auto &[name, vals] : r.memories) {
        if (vals.size() == 1)
            std::printf("%-9s: %lld\n", name.c_str(),
                        static_cast<long long>(vals[0]));
    }
    for (const auto &w : r.warnings)
        std::printf("warning  : %s\n", w.c_str());
    std::printf("events=%llu queries=%llu forcedFalse=%llu "
                "pauses=%llu nodes=%llu edges=%llu\n",
                static_cast<unsigned long long>(r.stats.events),
                static_cast<unsigned long long>(r.stats.queries),
                static_cast<unsigned long long>(r.stats.forcedFalse),
                static_cast<unsigned long long>(r.stats.threadPauses),
                static_cast<unsigned long long>(r.stats.graphNodes),
                static_cast<unsigned long long>(r.stats.graphEdges));
    std::printf("time     : %.3f ms\n", seconds * 1e3);
}

int
cmdRun(const std::string &name, const std::vector<std::string> &args,
       const JobsFlag &jobs)
{
    std::string engine = "omnisim";
    bool lazy = false;
    bool rtl_cost = false;
    std::vector<std::pair<std::string, std::uint32_t>> depths;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--engine" && i + 1 < args.size()) {
            engine = args[++i];
        } else if (args[i] == "--lazy") {
            lazy = true;
        } else if (args[i] == "--rtl-cost") {
            rtl_cost = true;
        } else if (args[i] == "--depth" && i + 1 < args.size()) {
            const std::string spec = args[++i];
            const auto eq = spec.find('=');
            if (eq == std::string::npos)
                return usage();
            depths.emplace_back(
                spec.substr(0, eq),
                parseU32("--depth", spec.substr(eq + 1), 1, 1u << 20));
        } else {
            return usage();
        }
    }

    Design d = designs::findDesign(name).build();
    for (const auto &[fifo, depth] : depths)
        d.setFifoDepth(d.fifoByName(fifo), depth);
    const CompiledDesign cd = compile(d);

    Stopwatch sw;
    SimResult r;
    if (engine == "csim") {
        r = simulateCSim(cd);
    } else if (engine == "cosim") {
        CosimOptions opts;
        opts.modelRtlCost = rtl_cost;
        r = simulateCosim(cd, opts);
    } else if (engine == "lightning") {
        r = simulateLightningSim(cd);
    } else if (engine == "omnisim") {
        OmniSimOptions opts;
        opts.eagerWriteStall = !lazy;
        opts.jobs = jobs.lanes();
        r = simulateOmniSim(cd, opts);
    } else {
        return usage();
    }
    std::printf("engine   : %s\n", engine.c_str());
    printResult(r, sw.seconds());
    return r.status == SimStatus::Ok ? 0 : 1;
}

/**
 * Parse a "--fifo NAME [--from A] [--to B]" flag group into a FifoRange
 * appended to out. i points at "--fifo"; advanced past the group.
 * @return false on malformed input (flag without a value, or --from /
 *         --to before any --fifo is meaningless and caught by caller).
 */
bool
parseFifoGroup(const std::vector<std::string> &args, std::size_t &i,
               std::vector<dse::FifoRange> &out)
{
    if (i + 1 >= args.size())
        return false;
    dse::FifoRange r;
    r.fifo = args[++i];
    while (i + 1 < args.size()) {
        if (args[i + 1] == "--from" && i + 2 < args.size()) {
            r.lo = parseU32("--from", args[i + 2], 1, 1u << 20);
            i += 2;
        } else if (args[i + 1] == "--to" && i + 2 < args.size()) {
            r.hi = parseU32("--to", args[i + 2], 1, 1u << 20);
            i += 2;
        } else {
            break;
        }
    }
    if (r.hi < r.lo)
        throw UsageError(strf("--fifo %s: --from %u exceeds --to %u",
                              r.fifo.c_str(), r.lo, r.hi));
    out.push_back(std::move(r));
    return true;
}

/** "fast=4 slow=2 ..." for the explored axes of one evaluation. */
std::string
axisDepths(const dse::DseReport &rep, const dse::Evaluation &e)
{
    std::string s;
    for (std::size_t a = 0; a < rep.axes.size(); ++a) {
        if (!s.empty())
            s += ' ';
        s += strf("%s=%u", rep.fifoNames[rep.axes[a]].c_str(),
                  e.depths[rep.axes[a]]);
    }
    return s;
}

int
cmdSweep(const std::string &name, const std::vector<std::string> &args,
         const JobsFlag &jobs)
{
    // Each "--fifo NAME [--from A] [--to B]" group adds one swept axis;
    // the cross product of all groups runs through the DSE grid
    // strategy, whose EvalCache serves every configuration by §7.2
    // incremental re-simulation first and fans the divergent full
    // re-runs across the batch worker pool.
    std::vector<dse::FifoRange> groups;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--fifo") {
            if (!parseFifoGroup(args, i, groups))
                return usage();
        } else {
            return usage();
        }
    }
    if (groups.empty())
        return usage();

    dse::DseOptions opts;
    opts.strategy = "grid";
    opts.jobs = jobs.pool();
    opts.engine.jobs = jobs.lanes();
    opts.budget = 1;
    for (auto &g : groups) {
        g.geometric = false; // sweeps are exhaustive: every depth
        opts.budget *= g.hi - g.lo + 1;
    }
    opts.space.fifos = groups;

    const dse::DseReport rep = dse::exploreRegistered(name, opts);

    std::vector<std::string> headers;
    for (const std::size_t a : rep.axes)
        headers.push_back(rep.fifoNames[a]);
    headers.push_back("Cycles");
    headers.push_back("Method");

    // Rows in odometer order of the swept depths (first --fifo slowest).
    std::vector<dse::Evaluation> rows = rep.evaluations;
    std::sort(rows.begin(), rows.end(),
              [&](const dse::Evaluation &x, const dse::Evaluation &y) {
                  for (const std::size_t a : rep.axes) {
                      if (x.depths[a] != y.depths[a])
                          return x.depths[a] < y.depths[a];
                  }
                  return false;
              });

    bool anyCrash = false;
    TablePrinter t(headers);
    for (const auto &e : rows) {
        std::vector<std::string> cells;
        for (const std::size_t a : rep.axes)
            cells.push_back(strf("%u", e.depths[a]));
        if (e.ok()) {
            cells.push_back(
                strf("%llu", static_cast<unsigned long long>(e.latency)));
        } else if (e.status == SimStatus::Crash && !e.message.empty()) {
            anyCrash = true;
            cells.push_back(e.message);
        } else {
            anyCrash |= e.status == SimStatus::Crash;
            cells.push_back(simStatusName(e.status));
        }
        cells.push_back(e.method == dse::EvalMethod::Incremental
                            ? "incremental"
                            : "full re-run");
        t.addRow(std::move(cells));
    }
    t.print(std::cout);
    std::printf("%zu configurations: %zu incremental, %zu full re-runs "
                "across %u jobs in %.3f s (%.1f configs/s)\n",
                rep.evaluations.size(), rep.incrementalHits, rep.fullRuns,
                rep.jobs, rep.wallSeconds, rep.configsPerSecond());
    // Non-Ok engine statuses at some depths (deadlocks) are normal
    // sweep outcomes, but a sweep where nothing completes — or where a
    // configuration crashed the build/compile/engine — is a failure.
    return anyCrash || !rep.anyOk ? 1 : 0;
}

int
cmdDse(const std::string &name, const std::vector<std::string> &args,
       const JobsFlag &jobs)
{
    dse::DseOptions opts;
    opts.jobs = jobs.pool();
    opts.engine.jobs = jobs.lanes();
    bool linear = false;
    bool csv = false;
    std::string storeDir;
    std::vector<dse::FifoRange> groups;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--strategy" && i + 1 < args.size()) {
            opts.strategy = args[++i];
        } else if (args[i] == "--budget" && i + 1 < args.size()) {
            opts.budget = static_cast<std::size_t>(
                parseUnsigned("--budget", args[++i], 1, 1u << 24));
        } else if (args[i] == "--seed" && i + 1 < args.size()) {
            opts.seed = parseUnsigned("--seed", args[++i], 0,
                                      std::numeric_limits<
                                          std::uint64_t>::max());
        } else if (args[i] == "--store" && i + 1 < args.size()) {
            storeDir = args[++i];
        } else if (args[i] == "--fifo") {
            if (!parseFifoGroup(args, i, groups))
                return subUsageError("dse");
        } else if (args[i] == "--linear") {
            linear = true;
        } else if (args[i] == "--csv") {
            csv = true;
        } else {
            return subUsageError("dse");
        }
    }
    for (auto &g : groups)
        g.geometric = !linear;
    opts.space.fifos = groups; // empty == every FIFO, geometric 1..16

    std::unique_ptr<io::RunStore> store;
    if (!storeDir.empty()) {
        store = std::make_unique<io::RunStore>(storeDir);
        opts.store = store.get();
    }

    const dse::DseReport rep = dse::exploreRegistered(name, opts);

    if (csv) {
        std::string header;
        for (const std::size_t a : rep.axes)
            header += rep.fifoNames[a] + ",";
        std::printf("%scost,cycles,status,method,pareto\n",
                    header.c_str());
        for (const auto &e : rep.evaluations) {
            const bool onFront =
                std::find_if(rep.frontier.begin(), rep.frontier.end(),
                             [&](const dse::Evaluation &f) {
                                 return f.depths == e.depths;
                             }) != rep.frontier.end();
            std::string row;
            for (const std::size_t a : rep.axes)
                row += strf("%u,", e.depths[a]);
            std::printf("%s%llu,%llu,%s,%s,%d\n", row.c_str(),
                        static_cast<unsigned long long>(e.cost),
                        static_cast<unsigned long long>(e.latency),
                        simStatusName(e.status),
                        evalMethodName(e.method), onFront ? 1 : 0);
        }
        return rep.anyOk ? 0 : 1;
    }

    std::printf("design    : %s\n", rep.design.c_str());
    std::printf("strategy  : %s (seed %llu)\n", rep.strategy.c_str(),
                static_cast<unsigned long long>(opts.seed));
    std::printf("evaluated : %zu configs — %zu full runs, %zu "
                "incremental (%.1f%% incremental, %zu by delta "
                "relaxation), %zu memo re-hits\n",
                rep.evaluations.size(), rep.fullRuns,
                rep.incrementalHits, rep.hitRate() * 100.0,
                rep.deltaHits, rep.cacheHits);
    if (rep.storedWarmStarts > 0)
        std::printf("warm-start: %zu stored runs rehydrated from the "
                    "run store\n", rep.storedWarmStarts);
    std::printf("wall      : %.3f s (%.1f configs/s, %u jobs)\n\n",
                rep.wallSeconds, rep.configsPerSecond(), rep.jobs);

    if (!rep.anyOk) {
        std::printf("no configuration simulated to completion\n");
        return 1;
    }

    TablePrinter t({"Cost", "Cycles", "Depths", "Method"});
    for (const auto &e : rep.frontier)
        t.addRow({strf("%llu", static_cast<unsigned long long>(e.cost)),
                  strf("%llu", static_cast<unsigned long long>(e.latency)),
                  axisDepths(rep, e), evalMethodName(e.method)});
    t.print(std::cout);
    std::printf("\nmin-latency : cost=%llu cycles=%llu  %s\n",
                static_cast<unsigned long long>(rep.minLatency.cost),
                static_cast<unsigned long long>(rep.minLatency.latency),
                axisDepths(rep, rep.minLatency).c_str());
    std::printf("knee        : cost=%llu cycles=%llu  %s\n",
                static_cast<unsigned long long>(rep.knee.cost),
                static_cast<unsigned long long>(rep.knee.latency),
                axisDepths(rep, rep.knee).c_str());
    return 0;
}

/** Split "a,b,c" into its comma-separated parts. */
std::vector<std::string>
splitList(const std::string &spec)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t comma = spec.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? spec.size() : comma;
        if (end > pos)
            out.push_back(spec.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

int
cmdBatch(const std::vector<std::string> &args, const JobsFlag &jobsFlag)
{
    const unsigned jobs = jobsFlag.pool();
    unsigned seeds = 1;
    std::vector<batch::EngineKind> engines;
    std::vector<std::string> only;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--seeds" && i + 1 < args.size()) {
            seeds = parseU32("--seeds", args[++i], 1, 1u << 20);
        } else if (args[i] == "--engines" && i + 1 < args.size()) {
            for (const std::string &n : splitList(args[++i])) {
                batch::EngineKind e;
                if (!batch::parseEngineKind(n, e)) {
                    std::fprintf(stderr, "unknown engine '%s'\n",
                                 n.c_str());
                    return subUsageError("batch");
                }
                engines.push_back(e);
            }
        } else if (args[i] == "--designs" && i + 1 < args.size()) {
            only = splitList(args[++i]);
        } else {
            return subUsageError("batch");
        }
    }
    if (engines.empty())
        engines.push_back(batch::EngineKind::OmniSim);
    if (seeds < 1)
        seeds = 1;

    const std::vector<batch::Scenario> scenarios =
        batch::registryScenarios(engines, seeds, only);

    const batch::BatchReport rep =
        batch::BatchRunner({jobs}).run(scenarios);

    TablePrinter t({"Design", "Engine", "Seed", "Status", "Cycles",
                    "Time"});
    for (const auto &o : rep.outcomes) {
        t.addRow({o.scenario.design,
                  batch::engineKindName(o.scenario.engine),
                  strf("%llu", static_cast<unsigned long long>(
                                   o.scenario.seed)),
                  o.failed ? "error" : simStatusName(o.result.status),
                  o.ok() ? strf("%llu", static_cast<unsigned long long>(
                                    o.result.totalCycles))
                         : "-",
                  strf("%.2f ms", o.seconds * 1e3)});
    }
    t.print(std::cout);
    std::printf("scenarios=%zu ok=%zu failed=%zu jobs=%u wall=%.3f s "
                "throughput=%.1f sims/s\n",
                rep.outcomes.size(), rep.okCount(), rep.failedCount(),
                rep.jobs, rep.wallSeconds, rep.throughput());
    // Non-Ok engine statuses (deadlock, crash) are legitimate
    // exploration outcomes; only configuration failures are errors.
    return rep.failedCount() == 0 ? 0 : 1;
}

/** Print one conformance report (the --replay path and divergences). */
void
printConformance(const gen::GenSpec &spec,
                 const gen::ConformanceReport &rep)
{
    std::printf("spec     : %s\n", gen::specToString(spec).c_str());
    std::printf("type     : %c\n", rep.designType);
    std::printf("baseline : %s\n", simStatusName(rep.baseline));
    std::printf("probes   : %u\n", rep.probesRun);
    if (rep.clean()) {
        std::printf("result   : conformant (no divergence)\n");
    } else {
        for (const auto &dv : rep.divergences)
            std::printf("DIVERGE  : [%s] %s\n", dv.oracle.c_str(),
                        dv.detail.c_str());
    }
}

int
cmdFuzz(const std::vector<std::string> &args, const JobsFlag &jobsFlag)
{
    std::uint64_t seed0 = 1;
    std::uint64_t count = 1000;
    const unsigned jobs = jobsFlag.pool();
    std::uint32_t probes = 4;
    double budget = 0.0;
    bool doShrink = true;
    bool large = false;
    std::size_t maxShrink = 800;
    std::string replay;

    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--seed" && i + 1 < args.size()) {
            seed0 = parseUnsigned("--seed", args[++i], 0,
                                  std::numeric_limits<
                                      std::uint64_t>::max() - (1u << 24));
        } else if (args[i] == "--count" && i + 1 < args.size()) {
            count = parseUnsigned("--count", args[++i], 1, 1u << 24);
        } else if (args[i] == "--large") {
            large = true;
        } else if (args[i] == "--probes" && i + 1 < args.size()) {
            probes = parseU32("--probes", args[++i], 0, 64);
        } else if (args[i] == "--budget" && i + 1 < args.size()) {
            budget = static_cast<double>(
                parseUnsigned("--budget", args[++i], 1, 86400));
        } else if (args[i] == "--no-shrink") {
            doShrink = false;
        } else if (args[i] == "--max-shrink" && i + 1 < args.size()) {
            maxShrink = static_cast<std::size_t>(
                parseUnsigned("--max-shrink", args[++i], 1, 1u << 20));
        } else if (args[i] == "--replay" && i + 1 < args.size()) {
            replay = args[++i];
        } else {
            return subUsageError("fuzz");
        }
    }

    gen::ConformanceOptions copts;
    copts.resimProbes = probes;
    copts.jobs = jobsFlag.lanes();
    copts.withVerify = opt::verifyEnabled();

    if (!replay.empty()) {
        const gen::GenSpec spec = gen::parseSpec(replay);
        const gen::ConformanceReport rep =
            gen::checkConformance(spec, copts);
        printConformance(spec, rep);
        return rep.clean() ? 0 : 1;
    }

    struct Slot
    {
        bool ran = false;
        char type = '?';
        SimStatus baseline = SimStatus::Ok;
        std::string summary; ///< Empty when conformant.
    };
    std::vector<Slot> slots(static_cast<std::size_t>(count));

    const gen::GenConfig cfg =
        large ? gen::largeGenConfig() : gen::GenConfig{};
    Stopwatch sw;
    batch::BatchRunner runner({jobs});
    runner.forEachIndex(slots.size(), [&](std::size_t i) {
        if (budget > 0.0 && sw.seconds() > budget)
            return; // budget exhausted: leave the seed unrun
        // Each fuzz seed is an entry point with its own correlation id,
        // so a divergence stitches to exactly one seed's events.
        obs::CorrelationScope seedScope(obs::newCorrelationId());
        Slot &s = slots[i];
        try {
            const gen::GenSpec spec = gen::generateSpec(seed0 + i, cfg);
            const gen::ConformanceReport rep =
                gen::checkConformance(spec, copts);
            s.type = rep.designType;
            s.baseline = rep.baseline;
            s.summary = rep.summary();
        } catch (const std::exception &e) {
            s.type = '?';
            s.summary = std::string("harness: ") + e.what();
        }
        if (!s.summary.empty())
            OMNISIM_LOG_WARN("fuzz.divergence", "seed=%llu %s",
                             static_cast<unsigned long long>(seed0 + i),
                             s.summary.c_str());
        s.ran = true;
    });
    const double wall = sw.seconds();

    std::size_t ran = 0, typeA = 0, typeB = 0, typeC = 0, deadlocks = 0;
    std::vector<std::size_t> divergent;
    for (std::size_t i = 0; i < slots.size(); ++i) {
        const Slot &s = slots[i];
        if (!s.ran)
            continue;
        ++ran;
        typeA += s.type == 'A';
        typeB += s.type == 'B';
        typeC += s.type == 'C';
        deadlocks += s.baseline == SimStatus::Deadlock;
        if (!s.summary.empty())
            divergent.push_back(i);
    }

    std::printf("fuzz: %zu/%llu seeds [%llu..%llu] in %.2f s "
                "(%.1f designs/s, %u jobs)\n",
                ran, static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(seed0),
                static_cast<unsigned long long>(seed0 + count - 1), wall,
                wall > 0 ? static_cast<double>(ran) / wall : 0.0,
                runner.jobs());
    std::printf("types: A=%zu B=%zu C=%zu; deadlock baselines=%zu\n",
                typeA, typeB, typeC, deadlocks);

    if (divergent.empty()) {
        std::printf("all oracles agree: no divergence\n");
        return 0;
    }

    std::printf("\n%zu divergent seed(s):\n", divergent.size());
    constexpr std::size_t kMaxShrunk = 8;
    for (std::size_t k = 0; k < divergent.size(); ++k) {
        const std::size_t i = divergent[k];
        const std::uint64_t seed = seed0 + i;
        std::printf("\n--- seed %llu ---\n",
                    static_cast<unsigned long long>(seed));
        std::printf("divergence: %s\n", slots[i].summary.c_str());
        gen::GenSpec spec = gen::generateSpec(seed, cfg);
        gen::GenSpec repro = spec; // what the replay line will carry
        if (doShrink && k < kMaxShrunk) {
            const gen::FailPredicate fails =
                [&](const gen::GenSpec &cand) {
                    try {
                        return !gen::checkConformance(cand, copts)
                                    .clean();
                    } catch (const std::exception &) {
                        return true; // a harness crash is also a bug
                    }
                };
            // Nothing in the shrink/report path may abort the loop: a
            // divergence that IS a harness exception must still print
            // its replay line and let the remaining seeds report.
            try {
                const gen::ShrinkResult sr =
                    gen::shrinkSpec(spec, fails, maxShrink);
                std::printf("shrunk (%zu/%zu candidates accepted):\n",
                            sr.accepted, sr.attempts);
                printConformance(sr.spec,
                                 gen::checkConformance(sr.spec, copts));
                repro = sr.spec;
            } catch (const std::exception &e) {
                std::printf("shrink/replay raised: %s\n", e.what());
            }
        } else {
            std::printf("spec: %s\n", gen::specToString(spec).c_str());
        }
        std::printf("replay: omnisim_cli fuzz --replay '%s'\n",
                    gen::specToString(repro).c_str());
    }
    return 1;
}

int
cmdServe(const std::vector<std::string> &args, const JobsFlag &jobs)
{
    serve::ServeOptions opts;
    opts.jobs = jobs.pool();
    opts.engine.jobs = jobs.lanes();
    std::string socketPath;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--store" && i + 1 < args.size()) {
            opts.storeDir = args[++i];
        } else if (args[i] == "--socket" && i + 1 < args.size()) {
            socketPath = args[++i];
        } else if (args[i] == "--lazy") {
            opts.engine.eagerWriteStall = false;
        } else {
            return subUsageError("serve");
        }
    }

    serve::SimService svc(opts);
    if (!socketPath.empty())
        return serve::serveUnixSocket(svc, socketPath);
    return serve::serveLines(svc, std::cin, std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];
    if (cmd == "simulate")
        cmd = "run"; // alias: the serve protocol's op name
    std::vector<std::string> rest(argv + 2, argv + argc);

    // Global --trace-out FILE: record spans for the whole invocation
    // (any subcommand) and export Chrome trace_event JSON on exit.
    std::string traceOut;
    for (std::size_t i = 0; i < rest.size();) {
        if (rest[i] == "--trace-out") {
            if (i + 1 >= rest.size()) {
                std::fprintf(stderr,
                             "error: --trace-out needs a file path\n");
                return 2;
            }
            traceOut = rest[i + 1];
            rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i),
                       rest.begin() + static_cast<std::ptrdiff_t>(i + 2));
        } else {
            ++i;
        }
    }

    // Global structured-diagnostics flags, pre-scanned like --trace-out:
    //   --log-out FILE    JSON-lines event sink (default: legacy stderr)
    //   --log-level L     sink threshold (trace|debug|info|warn|error)
    //   --crash-dir DIR   where flight-recorder crash dumps land
    //   --inject-panic    hidden: fire an omnisim_assert after setup,
    //                     exercising the crash-dump path end to end
    //                     (used by the ctest crash-schema smoke)
    std::string logOut;
    std::string crashDir;
    obs::LogLevel logLevel = obs::LogLevel::Warn;
    bool injectPanic = false;
    for (std::size_t i = 0; i < rest.size();) {
        if (rest[i] == "--log-out" || rest[i] == "--log-level" ||
            rest[i] == "--crash-dir") {
            if (i + 1 >= rest.size()) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             rest[i].c_str());
                return 2;
            }
            if (rest[i] == "--log-out") {
                logOut = rest[i + 1];
            } else if (rest[i] == "--crash-dir") {
                crashDir = rest[i + 1];
            } else if (!obs::parseLogLevel(rest[i + 1], logLevel)) {
                std::fprintf(stderr,
                             "error: --log-level expects trace|debug|"
                             "info|warn|error, got '%s'\n",
                             rest[i + 1].c_str());
                return 2;
            }
            rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i),
                       rest.begin() + static_cast<std::ptrdiff_t>(i + 2));
        } else if (rest[i] == "--inject-panic") {
            injectPanic = true;
            rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i));
        } else if (rest[i] == "--verify") {
            opt::setVerifyEnabled(true);
            rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }

    // Global --jobs N: one knob for every subcommand's worker pool and
    // the engine's relaxation lanes (see JobsFlag).
    JobsFlag jobsFlag;
    for (std::size_t i = 0; i < rest.size();) {
        if (rest[i] == "--jobs") {
            if (i + 1 >= rest.size()) {
                std::fprintf(stderr, "error: --jobs needs a count\n");
                return 2;
            }
            try {
                jobsFlag.value = parseU32("--jobs", rest[i + 1], 0, 4096);
            } catch (const UsageError &e) {
                std::fprintf(stderr, "error: %s\n", e.what());
                return 2;
            }
            jobsFlag.set = true;
            rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i),
                       rest.begin() + static_cast<std::ptrdiff_t>(i + 2));
        } else {
            ++i;
        }
    }

    // serve/dse/batch/fuzz answer --help with their focused usage on
    // stdout (exit 0); their malformed invocations print the same text
    // to stderr (exit 2) instead of the generic top-level blob.
    if (const char *text = subcommandUsage(cmd); text && wantsHelp(rest)) {
        std::fputs(text, stdout);
        return 0;
    }

    // Arm the structured logger for the whole invocation. The legacy
    // stderr sink (active unless --log-out redirects) reproduces the
    // "warn: ..." lines the CLI always printed, still silenced by the
    // setLogQuiet(true) above, so default output is unchanged.
    obs::setLogEnabled(true);
    obs::setLogLevel(logLevel);
    if (!logOut.empty() && !obs::setLogFileSink(logOut)) {
        std::fprintf(stderr, "error: cannot open log file '%s'\n",
                     logOut.c_str());
        return 2;
    }
    if (!crashDir.empty())
        obs::setCrashDumpDir(crashDir);
    obs::installCrashHandlers();

    // The invocation is an entry point: one correlation id covers the
    // whole subcommand (nested entry points — batch scenarios, DSE
    // evaluations, fuzz seeds — stack their own ids on top).
    const obs::CorrelationId cid = obs::newCorrelationId();
    obs::CorrelationScope cscope(cid);
    OMNISIM_LOG_INFO("cli.invoke", "cmd=%s", cmd.c_str());

    if (!traceOut.empty())
        obs::traceStart();
    if (injectPanic)
        omnisim_assert(false, "injected panic (--inject-panic)");
    const int code = [&]() -> int {
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "info" && !rest.empty())
            return cmdInfo(rest[0]);
        if (cmd == "dot" && !rest.empty()) {
            const Design d = designs::findDesign(rest[0]).build();
            const bool optimized =
                std::find(rest.begin() + 1, rest.end(), "--optimized") !=
                rest.end();
            std::fputs(optimized
                           ? toDotRun(d, opt::OptLevel::O1).c_str()
                           : toDot(d).c_str(),
                       stdout);
            return 0;
        }
        if (cmd == "run" && !rest.empty()) {
            return cmdRun(rest[0],
                          {rest.begin() + 1, rest.end()}, jobsFlag);
        }
        if (cmd == "sweep" && !rest.empty()) {
            return cmdSweep(rest[0],
                            {rest.begin() + 1, rest.end()}, jobsFlag);
        }
        if (cmd == "dse") {
            if (rest.empty())
                return subUsageError("dse");
            return cmdDse(rest[0],
                          {rest.begin() + 1, rest.end()}, jobsFlag);
        }
        if (cmd == "batch")
            return cmdBatch(rest, jobsFlag);
        if (cmd == "serve")
            return cmdServe(rest, jobsFlag);
        if (cmd == "fuzz")
            return cmdFuzz(rest, jobsFlag);
    } catch (const UsageError &e) {
        OMNISIM_LOG_ERROR("cli.usage_error", "cmd=%s: %s", cmd.c_str(),
                          e.what());
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const FatalError &e) {
        OMNISIM_LOG_ERROR("cli.fatal", "cmd=%s: %s", cmd.c_str(),
                          e.what());
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        OMNISIM_LOG_ERROR("cli.error", "cmd=%s: %s", cmd.c_str(),
                          e.what());
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
    }();

    if (!traceOut.empty()) {
        obs::traceStop();
        if (!obs::traceWriteJson(traceOut)) {
            std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                         traceOut.c_str());
            return code == 0 ? 1 : code;
        }
    }
    return code;
}
