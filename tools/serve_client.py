#!/usr/bin/env python3
"""Smoke client for `omnisim_cli serve`.

Starts the service as a subprocess, drives one protocol session over
stdin/stdout — simulate, resimulate (warm), an intentionally bad
request, stats, shutdown — and checks every response: ids echo back,
ok/error flags are right, the resimulated cycle count matches the
simulated one under identical depths, and shutdown answers last.

Exit status 0 on success; nonzero with a diagnostic on any mismatch.
Used by the `cli_serve_client_smoke` ctest entry and handy manually:

    python3 tools/serve_client.py [--store DIR] path/to/omnisim_cli
"""

import argparse
import json
import shutil
import subprocess
import sys

DESIGN = "fifo_chain"

REQUESTS = [
    {"id": 1, "op": "simulate", "design": DESIGN, "depths": {"a": 4, "b": 4}},
    {"id": 2, "op": "resimulate", "design": DESIGN,
     "depths": {"a": 4, "b": 4}},
    {"id": 3, "op": "resimulate", "design": DESIGN,
     "depths": {"a": 16, "b": 16}},
    {"id": 4, "op": "simulate", "design": "no_such_design"},
    {"id": 5, "op": "stats"},
    {"id": 6, "op": "shutdown"},
]


def fail(msg):
    print(f"serve_client: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--store", default=None,
                        help="run-store directory (wiped first)")
    parser.add_argument("cli", help="path to omnisim_cli")
    args = parser.parse_args()

    cmd = [args.cli, "serve", "--jobs", "2"]
    if args.store:
        shutil.rmtree(args.store, ignore_errors=True)
        cmd += ["--store", args.store]

    # Interactive session: issue the cold simulate alone and wait for
    # its response (so the warm probe genuinely finds a completed run),
    # then stream the rest concurrently. Reading per line also verifies
    # the service flushes each response immediately.
    proc = subprocess.Popen(cmd, stdin=subprocess.PIPE,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    responses = []

    def send(req):
        proc.stdin.write(json.dumps(req) + "\n")
        proc.stdin.flush()

    def read_one():
        line = proc.stdout.readline()
        if not line.strip():
            fail("service closed the stream early")
        try:
            responses.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail(f"unparseable response line: {e}\n{line}")

    send(REQUESTS[0])
    read_one()
    for req in REQUESTS[1:]:
        send(req)
    proc.stdin.close()
    for _ in REQUESTS[1:]:
        read_one()

    proc.wait(timeout=120)
    if proc.returncode != 0:
        fail(f"serve exited {proc.returncode}: "
             f"{proc.stderr.read().strip()}")
    if proc.stdout.readline().strip():
        fail("unexpected output after the shutdown response")

    by_id = {r.get("id"): r for r in responses}
    if set(by_id) != {r["id"] for r in REQUESTS}:
        fail(f"response ids {sorted(by_id)} != request ids")

    # 1: cold simulate succeeds with a cycle count.
    sim = by_id[1]
    if not sim.get("ok") or sim.get("status") != "Ok":
        fail(f"simulate failed: {sim}")
    if not isinstance(sim.get("cycles"), int) or sim["cycles"] <= 0:
        fail(f"simulate returned no cycles: {sim}")

    # 2: resimulate at the same depths is warm — either a memo re-hit
    # of the simulate or an incremental serve — and bit-identical.
    resim = by_id[2]
    warm = resim.get("method") == "incremental" or resim.get("cached")
    if not resim.get("ok") or not warm:
        fail(f"resimulate not served warm: {resim}")
    if resim.get("cycles") != sim["cycles"]:
        fail(f"resimulate cycles {resim.get('cycles')} != simulate "
             f"cycles {sim['cycles']}")

    # 3: a genuinely new depth vector is served by §7.2 incremental
    # re-simulation against the stored run, not a fresh trace.
    deepened = by_id[3]
    if not deepened.get("ok") or deepened.get("method") != "incremental":
        fail(f"deepened resimulate not incremental: {deepened}")

    # 4: the bad design is an isolated error, not a dead server.
    bad = by_id[4]
    if bad.get("ok") or "no_such_design" not in bad.get("error", ""):
        fail(f"bad design not rejected cleanly: {bad}")

    # 5: stats still served after the error.
    if not by_id[5].get("ok"):
        fail(f"stats failed: {by_id[5]}")

    # 6: shutdown acknowledges and is the final line of the session.
    shut = by_id[6]
    if not shut.get("ok"):
        fail(f"shutdown failed: {shut}")
    if responses[-1]["id"] != 6:
        fail("shutdown response was not last")

    print(f"serve_client: OK ({len(responses)} responses, "
          f"{sim['cycles']} cycles cold == warm)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
