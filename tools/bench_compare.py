#!/usr/bin/env python3
"""Gate the bench trajectory: compare fresh BENCH_*.json files against a
committed baseline and fail on a geomean regression.

The committed baseline (bench/baseline.json) names, per bench file, a
set of dotted metric paths with their reference values. Every metric is
machine-independent and higher-is-better: hit rates, same-run speedup
ratios, elimination fractions, overhead ratios — never absolute seconds
or req/s, which track the host instead of the code. Each metric
contributes current/baseline to one geomean; the gate fails when that
geomean drops below 1 - tolerance (default 15%).

Per-metric ratios are winsorized into [0.25, 4.0] before the geomean so
a single noisy smoke-size measurement (warm-vs-cold speedups swing with
scheduler luck) cannot swamp the aggregate in either direction.

Usage:
  bench_compare.py [--baseline bench/baseline.json] [--bench-dir build]
                   [--tolerance PCT]
  bench_compare.py --update          # rewrite the baseline from fresh files

Exit status: 0 ok, 1 regression, 2 baseline/bench files unusable.
"""

import argparse
import json
import math
import os
import sys

SCHEMA = "omnisim-bench-baseline-1"
CLAMP_LO, CLAMP_HI = 0.25, 4.0


def fail(msg, code=2):
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(code)


def lookup(doc, dotted):
    """Resolve 'totals.warm_speedup_geomean' against a parsed JSON doc."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node if isinstance(node, (int, float)) else None


def load_bench(bench_dir, name):
    path = os.path.join(bench_dir, name)
    if not os.path.exists(path):
        return None
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: unreadable bench file: {e}")


def compare(baseline, bench_dir, tolerance_pct):
    log_ratios = []
    compared = 0
    ok = True
    for fname, metrics in sorted(baseline["metrics"].items()):
        doc = load_bench(bench_dir, fname)
        if doc is None:
            print(f"  {fname}: MISSING (skipped; run the bench smokes first)")
            continue
        for dotted, base in sorted(metrics.items()):
            cur = lookup(doc, dotted)
            if cur is None:
                fail(f"{fname}: metric '{dotted}' missing from fresh run "
                     f"(schema drift? refresh with --update)")
            if base <= 0:
                fail(f"baseline value for {fname}:{dotted} is {base}; "
                     f"metrics must be positive")
            ratio = cur / base
            clamped = min(max(ratio, CLAMP_LO), CLAMP_HI)
            log_ratios.append(math.log(clamped))
            compared += 1
            flag = "" if ratio >= 1.0 - tolerance_pct / 100.0 else "  <-- low"
            print(f"  {fname}: {dotted}: {cur:g} vs baseline {base:g} "
                  f"(ratio {ratio:.3f}){flag}")
    if compared == 0:
        fail("no metrics compared; no BENCH_*.json files found")
    geomean = math.exp(sum(log_ratios) / len(log_ratios))
    floor = 1.0 - tolerance_pct / 100.0
    verdict = "ok" if geomean >= floor else "REGRESSION"
    print(f"bench_compare: geomean ratio {geomean:.3f} over {compared} "
          f"metrics (gate >= {floor:.2f}, {verdict})")
    if geomean < floor:
        ok = False
    return ok


def update(baseline, bench_dir, baseline_path):
    """Re-read every baselined metric from fresh files and rewrite."""
    fresh = {}
    for fname, metrics in sorted(baseline["metrics"].items()):
        doc = load_bench(bench_dir, fname)
        if doc is None:
            fail(f"--update: {fname} not found in {bench_dir}")
        fresh[fname] = {}
        for dotted in sorted(metrics):
            cur = lookup(doc, dotted)
            if cur is None:
                fail(f"--update: {fname}: metric '{dotted}' missing")
            fresh[fname][dotted] = round(float(cur), 6)
    baseline["metrics"] = fresh
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_compare: baseline refreshed at {baseline_path}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="bench/baseline.json",
                    help="committed baseline file (default %(default)s)")
    ap.add_argument("--bench-dir", default="build",
                    help="directory holding fresh BENCH_*.json "
                         "(default %(default)s)")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="max geomean regression percent "
                         "(default: the baseline's tolerance_pct)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline's values from fresh files")
    args = ap.parse_args()

    try:
        with open(args.baseline, encoding="utf-8") as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.baseline}: unreadable baseline: {e}")
    if baseline.get("schema") != SCHEMA:
        fail(f"{args.baseline}: expected schema '{SCHEMA}', "
             f"got {baseline.get('schema')!r}")
    if not isinstance(baseline.get("metrics"), dict):
        fail(f"{args.baseline}: 'metrics' must be an object")

    if args.update:
        update(baseline, args.bench_dir, args.baseline)
        return

    tolerance = (args.tolerance if args.tolerance is not None
                 else float(baseline.get("tolerance_pct", 15)))
    if not compare(baseline, args.bench_dir, tolerance):
        sys.exit(1)


if __name__ == "__main__":
    main()
