#!/usr/bin/env python3
"""Schema check for omnisim's Chrome trace_event export.

Runs `omnisim_cli simulate <design> --trace-out FILE.json`, then
validates the file against what Perfetto / chrome://tracing require to
load it: a `traceEvents` array whose complete events ("ph":"X") carry
name/ts/dur/pid/tid with sane values. On top of the generic schema it
asserts the spans omnisim promises: at least one `compile.*` pass span
and the `omnisim.run` / `omnisim.execute` engine-phase spans.

Exit status 0 on success; nonzero with a diagnostic on any mismatch.
Used by the `cli_trace_schema_smoke` ctest entry and handy manually:

    python3 tools/check_trace.py [--design NAME] path/to/omnisim_cli
"""

import argparse
import json
import numbers
import os
import subprocess
import sys
import tempfile

REQUIRED_SPANS = ["compile.run", "omnisim.run", "omnisim.execute"]


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_event(i, ev):
    if not isinstance(ev, dict):
        fail(f"traceEvents[{i}] is not an object")
    ph = ev.get("ph")
    if ph == "M":
        return None  # metadata (process_name etc.) is free-form
    if ph != "X":
        fail(f"traceEvents[{i}] has ph={ph!r}, expected complete "
             "events ('X') or metadata ('M')")
    for key in ("name", "ts", "dur", "pid", "tid"):
        if key not in ev:
            fail(f"traceEvents[{i}] is missing {key!r}")
    if not isinstance(ev["name"], str) or not ev["name"]:
        fail(f"traceEvents[{i}] has a non-string or empty name")
    for key in ("ts", "dur"):
        if not isinstance(ev[key], numbers.Real) or ev[key] < 0:
            fail(f"traceEvents[{i}].{key} = {ev[key]!r} is not a "
                 "non-negative number")
    return ev["name"]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--design", default="fifo_chain")
    ap.add_argument("cli", help="path to omnisim_cli")
    args = ap.parse_args()

    fd, path = tempfile.mkstemp(suffix=".json", prefix="omnisim_trace_")
    os.close(fd)
    try:
        cmd = [args.cli, "simulate", args.design, "--trace-out", path]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, timeout=300)
        if proc.returncode != 0:
            fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                 f"{proc.stdout.decode(errors='replace')}")

        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"trace file is not valid JSON: {e}")

        if not isinstance(doc, dict):
            fail("top level is not an object")
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            fail("traceEvents is missing or not an array")
        if not events:
            fail("traceEvents is empty")

        names = set()
        spans = 0
        for i, ev in enumerate(events):
            name = check_event(i, ev)
            if name is not None:
                names.add(name)
                spans += 1
        if spans == 0:
            fail("no complete ('X') span events in the trace")

        for want in REQUIRED_SPANS:
            if want not in names:
                fail(f"expected span {want!r} not present "
                     f"(got: {sorted(names)})")
        if not any(n.startswith("compile.") and n != "compile.run"
                   for n in names):
            fail(f"no per-pass compile.* span present "
                 f"(got: {sorted(names)})")

        print(f"check_trace: OK: {spans} spans, "
              f"{len(names)} distinct names, design {args.design}")
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass


if __name__ == "__main__":
    main()
