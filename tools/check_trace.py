#!/usr/bin/env python3
"""Schema checks for omnisim's diagnostic outputs.

Three modes, selected with --mode (default: trace):

trace  Runs `omnisim_cli simulate <design> --trace-out FILE.json`, then
       validates the file against what Perfetto / chrome://tracing
       require to load it: a `traceEvents` array whose complete events
       ("ph":"X") carry name/ts/dur/pid/tid with sane values plus the
       correlation id under args.cid. On top of the generic schema it
       asserts the spans omnisim promises: at least one `compile.*`
       pass span and the `omnisim.run` / `omnisim.execute`
       engine-phase spans.

log    Runs `omnisim_cli run <design> --log-out FILE --log-level
       debug`, then validates the structured log stream: one JSON
       object per line carrying ts_ns/lvl/tid/cid/event/msg, known
       level names, timestamps monotone nondecreasing per thread, a
       correlated `cli.invoke` entry, and the promised `engine.run`
       event.

crash  Runs `omnisim_cli run <design> --crash-dir DIR --inject-panic`
       (a hidden flag that trips omnisim_assert after setup), expects
       the process to die, and validates the flight-recorder dump
       `omnisim-crash-<pid>.json`: schema tag, reason, correlation id,
       a globally time-sorted event tail with per-event schema, span
       stacks, and the metrics snapshot.

Exit status 0 on success; nonzero with a diagnostic on any mismatch.
Used by the `cli_trace_schema_smoke`, `cli_log_schema_smoke` and
`cli_crash_dump_smoke` ctest entries and handy manually:

    python3 tools/check_trace.py [--mode M] [--design NAME] path/to/omnisim_cli
"""

import argparse
import glob
import json
import numbers
import os
import shutil
import subprocess
import sys
import tempfile

REQUIRED_SPANS = ["compile.run", "omnisim.run", "omnisim.execute"]
LOG_LEVELS = {"trace", "debug", "info", "warn", "error"}
EVENT_KEYS = ("ts_ns", "lvl", "tid", "cid", "event", "msg")
CRASH_SCHEMA = "omnisim-flight-1"


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def run_cli(cmd, expect_death=False):
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, timeout=300)
    text = proc.stdout.decode(errors="replace")
    if expect_death:
        if proc.returncode == 0:
            fail(f"{' '.join(cmd)} exited 0, expected a crash:\n{text}")
    elif proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n{text}")
    return text


def check_log_record(where, ev):
    """Validate one structured event object (log line or dump entry)."""
    if not isinstance(ev, dict):
        fail(f"{where} is not an object")
    for key in EVENT_KEYS:
        if key not in ev:
            fail(f"{where} is missing {key!r}")
    for key in ("ts_ns", "tid", "cid"):
        v = ev[key]
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(f"{where}.{key} = {v!r} is not a non-negative integer")
    if ev["tid"] < 1:
        fail(f"{where}.tid = {ev['tid']!r} (thread ids start at 1)")
    if ev["lvl"] not in LOG_LEVELS:
        fail(f"{where}.lvl = {ev['lvl']!r} is not a known level")
    for key in ("event", "msg"):
        if not isinstance(ev[key], str):
            fail(f"{where}.{key} is not a string")
    if not ev["event"]:
        fail(f"{where}.event is empty")


# ---------------------------------------------------------------------------
# trace mode
# ---------------------------------------------------------------------------

def check_trace_event(i, ev):
    if not isinstance(ev, dict):
        fail(f"traceEvents[{i}] is not an object")
    ph = ev.get("ph")
    if ph == "M":
        return None  # metadata (process_name etc.) is free-form
    if ph != "X":
        fail(f"traceEvents[{i}] has ph={ph!r}, expected complete "
             "events ('X') or metadata ('M')")
    for key in ("name", "ts", "dur", "pid", "tid"):
        if key not in ev:
            fail(f"traceEvents[{i}] is missing {key!r}")
    if not isinstance(ev["name"], str) or not ev["name"]:
        fail(f"traceEvents[{i}] has a non-string or empty name")
    for key in ("ts", "dur"):
        if not isinstance(ev[key], numbers.Real) or ev[key] < 0:
            fail(f"traceEvents[{i}].{key} = {ev[key]!r} is not a "
                 "non-negative number")
    args = ev.get("args")
    if not isinstance(args, dict):
        fail(f"traceEvents[{i}] is missing the args object")
    cid = args.get("cid")
    if not isinstance(cid, int) or isinstance(cid, bool) or cid < 0:
        fail(f"traceEvents[{i}].args.cid = {cid!r} is not a "
             "non-negative integer")
    return ev["name"], cid


def mode_trace(args):
    fd, path = tempfile.mkstemp(suffix=".json", prefix="omnisim_trace_")
    os.close(fd)
    try:
        run_cli([args.cli, "simulate", args.design, "--trace-out", path])
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"trace file is not valid JSON: {e}")

        if not isinstance(doc, dict):
            fail("top level is not an object")
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            fail("traceEvents is missing or not an array")
        if not events:
            fail("traceEvents is empty")

        names = set()
        spans = 0
        correlated = 0
        for i, ev in enumerate(events):
            got = check_trace_event(i, ev)
            if got is not None:
                name, cid = got
                names.add(name)
                spans += 1
                correlated += cid > 0
        if spans == 0:
            fail("no complete ('X') span events in the trace")
        if correlated == 0:
            fail("no span carries a nonzero args.cid — the CLI "
                 "invocation correlation id is not propagating")

        for want in REQUIRED_SPANS:
            if want not in names:
                fail(f"expected span {want!r} not present "
                     f"(got: {sorted(names)})")
        if not any(n.startswith("compile.") and n != "compile.run"
                   for n in names):
            fail(f"no per-pass compile.* span present "
                 f"(got: {sorted(names)})")

        print(f"check_trace: OK: {spans} spans ({correlated} correlated), "
              f"{len(names)} distinct names, design {args.design}")
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# log mode
# ---------------------------------------------------------------------------

def mode_log(args):
    fd, path = tempfile.mkstemp(suffix=".jsonl", prefix="omnisim_log_")
    os.close(fd)
    try:
        run_cli([args.cli, "run", args.design,
                 "--log-out", path, "--log-level", "debug"])
        with open(path, encoding="utf-8") as f:
            lines = [l for l in f.read().splitlines() if l]
        if not lines:
            fail("log file is empty")

        last_ts = {}
        events = set()
        cids = set()
        for i, line in enumerate(lines):
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"log line {i} is not valid JSON: {e}: {line!r}")
            check_log_record(f"log line {i}", ev)
            tid, ts = ev["tid"], ev["ts_ns"]
            if tid in last_ts and ts < last_ts[tid]:
                fail(f"log line {i}: ts_ns {ts} < {last_ts[tid]} for "
                     f"tid {tid} — per-thread timestamps must be "
                     "monotone nondecreasing")
            last_ts[tid] = ts
            events.add(ev["event"])
            cids.add(ev["cid"])

        for want in ("cli.invoke", "engine.run"):
            if want not in events:
                fail(f"expected event {want!r} not present "
                     f"(got: {sorted(events)})")
        if not any(c > 0 for c in cids):
            fail("no event carries a nonzero cid")

        print(f"check_trace: OK: {len(lines)} log events, "
              f"{len(events)} distinct names, {len(last_ts)} threads, "
              f"design {args.design}")
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# crash mode
# ---------------------------------------------------------------------------

def mode_crash(args):
    tmpdir = tempfile.mkdtemp(prefix="omnisim_crash_")
    try:
        run_cli([args.cli, "run", args.design,
                 "--crash-dir", tmpdir, "--inject-panic"],
                expect_death=True)
        dumps = glob.glob(os.path.join(tmpdir, "omnisim-crash-*.json"))
        if len(dumps) != 1:
            fail(f"expected exactly one omnisim-crash-*.json in {tmpdir}, "
                 f"found {len(dumps)}")
        try:
            with open(dumps[0], encoding="utf-8") as f:
                doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"crash dump is not valid JSON: {e}")

        if doc.get("schema") != CRASH_SCHEMA:
            fail(f"schema = {doc.get('schema')!r}, expected "
                 f"{CRASH_SCHEMA!r}")
        for key in ("pid", "reason", "correlation_id", "dropped",
                    "skipped_threads", "events", "spans", "metrics"):
            if key not in doc:
                fail(f"crash dump is missing {key!r}")
        if "injected panic" not in doc["reason"]:
            fail(f"reason = {doc['reason']!r} does not mention the "
                 "injected panic")
        if not isinstance(doc["correlation_id"], int) or \
                doc["correlation_id"] < 1:
            fail(f"correlation_id = {doc['correlation_id']!r} — the CLI "
                 "invocation id must be stamped on the dump")

        events = doc["events"]
        if not isinstance(events, list) or not events:
            fail("events is missing, not an array, or empty")
        prev_ts = 0
        names = set()
        for i, ev in enumerate(events):
            check_log_record(f"events[{i}]", ev)
            if "seq" not in ev:
                fail(f"events[{i}] is missing 'seq'")
            if ev["ts_ns"] < prev_ts:
                fail(f"events[{i}]: dump events are not globally "
                     "time-sorted")
            prev_ts = ev["ts_ns"]
            names.add(ev["event"])
        if "cli.invoke" not in names:
            fail(f"the event tail does not include cli.invoke "
                 f"(got: {sorted(names)})")
        if not isinstance(doc["spans"], list):
            fail("spans is not an array")
        if not isinstance(doc["metrics"], dict):
            fail("metrics is not an object")

        print(f"check_trace: OK: crash dump with {len(events)} events, "
              f"{len(doc['spans'])} span stacks, cid "
              f"{doc['correlation_id']}, design {args.design}")
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--mode", choices=["trace", "log", "crash"],
                    default="trace")
    ap.add_argument("--design", default="fifo_chain")
    ap.add_argument("cli", help="path to omnisim_cli")
    args = ap.parse_args()
    {"trace": mode_trace, "log": mode_log, "crash": mode_crash}[args.mode](args)


if __name__ == "__main__":
    main()
