/**
 * @file
 * Wall-clock stopwatch used by the benchmark harnesses.
 */

#ifndef OMNISIM_SUPPORT_STOPWATCH_HH
#define OMNISIM_SUPPORT_STOPWATCH_HH

#include <chrono>

namespace omnisim
{

/** Monotonic wall-clock stopwatch. Starts running on construction. */
class Stopwatch
{
  public:
    Stopwatch() { restart(); }

    /** Reset the start point to now. */
    void restart() { start_ = Clock::now(); }

    /** @return elapsed seconds since construction/restart. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** @return elapsed microseconds since construction/restart. */
    double micros() const { return seconds() * 1e6; }

    /** @return elapsed milliseconds since construction/restart. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace omnisim

#endif // OMNISIM_SUPPORT_STOPWATCH_HH
