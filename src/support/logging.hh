/**
 * @file
 * Error-reporting and status-message helpers in the gem5 idiom.
 *
 * panic()  — an internal simulator invariant was violated (a bug in this
 *            library). Aborts.
 * fatal()  — the user supplied an invalid design or configuration. Throws
 *            FatalError so that library embedders and tests can recover.
 * warn()   — something is suspicious but simulation can continue.
 * inform() — plain status output.
 */

#ifndef OMNISIM_SUPPORT_LOGGING_HH
#define OMNISIM_SUPPORT_LOGGING_HH

#include <stdexcept>
#include <string>

namespace omnisim
{

/** Exception thrown by fatal(): a user-level configuration/design error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * printf-style string formatting into a std::string.
 *
 * @param fmt printf format string.
 * @return The formatted text.
 */
std::string strf(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report an internal simulator bug and abort the process. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Report a user-level error by throwing FatalError. */
[[noreturn]] void fatalImpl(const std::string &msg);

/** Emit a warning to stderr. */
void warn(const std::string &msg);

/** Emit a status message to stderr. */
void inform(const std::string &msg);

/** Global switch used by tests/benches to silence warn()/inform(). */
void setLogQuiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool logQuiet();

} // namespace omnisim

#define omnisim_panic(...) \
    ::omnisim::panicImpl(__FILE__, __LINE__, ::omnisim::strf(__VA_ARGS__))

#define omnisim_fatal(...) \
    ::omnisim::fatalImpl(::omnisim::strf(__VA_ARGS__))

/** Assert an internal invariant; compiled in all build types. */
#define omnisim_assert(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::omnisim::panicImpl(__FILE__, __LINE__,                       \
                std::string("assertion failed: " #cond " — ") +            \
                ::omnisim::strf(__VA_ARGS__));                             \
        }                                                                  \
    } while (0)

#endif // OMNISIM_SUPPORT_LOGGING_HH
