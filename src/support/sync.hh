/**
 * @file
 * Capability-annotated synchronization primitives: thin wrappers over
 * the standard mutexes and condition variables that carry Clang
 * thread-safety-analysis attributes, so every guarded field, locking
 * function and lock-order edge in the tree is checked statically by the
 * clang CI job (-Wthread-safety -Wthread-safety-beta -Werror).
 *
 * Under any other compiler the annotation macros expand to nothing and
 * every wrapper inlines to exactly the std type it wraps — zero
 * behavioral or performance delta for the GCC/MSVC builds.
 *
 * Conventions (see README "Static analysis"):
 *
 *  - Shared state is declared `sync::Mutex mu;` + `T field
 *    OMNISIM_GUARDED_BY(mu);`. The analysis then rejects any access to
 *    `field` outside a region holding `mu`.
 *  - Functions that lock internally are annotated OMNISIM_EXCLUDES(mu);
 *    functions that expect the caller to hold the lock take
 *    OMNISIM_REQUIRES(mu) (the `...Locked` naming convention).
 *  - Lock-order edges (deadlock freedom) are declared on the mutex
 *    member itself with OMNISIM_ACQUIRED_BEFORE / _AFTER; re-introducing
 *    an inversion then fails compilation under -Wthread-safety-beta.
 *  - Condition predicates are written as explicit `while (!pred)
 *    cv.wait(lk);` loops instead of the predicate overload, so the
 *    guarded reads happen in the annotated enclosing function rather
 *    than in an unannotated lambda body.
 */

#ifndef OMNISIM_SUPPORT_SYNC_HH
#define OMNISIM_SUPPORT_SYNC_HH

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define OMNISIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OMNISIM_THREAD_ANNOTATION(x) // no-op outside clang
#endif

#define OMNISIM_CAPABILITY(x) OMNISIM_THREAD_ANNOTATION(capability(x))
#define OMNISIM_SCOPED_CAPABILITY OMNISIM_THREAD_ANNOTATION(scoped_lockable)
#define OMNISIM_GUARDED_BY(x) OMNISIM_THREAD_ANNOTATION(guarded_by(x))
#define OMNISIM_PT_GUARDED_BY(x) OMNISIM_THREAD_ANNOTATION(pt_guarded_by(x))
#define OMNISIM_ACQUIRE(...) \
    OMNISIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define OMNISIM_ACQUIRE_SHARED(...) \
    OMNISIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define OMNISIM_RELEASE(...) \
    OMNISIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define OMNISIM_RELEASE_SHARED(...) \
    OMNISIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define OMNISIM_TRY_ACQUIRE(...) \
    OMNISIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define OMNISIM_REQUIRES(...) \
    OMNISIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define OMNISIM_REQUIRES_SHARED(...) \
    OMNISIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define OMNISIM_EXCLUDES(...) \
    OMNISIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define OMNISIM_ACQUIRED_BEFORE(...) \
    OMNISIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define OMNISIM_ACQUIRED_AFTER(...) \
    OMNISIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define OMNISIM_RETURN_CAPABILITY(x) \
    OMNISIM_THREAD_ANNOTATION(lock_returned(x))
#define OMNISIM_NO_THREAD_SAFETY_ANALYSIS \
    OMNISIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace omnisim::sync
{

/** std::mutex carrying the "mutex" capability. */
class OMNISIM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() OMNISIM_ACQUIRE() { mu_.lock(); }
    void unlock() OMNISIM_RELEASE() { mu_.unlock(); }
    bool try_lock() OMNISIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

    /** The wrapped mutex, for CondVar::wait. The analysis does not see
     *  the wait's release/reacquire (which nets out to "still held"). */
    std::mutex &native() { return mu_; }

  private:
    std::mutex mu_;
};

/** std::shared_mutex carrying the "shared_mutex" capability. */
class OMNISIM_CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() OMNISIM_ACQUIRE() { mu_.lock(); }
    void unlock() OMNISIM_RELEASE() { mu_.unlock(); }
    bool try_lock() OMNISIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }
    void lock_shared() OMNISIM_ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlock_shared() OMNISIM_RELEASE_SHARED() { mu_.unlock_shared(); }
    bool try_lock_shared() OMNISIM_TRY_ACQUIRE(true)
    {
        return mu_.try_lock_shared();
    }

  private:
    std::shared_mutex mu_;
};

/** std::lock_guard over sync::Mutex (RAII, not relockable). */
class OMNISIM_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(Mutex &mu) OMNISIM_ACQUIRE(mu) : mu_(mu)
    {
        mu_.lock();
    }
    ~LockGuard() OMNISIM_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;

  private:
    Mutex &mu_;
};

/** Shared (reader) RAII guard over sync::SharedMutex. */
class OMNISIM_SCOPED_CAPABILITY SharedLockGuard
{
  public:
    explicit SharedLockGuard(SharedMutex &mu) OMNISIM_ACQUIRE_SHARED(mu)
        : mu_(mu)
    {
        mu_.lock_shared();
    }
    ~SharedLockGuard() OMNISIM_RELEASE() { mu_.unlock_shared(); }

    SharedLockGuard(const SharedLockGuard &) = delete;
    SharedLockGuard &operator=(const SharedLockGuard &) = delete;

  private:
    SharedMutex &mu_;
};

/**
 * std::unique_lock over sync::Mutex: relockable scoped capability for
 * the manual unlock/relock windows and CondVar waits. The analysis
 * tracks the held/released state through lock()/unlock(), so the
 * destructor's conditional release is modeled exactly.
 */
class OMNISIM_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex &mu) OMNISIM_ACQUIRE(mu) : lk_(mu.native()) {}
    ~UniqueLock() OMNISIM_RELEASE() = default;

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    void lock() OMNISIM_ACQUIRE() { lk_.lock(); }
    void unlock() OMNISIM_RELEASE() { lk_.unlock(); }
    bool owns_lock() const { return lk_.owns_lock(); }

    /** The wrapped lock, for CondVar::wait only. */
    std::unique_lock<std::mutex> &native() { return lk_; }

  private:
    std::unique_lock<std::mutex> lk_;
};

/**
 * Condition variable over sync::Mutex. wait() requires the caller to
 * hold the lock (REQUIRES on the wrapped capability is not expressible
 * on a UniqueLock parameter, so the contract is enforced at the call
 * sites, which are all inside annotated regions). No predicate
 * overload on purpose: predicates touch guarded fields, and an
 * explicit `while (!pred) cv.wait(lk);` loop keeps those reads in the
 * annotated enclosing function instead of an opaque lambda.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void wait(UniqueLock &lk) { cv_.wait(lk.native()); }
    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace omnisim::sync

#endif // OMNISIM_SUPPORT_SYNC_HH
