/**
 * @file
 * ASCII table printer. Every benchmark harness in bench/ reproduces a table
 * or figure from the paper; this class renders them uniformly.
 */

#ifndef OMNISIM_SUPPORT_TABLE_HH
#define OMNISIM_SUPPORT_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace omnisim
{

/**
 * Column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   TablePrinter t({"Design", "Cycles", "Speedup"});
 *   t.addRow({"fir", "1234", "1.26x"});
 *   t.print(std::cout);
 * @endcode
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table. */
    void print(std::ostream &os) const;

    /** Render the table to a string. */
    std::string str() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_; // empty row == separator
};

} // namespace omnisim

#endif // OMNISIM_SUPPORT_TABLE_HH
