#include "support/table.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/logging.hh"

namespace omnisim
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    omnisim_assert(!headers_.empty(), "table needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    omnisim_assert(cells.size() == headers_.size(),
                   "row has %zu cells, table has %zu columns",
                   cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::addSeparator()
{
    rows_.emplace_back(); // sentinel
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto rule = [&]() {
        os << '+';
        for (std::size_t c = 0; c < width.size(); ++c)
            os << std::string(width[c] + 2, '-') << '+';
        os << '\n';
    };
    auto emit = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < width.size(); ++c) {
            const std::string &s = c < cells.size() ? cells[c] : "";
            os << ' ' << s << std::string(width[c] - s.size(), ' ') << " |";
        }
        os << '\n';
    };

    rule();
    emit(headers_);
    rule();
    for (const auto &row : rows_) {
        if (row.empty())
            rule();
        else
            emit(row);
    }
    rule();
}

std::string
TablePrinter::str() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

} // namespace omnisim
