#include "support/stats.hh"

#include <cmath>

#include "support/logging.hh"

namespace omnisim
{

void
RunningStat::push(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::reset()
{
    *this = RunningStat{};
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const std::size_t n = n_ + other.n_;
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(n);
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
    sum_ += other.sum_;
    n_ = n;
}

double
RunningStat::stddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double logsum = 0.0;
    for (double x : xs) {
        // The geometric mean is undefined for non-positive samples. An
        // assert would vanish in builds that compile assertions out and
        // leave std::log feeding -inf/NaN into every later sample, so
        // the degenerate input is answered deterministically instead:
        // any zero, negative, or NaN sample collapses the mean to 0.
        if (!(x > 0.0)) {
            warn(strf("geomean: non-positive sample %f — returning 0", x));
            return 0.0;
        }
        logsum += std::log(x);
    }
    return std::exp(logsum / static_cast<double>(xs.size()));
}

} // namespace omnisim
