/**
 * @file
 * Fundamental scalar and identifier types shared across all OmniSim
 * subsystems.
 */

#ifndef OMNISIM_SUPPORT_TYPES_HH
#define OMNISIM_SUPPORT_TYPES_HH

#include <cstdint>

namespace omnisim
{

/**
 * Hardware clock cycle count. Cycle 1 is the first cycle of execution; a
 * value of 0 denotes "before the design started" and is used as the
 * identity for max-style timing merges.
 */
using Cycles = std::uint64_t;

/** Simulated data value. All design-visible data is 64-bit integral. */
using Value = std::int64_t;

/** Index of a FIFO channel within a Design. */
using FifoId = std::int32_t;

/** Index of a dataflow module within a Design. */
using ModuleId = std::int32_t;

/** Index of a testbench-visible memory within a Design. */
using MemId = std::int32_t;

/** Index of an AXI port within a Design. */
using AxiId = std::int32_t;

/** Sentinel for all identifier types above. */
constexpr std::int32_t invalidId = -1;

} // namespace omnisim

#endif // OMNISIM_SUPPORT_TYPES_HH
