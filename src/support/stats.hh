/**
 * @file
 * Small statistics helpers for benchmark reporting: running summary
 * statistics and geometric means (the paper reports geomean speedups).
 */

#ifndef OMNISIM_SUPPORT_STATS_HH
#define OMNISIM_SUPPORT_STATS_HH

#include <cstddef>
#include <vector>

namespace omnisim
{

/** Incremental summary statistics (Welford's algorithm). */
class RunningStat
{
  public:
    /** Fold one sample into the summary. */
    void push(double x);

    /** @return number of samples pushed. */
    std::size_t count() const { return n_; }

    /** @return sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** @return minimum sample (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** @return maximum sample (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** @return unbiased sample standard deviation (0 for n < 2). */
    double stddev() const;

    /** @return sum of all samples. */
    double sum() const { return sum_; }

    /** Discard all samples; equivalent to a fresh RunningStat. */
    void reset();

    /**
     * Fold another summary into this one (parallel Welford / Chan et al.
     * pairwise combine), as if every sample pushed into @p other had been
     * pushed here. Exact for count/min/max/sum; mean and m2 combine with
     * the standard numerically-stable update, so per-thread shards can be
     * merged into one global summary without locks.
     */
    void merge(const RunningStat &other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Geometric mean of a sample vector. Defined only for positive samples.
 *
 * @return 0 when the vector is empty or any sample is zero, negative,
 *         or NaN (with a warn()) — deterministic in every build type.
 */
double geomean(const std::vector<double> &xs);

} // namespace omnisim

#endif // OMNISIM_SUPPORT_STATS_HH
