#include "support/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace omnisim
{

namespace
{
std::atomic<bool> quietFlag{false};
} // namespace

std::string
strf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    throw FatalError(msg);
}

void
warn(const std::string &msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (!quietFlag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setLogQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

} // namespace omnisim
