#include "support/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/context.hh"
#include "obs/flight.hh"
#include "obs/log.hh"

namespace omnisim
{

namespace
{
std::atomic<bool> quietFlag{false};
} // namespace

std::string
strf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    OMNISIM_LOG_ERROR("panic", "%s (%s:%d)", msg.c_str(), file, line);
    if (obs::logEnabled()) {
        const std::string path = obs::writeCrashDump(
            strf("panic: %s (%s:%d)", msg.c_str(), file, line),
            obs::currentCorrelationId());
        if (!path.empty())
            std::fprintf(stderr, "panic: flight recorder dumped to %s\n",
                         path.c_str());
    }
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    // User-level errors are recoverable (embedders and serve catch
    // FatalError), so they log but never write a crash dump.
    OMNISIM_LOG_ERROR("fatal", "%s", msg.c_str());
    throw FatalError(msg);
}

void
warn(const std::string &msg)
{
    if (obs::logEnabled()) {
        OMNISIM_LOG_WARN("warn", "%s", msg.c_str());
        return;
    }
    if (!quietFlag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (obs::logEnabled()) {
        OMNISIM_LOG_INFO("inform", "%s", msg.c_str());
        return;
    }
    if (!quietFlag.load(std::memory_order_relaxed))
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setLogQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
logQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

} // namespace omnisim
