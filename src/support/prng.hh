/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**) used by
 * workload generators and property tests. Never std::rand: reproducibility
 * across platforms matters for regression tests.
 */

#ifndef OMNISIM_SUPPORT_PRNG_HH
#define OMNISIM_SUPPORT_PRNG_HH

#include <cstdint>

namespace omnisim
{

/**
 * xoshiro256** PRNG seeded through SplitMix64. Deterministic for a given
 * seed on every platform.
 */
class Prng
{
  public:
    /** Construct with the given seed (any value, including 0, is valid). */
    explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    /** @return a uniform value in [0, bound) — bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound);

    /** @return a uniform value in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** @return a uniform double in [0, 1). */
    double uniform();

    /** @return true with probability p. */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
};

} // namespace omnisim

#endif // OMNISIM_SUPPORT_PRNG_HH
