/**
 * @file
 * RunStore: a directory cache of serialized runs keyed by
 * (design name, engine, depth-vector hash), giving compiled runs a
 * lifetime beyond the process that traced them. The second process to
 * ask about a design pays only the §7.2 incremental cost.
 *
 * Publication is atomic: the file image is written to a unique
 * temporary name in the store directory and then renamed over the
 * final name, so readers — including concurrent readers in other
 * processes — only ever observe complete files. Loads are
 * corruption-tolerant: a truncated, bit-flipped, version-mismatched, or
 * fingerprint-stale file makes load() return null (and loadAll() skip
 * the entry), never crash and never UB. The store never deletes user
 * files on its own; invalidation is by fingerprint comparison at load
 * time (see README "Cache invalidation").
 */

#ifndef OMNISIM_IO_RUN_STORE_HH
#define OMNISIM_IO_RUN_STORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/run_io.hh"

namespace omnisim::io
{

/** Directory-backed cache of serialized runs. Methods are thread-safe
 *  (the object holds no mutable state; atomicity comes from the
 *  write-then-rename protocol). */
class RunStore
{
  public:
    /**
     * Open (creating if needed) a store rooted at dir.
     * @throws FatalError when the directory cannot be created.
     */
    explicit RunStore(std::string dir);

    const std::string &dir() const { return dir_; }

    /** @return the final path a run with this key publishes to. */
    std::string pathFor(const std::string &design,
                        const std::string &engine,
                        const std::vector<std::uint32_t> &depths) const;

    /**
     * Atomically publish a run. Overwrites any previous entry with the
     * same key (rename-over is atomic on POSIX). IO failures are
     * reported by the return value — a full disk must not take down a
     * simulation service.
     */
    bool publish(const std::string &design, const std::string &engine,
                 std::uint64_t fingerprint, const RunSnapshot &snap) const;

    /**
     * Load the run recorded for exactly (design, engine, depths).
     * @return null when absent, unreadable, corrupt, version-mismatched,
     *         fingerprint-stale, or recorded under different depths
     *         (a depth-hash collision).
     */
    std::unique_ptr<StoredRun>
    load(const std::string &design, const std::string &engine,
         std::uint64_t fingerprint,
         const std::vector<std::uint32_t> &depths) const;

    /**
     * Load every run stored for (design, engine) whose fingerprint
     * matches, up to maxCount, in deterministic (sorted filename)
     * order. Unreadable or stale entries are skipped.
     */
    std::vector<std::unique_ptr<StoredRun>>
    loadAll(const std::string &design, const std::string &engine,
            std::uint64_t fingerprint, std::size_t maxCount) const;

    /** @return stored entries for (design, engine), readable or not. */
    std::size_t count(const std::string &design,
                      const std::string &engine) const;

  private:
    std::string prefixFor(const std::string &design,
                          const std::string &engine) const;

    std::string dir_;
};

} // namespace omnisim::io

#endif // OMNISIM_IO_RUN_STORE_HH
