/**
 * @file
 * Endian-stable binary serialization primitives for the persistent run
 * store (src/io/). Every multi-byte integer is encoded little-endian
 * byte-by-byte, so files written on any host decode identically on any
 * other — no memcpy of host-order structs, no padding, no UB.
 *
 * ByteReader is the untrusted-input half: every read is bounds-checked
 * and a malformed length prefix throws FatalError before any allocation
 * larger than the remaining input can happen. Truncated, bit-flipped,
 * or hostile files therefore fail with a recoverable exception, never
 * with undefined behaviour — the property tests/test_io.cc fuzzes.
 */

#ifndef OMNISIM_IO_SERIAL_HH
#define OMNISIM_IO_SERIAL_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/logging.hh"

namespace omnisim::io
{

/** Append-only little-endian encoder. */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    /** Length-prefixed (u64) byte string. */
    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.append(s);
    }

    /** Raw bytes, no length prefix (magic headers). */
    void
    raw(const char *data, std::size_t n)
    {
        buf_.append(data, n);
    }

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/** Bounds-checked little-endian decoder over an in-memory buffer. */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view bytes) : p_(bytes), pos_(0) {}

    std::size_t remaining() const { return p_.size() - pos_; }
    bool atEnd() const { return pos_ == p_.size(); }
    std::size_t position() const { return pos_; }

    std::uint8_t
    u8()
    {
        need(1);
        return static_cast<std::uint8_t>(p_[pos_++]);
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(p_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(p_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    /** Length-prefixed byte string; the length must fit the input. */
    std::string
    str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(p_.substr(pos_, static_cast<std::size_t>(n)));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    /** Raw bytes, no length prefix. */
    std::string_view
    raw(std::size_t n)
    {
        need(n);
        std::string_view v = p_.substr(pos_, n);
        pos_ += n;
        return v;
    }

    /**
     * Read an element-count prefix for a vector whose encoded elements
     * occupy at least minElemBytes each. Rejecting counts the remaining
     * input cannot possibly hold stops a corrupted length from turning
     * into a multi-gigabyte allocation before the decode loop even hits
     * the end of the buffer.
     */
    std::size_t
    count(std::size_t minElemBytes)
    {
        const std::uint64_t n = u64();
        if (minElemBytes > 0 && n > remaining() / minElemBytes)
            omnisim_fatal("run file corrupt: element count %llu exceeds "
                          "the %zu remaining bytes",
                          static_cast<unsigned long long>(n), remaining());
        return static_cast<std::size_t>(n);
    }

  private:
    void
    need(std::uint64_t n)
    {
        if (n > remaining())
            omnisim_fatal("run file truncated: need %llu bytes at offset "
                          "%zu, have %zu",
                          static_cast<unsigned long long>(n), pos_,
                          remaining());
    }

    std::string_view p_;
    std::size_t pos_;
};

/** FNV-1a 64-bit hash (file checksums and store keys). */
inline std::uint64_t
fnv1a(std::string_view bytes, std::uint64_t h = 1469598103934665603ull)
{
    for (const char c : bytes)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    return h;
}

/** Fold one integer into an FNV-1a hash (endian-stable). */
inline std::uint64_t
fnv1aU64(std::uint64_t v, std::uint64_t h)
{
    for (int i = 0; i < 8; ++i)
        h = (h ^ ((v >> (8 * i)) & 0xff)) * 1099511628211ull;
    return h;
}

} // namespace omnisim::io

#endif // OMNISIM_IO_SERIAL_HH
