/**
 * @file
 * Versioned, endian-stable on-disk format for a completed OmniSim run,
 * and the StoredRun rehydration wrapper that serves resimulate() from
 * it in a fresh process (the LightningSimV2 lesson applied across
 * process boundaries: the compiled graph should outlive the process
 * that paid for the trace).
 *
 * File layout (all integers little-endian, see serial.hh):
 *
 *   magic            8 bytes   "OMSIMRUN"
 *   format version   u32       kRunFormatVersion
 *   payload checksum u64       FNV-1a over the payload bytes
 *   payload size     u64
 *   payload          bytes     meta (design, engine, fingerprint)
 *                              followed by the RunSnapshot sections
 *
 * Decoding is strict: bad magic, an unknown version, a checksum
 * mismatch, a truncated section, an impossible element count, or any
 * violated semantic invariant (validateSnapshot) throws FatalError —
 * a corrupt file is always a recoverable error, never UB. The design
 * fingerprint (a structural hash that deliberately excludes FIFO
 * depths — those are the re-simulation knob) lets loaders reject runs
 * recorded against a since-changed design.
 */

#ifndef OMNISIM_IO_RUN_IO_HH
#define OMNISIM_IO_RUN_IO_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/omnisim.hh"
#include "graph/compiled_run.hh"

namespace omnisim
{
class Design;
}

namespace omnisim::io
{

/** Current on-disk format version; bumped on any layout change.
 *  v2: EngineStats gained the forcedBlind / deadlockRetroSuspect
 *  approximation markers (see runtime/result.hh). */
constexpr std::uint32_t kRunFormatVersion = 2;

/** The 8-byte file magic. */
extern const char kRunMagic[8];

/** Identity block stored ahead of the snapshot payload. */
struct RunFileMeta
{
    std::string design;       ///< Registry/design name.
    std::string engine;       ///< Engine that produced the run.
    std::uint64_t fingerprint = 0; ///< designFingerprint() at save time.
};

/**
 * Structural hash of a design: name, modules (name + classifier
 * options), FIFO topology (name, endpoints, access kinds), memories,
 * AXI ports, and testbench inputs. FIFO depths are excluded — a stored
 * run exists precisely to answer questions about other depth vectors —
 * so the fingerprint is stable across the whole DSE lattice of one
 * design and changes whenever the recorded trace could no longer be
 * trusted.
 */
std::uint64_t designFingerprint(const Design &d);

/** Stable hash of a depth vector (RunStore file naming). */
std::uint64_t depthVectorHash(const std::vector<std::uint32_t> &depths);

/** Encode a complete run file image (header + payload). */
std::string encodeRun(const RunFileMeta &meta, const RunSnapshot &snap);

/**
 * Decode and fully validate a run file image.
 * @throws FatalError on any malformation (see file comment).
 */
void decodeRun(std::string_view bytes, RunFileMeta &meta,
               RunSnapshot &snap);

/**
 * Check every cross-index invariant of a decoded snapshot — node ids in
 * tables/edges/constraints/tails within range, constraint kinds
 * query-only with 1-based indices, table/pending arities consistent,
 * depths positive, result status Ok — so that CompiledRun rehydration
 * and constraint evaluation can index without bounds checks.
 * @throws FatalError naming the first violation.
 */
void validateSnapshot(const RunSnapshot &snap);

/**
 * A run rehydrated from a snapshot: owns the snapshot storage and the
 * CompiledRun frozen over it, and serves resimulate() with outcomes
 * bit-identical to the originating process (tests/test_io.cc enforces
 * this across the design registry).
 *
 * Not movable: the CompiledRun holds pointers to the snapshot's table
 * and constraint vectors, so StoredRun instances live behind
 * unique_ptr (see the open()/rehydrate() factories).
 */
class StoredRun
{
  public:
    StoredRun(const StoredRun &) = delete;
    StoredRun &operator=(const StoredRun &) = delete;

    /**
     * Rehydrate from an already-decoded snapshot.
     * @throws FatalError when the snapshot fails validation or its
     *         recorded baseline is timing-infeasible.
     */
    static std::unique_ptr<StoredRun> rehydrate(RunSnapshot snap,
                                                RunFileMeta meta = {});

    /**
     * Read + decode + rehydrate a run file.
     * @throws FatalError on IO errors or any malformation.
     */
    static std::unique_ptr<StoredRun> open(const std::string &path);

    const RunFileMeta &meta() const { return meta_; }
    const RunSnapshot &snapshot() const { return snap_; }

    /** @return the depth vector the recorded run executed under. */
    const std::vector<std::uint32_t> &baseDepths() const
    {
        return snap_.depths;
    }

    /** @return the recorded baseline result (status Ok). */
    const SimResult &baseline() const { return snap_.result; }

    /**
     * Attempt incremental re-simulation under new depths, without the
     * design, the DSL, or any re-tracing — pure CompiledRun delta
     * relaxation over the rehydrated structure. Identical contract to
     * OmniSim::resimulate(): reused outcomes carry the baseline result
     * with re-finalized cycles; divergence reports the first flipped
     * constraint with the same message text. Thread-safe.
     */
    IncrementalOutcome
    resimulate(const std::vector<std::uint32_t> &depths) const;

  private:
    StoredRun(RunSnapshot snap, RunFileMeta meta);

    RunFileMeta meta_;
    RunSnapshot snap_;
    std::unique_ptr<CompiledRun> compiled_; ///< References snap_.
};

} // namespace omnisim::io

#endif // OMNISIM_IO_RUN_IO_HH
