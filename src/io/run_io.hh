/**
 * @file
 * Versioned, endian-stable on-disk format for a completed OmniSim run,
 * and the StoredRun rehydration wrapper that serves resimulate() from
 * it in a fresh process (the LightningSimV2 lesson applied across
 * process boundaries: the compiled graph should outlive the process
 * that paid for the trace).
 *
 * File layout (all integers little-endian, see serial.hh):
 *
 *   magic            8 bytes   "OMSIMRUN"
 *   format version   u32       kRunFormatVersion
 *   payload checksum u64       FNV-1a over the payload bytes
 *   payload size     u64
 *   payload          bytes     meta (design, engine, fingerprint)
 *                              followed by the RunSnapshot sections;
 *                              v3 appends the compiled-layout section
 *                              (opt level, node remap, optimized graph,
 *                              kept-constraint indices, pass stats);
 *                              v4 appends the partition-plan section
 *                              (level order, level/cone offsets,
 *                              frontier count, per-FIFO admission
 *                              depth thresholds) to the layout
 *
 * Version 3 persists the graph-compilation pipeline's output next to
 * the snapshot, so a loader rehydrates by re-solving the already
 * optimized layout instead of re-running the passes (and their
 * whole-graph analyses) — the dominant cost on large runs. Version 4
 * additionally persists the partition pass's rank-level plan, so a
 * rehydrated run is parallel-ready without re-levelizing. Version 2
 * files (no layout section) still decode; their runs are recompiled
 * through the deterministic pass pipeline on load and behave
 * identically. Version 3 files re-derive the partition plan on load —
 * the builder is deterministic, so the result matches what a v4 writer
 * would have stored.
 *
 * Decoding is strict: bad magic, an unknown version, a checksum
 * mismatch, a truncated section, an impossible element count, or any
 * violated semantic invariant (validateSnapshot / validateRunLayout)
 * throws FatalError — a corrupt file is always a recoverable error,
 * never UB. The design fingerprint (a structural hash that
 * deliberately excludes FIFO depths — those are the re-simulation
 * knob) lets loaders reject runs recorded against a since-changed
 * design.
 */

#ifndef OMNISIM_IO_RUN_IO_HH
#define OMNISIM_IO_RUN_IO_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/omnisim.hh"
#include "graph/compiled_run.hh"

namespace omnisim
{
class Design;
}

namespace omnisim::io
{

/** Current on-disk format version; bumped on any layout change.
 *  v2: EngineStats gained the forcedBlind / deadlockRetroSuspect
 *  approximation markers (see runtime/result.hh).
 *  v3: appended the compiled-layout section (see file comment).
 *  v4: appended the partition-plan section to the layout. */
constexpr std::uint32_t kRunFormatVersion = 4;

/** Oldest version this build still decodes (v2 runs are recompiled
 *  through the pass pipeline on load). */
constexpr std::uint32_t kRunMinFormatVersion = 2;

/** The 8-byte file magic. */
extern const char kRunMagic[8];

/** Identity block stored ahead of the snapshot payload. */
struct RunFileMeta
{
    std::string design;       ///< Registry/design name.
    std::string engine;       ///< Engine that produced the run.
    std::uint64_t fingerprint = 0; ///< designFingerprint() at save time.
};

/**
 * Structural hash of a design: name, modules (name + classifier
 * options), FIFO topology (name, endpoints, access kinds), memories,
 * AXI ports, and testbench inputs. FIFO depths are excluded — a stored
 * run exists precisely to answer questions about other depth vectors —
 * so the fingerprint is stable across the whole DSE lattice of one
 * design and changes whenever the recorded trace could no longer be
 * trusted.
 */
std::uint64_t designFingerprint(const Design &d);

/** Stable hash of a depth vector (RunStore file naming). */
std::uint64_t depthVectorHash(const std::vector<std::uint32_t> &depths);

/**
 * Encode a complete run file image (header + payload) at the current
 * format version. When @p layout is null the compiled layout persisted
 * in the v3 section is produced by running the deterministic pass
 * pipeline (opt::OptLevel::O1) over @p snap; pass the engine's own
 * layout to skip that recompile.
 */
std::string encodeRun(const RunFileMeta &meta, const RunSnapshot &snap,
                      const opt::RunLayout *layout = nullptr);

/** Encode a version-2 image (no layout section) — kept so the
 *  backward-compatibility tests can manufacture genuine v2 files. */
std::string encodeRunV2(const RunFileMeta &meta, const RunSnapshot &snap);

/** Encode a version-3 image (layout section, no partition plan) — kept
 *  so the backward-compatibility tests can manufacture genuine v3
 *  files; the decoder re-derives the plan for them. Null @p layout
 *  recompiles, as encodeRun does. */
std::string encodeRunV3(const RunFileMeta &meta, const RunSnapshot &snap,
                        const opt::RunLayout *layout = nullptr);

/**
 * Decode and fully validate a run file image.
 * @throws FatalError on any malformation (see file comment).
 */
void decodeRun(std::string_view bytes, RunFileMeta &meta,
               RunSnapshot &snap);

/**
 * Decode overload that also surfaces the persisted compiled layout.
 * @p layout is empty after decoding a v2 image (the caller recompiles)
 * and engaged after a v3 image, already validated against @p snap.
 */
void decodeRun(std::string_view bytes, RunFileMeta &meta, RunSnapshot &snap,
               std::optional<opt::RunLayout> &layout);

/**
 * Check every cross-index invariant of a decoded snapshot — node ids in
 * tables/edges/constraints/tails within range, constraint kinds
 * query-only with 1-based indices, table/pending arities consistent,
 * depths positive, result status Ok — so that CompiledRun rehydration
 * and constraint evaluation can index without bounds checks.
 * @throws FatalError naming the first violation.
 */
void validateSnapshot(const RunSnapshot &snap);

/**
 * Check every cross-index invariant of a decoded compiled layout
 * against its (already validated) snapshot: dense node ids within
 * range, remap entries kDropped or in-range, per-FIFO access tables
 * sized exactly to the recorded access counts, kept-constraint indices
 * strictly ascending with their evaluation targets pinned (a read-kind
 * constraint's write entry and a write-kind constraint's read prefix
 * must survive), so CompiledRun::evalConstraint can index without
 * bounds checks.
 * @throws FatalError naming the first violation.
 */
void validateRunLayout(const RunSnapshot &snap,
                       const opt::RunLayout &layout);

/**
 * A run rehydrated from a snapshot: owns the snapshot storage and the
 * CompiledRun frozen over it, and serves resimulate() with outcomes
 * bit-identical to the originating process (tests/test_io.cc enforces
 * this across the design registry).
 *
 * Not copyable, and held behind unique_ptr via the open()/rehydrate()
 * factories so the decode-throws-FatalError paths stay out of
 * constructors callers could reach directly. (The CompiledRun itself
 * is self-contained since the compile pipeline landed — it copies what
 * it needs out of the snapshot at freeze time.)
 */
class StoredRun
{
  public:
    StoredRun(const StoredRun &) = delete;
    StoredRun &operator=(const StoredRun &) = delete;

    /**
     * Rehydrate from an already-decoded snapshot, recompiling through
     * the deterministic pass pipeline.
     * @throws FatalError when the snapshot fails validation or its
     *         recorded baseline is timing-infeasible.
     */
    static std::unique_ptr<StoredRun> rehydrate(RunSnapshot snap,
                                                RunFileMeta meta = {});

    /**
     * Read + decode + rehydrate a run file. v3 files carry their
     * compiled layout, so rehydration skips the optimization passes;
     * v2 files are recompiled.
     * @throws FatalError on IO errors or any malformation.
     */
    static std::unique_ptr<StoredRun> open(const std::string &path);

    const RunFileMeta &meta() const { return meta_; }
    const RunSnapshot &snapshot() const { return snap_; }

    /** @return the depth vector the recorded run executed under. */
    const std::vector<std::uint32_t> &baseDepths() const
    {
        return snap_.depths;
    }

    /** @return the recorded baseline result (status Ok). */
    const SimResult &baseline() const { return snap_.result; }

    /** @return compile-pipeline statistics of the rehydrated run. */
    const opt::CompileStats &compileStats() const
    {
        return compiled_->compileStats();
    }

    /** @return the CompiledRun serving resimulate() — read-only
     *  introspection (layout, partition plan) for benches and tests. */
    const CompiledRun &compiled() const { return *compiled_; }

    /**
     * Attempt incremental re-simulation under new depths, without the
     * design, the DSL, or any re-tracing — pure CompiledRun delta
     * relaxation over the rehydrated structure. Identical contract to
     * OmniSim::resimulate(): reused outcomes carry the baseline result
     * with re-finalized cycles; divergence reports the first flipped
     * constraint with the same message text. Thread-safe.
     *
     * @param jobs relaxation lanes (see OmniSimOptions::jobs) — results
     *             are bit-identical at any value.
     */
    IncrementalOutcome
    resimulate(const std::vector<std::uint32_t> &depths,
               unsigned jobs = 1) const;

  private:
    StoredRun(RunSnapshot snap, RunFileMeta meta,
              std::optional<opt::RunLayout> layout);

    RunFileMeta meta_;
    RunSnapshot snap_;
    std::unique_ptr<CompiledRun> compiled_;
};

} // namespace omnisim::io

#endif // OMNISIM_IO_RUN_IO_HH
