#include "io/run_store.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "io/serial.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

namespace fs = std::filesystem;

namespace omnisim::io
{

namespace
{

/** Make a name filesystem-safe and unambiguous: [A-Za-z0-9_-] pass
 *  through, everything else becomes %XX. */
std::string
sanitize(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (safe)
            out += c;
        else
            out += strf("%%%02X", static_cast<unsigned char>(c));
    }
    return out;
}

/** Process-unique suffix for temporary publication files. */
std::string
tempSuffix()
{
    static std::atomic<std::uint64_t> counter{0};
    return strf(".tmp-%llu-%llu",
                static_cast<unsigned long long>(::getpid()),
                static_cast<unsigned long long>(
                    counter.fetch_add(1, std::memory_order_relaxed)));
}

} // namespace

RunStore::RunStore(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        omnisim_fatal("run store: cannot create directory '%s' (%s)",
                      dir_.c_str(), ec.message().c_str());
}

std::string
RunStore::prefixFor(const std::string &design,
                    const std::string &engine) const
{
    return sanitize(design) + "." + sanitize(engine) + ".";
}

std::string
RunStore::pathFor(const std::string &design, const std::string &engine,
                  const std::vector<std::uint32_t> &depths) const
{
    return (fs::path(dir_) /
            (prefixFor(design, engine) +
             strf("%016llx", static_cast<unsigned long long>(
                                 depthVectorHash(depths))) +
             ".omnirun"))
        .string();
}

namespace {

// Store instrumentation handles, resolved once per process.
struct StoreMetrics
{
    obs::Counter &publishes =
        obs::Registry::global().counter("store.publishes");
    obs::Counter &publishFails =
        obs::Registry::global().counter("store.publish_fails");
    obs::Counter &loadHits =
        obs::Registry::global().counter("store.load_hits");
    obs::Counter &loadMisses =
        obs::Registry::global().counter("store.load_misses");
    obs::Histogram &publishUs =
        obs::Registry::global().histogram("store.publish_us");

    static StoreMetrics &get()
    {
        static StoreMetrics m;
        return m;
    }
};

} // namespace

bool
RunStore::publish(const std::string &design, const std::string &engine,
                  std::uint64_t fingerprint, const RunSnapshot &snap) const
{
    StoreMetrics &sm = StoreMetrics::get();
    OMNISIM_SPAN("store.publish");
    obs::ScopedLatencyUs timer(sm.publishUs);

    RunFileMeta meta;
    meta.design = design;
    meta.engine = engine;
    meta.fingerprint = fingerprint;
    const std::string image = encodeRun(meta, snap);

    const std::string finalPath = pathFor(design, engine, snap.depths);
    const std::string tmpPath = finalPath + tempSuffix();

    std::FILE *f = std::fopen(tmpPath.c_str(), "wb");
    if (!f) {
        warn(strf("run store: cannot write '%s'", tmpPath.c_str()));
        sm.publishFails.add();
        return false;
    }
    const bool wrote =
        std::fwrite(image.data(), 1, image.size(), f) == image.size();
    const bool flushed = std::fclose(f) == 0;
    if (!wrote || !flushed) {
        std::remove(tmpPath.c_str());
        warn(strf("run store: short write publishing '%s'",
                  finalPath.c_str()));
        sm.publishFails.add();
        return false;
    }

    std::error_code ec;
    fs::rename(tmpPath, finalPath, ec); // atomic within one directory
    if (ec) {
        std::remove(tmpPath.c_str());
        warn(strf("run store: cannot publish '%s' (%s)",
                  finalPath.c_str(), ec.message().c_str()));
        sm.publishFails.add();
        return false;
    }
    sm.publishes.add();
    OMNISIM_LOG_DEBUG("store.publish", "design=%s engine=%s path=%s",
                      design.c_str(), engine.c_str(), finalPath.c_str());
    return true;
}

std::unique_ptr<StoredRun>
RunStore::load(const std::string &design, const std::string &engine,
               std::uint64_t fingerprint,
               const std::vector<std::uint32_t> &depths) const
{
    StoreMetrics &sm = StoreMetrics::get();
    const std::string path = pathFor(design, engine, depths);
    std::error_code ec;
    if (!fs::exists(path, ec) || ec) {
        sm.loadMisses.add();
        return nullptr;
    }
    try {
        std::unique_ptr<StoredRun> run = StoredRun::open(path);
        if (run->meta().design != design ||
            run->meta().engine != engine ||
            run->meta().fingerprint != fingerprint ||
            run->baseDepths() != depths) {
            sm.loadMisses.add();
            return nullptr; // stale design or a depth-hash collision
        }
        sm.loadHits.add();
        return run;
    } catch (const FatalError &e) {
        warn(strf("run store: ignoring unreadable '%s': %s",
                  path.c_str(), e.what()));
        sm.loadMisses.add();
        return nullptr;
    }
}

std::vector<std::unique_ptr<StoredRun>>
RunStore::loadAll(const std::string &design, const std::string &engine,
                  std::uint64_t fingerprint, std::size_t maxCount) const
{
    StoreMetrics &sm = StoreMetrics::get();
    OMNISIM_SPAN("store.load_all");
    std::vector<std::unique_ptr<StoredRun>> out;
    const std::string prefix = prefixFor(design, engine);

    std::vector<std::string> paths;
    std::error_code ec;
    for (fs::directory_iterator it(dir_, ec), end;
         !ec && it != end; it.increment(ec)) {
        const std::string name = it->path().filename().string();
        if (name.size() > prefix.size() &&
            name.compare(0, prefix.size(), prefix) == 0 &&
            name.size() > 8 &&
            name.compare(name.size() - 8, 8, ".omnirun") == 0)
            paths.push_back(it->path().string());
    }
    std::sort(paths.begin(), paths.end());

    for (const std::string &path : paths) {
        if (out.size() >= maxCount)
            break;
        try {
            std::unique_ptr<StoredRun> run = StoredRun::open(path);
            if (run->meta().design != design ||
                run->meta().engine != engine ||
                run->meta().fingerprint != fingerprint)
                continue;
            out.push_back(std::move(run));
        } catch (const FatalError &e) {
            warn(strf("run store: ignoring unreadable '%s': %s",
                      path.c_str(), e.what()));
        }
    }
    sm.loadHits.add(out.size());
    OMNISIM_LOG_DEBUG("store.load_all", "design=%s engine=%s loaded=%zu",
                      design.c_str(), engine.c_str(), out.size());
    return out;
}

std::size_t
RunStore::count(const std::string &design, const std::string &engine) const
{
    const std::string prefix = prefixFor(design, engine);
    std::size_t n = 0;
    std::error_code ec;
    for (fs::directory_iterator it(dir_, ec), end;
         !ec && it != end; it.increment(ec)) {
        const std::string name = it->path().filename().string();
        if (name.size() > prefix.size() &&
            name.compare(0, prefix.size(), prefix) == 0 &&
            name.size() > 8 &&
            name.compare(name.size() - 8, 8, ".omnirun") == 0)
            ++n;
    }
    return n;
}

} // namespace omnisim::io
