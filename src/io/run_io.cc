#include "io/run_io.hh"

#include <algorithm>
#include <cstdio>
#include <deque>

#include "design/design.hh"
#include "io/serial.hh"
#include "opt/partition.hh"
#include "opt/pass_manager.hh"
#include "opt/verify.hh"
#include "support/logging.hh"

namespace omnisim::io
{

const char kRunMagic[8] = {'O', 'M', 'S', 'I', 'M', 'R', 'U', 'N'};

namespace
{

constexpr std::uint8_t kMaxEventKind =
    static_cast<std::uint8_t>(EventKind::TaskEnd);

// ---------------------------------------------------------------------------
// Snapshot payload encoding. Section order matches RunSnapshot field
// order; every vector is count-prefixed so the decoder can pre-check
// lengths against the remaining input.
// ---------------------------------------------------------------------------

void
encodeSnapshot(ByteWriter &w, const RunSnapshot &snap)
{
    w.u64(snap.nodes.size());
    for (const NodeInfo &n : snap.nodes) {
        w.u8(static_cast<std::uint8_t>(n.kind));
        w.u32(static_cast<std::uint32_t>(n.module));
        w.u32(static_cast<std::uint32_t>(n.channel));
        w.u32(n.index);
        w.u64(n.duration);
    }

    w.u64(snap.edges.size());
    for (const auto &e : snap.edges) {
        w.u64(e.src);
        w.u64(e.dst);
        w.u64(e.weight);
    }

    w.u64(snap.seed.size());
    for (const Cycles c : snap.seed)
        w.u64(c);

    w.u64(snap.tables.size());
    for (const FifoTable &t : snap.tables) {
        w.str(t.label());
        w.u64(t.writes());
        for (std::size_t i = 0; i < t.writes(); ++i) {
            w.u64(t.writeCycles()[i]);
            w.u64(t.writeNodes()[i]);
        }
        w.u64(t.reads());
        for (std::size_t i = 0; i < t.reads(); ++i) {
            w.u64(t.readCycles()[i]);
            w.u64(t.readNodes()[i]);
        }
        w.u64(t.pendingData().size());
        for (const Value v : t.pendingData())
            w.i64(v);
    }

    w.u64(snap.depths.size());
    for (const std::uint32_t d : snap.depths)
        w.u32(d);

    w.u64(snap.constraints.size());
    for (const QueryRecord &qr : snap.constraints) {
        w.u32(static_cast<std::uint32_t>(qr.fifo));
        w.u8(static_cast<std::uint8_t>(qr.kind));
        w.u32(qr.index);
        w.u64(qr.node);
        w.u8(qr.outcome ? 1 : 0);
    }

    w.u64(snap.tailNode.size());
    for (const std::uint64_t n : snap.tailNode)
        w.u64(n);
    w.u64(snap.tailSlack.size());
    for (const Cycles c : snap.tailSlack)
        w.u64(c);

    const SimResult &r = snap.result;
    w.u8(static_cast<std::uint8_t>(r.status));
    w.u64(r.totalCycles);
    w.u64(r.deadlockCycle);
    w.str(r.message);
    w.u64(r.warnings.size());
    for (const std::string &s : r.warnings)
        w.str(s);
    w.u64(r.memories.size());
    for (const auto &[name, vals] : r.memories) {
        w.str(name);
        w.u64(vals.size());
        for (const Value v : vals)
            w.i64(v);
    }
    w.u64(r.stats.events);
    w.u64(r.stats.queries);
    w.u64(r.stats.queriesSkipped);
    w.u64(r.stats.forcedFalse);
    w.u64(r.stats.forcedBlind);
    w.u64(r.stats.deadlockRetroSuspect);
    w.u64(r.stats.graphNodes);
    w.u64(r.stats.graphEdges);
    w.u64(r.stats.cyclesStepped);
    w.u64(r.stats.threadPauses);
}

void
decodeSnapshot(ByteReader &r, RunSnapshot &snap)
{
    const std::size_t nodeCount = r.count(21);
    snap.nodes.resize(nodeCount);
    for (NodeInfo &n : snap.nodes) {
        const std::uint8_t kind = r.u8();
        if (kind > kMaxEventKind)
            omnisim_fatal("run file corrupt: node kind %u out of range",
                          kind);
        n.kind = static_cast<EventKind>(kind);
        n.module = static_cast<ModuleId>(r.u32());
        n.channel = static_cast<std::int32_t>(r.u32());
        n.index = r.u32();
        n.duration = r.u64();
    }

    const std::size_t edgeCount = r.count(24);
    snap.edges.resize(edgeCount);
    for (auto &e : snap.edges) {
        e.src = r.u64();
        e.dst = r.u64();
        e.weight = r.u64();
    }

    const std::size_t seedCount = r.count(8);
    snap.seed.resize(seedCount);
    for (Cycles &c : snap.seed)
        c = r.u64();

    const std::size_t tableCount = r.count(8 + 8 + 8 + 8);
    snap.tables.reserve(tableCount);
    for (std::size_t t = 0; t < tableCount; ++t) {
        std::string label = r.str();
        const std::size_t writes = r.count(16);
        std::vector<Cycles> wc(writes);
        std::vector<std::uint64_t> wn(writes);
        for (std::size_t i = 0; i < writes; ++i) {
            wc[i] = r.u64();
            wn[i] = r.u64();
        }
        const std::size_t reads = r.count(16);
        if (reads > writes)
            omnisim_fatal("run file corrupt: fifo '%s' has %zu reads but "
                          "only %zu writes", label.c_str(), reads, writes);
        std::vector<Cycles> rc(reads);
        std::vector<std::uint64_t> rn(reads);
        for (std::size_t i = 0; i < reads; ++i) {
            rc[i] = r.u64();
            rn[i] = r.u64();
        }
        const std::size_t pending = r.count(8);
        if (pending != writes - reads)
            omnisim_fatal("run file corrupt: fifo '%s' pending count %zu "
                          "!= writes %zu - reads %zu", label.c_str(),
                          pending, writes, reads);
        std::deque<Value> data;
        for (std::size_t i = 0; i < pending; ++i)
            data.push_back(r.i64());
        snap.tables.push_back(FifoTable::restore(
            std::move(wc), std::move(rc), std::move(wn), std::move(rn),
            std::move(data), std::move(label)));
    }

    const std::size_t depthCount = r.count(4);
    snap.depths.resize(depthCount);
    for (std::uint32_t &d : snap.depths)
        d = r.u32();

    const std::size_t consCount = r.count(4 + 1 + 4 + 8 + 1);
    snap.constraints.resize(consCount);
    for (QueryRecord &qr : snap.constraints) {
        qr.fifo = static_cast<FifoId>(r.u32());
        const std::uint8_t kind = r.u8();
        if (kind > kMaxEventKind)
            omnisim_fatal("run file corrupt: constraint kind %u out of "
                          "range", kind);
        qr.kind = static_cast<EventKind>(kind);
        qr.index = r.u32();
        qr.node = r.u64();
        qr.outcome = r.u8() != 0;
    }

    const std::size_t tailCount = r.count(8);
    snap.tailNode.resize(tailCount);
    for (std::uint64_t &n : snap.tailNode)
        n = r.u64();
    const std::size_t slackCount = r.count(8);
    snap.tailSlack.resize(slackCount);
    for (Cycles &c : snap.tailSlack)
        c = r.u64();

    SimResult &res = snap.result;
    res.status = static_cast<SimStatus>(r.u8());
    res.totalCycles = r.u64();
    res.deadlockCycle = r.u64();
    res.message = r.str();
    const std::size_t warnCount = r.count(8);
    res.warnings.resize(warnCount);
    for (std::string &s : res.warnings)
        s = r.str();
    const std::size_t memCount = r.count(8 + 8);
    for (std::size_t m = 0; m < memCount; ++m) {
        std::string name = r.str();
        const std::size_t valCount = r.count(8);
        std::vector<Value> vals(valCount);
        for (Value &v : vals)
            v = r.i64();
        res.memories.emplace(std::move(name), std::move(vals));
    }
    res.stats.events = r.u64();
    res.stats.queries = r.u64();
    res.stats.queriesSkipped = r.u64();
    res.stats.forcedFalse = r.u64();
    res.stats.forcedBlind = r.u64();
    res.stats.deadlockRetroSuspect = r.u64();
    res.stats.graphNodes = r.u64();
    res.stats.graphEdges = r.u64();
    res.stats.cyclesStepped = r.u64();
    res.stats.threadPauses = r.u64();
}

// ---------------------------------------------------------------------------
// Compiled-layout section (v3). Only the layout's defining data is
// persisted: the access maps, depth caps, blocking-write counts, the
// derived LayoutCons fields, and the statistics counters are all
// recomputed from the snapshot on decode, so the section cannot drift
// from the arrays the solver actually indexes.
// ---------------------------------------------------------------------------

void
encodeLayout(ByteWriter &w, const opt::RunLayout &lay, bool withPlan)
{
    w.u8(static_cast<std::uint8_t>(lay.level));
    w.u64(lay.numNodes);
    w.u64(lay.remap.size());
    for (const std::uint32_t m : lay.remap)
        w.u32(m);
    w.u64(lay.seed.size());
    for (const Cycles c : lay.seed)
        w.u64(c);
    w.u64(lay.dur.size());
    for (const Cycles c : lay.dur)
        w.u64(c);
    w.u64(lay.edges.size());
    for (const auto &e : lay.edges) {
        w.u64(e.src);
        w.u64(e.dst);
        w.u64(e.weight);
    }
    w.u64(lay.floor);
    w.u64(lay.fifos.size());
    for (const opt::FifoLayout &fl : lay.fifos) {
        w.u64(fl.readNode.size());
        for (const std::uint32_t v : fl.readNode)
            w.u32(v);
        w.u64(fl.writeNode.size());
        for (const std::uint32_t v : fl.writeNode)
            w.u32(v);
    }
    w.u64(lay.cons.size());
    for (const opt::LayoutCons &c : lay.cons)
        w.u32(c.origIndex);
    w.u64(lay.stats.passes.size());
    for (const opt::PassStats &p : lay.stats.passes) {
        w.str(p.pass);
        w.u64(p.nodesEliminated);
        w.u64(p.edgesEliminated);
        w.u64(p.constraintsEliminated);
    }

    // Partition-plan section (v4).
    if (!withPlan)
        return;
    w.u8(lay.part.valid ? 1 : 0);
    w.u64(lay.part.order.size());
    for (const std::uint32_t v : lay.part.order)
        w.u32(v);
    w.u64(lay.part.levelOffsets.size());
    for (const std::uint32_t o : lay.part.levelOffsets)
        w.u32(o);
    w.u64(lay.part.coneOffsets.size());
    for (const std::uint32_t o : lay.part.coneOffsets)
        w.u32(o);
    w.u64(lay.part.frontierEdges);
    w.u32(lay.part.maxLevelWidth);
    w.u64(lay.part.minSafeDepth.size());
    for (const std::uint32_t d : lay.part.minSafeDepth)
        w.u32(d);
}

/** Read the raw layout section; only the persisted fields are filled
 *  (LayoutCons carries origIndex only). Callers must validateRunLayout
 *  and then hydrateLayout before the layout is usable. */
void
decodeLayout(ByteReader &r, opt::RunLayout &lay, bool hasPlan)
{
    const std::uint8_t level = r.u8();
    if (level > static_cast<std::uint8_t>(opt::OptLevel::O1))
        omnisim_fatal("run file corrupt: optimization level %u out of "
                      "range", level);
    lay.level = static_cast<opt::OptLevel>(level);
    lay.numNodes = static_cast<std::size_t>(r.u64());

    const std::size_t remapCount = r.count(4);
    lay.remap.resize(remapCount);
    for (std::uint32_t &m : lay.remap)
        m = r.u32();

    const std::size_t seedCount = r.count(8);
    lay.seed.resize(seedCount);
    for (Cycles &c : lay.seed)
        c = r.u64();
    const std::size_t durCount = r.count(8);
    lay.dur.resize(durCount);
    for (Cycles &c : lay.dur)
        c = r.u64();

    const std::size_t edgeCount = r.count(24);
    lay.edges.resize(edgeCount);
    for (auto &e : lay.edges) {
        e.src = r.u64();
        e.dst = r.u64();
        e.weight = r.u64();
    }

    lay.floor = r.u64();

    const std::size_t fifoCount = r.count(8 + 8);
    lay.fifos.resize(fifoCount);
    for (opt::FifoLayout &fl : lay.fifos) {
        const std::size_t reads = r.count(4);
        fl.readNode.resize(reads);
        for (std::uint32_t &v : fl.readNode)
            v = r.u32();
        const std::size_t writes = r.count(4);
        fl.writeNode.resize(writes);
        for (std::uint32_t &v : fl.writeNode)
            v = r.u32();
    }

    const std::size_t consCount = r.count(4);
    lay.cons.resize(consCount);
    for (opt::LayoutCons &c : lay.cons)
        c.origIndex = r.u32();

    const std::size_t passCount = r.count(8 + 8 + 8 + 8);
    lay.stats.passes.resize(passCount);
    for (opt::PassStats &p : lay.stats.passes) {
        p.pass = r.str();
        p.nodesEliminated = r.u64();
        p.edgesEliminated = r.u64();
        p.constraintsEliminated = r.u64();
    }

    if (!hasPlan)
        return; // v3: the caller re-derives the partition plan
    lay.part.valid = r.u8() != 0;
    const std::size_t orderCount = r.count(4);
    lay.part.order.resize(orderCount);
    for (std::uint32_t &v : lay.part.order)
        v = r.u32();
    const std::size_t levelCount = r.count(4);
    lay.part.levelOffsets.resize(levelCount);
    for (std::uint32_t &o : lay.part.levelOffsets)
        o = r.u32();
    const std::size_t coneCount = r.count(4);
    lay.part.coneOffsets.resize(coneCount);
    for (std::uint32_t &o : lay.part.coneOffsets)
        o = r.u32();
    lay.part.frontierEdges = r.u64();
    lay.part.maxLevelWidth = r.u32();
    const std::size_t msCount = r.count(4);
    lay.part.minSafeDepth.resize(msCount);
    for (std::uint32_t &d : lay.part.minSafeDepth)
        d = r.u32();
}

/** Check every invariant of a decoded partition plan the parallel
 *  engine's unchecked indexing (and its level-barrier correctness
 *  argument) relies on. Must run *after* hydrateLayout — the depth
 *  threshold recomputation reads the rebuilt access maps.
 *  @throws FatalError naming the first violation. */
void
validatePartitionPlan(const opt::RunLayout &lay)
{
    const opt::PartitionPlan &p = lay.part;
    if (!p.valid) {
        // An invalid plan carries no arrays; the engine ignores it.
        if (!p.order.empty() || !p.levelOffsets.empty() ||
            !p.coneOffsets.empty() || !p.minSafeDepth.empty())
            omnisim_fatal("run layout invalid: serial partition plan "
                          "carries level data");
        return;
    }
    const std::size_t n = lay.numNodes;
    if (p.order.size() != n)
        omnisim_fatal("run layout invalid: partition orders %zu of %zu "
                      "nodes", p.order.size(), n);
    const auto checkOffsets = [&](const std::vector<std::uint32_t> &off,
                                  const char *what) {
        if (off.empty() || off.front() != 0 || off.back() != n)
            omnisim_fatal("run layout invalid: partition %s offsets do "
                          "not span the node order", what);
        for (std::size_t i = 1; i < off.size(); ++i)
            if (off[i] < off[i - 1])
                omnisim_fatal("run layout invalid: partition %s offsets "
                              "decrease", what);
    };
    checkOffsets(p.levelOffsets, "level");
    checkOffsets(p.coneOffsets, "cone");
    // Every level boundary must also be a cone boundary (the engine
    // advances both cursors in lockstep).
    for (std::size_t l = 0, c = 0; l < p.levelOffsets.size(); ++l) {
        while (c < p.coneOffsets.size() &&
               p.coneOffsets[c] < p.levelOffsets[l])
            ++c;
        if (c >= p.coneOffsets.size() ||
            p.coneOffsets[c] != p.levelOffsets[l])
            omnisim_fatal("run layout invalid: partition cone offsets "
                          "do not refine the level offsets");
    }

    // The order must be a permutation; levels assigned through it.
    std::vector<std::uint32_t> levelOf(n, 0);
    std::vector<std::uint8_t> seen(n, 0);
    std::uint32_t maxWidth = 0;
    for (std::size_t l = 0; l + 1 < p.levelOffsets.size(); ++l) {
        maxWidth = std::max(maxWidth,
                            p.levelOffsets[l + 1] - p.levelOffsets[l]);
        for (std::uint32_t i = p.levelOffsets[l];
             i < p.levelOffsets[l + 1]; ++i) {
            const std::uint32_t v = p.order[i];
            if (v >= n || seen[v])
                omnisim_fatal("run layout invalid: partition order is "
                              "not a permutation of the layout nodes");
            seen[v] = 1;
            levelOf[v] = static_cast<std::uint32_t>(l);
        }
    }
    if (maxWidth != p.maxLevelWidth)
        omnisim_fatal("run layout invalid: partition level width %u "
                      "recorded as %u", maxWidth, p.maxLevelWidth);

    // Structural edges must climb strictly level-up...
    for (const auto &e : lay.edges)
        if (levelOf[e.src] >= levelOf[e.dst])
            omnisim_fatal("run layout invalid: partition level order "
                          "violates a structural edge");
    // ...and the persisted per-FIFO minimum admissible depths must be
    // exactly what those levels imply: the engine trusts them to admit
    // probes onto the leveled paths without rechecking any WAR edge, so
    // an understated threshold would silently misorder a relaxation.
    if (p.minSafeDepth.size() != lay.fifos.size())
        omnisim_fatal("run layout invalid: partition records %zu depth "
                      "thresholds for %zu FIFOs",
                      p.minSafeDepth.size(), lay.fifos.size());
    const std::vector<std::uint32_t> want = opt::minSafeDepths(lay, levelOf);
    for (std::size_t f = 0; f < want.size(); ++f)
        if (want[f] != p.minSafeDepth[f])
            omnisim_fatal("run layout invalid: partition depth "
                          "threshold of FIFO %zu is %u, levels imply %u",
                          f, p.minSafeDepth[f], want[f]);

    // The frontier count is derived data; keep the writer honest.
    std::vector<std::uint32_t> coneOf(n, 0);
    for (std::size_t c = 0; c + 1 < p.coneOffsets.size(); ++c)
        for (std::uint32_t i = p.coneOffsets[c]; i < p.coneOffsets[c + 1];
             ++i)
            coneOf[p.order[i]] = static_cast<std::uint32_t>(c);
    std::uint64_t frontier = 0;
    for (const auto &e : lay.edges)
        if (coneOf[e.src] != coneOf[e.dst])
            ++frontier;
    if (frontier != p.frontierEdges)
        omnisim_fatal("run layout invalid: partition frontier count "
                      "mismatch");
}

/** Fill in everything validateRunLayout confirmed derivable: the kept
 *  constraints' evaluation fields, the per-node access maps and depth
 *  caps, and the statistics counters. */
void
hydrateLayout(const RunSnapshot &snap, opt::RunLayout &lay)
{
    for (opt::LayoutCons &c : lay.cons) {
        const QueryRecord &qr = snap.constraints[c.origIndex];
        c.fifo = static_cast<std::uint32_t>(qr.fifo);
        c.kind = qr.kind;
        c.index = qr.index;
        c.node = lay.remap[qr.node];
        c.outcome = qr.outcome;
    }

    std::vector<std::vector<std::uint8_t>> writeBlocking(
        snap.tables.size());
    for (std::size_t f = 0; f < snap.tables.size(); ++f) {
        const FifoTable &t = snap.tables[f];
        writeBlocking[f].resize(t.writes());
        for (std::size_t w = 0; w < t.writes(); ++w)
            writeBlocking[f][w] =
                snap.nodes[t.writeNodes()[w]].kind == EventKind::FifoWrite
                    ? 1
                    : 0;
    }
    lay.rebuildAccessMaps(writeBlocking);

    lay.stats.level = lay.level;
    lay.stats.origNodes = snap.nodes.size();
    lay.stats.origEdges = snap.edges.size();
    lay.stats.optNodes = lay.numNodes;
    lay.stats.optEdges = lay.edges.size();
    lay.stats.origConstraints = snap.constraints.size();
    lay.stats.keptConstraints = lay.cons.size();
}

} // namespace

// ---------------------------------------------------------------------------
// Fingerprints.
// ---------------------------------------------------------------------------

std::uint64_t
designFingerprint(const Design &d)
{
    // Everything that could invalidate a recorded trace goes into the
    // hash; FIFO depths deliberately do not (see header). Field
    // separators ('\1') keep adjacent strings from aliasing.
    std::uint64_t h = fnv1a(d.name());
    const auto sep = [&] { h = fnv1aU64(0x1, h); };
    for (const auto &m : d.modules()) {
        sep();
        h = fnv1a(m.name, h);
        h = fnv1aU64((m.opts.hasInfiniteLoop ? 1u : 0u) |
                     (m.opts.behaviorVariesOnNb ? 2u : 0u), h);
    }
    for (const auto &f : d.fifos()) {
        sep();
        h = fnv1a(f.name, h);
        h = fnv1aU64(static_cast<std::uint64_t>(f.writer), h);
        h = fnv1aU64(static_cast<std::uint64_t>(f.reader), h);
        h = fnv1aU64(static_cast<std::uint64_t>(f.writeKind), h);
        h = fnv1aU64(static_cast<std::uint64_t>(f.readKind), h);
    }
    for (const auto &m : d.memories()) {
        sep();
        h = fnv1a(m.name, h);
        h = fnv1aU64(m.size, h);
    }
    for (const auto &a : d.axiPorts()) {
        sep();
        h = fnv1a(a.name, h);
        h = fnv1aU64(static_cast<std::uint64_t>(a.owner), h);
        h = fnv1aU64(static_cast<std::uint64_t>(a.backing), h);
        h = fnv1aU64(a.config.readLatency, h);
        h = fnv1aU64(a.config.writeAckLatency, h);
    }
    for (const auto &[mem, vals] : d.inputs()) {
        sep();
        h = fnv1aU64(static_cast<std::uint64_t>(mem), h);
        for (const Value v : vals)
            h = fnv1aU64(static_cast<std::uint64_t>(v), h);
    }
    return h;
}

std::uint64_t
depthVectorHash(const std::vector<std::uint32_t> &depths)
{
    std::uint64_t h = fnv1aU64(depths.size(), 1469598103934665603ull);
    for (const std::uint32_t d : depths)
        h = fnv1aU64(d, h);
    return h;
}

// ---------------------------------------------------------------------------
// File image.
// ---------------------------------------------------------------------------

namespace
{

std::string
sealImage(std::uint32_t version, const ByteWriter &payload)
{
    ByteWriter file;
    file.raw(kRunMagic, sizeof(kRunMagic));
    file.u32(version);
    file.u64(fnv1a(payload.bytes()));
    file.u64(payload.size());
    file.raw(payload.bytes().data(), payload.size());
    return file.take();
}

} // namespace

namespace
{

std::string
encodeRunAt(std::uint32_t version, const RunFileMeta &meta,
            const RunSnapshot &snap, const opt::RunLayout *layout)
{
    opt::RunLayout recompiled;
    if (version >= 3 && !layout) {
        // No layout supplied: run the pass pipeline here. It is
        // deterministic, so the persisted layout matches what any
        // default-options engine computed for this snapshot.
        opt::LayoutInput in;
        in.nodes = &snap.nodes;
        in.edges = &snap.edges;
        in.seed = &snap.seed;
        in.tables = &snap.tables;
        in.depths = &snap.depths;
        in.constraints = &snap.constraints;
        in.tailNode = &snap.tailNode;
        in.tailSlack = &snap.tailSlack;
        recompiled = opt::PassManager(opt::OptLevel::O1).compile(in);
        layout = &recompiled;
    }

    ByteWriter payload;
    payload.str(meta.design);
    payload.str(meta.engine);
    payload.u64(meta.fingerprint);
    encodeSnapshot(payload, snap);
    if (version >= 3)
        encodeLayout(payload, *layout, /*withPlan=*/version >= 4);
    return sealImage(version, payload);
}

} // namespace

std::string
encodeRun(const RunFileMeta &meta, const RunSnapshot &snap,
          const opt::RunLayout *layout)
{
    return encodeRunAt(kRunFormatVersion, meta, snap, layout);
}

std::string
encodeRunV2(const RunFileMeta &meta, const RunSnapshot &snap)
{
    return encodeRunAt(2, meta, snap, nullptr);
}

std::string
encodeRunV3(const RunFileMeta &meta, const RunSnapshot &snap,
            const opt::RunLayout *layout)
{
    return encodeRunAt(3, meta, snap, layout);
}

void
decodeRun(std::string_view bytes, RunFileMeta &meta, RunSnapshot &snap)
{
    std::optional<opt::RunLayout> layout;
    decodeRun(bytes, meta, snap, layout);
}

void
decodeRun(std::string_view bytes, RunFileMeta &meta, RunSnapshot &snap,
          std::optional<opt::RunLayout> &layout)
{
    ByteReader r(bytes);
    const std::string_view magic = r.raw(sizeof(kRunMagic));
    if (magic != std::string_view(kRunMagic, sizeof(kRunMagic)))
        omnisim_fatal("not an OmniSim run file (bad magic)");
    const std::uint32_t version = r.u32();
    if (version < kRunMinFormatVersion || version > kRunFormatVersion)
        omnisim_fatal("run file format version %u unsupported (this "
                      "build reads versions %u through %u)", version,
                      kRunMinFormatVersion, kRunFormatVersion);
    const std::uint64_t checksum = r.u64();
    const std::uint64_t size = r.u64();
    if (size != r.remaining())
        omnisim_fatal("run file corrupt: payload size %llu != %zu "
                      "remaining bytes",
                      static_cast<unsigned long long>(size), r.remaining());
    const std::string_view payload = r.raw(static_cast<std::size_t>(size));
    if (fnv1a(payload) != checksum)
        omnisim_fatal("run file corrupt: payload checksum mismatch");

    ByteReader pr(payload);
    meta.design = pr.str();
    meta.engine = pr.str();
    meta.fingerprint = pr.u64();
    snap = RunSnapshot{};
    layout.reset();
    decodeSnapshot(pr, snap);
    if (version >= 3) {
        layout.emplace();
        decodeLayout(pr, *layout, /*hasPlan=*/version >= 4);
    }
    if (!pr.atEnd())
        omnisim_fatal("run file corrupt: %zu trailing bytes after the "
                      "snapshot", pr.remaining());
    validateSnapshot(snap);
    if (layout) {
        validateRunLayout(snap, *layout);
        hydrateLayout(snap, *layout);
        if (version >= 4)
            validatePartitionPlan(*layout);
        else if (layout->level != opt::OptLevel::O0)
            // v3 file: re-derive the partition plan. The builder is
            // deterministic over the hydrated layout, so the rehydrated
            // run matches what a v4 writer would have persisted.
            layout->part = opt::buildPartitionPlan(*layout, snap.depths);
        if (opt::verifyEnabled()) {
            // The IR verifier re-checks every persisted-layout
            // invariant from scratch (the input-dependent conservation
            // checks are skipped — the compile input is gone).
            opt::VerifyContext ctx;
            ctx.pass = "rehydrate";
            opt::verifyLayout(*layout, ctx);
            opt::verifyPartitionPlan(*layout, snap.depths, ctx);
        }
    }
}

void
validateSnapshot(const RunSnapshot &snap)
{
    const std::size_t n = snap.nodes.size();
    if (snap.seed.size() != n)
        omnisim_fatal("run snapshot invalid: %zu seeds for %zu nodes",
                      snap.seed.size(), n);
    if (snap.depths.size() != snap.tables.size())
        omnisim_fatal("run snapshot invalid: %zu depths for %zu tables",
                      snap.depths.size(), snap.tables.size());
    for (const std::uint32_t d : snap.depths)
        if (d < 1)
            omnisim_fatal("run snapshot invalid: zero FIFO depth");
    for (const auto &e : snap.edges)
        if (e.src >= n || e.dst >= n)
            omnisim_fatal("run snapshot invalid: edge %llu -> %llu "
                          "outside %zu nodes",
                          static_cast<unsigned long long>(e.src),
                          static_cast<unsigned long long>(e.dst), n);
    for (const FifoTable &t : snap.tables) {
        for (std::size_t i = 0; i < t.writes(); ++i)
            if (t.writeNodes()[i] >= n)
                omnisim_fatal("run snapshot invalid: fifo '%s' write "
                              "node out of range", t.label());
        for (std::size_t i = 0; i < t.reads(); ++i)
            if (t.readNodes()[i] >= n)
                omnisim_fatal("run snapshot invalid: fifo '%s' read "
                              "node out of range", t.label());
    }
    for (const QueryRecord &qr : snap.constraints) {
        if (qr.fifo < 0 ||
            static_cast<std::size_t>(qr.fifo) >= snap.tables.size())
            omnisim_fatal("run snapshot invalid: constraint names fifo "
                          "%d of %zu", qr.fifo, snap.tables.size());
        if (!isQueryKind(qr.kind))
            omnisim_fatal("run snapshot invalid: constraint kind '%s' is "
                          "not a query", eventKindName(qr.kind));
        if (qr.index < 1)
            omnisim_fatal("run snapshot invalid: constraint access "
                          "index 0 (indices are 1-based)");
        if (qr.node >= n)
            omnisim_fatal("run snapshot invalid: constraint node out of "
                          "range");
    }
    if (snap.tailNode.size() != snap.tailSlack.size())
        omnisim_fatal("run snapshot invalid: %zu tail nodes, %zu tail "
                      "slacks", snap.tailNode.size(),
                      snap.tailSlack.size());
    for (const std::uint64_t t : snap.tailNode)
        if (t >= n)
            omnisim_fatal("run snapshot invalid: module tail node out of "
                          "range");
    if (snap.result.status != SimStatus::Ok)
        omnisim_fatal("run snapshot invalid: recorded status is '%s', "
                      "only successful runs are storable",
                      simStatusName(snap.result.status));
}

void
validateRunLayout(const RunSnapshot &snap, const opt::RunLayout &layout)
{
    const std::size_t n = layout.numNodes;
    if (n > snap.nodes.size())
        omnisim_fatal("run layout invalid: %zu layout nodes for %zu "
                      "original nodes", n, snap.nodes.size());
    if (layout.remap.size() != snap.nodes.size())
        omnisim_fatal("run layout invalid: remap table has %zu entries "
                      "for %zu original nodes", layout.remap.size(),
                      snap.nodes.size());
    for (const std::uint32_t m : layout.remap)
        if (m != opt::kDropped && m >= n)
            omnisim_fatal("run layout invalid: remap entry %u outside "
                          "%zu layout nodes", m, n);
    if (layout.seed.size() != n || layout.dur.size() != n)
        omnisim_fatal("run layout invalid: %zu seeds / %zu durations "
                      "for %zu layout nodes", layout.seed.size(),
                      layout.dur.size(), n);
    for (const auto &e : layout.edges)
        if (e.src >= n || e.dst >= n)
            omnisim_fatal("run layout invalid: edge %llu -> %llu outside "
                          "%zu layout nodes",
                          static_cast<unsigned long long>(e.src),
                          static_cast<unsigned long long>(e.dst), n);
    if (layout.fifos.size() != snap.tables.size())
        omnisim_fatal("run layout invalid: %zu fifo maps for %zu tables",
                      layout.fifos.size(), snap.tables.size());
    for (std::size_t f = 0; f < layout.fifos.size(); ++f) {
        const opt::FifoLayout &fl = layout.fifos[f];
        const FifoTable &t = snap.tables[f];
        if (fl.readNode.size() != t.reads() ||
            fl.writeNode.size() != t.writes())
            omnisim_fatal("run layout invalid: fifo '%s' access map "
                          "arity mismatch (%zu/%zu reads, %zu/%zu "
                          "writes)", t.label(), fl.readNode.size(),
                          static_cast<std::size_t>(t.reads()),
                          fl.writeNode.size(),
                          static_cast<std::size_t>(t.writes()));
        for (const std::uint32_t v : fl.readNode)
            if (v != opt::kNoNode && v >= n)
                omnisim_fatal("run layout invalid: fifo '%s' read entry "
                              "outside %zu layout nodes", t.label(), n);
        for (const std::uint32_t v : fl.writeNode)
            if (v != opt::kNoNode && v >= n)
                omnisim_fatal("run layout invalid: fifo '%s' write entry "
                              "outside %zu layout nodes", t.label(), n);
    }

    // Kept constraints: recorded order (strictly ascending original
    // indices), live query nodes, and — the invariant evalConstraint's
    // unchecked indexing relies on — pinned targets: a read-kind query
    // of index w keeps the w-th write entry, and a write-kind query of
    // index i keeps every read entry the sliding target r = i - depth
    // can land on across the clamped lattice (r in [1, min(i-1,
    // reads)]).
    std::vector<std::uint32_t> maxWriteConsIdx(layout.fifos.size(), 0);
    std::uint64_t prevOrig = 0;
    bool first = true;
    for (const opt::LayoutCons &c : layout.cons) {
        if (c.origIndex >= snap.constraints.size())
            omnisim_fatal("run layout invalid: kept constraint %u of "
                          "%zu recorded", c.origIndex,
                          snap.constraints.size());
        if (!first && c.origIndex <= prevOrig)
            omnisim_fatal("run layout invalid: kept constraints out of "
                          "recorded order");
        first = false;
        prevOrig = c.origIndex;

        const QueryRecord &qr = snap.constraints[c.origIndex];
        if (layout.remap[qr.node] == opt::kDropped)
            omnisim_fatal("run layout invalid: kept constraint %u lost "
                          "its query node", c.origIndex);
        const opt::FifoLayout &fl =
            layout.fifos[static_cast<std::size_t>(qr.fifo)];
        switch (qr.kind) {
          case EventKind::FifoNbRead:
          case EventKind::FifoCanRead:
            if (qr.index <= fl.writeNode.size() &&
                fl.writeNode[qr.index - 1] == opt::kNoNode)
                omnisim_fatal("run layout invalid: kept read query %u "
                              "lost its target write entry", c.origIndex);
            break;
          default: {
            auto &mx = maxWriteConsIdx[static_cast<std::size_t>(qr.fifo)];
            mx = std::max(mx, qr.index);
            break;
          }
        }
    }
    for (std::size_t f = 0; f < layout.fifos.size(); ++f) {
        const opt::FifoLayout &fl = layout.fifos[f];
        if (maxWriteConsIdx[f] < 2)
            continue;
        const std::size_t lim = std::min<std::size_t>(
            maxWriteConsIdx[f] - 1, fl.readNode.size());
        for (std::size_t r = 0; r < lim; ++r)
            if (fl.readNode[r] == opt::kNoNode)
                omnisim_fatal("run layout invalid: write query target "
                              "read entry %zu of fifo '%s' was dropped",
                              r + 1, snap.tables[f].label());
    }
}

// ---------------------------------------------------------------------------
// StoredRun.
// ---------------------------------------------------------------------------

StoredRun::StoredRun(RunSnapshot snap, RunFileMeta meta,
                     std::optional<opt::RunLayout> layout)
    : meta_(std::move(meta)), snap_(std::move(snap))
{
    // A persisted layout (v3 file) skips the pass pipeline entirely;
    // otherwise recompile — deterministic, so both paths freeze the
    // same structure.
    compiled_ = layout
                    ? std::make_unique<CompiledRun>(snap_,
                                                    std::move(*layout))
                    : std::make_unique<CompiledRun>(snap_);
    if (!compiled_->baselineAcyclic())
        omnisim_fatal("stored run for '%s' has a timing-infeasible "
                      "baseline — file is stale or corrupt",
                      meta_.design.c_str());
}

std::unique_ptr<StoredRun>
StoredRun::rehydrate(RunSnapshot snap, RunFileMeta meta)
{
    validateSnapshot(snap);
    return std::unique_ptr<StoredRun>(
        new StoredRun(std::move(snap), std::move(meta), std::nullopt));
}

std::unique_ptr<StoredRun>
StoredRun::open(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        omnisim_fatal("cannot open run file '%s'", path.c_str());
    std::string bytes;
    char buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, got);
    const bool readError = std::ferror(f) != 0;
    std::fclose(f);
    if (readError)
        omnisim_fatal("error reading run file '%s'", path.c_str());

    RunFileMeta meta;
    RunSnapshot snap;
    std::optional<opt::RunLayout> layout;
    decodeRun(bytes, meta, snap, layout); // validates both
    return std::unique_ptr<StoredRun>(new StoredRun(
        std::move(snap), std::move(meta), std::move(layout)));
}

IncrementalOutcome
StoredRun::resimulate(const std::vector<std::uint32_t> &depths,
                      unsigned jobs) const
{
    IncrementalOutcome out;
    if (depths.size() != snap_.tables.size()) {
        out.reason = strf("depth vector has %zu entries; stored run has "
                          "%zu FIFOs", depths.size(), snap_.tables.size());
        return out;
    }

    const CompiledRun::Attempt a = compiled_->resimulate(depths, jobs);
    out.viaCompiled = true;
    out.viaDelta = a.viaDelta;
    switch (a.status) {
      case CompiledRun::Attempt::Status::Infeasible:
        out.reason = "new depths make the recorded timing infeasible "
                     "(potential deadlock) — full re-simulation required";
        return out;
      case CompiledRun::Attempt::Status::Diverged: {
        const QueryRecord &qr = snap_.constraints[a.constraintIndex];
        // Table labels are set from the design's FIFO names when the
        // run is recorded, so this message is byte-identical to the
        // in-process OmniSim::resimulate() divergence text.
        out.reason = strf(
            "constraint violated: %s #%u on fifo '%s' would now "
            "resolve %s", eventKindName(qr.kind), qr.index,
            snap_.tables[qr.fifo].label(),
            a.nowAnswer ? "true" : "false");
        return out;
      }
      case CompiledRun::Attempt::Status::Reused:
        out.reused = true;
        out.result = snap_.result;
        out.result.totalCycles = a.totalCycles;
        return out;
    }
    omnisim_panic("bad compiled attempt status");
}

} // namespace omnisim::io
