/**
 * @file
 * The hardware-intrinsic interface that dataflow module bodies program
 * against. This is the embedded-DSL equivalent of OmniSim's runtime shared
 * library (§6.1): every FIFO/AXI/memory access a design makes goes through
 * a Context, and each simulation engine supplies its own implementation
 * (naive C-sim, cycle-lockstep co-sim, LightningSim trace generation,
 * OmniSim orchestration).
 *
 * Module bodies must be re-entrant: capture only identifiers and
 * configuration by value, keep all mutable state in locals, so the same
 * Design can be run by any engine any number of times.
 */

#ifndef OMNISIM_DESIGN_CONTEXT_HH
#define OMNISIM_DESIGN_CONTEXT_HH

#include <cstdint>

#include "support/types.hh"

namespace omnisim
{

/** Abstract hardware-intrinsic interface for dataflow module bodies. */
class Context
{
  public:
    virtual ~Context() = default;

    /** Blocking FIFO read: stalls until data is available. */
    virtual Value read(FifoId f) = 0;

    /** Blocking FIFO write: stalls until space is available. */
    virtual void write(FifoId f, Value v) = 0;

    /**
     * Non-blocking FIFO read (hls::stream::read_nb).
     * @return true and fills out when data was available this cycle.
     */
    virtual bool readNb(FifoId f, Value &out) = 0;

    /**
     * Non-blocking FIFO write (hls::stream::write_nb).
     * @return true when the value was accepted this cycle.
     */
    virtual bool writeNb(FifoId f, Value v) = 0;

    /** @return true when the FIFO has no readable data this cycle. */
    virtual bool empty(FifoId f) = 0;

    /** @return true when the FIFO has no writable space this cycle. */
    virtual bool full(FifoId f) = 0;

    /**
     * An empty() whose result the design does not use. The §7.3.2 LLVM
     * pass replaces such calls with skippable markers; engines may elide
     * the query entirely.
     */
    virtual void emptyUnused(FifoId f) = 0;

    /** A full() whose result the design does not use (§7.3.2). */
    virtual void fullUnused(FifoId f) = 0;

    /** Bounds-checked load from a design memory. */
    virtual Value load(MemId m, std::uint64_t idx) = 0;

    /** Bounds-checked store to a design memory. */
    virtual void store(MemId m, std::uint64_t idx, Value v) = 0;

    /** Issue an AXI read-burst request for len beats starting at addr. */
    virtual void axiReadReq(AxiId a, std::uint64_t addr,
                            std::uint32_t len) = 0;

    /** Receive the next beat of the oldest outstanding read burst. */
    virtual Value axiRead(AxiId a) = 0;

    /** Issue an AXI write-burst request for len beats starting at addr. */
    virtual void axiWriteReq(AxiId a, std::uint64_t addr,
                             std::uint32_t len) = 0;

    /** Send the next data beat of the current write burst. */
    virtual void axiWrite(AxiId a, Value v) = 0;

    /** Wait for the write response of the current write burst. */
    virtual void axiWriteResp(AxiId a) = 0;

    /** Model n cycles of scheduled compute latency. */
    virtual void advance(Cycles n) = 0;

    /** @return the module-local current hardware cycle. */
    virtual Cycles now() const = 0;

    /** Enter a pipelined loop region with initiation interval ii. */
    virtual void pipelineBegin(std::uint32_t ii) = 0;

    /** Begin the next iteration of the innermost pipelined loop. */
    virtual void iterBegin() = 0;

    /** Leave the innermost pipelined loop region. */
    virtual void pipelineEnd() = 0;
};

/**
 * RAII helper for pipelined loops:
 * @code
 *   PipelineScope pipe(ctx, 1);
 *   for (int i = 0; i < n; ++i) {
 *       pipe.iter();
 *       ctx.write(out, ctx.load(mem, i));
 *   }
 * @endcode
 */
class PipelineScope
{
  public:
    PipelineScope(Context &ctx, std::uint32_t ii)
        : ctx_(ctx)
    {
        ctx_.pipelineBegin(ii);
    }

    /** Start the next iteration. */
    void iter() { ctx_.iterBegin(); }

    ~PipelineScope() { ctx_.pipelineEnd(); }

    PipelineScope(const PipelineScope &) = delete;
    PipelineScope &operator=(const PipelineScope &) = delete;

  private:
    Context &ctx_;
};

} // namespace omnisim

#endif // OMNISIM_DESIGN_CONTEXT_HH
