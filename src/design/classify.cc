#include "design/classify.hh"

#include <algorithm>
#include <cstdint>

#include "support/logging.hh"

namespace omnisim
{

const char *
designTypeName(DesignType t)
{
    switch (t) {
      case DesignType::A: return "A";
      case DesignType::B: return "B";
      case DesignType::C: return "C";
    }
    return "?";
}

const char *
simLevelName(SimLevel l)
{
    switch (l) {
      case SimLevel::L1: return "L1";
      case SimLevel::L2: return "L2";
      case SimLevel::L3: return "L3";
    }
    return "?";
}

namespace
{

/** Iterative Tarjan SCC over the module graph (writer -> reader edges). */
class TarjanScc
{
  public:
    explicit TarjanScc(const Design &d)
        : design_(d), n_(d.modules().size())
    {
        adj_.resize(n_);
        for (const auto &f : d.fifos())
            adj_[f.writer].push_back(f.reader);
        index_.assign(n_, -1);
        low_.assign(n_, 0);
        onStack_.assign(n_, false);
    }

    std::vector<std::vector<ModuleId>>
    run()
    {
        for (std::size_t v = 0; v < n_; ++v)
            if (index_[v] < 0)
                strongConnect(v);
        return std::move(sccs_);
    }

  private:
    void
    strongConnect(std::size_t root)
    {
        // Explicit stack of (node, next-child-index) to avoid recursion.
        std::vector<std::pair<std::size_t, std::size_t>> work;
        work.emplace_back(root, 0);
        pushNode(root);
        while (!work.empty()) {
            auto &[v, ci] = work.back();
            if (ci < adj_[v].size()) {
                const std::size_t w = adj_[v][ci++];
                if (index_[w] < 0) {
                    pushNode(w);
                    work.emplace_back(w, 0);
                } else if (onStack_[w]) {
                    low_[v] = std::min(low_[v],
                                       static_cast<std::int64_t>(index_[w]));
                }
            } else {
                if (low_[v] == index_[v])
                    popScc(v);
                const std::size_t child = v;
                work.pop_back();
                if (!work.empty()) {
                    auto &parent = work.back().first;
                    low_[parent] = std::min(low_[parent], low_[child]);
                }
            }
        }
    }

    void
    pushNode(std::size_t v)
    {
        index_[v] = counter_;
        low_[v] = counter_;
        ++counter_;
        stack_.push_back(v);
        onStack_[v] = true;
    }

    void
    popScc(std::size_t v)
    {
        std::vector<ModuleId> scc;
        for (;;) {
            const std::size_t w = stack_.back();
            stack_.pop_back();
            onStack_[w] = false;
            scc.push_back(static_cast<ModuleId>(w));
            if (w == v)
                break;
        }
        // Keep only cyclic groups: size > 1 or an explicit self-loop.
        bool self_loop = false;
        if (scc.size() == 1) {
            for (std::size_t t : adj_[scc[0]])
                if (t == static_cast<std::size_t>(scc[0]))
                    self_loop = true;
        }
        if (scc.size() > 1 || self_loop)
            sccs_.push_back(std::move(scc));
    }

    const Design &design_;
    std::size_t n_;
    std::vector<std::vector<std::size_t>> adj_;
    std::vector<std::int64_t> index_;
    std::vector<std::int64_t> low_;
    std::vector<bool> onStack_;
    std::vector<std::size_t> stack_;
    std::vector<std::vector<ModuleId>> sccs_;
    std::int64_t counter_ = 0;
};

/** Kahn topological order over modules; empty when cyclic. */
std::vector<ModuleId>
topoOrder(const Design &d)
{
    const std::size_t n = d.modules().size();
    std::vector<std::uint32_t> indeg(n, 0);
    std::vector<std::vector<std::size_t>> adj(n);
    for (const auto &f : d.fifos()) {
        adj[f.writer].push_back(f.reader);
        ++indeg[f.reader];
    }
    std::vector<ModuleId> order;
    order.reserve(n);
    // Stable: prefer low module ids first so that declaration order wins
    // among independent modules (matches Vitis C-sim semantics).
    std::vector<std::size_t> ready;
    for (std::size_t v = n; v-- > 0;)
        if (indeg[v] == 0)
            ready.push_back(v);
    std::sort(ready.rbegin(), ready.rend());
    while (!ready.empty()) {
        const std::size_t v = ready.back();
        ready.pop_back();
        order.push_back(static_cast<ModuleId>(v));
        for (std::size_t w : adj[v]) {
            if (--indeg[w] == 0) {
                ready.push_back(w);
                std::sort(ready.rbegin(), ready.rend());
            }
        }
    }
    if (order.size() != n)
        order.clear();
    return order;
}

} // namespace

Classification
classify(const Design &design)
{
    Classification c;

    for (const auto &f : design.fifos()) {
        if (f.writeKind != AccessKind::Blocking ||
            f.readKind != AccessKind::Blocking) {
            c.anyNonBlocking = true;
        }
    }
    for (const auto &m : design.modules()) {
        if (m.opts.hasInfiniteLoop)
            c.anyInfiniteLoop = true;
        if (m.opts.behaviorVariesOnNb)
            c.behaviorVaries = true;
    }
    if (c.behaviorVaries && !c.anyNonBlocking) {
        omnisim_fatal(
            "design '%s' declares behaviorVariesOnNb but has no "
            "non-blocking FIFO access", design.name().c_str());
    }

    c.cycles = TarjanScc(design).run();
    c.cyclic = !c.cycles.empty();
    c.topoOrder = topoOrder(design);
    omnisim_assert(c.cyclic == c.topoOrder.empty() ||
                   design.modules().empty(),
                   "SCC and topological analyses disagree");

    if (c.behaviorVaries) {
        c.type = DesignType::C;
    } else if (c.anyNonBlocking || c.cyclic || c.anyInfiniteLoop) {
        c.type = DesignType::B;
    } else {
        c.type = DesignType::A;
    }

    // Fig. 4: Type A -> (L1, L1); Type B -> (L2, L3); Type C -> (L3, L3).
    switch (c.type) {
      case DesignType::A:
        c.funcSimLevel = SimLevel::L1;
        c.perfSimLevel = SimLevel::L1;
        break;
      case DesignType::B:
        c.funcSimLevel = SimLevel::L2;
        c.perfSimLevel = SimLevel::L3;
        break;
      case DesignType::C:
        c.funcSimLevel = SimLevel::L3;
        c.perfSimLevel = SimLevel::L3;
        break;
    }
    return c;
}

DesignSummary
summarize(const Design &design)
{
    const Classification c = classify(design);
    bool any_b = false;
    bool any_nb = false;
    for (const auto &f : design.fifos()) {
        for (AccessKind k : {f.writeKind, f.readKind}) {
            if (k == AccessKind::Blocking)
                any_b = true;
            else if (k == AccessKind::NonBlocking)
                any_nb = true;
            else
                any_b = any_nb = true;
        }
    }
    std::string style = any_nb ? (any_b ? "NB" : "NB") : "B";
    // The paper's Table 4 lists "NB" whenever non-blocking access is
    // present, even if blocking access coexists.
    return DesignSummary{design.name(), c.type, design.modules().size(),
                         design.fifos().size(), style, c.cyclic};
}

} // namespace omnisim
