#include "design/frontend.hh"

#include <set>
#include <string>

#include "support/logging.hh"

namespace omnisim
{

namespace
{

void
checkUniqueNames(const Design &d)
{
    std::set<std::string> seen;
    for (const auto &m : d.modules()) {
        if (!seen.insert("m:" + m.name).second)
            omnisim_fatal("duplicate module name '%s'", m.name.c_str());
    }
    for (const auto &f : d.fifos()) {
        if (!seen.insert("f:" + f.name).second)
            omnisim_fatal("duplicate FIFO name '%s'", f.name.c_str());
    }
    for (const auto &m : d.memories()) {
        if (!seen.insert("mem:" + m.name).second)
            omnisim_fatal("duplicate memory name '%s'", m.name.c_str());
    }
    for (const auto &a : d.axiPorts()) {
        if (!seen.insert("axi:" + a.name).second)
            omnisim_fatal("duplicate AXI port name '%s'", a.name.c_str());
    }
}

} // namespace

CompiledDesign
compile(const Design &design)
{
    if (design.modules().empty())
        omnisim_fatal("design '%s' has no modules", design.name().c_str());
    checkUniqueNames(design);
    for (const auto &f : design.fifos()) {
        if (f.writer == invalidId || f.reader == invalidId) {
            omnisim_fatal("FIFO '%s' of design '%s' is not connected",
                          f.name.c_str(), design.name().c_str());
        }
    }
    for (const auto &a : design.axiPorts()) {
        if (a.owner == invalidId) {
            omnisim_fatal("AXI port '%s' of design '%s' has no owner",
                          a.name.c_str(), design.name().c_str());
        }
    }

    CompiledDesign out;
    out.design = &design;
    out.classification = classify(design);

    out.threadPlan.reserve(design.modules().size());
    for (std::size_t i = 0; i < design.modules().size(); ++i)
        out.threadPlan.push_back(static_cast<ModuleId>(i));

    return out;
}

} // namespace omnisim
