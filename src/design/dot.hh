/**
 * @file
 * Graphviz export of dataflow designs: modules as nodes, FIFO channels
 * as edges annotated with depth and access kinds. Useful for inspecting
 * the module graph the taxonomy classifier reasons about. Also renders
 * a design's frozen *run graph* at a chosen compilation level, so the
 * collapsed/deduplicated -O1 layout can be visually diffed against the
 * raw -O0 trace (`omnisim_cli dot <design> --optimized`).
 */

#ifndef OMNISIM_DESIGN_DOT_HH
#define OMNISIM_DESIGN_DOT_HH

#include <string>

#include "design/design.hh"
#include "opt/opt.hh"

namespace omnisim
{

/**
 * Render the module/FIFO graph of a design in Graphviz DOT syntax.
 * Cyclic-group members (SCCs) are highlighted, matching §3.1's cyclic
 * dependency analysis.
 */
std::string toDot(const Design &design);

/**
 * Render the frozen run graph of a design in Graphviz DOT syntax: the
 * design is simulated once, the finished trace is compiled through the
 * src/opt/ pass pipeline at @p level, and the resulting layout is
 * emitted with every node annotated by the original trace node(s) it
 * represents. Rendering the same design at OptLevel::O0 (the identity
 * layout) and OptLevel::O1 and diffing the two shows exactly what
 * lattice-prune/chain-collapse/dedup removed or merged.
 * @throws FatalError when the baseline run does not complete Ok.
 */
std::string toDotRun(const Design &design, opt::OptLevel level);

} // namespace omnisim

#endif // OMNISIM_DESIGN_DOT_HH
