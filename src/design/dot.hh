/**
 * @file
 * Graphviz export of dataflow designs: modules as nodes, FIFO channels
 * as edges annotated with depth and access kinds. Useful for inspecting
 * the module graph the taxonomy classifier reasons about.
 */

#ifndef OMNISIM_DESIGN_DOT_HH
#define OMNISIM_DESIGN_DOT_HH

#include <string>

#include "design/design.hh"

namespace omnisim
{

/**
 * Render the module/FIFO graph of a design in Graphviz DOT syntax.
 * Cyclic-group members (SCCs) are highlighted, matching §3.1's cyclic
 * dependency analysis.
 */
std::string toDot(const Design &design);

} // namespace omnisim

#endif // OMNISIM_DESIGN_DOT_HH
