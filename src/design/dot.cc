#include "design/dot.hh"

#include <set>
#include <sstream>

#include "design/classify.hh"
#include "support/logging.hh"

namespace omnisim
{

std::string
toDot(const Design &design)
{
    const Classification cls = classify(design);
    std::set<ModuleId> cyclic_members;
    for (const auto &scc : cls.cycles)
        cyclic_members.insert(scc.begin(), scc.end());

    std::ostringstream os;
    os << "digraph \"" << design.name() << "\" {\n";
    os << "  rankdir=LR;\n";
    os << "  label=\"" << design.name() << " (Type "
       << designTypeName(cls.type) << ")\";\n";
    for (std::size_t m = 0; m < design.modules().size(); ++m) {
        const auto &mod = design.modules()[m];
        os << "  m" << m << " [shape=box, label=\"" << mod.name << "\"";
        if (cyclic_members.count(static_cast<ModuleId>(m)))
            os << ", style=filled, fillcolor=\"#ffd0d0\"";
        os << "];\n";
    }
    for (const auto &f : design.fifos()) {
        os << "  m" << f.writer << " -> m" << f.reader << " [label=\""
           << f.name << " [" << f.depth << "] "
           << accessKindName(f.writeKind) << "/"
           << accessKindName(f.readKind) << "\"";
        if (f.writeKind != AccessKind::Blocking ||
            f.readKind != AccessKind::Blocking) {
            os << ", color=\"#c00000\"";
        }
        os << "];\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace omnisim
