#include "design/dot.hh"

#include <set>
#include <sstream>

#include "core/omnisim.hh"
#include "design/classify.hh"
#include "design/frontend.hh"
#include "opt/layout.hh"
#include "opt/pass_manager.hh"
#include "support/logging.hh"

namespace omnisim
{

std::string
toDot(const Design &design)
{
    const Classification cls = classify(design);
    std::set<ModuleId> cyclic_members;
    for (const auto &scc : cls.cycles)
        cyclic_members.insert(scc.begin(), scc.end());

    std::ostringstream os;
    os << "digraph \"" << design.name() << "\" {\n";
    os << "  rankdir=LR;\n";
    os << "  label=\"" << design.name() << " (Type "
       << designTypeName(cls.type) << ")\";\n";
    for (std::size_t m = 0; m < design.modules().size(); ++m) {
        const auto &mod = design.modules()[m];
        os << "  m" << m << " [shape=box, label=\"" << mod.name << "\"";
        if (cyclic_members.contains(static_cast<ModuleId>(m)))
            os << ", style=filled, fillcolor=\"#ffd0d0\"";
        os << "];\n";
    }
    for (const auto &f : design.fifos()) {
        os << "  m" << f.writer << " -> m" << f.reader << " [label=\""
           << f.name << " [" << f.depth << "] "
           << accessKindName(f.writeKind) << "/"
           << accessKindName(f.readKind) << "\"";
        if (f.writeKind != AccessKind::Blocking ||
            f.readKind != AccessKind::Blocking) {
            os << ", color=\"#c00000\"";
        }
        os << "];\n";
    }
    os << "}\n";
    return os.str();
}

std::string
toDotRun(const Design &design, opt::OptLevel level)
{
    const CompiledDesign cd = compile(design);
    OmniSim engine(cd);
    const SimResult result = engine.run();
    if (result.status != SimStatus::Ok)
        omnisim_fatal("dot: baseline run of '%s' failed (%s); only "
                      "completed runs have a frozen graph to render",
                      design.name().c_str(),
                      simStatusName(result.status));
    RunSnapshot snap;
    if (!engine.exportSnapshot(snap))
        omnisim_fatal("dot: cannot export the run snapshot of '%s'",
                      design.name().c_str());

    const opt::PassManager pm(level);
    const opt::RunLayout layout =
        pm.compile({&snap.nodes, &snap.edges, &snap.seed, &snap.tables,
                    &snap.depths, &snap.constraints, &snap.tailNode,
                    &snap.tailSlack});

    // Representative original ids per live layout node: the first
    // original node mapped there plus how many more it absorbed via
    // chain-collapse folding and dedup merging.
    std::vector<std::uint64_t> firstOrig(layout.numNodes,
                                         ~std::uint64_t{0});
    std::vector<std::size_t> merged(layout.numNodes, 0);
    for (std::size_t o = 0; o < layout.remap.size(); ++o) {
        const std::uint32_t l = layout.remap[o];
        if (l == opt::kDropped)
            continue;
        if (firstOrig[l] == ~std::uint64_t{0})
            firstOrig[l] = o;
        else
            ++merged[l];
    }
    std::set<std::uint32_t> consNodes;
    for (const auto &c : layout.cons)
        consNodes.insert(c.node);

    std::ostringstream os;
    os << "digraph \"" << design.name() << " "
       << opt::optLevelName(level) << "\" {\n"
       << "  rankdir=LR;\n"
       << "  label=\"" << design.name() << " run graph at "
       << opt::optLevelName(level) << ": " << layout.numNodes
       << " nodes, " << layout.edges.size() << " edges, "
       << layout.cons.size() << " constraints ("
       << layout.remap.size() << " traced nodes)\";\n"
       << "  node [shape=box, fontsize=10];\n";
    for (std::size_t l = 0; l < layout.numNodes; ++l) {
        os << "  n" << l << " [label=\"";
        if (firstOrig[l] != ~std::uint64_t{0}) {
            os << "#" << firstOrig[l];
            if (merged[l] > 0)
                os << " (+" << merged[l] << ")";
            os << "\\n"
               << eventKindName(snap.nodes[firstOrig[l]].kind);
        } else {
            os << "n" << l; // unreachable given the remap invariant
        }
        if (layout.dur[l] > 0)
            os << "\\ndur " << layout.dur[l];
        os << "\"";
        // Kept-constraint query nodes are the pinned anchors the
        // incremental checker re-evaluates — the interesting survivors.
        if (consNodes.contains(static_cast<std::uint32_t>(l)))
            os << ", style=filled, fillcolor=\"#d0e0ff\"";
        os << "];\n";
    }
    for (const auto &e : layout.edges) {
        os << "  n" << e.src << " -> n" << e.dst;
        if (e.weight != 0)
            os << " [label=\"" << e.weight << "\"]";
        os << ";\n";
    }
    os << "}\n";
    return os.str();
}

} // namespace omnisim
