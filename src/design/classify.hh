/**
 * @file
 * Taxonomy classifier (§3.1 of the paper): assigns each dataflow design to
 * Type A, B or C from three defining features — module dependency shape
 * (acyclic/cyclic, via strongly connected components of the module graph),
 * FIFO access kinds (blocking / non-blocking), and whether program
 * behavior varies with non-blocking outcomes. The classification decides
 * which engines may legally simulate a design (LightningSim: Type A only;
 * OmniSim: all) and the simulation requirement levels L1-L3 of Fig. 4.
 */

#ifndef OMNISIM_DESIGN_CLASSIFY_HH
#define OMNISIM_DESIGN_CLASSIFY_HH

#include <string>
#include <vector>

#include "design/design.hh"
#include "support/types.hh"

namespace omnisim
{

/** Dataflow design types per the paper's taxonomy. */
enum class DesignType : std::uint8_t { A, B, C };

/** @return "A"/"B"/"C". */
const char *designTypeName(DesignType t);

/** Simulation requirement levels of Fig. 4. */
enum class SimLevel : std::uint8_t
{
    L1, ///< Concurrency-independent, cycle-independent.
    L2, ///< Concurrency-dependent, cycle-independent.
    L3, ///< Concurrency-dependent, cycle-dependent.
};

/** @return "L1"/"L2"/"L3". */
const char *simLevelName(SimLevel l);

/** Result of classifying a design. */
struct Classification
{
    DesignType type = DesignType::A;
    bool cyclic = false;           ///< Module graph has a cycle.
    bool anyNonBlocking = false;   ///< Any FIFO end uses NB access.
    bool anyInfiniteLoop = false;  ///< Any module declares an infinite loop.
    bool behaviorVaries = false;   ///< Any module is outcome-dependent.

    /** Functionality-simulation requirement level (Fig. 4 top row). */
    SimLevel funcSimLevel = SimLevel::L1;
    /** Performance-simulation requirement level. */
    SimLevel perfSimLevel = SimLevel::L1;

    /**
     * Modules in a valid sequential execution order; empty when cyclic.
     * LightningSim's single-threaded Phase 1 runs modules in this order.
     */
    std::vector<ModuleId> topoOrder;

    /** Strongly connected components of size > 1 (cyclic groups). */
    std::vector<std::vector<ModuleId>> cycles;
};

/**
 * Classify a design. @throws FatalError when declarations are
 * inconsistent (behaviorVariesOnNb without any NB access).
 */
Classification classify(const Design &design);

/** One row of Table 4: a compact design summary. */
struct DesignSummary
{
    std::string name;
    DesignType type;
    std::size_t numModules;
    std::size_t numFifos;
    std::string accessStyle; ///< "B", "NB", or "B+NB".
    bool cyclic;
};

/** Summarize a design for reporting (bench/table4_taxonomy). */
DesignSummary summarize(const Design &design);

} // namespace omnisim

#endif // OMNISIM_DESIGN_CLASSIFY_HH
