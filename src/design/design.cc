#include "design/design.hh"

#include "support/logging.hh"

namespace omnisim
{

const char *
accessKindName(AccessKind k)
{
    switch (k) {
      case AccessKind::Blocking:    return "B";
      case AccessKind::NonBlocking: return "NB";
      case AccessKind::Mixed:       return "B+NB";
    }
    return "?";
}

ModuleId
Design::addModule(std::string name, ModuleBody body, ModuleOptions opts)
{
    omnisim_assert(body != nullptr, "module '%s' has no body", name.c_str());
    modules_.push_back(ModuleDecl{std::move(name), std::move(body), opts});
    return static_cast<ModuleId>(modules_.size() - 1);
}

FifoId
Design::addFifo(std::string name, std::uint32_t depth, ModuleId writer,
                ModuleId reader, AccessKind write_kind,
                AccessKind read_kind)
{
    if (depth < 1)
        omnisim_fatal("FIFO '%s' must have depth >= 1", name.c_str());
    const auto nmods = static_cast<ModuleId>(modules_.size());
    if (writer < 0 || writer >= nmods || reader < 0 || reader >= nmods) {
        omnisim_fatal("FIFO '%s' endpoints (%d -> %d) out of range",
                      name.c_str(), writer, reader);
    }
    fifos_.push_back(FifoDecl{std::move(name), depth, writer, reader,
                              write_kind, read_kind});
    return static_cast<FifoId>(fifos_.size() - 1);
}

FifoId
Design::declareFifo(std::string name, std::uint32_t depth,
                    AccessKind write_kind, AccessKind read_kind)
{
    if (depth < 1)
        omnisim_fatal("FIFO '%s' must have depth >= 1", name.c_str());
    fifos_.push_back(FifoDecl{std::move(name), depth, invalidId, invalidId,
                              write_kind, read_kind});
    return static_cast<FifoId>(fifos_.size() - 1);
}

void
Design::connectFifo(FifoId f, ModuleId writer, ModuleId reader)
{
    const auto nfifos = static_cast<FifoId>(fifos_.size());
    const auto nmods = static_cast<ModuleId>(modules_.size());
    if (f < 0 || f >= nfifos)
        omnisim_fatal("connectFifo: FIFO %d out of range", f);
    if (writer < 0 || writer >= nmods || reader < 0 || reader >= nmods) {
        omnisim_fatal("connectFifo('%s'): endpoints (%d -> %d) out of "
                      "range", fifos_[f].name.c_str(), writer, reader);
    }
    fifos_[f].writer = writer;
    fifos_[f].reader = reader;
}

AxiId
Design::declareAxiPort(std::string name, MemId backing, AxiConfig config)
{
    const auto nmems = static_cast<MemId>(memories_.size());
    if (backing < 0 || backing >= nmems)
        omnisim_fatal("AXI port '%s' backing memory %d out of range",
                      name.c_str(), backing);
    axiPorts_.push_back(AxiDecl{std::move(name), invalidId, backing,
                                config});
    return static_cast<AxiId>(axiPorts_.size() - 1);
}

void
Design::connectAxi(AxiId a, ModuleId owner)
{
    const auto naxi = static_cast<AxiId>(axiPorts_.size());
    const auto nmods = static_cast<ModuleId>(modules_.size());
    if (a < 0 || a >= naxi)
        omnisim_fatal("connectAxi: port %d out of range", a);
    if (owner < 0 || owner >= nmods)
        omnisim_fatal("connectAxi: owner %d out of range", owner);
    axiPorts_[a].owner = owner;
}

MemId
Design::addMemory(std::string name, std::size_t size)
{
    if (size == 0)
        omnisim_fatal("memory '%s' must have nonzero size", name.c_str());
    memories_.push_back(MemoryDecl{std::move(name), size});
    return static_cast<MemId>(memories_.size() - 1);
}

AxiId
Design::addAxiPort(std::string name, ModuleId owner, MemId backing,
                   AxiConfig config)
{
    const auto nmods = static_cast<ModuleId>(modules_.size());
    const auto nmems = static_cast<MemId>(memories_.size());
    if (owner < 0 || owner >= nmods)
        omnisim_fatal("AXI port '%s' owner %d out of range",
                      name.c_str(), owner);
    if (backing < 0 || backing >= nmems)
        omnisim_fatal("AXI port '%s' backing memory %d out of range",
                      name.c_str(), backing);
    axiPorts_.push_back(AxiDecl{std::move(name), owner, backing, config});
    return static_cast<AxiId>(axiPorts_.size() - 1);
}

void
Design::setInput(MemId mem, std::vector<Value> data)
{
    const auto nmems = static_cast<MemId>(memories_.size());
    if (mem < 0 || mem >= nmems)
        omnisim_fatal("setInput: memory %d out of range", mem);
    if (data.size() > memories_[mem].size) {
        omnisim_fatal("setInput: %zu values exceed memory '%s' size %zu",
                      data.size(), memories_[mem].name.c_str(),
                      memories_[mem].size);
    }
    inputs_[mem] = std::move(data);
}

void
Design::setFifoDepth(FifoId f, std::uint32_t depth)
{
    const auto nfifos = static_cast<FifoId>(fifos_.size());
    if (f < 0 || f >= nfifos)
        omnisim_fatal("setFifoDepth: FIFO %d out of range", f);
    if (depth < 1)
        omnisim_fatal("setFifoDepth: depth must be >= 1");
    fifos_[f].depth = depth;
}

FifoId
Design::fifoByName(const std::string &name) const
{
    for (std::size_t f = 0; f < fifos_.size(); ++f)
        if (fifos_[f].name == name)
            return static_cast<FifoId>(f);
    omnisim_fatal("design '%s' has no FIFO named '%s'", name_.c_str(),
                  name.c_str());
}

MemoryPool
Design::makeMemoryPool() const
{
    MemoryPool pool(memories_);
    for (const auto &[mem, data] : inputs_)
        pool.fill(mem, data);
    return pool;
}

} // namespace omnisim
