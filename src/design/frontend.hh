/**
 * @file
 * Front-end compilation (§6.1 of the paper). In the original system this
 * stage extracts LLVM IR from the HLS project, applies custom passes
 * (trace instrumentation, dataflow-to-thread rewriting, redundant FIFO
 * check elimination) and links against the runtime library. In this
 * reproduction the DSL already executes natively, so the front end
 * consists of: design validation, taxonomy classification, the
 * thread-per-task plan (every dataflow module gets a dedicated Func Sim
 * thread, including blocking-only modules, to support cyclic dependencies
 * and infinite loops), and the dead FIFO-check elimination marking.
 */

#ifndef OMNISIM_DESIGN_FRONTEND_HH
#define OMNISIM_DESIGN_FRONTEND_HH

#include <vector>

#include "design/classify.hh"
#include "design/design.hh"

namespace omnisim
{

/** Output of front-end compilation; input to every engine. */
struct CompiledDesign
{
    const Design *design = nullptr;
    Classification classification;

    /**
     * Modules in thread-launch order — one Func Sim thread each (§6.2
     * step 1). Identical to declaration order; kept explicit so engines
     * need no knowledge of Design internals.
     */
    std::vector<ModuleId> threadPlan;

    /** @return the underlying design (never null after compile()). */
    const Design &d() const { return *design; }
};

/**
 * Validate and compile a design for simulation.
 *
 * Checks performed:
 *  - at least one module; unique module/FIFO/memory names;
 *  - every FIFO has exactly one writer and one reader module (SPSC,
 *    matching Vitis dataflow semantics);
 *  - declaration consistency for the classifier.
 *
 * @throws FatalError on any violation.
 */
CompiledDesign compile(const Design &design);

} // namespace omnisim

#endif // OMNISIM_DESIGN_FRONTEND_HH
