/**
 * @file
 * Dataflow design description: modules (tasks), FIFO channels, memories
 * and AXI ports, plus per-channel declared access kinds used by the
 * taxonomy classifier. A Design is a pure description — engines never
 * mutate it — so one Design can be simulated by all four engines and
 * compared (Table 3 of the paper).
 */

#ifndef OMNISIM_DESIGN_DESIGN_HH
#define OMNISIM_DESIGN_DESIGN_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/axi.hh"
#include "runtime/memory.hh"
#include "support/types.hh"

namespace omnisim
{

class Context;

/** How a module accesses one end of a FIFO. */
enum class AccessKind : std::uint8_t
{
    Blocking,    ///< Only read()/write().
    NonBlocking, ///< Only readNb()/writeNb() (and status checks).
    Mixed,       ///< Both styles.
};

/** @return a stable human-readable name for an access kind. */
const char *accessKindName(AccessKind k);

/** Per-module declaration options feeding the §3.1 classifier. */
struct ModuleOptions
{
    /** The body contains an infinite loop terminated only by a signal
     *  received over a FIFO (Type B/C structural feature). */
    bool hasInfiniteLoop = false;

    /** The outcome of a non-blocking access changes subsequent program
     *  behavior (the defining feature of Type C). The paper infers this
     *  from LLVM IR; the DSL declares it (see DESIGN.md §1). */
    bool behaviorVariesOnNb = false;
};

/** The executable body of a dataflow task. */
using ModuleBody = std::function<void(Context &)>;

/** One dataflow task. */
struct ModuleDecl
{
    std::string name;
    ModuleBody body;
    ModuleOptions opts;
};

/** One FIFO channel. Exactly one writer module and one reader module. */
struct FifoDecl
{
    std::string name;
    std::uint32_t depth = 2;
    ModuleId writer = invalidId;
    ModuleId reader = invalidId;
    AccessKind writeKind = AccessKind::Blocking;
    AccessKind readKind = AccessKind::Blocking;
};

/** One AXI port: owned by a single module, backed by a design memory. */
struct AxiDecl
{
    std::string name;
    ModuleId owner = invalidId;
    MemId backing = invalidId;
    AxiConfig config;
};

/**
 * A complete dataflow design plus its testbench inputs.
 */
class Design
{
  public:
    explicit Design(std::string name) : name_(std::move(name)) {}

    /** Register a dataflow task. */
    ModuleId addModule(std::string name, ModuleBody body,
                       ModuleOptions opts = {});

    /** Register a FIFO connecting writer -> reader. */
    FifoId addFifo(std::string name, std::uint32_t depth, ModuleId writer,
                   ModuleId reader,
                   AccessKind write_kind = AccessKind::Blocking,
                   AccessKind read_kind = AccessKind::Blocking);

    /**
     * Declare a FIFO before its endpoint modules exist (module bodies
     * capture FIFO ids by value, so ids must be available first). The
     * endpoints are bound later with connectFifo(); compile() rejects
     * designs with unconnected FIFOs.
     */
    FifoId declareFifo(std::string name, std::uint32_t depth,
                       AccessKind write_kind = AccessKind::Blocking,
                       AccessKind read_kind = AccessKind::Blocking);

    /** Bind the writer and reader modules of a declared FIFO. */
    void connectFifo(FifoId f, ModuleId writer, ModuleId reader);

    /** Declare an AXI port before its owner module exists. */
    AxiId declareAxiPort(std::string name, MemId backing,
                         AxiConfig config = {});

    /** Bind the owner module of a declared AXI port. */
    void connectAxi(AxiId a, ModuleId owner);

    /** Register a named memory of the given element count. */
    MemId addMemory(std::string name, std::size_t size);

    /** Register an AXI port owned by a module, backed by a memory. */
    AxiId addAxiPort(std::string name, ModuleId owner, MemId backing,
                     AxiConfig config = {});

    /** Provide testbench input data for a memory. */
    void setInput(MemId mem, std::vector<Value> data);

    /**
     * Change a FIFO depth (design-space exploration knob; drives the
     * incremental re-simulation of §7.2 / Table 6).
     */
    void setFifoDepth(FifoId f, std::uint32_t depth);

    /**
     * Look up a FIFO by name.
     * @throws FatalError when no FIFO has that name.
     */
    FifoId fifoByName(const std::string &name) const;

    const std::string &name() const { return name_; }
    const std::vector<ModuleDecl> &modules() const { return modules_; }
    const std::vector<FifoDecl> &fifos() const { return fifos_; }
    const std::vector<MemoryDecl> &memories() const { return memories_; }
    const std::vector<AxiDecl> &axiPorts() const { return axiPorts_; }
    const std::map<MemId, std::vector<Value>> &inputs() const
    {
        return inputs_;
    }

    /** @return a MemoryPool initialized with this design's inputs. */
    MemoryPool makeMemoryPool() const;

  private:
    std::string name_;
    std::vector<ModuleDecl> modules_;
    std::vector<FifoDecl> fifos_;
    std::vector<MemoryDecl> memories_;
    std::vector<AxiDecl> axiPorts_;
    std::map<MemId, std::vector<Value>> inputs_;
};

} // namespace omnisim

#endif // OMNISIM_DESIGN_DESIGN_HH
