#include "lightningsim/lightningsim.hh"

#include <algorithm>
#include <map>

#include "design/context.hh"
#include "graph/longest_path.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "graph/war.hh"
#include "runtime/axi.hh"
#include "runtime/memory.hh"
#include "runtime/timing.hh"
#include "support/logging.hh"

namespace omnisim
{

namespace
{

/**
 * Phase 1 context: untimed sequential execution with infinite FIFO
 * depth, recording structural dependence edges. Node times produced by
 * the TimingModel here are the unstalled dynamic-stage offsets; Phase 2
 * discards them and recomputes via longest path.
 */
class LsTraceContext : public Context
{
  public:
    LsTraceContext(const Design &design, MemoryPool &pool, LsTrace &out)
        : design_(design), pool_(pool), out_(out)
    {}

    /** Begin tracing a module; creates its entry node. */
    void
    beginModule(ModuleId m)
    {
        mod_ = m;
        const std::uint64_t entry =
            addNode(EventKind::StartTask, invalidId, 0, 0);
        out_.seed[entry] = 1;
        timing_ = std::make_unique<TimingModel>(entry, 1);
    }

    /** Finish tracing a module; records its timing tail anchor. */
    void
    endModule()
    {
        out_.tails.push_back(
            {timing_->lastOpTag(), timing_->now() - timing_->lastOpTime()});
    }

    Value
    read(FifoId f) override
    {
        FifoTable &t = out_.tables[f];
        const std::uint32_t r = t.reads() + 1;
        if (t.writes() < r) {
            // A Type A design in topological order can never read ahead
            // of its producer; this indicates a mis-classified design.
            omnisim_fatal(
                "LightningSim: read of '%s' before its %u-th write — "
                "design is not Type A",
                design_.fifos()[f].name.c_str(), r);
        }
        const std::uint64_t node =
            addNode(EventKind::FifoRead, f, r, 1);
        // Read-after-write: this read follows the r-th write by 1 cycle.
        out_.edges.push_back({t.writeNodeOf(r), node, 1});
        const Cycles at = timing_->earliest();
        recordStructural(timing_->commitOp(at, 1, node), node);
        return t.commitRead(0, node);
    }

    void
    write(FifoId f, Value v) override
    {
        FifoTable &t = out_.tables[f];
        const std::uint32_t w = t.writes() + 1;
        const std::uint64_t node =
            addNode(EventKind::FifoWrite, f, w, 1);
        const Cycles at = timing_->earliest();
        recordStructural(timing_->commitOp(at, 1, node), node);
        t.commitWrite(v, 0, node);
    }

    // LightningSim cannot simulate NB accesses or status checks
    // (Fig. 3 support matrix); the classifier gate makes these
    // unreachable for Type A designs.
    bool
    readNb(FifoId, Value &) override
    {
        omnisim_fatal("LightningSim does not support non-blocking reads");
    }

    bool
    writeNb(FifoId, Value) override
    {
        omnisim_fatal("LightningSim does not support non-blocking writes");
    }

    bool
    empty(FifoId) override
    {
        omnisim_fatal("LightningSim does not support empty() checks");
    }

    bool
    full(FifoId) override
    {
        omnisim_fatal("LightningSim does not support full() checks");
    }

    void emptyUnused(FifoId f) override { (void)empty(f); }
    void fullUnused(FifoId f) override { (void)full(f); }

    Value
    load(MemId m, std::uint64_t idx) override
    {
        return pool_.load(m, idx);
    }

    void
    store(MemId m, std::uint64_t idx, Value v) override
    {
        pool_.store(m, idx, v);
    }

    void
    axiReadReq(AxiId a, std::uint64_t addr, std::uint32_t len) override
    {
        const std::uint64_t node =
            addNode(EventKind::AxiReadReq, a, 0, 1);
        const Cycles at = timing_->earliest();
        recordStructural(timing_->commitOp(at, 1, node), node);
        axiState(a).pushReadReq(addr, len, at, node);
    }

    Value
    axiRead(AxiId a) override
    {
        std::uint64_t addr = 0;
        const AxiPortState::Dep dep = axiState(a).popReadBeat(addr);
        const std::uint64_t node = addNode(EventKind::AxiRead, a, 0, 1);
        out_.edges.push_back({dep.tag, node, dep.weight});
        const Cycles at =
            std::max(timing_->earliest(), dep.time + dep.weight);
        recordStructural(timing_->commitOp(at, 1, node), node);
        return pool_.load(design_.axiPorts()[a].backing, addr);
    }

    void
    axiWriteReq(AxiId a, std::uint64_t addr, std::uint32_t len) override
    {
        const std::uint64_t node =
            addNode(EventKind::AxiWriteReq, a, 0, 1);
        const Cycles at = timing_->earliest();
        recordStructural(timing_->commitOp(at, 1, node), node);
        axiState(a).pushWriteReq(addr, len, at, node);
    }

    void
    axiWrite(AxiId a, Value v) override
    {
        std::uint64_t addr = 0;
        const AxiPortState::Dep dep = axiState(a).popWriteBeat(addr);
        const std::uint64_t node = addNode(EventKind::AxiWrite, a, 0, 1);
        out_.edges.push_back({dep.tag, node, dep.weight});
        const Cycles at =
            std::max(timing_->earliest(), dep.time + dep.weight);
        recordStructural(timing_->commitOp(at, 1, node), node);
        pool_.store(design_.axiPorts()[a].backing, addr, v);
        lastWriteBeatTime_ = at;
        lastWriteBeatNode_ = node;
    }

    void
    axiWriteResp(AxiId a) override
    {
        const AxiPortState::Dep dep =
            axiState(a).popWriteResp(lastWriteBeatTime_,
                                     lastWriteBeatNode_);
        const std::uint64_t node =
            addNode(EventKind::AxiWriteResp, a, 0, 1);
        out_.edges.push_back({dep.tag, node, dep.weight});
        const Cycles at =
            std::max(timing_->earliest(), dep.time + dep.weight);
        recordStructural(timing_->commitOp(at, 1, node), node);
    }

    void advance(Cycles n) override { timing_->advance(n); }
    Cycles now() const override { return timing_->now(); }

    void
    pipelineBegin(std::uint32_t ii) override
    {
        timing_->pipelineBegin(ii);
    }

    void iterBegin() override { timing_->iterBegin(); }
    void pipelineEnd() override { timing_->pipelineEnd(); }

  private:
    std::uint64_t
    addNode(EventKind kind, std::int32_t channel, std::uint32_t index,
            Cycles dur)
    {
        out_.nodes.push_back(NodeInfo{kind, mod_, channel, index, dur});
        out_.seed.push_back(0);
        return out_.nodes.size() - 1;
    }

    void
    recordStructural(const std::vector<TimingModel::Constraint> &cs,
                     std::uint64_t node)
    {
        for (const auto &c : cs)
            out_.edges.push_back({c.tag, node, c.weight});
    }

    AxiPortState &
    axiState(AxiId a)
    {
        auto it = axi_.find(a);
        if (it == axi_.end()) {
            it = axi_.emplace(a,
                AxiPortState(design_.axiPorts()[a].config)).first;
        }
        return it->second;
    }

    const Design &design_;
    MemoryPool &pool_;
    LsTrace &out_;
    ModuleId mod_ = invalidId;
    std::unique_ptr<TimingModel> timing_;
    std::map<AxiId, AxiPortState> axi_;
    Cycles lastWriteBeatTime_ = 0;
    std::uint64_t lastWriteBeatNode_ = 0;
};

} // namespace

LightningSim::LightningSim(const CompiledDesign &cd)
    : cd_(cd)
{}

LightningSim::~LightningSim() = default;

SimResult
LightningSim::run()
{
    if (cd_.classification.type != DesignType::A) {
        SimResult r;
        r.status = SimStatus::Unsupported;
        r.message = strf(
            "LightningSim supports only Type A designs; '%s' is Type %s",
            cd_.d().name().c_str(),
            designTypeName(cd_.classification.type));
        return r;
    }

    // ---- Phase 1: trace + structural graph (untimed) ---------------
    const Design &design = cd_.d();
    trace_ = std::make_unique<LsTrace>();
    trace_->tables.resize(design.fifos().size());
    for (std::size_t f = 0; f < trace_->tables.size(); ++f)
        trace_->tables[f].setLabel(design.fifos()[f].name);
    MemoryPool pool = design.makeMemoryPool();
    LsTraceContext ctx(design, pool, *trace_);

    SimResult &func = trace_->functional;
    for (ModuleId m : cd_.classification.topoOrder) {
        ctx.beginModule(m);
        try {
            design.modules()[m].body(ctx);
        } catch (const SimCrash &c) {
            func.status = SimStatus::Crash;
            func.message = strf(
                "@E Simulation failed: SIGSEGV (%s in task '%s')",
                c.what(), design.modules()[m].name.c_str());
            break;
        }
        ctx.endModule();
    }
    for (std::size_t i = 0; i < design.memories().size(); ++i) {
        func.memories[design.memories()[i].name] =
            pool.contents(static_cast<MemId>(i));
    }

    if (func.status != SimStatus::Ok)
        return func;

    // ---- Phase 2: timed analysis with the design's depths ----------
    std::vector<std::uint32_t> depths;
    depths.reserve(design.fifos().size());
    for (const auto &f : design.fifos())
        depths.push_back(f.depth);
    const LsTiming timing = reanalyze(depths);

    SimResult r = func;
    if (!timing.feasible) {
        r.status = SimStatus::Deadlock;
        r.message = "FIFO depth configuration deadlocks the design";
    } else {
        r.totalCycles = timing.totalCycles;
    }
    r.stats.events = trace_->nodes.size();
    r.stats.graphNodes = trace_->nodes.size();
    r.stats.graphEdges = trace_->edges.size();
    return r;
}

LsTiming
LightningSim::reanalyze(const std::vector<std::uint32_t> &depths)
{
    omnisim_assert(trace_ != nullptr,
                   "reanalyze() requires a prior successful run()");
    omnisim_assert(depths.size() == trace_->tables.size(),
                   "depth vector size mismatch");

    // Freeze structural + WAR edges into CSR (LightningSimV2 style).
    std::vector<CsrGraph::EdgeSpec> edges = trace_->edges;
    synthesizeWarEdges(trace_->tables, depths,
                       [&](std::uint64_t s, std::uint64_t d, Cycles w) {
                           edges.push_back({s, d, w});
                       });
    const CsrGraph g(trace_->nodes.size(), edges);

    LsTiming out;
    const PathResult pr = longestPath(g, trace_->seed);
    if (!pr.acyclic) {
        out.feasible = false;
        return out;
    }
    for (std::size_t n = 0; n < trace_->nodes.size(); ++n) {
        const Cycles end = pr.time[n] + trace_->nodes[n].duration;
        out.totalCycles = std::max(out.totalCycles, end);
    }
    for (const auto &tail : trace_->tails) {
        out.totalCycles =
            std::max(out.totalCycles, pr.time[tail.node] + tail.slack);
    }
    return out;
}

const LsTrace &
LightningSim::trace() const
{
    omnisim_assert(trace_ != nullptr, "no trace yet");
    return *trace_;
}

SimResult
simulateLightningSim(const CompiledDesign &cd)
{
    static obs::Counter &mRuns =
        obs::Registry::global().counter("engine.lightningsim.runs");
    static obs::Histogram &mRunUs =
        obs::Registry::global().histogram("engine.lightningsim.run_us");
    OMNISIM_SPAN("lightningsim.run");
    obs::ScopedLatencyUs runTimer(mRunUs);
    mRuns.add();

    LightningSim ls(cd);
    return ls.run();
}

} // namespace omnisim
