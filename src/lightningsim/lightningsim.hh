/**
 * @file
 * LightningSim(V2) baseline: fully decoupled two-phase simulation (§5.1
 * and Fig. 6 of the paper).
 *
 * Phase 1 — trace and simulation-graph generation (untimed): a single
 * thread executes the dataflow modules sequentially in topological order
 * under the infinite-FIFO-depth assumption, recording per-module event
 * lists and the structural dependence edges (program order, pipeline
 * initiation intervals, FIFO read-after-write, AXI latencies).
 *
 * Phase 2 — trace analysis (timed): given the concrete FIFO depths,
 * write-after-read edges are synthesized, the graph is frozen into CSR
 * form, and a longest-path pass yields cycle-accurate latency.
 *
 * Because the phases are decoupled, changing only FIFO depths re-runs
 * Phase 2 alone (microseconds) — LightningSim's incremental strength —
 * but designs whose functionality depends on hardware timing (Type B/C)
 * are fundamentally out of reach and are rejected per the classifier,
 * exactly as the paper's Fig. 3 support matrix states.
 */

#ifndef OMNISIM_LIGHTNINGSIM_LIGHTNINGSIM_HH
#define OMNISIM_LIGHTNINGSIM_LIGHTNINGSIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "design/frontend.hh"
#include "graph/csr.hh"
#include "graph/simgraph.hh"
#include "runtime/fifo_table.hh"
#include "runtime/result.hh"

namespace omnisim
{

/** Phase 1 output: functional results plus the structural graph. */
struct LsTrace
{
    /** Node payloads; node id == vector index. */
    std::vector<NodeInfo> nodes;

    /** Per-node seed times (module entry nodes start at cycle 1). */
    std::vector<Cycles> seed;

    /** Structural constraint edges (no WAR edges — those are per-depth). */
    std::vector<CsrGraph::EdgeSpec> edges;

    /** Per-FIFO commit tables (indices and node ids; untimed). */
    std::vector<FifoTable> tables;

    /** End-of-module timing anchor: the module finishes tailSlack cycles
     *  after its last op node starts (captures trailing advance()). */
    struct ModuleTail
    {
        std::uint64_t node = 0;
        Cycles slack = 0;
    };
    std::vector<ModuleTail> tails;

    /** Functional outcome (memories, warnings, crash status). */
    SimResult functional;
};

/** Phase 2 output. */
struct LsTiming
{
    /** False when the depth configuration deadlocks the design. */
    bool feasible = true;

    Cycles totalCycles = 0;
};

/**
 * Two-phase LightningSim simulator with incremental re-analysis.
 */
class LightningSim
{
  public:
    /** @param cd must classify as Type A (checked at run()). */
    explicit LightningSim(const CompiledDesign &cd);
    ~LightningSim();

    /**
     * Run Phase 1 (once) and Phase 2 with the design's FIFO depths.
     * @return Unsupported for Type B/C designs.
     */
    SimResult run();

    /**
     * Phase-2-only re-analysis under new FIFO depths; requires a prior
     * successful run(). This is the operation Table 6 measures in
     * milliseconds.
     */
    LsTiming reanalyze(const std::vector<std::uint32_t> &depths);

    /** @return the Phase 1 trace (valid after a successful run()). */
    const LsTrace &trace() const;

  private:
    const CompiledDesign &cd_;
    std::unique_ptr<LsTrace> trace_;
};

/** One-shot convenience wrapper around LightningSim::run(). */
SimResult simulateLightningSim(const CompiledDesign &cd);

} // namespace omnisim

#endif // OMNISIM_LIGHTNINGSIM_LIGHTNINGSIM_HH
