/**
 * @file
 * The eleven Type B / Type C dataflow designs of Table 4 — the benchmark
 * suite the paper built because no existing HLS suite contains designs
 * that C-level simulation cannot handle. Each builder returns a fresh
 * Design; see typebc.cc for the per-design structure and the deltas from
 * the paper's (unpublished-source) versions, which are also recorded in
 * EXPERIMENTS.md.
 */

#ifndef OMNISIM_DESIGNS_TYPEBC_HH
#define OMNISIM_DESIGNS_TYPEBC_HH

#include "design/design.hh"

namespace omnisim::designs
{

/** Fig. 4 Ex. 2: NB writes in an infinite loop ended by a done signal. */
Design buildFig4Ex2();

/** Fig. 4 Ex. 3: cyclic controller/processor with blocking FIFOs. */
Design buildFig4Ex3();

/** Fig. 4 Ex. 4a: NB writes, silently dropped on full. */
Design buildFig4Ex4a();

/** Fig. 4 Ex. 4a with an infinite loop ended by a done signal. */
Design buildFig4Ex4aD();

/** Fig. 4 Ex. 4b: NB writes with an explicit dropped-element counter. */
Design buildFig4Ex4b();

/** Fig. 4 Ex. 4b with an infinite loop ended by a done signal. */
Design buildFig4Ex4bD();

/** Fig. 4 Ex. 5: congestion-aware dispatch to a fast and a slow PE. */
Design buildFig4Ex5();

/** Fig. 2: a timer module counting cycles until a compute result. */
Design buildFig2Timer();

/** Two tasks blocking on mutually empty FIFOs: a true deadlock. */
Design buildDeadlock();

/** Speculative fetcher with a branch-redirect feedback loop. */
Design buildBranch();

/** 16 branch cores + dispatcher + collector: 34 modules, 64 FIFOs. */
Design buildMulticore();

} // namespace omnisim::designs

#endif // OMNISIM_DESIGNS_TYPEBC_HH
