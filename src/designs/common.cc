#include "designs/common.hh"

#include "support/logging.hh"

namespace omnisim::designs
{

std::vector<Value>
iotaData(std::size_t n)
{
    std::vector<Value> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<Value>(i + 1);
    return v;
}

const DesignEntry &
findDesign(const std::string &name)
{
    for (const auto &e : typeBCDesigns())
        if (e.name == name)
            return e;
    for (const auto &e : typeADesigns())
        if (e.name == name)
            return e;
    omnisim_fatal("unknown design '%s'", name.c_str());
}

} // namespace omnisim::designs
