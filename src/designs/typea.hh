/**
 * @file
 * The Type A design suite used for the LightningSimV2 comparison
 * (Table 5 of the paper). The original table draws on the Vitis HLS
 * basic examples, the Kastner FPGA book kernels, and four large designs
 * (FlowGNN variants, INR-Arch, SkyNet); here each is re-implemented as a
 * behaviourally comparable dataflow kernel. All designs are blocking-only
 * and acyclic — exactly the class LightningSim supports — and several
 * derive their pipeline II / depth from the static scheduler (src/sched),
 * which is what the "front-end compilation" time of Table 5 measures.
 */

#ifndef OMNISIM_DESIGNS_TYPEA_HH
#define OMNISIM_DESIGNS_TYPEA_HH

#include "design/design.hh"

namespace omnisim::designs
{

// Individual builders are exposed for targeted tests; the full suite is
// available through typeADesigns() in common.hh.

Design buildSqrtFixed();      ///< Fixed-point Newton square root.
Design buildFirFilter();      ///< 8-tap FIR (multiplier-limited II).
Design buildWindowConv();     ///< Fixed-point sliding-window convolution.
Design buildFloatConv();      ///< Scaled-arithmetic convolution.
Design buildApAlu();          ///< Arbitrary-precision ALU (opcode mix).
Design buildParallelLoops();  ///< Two independent pipelined loops.
Design buildImperfectLoops(); ///< Imperfect loop nest.
Design buildLoopMaxBound();   ///< Data-dependent trip count with a cap.
Design buildPerfectNested();  ///< Perfect 2D nest, pipelined inner loop.
Design buildPipelinedNested();///< Outer-pipelined nest.
Design buildSequentialAccum();///< Two accumulators in sequence.
Design buildAccumAsserts();   ///< Accumulators with guard branches.
Design buildAccumDataflow(); ///< Three-stage dataflow accumulator.
Design buildStaticMemory();   ///< Lookup-table transform.
Design buildPointerCast();    ///< Byte-packing/unpacking arithmetic.
Design buildDoublePointer();  ///< Double indirection gather.
Design buildAxi4Master();     ///< AXI burst read -> compute -> write.
Design buildAxisStream();     ///< Stream vector add (AXIS-style).
Design buildArrayAccess();    ///< Multi-array access (port-limited II).
Design buildUramEcc();        ///< Parity/ECC word processing.
Design buildHammingFixed();   ///< Fixed-point Hamming distance.
Design buildHuffmanEncode();  ///< Frequency count + code-length encode.
Design buildMatmul();         ///< Blocked 16x16 matrix multiply.
Design buildMergeSort();      ///< Parallel two-way merge sort.
Design buildVecaddStream();   ///< AXI vector add (Vitis vadd analog).
Design buildFlowGnnLite();    ///< Multi-lane GNN message passing (large).
Design buildInrArchLite();    ///< 12-stage deep dataflow chain (large).
Design buildSkynetLite();     ///< CNN layer pipeline (largest).
Design buildFifoChain();      ///< Minimal relay chain (smoke tests).
Design buildReconvergent();   ///< Reconvergent split/join (DSE target).

} // namespace omnisim::designs

#endif // OMNISIM_DESIGNS_TYPEA_HH
