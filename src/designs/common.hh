/**
 * @file
 * Shared infrastructure for the benchmark design suites: the named-design
 * registry consumed by tests and benchmark harnesses, and the standard
 * testbench workload (N = 2025, data[i] = i + 1, matching the sums the
 * paper reports in Table 3: 2,051,325 = sum of 1..2025).
 */

#ifndef OMNISIM_DESIGNS_COMMON_HH
#define OMNISIM_DESIGNS_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "design/design.hh"

namespace omnisim::designs
{

/** Items in the standard Table 3 workload. */
constexpr std::size_t tableN = 2025;

/** Slack elements appended to bounded input arrays so that genuine
 *  hardware behaviour (a producer briefly running past the done signal)
 *  does not fault, while the unbounded overrun of naive C simulation
 *  does — reproducing the paper's C-sim SIGSEGVs. */
constexpr std::size_t overrunSlack = 64;

/** @return the standard workload: {1, 2, ..., n}. */
std::vector<Value> iotaData(std::size_t n);

/** One registered benchmark design. */
struct DesignEntry
{
    std::string name;
    std::string description;
    std::function<Design()> build;
};

/** The eleven Type B / Type C designs of Table 4. */
const std::vector<DesignEntry> &typeBCDesigns();

/** The Type A suite used for the Table 5 comparison. */
const std::vector<DesignEntry> &typeADesigns();

/** Look up a design by name across both suites. */
const DesignEntry &findDesign(const std::string &name);

} // namespace omnisim::designs

#endif // OMNISIM_DESIGNS_COMMON_HH
