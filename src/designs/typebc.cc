#include "designs/typebc.hh"

#include "design/context.hh"
#include "designs/common.hh"
#include "support/logging.hh"

/*
 * Implementation notes (see also EXPERIMENTS.md):
 *
 *  - Every input array carries `overrunSlack` extra elements so that a
 *    producer briefly overrunning its data while a done signal is in
 *    flight (legal hardware behaviour, reads return zeros) does not
 *    fault, while naive C simulation — which never delivers the done
 *    signal — runs far past the array and hits the simulated SIGSEGV,
 *    reproducing the paper's C-sim crashes.
 *
 *  - Rates are tuned so that overrun stays far below the slack in the
 *    timed engines and so that the paper's qualitative shapes hold
 *    (drops present, P1 preferred over P2, fetched >> executed).
 *
 *  - Module/FIFO counts occasionally differ by one from Table 4 (the
 *    paper's sources are not published); the taxonomy class, access
 *    kinds and cyclicity of each design match the table.
 */

namespace omnisim::designs
{

namespace
{
constexpr auto nb = AccessKind::NonBlocking;
constexpr auto blk = AccessKind::Blocking;
constexpr auto mixed = AccessKind::Mixed;
} // namespace

Design
buildFig4Ex2()
{
    Design d("fig4_ex2");
    const std::size_t n = tableN;
    const MemId data = d.addMemory("data", n + overrunSlack);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(data, iotaData(n));

    const FifoId f1 = d.declareFifo("f1", 2, nb, blk);
    const FifoId f2 = d.declareFifo("f2", 2, blk, blk);
    const FifoId done = d.declareFifo("done", 2, blk, nb);

    const ModuleId producer = d.addModule(
        "producer",
        [=](Context &ctx) {
            std::uint64_t i = 0;
            for (;;) {
                Value dummy;
                if (ctx.readNb(done, dummy))
                    break;
                if (ctx.writeNb(f1, ctx.load(data, i)))
                    ++i;
            }
        },
        {.hasInfiniteLoop = true, .behaviorVariesOnNb = false});

    const ModuleId relay = d.addModule("relay", [=](Context &ctx) {
        for (std::size_t k = 0; k < n; ++k)
            ctx.write(f2, ctx.read(f1));
    });

    const ModuleId consumer = d.addModule("consumer", [=](Context &ctx) {
        Value sum = 0;
        for (std::size_t k = 0; k < n; ++k)
            sum += ctx.read(f2);
        ctx.write(done, 1);
        ctx.store(sum_out, 0, sum);
    });

    d.connectFifo(f1, producer, relay);
    d.connectFifo(f2, relay, consumer);
    d.connectFifo(done, consumer, producer);
    return d;
}

Design
buildFig4Ex3()
{
    Design d("fig4_ex3");
    const std::size_t n = tableN;
    const MemId data = d.addMemory("data", n);
    const MemId sum_out = d.addMemory("sum", 1);
    d.setInput(data, iotaData(n));

    const FifoId f1 = d.declareFifo("fifo1", 2, blk, blk);
    const FifoId f2 = d.declareFifo("fifo2", 2, blk, blk);

    const ModuleId controller = d.addModule(
        "controller", [=](Context &ctx) {
            Value sum = 0;
            for (std::size_t i = 0; i < n; ++i) {
                ctx.write(f1, ctx.load(data, i));
                sum += ctx.read(f2);
            }
            ctx.store(sum_out, 0, sum);
        });

    const ModuleId processor = d.addModule(
        "processor", [=](Context &ctx) {
            for (std::size_t i = 0; i < n; ++i) {
                const Value v = ctx.read(f1);
                ctx.write(f2, v * 2);
            }
        });

    d.connectFifo(f1, controller, processor);
    d.connectFifo(f2, processor, controller);
    return d;
}

namespace
{

/**
 * Shared body of Ex. 4a/4b: a producer that never retries (element
 * dropped when the FIFO is full) feeding a deliberately slower consumer.
 * When count_drops is set, the dropped count is stored (Ex. 4b).
 */
Design
buildEx4Bounded(const char *name, bool count_drops)
{
    Design d(name);
    const std::size_t n = tableN;
    const MemId data = d.addMemory("data", n);
    const MemId sum_out = d.addMemory("sum_out", 1);
    const MemId dropped_out =
        count_drops ? d.addMemory("dropped", 1) : invalidId;
    d.setInput(data, iotaData(n));

    const FifoId f1 = d.declareFifo("fifo", 2, nb, nb);

    const ModuleId producer = d.addModule(
        "producer",
        [=](Context &ctx) {
            Value dropped = 0;
            for (std::size_t i = 0; i < n; ++i) {
                if (!ctx.writeNb(f1, ctx.load(data, i)))
                    ++dropped; // element silently lost (Ex. 4a)
            }
            if (count_drops)
                ctx.store(dropped_out, 0, dropped);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});

    const ModuleId consumer = d.addModule(
        "consumer",
        [=](Context &ctx) {
            Value sum = 0;
            for (std::size_t k = 0; k < n; ++k) {
                Value v;
                if (ctx.readNb(f1, v))
                    sum += v;
                ctx.advance(2); // the consumer is 3x slower: drops happen
            }
            ctx.store(sum_out, 0, sum);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});

    d.connectFifo(f1, producer, consumer);
    return d;
}

/**
 * Shared body of Ex. 4a_d/4b_d: the producer loops forever, dropping on
 * full, until the consumer's done signal arrives. Under C simulation the
 * done signal never arrives and the producer runs off its input array.
 */
Design
buildEx4Done(const char *name, bool count_drops)
{
    Design d(name);
    const std::size_t n = tableN;
    const MemId data = d.addMemory("data", n + overrunSlack);
    const MemId sum_out = d.addMemory("sum_out", 1);
    const MemId dropped_out =
        count_drops ? d.addMemory("dropped", 1) : invalidId;
    d.setInput(data, iotaData(n));

    const FifoId f1 = d.declareFifo("fifo", 2, nb, nb);
    const FifoId done = d.declareFifo("done", 2, blk, nb);

    const ModuleId producer = d.addModule(
        "producer",
        [=](Context &ctx) {
            std::uint64_t i = 0;
            Value dropped = 0;
            for (;;) {
                Value dummy;
                if (ctx.readNb(done, dummy))
                    break;
                if (!ctx.writeNb(f1, ctx.load(data, i)))
                    ++dropped;
                ++i;            // Ex. 4a semantics: i advances regardless
                ctx.advance(1); // producer pace: 3 cycles per element
            }
            if (count_drops)
                ctx.store(dropped_out, 0, dropped);
        },
        {.hasInfiniteLoop = true, .behaviorVariesOnNb = true});

    const ModuleId consumer = d.addModule(
        "consumer",
        [=](Context &ctx) {
            Value sum = 0;
            for (std::size_t k = 0; k < n; ++k) {
                Value v;
                if (ctx.readNb(f1, v))
                    sum += v;
                ctx.advance(1);
                if (k % 8 == 7)
                    ctx.advance(8); // bursty stalls force drops
            }
            ctx.write(done, 1);
            ctx.store(sum_out, 0, sum);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});

    d.connectFifo(f1, producer, consumer);
    d.connectFifo(done, consumer, producer);
    return d;
}

} // namespace

Design
buildFig4Ex4a()
{
    return buildEx4Bounded("fig4_ex4a", false);
}

Design
buildFig4Ex4aD()
{
    return buildEx4Done("fig4_ex4a_d", false);
}

Design
buildFig4Ex4b()
{
    return buildEx4Bounded("fig4_ex4b", true);
}

Design
buildFig4Ex4bD()
{
    return buildEx4Done("fig4_ex4b_d", true);
}

Design
buildFig4Ex5()
{
    Design d("fig4_ex5");
    const std::size_t n = tableN;
    const MemId ins = d.addMemory("ins", n);
    const MemId p1_out = d.addMemory("processed_by_P1", 1);
    const MemId p2_out = d.addMemory("processed_by_P2", 1);
    const MemId sum1_out = d.addMemory("sum_out_P1", 1);
    const MemId sum2_out = d.addMemory("sum_out_P2", 1);
    d.setInput(ins, iotaData(n));

    // FIFO1 feeds the fast PE and is the controller's first choice;
    // FIFO2 is the overflow path. Writes mix NB dispatch with a blocking
    // end-of-stream sentinel.
    const FifoId f1 = d.declareFifo("FIFO1", 2, mixed, blk);
    const FifoId f2 = d.declareFifo("FIFO2", 2, mixed, blk);

    const ModuleId controller = d.addModule(
        "controller",
        [=](Context &ctx) {
            Value p1 = 0;
            Value p2 = 0;
            std::size_t i = 0;
            while (i < n) {
                const Value v = ctx.load(ins, i);
                if (ctx.writeNb(f1, v)) {
                    ++p1;
                    ++i;
                    // Paced issue slightly faster than P1's service rate:
                    // FIFO1 periodically backs up and overflows to P2,
                    // but never fast enough to back up FIFO2.
                    if (i % 4 != 0)
                        ctx.advance(1);
                } else if (ctx.writeNb(f2, v)) {
                    ++p2;
                    ++i;
                }
            }
            ctx.write(f1, -1); // end-of-stream sentinels
            ctx.write(f2, -1);
            ctx.store(p1_out, 0, p1);
            ctx.store(p2_out, 0, p2);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});

    const ModuleId pe1 = d.addModule("processor1", [=](Context &ctx) {
        Value sum = 0;
        for (;;) {
            const Value v = ctx.read(f1);
            if (v < 0)
                break;
            ctx.advance(1); // process_it_fast
            sum += v;
        }
        ctx.store(sum1_out, 0, sum);
    });

    const ModuleId pe2 = d.addModule("processor2", [=](Context &ctx) {
        Value sum = 0;
        for (;;) {
            const Value v = ctx.read(f2);
            if (v < 0)
                break;
            ctx.advance(2); // process_it_slow
            sum += v;
        }
        ctx.store(sum2_out, 0, sum);
    });

    d.connectFifo(f1, controller, pe1);
    d.connectFifo(f2, controller, pe2);
    return d;
}

Design
buildFig2Timer()
{
    Design d("fig2_timer");
    const std::size_t n = tableN;
    const MemId data = d.addMemory("data", n);
    const MemId cycles_out = d.addMemory("cycles", 1);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(data, iotaData(n));

    const FifoId in_f = d.declareFifo("d_in", 2, blk, blk);
    const FifoId out_f = d.declareFifo("FIFO", 2, blk, nb);

    const ModuleId feeder = d.addModule("feeder", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i)
            ctx.write(in_f, ctx.load(data, i));
    });

    const ModuleId compute = d.addModule("compute", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i) {
            const Value v = ctx.read(in_f);
            ctx.advance(1);
            ctx.write(out_f, v / 2);
        }
    });

    const ModuleId timer = d.addModule(
        "timer",
        [=](Context &ctx) {
            Value cycles = 0;
            Value sum = 0;
            for (std::size_t k = 0; k < n; ++k) {
                while (ctx.empty(out_f)) {
                    ++cycles;
                    ctx.advance(1);
                }
                sum += ctx.read(out_f);
            }
            ctx.store(cycles_out, 0, cycles);
            ctx.store(sum_out, 0, sum);
        },
        {.hasInfiniteLoop = false, .behaviorVariesOnNb = true});

    d.connectFifo(in_f, feeder, compute);
    d.connectFifo(out_f, compute, timer);
    return d;
}

Design
buildDeadlock()
{
    Design d("deadlock");
    const MemId out = d.addMemory("sum", 1);

    const FifoId f1 = d.declareFifo("f1", 2, blk, blk);
    const FifoId f2 = d.declareFifo("f2", 2, blk, blk);

    // Each task first waits for the other: a textbook cyclic deadlock
    // that no FIFO depth can fix.
    const ModuleId a = d.addModule("taskA", [=](Context &ctx) {
        Value sum = 0;
        for (int i = 0; i < 8; ++i) {
            const Value v = ctx.read(f2);
            sum += v;
            ctx.write(f1, v + 1);
        }
        ctx.store(out, 0, sum);
    });

    const ModuleId b = d.addModule("taskB", [=](Context &ctx) {
        for (int i = 0; i < 8; ++i) {
            const Value v = ctx.read(f1);
            ctx.write(f2, v + 1);
        }
    });

    d.connectFifo(f1, a, b);
    d.connectFifo(f2, b, a);
    return d;
}

namespace
{

/** Program word at index i for the branch designs:
 *  0 = nop, 1 = branch to i + 29, 2 = halt (never placed; the fetch
 *  window simply ends). */
Value
branchProgWord(std::size_t i)
{
    return (i % 4 == 3) ? 1 : 0;
}

/**
 * Speculative fetcher: follows a monotonically increasing pc, applying
 * branch redirects from the executor, until pc runs past the window.
 * Returns the number of instructions fetched. Termination holds in every
 * engine because pc only moves forward.
 */
void
fetcherBody(Context &ctx, FifoId instr_f, FifoId redir_f,
            std::size_t base, std::size_t limit, MemId fetched_out,
            bool via_sentinel)
{
    std::size_t pc = base;
    Value fetched = 0;
    while (pc < limit) {
        Value t;
        if (ctx.readNb(redir_f, t))
            pc = static_cast<std::size_t>(t);
        if (pc >= limit)
            break;
        if (ctx.writeNb(instr_f, static_cast<Value>(pc))) {
            ++fetched;
            ++pc;
        }
    }
    // End of fetch window: a negative sentinel carries the fetch count
    // to the executor (multicore) or the count is stored directly.
    ctx.write(instr_f, -(fetched + 1));
    if (!via_sentinel)
        ctx.store(fetched_out, 0, fetched);
}

/**
 * Executor: consumes fetched pcs, executes those matching its
 * architectural pc (1 + 8 cycles), discards wrong-path ones (1 cycle),
 * and issues branch redirects. Drains until the fetcher's sentinel, so
 * it can never starve the fetcher.
 */
Value
executorBody(Context &ctx, MemId prog, FifoId instr_f, FifoId redir_f,
             std::size_t base, std::size_t limit)
{
    std::size_t arch_pc = base;
    Value executed = 0;
    Value fetched_from_sentinel = 0;
    for (;;) {
        const Value raw = ctx.read(instr_f);
        if (raw < 0) {
            fetched_from_sentinel = -raw - 1;
            break;
        }
        const auto pc = static_cast<std::size_t>(raw);
        if (pc != arch_pc) {
            ctx.advance(1); // wrong-path discard
            continue;
        }
        ++executed;
        ctx.advance(8); // execution latency
        const Value op = ctx.load(prog, pc);
        if (op == 1) {
            const std::size_t target = pc + 29;
            arch_pc = target < limit ? target : limit;
            // Redirect may be dropped when the FIFO is full; the wrong
            // path is then simply discarded for longer.
            ctx.writeNb(redir_f, static_cast<Value>(arch_pc));
        } else {
            ++arch_pc;
        }
    }
    return fetched_from_sentinel * (1 << 20) | executed;
}

} // namespace

Design
buildBranch()
{
    Design d("branch");
    const std::size_t n = tableN;
    const MemId prog = d.addMemory("prog", n);
    const MemId fetched_out = d.addMemory("fetched", 1);
    const MemId executed_out = d.addMemory("executed", 1);
    {
        std::vector<Value> words(n);
        for (std::size_t i = 0; i < n; ++i)
            words[i] = branchProgWord(i);
        d.setInput(prog, words);
    }

    const FifoId instr_f = d.declareFifo("instr", 4, mixed, blk);
    const FifoId redir_f = d.declareFifo("redirect", 2, nb, nb);

    const ModuleId fetcher = d.addModule(
        "fetcher",
        [=](Context &ctx) {
            fetcherBody(ctx, instr_f, redir_f, 0, n, fetched_out,
                        false);
        },
        {.hasInfiniteLoop = true, .behaviorVariesOnNb = true});

    const ModuleId executor = d.addModule(
        "executor",
        [=](Context &ctx) {
            const Value packed =
                executorBody(ctx, prog, instr_f, redir_f, 0, n);
            ctx.store(executed_out, 0, packed & ((1 << 20) - 1));
        },
        {.hasInfiniteLoop = true, .behaviorVariesOnNb = true});

    d.connectFifo(instr_f, fetcher, executor);
    d.connectFifo(redir_f, executor, fetcher);
    return d;
}

Design
buildMulticore()
{
    Design d("multicore");
    constexpr std::size_t cores = 16;
    constexpr std::size_t seg = 126; // 16 x 126 = 2016 instructions
    const std::size_t n = cores * seg;

    const MemId prog = d.addMemory("prog", n);
    const MemId fetched_out = d.addMemory("total_fetched", 1);
    const MemId executed_out = d.addMemory("total_executed", 1);
    {
        std::vector<Value> words(n);
        for (std::size_t i = 0; i < n; ++i)
            words[i] = branchProgWord(i);
        d.setInput(prog, words);
    }

    std::vector<FifoId> job_f(cores);
    std::vector<FifoId> instr_f(cores);
    std::vector<FifoId> redir_f(cores);
    std::vector<FifoId> result_f(cores);
    for (std::size_t c = 0; c < cores; ++c) {
        job_f[c] = d.declareFifo(strf("job%zu", c), 2, blk, blk);
        instr_f[c] = d.declareFifo(strf("instr%zu", c), 4, mixed, blk);
        redir_f[c] = d.declareFifo(strf("redir%zu", c), 2, nb, nb);
        result_f[c] = d.declareFifo(strf("result%zu", c), 2, blk, blk);
    }

    const ModuleId dispatcher = d.addModule(
        "dispatcher", [=](Context &ctx) {
            for (std::size_t c = 0; c < cores; ++c)
                ctx.write(job_f[c], static_cast<Value>(c));
        });

    std::vector<ModuleId> fetchers(cores);
    std::vector<ModuleId> executors(cores);
    for (std::size_t c = 0; c < cores; ++c) {
        const FifoId jf = job_f[c];
        const FifoId inf = instr_f[c];
        const FifoId rf = redir_f[c];
        const FifoId resf = result_f[c];
        fetchers[c] = d.addModule(
            strf("fetcher%zu", c),
            [=](Context &ctx) {
                const auto core = static_cast<std::size_t>(ctx.read(jf));
                const std::size_t base = core * seg;
                fetcherBody(ctx, inf, rf, base, base + seg,
                            invalidId, true);
            },
            {.hasInfiniteLoop = true, .behaviorVariesOnNb = true});
        executors[c] = d.addModule(
            strf("executor%zu", c),
            [=](Context &ctx) {
                const std::size_t base = c * seg;
                const Value packed =
                    executorBody(ctx, prog, inf, rf, base, base + seg);
                ctx.write(resf, packed);
            },
            {.hasInfiniteLoop = true, .behaviorVariesOnNb = true});
    }

    const ModuleId collector = d.addModule(
        "collector", [=](Context &ctx) {
            Value fetched = 0;
            Value executed = 0;
            for (std::size_t c = 0; c < cores; ++c) {
                const Value packed = ctx.read(result_f[c]);
                fetched += packed >> 20;
                executed += packed & ((1 << 20) - 1);
            }
            ctx.store(fetched_out, 0, fetched);
            ctx.store(executed_out, 0, executed);
        });

    for (std::size_t c = 0; c < cores; ++c) {
        d.connectFifo(job_f[c], dispatcher, fetchers[c]);
        d.connectFifo(instr_f[c], fetchers[c], executors[c]);
        d.connectFifo(redir_f[c], executors[c], fetchers[c]);
        d.connectFifo(result_f[c], executors[c], collector);
    }
    return d;
}

const std::vector<DesignEntry> &
typeBCDesigns()
{
    static const std::vector<DesignEntry> entries = {
        {"fig4_ex2", "NB FIFO access (done signal)", buildFig4Ex2},
        {"fig4_ex3", "Cyclic dependency", buildFig4Ex3},
        {"fig4_ex4a", "Skip if FIFO full", buildFig4Ex4a},
        {"fig4_ex4a_d", "Skip if full (done signal)", buildFig4Ex4aD},
        {"fig4_ex4b", "Count dropped elements", buildFig4Ex4b},
        {"fig4_ex4b_d", "Count dropped (done signal)", buildFig4Ex4bD},
        {"fig4_ex5", "Congestion-aware select", buildFig4Ex5},
        {"fig2_timer", "Fixed-point cycle count", buildFig2Timer},
        {"deadlock", "Mutual blocking read", buildDeadlock},
        {"branch", "Branch instructions", buildBranch},
        {"multicore", "Multiple cores with branches", buildMulticore},
    };
    return entries;
}

} // namespace omnisim::designs
