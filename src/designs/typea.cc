#include "designs/typea.hh"

#include <algorithm>
#include <limits>

#include "design/context.hh"
#include "designs/common.hh"
#include "sched/schedule.hh"
#include "support/logging.hh"

namespace omnisim::designs
{

namespace
{

constexpr std::size_t smallN = 4096; ///< Stream length for small kernels.

/** Producer: stream mem[0..n) into a FIFO at II = 1. */
void
addProducer(Design &d, const char *name, MemId mem, FifoId out,
            std::size_t n, ModuleId &id)
{
    id = d.addModule(name, [=](Context &ctx) {
        PipelineScope pipe(ctx, 1);
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            ctx.write(out, ctx.load(mem, i));
        }
    });
}

/** Consumer: fold n FIFO elements into a sum stored at mem[0]. */
void
addSumConsumer(Design &d, const char *name, FifoId in, MemId mem,
               std::size_t n, ModuleId &id)
{
    id = d.addModule(name, [=](Context &ctx) {
        // A hardware adder wraps; accumulate unsigned so designs with
        // large words (uram_ecc) get defined two's-complement
        // wraparound instead of signed-overflow UB under UBSan.
        std::uint64_t sum = 0;
        PipelineScope pipe(ctx, 1);
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            sum += static_cast<std::uint64_t>(ctx.read(in));
        }
        ctx.store(mem, 0, static_cast<Value>(sum));
    });
}

/**
 * Build the standard three-stage stream kernel:
 * producer -> worker(transform at the scheduled II) -> sum consumer.
 * The worker's initiation interval and drain depth come from the static
 * scheduler: this is the front-end work Table 5's FE column measures.
 */
Design
makeStreamKernel(const char *name, std::size_t n,
                 const OpGraph &body_graph,
                 std::function<Value(Value)> transform)
{
    Design d(name);
    const MemId data = d.addMemory("data", n);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(data, iotaData(n));

    const LoopSchedule ls = scheduleLoop(body_graph, Resources{});

    const FifoId in_f = d.declareFifo("in", 2);
    const FifoId out_f = d.declareFifo("out", 2);

    ModuleId producer;
    addProducer(d, "producer", data, in_f, n, producer);

    const ModuleId worker = d.addModule("worker", [=](Context &ctx) {
        {
            PipelineScope pipe(ctx, static_cast<std::uint32_t>(ls.ii));
            for (std::size_t i = 0; i < n; ++i) {
                pipe.iter();
                const Value v = ctx.read(in_f);
                ctx.write(out_f, transform(v));
            }
        }
        ctx.advance(ls.depth); // pipeline drain
    });

    ModuleId consumer;
    addSumConsumer(d, "consumer", out_f, sum_out, n, consumer);

    d.connectFifo(in_f, producer, worker);
    d.connectFifo(out_f, worker, consumer);
    return d;
}

/** Op graph: chain of `muls` multiplies and `adds` adds after a read. */
OpGraph
macGraph(std::size_t muls, std::size_t adds, std::size_t divs = 0)
{
    OpGraph g;
    const std::uint32_t rd = g.addOp(OpKind::FifoRead);
    std::uint32_t prev = rd;
    for (std::size_t i = 0; i < muls; ++i) {
        const std::uint32_t m = g.addOp(OpKind::Mul);
        g.addDep(prev, m);
        prev = m;
    }
    for (std::size_t i = 0; i < adds; ++i) {
        const std::uint32_t a = g.addOp(OpKind::Add);
        g.addDep(prev, a);
        prev = a;
    }
    for (std::size_t i = 0; i < divs; ++i) {
        const std::uint32_t v = g.addOp(OpKind::Div);
        g.addDep(prev, v);
        prev = v;
    }
    const std::uint32_t wr = g.addOp(OpKind::FifoWrite);
    g.addDep(prev, wr);
    return g;
}

} // namespace

Design
buildSqrtFixed()
{
    // Three Newton iterations: divide-dominated loop body.
    return makeStreamKernel("sqrt_fixed", smallN, macGraph(0, 2, 1),
                            [](Value v) {
                                Value x = v > 0 ? v : 1;
                                for (int it = 0; it < 3; ++it)
                                    x = (x + v / x) / 2;
                                return x;
                            });
}

Design
buildFirFilter()
{
    // 8 taps through a single multiplier: scheduler yields II = 8.
    OpGraph g = macGraph(8, 7);
    return makeStreamKernel("fir_filter", smallN, g, [](Value v) {
        static constexpr Value taps[8] = {1, -2, 3, -4, 4, -3, 2, -1};
        Value acc = 0;
        for (int t = 0; t < 8; ++t)
            acc += taps[t] * (v + t);
        return acc;
    });
}

Design
buildWindowConv()
{
    return makeStreamKernel("window_conv_fixed", smallN, macGraph(3, 3),
                            [](Value v) {
                                return 3 * v * v + 2 * v + 1;
                            });
}

Design
buildFloatConv()
{
    // "Floating point" via scaled fixed-point arithmetic.
    return makeStreamKernel("float_conv", smallN, macGraph(2, 2),
                            [](Value v) {
                                const Value scaled = v * 1000;
                                return (scaled * 31 + 500) / 1000;
                            });
}

Design
buildApAlu()
{
    return makeStreamKernel("ap_alu", smallN, macGraph(1, 2),
                            [](Value v) {
                                switch (v % 4) {
                                  case 0: return v + 17;
                                  case 1: return v * 3;
                                  case 2: return v >> 2;
                                  default: return v ^ 0x5a5a;
                                }
                            });
}

Design
buildParallelLoops()
{
    Design d("parallel_loops");
    const std::size_t n = smallN;
    const MemId data = d.addMemory("data", n);
    const MemId sum_out = d.addMemory("sum_out", 2);
    d.setInput(data, iotaData(n));

    d.addModule("loops", [=](Context &ctx) {
        Value a = 0;
        {
            PipelineScope pipe(ctx, 1);
            for (std::size_t i = 0; i < n / 2; ++i) {
                pipe.iter();
                a += ctx.load(data, i);
                ctx.advance(1);
            }
        }
        Value b = 0;
        {
            PipelineScope pipe(ctx, 2);
            for (std::size_t i = n / 2; i < n; ++i) {
                pipe.iter();
                b += ctx.load(data, i) * 2;
                ctx.advance(1);
            }
        }
        ctx.store(sum_out, 0, a);
        ctx.store(sum_out, 1, b);
    });
    return d;
}

Design
buildImperfectLoops()
{
    Design d("imperfect_loops");
    const std::size_t rows = 64;
    const MemId data = d.addMemory("data", rows * 8);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(data, iotaData(rows * 8));

    d.addModule("nest", [=](Context &ctx) {
        Value sum = 0;
        for (std::size_t i = 0; i < rows; ++i) {
            ctx.advance(1); // outer-loop setup state
            const std::size_t bound = 1 + i % 8;
            PipelineScope pipe(ctx, 1);
            for (std::size_t j = 0; j < bound; ++j) {
                pipe.iter();
                sum += ctx.load(data, i * 8 + j);
                ctx.advance(1);
            }
        }
        ctx.store(sum_out, 0, sum);
    });
    return d;
}

Design
buildLoopMaxBound()
{
    Design d("loop_max_bound");
    const std::size_t n = 512;
    const MemId data = d.addMemory("data", n);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(data, iotaData(n));

    d.addModule("capped", [=](Context &ctx) {
        Value sum = 0;
        for (std::size_t i = 0; i < n; ++i) {
            // Data-dependent trip count, capped at 16 (the max bound the
            // HLS pragma would declare).
            const auto trip = static_cast<std::size_t>(
                std::min<Value>(ctx.load(data, i) % 19, 16));
            PipelineScope pipe(ctx, 1);
            for (std::size_t j = 0; j < trip; ++j) {
                pipe.iter();
                sum += static_cast<Value>(j);
                ctx.advance(1);
            }
        }
        ctx.store(sum_out, 0, sum);
    });
    return d;
}

Design
buildPerfectNested()
{
    Design d("perfect_nested");
    const std::size_t dim = 64;
    const MemId data = d.addMemory("data", dim * dim);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(data, iotaData(dim * dim));

    d.addModule("nest", [=](Context &ctx) {
        Value sum = 0;
        PipelineScope pipe(ctx, 1); // flattened perfect nest: one pipeline
        for (std::size_t i = 0; i < dim; ++i) {
            for (std::size_t j = 0; j < dim; ++j) {
                pipe.iter();
                sum += ctx.load(data, i * dim + j);
                ctx.advance(1);
            }
        }
        ctx.store(sum_out, 0, sum);
    });
    return d;
}

Design
buildPipelinedNested()
{
    Design d("pipelined_nested");
    const std::size_t dim = 48;
    const MemId data = d.addMemory("data", dim * dim);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(data, iotaData(dim * dim));

    d.addModule("nest", [=](Context &ctx) {
        Value sum = 0;
        PipelineScope outer(ctx, 4); // outer pipelined, inner unrolled
        for (std::size_t i = 0; i < dim; ++i) {
            outer.iter();
            Value row = 0;
            for (std::size_t j = 0; j < dim; ++j)
                row += ctx.load(data, i * dim + j);
            ctx.advance(2); // unrolled reduction tree latency
            sum += row;
        }
        ctx.store(sum_out, 0, sum);
    });
    return d;
}

Design
buildSequentialAccum()
{
    Design d("sequential_accum");
    const std::size_t n = smallN;
    const MemId data = d.addMemory("data", n);
    const MemId sum_out = d.addMemory("sum_out", 2);
    d.setInput(data, iotaData(n));

    d.addModule("accum", [=](Context &ctx) {
        Value a = 0;
        {
            PipelineScope pipe(ctx, 1);
            for (std::size_t i = 0; i < n; ++i) {
                pipe.iter();
                a += ctx.load(data, i);
                ctx.advance(1);
            }
        }
        Value b = 0;
        {
            PipelineScope pipe(ctx, 1);
            for (std::size_t i = 0; i < n; ++i) {
                pipe.iter();
                b += a % (ctx.load(data, i) + 1);
                ctx.advance(1);
            }
        }
        ctx.store(sum_out, 0, a);
        ctx.store(sum_out, 1, b);
    });
    return d;
}

Design
buildAccumAsserts()
{
    Design d("accum_asserts");
    const std::size_t n = smallN;
    const MemId data = d.addMemory("data", n);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(data, iotaData(n));

    d.addModule("accum", [=](Context &ctx) {
        Value sum = 0;
        PipelineScope pipe(ctx, 1);
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            const Value v = ctx.load(data, i);
            // The "assert" guards of the Vitis example become branches.
            if (v >= 0 && v <= static_cast<Value>(n))
                sum += v;
            ctx.advance(1);
        }
        ctx.store(sum_out, 0, sum);
    });
    return d;
}

Design
buildAccumDataflow()
{
    Design d("accum_dataflow");
    const std::size_t n = smallN;
    const MemId data = d.addMemory("data", n);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(data, iotaData(n));

    const FifoId f1 = d.declareFifo("s1", 4);
    const FifoId f2 = d.declareFifo("s2", 4);

    ModuleId producer;
    addProducer(d, "producer", data, f1, n, producer);

    const ModuleId stage = d.addModule("partial", [=](Context &ctx) {
        PipelineScope pipe(ctx, 1);
        Value acc = 0;
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            acc += ctx.read(f1);
            ctx.write(f2, acc);
        }
    });

    const ModuleId sink = d.addModule("sink", [=](Context &ctx) {
        Value last = 0;
        PipelineScope pipe(ctx, 1);
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            last = ctx.read(f2);
        }
        ctx.store(sum_out, 0, last);
    });

    d.connectFifo(f1, producer, stage);
    d.connectFifo(f2, stage, sink);
    return d;
}

Design
buildStaticMemory()
{
    Design d("static_memory");
    const std::size_t n = smallN;
    const MemId data = d.addMemory("data", n);
    const MemId table = d.addMemory("table", 256);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(data, iotaData(n));

    d.addModule("lut", [=](Context &ctx) {
        // Initialize the static table (HLS would burn this into ROM).
        for (std::size_t i = 0; i < 256; ++i)
            ctx.store(table, i, static_cast<Value>((i * 37) % 251));
        ctx.advance(4);
        Value sum = 0;
        PipelineScope pipe(ctx, 1);
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            const Value v = ctx.load(data, i);
            sum += ctx.load(table, static_cast<std::uint64_t>(v) % 256);
            ctx.advance(1);
        }
        ctx.store(sum_out, 0, sum);
    });
    return d;
}

Design
buildPointerCast()
{
    return makeStreamKernel("pointer_cast", smallN, macGraph(0, 4),
                            [](Value v) {
                                // Reinterpret as 4 x 16-bit lanes and sum.
                                Value acc = 0;
                                for (int lane = 0; lane < 4; ++lane)
                                    acc += (v >> (16 * lane)) & 0xffff;
                                return acc;
                            });
}

Design
buildDoublePointer()
{
    Design d("double_pointer");
    const std::size_t n = smallN;
    const MemId data = d.addMemory("data", n);
    const MemId idx = d.addMemory("idx", n);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(data, iotaData(n));
    {
        std::vector<Value> indices(n);
        for (std::size_t i = 0; i < n; ++i)
            indices[i] = static_cast<Value>((i * 131) % n);
        d.setInput(idx, indices);
    }

    d.addModule("gather", [=](Context &ctx) {
        Value sum = 0;
        PipelineScope pipe(ctx, 2); // two dependent loads per iteration
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            const auto j = static_cast<std::uint64_t>(ctx.load(idx, i));
            sum += ctx.load(data, j);
            ctx.advance(2);
        }
        ctx.store(sum_out, 0, sum);
    });
    return d;
}

Design
buildAxi4Master()
{
    Design d("axi4_master");
    const std::size_t n = 2048;
    const std::size_t burst = 64;
    const MemId ddr_in = d.addMemory("ddr_in", n);
    const MemId ddr_out = d.addMemory("ddr_out", n);
    d.setInput(ddr_in, iotaData(n));

    const AxiId rd_port = d.declareAxiPort("gmem_rd", ddr_in);
    const AxiId wr_port = d.declareAxiPort("gmem_wr", ddr_out);

    const ModuleId master = d.addModule("master", [=](Context &ctx) {
        for (std::size_t b = 0; b < n / burst; ++b) {
            ctx.axiReadReq(rd_port, b * burst, burst);
            Value local[burst];
            for (std::size_t k = 0; k < burst; ++k)
                local[k] = ctx.axiRead(rd_port) * 2 + 1;
            ctx.axiWriteReq(wr_port, b * burst, burst);
            for (std::size_t k = 0; k < burst; ++k)
                ctx.axiWrite(wr_port, local[k]);
            ctx.axiWriteResp(wr_port);
        }
    });
    d.connectAxi(rd_port, master);
    d.connectAxi(wr_port, master);
    return d;
}

Design
buildAxisStream()
{
    Design d("axis_stream");
    const std::size_t n = smallN;
    const MemId a = d.addMemory("a", n);
    const MemId b = d.addMemory("b", n);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(a, iotaData(n));
    {
        std::vector<Value> bv(n);
        for (std::size_t i = 0; i < n; ++i)
            bv[i] = static_cast<Value>(3 * i + 7);
        d.setInput(b, bv);
    }

    const FifoId fa = d.declareFifo("sa", 4);
    const FifoId fb = d.declareFifo("sb", 4);
    const FifoId fo = d.declareFifo("so", 4);

    ModuleId pa;
    ModuleId pb;
    addProducer(d, "prod_a", a, fa, n, pa);
    addProducer(d, "prod_b", b, fb, n, pb);

    const ModuleId adder = d.addModule("adder", [=](Context &ctx) {
        PipelineScope pipe(ctx, 1);
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            const Value va = ctx.read(fa);
            const Value vb = ctx.read(fb);
            ctx.write(fo, va + vb);
        }
    });

    ModuleId sink;
    addSumConsumer(d, "sink", fo, sum_out, n, sink);

    d.connectFifo(fa, pa, adder);
    d.connectFifo(fb, pb, adder);
    d.connectFifo(fo, adder, sink);
    return d;
}

Design
buildArrayAccess()
{
    Design d("multiple_array_access");
    const std::size_t n = smallN / 2;
    const MemId m0 = d.addMemory("m0", n);
    const MemId m1 = d.addMemory("m1", n);
    const MemId m2 = d.addMemory("m2", n);
    const MemId sum_out = d.addMemory("sum_out", 1);
    d.setInput(m0, iotaData(n));
    d.setInput(m1, iotaData(n));
    d.setInput(m2, iotaData(n));

    // Three loads per iteration through two ports: the scheduler finds
    // II = 2, which the pipeline below replays.
    OpGraph g;
    const auto l0 = g.addOp(OpKind::Load);
    const auto l1 = g.addOp(OpKind::Load);
    const auto l2 = g.addOp(OpKind::Load);
    const auto s0 = g.addOp(OpKind::Add);
    const auto s1 = g.addOp(OpKind::Add);
    g.addDep(l0, s0);
    g.addDep(l1, s0);
    g.addDep(l2, s1);
    g.addDep(s0, s1);
    const LoopSchedule ls = scheduleLoop(g, Resources{});

    d.addModule("reader", [=](Context &ctx) {
        Value sum = 0;
        PipelineScope pipe(ctx, static_cast<std::uint32_t>(ls.ii));
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            sum += ctx.load(m0, i) + ctx.load(m1, i) + ctx.load(m2, i);
            ctx.advance(1);
        }
        ctx.store(sum_out, 0, sum);
    });
    return d;
}

Design
buildUramEcc()
{
    return makeStreamKernel("uram_ecc", smallN, macGraph(0, 6),
                            [](Value v) {
                                // 8-bit parity of each byte, packed.
                                Value ecc = 0;
                                for (int byte = 0; byte < 8; ++byte) {
                                    Value x = (v >> (8 * byte)) & 0xff;
                                    x ^= x >> 4;
                                    x ^= x >> 2;
                                    x ^= x >> 1;
                                    ecc |= (x & 1) << byte;
                                }
                                return v ^ (ecc << 56);
                            });
}

Design
buildHammingFixed()
{
    return makeStreamKernel("hamming_fixed", smallN, macGraph(0, 5),
                            [](Value v) {
                                std::uint64_t x =
                                    static_cast<std::uint64_t>(v) ^
                                    0x5555555555555555ULL;
                                Value count = 0;
                                while (x) {
                                    x &= x - 1;
                                    ++count;
                                }
                                return count;
                            });
}

Design
buildHuffmanEncode()
{
    Design d("huffman_encoding");
    const std::size_t n = smallN;
    const MemId data = d.addMemory("data", n);
    const MemId hist = d.addMemory("hist", 64);
    const MemId len_out = d.addMemory("total_bits", 1);
    d.setInput(data, iotaData(n));

    d.addModule("encode", [=](Context &ctx) {
        // Phase 1: symbol histogram.
        {
            PipelineScope pipe(ctx, 2); // read-modify-write recurrence
            for (std::size_t i = 0; i < n; ++i) {
                pipe.iter();
                const auto sym =
                    static_cast<std::uint64_t>(ctx.load(data, i)) % 64;
                ctx.store(hist, sym, ctx.load(hist, sym) + 1);
                ctx.advance(1);
            }
        }
        // Phase 2: approximate code lengths (log2 of inverse freq).
        Value total_bits = 0;
        {
            PipelineScope pipe(ctx, 1);
            for (std::size_t s = 0; s < 64; ++s) {
                pipe.iter();
                const Value f = ctx.load(hist, s);
                Value bits = 1;
                Value cap = 2;
                while (cap < static_cast<Value>(n) / (f + 1)) {
                    cap *= 2;
                    ++bits;
                }
                total_bits += f * bits;
                ctx.advance(1);
            }
        }
        ctx.store(len_out, 0, total_bits);
    });
    return d;
}

Design
buildMatmul()
{
    Design d("matrix_multiplication");
    const std::size_t dim = 16;
    const MemId a = d.addMemory("A", dim * dim);
    const MemId b = d.addMemory("B", dim * dim);
    const MemId c = d.addMemory("C", dim * dim);
    d.setInput(a, iotaData(dim * dim));
    {
        std::vector<Value> bv(dim * dim);
        for (std::size_t i = 0; i < dim * dim; ++i)
            bv[i] = static_cast<Value>((i % 7) + 1);
        d.setInput(b, bv);
    }

    d.addModule("matmul", [=](Context &ctx) {
        for (std::size_t i = 0; i < dim; ++i) {
            for (std::size_t j = 0; j < dim; ++j) {
                Value acc = 0;
                PipelineScope pipe(ctx, 1);
                for (std::size_t k = 0; k < dim; ++k) {
                    pipe.iter();
                    acc += ctx.load(a, i * dim + k) *
                           ctx.load(b, k * dim + j);
                    ctx.advance(1);
                }
                ctx.store(c, i * dim + j, acc);
            }
        }
    });
    return d;
}

Design
buildMergeSort()
{
    Design d("parallelized_merge_sort");
    const std::size_t n = 1024; // two 512-element halves
    const MemId data = d.addMemory("data", n);
    const MemId sorted = d.addMemory("sorted", n);
    {
        std::vector<Value> v(n);
        for (std::size_t i = 0; i < n; ++i)
            v[i] = static_cast<Value>((i * 977 + 131) % 4093);
        d.setInput(data, v);
    }

    const FifoId lo_f = d.declareFifo("lo", 8);
    const FifoId hi_f = d.declareFifo("hi", 8);

    auto sorter = [=](std::size_t base, FifoId out) {
        return [=](Context &ctx) {
            const std::size_t half = n / 2;
            std::vector<Value> buf(half);
            {
                PipelineScope pipe(ctx, 1);
                for (std::size_t i = 0; i < half; ++i) {
                    pipe.iter();
                    buf[i] = ctx.load(data, base + i);
                    ctx.advance(1);
                }
            }
            std::sort(buf.begin(), buf.end());
            ctx.advance(half); // sort-network latency model
            PipelineScope pipe(ctx, 1);
            for (std::size_t i = 0; i < half; ++i) {
                pipe.iter();
                ctx.write(out, buf[i]);
            }
        };
    };

    const ModuleId s0 = d.addModule("sorter_lo", sorter(0, lo_f));
    const ModuleId s1 = d.addModule("sorter_hi", sorter(n / 2, hi_f));

    const ModuleId merger = d.addModule("merger", [=](Context &ctx) {
        Value a = ctx.read(lo_f);
        Value b = ctx.read(hi_f);
        std::size_t taken_lo = 1;
        std::size_t taken_hi = 1;
        const std::size_t half = n / 2;
        for (std::size_t i = 0; i < n; ++i) {
            if (taken_hi > half || (taken_lo <= half && a <= b)) {
                ctx.store(sorted, i, a);
                a = taken_lo < half ? ctx.read(lo_f)
                                    : std::numeric_limits<Value>::max();
                ++taken_lo;
            } else {
                ctx.store(sorted, i, b);
                b = taken_hi < half ? ctx.read(hi_f)
                                    : std::numeric_limits<Value>::max();
                ++taken_hi;
            }
            ctx.advance(1);
        }
    });

    d.connectFifo(lo_f, s0, merger);
    d.connectFifo(hi_f, s1, merger);
    return d;
}

Design
buildVecaddStream()
{
    Design d("vector_add_stream");
    const std::size_t n = 2048;
    const std::size_t burst = 128;
    const MemId in_a = d.addMemory("in_a", n);
    const MemId in_b = d.addMemory("in_b", n);
    const MemId out = d.addMemory("out", n);
    d.setInput(in_a, iotaData(n));
    d.setInput(in_b, iotaData(n));

    const AxiId pa = d.declareAxiPort("gmem_a", in_a);
    const AxiId pb = d.declareAxiPort("gmem_b", in_b);
    const AxiId po = d.declareAxiPort("gmem_o", out);

    const FifoId fa = d.declareFifo("sa", 8);
    const FifoId fb = d.declareFifo("sb", 8);
    const FifoId fo = d.declareFifo("so", 8);

    const ModuleId ld_a = d.addModule("load_a", [=](Context &ctx) {
        for (std::size_t b = 0; b < n / burst; ++b) {
            ctx.axiReadReq(pa, b * burst, burst);
            for (std::size_t k = 0; k < burst; ++k)
                ctx.write(fa, ctx.axiRead(pa));
        }
    });
    const ModuleId ld_b = d.addModule("load_b", [=](Context &ctx) {
        for (std::size_t b = 0; b < n / burst; ++b) {
            ctx.axiReadReq(pb, b * burst, burst);
            for (std::size_t k = 0; k < burst; ++k)
                ctx.write(fb, ctx.axiRead(pb));
        }
    });
    const ModuleId adder = d.addModule("add", [=](Context &ctx) {
        PipelineScope pipe(ctx, 1);
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            ctx.write(fo, ctx.read(fa) + ctx.read(fb));
        }
    });
    const ModuleId st = d.addModule("store", [=](Context &ctx) {
        for (std::size_t b = 0; b < n / burst; ++b) {
            ctx.axiWriteReq(po, b * burst, burst);
            for (std::size_t k = 0; k < burst; ++k)
                ctx.axiWrite(po, ctx.read(fo));
            ctx.axiWriteResp(po);
        }
    });

    d.connectAxi(pa, ld_a);
    d.connectAxi(pb, ld_b);
    d.connectAxi(po, st);
    d.connectFifo(fa, ld_a, adder);
    d.connectFifo(fb, ld_b, adder);
    d.connectFifo(fo, adder, st);
    return d;
}

Design
buildFlowGnnLite()
{
    // Message-passing GNN skeleton: loader scatters node features to
    // four PE lanes; each lane aggregates neighbor messages and applies
    // an MLP-like transform; a merger reduces lane results.
    Design d("flowgnn_lite");
    constexpr std::size_t nodes = 8192;
    constexpr std::size_t lanes = 4;
    const MemId feat = d.addMemory("features", nodes);
    const MemId out = d.addMemory("embedding_sum", 1);
    d.setInput(feat, iotaData(nodes));

    std::vector<FifoId> lane_f(lanes);
    std::vector<FifoId> res_f(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        lane_f[l] = d.declareFifo(strf("lane%zu", l), 8);
        res_f[l] = d.declareFifo(strf("res%zu", l), 8);
    }

    const ModuleId loader = d.addModule("loader", [=](Context &ctx) {
        PipelineScope pipe(ctx, 1);
        for (std::size_t v = 0; v < nodes; ++v) {
            pipe.iter();
            ctx.write(lane_f[v % lanes], ctx.load(feat, v));
        }
    });

    std::vector<ModuleId> pes(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
        const FifoId in_f = lane_f[l];
        const FifoId out_f = res_f[l];
        pes[l] = d.addModule(strf("pe%zu", l), [=](Context &ctx) {
            const std::size_t count = nodes / lanes;
            Value state = 0;
            PipelineScope pipe(ctx, 2); // gather + MLP stage
            for (std::size_t i = 0; i < count; ++i) {
                pipe.iter();
                const Value v = ctx.read(in_f);
                state = state / 2 + v * 3 + 1; // degree-4 aggregation mix
                ctx.advance(2);
                ctx.write(out_f, state);
            }
        });
    }

    const ModuleId merger = d.addModule("merger", [=](Context &ctx) {
        Value sum = 0;
        const std::size_t count = nodes / lanes;
        PipelineScope pipe(ctx, 1);
        for (std::size_t i = 0; i < count; ++i) {
            for (std::size_t l = 0; l < lanes; ++l) {
                pipe.iter();
                sum += ctx.read(res_f[l]);
            }
        }
        ctx.store(out, 0, sum);
    });

    d.connectFifo(lane_f[0], loader, pes[0]);
    d.connectFifo(lane_f[1], loader, pes[1]);
    d.connectFifo(lane_f[2], loader, pes[2]);
    d.connectFifo(lane_f[3], loader, pes[3]);
    for (std::size_t l = 0; l < lanes; ++l)
        d.connectFifo(res_f[l], pes[l], merger);
    return d;
}

Design
buildInrArchLite()
{
    // Deep dataflow chain: 12 transform stages over a long stream —
    // the structure that gives OmniSim its multi-threading win.
    Design d("inr_arch_lite");
    constexpr std::size_t items = 16384;
    constexpr std::size_t stages = 12;
    const MemId data = d.addMemory("data", items);
    const MemId out = d.addMemory("out_sum", 1);
    d.setInput(data, iotaData(items));

    std::vector<FifoId> links(stages + 1);
    for (std::size_t s = 0; s <= stages; ++s)
        links[s] = d.declareFifo(strf("link%zu", s), 4);

    ModuleId producer;
    addProducer(d, "source", data, links[0], items, producer);

    std::vector<ModuleId> mods(stages);
    for (std::size_t s = 0; s < stages; ++s) {
        const FifoId in_f = links[s];
        const FifoId out_f = links[s + 1];
        const Value coeff = static_cast<Value>(s + 2);
        mods[s] = d.addModule(strf("grad%zu", s), [=](Context &ctx) {
            PipelineScope pipe(ctx, 1);
            for (std::size_t i = 0; i < items; ++i) {
                pipe.iter();
                const Value v = ctx.read(in_f);
                ctx.write(out_f, v * coeff + (v >> 3));
            }
        });
    }

    ModuleId sink;
    addSumConsumer(d, "sink", links[stages], out, items, sink);

    d.connectFifo(links[0], producer, mods[0]);
    for (std::size_t s = 1; s < stages; ++s)
        d.connectFifo(links[s], mods[s - 1], mods[s]);
    d.connectFifo(links[stages], mods[stages - 1], sink);
    return d;
}

Design
buildSkynetLite()
{
    // CNN layer pipeline with shrinking feature maps — the largest
    // design, mirroring SkyNet's role in Table 5.
    Design d("skynet_lite");
    constexpr std::size_t input_hw = 160;
    const std::size_t in_px = input_hw * input_hw; // 25,600 pixels
    const MemId img = d.addMemory("image", in_px);
    const MemId out = d.addMemory("detections", 4);
    d.setInput(img, iotaData(in_px));

    struct Layer
    {
        const char *name;
        std::size_t out_count; ///< Elements produced.
        std::size_t reduce;    ///< Inputs consumed per output.
        Cycles mac_latency;    ///< Compute cycles per output.
    };
    // conv1 -> pool1 -> conv2 -> pool2 -> dwconv -> pwconv -> head
    const Layer layers[] = {
        {"conv1", in_px, 1, 2},          {"pool1", in_px / 4, 4, 1},
        {"conv2", in_px / 4, 1, 3},      {"pool2", in_px / 16, 4, 1},
        {"dwconv", in_px / 16, 1, 2},    {"pwconv", in_px / 64, 4, 2},
        {"head", 4, in_px / 256, 4},
    };
    const std::size_t nlayers = std::size(layers);

    std::vector<FifoId> links(nlayers + 1);
    for (std::size_t s = 0; s <= nlayers; ++s)
        links[s] = d.declareFifo(strf("fmap%zu", s), 8);

    ModuleId producer;
    addProducer(d, "pixels", img, links[0], in_px, producer);

    std::vector<ModuleId> mods(nlayers);
    for (std::size_t s = 0; s < nlayers; ++s) {
        const Layer &ly = layers[s];
        const FifoId in_f = links[s];
        const FifoId out_f = links[s + 1];
        mods[s] = d.addModule(ly.name, [=](Context &ctx) {
            PipelineScope pipe(ctx, 1);
            for (std::size_t o = 0; o < ly.out_count; ++o) {
                pipe.iter();
                Value acc = 0;
                for (std::size_t k = 0; k < ly.reduce; ++k)
                    acc += ctx.read(in_f);
                ctx.advance(ly.mac_latency);
                ctx.write(out_f, acc * 2 + 1);
            }
        });
    }

    const ModuleId head_sink = d.addModule("sink", [=](Context &ctx) {
        for (std::size_t i = 0; i < 4; ++i)
            ctx.store(out, i, ctx.read(links[nlayers]));
    });

    d.connectFifo(links[0], producer, mods[0]);
    for (std::size_t s = 1; s < nlayers; ++s)
        d.connectFifo(links[s], mods[s - 1], mods[s]);
    d.connectFifo(links[nlayers], mods[nlayers - 1], head_sink);
    return d;
}

Design
buildFifoChain()
{
    // Minimal three-stage blocking relay chain. Small enough to finish in
    // milliseconds under every engine, which makes it the standard target
    // for CLI smoke tests and batch-subsystem examples.
    Design d("fifo_chain");
    constexpr std::size_t n = 1024;
    const MemId data = d.addMemory("data", n);
    const MemId out = d.addMemory("sum_out", 1);
    d.setInput(data, iotaData(n));

    const FifoId a = d.declareFifo("a", 2);
    const FifoId b = d.declareFifo("b", 2);

    ModuleId producer;
    addProducer(d, "producer", data, a, n, producer);

    const ModuleId relay = d.addModule("relay", [=](Context &ctx) {
        PipelineScope pipe(ctx, 1);
        for (std::size_t i = 0; i < n; ++i) {
            pipe.iter();
            ctx.write(b, ctx.read(a));
        }
    });

    ModuleId sink;
    addSumConsumer(d, "sink", b, out, n, sink);

    d.connectFifo(a, producer, relay);
    d.connectFifo(b, relay, sink);
    return d;
}

Design
buildReconvergent()
{
    // Splitter feeds two bursty branches whose expensive iterations are
    // phase-shifted (a 15-cycle stall every 8th element vs a 33-cycle
    // stall every 16th); a joiner recombines them. Both branches
    // average ~3 cycles per element, so with shallow FIFOs the branches
    // advance in lockstep and their stalls add, while FIFOs about as
    // deep as a burst period let the bursts slide past each other —
    // latency genuinely trades against buffer cost across the whole
    // 1..16 ladder, which is what makes joint FIFO sizing non-obvious.
    // The standard target for the src/dse/ exploration subsystem.
    Design d("reconvergent");
    constexpr std::size_t n = 512;
    const MemId data = d.addMemory("data", n);
    const MemId out = d.addMemory("out", 1);
    d.setInput(data, iotaData(n));

    const FifoId fast_f = d.declareFifo("fast", 4);
    const FifoId slow_f = d.declareFifo("slow", 4);
    const FifoId fast_o = d.declareFifo("fast_o", 4);
    const FifoId slow_o = d.declareFifo("slow_o", 4);

    const ModuleId split = d.addModule("split", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i) {
            const Value v = ctx.load(data, i);
            ctx.write(fast_f, v);
            ctx.write(slow_f, v);
        }
    });
    const ModuleId fast = d.addModule("fast_path", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i) {
            const Value v = ctx.read(fast_f);
            ctx.advance(i % 8 == 0 ? 15 : 1);
            ctx.write(fast_o, v * 2);
        }
    });
    const ModuleId slow = d.addModule("slow_path", [=](Context &ctx) {
        for (std::size_t i = 0; i < n; ++i) {
            const Value v = ctx.read(slow_f);
            ctx.advance(i % 16 == 0 ? 33 : 1);
            ctx.write(slow_o, v * v);
        }
    });
    const ModuleId join = d.addModule("join", [=](Context &ctx) {
        Value acc = 0;
        for (std::size_t i = 0; i < n; ++i)
            acc += ctx.read(fast_o) ^ ctx.read(slow_o);
        ctx.store(out, 0, acc);
    });

    d.connectFifo(fast_f, split, fast);
    d.connectFifo(slow_f, split, slow);
    d.connectFifo(fast_o, fast, join);
    d.connectFifo(slow_o, slow, join);
    return d;
}

const std::vector<DesignEntry> &
typeADesigns()
{
    static const std::vector<DesignEntry> entries = {
        {"sqrt_fixed", "Fixed-point square root", buildSqrtFixed},
        {"fir_filter", "FIR filter", buildFirFilter},
        {"window_conv_fixed", "Fixed-point window conv", buildWindowConv},
        {"float_conv", "Floating point conv", buildFloatConv},
        {"ap_alu", "Arbitrary precision ALU", buildApAlu},
        {"parallel_loops", "Parallel loops", buildParallelLoops},
        {"imperfect_loops", "Imperfect loops", buildImperfectLoops},
        {"loop_max_bound", "Loop with max bound", buildLoopMaxBound},
        {"perfect_nested", "Perfect nested loops", buildPerfectNested},
        {"pipelined_nested", "Pipelined nested loops",
         buildPipelinedNested},
        {"sequential_accum", "Sequential accumulators",
         buildSequentialAccum},
        {"accum_asserts", "Accumulators + asserts", buildAccumAsserts},
        {"accum_dataflow", "Accumulators + dataflow", buildAccumDataflow},
        {"static_memory", "Static memory example", buildStaticMemory},
        {"pointer_cast", "Pointer casting example", buildPointerCast},
        {"double_pointer", "Double pointer example", buildDoublePointer},
        {"axi4_master", "AXI4 master", buildAxi4Master},
        {"axis_stream", "AXIS w/o side channel", buildAxisStream},
        {"multiple_array_access", "Multiple array access",
         buildArrayAccess},
        {"uram_ecc", "URAM with ECC", buildUramEcc},
        {"hamming_fixed", "Fixed-point Hamming", buildHammingFixed},
        {"huffman_encoding", "Huffman encoding", buildHuffmanEncode},
        {"matrix_multiplication", "Matrix multiplication", buildMatmul},
        {"parallelized_merge_sort", "Parallelized merge sort",
         buildMergeSort},
        {"vector_add_stream", "Vector add with stream",
         buildVecaddStream},
        {"flowgnn_lite", "FlowGNN-style message passing (large)",
         buildFlowGnnLite},
        {"inr_arch_lite", "INR-Arch-style gradient chain (large)",
         buildInrArchLite},
        {"skynet_lite", "SkyNet-style CNN pipeline (large)",
         buildSkynetLite},
        {"fifo_chain", "Blocking FIFO relay chain (smoke test)",
         buildFifoChain},
        {"reconvergent", "Reconvergent split/join, phase-shifted bursts",
         buildReconvergent},
    };
    return entries;
}

} // namespace omnisim::designs
