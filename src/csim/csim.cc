#include "csim/csim.hh"

#include <deque>
#include <map>
#include <vector>

#include "design/context.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/memory.hh"
#include "support/logging.hh"

namespace omnisim
{

namespace
{

/** Raised internally to stop a runaway module. */
struct OpLimitExceeded
{
    ModuleId module;
};

/**
 * The naive context: infinite streams, no timing, sequential execution.
 */
class CSimContext : public Context
{
  public:
    CSimContext(const Design &design, MemoryPool &pool,
                const CSimOptions &opts)
        : design_(design), pool_(pool), opts_(opts),
          queues_(design.fifos().size())
    {}

    void
    beginModule(ModuleId m)
    {
        module_ = m;
        opCount_ = 0;
    }

    Value
    read(FifoId f) override
    {
        bump();
        auto &q = queues_[f];
        if (q.empty()) {
            ++readWhileEmpty_[f];
            return 0;
        }
        Value v = q.front();
        q.pop_front();
        return v;
    }

    void
    write(FifoId f, Value v) override
    {
        bump();
        queues_[f].push_back(v); // infinite depth: never stalls
    }

    bool
    readNb(FifoId f, Value &out) override
    {
        bump();
        auto &q = queues_[f];
        if (q.empty())
            return false;
        out = q.front();
        q.pop_front();
        return true;
    }

    bool
    writeNb(FifoId f, Value v) override
    {
        bump();
        queues_[f].push_back(v); // infinite depth: always succeeds
        return true;
    }

    bool
    empty(FifoId f) override
    {
        bump();
        return queues_[f].empty();
    }

    bool
    full(FifoId) override
    {
        bump();
        return false; // infinite depth: never full
    }

    void emptyUnused(FifoId) override { bump(); }
    void fullUnused(FifoId) override { bump(); }

    Value
    load(MemId m, std::uint64_t idx) override
    {
        bump();
        return pool_.load(m, idx);
    }

    void
    store(MemId m, std::uint64_t idx, Value v) override
    {
        bump();
        pool_.store(m, idx, v);
    }

    void
    axiReadReq(AxiId a, std::uint64_t addr, std::uint32_t len) override
    {
        bump();
        axi_[a].push_back({addr, len, 0});
    }

    Value
    axiRead(AxiId a) override
    {
        bump();
        auto &bursts = axi_[a];
        if (bursts.empty())
            throw SimCrash("AXI read with no outstanding burst");
        auto &b = bursts.front();
        const Value v =
            pool_.load(design_.axiPorts()[a].backing, b.addr + b.beat);
        if (++b.beat == b.len)
            bursts.pop_front();
        return v;
    }

    void
    axiWriteReq(AxiId a, std::uint64_t addr, std::uint32_t len) override
    {
        bump();
        axi_[a].push_back({addr, len, 0});
    }

    void
    axiWrite(AxiId a, Value v) override
    {
        bump();
        auto &bursts = axi_[a];
        if (bursts.empty())
            throw SimCrash("AXI write with no outstanding burst");
        auto &b = bursts.front();
        pool_.store(design_.axiPorts()[a].backing, b.addr + b.beat, v);
        ++b.beat;
    }

    void
    axiWriteResp(AxiId a) override
    {
        bump();
        auto &bursts = axi_[a];
        if (!bursts.empty())
            bursts.pop_front();
    }

    // C simulation is untimed.
    void advance(Cycles) override { bump(); }
    Cycles now() const override { return 0; }
    void pipelineBegin(std::uint32_t) override {}
    void iterBegin() override {}
    void pipelineEnd() override {}

    /** Collect end-of-run warnings (read-while-empty, leftover data). */
    void
    finish(SimResult &r) const
    {
        for (const auto &[f, count] : readWhileEmpty_) {
            r.warnings.push_back(strf(
                "WARNING: Hls::stream '%s' is read while empty, "
                "returned default value (x%llu)",
                design_.fifos()[f].name.c_str(),
                static_cast<unsigned long long>(count)));
        }
        for (std::size_t f = 0; f < queues_.size(); ++f) {
            if (!queues_[f].empty()) {
                r.warnings.push_back(strf(
                    "WARNING: Hls::stream '%s' contains leftover data "
                    "(%zu elements)",
                    design_.fifos()[f].name.c_str(), queues_[f].size()));
            }
        }
    }

    std::uint64_t totalOps() const { return totalOps_; }

  private:
    void
    bump()
    {
        ++totalOps_;
        if (++opCount_ > opts_.opLimit)
            throw OpLimitExceeded{module_};
    }

    struct Burst
    {
        std::uint64_t addr;
        std::uint32_t len;
        std::uint32_t beat;
    };

    const Design &design_;
    MemoryPool &pool_;
    const CSimOptions &opts_;
    std::vector<std::deque<Value>> queues_;
    std::map<FifoId, std::uint64_t> readWhileEmpty_;
    std::map<AxiId, std::deque<Burst>> axi_;
    ModuleId module_ = invalidId;
    std::uint64_t opCount_ = 0;
    std::uint64_t totalOps_ = 0;
};

} // namespace

SimResult
simulateCSim(const CompiledDesign &cd, const CSimOptions &opts)
{
    static obs::Counter &mRuns =
        obs::Registry::global().counter("engine.csim.runs");
    static obs::Histogram &mRunUs =
        obs::Registry::global().histogram("engine.csim.run_us");
    OMNISIM_SPAN("csim.run");
    obs::ScopedLatencyUs runTimer(mRunUs);
    mRuns.add();

    const Design &design = cd.d();
    MemoryPool pool = design.makeMemoryPool();
    CSimContext ctx(design, pool, opts);
    SimResult r;

    // Sequential execution order: topological when acyclic (so Type A
    // designs work), declaration order otherwise (what a C compiler does
    // with sequential function calls).
    std::vector<ModuleId> order = cd.classification.topoOrder;
    if (order.empty())
        for (std::size_t i = 0; i < design.modules().size(); ++i)
            order.push_back(static_cast<ModuleId>(i));

    for (ModuleId m : order) {
        ctx.beginModule(m);
        try {
            design.modules()[m].body(ctx);
        } catch (const SimCrash &crash) {
            r.status = SimStatus::Crash;
            r.message = strf("@E Simulation failed: SIGSEGV (%s in task "
                             "'%s')", crash.what(),
                             design.modules()[m].name.c_str());
            break;
        } catch (const OpLimitExceeded &e) {
            r.status = SimStatus::Timeout;
            r.message = strf("task '%s' exceeded the C-sim op limit "
                             "(infinite loop never terminated)",
                             design.modules()[e.module].name.c_str());
            break;
        }
    }

    ctx.finish(r);
    r.stats.events = ctx.totalOps();
    for (std::size_t i = 0; i < design.memories().size(); ++i) {
        r.memories[design.memories()[i].name] =
            pool.contents(static_cast<MemId>(i));
    }
    return r;
}

} // namespace omnisim
