/**
 * @file
 * Naive C simulation — the "C-sim" column of Table 3.
 *
 * Mimics how commercial HLS tools execute a dataflow testbench at the C
 * level: modules run sequentially to completion (topological order when
 * acyclic, declaration order otherwise), streams have infinite depth, a
 * blocking read of an empty stream warns ("is read while empty") and
 * returns a default value, non-blocking writes always succeed, and
 * leftover stream data is reported when the run ends. Out-of-bounds
 * memory accesses — e.g. an infinite producer loop that never receives
 * its done signal because the consumer has not run yet — surface as a
 * simulated SIGSEGV, exactly the crashes the paper observes for
 * fig4_ex2 / fig4_ex4a_d / fig4_ex4b_d.
 *
 * C-sim provides no performance model: totalCycles is always 0.
 */

#ifndef OMNISIM_CSIM_CSIM_HH
#define OMNISIM_CSIM_CSIM_HH

#include <cstdint>

#include "design/frontend.hh"
#include "runtime/result.hh"

namespace omnisim
{

/** Options controlling the naive C simulation. */
struct CSimOptions
{
    /**
     * Abort a module after this many context operations. Infinite loops
     * that neither crash nor terminate (no done signal can ever arrive
     * under sequential execution) are reported as Timeout.
     */
    std::uint64_t opLimit = 50'000'000;
};

/** Run naive C simulation of a compiled design. */
SimResult simulateCSim(const CompiledDesign &cd, const CSimOptions &opts = {});

} // namespace omnisim

#endif // OMNISIM_CSIM_CSIM_HH
