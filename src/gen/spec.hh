/**
 * @file
 * The generated-design specification: a small, fully serializable IR
 * describing one randomized dataflow design — a process DAG with FIFO
 * edges (forward and request/response back-edges), per-end blocking /
 * non-blocking access modes, per-process pacing (bursty, phase-shifted
 * advance patterns) and pipelining. materialize() interprets a spec
 * into a regular Design the four engines can simulate, so the same
 * spec drives every oracle of the differential conformance harness
 * (src/gen/conformance.hh) and shrinks structurally (src/gen/shrink.hh)
 * without touching C++ lambdas.
 *
 * Execution semantics of one process p over spec.items iterations
 * (interpreted by the module body materialize() emits):
 *
 *   1. read every forward in-edge (writer index < p), in edge order:
 *      blocking reads accumulate the value; non-blocking reads
 *      accumulate on hit and perturb the accumulator on miss (the
 *      outcome visibly changes behavior — Type C semantics), after an
 *      optional empty() probe whose result is also accumulated;
 *   2. pace: advance(paceBase) every iteration, plus advance(paceBurst)
 *      on iterations congruent to pacePhase mod paceEvery;
 *   3. write every out-edge, in edge order: a mixed function of the
 *      accumulator and the iteration index; non-blocking writes count
 *      drops (stored, so drops are functionally visible), after an
 *      optional full() probe;
 *   4. read every response in-edge (writer index > p) — the fig4_ex3
 *      request/response shape that makes the module graph cyclic.
 *
 * Processes with no forward in-edge additionally load the shared input
 * memory each iteration (stride/offset addressing). Every process ends
 * by storing its accumulator and drop count to its own output memory.
 * With all ends blocking and token-conserving loops this terminates by
 * construction; spec.extraReads deliberately breaks conservation on one
 * process to synthesize guaranteed deadlocks (a conformance outcome in
 * its own right).
 */

#ifndef OMNISIM_GEN_SPEC_HH
#define OMNISIM_GEN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "design/design.hh"

namespace omnisim::gen
{

/** How one end of a generated FIFO edge is accessed. */
enum class PortMode : std::uint8_t
{
    Blocking,
    NonBlocking,
};

/** One FIFO edge of the generated process graph. */
struct GenEdge
{
    /** Process indices. writer < reader is a forward dataflow edge;
     *  writer > reader is a request/response back-edge (read at the end
     *  of the reader's iteration). Self-edges are invalid. */
    std::uint32_t writer = 0;
    std::uint32_t reader = 1;

    std::uint32_t depth = 2; ///< FIFO depth, >= 1.

    PortMode writeMode = PortMode::Blocking;
    PortMode readMode = PortMode::Blocking;

    bool operator==(const GenEdge &) const = default;
};

/** Per-process behavior knobs. */
struct GenProc
{
    /** Pipeline initiation interval; 0 = no pipeline scope. */
    std::uint32_t ii = 0;

    /** advance() issued every iteration. */
    std::uint32_t paceBase = 0;

    /** Bursty stall: advance(paceBurst) on every iteration i with
     *  i % paceEvery == pacePhase. paceEvery == 0 disables the burst. */
    std::uint32_t paceEvery = 0;
    std::uint32_t paceBurst = 0;
    std::uint32_t pacePhase = 0;

    /** Input-memory addressing for source processes (no forward
     *  in-edge): load(data, (i * stride + offset) % dataSize). */
    std::uint32_t stride = 1;
    std::uint32_t offset = 0;

    /** Probe empty() before each non-blocking read (result is
     *  accumulated, so it is behavior-relevant, never elided). */
    bool checksEmpty = false;

    /** Probe full() before each non-blocking write. */
    bool checksFull = false;

    bool operator==(const GenProc &) const = default;
};

/** One complete generated design. */
struct GenSpec
{
    /** Provenance: the generator seed (0 for hand-written specs). Not
     *  semantic — it only names the design. */
    std::uint64_t seed = 0;

    /** Tokens through every blocking edge; loop trip count. */
    std::uint32_t items = 16;

    /** Deadlock injection: extraProc performs this many blocking reads
     *  beyond the conserved token count on its first blocking forward
     *  in-edge. 0 disables (the common case). */
    std::uint32_t extraReads = 0;
    std::uint32_t extraProc = 0;

    std::vector<GenProc> procs;
    std::vector<GenEdge> edges;

    bool operator==(const GenSpec &) const = default;
};

/** Spec size ceilings enforced by validateSpec(). Sized for the
 *  large-regime generator (gen::largeGenConfig), whose designs need
 *  thousands of processes to exercise the partitioned parallel
 *  relaxation paths; one engine thread is spawned per process, so
 *  materializing near the ceiling is a deliberate stress, not a
 *  default. */
constexpr std::uint32_t kMaxGenProcs = 4096;
constexpr std::uint32_t kMaxGenEdges = 12288;
constexpr std::uint32_t kMaxGenItems = 1u << 16;
constexpr std::uint32_t kMaxGenDepth = 1u << 20;
constexpr std::uint32_t kMaxGenPace = 1u << 12;

/**
 * Check structural validity: at least one process, every edge endpoint
 * in range and non-self, depths/items/pace within ceilings, and the
 * extra-read injection pointing at a process that actually has a
 * blocking forward in-edge.
 * @throws FatalError naming the first violation.
 */
void validateSpec(const GenSpec &spec);

/** @return validateSpec() success as a bool (shrink candidates). */
bool specIsValid(const GenSpec &spec);

/**
 * Interpret a spec into a simulatable Design named "gen_<seed>".
 * @throws FatalError when the spec fails validation.
 */
Design materialize(const GenSpec &spec);

/**
 * Serialize a spec as a single-line, human-readable token (the form
 * `omnisim_cli fuzz --replay` accepts and regression tests embed):
 *
 *   g1;seed=42;items=16;extra=2@1;
 *     P ii=1 pace=0/8/33/4 src=3+7 chk=ef;
 *     P ...;
 *     E 0>1 d=4 w=b r=n; ...
 *
 * (shown wrapped; the actual encoding is one line, ';'-separated).
 */
std::string specToString(const GenSpec &spec);

/**
 * Parse specToString() output back into a spec.
 * @throws FatalError on any malformation (also validates).
 */
GenSpec parseSpec(const std::string &text);

} // namespace omnisim::gen

#endif // OMNISIM_GEN_SPEC_HH
