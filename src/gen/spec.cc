#include "gen/spec.hh"

#include <limits>
#include <memory>

#include "design/context.hh"
#include "support/logging.hh"

namespace omnisim::gen
{

namespace
{

/** Deterministic testbench input word (independent of the seed so two
 *  specs with equal structure are bit-identical designs). Mixes signs
 *  and magnitudes without ever overflowing signed arithmetic. */
Value
inputWord(std::size_t i)
{
    const std::uint64_t h = (i + 1) * 0x9e3779b97f4a7c15ULL;
    return static_cast<Value>(h % 2011) - 1005;
}

/** Behavior-visible accumulator perturbation for a non-blocking miss. */
constexpr std::uint64_t kMissMix = 0x9e3779b97f4a7c15ULL;

/** Value written to an out-edge: a mix of accumulator state, iteration
 *  and edge identity, in wrap-safe unsigned arithmetic. */
Value
outWord(std::uint64_t acc, std::uint64_t iter, std::uint64_t edge)
{
    const std::uint64_t m =
        acc * 0x9e3779b1ULL + iter * 0x85ebca77ULL + edge * 0xc2b2ae3dULL;
    // Keep magnitudes modest so downstream accumulation stays readable
    // in divergence reports; sign still varies.
    return static_cast<Value>(m % 100003) - 50001;
}

/** @return edge indices read (written) by process p, in edge order. */
std::vector<std::uint32_t>
edgesWhere(const GenSpec &spec, bool asReader, std::uint32_t p)
{
    std::vector<std::uint32_t> out;
    for (std::uint32_t e = 0; e < spec.edges.size(); ++e) {
        const GenEdge &ed = spec.edges[e];
        if ((asReader ? ed.reader : ed.writer) == p)
            out.push_back(e);
    }
    return out;
}

bool
isForward(const GenEdge &e)
{
    return e.writer < e.reader;
}

} // namespace

void
validateSpec(const GenSpec &spec)
{
    if (spec.procs.empty())
        omnisim_fatal("gen spec: no processes");
    if (spec.procs.size() > kMaxGenProcs)
        omnisim_fatal("gen spec: %zu processes exceeds cap %u",
                      spec.procs.size(), kMaxGenProcs);
    if (spec.edges.size() > kMaxGenEdges)
        omnisim_fatal("gen spec: %zu edges exceeds cap %u",
                      spec.edges.size(), kMaxGenEdges);
    if (spec.items < 1 || spec.items > kMaxGenItems)
        omnisim_fatal("gen spec: items %u outside [1, %u]", spec.items,
                      kMaxGenItems);
    const auto nprocs = static_cast<std::uint32_t>(spec.procs.size());
    for (std::size_t e = 0; e < spec.edges.size(); ++e) {
        const GenEdge &ed = spec.edges[e];
        if (ed.writer >= nprocs || ed.reader >= nprocs)
            omnisim_fatal("gen spec: edge %zu endpoint out of range", e);
        if (ed.writer == ed.reader)
            omnisim_fatal("gen spec: edge %zu is a self-loop", e);
        if (ed.depth < 1 || ed.depth > kMaxGenDepth)
            omnisim_fatal("gen spec: edge %zu depth %u outside [1, %u]",
                          e, ed.depth, kMaxGenDepth);
    }
    for (std::size_t p = 0; p < spec.procs.size(); ++p) {
        const GenProc &pr = spec.procs[p];
        if (pr.ii > kMaxGenPace || pr.paceBase > kMaxGenPace ||
            pr.paceEvery > kMaxGenPace || pr.paceBurst > kMaxGenPace ||
            pr.pacePhase > kMaxGenPace)
            omnisim_fatal("gen spec: proc %zu pace/ii beyond cap %u", p,
                          kMaxGenPace);
        if (pr.stride == 0)
            omnisim_fatal("gen spec: proc %zu stride must be >= 1", p);
    }
    if (spec.extraReads > 0) {
        if (spec.extraProc >= nprocs)
            omnisim_fatal("gen spec: extraProc %u out of range",
                          spec.extraProc);
        if (spec.extraReads > kMaxGenItems)
            omnisim_fatal("gen spec: extraReads %u beyond cap",
                          spec.extraReads);
        bool hasBlockingIn = false;
        for (const GenEdge &ed : spec.edges)
            if (ed.reader == spec.extraProc && isForward(ed) &&
                ed.readMode == PortMode::Blocking)
                hasBlockingIn = true;
        if (!hasBlockingIn)
            omnisim_fatal("gen spec: extraProc %u has no blocking "
                          "forward in-edge to over-read", spec.extraProc);
    }
}

bool
specIsValid(const GenSpec &spec)
{
    try {
        validateSpec(spec);
        return true;
    } catch (const FatalError &) {
        return false;
    }
}

Design
materialize(const GenSpec &spec)
{
    validateSpec(spec);

    auto sp = std::make_shared<const GenSpec>(spec);
    Design d(strf("gen_%llu",
                  static_cast<unsigned long long>(spec.seed)));

    const std::size_t dataSize = spec.items;
    const MemId data = d.addMemory("data", dataSize);
    {
        std::vector<Value> v(dataSize);
        for (std::size_t i = 0; i < dataSize; ++i)
            v[i] = inputWord(i);
        d.setInput(data, v);
    }

    // FIFOs first (edge index == FifoId), then modules capturing ids.
    std::vector<FifoId> fifo(spec.edges.size());
    for (std::uint32_t e = 0; e < spec.edges.size(); ++e) {
        const GenEdge &ed = spec.edges[e];
        const auto mode = [](PortMode m) {
            return m == PortMode::Blocking ? AccessKind::Blocking
                                          : AccessKind::NonBlocking;
        };
        fifo[e] = d.declareFifo(strf("e%u", e), ed.depth,
                                mode(ed.writeMode), mode(ed.readMode));
    }

    std::vector<ModuleId> mods(spec.procs.size());
    for (std::uint32_t p = 0; p < spec.procs.size(); ++p) {
        const std::vector<std::uint32_t> ins = edgesWhere(spec, true, p);
        const std::vector<std::uint32_t> outs =
            edgesWhere(spec, false, p);
        bool anyNb = false;
        bool isSource = true;
        for (const std::uint32_t e : ins) {
            if (spec.edges[e].readMode == PortMode::NonBlocking)
                anyNb = true;
            if (isForward(spec.edges[e]))
                isSource = false;
        }
        for (const std::uint32_t e : outs)
            if (spec.edges[e].writeMode == PortMode::NonBlocking)
                anyNb = true;

        const MemId outMem = d.addMemory(strf("out%u", p), 2);

        auto body = [sp, p, ins, outs, isSource, data, outMem,
                     fifo](Context &ctx) {
            const GenSpec &s = *sp;
            const GenProc &pr = s.procs[p];
            std::uint64_t acc = 0;
            std::uint64_t dropped = 0;

            // Handle one in-edge according to its access mode.
            const auto readEdge = [&](std::uint32_t e) {
                const GenEdge &ed = s.edges[e];
                const FifoId f = fifo[e];
                if (ed.readMode == PortMode::Blocking) {
                    acc += static_cast<std::uint64_t>(ctx.read(f));
                    return;
                }
                if (pr.checksEmpty)
                    acc += ctx.empty(f) ? 1 : 0;
                Value v;
                if (ctx.readNb(f, v))
                    acc += static_cast<std::uint64_t>(v);
                else
                    acc ^= kMissMix + e;
            };

            {
                // Optional pipeline scope around the item loop.
                std::unique_ptr<PipelineScope> pipe;
                if (pr.ii > 0)
                    pipe = std::make_unique<PipelineScope>(ctx, pr.ii);
                for (std::uint32_t i = 0; i < s.items; ++i) {
                    if (pipe)
                        pipe->iter();

                    // 1. forward inputs.
                    for (const std::uint32_t e : ins)
                        if (isForward(s.edges[e]))
                            readEdge(e);
                    if (isSource) {
                        const std::size_t idx =
                            (static_cast<std::size_t>(i) * pr.stride +
                             pr.offset) %
                            s.items;
                        acc += static_cast<std::uint64_t>(
                            ctx.load(data, idx));
                    }

                    // 2. pacing.
                    if (pr.paceBase)
                        ctx.advance(pr.paceBase);
                    if (pr.paceEvery &&
                        i % pr.paceEvery == pr.pacePhase % pr.paceEvery)
                        ctx.advance(pr.paceBurst);

                    // 3. outputs.
                    for (const std::uint32_t e : outs) {
                        const GenEdge &ed = s.edges[e];
                        const FifoId f = fifo[e];
                        const Value v = outWord(acc, i, e);
                        if (ed.writeMode == PortMode::Blocking) {
                            ctx.write(f, v);
                        } else {
                            if (pr.checksFull)
                                acc += ctx.full(f) ? 1 : 0;
                            if (!ctx.writeNb(f, v))
                                ++dropped;
                        }
                    }

                    // 4. response inputs.
                    for (const std::uint32_t e : ins)
                        if (!isForward(s.edges[e]))
                            readEdge(e);
                }
            }

            // Deadlock injection: over-read the conserved token count.
            if (s.extraReads > 0 && s.extraProc == p) {
                for (const std::uint32_t e : ins) {
                    const GenEdge &ed = s.edges[e];
                    if (!isForward(ed) ||
                        ed.readMode != PortMode::Blocking)
                        continue;
                    for (std::uint32_t k = 0; k < s.extraReads; ++k)
                        acc += static_cast<std::uint64_t>(
                            ctx.read(fifo[e]));
                    break;
                }
            }

            ctx.store(outMem, 0, static_cast<Value>(acc));
            ctx.store(outMem, 1, static_cast<Value>(dropped));
        };

        ModuleOptions opts;
        opts.hasInfiniteLoop = false;
        opts.behaviorVariesOnNb = anyNb;
        mods[p] = d.addModule(strf("p%u", p), std::move(body), opts);
    }

    for (std::uint32_t e = 0; e < spec.edges.size(); ++e)
        d.connectFifo(fifo[e], mods[spec.edges[e].writer],
                      mods[spec.edges[e].reader]);
    return d;
}

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

std::string
specToString(const GenSpec &spec)
{
    std::string out = strf(
        "g1;seed=%llu;items=%u;extra=%u@%u",
        static_cast<unsigned long long>(spec.seed), spec.items,
        spec.extraReads, spec.extraProc);
    for (const GenProc &p : spec.procs) {
        const char *chk = p.checksEmpty ? (p.checksFull ? "ef" : "e")
                                        : (p.checksFull ? "f" : "-");
        out += strf(";P ii=%u pace=%u/%u/%u/%u src=%u+%u chk=%s", p.ii,
                    p.paceBase, p.paceEvery, p.paceBurst, p.pacePhase,
                    p.stride, p.offset, chk);
    }
    for (const GenEdge &e : spec.edges) {
        out += strf(";E %u>%u d=%u w=%c r=%c", e.writer, e.reader,
                    e.depth,
                    e.writeMode == PortMode::Blocking ? 'b' : 'n',
                    e.readMode == PortMode::Blocking ? 'b' : 'n');
    }
    return out;
}

namespace
{

/** Strict unsigned field parser for the spec grammar: full u64 range,
 *  overflow is an error (a wrapped value would silently replay a
 *  different design than the spec text claims). */
std::uint64_t
specNum(const std::string &text, std::size_t &pos, const char *what)
{
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9')
        omnisim_fatal("gen spec parse: expected number for %s at "
                      "offset %zu", what, pos);
    constexpr std::uint64_t maxV = ~std::uint64_t{0};
    std::uint64_t v = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
        const auto digit = static_cast<std::uint64_t>(text[pos] - '0');
        if (v > (maxV - digit) / 10)
            omnisim_fatal("gen spec parse: %s overflows", what);
        v = v * 10 + digit;
        ++pos;
    }
    return v;
}

/** specNum for fields stored in 32 bits: out-of-width values are parse
 *  errors, never silent truncations. */
std::uint32_t
specNum32(const std::string &text, std::size_t &pos, const char *what)
{
    const std::uint64_t v = specNum(text, pos, what);
    if (v > std::numeric_limits<std::uint32_t>::max())
        omnisim_fatal("gen spec parse: %s = %llu exceeds 32 bits", what,
                      static_cast<unsigned long long>(v));
    return static_cast<std::uint32_t>(v);
}

void
specExpect(const std::string &text, std::size_t &pos, const char *lit)
{
    const std::size_t n = std::string_view(lit).size();
    if (text.compare(pos, n, lit) != 0)
        omnisim_fatal("gen spec parse: expected '%s' at offset %zu", lit,
                      pos);
    pos += n;
}

} // namespace

GenSpec
parseSpec(const std::string &text)
{
    GenSpec spec;
    std::size_t pos = 0;
    specExpect(text, pos, "g1;seed=");
    spec.seed = specNum(text, pos, "seed");
    specExpect(text, pos, ";items=");
    spec.items = specNum32(text, pos, "items");
    specExpect(text, pos, ";extra=");
    spec.extraReads = specNum32(text, pos, "extraReads");
    specExpect(text, pos, "@");
    spec.extraProc = specNum32(text, pos, "extraProc");

    while (pos < text.size()) {
        specExpect(text, pos, ";");
        if (text.compare(pos, 2, "P ") == 0) {
            pos += 2;
            GenProc p;
            specExpect(text, pos, "ii=");
            p.ii = specNum32(text, pos, "ii");
            specExpect(text, pos, " pace=");
            p.paceBase = specNum32(text, pos, "paceBase");
            specExpect(text, pos, "/");
            p.paceEvery = specNum32(text, pos, "paceEvery");
            specExpect(text, pos, "/");
            p.paceBurst = specNum32(text, pos, "paceBurst");
            specExpect(text, pos, "/");
            p.pacePhase = specNum32(text, pos, "pacePhase");
            specExpect(text, pos, " src=");
            p.stride = specNum32(text, pos, "stride");
            specExpect(text, pos, "+");
            p.offset = specNum32(text, pos, "offset");
            specExpect(text, pos, " chk=");
            if (pos < text.size() && text[pos] == '-') {
                ++pos;
            } else {
                if (pos < text.size() && text[pos] == 'e') {
                    p.checksEmpty = true;
                    ++pos;
                }
                if (pos < text.size() && text[pos] == 'f') {
                    p.checksFull = true;
                    ++pos;
                }
                if (!p.checksEmpty && !p.checksFull)
                    omnisim_fatal("gen spec parse: bad chk flags at "
                                  "offset %zu", pos);
            }
            spec.procs.push_back(p);
        } else if (text.compare(pos, 2, "E ") == 0) {
            pos += 2;
            GenEdge e;
            e.writer = specNum32(text, pos, "writer");
            specExpect(text, pos, ">");
            e.reader = specNum32(text, pos, "reader");
            specExpect(text, pos, " d=");
            e.depth = specNum32(text, pos, "depth");
            specExpect(text, pos, " w=");
            if (pos >= text.size() ||
                (text[pos] != 'b' && text[pos] != 'n'))
                omnisim_fatal("gen spec parse: bad write mode at "
                              "offset %zu", pos);
            e.writeMode = text[pos++] == 'b' ? PortMode::Blocking
                                             : PortMode::NonBlocking;
            specExpect(text, pos, " r=");
            if (pos >= text.size() ||
                (text[pos] != 'b' && text[pos] != 'n'))
                omnisim_fatal("gen spec parse: bad read mode at "
                              "offset %zu", pos);
            e.readMode = text[pos++] == 'b' ? PortMode::Blocking
                                            : PortMode::NonBlocking;
            spec.edges.push_back(e);
        } else {
            omnisim_fatal("gen spec parse: expected 'P ' or 'E ' record "
                          "at offset %zu", pos);
        }
    }

    validateSpec(spec);
    return spec;
}

} // namespace omnisim::gen
