#include "gen/conformance.hh"

#include <memory>

#include "cosim/cosim.hh"
#include "csim/csim.hh"
#include "design/frontend.hh"
#include "io/run_io.hh"
#include "lightningsim/lightningsim.hh"
#include "opt/verify.hh"
#include "serve/json.hh"
#include "support/logging.hh"
#include "support/prng.hh"

namespace omnisim::gen
{

namespace
{

/** First functional difference between two memory maps, or "". */
std::string
memoryDiff(const char *an, const SimResult &a, const char *bn,
           const SimResult &b)
{
    if (a.memories.size() != b.memories.size())
        return strf("memory count %s=%zu %s=%zu", an, a.memories.size(),
                    bn, b.memories.size());
    auto ai = a.memories.begin();
    auto bi = b.memories.begin();
    for (; ai != a.memories.end(); ++ai, ++bi) {
        if (ai->first != bi->first)
            return strf("memory name %s='%s' %s='%s'", an,
                        ai->first.c_str(), bn, bi->first.c_str());
        if (ai->second.size() != bi->second.size())
            return strf("memory '%s' size %s=%zu %s=%zu",
                        ai->first.c_str(), an, ai->second.size(), bn,
                        bi->second.size());
        for (std::size_t i = 0; i < ai->second.size(); ++i) {
            if (ai->second[i] != bi->second[i])
                return strf("memory '%s'[%zu] %s=%lld %s=%lld",
                            ai->first.c_str(), i, an,
                            static_cast<long long>(ai->second[i]), bn,
                            static_cast<long long>(bi->second[i]));
        }
    }
    return "";
}

/** Full-result comparison; empty string when equal. */
std::string
resultDiff(const char *an, const SimResult &a, const char *bn,
           const SimResult &b, bool checkCycles)
{
    if (a.status != b.status)
        return strf("status %s=%s %s=%s", an, simStatusName(a.status),
                    bn, simStatusName(b.status));
    if (a.status != SimStatus::Ok)
        return ""; // equal non-Ok terminal states agree
    if (checkCycles && a.totalCycles != b.totalCycles)
        return strf("cycles %s=%llu %s=%llu", an,
                    static_cast<unsigned long long>(a.totalCycles), bn,
                    static_cast<unsigned long long>(b.totalCycles));
    return memoryDiff(an, a, bn, b);
}

/** Bit-identity of two incremental outcomes; empty string when equal. */
std::string
incrementalDiff(const char *an, const IncrementalOutcome &a,
                const char *bn, const IncrementalOutcome &b)
{
    if (a.reused != b.reused)
        return strf("reused %s=%d (%s) %s=%d (%s)", an, a.reused,
                    a.reason.c_str(), bn, b.reused, b.reason.c_str());
    if (a.reason != b.reason)
        return strf("reason %s='%s' %s='%s'", an, a.reason.c_str(), bn,
                    b.reason.c_str());
    if (!a.reused)
        return "";
    return resultDiff(an, a.result, bn, b.result, /*checkCycles=*/true);
}

/**
 * Serve-protocol echo: serialize a result through the serve JSON layer
 * and parse it back; every field must survive exactly — including
 * memory words and cycle counts above 2^53.
 */
std::string
serveEchoDiff(const SimResult &r)
{
    serve::JsonBuilder b;
    b.key("status").str(simStatusName(r.status));
    b.key("cycles").num(r.totalCycles);
    b.key("deadlock_cycle").num(r.deadlockCycle);
    b.key("message").str(r.message);
    b.key("memories").beginObject();
    for (const auto &[name, vals] : r.memories) {
        b.key(name).beginArray();
        for (const Value v : vals)
            b.num(v);
        b.endArray();
    }
    b.endObject();

    serve::JsonValue v;
    try {
        v = serve::JsonValue::parse(b.finish());
    } catch (const std::exception &e) {
        return strf("response does not re-parse: %s", e.what());
    }
    try {
        if (v.find("status")->str() != simStatusName(r.status))
            return "status did not round-trip";
        if (v.find("cycles")->asU64("cycles", ~0ULL) != r.totalCycles)
            return strf("cycles %llu did not round-trip",
                        static_cast<unsigned long long>(r.totalCycles));
        if (v.find("deadlock_cycle")->asU64("deadlock_cycle", ~0ULL) !=
            r.deadlockCycle)
            return "deadlock_cycle did not round-trip";
        if (v.find("message")->str() != r.message)
            return "message did not round-trip";
        const serve::JsonValue *mems = v.find("memories");
        if (!mems || mems->members().size() != r.memories.size())
            return "memories did not round-trip";
        std::size_t m = 0;
        for (const auto &[name, vals] : r.memories) {
            const auto &[jname, jvals] = mems->members()[m++];
            if (jname != name || jvals.array().size() != vals.size())
                return strf("memory '%s' shape did not round-trip",
                            name.c_str());
            for (std::size_t i = 0; i < vals.size(); ++i) {
                if (jvals.array()[i].asI64("word") != vals[i])
                    return strf("memory '%s'[%zu] = %lld did not "
                                "round-trip", name.c_str(), i,
                                static_cast<long long>(vals[i]));
            }
        }
    } catch (const std::exception &e) {
        return strf("echo extraction failed: %s", e.what());
    }
    return "";
}

} // namespace

std::string
ConformanceReport::summary() const
{
    std::string out;
    for (const Divergence &d : divergences) {
        if (!out.empty())
            out += "; ";
        out += d.oracle + ": " + d.detail;
    }
    return out;
}

ConformanceReport
checkConformance(const GenSpec &spec, const ConformanceOptions &opts)
{
    ConformanceReport rep;
    const auto div = [&](const char *oracle, std::string detail) {
        rep.divergences.push_back({oracle, std::move(detail)});
    };

    // Sticky by design: once any lane of a fuzz sweep asks for the IR
    // verifier, every subsequent compile in the process keeps it.
    if (opts.withVerify)
        opt::setVerifyEnabled(true);

    Design d = materialize(spec);
    const CompiledDesign cd = compile(d);
    rep.designType = designTypeName(cd.classification.type)[0];

    // Ground truth first: clocked co-simulation, RTL cost model off.
    CosimOptions coOpts;
    coOpts.modelRtlCost = false;
    SimResult co;
    try {
        co = simulateCosim(cd, coOpts);
    } catch (const std::exception &e) {
        div("cosim-engine", e.what());
        return rep;
    }
    rep.baseline = co.status;

    OmniSimOptions omOpts;
    omOpts.verifyFinalization = opts.verifyFinalization;
    omOpts.jobs = opts.jobs;
    OmniSim engine(cd, omOpts);
    SimResult om;
    try {
        om = engine.run();
    } catch (const std::exception &e) {
        div("omnisim-engine", e.what());
        return rep;
    }

    if (std::string diff =
            resultDiff("omnisim", om, "cosim", co, /*checkCycles=*/true);
        !diff.empty())
        div("omnisim-vs-cosim", std::move(diff));

    // The compile-pipeline exactness oracle: the same design frozen
    // with the optimization passes off must report the identical result
    // — and, below, answer every depth probe identically.
    std::unique_ptr<OmniSim> o0;
    if (opts.withOptOracle) {
        try {
            OmniSimOptions o0Opts = omOpts;
            o0Opts.optLevel = opt::OptLevel::O0;
            o0 = std::make_unique<OmniSim>(cd, o0Opts);
            const SimResult r0 = o0->run();
            if (std::string diff =
                    resultDiff("O1", om, "O0", r0, /*checkCycles=*/true);
                !diff.empty())
                div("opt-vs-O0", std::move(diff));
            if (r0.status != SimStatus::Ok)
                o0.reset(); // no probes without an Ok O0 baseline
        } catch (const std::exception &e) {
            div("opt-engine", e.what());
            o0.reset();
        }
    }

    const bool typeA = cd.classification.type == DesignType::A;

    if (opts.withCsim && typeA && co.ok()) {
        // Naive C simulation has no timing model, but for Type A
        // designs its sequential infinite-depth execution must land on
        // the same functional outputs.
        try {
            const SimResult cs = simulateCSim(cd);
            if (cs.status != SimStatus::Ok)
                div("csim-vs-cosim",
                    strf("csim status %s on an Ok Type A design",
                         simStatusName(cs.status)));
            else if (std::string diff =
                         memoryDiff("csim", cs, "cosim", co);
                     !diff.empty())
                div("csim-vs-cosim", std::move(diff));
        } catch (const std::exception &e) {
            div("csim-engine", e.what());
        }
    }

    if (opts.withLightning) {
        if (typeA && co.ok()) {
            try {
                const SimResult ls = simulateLightningSim(cd);
                if (std::string diff = resultDiff("lightning", ls,
                                                  "cosim", co,
                                                  /*checkCycles=*/true);
                    !diff.empty())
                    div("lightning-vs-cosim", std::move(diff));
            } catch (const std::exception &e) {
                div("lightning-engine", e.what());
            }
        } else if (!typeA) {
            // The Fig. 3 support matrix: Type B/C must be rejected.
            try {
                const SimResult ls = simulateLightningSim(cd);
                if (ls.status != SimStatus::Unsupported)
                    div("lightning-support",
                        strf("Type %c design not rejected (status %s)",
                             rep.designType, simStatusName(ls.status)));
            } catch (const std::exception &e) {
                div("lightning-engine", e.what());
            }
        }
    }

    if (opts.withServeEcho) {
        if (std::string diff = serveEchoDiff(om); !diff.empty())
            div("serve-echo", std::move(diff));
    }

    // Depth-delta oracles need an Ok baseline and at least one FIFO.
    if (!om.ok() || d.fifos().empty() || opts.resimProbes == 0)
        return rep;

    std::vector<std::uint32_t> base;
    for (const auto &f : d.fifos())
        base.push_back(f.depth);

    // Rehydrate the exported snapshot once; every probe then checks the
    // stored run against the live engine.
    std::unique_ptr<io::StoredRun> stored;
    if (opts.withIo) {
        try {
            RunSnapshot snap;
            if (!engine.exportSnapshot(snap)) {
                div("io-round-trip", "exportSnapshot refused an Ok run");
            } else {
                io::RunFileMeta meta;
                meta.design = d.name();
                meta.engine = "omnisim";
                meta.fingerprint = io::designFingerprint(d);
                const std::string bytes = io::encodeRun(meta, snap);
                io::RunFileMeta meta2;
                RunSnapshot snap2;
                io::decodeRun(bytes, meta2, snap2);
                if (meta2.design != meta.design ||
                    meta2.engine != meta.engine ||
                    meta2.fingerprint != meta.fingerprint)
                    div("io-round-trip", "meta block did not round-trip");
                else
                    stored = io::StoredRun::rehydrate(std::move(snap2),
                                                      std::move(meta2));
            }
        } catch (const std::exception &e) {
            div("io-round-trip", e.what());
        }
    }

    Prng prng(spec.seed ^ 0x0a02bdbf7bb3c0a7ULL);
    std::uint32_t groundTruthBudget = opts.groundTruthProbes;
    for (std::uint32_t probe = 0; probe < opts.resimProbes; ++probe) {
        std::vector<std::uint32_t> depths = base;
        const std::size_t touches = 1 + prng.below(base.size());
        for (std::size_t k = 0; k < touches; ++k)
            depths[prng.below(base.size())] =
                static_cast<std::uint32_t>(1 + prng.below(12));

        IncrementalOutcome inc;
        IncrementalOutcome ref;
        try {
            inc = engine.resimulate(depths);
            ref = engine.resimulateReference(depths);
        } catch (const std::exception &e) {
            div("resim-engine", e.what());
            break;
        }
        ++rep.probesRun;
        if (std::string diff =
                incrementalDiff("compiled", inc, "reference", ref);
            !diff.empty())
            div("resim-vs-reference", std::move(diff));

        if (o0) {
            try {
                const IncrementalOutcome i0 = o0->resimulate(depths);
                if (std::string diff =
                        incrementalDiff("O1", inc, "O0", i0);
                    !diff.empty())
                    div("opt-vs-O0", std::move(diff));
            } catch (const std::exception &e) {
                div("opt-vs-O0", e.what());
            }
        }

        if (stored) {
            try {
                const IncrementalOutcome sr = stored->resimulate(depths);
                if (std::string diff =
                        incrementalDiff("stored", sr, "live", inc);
                    !diff.empty())
                    div("io-round-trip", std::move(diff));
                if (opts.withParallelOracle) {
                    // Same StoredRun, same depths, wider lane budgets:
                    // the level-barrier schedule must land on the
                    // serial answer exactly. (Below the size threshold
                    // the pool is never acquired — the probe then
                    // certifies the fallback, which is the point.)
                    for (const unsigned jobs : {2u, 8u}) {
                        const IncrementalOutcome pr =
                            stored->resimulate(depths, jobs);
                        if (std::string diff = incrementalDiff(
                                "parallel", pr, "serial", sr);
                            !diff.empty())
                            div("parallel-vs-serial",
                                strf("jobs=%u: %s", jobs,
                                     diff.c_str()));
                    }
                }
            } catch (const std::exception &e) {
                div("io-round-trip", e.what());
            }
        }

        if (inc.reused && groundTruthBudget > 0) {
            --groundTruthBudget;
            try {
                Design fresh = materialize(spec);
                for (std::size_t f = 0; f < depths.size(); ++f)
                    fresh.setFifoDepth(static_cast<FifoId>(f),
                                       depths[f]);
                const CompiledDesign fcd = compile(fresh);
                const SimResult fom = simulateOmniSim(fcd, omOpts);
                const SimResult fco = simulateCosim(fcd, coOpts);
                // The engines must agree with each other on the probe
                // configuration unconditionally.
                if (std::string diff =
                        resultDiff("fresh-omnisim", fom, "fresh-cosim",
                                   fco, /*checkCycles=*/true);
                    !diff.empty())
                    div("fresh-engine-agreement", std::move(diff));
                // resimulate() serves the elastic timing fixpoint. A
                // fresh run that had to guess (a blind earliest-query-
                // false, or a deadlock declared while an elastic window
                // was still open) is a self-reported approximation of
                // that fixpoint — the serialized thread model cannot
                // issue a later op before an earlier one resolves — so
                // only guess-free fresh runs are held to bit-equality.
                const bool approximated =
                    fom.stats.forcedBlind > 0 ||
                    fom.stats.deadlockRetroSuspect > 0 ||
                    fco.stats.forcedBlind > 0 ||
                    fco.stats.deadlockRetroSuspect > 0;
                if (!approximated) {
                    if (std::string diff =
                            resultDiff("reused", inc.result, "fresh",
                                       fom, /*checkCycles=*/true);
                        !diff.empty())
                        div("resim-vs-fresh", std::move(diff));
                }
            } catch (const std::exception &e) {
                div("resim-vs-fresh", e.what());
            }
        }
    }
    return rep;
}

} // namespace omnisim::gen
