/**
 * @file
 * Divergence shrinking: given a failing GenSpec and a predicate that
 * re-checks the failure, greedily apply structure-reducing
 * transformations (drop processes, drop edges, halve item counts,
 * shrink depths, strip pacing/pipelining/probes, remove the deadlock
 * injection) until no single transformation keeps the failure alive.
 * The result is the minimal reproducer the CLI prints and regression
 * tests embed.
 */

#ifndef OMNISIM_GEN_SHRINK_HH
#define OMNISIM_GEN_SHRINK_HH

#include <cstddef>
#include <functional>

#include "gen/spec.hh"

namespace omnisim::gen
{

/** @return true when the candidate spec still exhibits the failure. */
using FailPredicate = std::function<bool(const GenSpec &)>;

/** Shrink outcome. */
struct ShrinkResult
{
    GenSpec spec;             ///< The minimized (still-failing) spec.
    std::size_t attempts = 0; ///< Candidate evaluations performed.
    std::size_t accepted = 0; ///< Transformations that kept the failure.
};

/**
 * Greedy fixpoint shrink. `fails(spec)` must be true on entry (checked);
 * every accepted candidate still satisfies it, so the returned spec is
 * guaranteed to reproduce the divergence. Candidate evaluation stops
 * after maxAttempts predicate calls.
 */
ShrinkResult shrinkSpec(const GenSpec &spec, const FailPredicate &fails,
                        std::size_t maxAttempts = 800);

} // namespace omnisim::gen

#endif // OMNISIM_GEN_SHRINK_HH
