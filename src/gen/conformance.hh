/**
 * @file
 * The differential conformance driver: run one generated design through
 * every oracle pair the system has and report each divergence.
 *
 * Oracle matrix (gated by design type and baseline status):
 *
 *   omnisim vs cosim      — all types; status always, cycles + memories
 *                           when Ok (cosim is the RTL ground truth).
 *   csim vs cosim         — Type A with an Ok baseline; functional
 *                           memories only (csim has no timing model).
 *   lightningsim vs cosim — Type A with an Ok baseline; status, cycles
 *                           and memories. Type B/C must be rejected as
 *                           Unsupported (the Fig. 3 support matrix).
 *   resimulate vs resimulateReference
 *                         — random depth deltas after an Ok omnisim
 *                           run; reuse decision, divergence reason and
 *                           (when reused) cycles/memories must be
 *                           bit-identical, plus fresh-engine ground
 *                           truth for a bounded number of reused probes.
 *   opt vs -O0            — a second omnisim engine frozen with the
 *                           optimization passes disabled; the baseline
 *                           result and every depth probe must answer
 *                           bit-identically (reuse decision, divergence
 *                           reason, cycles, memories — the delta-path
 *                           flag may differ, the answers may not).
 *   run_io round trip     — encodeRun -> decodeRun -> StoredRun
 *                           rehydration must echo the meta block and
 *                           serve the same depth probes bit-identically
 *                           to the originating engine.
 *   parallel vs serial    — the rehydrated run re-answers every probe
 *                           at jobs=2 and jobs=8; the partitioned
 *                           level-barrier schedule must reproduce the
 *                           serial answer bit-for-bit (reuse decision,
 *                           reason, cycles, memories) at every lane
 *                           count. Small designs exercise the
 *                           threshold fallback through the same call.
 *   serve-protocol echo   — the result serialized through the serve
 *                           JSON layer and parsed back must be exact
 *                           (64-bit cycle counts and memory words
 *                           included).
 */

#ifndef OMNISIM_GEN_CONFORMANCE_HH
#define OMNISIM_GEN_CONFORMANCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/omnisim.hh"
#include "gen/spec.hh"

namespace omnisim::gen
{

/** Conformance run configuration. */
struct ConformanceOptions
{
    /** Random depth vectors probed through the resimulate and io
     *  oracles. */
    std::uint32_t resimProbes = 4;

    /** Reused probes additionally checked against fresh full engine
     *  runs (omnisim and cosim) at the probed depths. */
    std::uint32_t groundTruthProbes = 1;

    bool withCsim = true;
    bool withLightning = true;
    bool withIo = true;
    bool withServeEcho = true;

    /** Freeze a second engine at -O0 and require bit-identical answers
     *  from every probe (the compile-pipeline exactness oracle). */
    bool withOptOracle = true;

    /** Re-answer every stored-run probe at jobs=2 and jobs=8 and require
     *  bit-identity with the serial answer (needs withIo). */
    bool withParallelOracle = true;

    /** Relaxation lanes of the primary engine (OmniSimOptions::jobs):
     *  its freeze solve and every live probe run at this budget, so a
     *  fuzz sweep with --jobs exercises the parallel paths against
     *  every other oracle. Answers are bit-identical at any value. */
    unsigned jobs = 1;

    /** Cross-check omnisim finalization against live commit cycles. */
    bool verifyFinalization = true;

    /** Force the IR verifier on for every compile this run performs:
     *  pass bugs then surface as engine divergences whose detail
     *  carries the bracketed [invariant-id]. */
    bool withVerify = false;
};

/** One observed disagreement between an oracle pair. */
struct Divergence
{
    std::string oracle; ///< e.g. "omnisim-vs-cosim", "io-round-trip".
    std::string detail; ///< First observed difference, one line.
};

/** Outcome of one conformance run. */
struct ConformanceReport
{
    char designType = 'A';            ///< 'A' / 'B' / 'C'.
    SimStatus baseline = SimStatus::Ok; ///< Cosim ground-truth status.
    std::uint32_t probesRun = 0;      ///< Depth probes exercised.
    std::vector<Divergence> divergences;

    bool clean() const { return divergences.empty(); }

    /** All divergences as "oracle: detail" lines. */
    std::string summary() const;
};

/**
 * Run the full oracle matrix over one spec. Never throws for engine
 * disagreements (they become divergences); an engine exception is
 * itself reported as a divergence of the oracle that tripped it.
 */
ConformanceReport checkConformance(const GenSpec &spec,
                                   const ConformanceOptions &opts = {});

} // namespace omnisim::gen

#endif // OMNISIM_GEN_CONFORMANCE_HH
