#include "gen/shrink.hh"

#include <algorithm>

#include "support/logging.hh"

namespace omnisim::gen
{

namespace
{

/** Drop process p, its edges, and reindex everything above it. */
GenSpec
withoutProc(const GenSpec &spec, std::uint32_t p)
{
    GenSpec out = spec;
    out.procs.erase(out.procs.begin() + p);
    std::vector<GenEdge> kept;
    for (const GenEdge &e : out.edges) {
        if (e.writer == p || e.reader == p)
            continue;
        GenEdge ne = e;
        if (ne.writer > p)
            --ne.writer;
        if (ne.reader > p)
            --ne.reader;
        kept.push_back(ne);
    }
    out.edges = std::move(kept);
    if (out.extraReads > 0) {
        if (out.extraProc == p) {
            out.extraReads = 0;
            out.extraProc = 0;
        } else if (out.extraProc > p) {
            --out.extraProc;
        }
    }
    return out;
}

} // namespace

ShrinkResult
shrinkSpec(const GenSpec &spec, const FailPredicate &fails,
           std::size_t maxAttempts)
{
    omnisim_assert(fails(spec),
                   "shrinkSpec requires a failing spec on entry");

    ShrinkResult res;
    res.spec = spec;

    // Try one candidate: accept when it is valid and still failing.
    const auto attempt = [&](const GenSpec &cand) {
        if (res.attempts >= maxAttempts)
            return false;
        if (cand == res.spec || !specIsValid(cand))
            return false;
        ++res.attempts;
        if (!fails(cand))
            return false;
        res.spec = cand;
        ++res.accepted;
        return true;
    };

    bool progressed = true;
    while (progressed && res.attempts < maxAttempts) {
        progressed = false;

        // 1. Whole processes, largest structural cut first.
        for (std::uint32_t p = 0;
             p < res.spec.procs.size() && res.spec.procs.size() > 1;) {
            if (attempt(withoutProc(res.spec, p)))
                progressed = true; // same index now names the next proc
            else
                ++p;
        }

        // 2. Individual edges.
        for (std::size_t e = 0; e < res.spec.edges.size();) {
            GenSpec cand = res.spec;
            cand.edges.erase(cand.edges.begin() + e);
            if (attempt(cand))
                progressed = true;
            else
                ++e;
        }

        // 3. Item count: halve aggressively, then creep down.
        while (res.spec.items > 1) {
            GenSpec cand = res.spec;
            cand.items = std::max(1u, cand.items / 2);
            if (!attempt(cand))
                break;
            progressed = true;
        }
        if (res.spec.items > 1) {
            GenSpec cand = res.spec;
            --cand.items;
            if (attempt(cand))
                progressed = true;
        }

        // 4. FIFO depths toward 1.
        for (std::size_t e = 0; e < res.spec.edges.size(); ++e) {
            while (res.spec.edges[e].depth > 1) {
                GenSpec cand = res.spec;
                cand.edges[e].depth =
                    std::max(1u, cand.edges[e].depth / 2);
                if (!attempt(cand))
                    break;
                progressed = true;
            }
        }

        // 5. Per-process simplifications: strip pacing, pipelining,
        //    probes and addressing down to the defaults.
        for (std::size_t p = 0; p < res.spec.procs.size(); ++p) {
            const GenProc plain; // all defaults
            GenSpec cand = res.spec;
            cand.procs[p] = plain;
            if (attempt(cand)) {
                progressed = true;
                continue;
            }
            // Field-by-field when the full reset loses the failure.
            const auto tryField = [&](auto mutate) {
                GenSpec c = res.spec;
                mutate(c.procs[p]);
                if (attempt(c))
                    progressed = true;
            };
            tryField([](GenProc &pr) {
                pr.paceBase = 0;
                pr.paceEvery = 0;
                pr.paceBurst = 0;
                pr.pacePhase = 0;
            });
            tryField([](GenProc &pr) { pr.ii = 0; });
            tryField([](GenProc &pr) {
                pr.checksEmpty = false;
                pr.checksFull = false;
            });
            tryField([](GenProc &pr) {
                pr.stride = 1;
                pr.offset = 0;
            });
        }

        // 6. Deadlock injection removal / reduction.
        if (res.spec.extraReads > 0) {
            GenSpec cand = res.spec;
            cand.extraReads = 0;
            cand.extraProc = 0;
            if (attempt(cand)) {
                progressed = true;
            } else if (res.spec.extraReads > 1) {
                cand = res.spec;
                cand.extraReads = 1;
                if (attempt(cand))
                    progressed = true;
            }
        }
    }
    return res;
}

} // namespace omnisim::gen
