#include "gen/generate.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/prng.hh"

namespace omnisim::gen
{

namespace
{

/** Pick the two access modes of one edge per the config mix. */
void
pickModes(Prng &prng, const GenConfig &cfg, GenEdge &e)
{
    if (prng.chance(cfg.pNonBlocking)) {
        e.writeMode = PortMode::NonBlocking;
        e.readMode = PortMode::NonBlocking;
    } else if (prng.chance(cfg.pMixedEnds)) {
        if (prng.chance(0.5)) {
            e.writeMode = PortMode::NonBlocking;
            e.readMode = PortMode::Blocking;
        } else {
            e.writeMode = PortMode::Blocking;
            e.readMode = PortMode::NonBlocking;
        }
    } else {
        e.writeMode = PortMode::Blocking;
        e.readMode = PortMode::Blocking;
    }
}

} // namespace

GenSpec
generateSpec(std::uint64_t seed, const GenConfig &cfg)
{
    // Decorrelate nearby seeds: the raw counter seeds users pass (1, 2,
    // 3, ...) should produce structurally unrelated designs.
    Prng prng(seed * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);

    GenSpec spec;
    spec.seed = seed;
    const std::uint32_t lo = std::max(2u, cfg.minProcs);
    const std::uint32_t span =
        cfg.maxProcs > lo ? cfg.maxProcs - lo + 1 : 1u;
    const std::uint32_t nprocs =
        static_cast<std::uint32_t>(lo + prng.below(span));
    spec.items = static_cast<std::uint32_t>(
        4 + prng.below(std::max(1u, cfg.maxItems - 3)));

    spec.procs.resize(nprocs);
    for (GenProc &p : spec.procs) {
        if (prng.chance(cfg.pPipeline))
            p.ii = static_cast<std::uint32_t>(1 + prng.below(3));
        p.paceBase = static_cast<std::uint32_t>(prng.below(3));
        if (prng.chance(cfg.pBurst)) {
            p.paceEvery = static_cast<std::uint32_t>(2 + prng.below(15));
            p.paceBurst = static_cast<std::uint32_t>(2 + prng.below(40));
            p.pacePhase =
                static_cast<std::uint32_t>(prng.below(p.paceEvery));
        }
        p.stride = static_cast<std::uint32_t>(1 + prng.below(4));
        p.offset = static_cast<std::uint32_t>(prng.below(8));
        p.checksEmpty = prng.chance(0.4);
        p.checksFull = prng.chance(0.4);
    }

    const auto addEdge = [&](std::uint32_t w, std::uint32_t r) {
        GenEdge e;
        e.writer = w;
        e.reader = r;
        e.depth = static_cast<std::uint32_t>(
            1 + prng.below(std::max(1u, cfg.maxDepth)));
        pickModes(prng, cfg, e);
        spec.edges.push_back(e);
    };

    // Connecting spine: every process past the first gets one forward
    // in-edge from a random earlier process (random fan-out trees —
    // chains, stars, and everything between).
    for (std::uint32_t p = 1; p < nprocs; ++p)
        addEdge(static_cast<std::uint32_t>(prng.below(p)), p);

    // Extra forward edges: reconvergent paths, shared consumers and
    // parallel FIFO pairs between the same process pair.
    const std::uint64_t extra = prng.below(cfg.maxExtraEdges + 1);
    for (std::uint64_t k = 0; k < extra && nprocs >= 2; ++k) {
        const auto r = static_cast<std::uint32_t>(
            1 + prng.below(nprocs - 1));
        const auto w = static_cast<std::uint32_t>(prng.below(r));
        addEdge(w, r);
    }

    // Request/response back-edges (the fig4_ex3 shape): a later-rank
    // process answers an earlier one, making the module graph cyclic.
    // The interpreter reads them at the end of the requester's
    // iteration, which keeps fully-blocking cycles deadlock-free.
    for (std::uint32_t w = 1; w < nprocs; ++w) {
        if (!prng.chance(cfg.pResponse))
            continue;
        const auto r = static_cast<std::uint32_t>(prng.below(w));
        addEdge(w, r);
    }

    // Deadlock injection: one process over-reads a blocking forward
    // in-edge past the conserved token count.
    if (prng.chance(cfg.pDeadlockInjection)) {
        std::vector<std::uint32_t> candidates;
        for (const GenEdge &e : spec.edges)
            if (e.writer < e.reader && e.readMode == PortMode::Blocking)
                candidates.push_back(e.reader);
        if (!candidates.empty()) {
            spec.extraProc =
                candidates[prng.below(candidates.size())];
            spec.extraReads =
                static_cast<std::uint32_t>(1 + prng.below(3));
        }
    }

    validateSpec(spec);
    return spec;
}

GenConfig
largeGenConfig()
{
    GenConfig cfg;
    cfg.minProcs = 512;
    cfg.maxProcs = 2048;
    // One engine thread per process: keep per-process work light so a
    // large seed still simulates in seconds.
    cfg.maxItems = 24;
    cfg.maxDepth = 8;
    cfg.maxExtraEdges = 1024;
    // No mixed-end edges or deadlock injection: over thousands of
    // edges even a tiny per-edge deadlock probability makes a Deadlock
    // baseline near-certain, and a deadlocked baseline never reaches
    // the depth-probe oracles this regime exists to stress. Fully
    // non-blocking edges never block, so they stay in the mix.
    cfg.pNonBlocking = 0.15;
    cfg.pMixedEnds = 0.0;
    cfg.pResponse = 0.08;
    cfg.pBurst = 0.35;
    cfg.pDeadlockInjection = 0.0;
    return cfg;
}

} // namespace omnisim::gen
