/**
 * @file
 * Seeded random design generation: one u64 seed deterministically
 * expands (via the shared xoshiro Prng) into a GenSpec — a random
 * process DAG with parameterized FIFO counts and depths, blocking /
 * non-blocking access mixes, bursty phase-shifted producers,
 * reconvergent and shared-consumer topologies, request/response cycles
 * and occasional deliberate deadlocks. The same seed yields the same
 * design on every platform, so a failing seed IS the bug report.
 */

#ifndef OMNISIM_GEN_GENERATE_HH
#define OMNISIM_GEN_GENERATE_HH

#include <cstdint>

#include "gen/spec.hh"

namespace omnisim::gen
{

/** Shape and probability knobs for the generator. */
struct GenConfig
{
    /** Process count range [minProcs, maxProcs]. */
    std::uint32_t minProcs = 2;
    std::uint32_t maxProcs = 7;

    /** Items (tokens per blocking edge) range [4, maxItems]. */
    std::uint32_t maxItems = 48;

    /** Edge depth range [1, maxDepth]. */
    std::uint32_t maxDepth = 8;

    /** Extra forward edges beyond the connecting spine (reconvergence,
     *  shared consumers, parallel FIFO pairs), at most this many. */
    std::uint32_t maxExtraEdges = 6;

    /** Probability that a given edge is fully non-blocking (nn). */
    double pNonBlocking = 0.30;

    /** Probability that an edge mixes one blocking and one non-blocking
     *  end — the combination that legitimately deadlocks when the
     *  non-blocking side under-produces/under-consumes. */
    double pMixedEnds = 0.06;

    /** Probability of each candidate request/response back-edge. */
    double pResponse = 0.25;

    /** Per-process probability of a pipeline scope. */
    double pPipeline = 0.55;

    /** Per-process probability of a bursty advance pattern. */
    double pBurst = 0.45;

    /** Probability of injecting a guaranteed deadlock (extra blocking
     *  reads beyond the conserved token count). */
    double pDeadlockInjection = 0.04;
};

/** Expand a seed into a validated spec. Deterministic. */
GenSpec generateSpec(std::uint64_t seed, const GenConfig &cfg = {});

/**
 * The large regime (`omnisim_cli fuzz --large`, bench/parallel_relax):
 * hundreds-to-thousands of processes so the compiled graph clears
 * CompiledRun::kParallelMinNodes and the partition pass produces wide
 * levels worth fanning out. Probabilities are tamer than the default
 * mix — fewer non-blocking ends and near-zero deadlock injection — so
 * most seeds yield a successful baseline run to relax against; the
 * default config remains the semantic-coverage workhorse.
 */
GenConfig largeGenConfig();

} // namespace omnisim::gen

#endif // OMNISIM_GEN_GENERATE_HH
