/**
 * @file
 * Design-space exploration over joint FIFO depth assignments (§7.2 of
 * the paper, the LightningSimV2/FLASH FIFO-sizing workflow). The
 * mechanism — constraint-checked incremental re-simulation — lives in
 * OmniSim::resimulate(); this subsystem supplies the policy layer:
 *
 *  - a DseSpace describing which FIFOs to vary and over which depth
 *    candidates (geometric ladders for broad searches, dense linear
 *    ranges for sweeps);
 *  - an EvalCache that memoizes every visited depth vector and serves
 *    each new one by re-checking the recorded constraints of a pool of
 *    previously completed full runs — each frozen into a CompiledRun,
 *    so a probe is a delta relaxation over the affected cone rather
 *    than a graph rebuild — falling back to a full OmniSim run only on
 *    divergence (Table 6's fallback row), the property that makes a
 *    thousand-configuration search cost milliseconds;
 *  - search strategies (src/dse/strategies.hh) that drive the cache,
 *    fanning independent candidate evaluations across the src/batch/
 *    worker pool while remaining bit-identical to a serial search;
 *  - a DseReport carrying the Pareto frontier of (total buffer cost,
 *    latency), the min-latency and knee-point configurations, and the
 *    incremental-hit statistics the §7.2 evaluation reports.
 */

#ifndef OMNISIM_DSE_DSE_HH
#define OMNISIM_DSE_DSE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/omnisim.hh"
#include "design/frontend.hh"
#include "obs/metrics.hh"
#include "runtime/result.hh"
#include "support/sync.hh"

namespace omnisim::io
{
class RunStore; // io/run_store.hh
}

namespace omnisim::dse
{

/** One depth per FIFO of the design, indexed by FifoId. */
using DepthVector = std::vector<std::uint32_t>;

/** How an evaluation was obtained. */
enum class EvalMethod : std::uint8_t
{
    FullRun,     ///< Fresh OmniSim run (constraints diverged or empty pool).
    Incremental, ///< Served by resimulate() against a pooled prior run.
};

/** @return "full" or "incremental". */
const char *evalMethodName(EvalMethod m);

/** The outcome of simulating one depth configuration. */
struct Evaluation
{
    DepthVector depths;

    SimStatus status = SimStatus::Ok;

    /** Total latency in cycles; valid when status == Ok. */
    Cycles latency = 0;

    /** Total buffer cost: the sum of every FIFO depth in the design,
     *  a BRAM-words proxy (each slot stores one value). */
    std::uint64_t cost = 0;

    EvalMethod method = EvalMethod::FullRun;

    /** For Incremental evaluations: true when the CompiledRun delta
     *  worklist alone decided the attempt (no full relaxation pass). */
    bool viaDelta = false;

    /** True when this evaluate() call was answered from the memo table
     *  (method then describes how the configuration was *originally*
     *  computed). Never set on entries inside the cache — only on the
     *  copies a repeat call returns. */
    bool fromMemo = false;

    /** Failure explanation when the engine threw (status == Crash). */
    std::string message;

    bool ok() const { return status == SimStatus::Ok; }
};

/** One explored axis: a named FIFO and its candidate depth range. */
struct FifoRange
{
    std::string fifo;
    std::uint32_t lo = 1;
    std::uint32_t hi = 16;

    /**
     * Candidate spacing. Geometric (default) visits lo, 2·lo, 4·lo, ...
     * plus hi — the right shape for order-of-magnitude sizing searches.
     * Linear visits every integer in [lo, hi] — the right shape for
     * exhaustive sweeps.
     */
    bool geometric = true;
};

/** Which FIFOs to explore. Empty == every FIFO with default FifoRange. */
struct DseSpace
{
    std::vector<FifoRange> fifos;
};

/**
 * A DseSpace resolved against a concrete design: explored axes mapped
 * to FifoIds with concrete ascending candidate lists, plus the design's
 * registered depth for every unexplored FIFO.
 */
struct ResolvedSpace
{
    /** FifoId of each explored axis, in the order the ranges were
     *  given (reports and sweep tables preserve this order). */
    std::vector<std::size_t> axes;

    /** FIFO name of each axis (for reports). */
    std::vector<std::string> names;

    /** Ascending candidate depths per axis; never empty. */
    std::vector<std::vector<std::uint32_t>> candidates;

    /** Registered depth of every FIFO (the value unexplored FIFOs keep). */
    DepthVector base;

    /** @return base with every axis at its deepest candidate. */
    DepthVector maxConfig() const;

    /** @return base with the given candidate index per axis. */
    DepthVector configOf(const std::vector<std::size_t> &idx) const;

    /** @return the cross-product size, saturating at SIZE_MAX. */
    std::size_t gridSize() const;
};

/**
 * Resolve a space against a design.
 * @throws FatalError on unknown FIFO names, empty ranges, or lo < 1.
 */
ResolvedSpace resolveSpace(const Design &d, const DseSpace &space);

/**
 * Memoizing evaluator for depth configurations. Thread-safe: strategy
 * code may call evaluate() from any number of batch workers
 * concurrently. Every configuration is first attempted incrementally
 * against a bounded pool of engines holding completed full runs
 * (resimulate() only reads recorded run state, so pool members serve
 * many workers at once); a configuration all pool members refuse gets a
 * fresh full run, which then joins the pool and seeds future reuse.
 *
 * Results are deterministic per depth vector — an incremental answer
 * equals the full-run answer whenever reuse is legal, which is exactly
 * the §7.2 constraint guarantee — so searches are bit-identical
 * regardless of worker count or pool contents.
 */
class EvalCache
{
  public:
    /**
     * @param builder rebuilds the design from scratch (depth overrides
     *        are applied on top for fallback full runs).
     * @param opts    engine options for fallback full runs.
     * @param maxPool cap on pooled full-run engines (each holds a
     *        complete simulation graph; bounded to bound memory).
     */
    explicit EvalCache(std::function<Design()> builder,
                       OmniSimOptions opts = {}, std::size_t maxPool = 4);
    ~EvalCache();

    EvalCache(const EvalCache &) = delete;
    EvalCache &operator=(const EvalCache &) = delete;

    /**
     * Attach a persistent run store (io/run_store.hh). Warm start: the
     * store's matching runs for (designName, engineName) are rehydrated
     * into the reuse pool immediately — so the very first evaluate() of
     * this process can be served at §7.2 incremental cost by a run some
     * earlier process paid for. From then on every successful full run
     * is published back to the store. The store must outlive the cache.
     *
     * Call before the first evaluate(); stale-design protection is by
     * fingerprint (runs recorded against a structurally different
     * design are skipped, never trusted).
     */
    void attachStore(io::RunStore *store, std::string designName,
                     std::string engineName = "omnisim")
        OMNISIM_EXCLUDES(mu_);

    /**
     * Re-scan the attached store for runs published since attachStore()
     * (e.g. by a concurrent process) and adopt them into the reuse pool
     * up to the pool cap. No-op without an attached store.
     * @return runs newly adopted.
     */
    std::size_t refreshFromStore() OMNISIM_EXCLUDES(mu_);

    /** @return pool entries rehydrated from the attached store. */
    std::size_t storedWarmStarts() const OMNISIM_EXCLUDES(mu_);

    /**
     * Evaluate one configuration, memoized.
     * @param depths one depth (>= 1) per design FIFO.
     * @param allowIncremental when false, skip the §7.2 reuse-pool
     *        probe and pay for a fresh full engine run (unless the
     *        configuration is already memoized) — the cold path the
     *        serve layer's `simulate` op and benches use as a baseline.
     * @throws FatalError on a malformed depth vector.
     */
    Evaluation evaluate(const DepthVector &depths,
                        bool allowIncremental = true)
        OMNISIM_EXCLUDES(mu_);

    /** @return true when the configuration has already been evaluated. */
    bool contains(const DepthVector &depths) const OMNISIM_EXCLUDES(mu_);

    /** @return unique configurations evaluated so far. */
    std::size_t size() const OMNISIM_EXCLUDES(mu_);

    /** @return evaluations served by resimulate() reuse. */
    std::size_t incrementalHits() const OMNISIM_EXCLUDES(mu_);

    /** @return incremental hits decided entirely by the CompiledRun
     *  delta worklist (no full relaxation pass) — the affected-cone
     *  fast path that makes pooled runs cheap to probe. */
    std::size_t deltaHits() const OMNISIM_EXCLUDES(mu_);

    /** @return evaluations that needed a fresh full run. */
    std::size_t fullRuns() const OMNISIM_EXCLUDES(mu_);

    /** @return repeat evaluate() calls answered from the memo table. */
    std::size_t cacheHits() const OMNISIM_EXCLUDES(mu_);

    /** @return a snapshot of every unique evaluation (unspecified order). */
    std::vector<Evaluation> evaluations() const OMNISIM_EXCLUDES(mu_);

    /**
     * Tag this cache's evaluations with a telemetry label: latencies
     * land in the `dse.eval_us.<label>` histogram in addition to the
     * global `dse.eval_us` one. explore() labels by strategy name so
     * per-strategy evaluation cost can be compared on a live service.
     */
    void setMetricsLabel(const std::string &label);

    /** @return compile-pipeline statistics accumulated over every
     *  pooled completed run — live engines and store-rehydrated runs
     *  alike (both freeze through the same pass pipeline). Empty when
     *  the pool is empty. */
    opt::CompileStats compileStats() const OMNISIM_EXCLUDES(mu_);

  private:
    struct PoolEntry;

    Evaluation computeFresh(const DepthVector &depths,
                            bool allowIncremental) OMNISIM_EXCLUDES(mu_);

    std::function<Design()> builder_;
    OmniSimOptions opts_;
    std::size_t maxPool_;
    std::size_t fifoCount_;

    // Persistent store attachment (null == in-process only). Written
    // once by attachStore() before the cache sees concurrent traffic
    // (the documented contract: "call before the first evaluate()"),
    // then read lock-free on the evaluation paths — so deliberately
    // not GUARDED_BY even though attachStore also holds mu_ for its
    // already-attached assertion.
    io::RunStore *store_ = nullptr;
    std::string storeDesign_;
    std::string storeEngine_;
    std::uint64_t storeFingerprint_ = 0;

    mutable sync::Mutex mu_;
    std::map<DepthVector, Evaluation> done_ OMNISIM_GUARDED_BY(mu_);
    std::vector<std::unique_ptr<PoolEntry>> pool_ OMNISIM_GUARDED_BY(mu_);
    std::size_t incrementalHits_ OMNISIM_GUARDED_BY(mu_) = 0;
    std::size_t deltaHits_ OMNISIM_GUARDED_BY(mu_) = 0;
    std::size_t fullRuns_ OMNISIM_GUARDED_BY(mu_) = 0;
    std::size_t cacheHits_ OMNISIM_GUARDED_BY(mu_) = 0;
    std::size_t storedWarmStarts_ OMNISIM_GUARDED_BY(mu_) = 0;

    // Optional per-label latency histogram (see setMetricsLabel);
    // registry-owned, stable for the process lifetime.
    std::atomic<obs::Histogram *> labelHist_{nullptr};
};

/** Exploration configuration. */
struct DseOptions
{
    /** Strategy name: grid, binary, greedy, or anneal. */
    std::string strategy = "grid";

    /** Maximum unique configurations to evaluate (full + incremental). */
    std::size_t budget = 512;

    /** Worker threads; 0 selects hardware_concurrency. */
    unsigned jobs = 0;

    /** PRNG seed for randomized strategies (simulated annealing). */
    std::uint64_t seed = 1;

    /** Explored FIFOs; empty == all FIFOs, default ranges. */
    DseSpace space;

    /** Engine options for fallback full runs. */
    OmniSimOptions engine;

    /**
     * Optional persistent run store (non-owning; must outlive the
     * exploration). When set, the EvalCache warm-starts from runs
     * earlier processes published for this design and publishes its own
     * full runs back — repeated explorations of one design across
     * processes converge to all-incremental serving.
     */
    io::RunStore *store = nullptr;

    /** Store key; defaults to the explore() design label. */
    std::string storeDesign;
};

/** Everything a search produced. */
struct DseReport
{
    std::string design;
    std::string strategy;

    /** Name of every design FIFO, indexed by FifoId. */
    std::vector<std::string> fifoNames;

    /** FifoId of each explored axis. */
    std::vector<std::size_t> axes;

    /** Every unique evaluation, sorted by (cost, latency, depths). */
    std::vector<Evaluation> evaluations;

    /**
     * Pareto frontier over successful evaluations: ascending cost,
     * strictly descending latency — no point is dominated.
     */
    std::vector<Evaluation> frontier;

    /** True when at least one configuration simulated to completion. */
    bool anyOk = false;

    /** Min-latency configuration (lowest cost among ties); valid when
     *  anyOk. */
    Evaluation minLatency;

    /** Knee of the frontier: the point nearest (after normalizing both
     *  axes to [0,1]) the utopia point (min cost, min latency); valid
     *  when anyOk. */
    Evaluation knee;

    std::size_t fullRuns = 0;
    std::size_t incrementalHits = 0;
    std::size_t deltaHits = 0;
    std::size_t cacheHits = 0;

    /** Pool entries rehydrated from a persistent RunStore (0 when no
     *  store was attached or the store had nothing usable). */
    std::size_t storedWarmStarts = 0;

    unsigned jobs = 1;
    double wallSeconds = 0.0;

    /** @return fraction of unique evaluations served incrementally. */
    double hitRate() const;

    /** @return unique configurations per wall-clock second. */
    double configsPerSecond() const;
};

/**
 * Run one exploration: resolve the space, warm the cache with a full
 * run of the deepest configuration, execute the strategy, and distill
 * the report.
 *
 * @param designLabel report label for the design.
 * @param builder     rebuilds the design from scratch.
 * @throws FatalError on unknown strategy names or malformed spaces.
 */
DseReport explore(const std::string &designLabel,
                  const std::function<Design()> &builder,
                  const DseOptions &opts);

/** explore() over a registered design (designs::findDesign). */
DseReport exploreRegistered(const std::string &designName,
                            const DseOptions &opts);

} // namespace omnisim::dse

#endif // OMNISIM_DSE_DSE_HH
