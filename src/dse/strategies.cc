#include "dse/strategies.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "support/logging.hh"
#include "support/prng.hh"

namespace omnisim::dse
{

// ---------------------------------------------------------------------------
// SearchContext.
// ---------------------------------------------------------------------------

SearchContext::SearchContext(const ResolvedSpace &space, EvalCache &cache,
                             const batch::BatchRunner &pool,
                             std::size_t budget, std::uint64_t seed)
    : space_(space), cache_(cache), pool_(pool), budget_(budget),
      seed_(seed)
{}

std::size_t
SearchContext::remaining() const
{
    const std::size_t used = cache_.size();
    return used >= budget_ ? 0 : budget_ - used;
}

std::optional<Evaluation>
SearchContext::evaluate(const DepthVector &depths)
{
    if (!cache_.contains(depths) && exhausted())
        return std::nullopt;
    return cache_.evaluate(depths);
}

std::vector<std::optional<Evaluation>>
SearchContext::evaluateMany(const std::vector<DepthVector> &proposals)
{
    std::vector<std::optional<Evaluation>> out(proposals.size());

    // Serial admission pass: decide — deterministically, before any
    // parallel work — which proposals run. Cached configurations are
    // free; unseen ones are admitted first-come until the budget is
    // spent; duplicates of an admitted proposal are filled afterwards.
    std::vector<std::size_t> run;
    std::map<DepthVector, std::size_t> admitted;
    std::size_t newAllowed = remaining();
    for (std::size_t i = 0; i < proposals.size(); ++i) {
        if (cache_.contains(proposals[i])) {
            run.push_back(i);
        } else if (const auto it = admitted.find(proposals[i]);
                   it != admitted.end()) {
            // duplicate of an admitted proposal: filled below
        } else if (newAllowed > 0) {
            --newAllowed;
            admitted.emplace(proposals[i], i);
            run.push_back(i);
        }
    }

    pool_.forEachIndex(run.size(), [&](std::size_t k) {
        out[run[k]] = cache_.evaluate(proposals[run[k]]);
    });

    for (std::size_t i = 0; i < proposals.size(); ++i) {
        if (!out[i].has_value()) {
            if (const auto it = admitted.find(proposals[i]);
                it != admitted.end())
                out[i] = out[it->second];
        }
    }
    return out;
}

namespace
{

// ---------------------------------------------------------------------------
// grid: exhaustive cross product in odometer order.
// ---------------------------------------------------------------------------

class GridStrategy final : public DseStrategy
{
  public:
    const char *name() const override { return "grid"; }

    void
    search(SearchContext &ctx) override
    {
        const ResolvedSpace &sp = ctx.space();
        if (sp.axes.empty())
            return;

        // Collect configurations in odometer order (last axis fastest)
        // until the cross product or the budget is exhausted, then fan
        // the whole wave across the pool: every candidate is
        // independent, so the grid is embarrassingly parallel.
        std::vector<std::size_t> idx(sp.axes.size(), 0);
        std::vector<DepthVector> wave;
        std::size_t allowed = ctx.remaining();
        bool wrapped = false;
        while (!wrapped && allowed > 0) {
            wave.push_back(sp.configOf(idx));
            --allowed;

            std::size_t a = sp.axes.size();
            while (a > 0) {
                --a;
                if (++idx[a] < sp.candidates[a].size())
                    break;
                idx[a] = 0;
                wrapped = a == 0;
            }
        }
        ctx.evaluateMany(wave);
    }
};

// ---------------------------------------------------------------------------
// binary: per-FIFO binary search, all axes advanced in lockstep.
// ---------------------------------------------------------------------------

class BinarySearchStrategy final : public DseStrategy
{
  public:
    const char *name() const override { return "binary"; }

    void
    search(SearchContext &ctx) override
    {
        const ResolvedSpace &sp = ctx.space();
        if (sp.axes.empty())
            return;
        const std::optional<Evaluation> ref = ctx.evaluate(sp.maxConfig());
        if (!ref || !ref->ok())
            return; // no reference latency to preserve

        // Per-axis bisection for the smallest candidate that keeps the
        // reference latency while every other FIFO stays deepest. The
        // axes advance in lockstep rounds — one probe per unfinished
        // axis per round, evaluated as a parallel wave — so the probe
        // sequence is deterministic for any worker count.
        const std::size_t n = sp.axes.size();
        std::vector<std::size_t> lo(n, 0), hi(n), minimal(n);
        std::vector<bool> active(n, true);
        for (std::size_t a = 0; a < n; ++a) {
            hi[a] = sp.candidates[a].size() - 1;
            minimal[a] = hi[a];
        }

        for (;;) {
            std::vector<std::size_t> axesInRound;
            std::vector<DepthVector> wave;
            for (std::size_t a = 0; a < n; ++a) {
                if (!active[a] || lo[a] > hi[a]) {
                    active[a] = false;
                    continue;
                }
                DepthVector cfg = sp.maxConfig();
                cfg[sp.axes[a]] =
                    sp.candidates[a][lo[a] + (hi[a] - lo[a]) / 2];
                axesInRound.push_back(a);
                wave.push_back(std::move(cfg));
            }
            if (wave.empty())
                break;

            const auto results = ctx.evaluateMany(wave);
            for (std::size_t k = 0; k < axesInRound.size(); ++k) {
                const std::size_t a = axesInRound[k];
                const std::size_t mid = lo[a] + (hi[a] - lo[a]) / 2;
                if (!results[k].has_value()) {
                    active[a] = false; // budget exhausted: keep best
                    continue;
                }
                if (results[k]->ok() &&
                    results[k]->latency <= ref->latency) {
                    minimal[a] = mid;
                    if (mid == 0)
                        active[a] = false;
                    else
                        hi[a] = mid - 1;
                } else {
                    lo[a] = mid + 1;
                }
            }
        }

        // The jointly minimal configuration — per-axis minima can
        // interact, so it is evaluated rather than assumed optimal; it
        // lands in the report either way.
        ctx.evaluate(sp.configOf(minimal));
    }
};

// ---------------------------------------------------------------------------
// greedy: coordinate descent from the deepest configuration.
// ---------------------------------------------------------------------------

class GreedyStrategy final : public DseStrategy
{
  public:
    const char *name() const override { return "greedy"; }

    void
    search(SearchContext &ctx) override
    {
        const ResolvedSpace &sp = ctx.space();
        if (sp.axes.empty())
            return;
        std::optional<Evaluation> curEval = ctx.evaluate(sp.maxConfig());
        if (!curEval || !curEval->ok())
            return;

        const std::size_t n = sp.axes.size();
        std::vector<std::size_t> cur(n);
        for (std::size_t a = 0; a < n; ++a)
            cur[a] = sp.candidates[a].size() - 1;

        while (!ctx.exhausted()) {
            // Every single-axis one-step move (shrink listed before
            // grow, axes ascending — the deterministic tie-break
            // order), evaluated as one parallel wave.
            std::vector<std::vector<std::size_t>> moves;
            std::vector<DepthVector> wave;
            for (std::size_t a = 0; a < n; ++a) {
                for (const int dir : {-1, +1}) {
                    if (dir < 0 && cur[a] == 0)
                        continue;
                    if (dir > 0 && cur[a] + 1 >= sp.candidates[a].size())
                        continue;
                    std::vector<std::size_t> idx = cur;
                    idx[a] = cur[a] + dir;
                    wave.push_back(sp.configOf(idx));
                    moves.push_back(std::move(idx));
                }
            }
            if (wave.empty())
                break;

            const auto results = ctx.evaluateMany(wave);
            std::size_t best = moves.size();
            for (std::size_t k = 0; k < moves.size(); ++k) {
                if (!results[k].has_value() || !results[k]->ok())
                    continue;
                if (!lexBetter(*results[k], *curEval))
                    continue;
                if (best == moves.size() ||
                    lexBetter(*results[k], *results[best]))
                    best = k;
            }
            if (best == moves.size())
                break; // local optimum
            cur = moves[best];
            curEval = results[best];
        }
    }

  private:
    /** a strictly better than b on (latency, cost), lexicographically. */
    static bool
    lexBetter(const Evaluation &a, const Evaluation &b)
    {
        if (a.latency != b.latency)
            return a.latency < b.latency;
        return a.cost < b.cost;
    }
};

// ---------------------------------------------------------------------------
// anneal: seeded simulated annealing with speculative proposal batches.
// ---------------------------------------------------------------------------

class AnnealStrategy final : public DseStrategy
{
  public:
    const char *name() const override { return "anneal"; }

    void
    search(SearchContext &ctx) override
    {
        const ResolvedSpace &sp = ctx.space();
        if (sp.axes.empty())
            return;
        const std::optional<Evaluation> start =
            ctx.evaluate(sp.maxConfig());
        if (!start || !start->ok())
            return;

        const std::size_t n = sp.axes.size();
        std::vector<std::size_t> cur(n);
        std::uint64_t maxCost = 0;
        for (std::size_t a = 0; a < n; ++a) {
            cur[a] = sp.candidates[a].size() - 1;
            maxCost += sp.candidates[a].back();
        }
        for (const std::uint32_t d : sp.base)
            maxCost += d;

        // Scalarized energy: latency lexicographically dominates cost,
        // so the chain is drawn toward min-latency configurations and
        // uses cost only to order latency ties.
        const double latW = static_cast<double>(maxCost) + 1.0;
        const auto energy = [&](const Evaluation &e) {
            if (!e.ok()) // deadlocks etc.: worse than any Ok energy,
                return 1e200; // finite so bad->bad moves still random-walk
            return static_cast<double>(e.latency) * latW +
                   static_cast<double>(e.cost);
        };

        Prng prng(ctx.seed());
        double curE = energy(*start);
        double temp = std::max(1.0, 0.05 * curE);
        constexpr double kCooling = 0.90;
        constexpr std::size_t kChainWidth = 8;

        // Stall bound: when the lattice is small relative to the budget
        // the cooled chain revisits cached configurations almost
        // exclusively, and without a cap it can crawl for minutes
        // hunting the last unseen points (reconvergent --budget 512
        // over a 625-point grid). A round whose whole wave lands in the
        // cache contributes its proposals to the stall count; any new
        // unique configuration resets it.
        constexpr std::size_t kStallBound = 256;
        std::size_t stalledProposals = 0;

        while (!ctx.exhausted() && stalledProposals < kStallBound) {
            // Speculative batch: kChainWidth proposals perturbed from
            // the round-start state, with their acceptance draws taken
            // up front. All PRNG consumption is serial and
            // independent of evaluation timing, so a fixed seed yields
            // one trajectory for any worker count.
            std::vector<std::vector<std::size_t>> props;
            std::vector<DepthVector> wave;
            std::vector<double> draws;
            for (std::size_t p = 0; p < kChainWidth; ++p) {
                std::vector<std::size_t> idx = cur;
                const std::size_t kicks = 1 + prng.below(2);
                for (std::size_t k = 0; k < kicks; ++k) {
                    const std::size_t a = prng.below(n);
                    const std::int64_t step =
                        prng.range(1, 2) * (prng.chance(0.5) ? 1 : -1);
                    const std::int64_t moved =
                        static_cast<std::int64_t>(idx[a]) + step;
                    const auto last = static_cast<std::int64_t>(
                        sp.candidates[a].size() - 1);
                    idx[a] = static_cast<std::size_t>(
                        std::clamp<std::int64_t>(moved, 0, last));
                }
                wave.push_back(sp.configOf(idx));
                props.push_back(std::move(idx));
                draws.push_back(prng.uniform());
            }

            const std::size_t remainingBefore = ctx.remaining();
            const auto results = ctx.evaluateMany(wave);
            if (ctx.remaining() == remainingBefore)
                stalledProposals += wave.size();
            else
                stalledProposals = 0;
            bool any = false;
            for (std::size_t p = 0; p < props.size(); ++p) {
                if (!results[p].has_value())
                    continue;
                any = true;
                const double dE = energy(*results[p]) - curE;
                if (dE <= 0.0 || draws[p] < std::exp(-dE / temp)) {
                    cur = props[p];
                    curE = energy(*results[p]);
                }
            }
            if (!any)
                break; // budget exhausted mid-wave
            temp = std::max(1.0, temp * kCooling);
        }
    }
};

} // namespace

std::unique_ptr<DseStrategy>
makeStrategy(const std::string &name)
{
    if (name == "grid")
        return std::make_unique<GridStrategy>();
    if (name == "binary")
        return std::make_unique<BinarySearchStrategy>();
    if (name == "greedy")
        return std::make_unique<GreedyStrategy>();
    if (name == "anneal")
        return std::make_unique<AnnealStrategy>();
    return nullptr;
}

const std::vector<std::string> &
strategyNames()
{
    static const std::vector<std::string> names = {"grid", "binary",
                                                   "greedy", "anneal"};
    return names;
}

} // namespace omnisim::dse
