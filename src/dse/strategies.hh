/**
 * @file
 * Search strategies for the DSE engine. Each strategy walks the joint
 * depth lattice described by a ResolvedSpace, requesting evaluations
 * through a SearchContext that memoizes configurations (EvalCache),
 * enforces the evaluation budget, and fans independent candidates
 * across the src/batch/ worker pool.
 *
 * Determinism contract: a strategy must produce the same set of
 * evaluated configurations for a fixed (space, budget, seed) regardless
 * of the worker count. The pattern every strategy follows is
 * generate-serially / evaluate-in-parallel / decide-serially: proposal
 * lists and PRNG draws happen on the driving thread, only the (pure,
 * memoized) evaluations run concurrently.
 */

#ifndef OMNISIM_DSE_STRATEGIES_HH
#define OMNISIM_DSE_STRATEGIES_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "batch/batch.hh"
#include "dse/dse.hh"

namespace omnisim::dse
{

/**
 * The facility a strategy drives. Budget accounting: a configuration
 * counts against the budget the first time it is evaluated; re-visits
 * are free. Once the budget is exhausted, requests for unseen
 * configurations return nullopt and the strategy should wind down.
 */
class SearchContext
{
  public:
    SearchContext(const ResolvedSpace &space, EvalCache &cache,
                  const batch::BatchRunner &pool, std::size_t budget,
                  std::uint64_t seed);

    const ResolvedSpace &space() const { return space_; }

    /** Seed for randomized strategies. */
    std::uint64_t seed() const { return seed_; }

    /** @return unseen configurations the budget still allows. */
    std::size_t remaining() const;

    bool exhausted() const { return remaining() == 0; }

    /**
     * Evaluate one configuration in the calling thread.
     * @return nullopt when the configuration is unseen and the budget
     *         is exhausted.
     */
    std::optional<Evaluation> evaluate(const DepthVector &depths);

    /**
     * Evaluate a proposal batch across the worker pool. The result
     * vector parallels the proposals; entries refused by the budget are
     * nullopt. Duplicate proposals cost budget once. The set of
     * configurations evaluated depends only on the proposal list and
     * prior cache state — never on the worker count.
     */
    std::vector<std::optional<Evaluation>>
    evaluateMany(const std::vector<DepthVector> &proposals);

  private:
    const ResolvedSpace &space_;
    EvalCache &cache_;
    const batch::BatchRunner &pool_;
    std::size_t budget_;
    std::uint64_t seed_;
};

/** Interface every search strategy implements. */
class DseStrategy
{
  public:
    virtual ~DseStrategy() = default;

    /** Stable CLI-facing name ("grid", "binary", ...). */
    virtual const char *name() const = 0;

    /** Drive the search until done or the budget runs out. */
    virtual void search(SearchContext &ctx) = 0;
};

/**
 * @return the named strategy, or nullptr when the name is unknown.
 *
 * grid    exhaustive cross product of the candidate lists, in odometer
 *         order, truncated by the budget.
 * binary  per-FIFO binary search (LightningSimV2-style sizing): find
 *         the smallest candidate per axis that preserves the deepest
 *         configuration's latency, all axes searched in parallel
 *         lockstep, then evaluate the combined minimal configuration.
 * greedy  coordinate descent from the deepest configuration: each round
 *         evaluates every single-axis one-step move in parallel and
 *         takes the best (latency, cost)-lexicographic improvement.
 * anneal  seeded simulated annealing over the candidate lattice with
 *         speculative proposal batches (support/prng.hh; no wall-clock
 *         randomness, deterministic for a fixed seed). Terminates early
 *         after 256 consecutive proposals without a new unique
 *         configuration (the stall bound), so budgets near the lattice
 *         size stop promptly instead of random-walking after the last
 *         unseen points.
 */
std::unique_ptr<DseStrategy> makeStrategy(const std::string &name);

/** @return every strategy name makeStrategy accepts. */
const std::vector<std::string> &strategyNames();

} // namespace omnisim::dse

#endif // OMNISIM_DSE_STRATEGIES_HH
