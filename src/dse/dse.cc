#include "dse/dse.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "batch/batch.hh"
#include "design/design.hh"
#include "designs/common.hh"
#include "dse/strategies.hh"
#include "io/run_store.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "support/stopwatch.hh"

namespace omnisim::dse
{

const char *
evalMethodName(EvalMethod m)
{
    switch (m) {
      case EvalMethod::FullRun:
        return "full";
      case EvalMethod::Incremental:
        return "incremental";
    }
    return "unknown";
}

// ---------------------------------------------------------------------------
// Space resolution.
// ---------------------------------------------------------------------------

DepthVector
ResolvedSpace::maxConfig() const
{
    DepthVector v = base;
    for (std::size_t a = 0; a < axes.size(); ++a)
        v[axes[a]] = candidates[a].back();
    return v;
}

DepthVector
ResolvedSpace::configOf(const std::vector<std::size_t> &idx) const
{
    omnisim_assert(idx.size() == axes.size(), "axis index arity mismatch");
    DepthVector v = base;
    for (std::size_t a = 0; a < axes.size(); ++a)
        v[axes[a]] = candidates[a][idx[a]];
    return v;
}

std::size_t
ResolvedSpace::gridSize() const
{
    std::size_t n = 1;
    for (const auto &c : candidates) {
        if (n > std::numeric_limits<std::size_t>::max() / c.size())
            return std::numeric_limits<std::size_t>::max();
        n *= c.size();
    }
    return n;
}

namespace
{

std::vector<std::uint32_t>
candidatesOf(const FifoRange &r)
{
    std::vector<std::uint32_t> out;
    if (r.geometric) {
        for (std::uint32_t d = r.lo; d < r.hi; d *= 2)
            out.push_back(d);
        out.push_back(r.hi);
    } else {
        for (std::uint32_t d = r.lo; d <= r.hi; ++d)
            out.push_back(d);
    }
    return out;
}

} // namespace

ResolvedSpace
resolveSpace(const Design &d, const DseSpace &space)
{
    ResolvedSpace rs;
    for (const auto &f : d.fifos())
        rs.base.push_back(f.depth);

    std::vector<FifoRange> ranges = space.fifos;
    if (ranges.empty()) {
        for (const auto &f : d.fifos())
            ranges.push_back({f.name, 1, 16, true});
    }

    for (const auto &r : ranges) {
        if (r.lo < 1 || r.hi < r.lo)
            omnisim_fatal("dse range for fifo '%s' is empty: lo=%u hi=%u "
                          "(need 1 <= lo <= hi)", r.fifo.c_str(), r.lo,
                          r.hi);
        const FifoId id = d.fifoByName(r.fifo); // throws on unknown name
        const auto axis = static_cast<std::size_t>(id);
        if (std::find(rs.axes.begin(), rs.axes.end(), axis) !=
            rs.axes.end())
            omnisim_fatal("fifo '%s' listed twice in the dse space",
                          r.fifo.c_str());
        rs.axes.push_back(axis);
        rs.names.push_back(r.fifo);
        rs.candidates.push_back(candidatesOf(r));
    }
    return rs;
}

// ---------------------------------------------------------------------------
// EvalCache.
// ---------------------------------------------------------------------------

/**
 * One pooled completed run: either a live engine that ran in this
 * process, or a run rehydrated from the persistent store. The Design
 * and CompiledDesign are heap-held so their addresses stay stable for
 * the engine's lifetime (OmniSim keeps a reference, CompiledDesign a
 * pointer); StoredRun is address-stable by construction. Both serve
 * resimulate() with identical (bit-for-bit) outcomes, so a probe does
 * not care which kind it hits.
 */
struct EvalCache::PoolEntry
{
    std::unique_ptr<Design> design;
    std::unique_ptr<CompiledDesign> cd;
    std::unique_ptr<OmniSim> engine;
    std::unique_ptr<io::StoredRun> stored;

    /** Depth vector the pooled run executed under (dedup on refresh). */
    DepthVector baseDepths;

    /** @param jobs relaxation lanes for rehydrated entries; a live
     *  engine already carries its own OmniSimOptions::jobs budget. */
    IncrementalOutcome
    resimulate(const DepthVector &depths, unsigned jobs) const
    {
        return engine ? engine->resimulate(depths)
                      : stored->resimulate(depths, jobs);
    }
};

EvalCache::EvalCache(std::function<Design()> builder, OmniSimOptions opts,
                     std::size_t maxPool)
    : builder_(std::move(builder)), opts_(opts),
      maxPool_(std::max<std::size_t>(1, maxPool))
{
    fifoCount_ = builder_().fifos().size();
}

EvalCache::~EvalCache() = default;

void
EvalCache::attachStore(io::RunStore *store, std::string designName,
                       std::string engineName)
{
    omnisim_assert(store != nullptr, "attachStore: null store");
    {
        sync::LockGuard lock(mu_);
        omnisim_assert(store_ == nullptr,
                       "attachStore: store already attached");
        store_ = store;
        storeDesign_ = std::move(designName);
        storeEngine_ = std::move(engineName);
    }
    storeFingerprint_ = io::designFingerprint(builder_());
    refreshFromStore();
}

std::size_t
EvalCache::refreshFromStore()
{
    io::RunStore *store;
    {
        sync::LockGuard lock(mu_);
        store = store_;
        if (!store || pool_.size() >= maxPool_)
            return 0;
    }

    // Disk IO and rehydration happen outside the lock; adoption under
    // the lock dedups against entries (and races) by base depth vector.
    std::vector<std::unique_ptr<io::StoredRun>> runs = store->loadAll(
        storeDesign_, storeEngine_, storeFingerprint_, maxPool_);

    std::size_t adopted = 0;
    sync::LockGuard lock(mu_);
    for (auto &run : runs) {
        if (pool_.size() >= maxPool_)
            break;
        const DepthVector &base = run->baseDepths();
        if (base.size() != fifoCount_)
            continue; // stale: FIFO count changed under the same name
        const bool dup = std::any_of(
            pool_.begin(), pool_.end(),
            [&](const auto &p) { return p->baseDepths == base; });
        if (dup)
            continue;
        auto entry = std::make_unique<PoolEntry>();
        entry->baseDepths = base;
        entry->stored = std::move(run);
        pool_.push_back(std::move(entry));
        ++adopted;
        ++storedWarmStarts_;
    }
    return adopted;
}

std::size_t
EvalCache::storedWarmStarts() const
{
    sync::LockGuard lock(mu_);
    return storedWarmStarts_;
}

void
EvalCache::setMetricsLabel(const std::string &label)
{
    labelHist_.store(
        &obs::Registry::global().histogram("dse.eval_us." + label),
        std::memory_order_release);
}

Evaluation
EvalCache::evaluate(const DepthVector &depths, bool allowIncremental)
{
    static obs::Counter &mMemoHits =
        obs::Registry::global().counter("dse.evalcache.memo_hits");
    static obs::Counter &mIncremental =
        obs::Registry::global().counter("dse.evalcache.incremental");
    static obs::Counter &mDelta =
        obs::Registry::global().counter("dse.evalcache.delta");
    static obs::Counter &mFullRuns =
        obs::Registry::global().counter("dse.evalcache.full_runs");
    static obs::Histogram &mEvalUs =
        obs::Registry::global().histogram("dse.eval_us");
    // Standalone evaluations (library embedders, tests) are entry
    // points and allocate their own correlation id; evaluations inside
    // a serve request or batch scenario keep the surrounding id.
    const obs::CorrelationId parentCid = obs::currentCorrelationId();
    obs::CorrelationScope cscope(
        parentCid ? parentCid : obs::newCorrelationId());
    OMNISIM_SPAN("dse.evaluate");
    obs::ScopedLatencyUs evalTimer(mEvalUs);
    std::optional<obs::ScopedLatencyUs> labelTimer;
    if (obs::Histogram *lh = labelHist_.load(std::memory_order_acquire))
        labelTimer.emplace(*lh);

    if (depths.size() != fifoCount_)
        omnisim_fatal("depth vector has %zu entries; design has %zu FIFOs",
                      depths.size(), fifoCount_);
    for (std::size_t f = 0; f < depths.size(); ++f) {
        if (depths[f] < 1)
            omnisim_fatal("fifo %zu: depth must be >= 1", f);
    }

    {
        sync::LockGuard lock(mu_);
        if (const auto it = done_.find(depths); it != done_.end()) {
            ++cacheHits_;
            mMemoHits.add();
            Evaluation e = it->second;
            e.fromMemo = true;
            OMNISIM_LOG_TRACE("dse.evaluate", "memo hit");
            return e;
        }
    }

    const Evaluation fresh = computeFresh(depths, allowIncremental);
    OMNISIM_LOG_TRACE("dse.evaluate", "method=%s via_delta=%d status=%s",
                      evalMethodName(fresh.method), fresh.viaDelta ? 1 : 0,
                      simStatusName(fresh.status));

    sync::LockGuard lock(mu_);
    // Two workers may race on the same unseen configuration; results
    // are deterministic, so whichever insertion wins is authoritative
    // and the stats count the configuration exactly once.
    const auto [it, inserted] = done_.emplace(depths, fresh);
    if (inserted) {
        if (fresh.method == EvalMethod::Incremental) {
            ++incrementalHits_;
            mIncremental.add();
            if (fresh.viaDelta) {
                ++deltaHits_;
                mDelta.add();
            }
        } else {
            ++fullRuns_;
            mFullRuns.add();
        }
    }
    return it->second;
}

Evaluation
EvalCache::computeFresh(const DepthVector &depths, bool allowIncremental)
{
    Evaluation e;
    e.depths = depths;
    for (const std::uint32_t d : depths)
        e.cost += d;

    // Try the recorded constraints of every pooled run first (§7.2).
    // resimulate() only reads run state, so a snapshot of raw entry
    // pointers can be probed without holding the cache lock: entries
    // are never removed and unique_ptr targets never move.
    if (allowIncremental) {
        std::vector<const PoolEntry *> entries;
        {
            sync::LockGuard lock(mu_);
            entries.reserve(pool_.size());
            for (const auto &p : pool_)
                entries.push_back(p.get());
        }
        for (const PoolEntry *entry : entries) {
            const IncrementalOutcome inc =
                entry->resimulate(depths, opts_.jobs);
            if (inc.reused) {
                e.status = inc.result.status;
                e.latency = inc.result.totalCycles;
                e.method = EvalMethod::Incremental;
                e.viaDelta = inc.viaDelta;
                return e;
            }
        }
    }

    // Divergence (or an empty pool): full re-simulation, which then
    // seeds the pool so neighbouring configurations can reuse it. A
    // throwing build/compile/run (user-level design errors surface as
    // FatalError) is isolated into a Crash evaluation rather than
    // unwinding through the worker pool and killing the whole search.
    e.method = EvalMethod::FullRun;
    try {
        auto entry = std::make_unique<PoolEntry>();
        entry->design = std::make_unique<Design>(builder_());
        for (std::size_t f = 0; f < depths.size(); ++f)
            entry->design->setFifoDepth(static_cast<FifoId>(f),
                                        depths[f]);
        entry->cd =
            std::make_unique<CompiledDesign>(compile(*entry->design));
        entry->engine = std::make_unique<OmniSim>(*entry->cd, opts_);
        entry->baseDepths = depths;

        const SimResult r = entry->engine->run();
        e.status = r.status;
        e.latency = r.ok() ? r.totalCycles : 0;

        if (r.ok()) {
            // Publish outside the lock (file IO); failures only cost
            // future processes their warm start.
            if (store_) {
                RunSnapshot snap;
                if (entry->engine->exportSnapshot(snap))
                    store_->publish(storeDesign_, storeEngine_,
                                    storeFingerprint_, snap);
            }
            sync::LockGuard lock(mu_);
            if (pool_.size() < maxPool_)
                pool_.push_back(std::move(entry));
        }
    } catch (const std::exception &ex) {
        e.status = SimStatus::Crash;
        e.latency = 0;
        e.message = ex.what();
    }
    return e;
}

bool
EvalCache::contains(const DepthVector &depths) const
{
    sync::LockGuard lock(mu_);
    return done_.contains(depths);
}

std::size_t
EvalCache::size() const
{
    sync::LockGuard lock(mu_);
    return done_.size();
}

std::size_t
EvalCache::incrementalHits() const
{
    sync::LockGuard lock(mu_);
    return incrementalHits_;
}

std::size_t
EvalCache::deltaHits() const
{
    sync::LockGuard lock(mu_);
    return deltaHits_;
}

std::size_t
EvalCache::fullRuns() const
{
    sync::LockGuard lock(mu_);
    return fullRuns_;
}

std::size_t
EvalCache::cacheHits() const
{
    sync::LockGuard lock(mu_);
    return cacheHits_;
}

std::vector<Evaluation>
EvalCache::evaluations() const
{
    sync::LockGuard lock(mu_);
    std::vector<Evaluation> out;
    out.reserve(done_.size());
    for (const auto &[depths, e] : done_)
        out.push_back(e);
    return out;
}

opt::CompileStats
EvalCache::compileStats() const
{
    sync::LockGuard lock(mu_);
    opt::CompileStats agg;
    bool first = true;
    for (const auto &p : pool_) {
        const opt::CompileStats &s = p->engine
                                         ? p->engine->compileStats()
                                         : p->stored->compileStats();
        if (first) {
            agg = s;
            first = false;
        } else {
            agg.accumulate(s);
        }
    }
    return agg;
}

// ---------------------------------------------------------------------------
// Report distillation.
// ---------------------------------------------------------------------------

double
DseReport::hitRate() const
{
    const std::size_t total = incrementalHits + fullRuns;
    return total == 0 ? 0.0
                      : static_cast<double>(incrementalHits) /
                            static_cast<double>(total);
}

double
DseReport::configsPerSecond() const
{
    if (evaluations.empty() || wallSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(evaluations.size()) / wallSeconds;
}

namespace
{

/** Deterministic total order: cost, then latency, then depths. */
bool
evalLess(const Evaluation &a, const Evaluation &b)
{
    if (a.cost != b.cost)
        return a.cost < b.cost;
    if (a.latency != b.latency)
        return a.latency < b.latency;
    return a.depths < b.depths;
}

std::vector<Evaluation>
paretoFrontier(const std::vector<Evaluation> &sorted)
{
    // Input sorted by (cost asc, latency asc): sweep keeping points
    // whose latency strictly improves on everything cheaper. Equal-cost
    // groups contribute at most their min-latency member.
    std::vector<Evaluation> front;
    Cycles bestLatency = std::numeric_limits<Cycles>::max();
    for (const Evaluation &e : sorted) {
        if (!e.ok())
            continue;
        if (!front.empty() && front.back().cost == e.cost)
            continue; // same cost, latency >= the kept member
        if (e.latency < bestLatency) {
            front.push_back(e);
            bestLatency = e.latency;
        }
    }
    return front;
}

Evaluation
kneePoint(const std::vector<Evaluation> &front)
{
    omnisim_assert(!front.empty(), "knee of an empty frontier");
    const double c0 = static_cast<double>(front.front().cost);
    const double c1 = static_cast<double>(front.back().cost);
    const double l0 = static_cast<double>(front.back().latency);
    const double l1 = static_cast<double>(front.front().latency);
    const double cSpan = std::max(1.0, c1 - c0);
    const double lSpan = std::max(1.0, l1 - l0);

    std::size_t best = 0;
    double bestDist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < front.size(); ++i) {
        const double nc = (static_cast<double>(front[i].cost) - c0) / cSpan;
        const double nl =
            (static_cast<double>(front[i].latency) - l0) / lSpan;
        const double dist = std::sqrt(nc * nc + nl * nl);
        if (dist < bestDist) { // ties keep the cheaper (earlier) point
            bestDist = dist;
            best = i;
        }
    }
    return front[best];
}

} // namespace

// ---------------------------------------------------------------------------
// explore().
// ---------------------------------------------------------------------------

DseReport
explore(const std::string &designLabel,
        const std::function<Design()> &builder, const DseOptions &opts)
{
    std::unique_ptr<DseStrategy> strategy = makeStrategy(opts.strategy);
    if (!strategy) {
        std::string known;
        for (const std::string &n : strategyNames())
            known += known.empty() ? n : ", " + n;
        omnisim_fatal("unknown dse strategy '%s' (have: %s)",
                      opts.strategy.c_str(), known.c_str());
    }
    if (opts.budget < 1)
        omnisim_fatal("dse budget must be >= 1");

    const Design probe = builder();
    const ResolvedSpace space = resolveSpace(probe, opts.space);

    DseReport rep;
    rep.design = designLabel;
    rep.strategy = strategy->name();
    for (const auto &f : probe.fifos())
        rep.fifoNames.push_back(f.name);
    rep.axes = space.axes;

    OMNISIM_SPAN("dse.explore");
    static obs::Counter &mExplores =
        obs::Registry::global().counter("dse.explores");
    mExplores.add();
    OMNISIM_LOG_INFO("dse.explore", "design=%s strategy=%s budget=%zu",
                     designLabel.c_str(), strategy->name(), opts.budget);

    EvalCache cache(builder, opts.engine);
    cache.setMetricsLabel(strategy->name());
    if (opts.store)
        cache.attachStore(opts.store,
                          opts.storeDesign.empty() ? designLabel
                                                   : opts.storeDesign);
    const batch::BatchRunner pool({opts.jobs});
    rep.jobs = pool.jobs();

    Stopwatch sw;
    SearchContext ctx(space, cache, pool, opts.budget, opts.seed);

    // Warm start: one full run of the deepest configuration gives every
    // strategy a reference latency and seeds the reuse pool, so that
    // even the first parallel wave of candidates can resolve
    // incrementally instead of racing into full runs.
    ctx.evaluate(space.maxConfig());

    strategy->search(ctx);
    rep.wallSeconds = sw.seconds();

    rep.evaluations = cache.evaluations();
    std::sort(rep.evaluations.begin(), rep.evaluations.end(), evalLess);
    rep.frontier = paretoFrontier(rep.evaluations);
    rep.anyOk = !rep.frontier.empty();
    if (rep.anyOk) {
        // Latency decreases strictly along the frontier, and latency
        // ties collapse to their cheapest member during the sweep, so
        // the last point is the cheapest min-latency configuration.
        rep.minLatency = rep.frontier.back();
        rep.knee = kneePoint(rep.frontier);
    }
    rep.fullRuns = cache.fullRuns();
    rep.incrementalHits = cache.incrementalHits();
    rep.deltaHits = cache.deltaHits();
    rep.cacheHits = cache.cacheHits();
    rep.storedWarmStarts = cache.storedWarmStarts();
    return rep;
}

DseReport
exploreRegistered(const std::string &designName, const DseOptions &opts)
{
    const designs::DesignEntry &entry = designs::findDesign(designName);
    return explore(entry.name, entry.build, opts);
}

} // namespace omnisim::dse
