#include "graph/simgraph.hh"

#include "support/logging.hh"

namespace omnisim
{

SimGraph::NodeId
SimGraph::addNode(const NodeInfo &info)
{
    nodes_.push_back(Node{info, -1, 0, -1});
    return nodes_.size() - 1;
}

void
SimGraph::addEdge(NodeId src, NodeId dst, Cycles weight)
{
    omnisim_assert(src < nodes_.size() && dst < nodes_.size(),
                   "edge (%llu -> %llu) out of range (%zu nodes)",
                   static_cast<unsigned long long>(src),
                   static_cast<unsigned long long>(dst), nodes_.size());
    Node &n = nodes_[src];
    if (n.firstDst < 0) {
        n.firstDst = static_cast<std::int64_t>(dst);
        n.firstWeight = weight;
    } else {
        pool_.push_back(
            Edge{static_cast<std::int64_t>(dst), weight, n.overflowHead});
        n.overflowHead = static_cast<std::int64_t>(pool_.size() - 1);
    }
    ++numEdges_;
}

void
SimGraph::reserve(std::size_t nodes, std::size_t overflow_edges)
{
    nodes_.reserve(nodes);
    pool_.reserve(overflow_edges);
}

} // namespace omnisim
