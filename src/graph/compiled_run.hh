/**
 * @file
 * Compiled form of a finished simulation run (§7.2 of the paper, taken
 * to the LightningSimV2/GSIM conclusion: pay for structure once, then
 * only touch what changed).
 *
 * After a successful OmniSim run the structural simulation graph is
 * frozen into an immutable CSR pair (forward for propagation, reverse
 * for in-place recomputation), together with a cached topological order,
 * the baseline longest-path node times, and per-node accessor maps that
 * make every depth-dependent write-after-read edge computable in O(1)
 * from the FIFO tables — WAR edges are never materialized at all.
 *
 * resimulate() then serves a new depth vector by *delta relaxation*:
 * diff the synthesized WAR edge set against the baseline for the changed
 * FIFOs only, seed a worklist with the destination writes of
 * added/removed/re-sourced edges, and relax node times in cached
 * topological order over just the affected cone. Node times can both
 * rise and fall, so each pop fully recomputes its node from the reverse
 * CSR plus its WAR in-edge; chaotic re-evaluation converges to the
 * unique longest-path fixed point on any DAG, and a bounded pop budget
 * catches the cyclic (timing-infeasible) case. When the delta is too
 * large, the budget trips, or a depth vector shrinks a FIFO into a
 * potential cycle, the attempt falls back to a full Kahn pass — still
 * over the compiled CSR, with WAR edges overlaid functionally, so even
 * the fallback never rebuilds a graph.
 *
 * Every path is bit-identical to the pre-compiled reference
 * implementation (OmniSim::resimulateReference): identical reuse
 * decisions, identical first-divergent constraint, identical re-finalized
 * cycle counts. tests/test_compiled_run.cc enforces this across the
 * design registry.
 */

#ifndef OMNISIM_GRAPH_COMPILED_RUN_HH
#define OMNISIM_GRAPH_COMPILED_RUN_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"
#include "graph/simgraph.hh"
#include "runtime/fifo_table.hh"
#include "support/types.hh"

namespace omnisim
{

struct QueryRecord; // core/omnisim.hh
struct RunSnapshot; // core/omnisim.hh

/**
 * Immutable compiled snapshot of one finished run. All mutable state of
 * resimulate() is per-call scratch, so a single CompiledRun may serve
 * any number of concurrent callers (the DSE EvalCache probes pooled
 * runs from every batch worker at once).
 *
 * The referenced FIFO tables and constraint list must outlive the
 * CompiledRun (both live in OmniSim::RunData alongside it).
 */
class CompiledRun
{
  public:
    /** Outcome of one compiled re-simulation attempt. */
    struct Attempt
    {
        enum class Status : std::uint8_t
        {
            Reused,     ///< All constraints held; totalCycles is valid.
            Diverged,   ///< constraintIndex names the first flipped query.
            Infeasible, ///< New depths create a timing cycle.
        };

        Status status = Status::Reused;

        /** First divergent constraint (index into the recorded list);
         *  valid when status == Diverged. */
        std::size_t constraintIndex = 0;

        /** How that constraint would now resolve; valid for Diverged. */
        bool nowAnswer = false;

        /** Re-finalized total latency; valid when status == Reused. */
        Cycles totalCycles = 0;

        /** True when the delta worklist served the attempt without a
         *  full relaxation pass (the compiled fast path). */
        bool viaDelta = false;
    };

    /**
     * Freeze a finished run.
     *
     * @param nodes       per-node payloads (durations are copied out).
     * @param structural  depth-independent constraint edges.
     * @param seed        per-node minimum start times (size == nodes).
     * @param tables      per-FIFO commit tables; must outlive this.
     * @param baseDepths  FIFO depths the run executed under.
     * @param constraints recorded query outcomes; must outlive this.
     * @param tailNode    per-module last-op node (module tail anchor).
     * @param tailSlack   per-module cycles between last op and return.
     */
    CompiledRun(const std::vector<NodeInfo> &nodes,
                const std::vector<CsrGraph::EdgeSpec> &structural,
                const std::vector<Cycles> &seed,
                const std::vector<FifoTable> &tables,
                std::vector<std::uint32_t> baseDepths,
                const std::vector<QueryRecord> &constraints,
                std::vector<std::uint64_t> tailNode,
                std::vector<Cycles> tailSlack);

    /**
     * Rehydration constructor: freeze a run deserialized in a fresh
     * process (src/io/). Equivalent to the primary constructor over the
     * snapshot's fields — the baseline solve, topological order, and
     * constraint index are all recomputed, so a rehydrated run is
     * bit-identical to the run frozen in the originating process. The
     * snapshot must outlive the CompiledRun (its tables and constraints
     * are referenced, not copied) and must already be validated
     * (io::validateSnapshot): index invariants are asserted, not
     * tolerated, here.
     */
    explicit CompiledRun(const RunSnapshot &snap);

    /** @return false when even the baseline WAR overlay has a timing
     *  cycle (only reachable in lazy write-stall mode). */
    bool baselineAcyclic() const { return baselineAcyclic_; }

    /** @return baseline per-node longest-path times. */
    const std::vector<Cycles> &baselineTimes() const { return baseTime_; }

    /** @return baseline total latency (max node time + duration, max
     *  module tail). */
    Cycles baselineTotalCycles() const { return baseTotal_; }

    /** @return node count (structural graph). */
    std::size_t numNodes() const { return seed_.size(); }

    /** @return structural plus baseline-synthesized WAR edge count (the
     *  figure the engine reports as graphEdges). */
    std::size_t numEdges() const { return structuralEdges_ + baseWarEdges_; }

    /**
     * Attempt an incremental re-finalization under new depths.
     * Thread-safe and allocation-bounded; never touches shared state.
     *
     * @param depths one depth per FIFO (size == tables.size()).
     */
    Attempt resimulate(const std::vector<std::uint32_t> &depths) const;

  private:
    struct ConstraintMeta;

    /** Full Kahn relaxation over the CSR with WAR(depths) overlaid
     *  functionally; the topological order output is optional. */
    bool relaxFull(const std::vector<std::uint32_t> &depths,
                   std::vector<Cycles> &time,
                   std::vector<std::uint32_t> *order) const;

    /** Accumulate structural (depth-independent) indegrees. */
    void fwdIndegrees(std::vector<std::uint32_t> &indeg) const;

    /** Delta worklist relaxation. @return false to request the full
     *  fallback (budget exceeded / possible cycle). */
    bool relaxDelta(const std::vector<std::uint32_t> &depths,
                    const std::vector<std::size_t> &changedFifos,
                    std::vector<Cycles> &cur,
                    std::vector<std::uint8_t> &changedFlag,
                    std::vector<std::uint64_t> &changedNodes) const;

    /** Recompute one node's time from its in-edges under a time view. */
    Cycles recompute(std::uint64_t v, const std::vector<Cycles> &cur,
                     const std::vector<std::uint32_t> &depths) const;

    /** Evaluate recorded constraint i against a time view + depths. */
    bool evalConstraint(std::size_t i, const std::vector<Cycles> &time,
                        const std::vector<std::uint32_t> &depths) const;

    /** Visit structural + WAR(depths) out-edges of node u. */
    template <typename F>
    void forEachOutOverlay(std::uint64_t u,
                           const std::vector<std::uint32_t> &depths,
                           F &&f) const;

    Attempt finishWithTimes(const std::vector<Cycles> &time,
                            const std::vector<std::uint32_t> &depths) const;

    // ---- Frozen structure -------------------------------------------
    CsrGraph fwd_;                      ///< Structural out-edges.
    CsrGraph rev_;                      ///< Structural in-edges.
    std::vector<Cycles> seed_;          ///< Entry-time seeds.
    std::vector<Cycles> dur_;           ///< Node durations.
    std::vector<std::uint32_t> baseDepths_;
    std::vector<std::uint64_t> tailNode_;
    std::vector<Cycles> tailSlack_;
    const std::vector<FifoTable> *tables_;
    const std::vector<QueryRecord> *constraints_;
    std::size_t structuralEdges_ = 0;
    std::size_t baseWarEdges_ = 0;
    std::vector<std::uint32_t> indegStructural_;

    // ---- Per-node FIFO accessor map (WAR edges in O(1)) -------------
    std::vector<std::int32_t> accFifo_;  ///< FIFO id, -1 for non-access.
    std::vector<std::uint32_t> accIdx_;  ///< 1-based access index.
    std::vector<std::uint8_t> accWrite_; ///< 1 == write, 0 == read.
    /** 1 when a write-access node was committed by a *blocking* write —
     *  the only kind that may wait for space and thus carry a WAR
     *  in-edge. Committed NB writes keep their attempt time; their
     *  recorded constraints decide their fate under new depths. */
    std::vector<std::uint8_t> accBlockingWrite_;
    /** Blocking-write count per FIFO (delta-size prediction). */
    std::vector<std::uint32_t> blockingWrites_;

    // ---- Baseline solution ------------------------------------------
    bool baselineAcyclic_ = false;
    std::vector<Cycles> baseTime_;
    Cycles baseTotal_ = 0;
    std::vector<std::uint32_t> rank_;      ///< Cached topo position.
    std::vector<std::uint64_t> order_;     ///< Inverse of rank_.
    std::vector<std::uint64_t> byContrib_; ///< Nodes by desc time+dur.

    // ---- Constraint index -------------------------------------------
    /** CSR map node -> recorded constraints referencing it (as the query
     *  node or as its baseline target event). */
    std::vector<std::uint32_t> consOffsets_;
    std::vector<std::uint32_t> consIds_;
    /** Write-kind constraints per FIFO (their target read index moves
     *  with the depth, so a depth change affects all of them). */
    std::vector<std::vector<std::uint32_t>> writeConsByFifo_;
    /** Constraints whose baseline re-evaluation already differs from
     *  the recorded outcome (lazy-mode repairs), ascending. */
    std::vector<std::uint32_t> baselineDivergent_;
};

} // namespace omnisim

#endif // OMNISIM_GRAPH_COMPILED_RUN_HH
