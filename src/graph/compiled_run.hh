/**
 * @file
 * Compiled form of a finished simulation run (§7.2 of the paper, taken
 * to the LightningSimV2/GSIM conclusion: pay for structure once, then
 * only touch what changed).
 *
 * After a successful OmniSim run the finished trace goes through the
 * graph compilation pipeline (src/opt/): at -O1 the pass manager prunes
 * constraints and WAR endpoints that can never matter at any depth in
 * the candidate lattice, collapses linear chains into weighted interval
 * edges, and deduplicates structurally identical subgraphs; at -O0 it
 * emits the identity image. Either way the result is a RunLayout — the
 * frozen run as plain arrays in layout node ids — over which this class
 * builds an immutable CSR pair (forward for propagation, reverse for
 * in-place recomputation), a cached topological order, the baseline
 * longest-path times, and per-node accessor maps that make every
 * depth-dependent write-after-read edge computable in O(1) — WAR edges
 * are never materialized at all.
 *
 * resimulate() then serves a new depth vector by *delta relaxation*:
 * diff the synthesized WAR edge set against the baseline for the changed
 * FIFOs only, seed a worklist with the destination writes of
 * added/removed/re-sourced edges, and relax node times in cached
 * topological order over just the affected cone. Node times can both
 * rise and fall, so each pop fully recomputes its node from the reverse
 * CSR plus its WAR in-edge; chaotic re-evaluation converges to the
 * unique longest-path fixed point on any DAG, and a bounded pop budget
 * catches the cyclic (timing-infeasible) case. When the delta is too
 * large, the budget trips, or a depth vector shrinks a FIFO into a
 * potential cycle, the attempt falls back to a full Kahn pass — still
 * over the compiled CSR, with WAR edges overlaid functionally, so even
 * the fallback never rebuilds a graph.
 *
 * Probed depths are clamped per FIFO to writes+1 first: no WAR edge
 * exists beyond that and every recorded write-kind constraint index is
 * <= writes+1, so deeper depths are provably indistinguishable — which
 * is also what makes the -O1 lattice analysis finite.
 *
 * When the -O1 partition pass produced a valid PartitionPlan (see
 * opt/layout.hh) and the probe *admits* — every clamped depth clears
 * its FIFO's plan-recorded minimum admissible depth — both the full
 * pass and the delta sweep run *level-synchronously*: all in-edges of a
 * level then originate in earlier levels, so each level's nodes are
 * recomputed independently — across the RelaxPool worker team when a
 * resimulate(depths, jobs) caller asked for lanes and the design is
 * large enough — and every order-sensitive decision (commit order,
 * changed-cone budget) happens on the caller thread at a level barrier.
 * Results are therefore bit-identical at any thread count, and
 * identical to the serial engine. Designs without a valid plan (cyclic
 * baseline overlay) and probes too shallow to admit keep the serial
 * paths below; admission is a pure function of (plan, depths), so a
 * live engine and a rehydrated StoredRun always pick the same path.
 *
 * Every path is bit-identical to the pre-compiled reference
 * implementation (OmniSim::resimulateReference): identical reuse
 * decisions, identical first-divergent constraint (reported in recorded
 * indices), identical re-finalized cycle counts — at -O0 and -O1 alike.
 * tests/test_compiled_run.cc and the conformance fuzzer's opt-vs-O0
 * oracle enforce this across the design registry.
 */

#ifndef OMNISIM_GRAPH_COMPILED_RUN_HH
#define OMNISIM_GRAPH_COMPILED_RUN_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"
#include "graph/relax_pool.hh"
#include "graph/simgraph.hh"
#include "opt/layout.hh"
#include "runtime/fifo_table.hh"
#include "support/types.hh"

namespace omnisim
{

struct QueryRecord; // core/omnisim.hh
struct RunSnapshot; // core/omnisim.hh

/**
 * Immutable compiled snapshot of one finished run. All mutable state of
 * resimulate() is per-call scratch, so a single CompiledRun may serve
 * any number of concurrent callers (the DSE EvalCache probes pooled
 * runs from every batch worker at once). Self-contained: the layout
 * owns every array the solver touches, so the originating tables and
 * constraint list are only read during construction.
 */
class CompiledRun
{
  public:
    /** Serial fallback: designs below this node count never try to
     *  lease the worker team (a small registry design pays nothing for
     *  the parallel machinery). */
    static constexpr std::size_t kParallelMinNodes = 2048;

    /** Levels narrower than this relax inline on the caller even while
     *  a lease is held — fan-out cost would exceed the work. */
    static constexpr std::uint32_t kMinParallelLevelWidth = 128;

    /** Outcome of one compiled re-simulation attempt. */
    struct Attempt
    {
        enum class Status : std::uint8_t
        {
            Reused,     ///< All constraints held; totalCycles is valid.
            Diverged,   ///< constraintIndex names the first flipped query.
            Infeasible, ///< New depths create a timing cycle.
        };

        Status status = Status::Reused;

        /** First divergent constraint (index into the recorded list);
         *  valid when status == Diverged. */
        std::size_t constraintIndex = 0;

        /** How that constraint would now resolve; valid for Diverged. */
        bool nowAnswer = false;

        /** Re-finalized total latency; valid when status == Reused. */
        Cycles totalCycles = 0;

        /** True when the delta worklist served the attempt without a
         *  full relaxation pass (the compiled fast path). */
        bool viaDelta = false;

        /** Nodes whose times were recomputed: the affected cone on the
         *  delta path, every node on a full relaxation, 0 when the
         *  depths were unchanged. Telemetry feeds on this. */
        std::size_t relaxedNodes = 0;
    };

    /**
     * Freeze a finished run through the compilation pipeline.
     *
     * @param nodes       per-node payloads (durations are copied out).
     * @param structural  depth-independent constraint edges.
     * @param seed        per-node minimum start times (size == nodes).
     * @param tables      per-FIFO commit tables (read during
     *                    construction only).
     * @param baseDepths  FIFO depths the run executed under.
     * @param constraints recorded query outcomes (copied into the
     *                    layout's kept list).
     * @param tailNode    per-module last-op node (module tail anchor).
     * @param tailSlack   per-module cycles between last op and return.
     * @param level       optimization level (see opt/opt.hh).
     * @param jobs        relaxation lanes for the baseline solve
     *                    (1 = serial, 0 = one per hardware thread).
     */
    CompiledRun(const std::vector<NodeInfo> &nodes,
                const std::vector<CsrGraph::EdgeSpec> &structural,
                const std::vector<Cycles> &seed,
                const std::vector<FifoTable> &tables,
                std::vector<std::uint32_t> baseDepths,
                const std::vector<QueryRecord> &constraints,
                std::vector<std::uint64_t> tailNode,
                std::vector<Cycles> tailSlack,
                opt::OptLevel level = opt::OptLevel::O1,
                unsigned jobs = 1);

    /**
     * Rehydration constructor: freeze a run deserialized in a fresh
     * process (src/io/). Equivalent to the primary constructor over the
     * snapshot's fields — the pass pipeline is deterministic and the
     * baseline solve, topological order, and constraint index are all
     * recomputed, so a rehydrated run is bit-identical to the run
     * frozen in the originating process. The snapshot must already be
     * validated (io::validateSnapshot): index invariants are asserted,
     * not tolerated, here.
     */
    explicit CompiledRun(const RunSnapshot &snap,
                         opt::OptLevel level = opt::OptLevel::O1,
                         unsigned jobs = 1);

    /**
     * Fast rehydration from a layout persisted in an OMSIMRUN v3 file:
     * skips the pass pipeline (and its whole-graph analyses) and only
     * re-solves the already-optimized layout. The layout must have been
     * produced by PassManager over this same snapshot (the v3 decoder
     * validates structural invariants; equivalence is the writer's
     * contract).
     */
    CompiledRun(const RunSnapshot &snap, opt::RunLayout layout,
                unsigned jobs = 1);

    /** @return false when even the baseline WAR overlay has a timing
     *  cycle (only reachable in lazy write-stall mode). */
    bool baselineAcyclic() const { return baselineAcyclic_; }

    /** @return baseline total latency (max node time + duration, max
     *  module tail, collapsed-node floor). */
    Cycles baselineTotalCycles() const { return baseTotal_; }

    /** @return node count of the original (pre-pass) structural graph. */
    std::size_t numNodes() const { return origNodes_; }

    /** @return original structural plus baseline-synthesized WAR edge
     *  count (the figure the engine reports as graphEdges). */
    std::size_t numEdges() const { return structuralEdges_ + baseWarEdges_; }

    /** @return the compiled layout (optimized graph, remap table, pass
     *  statistics). */
    const opt::RunLayout &layout() const { return lay_; }

    /** @return pass pipeline statistics for this run. */
    const opt::CompileStats &compileStats() const { return lay_.stats; }

    /**
     * Attempt an incremental re-finalization under new depths.
     * Thread-safe and allocation-bounded; never touches shared state.
     * Divergences are reported in original recorded-constraint indices
     * regardless of optimization level.
     *
     * @param depths one depth per FIFO (size == fifo count).
     * @param jobs   relaxation lanes (1 = serial, 0 = one per hardware
     *               thread). Only consulted when the layout carries a
     *               valid partition plan that admits the clamped probe
     *               and the design clears kParallelMinNodes; results
     *               are bit-identical at any value. Lanes beyond
     *               RelaxPool's ceiling, or when the team is already
     *               leased by a concurrent caller, degrade gracefully
     *               toward serial.
     */
    Attempt resimulate(const std::vector<std::uint32_t> &depths,
                       unsigned jobs = 1) const;

  private:
    /** Shared tail of every constructor: solve the layout. */
    void freeze(unsigned jobs);

    /** True when the layout carries a well-formed partition plan at
     *  all (freeze() additionally requires the baseline to admit
     *  before activating it). */
    bool planUsable() const
    {
        return lay_.part.valid && lay_.part.order.size() == lay_.numNodes;
    }

    /** True when a *clamped* probe may take the leveled relaxation
     *  paths: freeze() adopted the plan order as the cached rank and
     *  every probed depth clears its FIFO's minimum admissible depth.
     *  A pure function of the frozen structure and the probe, so path
     *  selection is identical in every replica of this run. */
    bool planAdmits(const std::vector<std::uint32_t> &clamped) const
    {
        return planActive_ && lay_.part.admits(clamped);
    }

    /** Clamp a probed depth vector into the per-FIFO lattice. */
    std::vector<std::uint32_t>
    clampDepths(const std::vector<std::uint32_t> &depths) const;

    /** Full Kahn relaxation over the CSR with WAR(depths) overlaid
     *  functionally; the topological order output is optional. Depths
     *  must already be clamped. */
    bool relaxFull(const std::vector<std::uint32_t> &depths,
                   std::vector<Cycles> &time,
                   std::vector<std::uint32_t> *order) const;

    /** Level-barrier full relaxation over the partition plan — the
     *  parallelizable equivalent of relaxFull for admitted probes
     *  (acyclic by the admission contract, so no return value). Wide
     *  levels fan out over the lease's lanes; an inactive lease runs
     *  serially. */
    void relaxLeveled(const std::vector<std::uint32_t> &depths,
                      std::vector<Cycles> &time,
                      const RelaxPool::Lease &lease) const;

    /** Delta worklist relaxation. @return false to request the full
     *  fallback (budget exceeded / possible cycle). Admitted probes
     *  take a level-synchronous single sweep (parallel recompute,
     *  serial in-order commit); others take the serial rank sweep. */
    bool relaxDelta(const std::vector<std::uint32_t> &depths,
                    const std::vector<std::size_t> &changedFifos,
                    std::vector<Cycles> &cur,
                    std::vector<std::uint8_t> &changedFlag,
                    std::vector<std::uint64_t> &changedNodes,
                    const RelaxPool::Lease &lease) const;

    /** Recompute one node's time from its in-edges under a time view. */
    Cycles recompute(std::uint64_t v, const std::vector<Cycles> &cur,
                     const std::vector<std::uint32_t> &depths) const;

    /** Evaluate kept constraint i against a time view + depths. */
    bool evalConstraint(std::size_t i, const std::vector<Cycles> &time,
                        const std::vector<std::uint32_t> &depths) const;

    /** Visit structural + WAR(depths) out-edges of node u. */
    template <typename F>
    void forEachOutOverlay(std::uint64_t u,
                           const std::vector<std::uint32_t> &depths,
                           F &&f) const;

    Attempt finishWithTimes(const std::vector<Cycles> &time,
                            const std::vector<std::uint32_t> &depths) const;

    // ---- Frozen structure (layout node ids throughout) --------------
    opt::RunLayout lay_;
    CsrGraph fwd_;                      ///< Structural out-edges.
    CsrGraph rev_;                      ///< Structural in-edges.
    std::vector<std::uint32_t> baseDepths_; ///< Clamped baseline.
    std::size_t origNodes_ = 0;
    std::size_t structuralEdges_ = 0;   ///< Original-graph count.
    std::size_t baseWarEdges_ = 0;      ///< Original-graph count.
    std::vector<std::uint32_t> indegStructural_;

    // ---- Baseline solution ------------------------------------------
    bool baselineAcyclic_ = false;
    /** freeze() adopted the partition plan's level order as the cached
     *  rank (requires planUsable() and a baseline that admits). */
    bool planActive_ = false;
    std::vector<Cycles> baseTime_;
    Cycles baseTotal_ = 0;
    std::vector<std::uint32_t> rank_;      ///< Cached topo position.
    std::vector<std::uint64_t> order_;     ///< Inverse of rank_.
    std::vector<std::uint64_t> byContrib_; ///< Nodes by desc time+dur.

    // ---- Constraint index (indices into lay_.cons) ------------------
    /** CSR map layout node -> kept constraints referencing it (as the
     *  query node or as its baseline target event). */
    std::vector<std::uint32_t> consOffsets_;
    std::vector<std::uint32_t> consIds_;
    /** Write-kind kept constraints per FIFO (their target read index
     *  moves with the depth, so a depth change affects all of them). */
    std::vector<std::vector<std::uint32_t>> writeConsByFifo_;
    /** Kept constraints whose baseline re-evaluation already differs
     *  from the recorded outcome (lazy-mode repairs), ascending. */
    std::vector<std::uint32_t> baselineDivergent_;
};

} // namespace omnisim

#endif // OMNISIM_GRAPH_COMPILED_RUN_HH
