/**
 * @file
 * Write-after-read edge synthesis. With FIFO depth S, the w-th write of a
 * FIFO may not occur until strictly after the (w-S)-th read (Table 2 of
 * the paper). These edges depend on the FIFO configuration, so neither
 * LightningSim's Phase 1 nor OmniSim's live engine stores them in the
 * structural graph: they are synthesized from the FIFO tables at analysis
 * time, which is what makes depth-only incremental re-simulation cheap.
 */

#ifndef OMNISIM_GRAPH_WAR_HH
#define OMNISIM_GRAPH_WAR_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/fifo_table.hh"
#include "support/types.hh"

namespace omnisim
{

/**
 * Emit one WAR edge per depth-constrained write.
 *
 * @param tables   per-FIFO commit tables holding node ids.
 * @param depths   per-FIFO capacities to analyze under.
 * @param add      callable add(srcNode, dstNode, weight).
 * @param eligible callable eligible(fifoIdx, writeIdx): true when the
 *        w-th committed write of the FIFO may legally *wait* for space.
 *        Only blocking writes do; a committed non-blocking write never
 *        stalls — its success is instead governed by the recorded §7.2
 *        constraint — and giving it a WAR edge would let incremental
 *        re-simulation delay the attempt under new depths and miss the
 *        outcome flip (the control-flow divergence) entirely.
 */
template <typename AddEdge, typename Eligible>
void
synthesizeWarEdges(const std::vector<FifoTable> &tables,
                   const std::vector<std::uint32_t> &depths, AddEdge &&add,
                   Eligible &&eligible)
{
    for (std::size_t f = 0; f < tables.size(); ++f) {
        const FifoTable &t = tables[f];
        const std::uint32_t s = depths[f];
        for (std::uint32_t w = s + 1; w <= t.writes(); ++w) {
            // Reads beyond the recorded count cannot constrain anything.
            if (w - s <= t.reads() && eligible(f, w))
                add(t.readNodeOf(w - s), t.writeNodeOf(w), Cycles{1});
        }
    }
}

/** synthesizeWarEdges with every write eligible (engines whose writes
 *  are all blocking — LightningSim's Type A traces — and graph tests). */
template <typename AddEdge>
void
synthesizeWarEdges(const std::vector<FifoTable> &tables,
                   const std::vector<std::uint32_t> &depths, AddEdge &&add)
{
    synthesizeWarEdges(tables, depths, std::forward<AddEdge>(add),
                       [](std::size_t, std::uint32_t) { return true; });
}

} // namespace omnisim

#endif // OMNISIM_GRAPH_WAR_HH
