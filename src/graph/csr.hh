/**
 * @file
 * Compressed-sparse-row graph, the representation LightningSimV2 uses for
 * its (fully constructed) simulation graph. Built once from an edge list;
 * very fast to traverse, but cannot grow — the contrast with SimGraph is
 * the subject of the §7.3.1 discussion and of bench/micro_graph.
 */

#ifndef OMNISIM_GRAPH_CSR_HH
#define OMNISIM_GRAPH_CSR_HH

#include <cstdint>
#include <vector>

#include "support/types.hh"

namespace omnisim
{

/** Immutable CSR weighted digraph. */
class CsrGraph
{
  public:
    using NodeId = std::uint64_t;

    /** One edge of the construction list. */
    struct EdgeSpec
    {
        NodeId src = 0;
        NodeId dst = 0;
        Cycles weight = 0;
    };

    /** Build from an edge list over num_nodes nodes (counting sort). */
    CsrGraph(std::size_t num_nodes, const std::vector<EdgeSpec> &edges);

    /** @return number of nodes. */
    std::size_t numNodes() const { return offsets_.size() - 1; }

    /** @return number of edges. */
    std::size_t numEdges() const { return targets_.size(); }

    /** Visit every out-edge of node n as f(dst, weight). */
    template <typename F>
    void
    forEachOut(NodeId n, F &&f) const
    {
        for (std::size_t e = offsets_[n]; e < offsets_[n + 1]; ++e)
            f(targets_[e], weights_[e]);
    }

  private:
    std::vector<std::size_t> offsets_;
    std::vector<NodeId> targets_;
    std::vector<Cycles> weights_;
};

} // namespace omnisim

#endif // OMNISIM_GRAPH_CSR_HH
