/**
 * @file
 * The OmniSim simulation graph (§7.3.1 of the paper).
 *
 * Nodes are timed events (FIFO accesses, NB attempts, status checks, AXI
 * beats, module entries); weighted edges are timing constraints
 * (dst.time >= src.time + weight). OmniSim must traverse the *partial*
 * graph continuously while it is still being built, so instead of
 * LightningSim's CSR format the graph stores one edge inline with each
 * node (most nodes have exactly one structural predecessor edge — program
 * order) and spills additional edges into a shared pool. This gives
 * zero-copy traversal of the incomplete graph with minimal pointer
 * chasing, exactly as the paper describes.
 */

#ifndef OMNISIM_GRAPH_SIMGRAPH_HH
#define OMNISIM_GRAPH_SIMGRAPH_HH

#include <cstdint>
#include <vector>

#include "runtime/event.hh"
#include "support/types.hh"

namespace omnisim
{

/** Payload describing what a simulation-graph node represents. */
struct NodeInfo
{
    EventKind kind = EventKind::TraceBlock;
    ModuleId module = invalidId;
    std::int32_t channel = invalidId; ///< FIFO/AXI id when applicable.
    std::uint32_t index = 0;          ///< 1-based access index (Table 2).
    Cycles duration = 0;              ///< Cycles the event occupies.
};

/**
 * Growable weighted DAG with inline-first-edge adjacency storage.
 *
 * Edges point from a constraint source to the constrained node
 * (dst.time >= src.time + weight). Edge insertion is O(1); out-edge
 * iteration touches the inline slot first and only then the overflow pool.
 */
class SimGraph
{
  public:
    using NodeId = std::uint64_t;

    /** Add a node; returns its id. Times are tracked by the caller. */
    NodeId addNode(const NodeInfo &info);

    /** Add a constraint edge src -> dst with the given weight. */
    void addEdge(NodeId src, NodeId dst, Cycles weight);

    /** @return number of nodes. */
    std::size_t numNodes() const { return nodes_.size(); }

    /** @return number of edges. */
    std::size_t numEdges() const { return numEdges_; }

    /** @return payload of a node. */
    const NodeInfo &info(NodeId n) const { return nodes_[n].info; }

    /**
     * Visit every out-edge of node n as f(dst, weight).
     * Safe to call while the graph is still growing (zero-copy traversal
     * of the partial graph).
     */
    template <typename F>
    void
    forEachOut(NodeId n, F &&f) const
    {
        const Node &node = nodes_[n];
        if (node.firstDst >= 0)
            f(static_cast<NodeId>(node.firstDst), node.firstWeight);
        for (std::int64_t e = node.overflowHead; e >= 0;
             e = pool_[static_cast<std::size_t>(e)].next) {
            const Edge &edge = pool_[static_cast<std::size_t>(e)];
            f(static_cast<NodeId>(edge.dst), edge.weight);
        }
    }

    /** Reserve node storage up front (graph construction optimization). */
    void reserve(std::size_t nodes, std::size_t overflow_edges);

  private:
    struct Node
    {
        NodeInfo info;
        std::int64_t firstDst = -1;
        Cycles firstWeight = 0;
        std::int64_t overflowHead = -1;
    };

    struct Edge
    {
        std::int64_t dst = -1;
        Cycles weight = 0;
        std::int64_t next = -1;
    };

    std::vector<Node> nodes_;
    std::vector<Edge> pool_;
    std::size_t numEdges_ = 0;
};

} // namespace omnisim

#endif // OMNISIM_GRAPH_SIMGRAPH_HH
