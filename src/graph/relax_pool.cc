#include "graph/relax_pool.hh"

#include <algorithm>

#include "obs/log.hh"
#include "obs/metrics.hh"

namespace omnisim
{

RelaxPool &
RelaxPool::global()
{
    static RelaxPool pool;
    return pool;
}

RelaxPool::~RelaxPool()
{
    {
        sync::LockGuard lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
RelaxPool::ensureHelpersLocked(unsigned want)
{
    want = std::min(want, kMaxHelpers);
    while (threads_.size() < want) {
        const unsigned idx = static_cast<unsigned>(threads_.size());
        threads_.emplace_back([this, idx] { workerMain(idx); });
    }
}

RelaxPool::Lease
RelaxPool::tryAcquire(unsigned jobs)
{
    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    if (jobs < 2)
        return {};
    bool expected = false;
    if (!busy_.compare_exchange_strong(expected, true,
                                       std::memory_order_acquire)) {
        OMNISIM_LOG_TRACE("relax.pool.contended",
                          "lease busy; falling back to serial");
        return {};
    }
    unsigned helpers = std::min(jobs - 1, kMaxHelpers);
    {
        sync::LockGuard lk(mu_);
        ensureHelpersLocked(helpers);
        helpers = std::min<unsigned>(
            helpers, static_cast<unsigned>(threads_.size()));
    }
    leaseCid_.store(obs::currentCorrelationId(), std::memory_order_relaxed);
    OMNISIM_LOG_TRACE("relax.pool.lease", "lanes=%u", 1 + helpers);
    return Lease(this, 1 + helpers);
}

void
RelaxPool::Lease::release()
{
    if (pool_ != nullptr) {
        pool_->leaseCid_.store(0, std::memory_order_relaxed);
        pool_->busy_.store(false, std::memory_order_release);
    }
    pool_ = nullptr;
    lanes_ = 1;
}

void
RelaxPool::Lease::parallelFor(std::size_t n, std::size_t grain,
                              const RangeFn &fn) const
{
    if (n == 0)
        return;
    if (!active()) {
        fn(0, n);
        return;
    }
    pool_->run(fn, n, grain, lanes_);
}

void
RelaxPool::run(const RangeFn &fn, std::size_t n, std::size_t grain,
               unsigned lanes)
{
    grain = std::max<std::size_t>(grain, 1);
    const unsigned helpers = std::min(
        lanes - 1, static_cast<unsigned>(threads_.size()));
    if (helpers == 0 || n <= grain) {
        fn(0, n);
        return;
    }
    cursor_.store(0, std::memory_order_relaxed);
    {
        sync::LockGuard lk(mu_);
        taskFn_ = &fn;
        taskN_ = n;
        taskGrain_ = grain;
        helpersWanted_ = helpers;
        pendingHelpers_ = helpers;
        ++epoch_;
    }
    cv_.notify_all();
    runChunks(fn, n, grain, /*helper=*/false);
    {
        sync::UniqueLock lk(mu_);
        while (pendingHelpers_ != 0)
            doneCv_.wait(lk);
        taskFn_ = nullptr;
        helpersWanted_ = 0;
    }
}

void
RelaxPool::runChunks(const RangeFn &fn, std::size_t n, std::size_t grain,
                     bool helper)
{
    static obs::Counter &mSteals =
        obs::Registry::global().counter("relax.pool.steals");
    // Chunk claims are the engine's innermost work-distribution loop;
    // one aggregate event per lane keeps them observable without
    // paying a format + ring record per claim.
    std::size_t chunks = 0;
    std::size_t first = n;
    for (;;) {
        const std::size_t b =
            cursor_.fetch_add(grain, std::memory_order_relaxed);
        if (b >= n)
            break;
        if (chunks++ == 0)
            first = b;
        fn(b, std::min(n, b + grain));
        if (helper)
            mSteals.add();
    }
    if (chunks > 0)
        OMNISIM_LOG_TRACE("relax.pool.chunks",
                          "claimed=%zu first=%zu grain=%zu helper=%d",
                          chunks, first, grain, helper ? 1 : 0);
}

void
RelaxPool::workerMain(unsigned idx)
{
    std::uint64_t seen = 0;
    sync::UniqueLock lk(mu_);
    for (;;) {
        while (!stop_ && epoch_ == seen)
            cv_.wait(lk);
        if (stop_)
            return;
        seen = epoch_;
        if (idx >= helpersWanted_)
            continue;
        const RangeFn *fn = taskFn_;
        const std::size_t n = taskN_;
        const std::size_t grain = taskGrain_;
        lk.unlock();
        {
            // Adopt the leaseholder's correlation id for this epoch.
            obs::CorrelationScope cscope(
                leaseCid_.load(std::memory_order_relaxed));
            runChunks(*fn, n, grain, /*helper=*/true);
        }
        lk.lock();
        if (--pendingHelpers_ == 0)
            doneCv_.notify_all();
    }
}

} // namespace omnisim
