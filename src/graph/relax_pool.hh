/**
 * @file
 * RelaxPool: the reusable worker team behind partitioned parallel
 * relaxation.
 *
 * One process-wide team of helper threads serves every CompiledRun. A
 * caller try-acquires the team for the duration of one relaxation
 * (simulate freeze or a resimulate probe); while held, Lease::parallelFor
 * fans a level's cones out across the lanes with the caller
 * participating. The acquire is non-blocking on purpose: when the team
 * is already leased (EvalCache workers, the serve pool, and batch lanes
 * all probe concurrently) the caller simply gets an inactive lease and
 * relaxes serially — parallelism across runs already owns the cores, so
 * stacking nested parallelism on top would only oversubscribe.
 *
 * Determinism note: parallelFor only partitions index ranges; the
 * engine keeps every order-sensitive decision (commit order, budget
 * checks) on the caller thread, so results are bit-identical at any
 * lane count.
 */

#ifndef OMNISIM_GRAPH_RELAX_POOL_HH
#define OMNISIM_GRAPH_RELAX_POOL_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "obs/context.hh"
#include "support/sync.hh"

namespace omnisim
{

class RelaxPool
{
public:
    /** Range task: process layout indices [begin, end). */
    using RangeFn = std::function<void(std::size_t, std::size_t)>;

    /** Helper-thread ceiling (lanes = helpers + the caller). */
    static constexpr unsigned kMaxHelpers = 15;

    /**
     * RAII hold on the team. Inactive leases (default-constructed, or
     * when tryAcquire lost the race / jobs < 2) run parallelFor inline
     * on the caller — callers never branch on activity themselves.
     */
    class Lease
    {
    public:
        Lease() = default;
        Lease(Lease &&other) noexcept
            : pool_(other.pool_), lanes_(other.lanes_)
        {
            other.pool_ = nullptr;
            other.lanes_ = 1;
        }
        Lease &operator=(Lease &&other) noexcept
        {
            if (this != &other) {
                release();
                pool_ = other.pool_;
                lanes_ = other.lanes_;
                other.pool_ = nullptr;
                other.lanes_ = 1;
            }
            return *this;
        }
        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        ~Lease() { release(); }

        bool active() const { return pool_ != nullptr && lanes_ > 1; }
        unsigned lanes() const { return lanes_; }

        /** Run fn over [0, n) in chunks of at most `grain` indices.
         *  Blocks until every chunk completed; chunks are claimed
         *  dynamically by the caller + helper lanes. Inactive lease:
         *  one inline fn(0, n) call. */
        void parallelFor(std::size_t n, std::size_t grain,
                         const RangeFn &fn) const;

    private:
        friend class RelaxPool;
        Lease(RelaxPool *pool, unsigned lanes)
            : pool_(pool), lanes_(lanes)
        {
        }
        void release();

        RelaxPool *pool_ = nullptr;
        unsigned lanes_ = 1;
    };

    /** The process-wide team. */
    static RelaxPool &global();

    /**
     * Try to lease the team with `jobs` total lanes (0 = one per
     * hardware thread). Returns an inactive lease when jobs < 2 or the
     * team is already held. Helper threads are created lazily, up to
     * kMaxHelpers, and may exceed the hardware count when explicitly
     * requested (thread-count bit-identity tests rely on that).
     */
    Lease tryAcquire(unsigned jobs);

    ~RelaxPool();

private:
    RelaxPool() = default;

    void run(const RangeFn &fn, std::size_t n, std::size_t grain,
             unsigned lanes) OMNISIM_EXCLUDES(mu_);
    void runChunks(const RangeFn &fn, std::size_t n, std::size_t grain,
                   bool helper) OMNISIM_EXCLUDES(mu_);
    void ensureHelpersLocked(unsigned want) OMNISIM_REQUIRES(mu_);
    void workerMain(unsigned idx) OMNISIM_EXCLUDES(mu_);

    std::atomic<bool> busy_{false};

    sync::Mutex mu_;
    sync::CondVar cv_;     ///< Dispatch: epoch changed / stop.
    sync::CondVar doneCv_; ///< Completion barrier.

    /// Grown only inside ensureHelpersLocked (under mu_), but *read*
    /// lock-free by the leaseholder in run() and by the join loop in the
    /// destructor: growth is serialized against both by the busy_ lease
    /// flag, which mu_ does not model — so deliberately not GUARDED_BY.
    std::vector<std::thread> threads_;

    bool stop_ OMNISIM_GUARDED_BY(mu_) = false;

    // Current task, published under mu_ before the epoch bump.
    const RangeFn *taskFn_ OMNISIM_GUARDED_BY(mu_) = nullptr;
    std::size_t taskN_ OMNISIM_GUARDED_BY(mu_) = 0;
    std::size_t taskGrain_ OMNISIM_GUARDED_BY(mu_) = 1;
    unsigned helpersWanted_ OMNISIM_GUARDED_BY(mu_) = 0;
    unsigned pendingHelpers_ OMNISIM_GUARDED_BY(mu_) = 0;
    std::uint64_t epoch_ OMNISIM_GUARDED_BY(mu_) = 0;

    std::atomic<std::size_t> cursor_{0}; ///< Next unclaimed index.

    /// Correlation id of the current leaseholder. Helper lanes adopt it
    /// for the duration of each dispatched epoch so the events and
    /// spans they emit stitch to the leasing request.
    std::atomic<obs::CorrelationId> leaseCid_{0};
};

} // namespace omnisim

#endif // OMNISIM_GRAPH_RELAX_POOL_HH
