#include "graph/csr.hh"

#include "support/logging.hh"

namespace omnisim
{

CsrGraph::CsrGraph(std::size_t num_nodes,
                   const std::vector<EdgeSpec> &edges)
    : offsets_(num_nodes + 1, 0),
      targets_(edges.size()),
      weights_(edges.size())
{
    for (const auto &e : edges) {
        omnisim_assert(e.src < num_nodes && e.dst < num_nodes,
                       "CSR edge out of range");
        ++offsets_[e.src + 1];
    }
    for (std::size_t i = 1; i <= num_nodes; ++i)
        offsets_[i] += offsets_[i - 1];

    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const auto &e : edges) {
        const std::size_t slot = cursor[e.src]++;
        targets_[slot] = e.dst;
        weights_[slot] = e.weight;
    }
}

} // namespace omnisim
