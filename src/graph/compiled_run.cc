#include "graph/compiled_run.hh"

#include <algorithm>

#include "core/omnisim.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "opt/partition.hh"
#include "opt/pass_manager.hh"
#include "support/logging.hh"

namespace omnisim
{

namespace
{

/** Reversed copy of an edge list (for the in-edge CSR). */
std::vector<CsrGraph::EdgeSpec>
reverseEdges(const std::vector<CsrGraph::EdgeSpec> &edges)
{
    std::vector<CsrGraph::EdgeSpec> out;
    out.reserve(edges.size());
    for (const auto &e : edges)
        out.push_back({e.dst, e.src, e.weight});
    return out;
}

/** Adapter exposing the layout CSR with WAR(depths) overlaid, in the
 *  shape longestPath() expects. Depths must be pre-clamped. */
struct OverlayView
{
    const CsrGraph &fwd;
    const opt::RunLayout &lay;
    const std::vector<std::uint32_t> &depths;

    std::size_t numNodes() const { return fwd.numNodes(); }

    template <typename F>
    void
    forEachOut(std::uint64_t u, F &&f) const
    {
        fwd.forEachOut(u, f);
        const std::int32_t ff = lay.accFifo[u];
        if (ff >= 0 && !lay.accWrite[u]) {
            // u is the r-th read of FIFO ff: under depth s it releases
            // the (r + s)-th write (Table 2 row 2 / war.hh) — if that
            // write may wait at all (blocking only) and wasn't proven
            // irrelevant by the lattice prune.
            const opt::FifoLayout &fl =
                lay.fifos[static_cast<std::size_t>(ff)];
            const std::uint64_t w =
                static_cast<std::uint64_t>(lay.accIdx[u]) +
                depths[static_cast<std::size_t>(ff)];
            if (w <= fl.writeNode.size()) {
                const std::uint32_t dst =
                    fl.writeNode[static_cast<std::size_t>(w - 1)];
                if (dst != opt::kNoNode && lay.accBlockingWrite[dst])
                    f(dst, Cycles{1});
            }
        }
    }
};

/** Original-graph baseline WAR edge count (the engine's graphEdges
 *  stat keeps pre-pass semantics at every opt level). */
std::size_t
countBaseWarEdges(const std::vector<NodeInfo> &nodes,
                  const std::vector<FifoTable> &tables,
                  const std::vector<std::uint32_t> &depths)
{
    std::size_t count = 0;
    for (std::size_t f = 0; f < tables.size(); ++f) {
        const FifoTable &t = tables[f];
        const std::uint64_t s = depths[f];
        for (std::uint64_t w = s + 1; w <= t.writes(); ++w) {
            if (w - s > t.reads())
                continue;
            const std::uint64_t v =
                t.writeNodeOf(static_cast<std::uint32_t>(w));
            if (nodes[v].kind == EventKind::FifoWrite)
                ++count;
        }
    }
    return count;
}

} // namespace

template <typename F>
void
CompiledRun::forEachOutOverlay(std::uint64_t u,
                               const std::vector<std::uint32_t> &depths,
                               F &&f) const
{
    OverlayView{fwd_, lay_, depths}.forEachOut(u, f);
}

CompiledRun::CompiledRun(const std::vector<NodeInfo> &nodes,
                         const std::vector<CsrGraph::EdgeSpec> &structural,
                         const std::vector<Cycles> &seed,
                         const std::vector<FifoTable> &tables,
                         std::vector<std::uint32_t> baseDepths,
                         const std::vector<QueryRecord> &constraints,
                         std::vector<std::uint64_t> tailNode,
                         std::vector<Cycles> tailSlack,
                         opt::OptLevel level, unsigned jobs)
    : fwd_(0, {}), rev_(0, {})
{
    omnisim_assert(seed.size() == nodes.size(),
                   "compiled run: seed/node mismatch");
    omnisim_assert(baseDepths.size() == tables.size(),
                   "compiled run: depth/table mismatch");

    opt::LayoutInput in;
    in.nodes = &nodes;
    in.edges = &structural;
    in.seed = &seed;
    in.tables = &tables;
    in.depths = &baseDepths;
    in.constraints = &constraints;
    in.tailNode = &tailNode;
    in.tailSlack = &tailSlack;
    lay_ = opt::PassManager(level).compile(in);

    origNodes_ = nodes.size();
    structuralEdges_ = structural.size();
    baseWarEdges_ = countBaseWarEdges(nodes, tables, baseDepths);
    baseDepths_ = clampDepths(baseDepths);
    freeze(jobs);
}

CompiledRun::CompiledRun(const RunSnapshot &snap, opt::OptLevel level,
                         unsigned jobs)
    : CompiledRun(snap.nodes, snap.edges, snap.seed, snap.tables,
                  snap.depths, snap.constraints, snap.tailNode,
                  snap.tailSlack, level, jobs)
{}

CompiledRun::CompiledRun(const RunSnapshot &snap, opt::RunLayout layout,
                         unsigned jobs)
    : lay_(std::move(layout)), fwd_(0, {}), rev_(0, {})
{
    origNodes_ = snap.nodes.size();
    structuralEdges_ = snap.edges.size();
    baseWarEdges_ =
        countBaseWarEdges(snap.nodes, snap.tables, snap.depths);
    baseDepths_ = clampDepths(snap.depths);
    freeze(jobs);
}

std::vector<std::uint32_t>
CompiledRun::clampDepths(const std::vector<std::uint32_t> &depths) const
{
    omnisim_assert(depths.size() == lay_.fifos.size(),
                   "depth vector size mismatch");
    std::vector<std::uint32_t> clamped(depths.size());
    for (std::size_t f = 0; f < depths.size(); ++f)
        clamped[f] = std::min(depths[f], lay_.fifos[f].cap);
    return clamped;
}

void
CompiledRun::freeze(unsigned jobs)
{
    const std::size_t n = lay_.numNodes;
    fwd_ = CsrGraph(n, lay_.edges);
    rev_ = CsrGraph(n, reverseEdges(lay_.edges));

    indegStructural_.assign(n, 0);
    for (std::size_t u = 0; u < n; ++u)
        fwd_.forEachOut(u,
                        [&](std::uint64_t v, Cycles) {
                            ++indegStructural_[v];
                        });

    if (planUsable() && lay_.part.admits(baseDepths_)) {
        // Partitioned freeze: the plan levelized structural + WAR at
        // the clamped baseline (acyclic, or it would not be valid) and
        // the baseline clears every FIFO's minimum admissible depth, so
        // the level order is topological for the baseline overlay: the
        // plan order doubles as the cached rank and the baseline solve
        // itself can fan out over the worker team. Probes are admitted
        // per call against the same thresholds (planAdmits).
        planActive_ = true;
        order_.assign(n, 0);
        rank_.assign(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
            order_[i] = lay_.part.order[i];
            rank_[lay_.part.order[i]] = static_cast<std::uint32_t>(i);
        }
        baselineAcyclic_ = true;
        RelaxPool::Lease lease;
        if (n >= kParallelMinNodes)
            lease = RelaxPool::global().tryAcquire(jobs);
        relaxLeveled(baseDepths_, baseTime_, lease);
    } else {
        // Baseline solve, keeping the topological order.
        std::vector<std::uint32_t> order;
        baselineAcyclic_ = relaxFull(baseDepths_, baseTime_, &order);
        if (!baselineAcyclic_)
            return; // engine reports a deadlock; nothing else is needed

        // Worklist priority: prefer the topological order of the
        // *maximally constrained* overlay (every depth 1). Any WAR(s)
        // edge read(w-s) -> write(w) is transitively implied there
        // (earlier reads chain forward to read(w-1), whose WAR(1) edge
        // reaches the write), so this order stays valid for every
        // probe-able depth vector and the delta pass converges in one
        // sweep even when a FIFO shrinks. When depth-1 is globally
        // infeasible (cyclic) the baseline order is used instead — then
        // shallowing probes may re-queue across the order, which still
        // converges on a DAG and is bounded by the pop budget. Either
        // way correctness is unaffected: rank is a scheduling
        // heuristic, never a dependence statement.
        {
            const std::vector<std::uint32_t> ones(lay_.fifos.size(), 1);
            std::vector<Cycles> scratch;
            std::vector<std::uint32_t> tight;
            if (relaxFull(ones, scratch, &tight))
                order = std::move(tight);
        }
        rank_.assign(n, 0);
        order_.assign(n, 0);
        for (std::size_t i = 0; i < order.size(); ++i) {
            rank_[order[i]] = static_cast<std::uint32_t>(i);
            order_[i] = order[i];
        }
    }

    baseTotal_ = lay_.floor;
    for (std::size_t v = 0; v < n; ++v)
        baseTotal_ = std::max(baseTotal_, baseTime_[v] + lay_.dur[v]);

    byContrib_.resize(n);
    for (std::size_t v = 0; v < n; ++v)
        byContrib_[v] = v;
    std::sort(byContrib_.begin(), byContrib_.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                  const Cycles ca = baseTime_[a] + lay_.dur[a];
                  const Cycles cb = baseTime_[b] + lay_.dur[b];
                  if (ca != cb)
                      return ca > cb;
                  return a < b;
              });

    // Constraint index: per-node reference lists (query node + baseline
    // target node), per-FIFO write-kind lists, and the baseline-divergent
    // set (constraints whose recomputed outcome already differs from the
    // live one — possible under lazy write stalls).
    const std::size_t nc = lay_.cons.size();
    writeConsByFifo_.assign(lay_.fifos.size(), {});
    std::vector<std::uint32_t> counts(n + 1, 0);
    auto forEachRefNode = [&](std::size_t i, auto &&visit) {
        const opt::LayoutCons &c = lay_.cons[i];
        visit(c.node);
        const opt::FifoLayout &fl = lay_.fifos[c.fifo];
        switch (c.kind) {
          case EventKind::FifoNbRead:
          case EventKind::FifoCanRead:
            if (c.index <= fl.writeNode.size() &&
                fl.writeNode[c.index - 1] != opt::kNoNode)
                visit(fl.writeNode[c.index - 1]);
            break;
          case EventKind::FifoNbWrite:
          case EventKind::FifoCanWrite: {
            const std::uint32_t s = baseDepths_[c.fifo];
            if (c.index > s && c.index - s <= fl.readNode.size() &&
                fl.readNode[c.index - s - 1] != opt::kNoNode)
                visit(fl.readNode[c.index - s - 1]);
            break;
          }
          default:
            omnisim_panic("bad constraint kind");
        }
    };
    for (std::size_t i = 0; i < nc; ++i) {
        const opt::LayoutCons &c = lay_.cons[i];
        if (c.kind == EventKind::FifoNbWrite ||
            c.kind == EventKind::FifoCanWrite)
            writeConsByFifo_[c.fifo].push_back(
                static_cast<std::uint32_t>(i));
        forEachRefNode(i, [&](std::uint64_t v) { ++counts[v + 1]; });
        if (evalConstraint(i, baseTime_, baseDepths_) != c.outcome)
            baselineDivergent_.push_back(static_cast<std::uint32_t>(i));
    }
    for (std::size_t v = 1; v <= n; ++v)
        counts[v] += counts[v - 1];
    consOffsets_ = counts;
    consIds_.resize(counts[n]);
    std::vector<std::uint32_t> cursor(counts.begin(), counts.end() - 1);
    for (std::size_t i = 0; i < nc; ++i)
        forEachRefNode(i, [&](std::uint64_t v) {
            consIds_[cursor[v]++] = static_cast<std::uint32_t>(i);
        });
}

bool
CompiledRun::relaxFull(const std::vector<std::uint32_t> &depths,
                       std::vector<Cycles> &time,
                       std::vector<std::uint32_t> *order) const
{
    const std::size_t n = lay_.numNodes;
    const OverlayView view{fwd_, lay_, depths};

    // Kahn over the overlay. The structural indegrees are precomputed;
    // only the depth-dependent WAR contributions are added per call, so
    // the full pass never re-walks the edge list just to count.
    time = lay_.seed;
    std::vector<std::uint32_t> indeg = indegStructural_;
    for (std::size_t f = 0; f < lay_.fifos.size(); ++f) {
        const opt::FifoLayout &fl = lay_.fifos[f];
        const std::uint64_t s = depths[f];
        for (std::uint64_t w = s + 1; w <= fl.writeNode.size(); ++w) {
            // Must mirror OverlayView emission exactly: a pruned read
            // *or* write endpoint means no edge, hence no indegree.
            if (w - s > fl.readNode.size() ||
                fl.readNode[static_cast<std::size_t>(w - s - 1)] ==
                    opt::kNoNode)
                continue;
            const std::uint32_t v =
                fl.writeNode[static_cast<std::size_t>(w - 1)];
            if (v != opt::kNoNode && lay_.accBlockingWrite[v])
                ++indeg[v];
        }
    }
    if (order) {
        order->clear();
        order->reserve(n);
    }
    std::vector<std::uint64_t> ready;
    ready.reserve(64);
    for (std::size_t u = 0; u < n; ++u)
        if (indeg[u] == 0)
            ready.push_back(u);
    std::size_t processed = 0;
    while (!ready.empty()) {
        const std::uint64_t u = ready.back();
        ready.pop_back();
        ++processed;
        if (order)
            order->push_back(static_cast<std::uint32_t>(u));
        view.forEachOut(u, [&](std::uint64_t v, Cycles w) {
            if (time[u] + w > time[v])
                time[v] = time[u] + w;
            if (--indeg[v] == 0)
                ready.push_back(v);
        });
    }
    return processed == n;
}

void
CompiledRun::relaxLeveled(const std::vector<std::uint32_t> &depths,
                          std::vector<Cycles> &time,
                          const RelaxPool::Lease &lease) const
{
    const opt::PartitionPlan &plan = lay_.part;
    const auto &lo = plan.levelOffsets;
    const auto &co = plan.coneOffsets;
    time.assign(lay_.numNodes, 0);

    // Every in-edge of a level-l node — structural or WAR at the
    // clamped depth — originates strictly below l, so recompute() only
    // reads finalized entries and each lane writes disjoint time[]
    // slots: no atomics, bit-identical at any lane count.
    std::size_t cone = 0; // level boundaries are cone boundaries
    const std::uint32_t levels = plan.levels();
    for (std::uint32_t l = 0; l < levels; ++l) {
        const std::uint32_t lb = lo[l];
        const std::uint32_t le = lo[l + 1];
        std::size_t coneEnd = cone;
        while (co[coneEnd] < le)
            ++coneEnd;
        if (lease.active() && le - lb >= kMinParallelLevelWidth &&
            coneEnd - cone > 1) {
            OMNISIM_SPAN_HOT("relax.level");
            const std::size_t cb = cone;
            lease.parallelFor(
                coneEnd - cone, 1,
                [&](std::size_t b, std::size_t e) {
                    for (std::size_t c = b; c < e; ++c)
                        for (std::uint32_t i = co[cb + c];
                             i < co[cb + c + 1]; ++i) {
                            const std::uint64_t v = order_[i];
                            time[v] = recompute(v, time, depths);
                        }
                });
        } else {
            for (std::uint32_t i = lb; i < le; ++i) {
                const std::uint64_t v = order_[i];
                time[v] = recompute(v, time, depths);
            }
        }
        cone = coneEnd;
    }
}

Cycles
CompiledRun::recompute(std::uint64_t v, const std::vector<Cycles> &cur,
                       const std::vector<std::uint32_t> &depths) const
{
    Cycles t = lay_.seed[v];
    rev_.forEachOut(v, [&](std::uint64_t src, Cycles w) {
        t = std::max(t, cur[src] + w);
    });
    if (lay_.accFifo[v] >= 0 && lay_.accBlockingWrite[v]) {
        // v is the w-th *blocking* write of its FIFO: under depth s it
        // waits for the (w - s)-th read.
        const auto f = static_cast<std::size_t>(lay_.accFifo[v]);
        const opt::FifoLayout &fl = lay_.fifos[f];
        const std::uint32_t w = lay_.accIdx[v];
        const std::uint32_t s = depths[f];
        if (w > s && w - s <= fl.readNode.size()) {
            const std::uint32_t rn = fl.readNode[w - s - 1];
            // A pruned read entry can only source WAR edges the
            // lattice analysis proved can never bind.
            if (rn != opt::kNoNode)
                t = std::max(t, cur[rn] + 1);
        }
    }
    return t;
}

bool
CompiledRun::relaxDelta(const std::vector<std::uint32_t> &depths,
                        const std::vector<std::size_t> &changedFifos,
                        std::vector<Cycles> &cur,
                        std::vector<std::uint8_t> &changedFlag,
                        std::vector<std::uint64_t> &changedNodes,
                        const RelaxPool::Lease &lease) const
{
    const std::size_t n = lay_.numNodes;

    // A FIFO shrinking well below its recorded depth newly constrains
    // nearly every write it carried; the resulting cone is routinely a
    // third of the graph, and per-node recomputation (random-access
    // in-edge scans) then loses to one streaming Kahn pass. Predict
    // that case from the binding-write count and skip straight to the
    // full pass.
    std::size_t shrinkBound = 0;
    for (const std::size_t f : changedFifos) {
        const opt::FifoLayout &fl = lay_.fifos[f];
        if (depths[f] < baseDepths_[f] &&
            fl.writeNode.size() > depths[f])
            shrinkBound +=
                std::min<std::size_t>(fl.blockingWrites,
                                      fl.writeNode.size() - depths[f]);
    }
    if (shrinkBound > n / 16)
        return false;

    // Seed: every write whose WAR in-edge is added, removed, or
    // re-sourced by a changed depth. Beyond half the graph the full
    // pass is no slower — bail before paying for the scratch.
    std::vector<std::uint64_t> seeds;
    for (const std::size_t f : changedFifos) {
        const opt::FifoLayout &fl = lay_.fifos[f];
        const std::uint32_t lo = std::min(baseDepths_[f], depths[f]);
        for (std::uint64_t w = static_cast<std::uint64_t>(lo) + 1;
             w <= fl.writeNode.size(); ++w) {
            const std::uint32_t v =
                fl.writeNode[static_cast<std::size_t>(w - 1)];
            if (v == opt::kNoNode || !lay_.accBlockingWrite[v])
                continue; // NB or pruned writes never gain an edge
            seeds.push_back(v);
            if (seeds.size() > n / 2)
                return false;
        }
    }

    cur = baseTime_;
    changedFlag.assign(n, 0);
    // Pending markers are indexed by *rank* so the sweep below scans
    // them sequentially — the cache-friendliness is what lets a probe
    // whose cone is a third of the graph still beat a full pass.
    std::vector<std::uint8_t> pendingAt(n, 0);
    std::size_t minPos = n;
    for (const std::uint64_t v : seeds) {
        const std::size_t p = rank_[v];
        if (!pendingAt[p]) {
            pendingAt[p] = 1;
            minPos = std::min(minPos, p);
        }
    }

    if (planAdmits(depths)) {
        // Level-synchronous single sweep. The cached rank is the plan
        // order, so positions group by level and — the probe being
        // admitted — every out-overlay edge lands strictly level-up:
        // one pass reaches the fixed point and
        // no pending marker can fall behind the sweep. Recomputation of
        // a level's pending batch is data-parallel (reads settle in
        // earlier levels only); the commit — compare, changed-cone
        // budget, successor marking — stays on the caller thread in
        // ascending position order, so the decision sequence is
        // byte-for-byte the serial one at any lane count.
        const auto &lo = lay_.part.levelOffsets;
        const std::uint32_t levels = lay_.part.levels();
        std::uint32_t l = 0;
        while (l < levels && lo[l + 1] <= minPos)
            ++l;
        std::vector<std::uint32_t> batch;
        std::vector<Cycles> newT;
        for (; l < levels; ++l) {
            batch.clear();
            for (std::uint32_t i = lo[l]; i < lo[l + 1]; ++i) {
                if (pendingAt[i]) {
                    pendingAt[i] = 0;
                    batch.push_back(i);
                }
            }
            if (batch.empty())
                continue;
            newT.resize(batch.size());
            const auto recomputeBatch = [&](std::size_t b,
                                            std::size_t e) {
                for (std::size_t k = b; k < e; ++k)
                    newT[k] =
                        recompute(order_[batch[k]], cur, depths);
            };
            if (lease.active() &&
                batch.size() >= kMinParallelLevelWidth)
                lease.parallelFor(batch.size(), opt::kConeGrain,
                                  recomputeBatch);
            else
                recomputeBatch(0, batch.size());
            for (std::size_t k = 0; k < batch.size(); ++k) {
                const std::uint64_t v = order_[batch[k]];
                if (newT[k] == cur[v])
                    continue;
                cur[v] = newT[k];
                if (!changedFlag[v]) {
                    changedFlag[v] = 1;
                    changedNodes.push_back(v);
                    if (changedNodes.size() > n / 8)
                        return false;
                }
                forEachOutOverlay(v, depths,
                                  [&](std::uint64_t dst, Cycles) {
                                      pendingAt[rank_[dst]] = 1;
                                  });
            }
        }
        return true;
    }

    // Sweep the cached topological order from the first pending node,
    // recomputing pending nodes exactly and marking out-neighbours
    // pending on change. When the cached rank orders the probe's
    // overlay (the common case — see freeze()), one sweep reaches the
    // unique longest-path fixed point; a non-admitted probe's WAR edge
    // pointing across the order, a broken read chain, or a genuine
    // timing cycle leaves a pending node *behind* the sweep position,
    // handled by bounded re-sweeps — chaotic re-evaluation still
    // converges on any DAG — before handing the verdict to the full
    // Kahn pass (which is what proves a cycle).
    for (int sweep = 0; sweep < 4; ++sweep) {
        std::size_t nextMin = n;
        for (std::size_t i = minPos; i < n; ++i) {
            if (!pendingAt[i])
                continue;
            pendingAt[i] = 0;
            const std::uint64_t v = order_[i];
            const Cycles t = recompute(v, cur, depths);
            if (t == cur[v])
                continue;
            cur[v] = t;
            if (!changedFlag[v]) {
                changedFlag[v] = 1;
                changedNodes.push_back(v);
                // A cone this wide means the prediction above missed
                // (e.g. a deepened FIFO whose WAR edges all bound);
                // cut the loss and let the streaming pass finish.
                if (changedNodes.size() > n / 8)
                    return false;
            }
            forEachOutOverlay(v, depths, [&](std::uint64_t dst, Cycles) {
                const std::size_t p = rank_[dst];
                if (!pendingAt[p]) {
                    pendingAt[p] = 1;
                    if (p <= i)
                        nextMin = std::min(nextMin, p);
                }
            });
        }
        if (nextMin == n)
            return true;
        minPos = nextMin;
    }
    return false;
}

bool
CompiledRun::evalConstraint(std::size_t i, const std::vector<Cycles> &time,
                            const std::vector<std::uint32_t> &depths) const
{
    const opt::LayoutCons &c = lay_.cons[i];
    const opt::FifoLayout &fl = lay_.fifos[c.fifo];
    const Cycles at = time[c.node];
    switch (c.kind) {
      case EventKind::FifoNbRead:
      case EventKind::FifoCanRead:
        // Kept read-kind queries always have their target write entry
        // pinned (lattice-prune invariant, identity at -O0).
        return fl.writeNode.size() >= c.index &&
               time[fl.writeNode[c.index - 1]] < at;
      case EventKind::FifoNbWrite:
      case EventKind::FifoCanWrite: {
        const std::uint32_t s = depths[c.fifo];
        if (c.index <= s)
            return true;
        return fl.readNode.size() >= c.index - s &&
               time[fl.readNode[c.index - s - 1]] < at;
      }
      default:
        omnisim_panic("bad constraint kind");
    }
}

CompiledRun::Attempt
CompiledRun::finishWithTimes(const std::vector<Cycles> &time,
                             const std::vector<std::uint32_t> &depths) const
{
    Attempt a;
    a.relaxedNodes = time.size();
    for (std::size_t i = 0; i < lay_.cons.size(); ++i) {
        const bool now = evalConstraint(i, time, depths);
        if (now != lay_.cons[i].outcome) {
            a.status = Attempt::Status::Diverged;
            a.constraintIndex = lay_.cons[i].origIndex;
            a.nowAnswer = now;
            return a;
        }
    }
    a.status = Attempt::Status::Reused;
    Cycles total = lay_.floor;
    for (std::size_t v = 0; v < time.size(); ++v)
        total = std::max(total, time[v] + lay_.dur[v]);
    a.totalCycles = total;
    return a;
}

CompiledRun::Attempt
CompiledRun::resimulate(const std::vector<std::uint32_t> &depths,
                        unsigned jobs) const
{
    omnisim_assert(baselineAcyclic_,
                   "resimulate against an infeasible baseline");

    // Clamp into the finite lattice first: depths beyond writes+1 are
    // provably indistinguishable (see the header comment), and the -O1
    // analyses rely on probes staying inside the lattice.
    const std::vector<std::uint32_t> clamped = clampDepths(depths);

    std::vector<std::size_t> changedFifos;
    for (std::size_t f = 0; f < clamped.size(); ++f)
        if (clamped[f] != baseDepths_[f])
            changedFifos.push_back(f);

    Attempt a;
    if (changedFifos.empty()) {
        // Times are the baseline times; only a lazy-mode repair can
        // diverge, and those constraints are precomputed.
        a.viaDelta = true;
        if (!baselineDivergent_.empty()) {
            const opt::LayoutCons &c =
                lay_.cons[baselineDivergent_.front()];
            a.status = Attempt::Status::Diverged;
            a.constraintIndex = c.origIndex;
            a.nowAnswer = !c.outcome;
            return a;
        }
        a.status = Attempt::Status::Reused;
        a.totalCycles = baseTotal_;
        return a;
    }

    // One lease covers the whole attempt (delta + any full fallback).
    // Small designs, plan-less layouts, and non-admitted probes never
    // touch the team; a lost acquire race (cross-run parallelism
    // already owns the cores) just means this attempt relaxes serially
    // — same bits either way.
    static obs::Counter &mParallelRuns =
        obs::Registry::global().counter("relax.runs.parallel");
    static obs::Counter &mSerialRuns =
        obs::Registry::global().counter("relax.runs.serial");
    RelaxPool::Lease lease;
    const bool admitted = planAdmits(clamped);
    if (admitted && lay_.numNodes >= kParallelMinNodes) {
        lease = RelaxPool::global().tryAcquire(jobs);
        OMNISIM_LOG_TRACE("relax.admit",
                          "nodes=%llu lanes=%u parallel=%d",
                          static_cast<unsigned long long>(lay_.numNodes),
                          lease.lanes(), lease.active() ? 1 : 0);
    } else {
        OMNISIM_LOG_TRACE("relax.reject",
                          "nodes=%llu admitted=%d reason=%s",
                          static_cast<unsigned long long>(lay_.numNodes),
                          admitted ? 1 : 0,
                          admitted ? "below_min_nodes" : "plan_rejects");
    }
    (lease.active() ? mParallelRuns : mSerialRuns).add();

    std::vector<Cycles> cur;
    std::vector<std::uint8_t> changedFlag;
    std::vector<std::uint64_t> changedNodes;
    if (!relaxDelta(clamped, changedFifos, cur, changedFlag,
                    changedNodes, lease)) {
        // Delta too large or the worklist hit its budget (the only way
        // a timing cycle manifests): one exact full pass decides. An
        // admitted probe is certified acyclic by the plan's depth
        // thresholds, so the leveled pass needs no feasibility verdict.
        std::vector<Cycles> time;
        if (planAdmits(clamped)) {
            relaxLeveled(clamped, time, lease);
        } else if (!relaxFull(clamped, time, nullptr)) {
            a.status = Attempt::Status::Infeasible;
            return a;
        }
        return finishWithTimes(time, clamped);
    }

    // Affected constraints only: those referencing a node whose time
    // moved, every write-kind constraint of a changed FIFO (its target
    // read index moved with the depth), and the baseline-divergent set.
    // Checked in recorded order so the first reported divergence is
    // bit-identical to the full pass.
    a.viaDelta = true;
    a.relaxedNodes = changedNodes.size();
    std::vector<std::uint32_t> inds(baselineDivergent_);
    for (const std::size_t f : changedFifos)
        inds.insert(inds.end(), writeConsByFifo_[f].begin(),
                    writeConsByFifo_[f].end());
    for (const std::uint64_t v : changedNodes)
        inds.insert(inds.end(), consIds_.begin() + consOffsets_[v],
                    consIds_.begin() + consOffsets_[v + 1]);
    std::sort(inds.begin(), inds.end());
    inds.erase(std::unique(inds.begin(), inds.end()), inds.end());
    for (const std::uint32_t i : inds) {
        const bool now = evalConstraint(i, cur, clamped);
        if (now != lay_.cons[i].outcome) {
            a.status = Attempt::Status::Diverged;
            a.constraintIndex = lay_.cons[i].origIndex;
            a.nowAnswer = now;
            return a;
        }
    }

    a.status = Attempt::Status::Reused;
    // Total latency: the collapsed-node floor, the best unchanged
    // baseline contribution (first byContrib_ entry outside the changed
    // set — tail slack is folded into dur), improved by the changed
    // nodes' new contributions.
    Cycles total = lay_.floor;
    for (const std::uint64_t v : byContrib_) {
        if (!changedFlag[v]) {
            total = std::max(total, baseTime_[v] + lay_.dur[v]);
            break;
        }
    }
    for (const std::uint64_t v : changedNodes)
        total = std::max(total, cur[v] + lay_.dur[v]);
    a.totalCycles = total;
    return a;
}

} // namespace omnisim
