/**
 * @file
 * Longest-path (critical-path) analysis over a weighted constraint DAG.
 * This is the Finalization step of both LightningSim's Phase 2 and the
 * OmniSim engine: node time = max over in-edges of (src time + weight),
 * seeded with fixed entry times; total latency = max(node time + node
 * duration). Works over any graph type exposing numNodes()/forEachOut()
 * (SimGraph and CsrGraph both do), so the same analysis powers both
 * simulators and the §7.3.1 representation ablation.
 */

#ifndef OMNISIM_GRAPH_LONGEST_PATH_HH
#define OMNISIM_GRAPH_LONGEST_PATH_HH

#include <cstdint>
#include <vector>

#include "support/logging.hh"
#include "support/types.hh"

namespace omnisim
{

/** Outcome of a longest-path evaluation. */
struct PathResult
{
    /** False when the constraint graph has a cycle (timing infeasible —
     *  a FIFO-resizing deadlock during incremental re-simulation). */
    bool acyclic = true;

    /** Per-node start times; valid when acyclic. */
    std::vector<Cycles> time;
};

/**
 * Kahn-style longest path.
 *
 * @param g           graph exposing numNodes()/forEachOut(n, f(dst, w)).
 * @param seed        per-node minimum start times (entry nodes carry their
 *                    fixed start cycle; others usually 0). Must have
 *                    exactly numNodes() entries: an oversized seed would
 *                    leave stale entries past n in the result, and an
 *                    undersized one would silently zero-fill — both are
 *                    caller bugs, diagnosed in every build type.
 * @return            per-node resolved times, or acyclic == false.
 */
template <typename Graph>
PathResult
longestPath(const Graph &g, const std::vector<Cycles> &seed)
{
    const std::size_t n = g.numNodes();
    omnisim_assert(seed.size() == n,
                   "longestPath seed has %zu entries for %zu nodes",
                   seed.size(), n);
    PathResult r;
    r.time.assign(seed.begin(), seed.end());
    r.time.resize(n, 0);

    std::vector<std::uint32_t> indeg(n, 0);
    for (std::size_t u = 0; u < n; ++u)
        g.forEachOut(u, [&](std::uint64_t v, Cycles) { ++indeg[v]; });

    std::vector<std::uint64_t> ready;
    ready.reserve(n);
    for (std::size_t u = 0; u < n; ++u)
        if (indeg[u] == 0)
            ready.push_back(u);

    std::size_t processed = 0;
    while (!ready.empty()) {
        const std::uint64_t u = ready.back();
        ready.pop_back();
        ++processed;
        g.forEachOut(u, [&](std::uint64_t v, Cycles w) {
            if (r.time[u] + w > r.time[v])
                r.time[v] = r.time[u] + w;
            if (--indeg[v] == 0)
                ready.push_back(v);
        });
    }

    r.acyclic = (processed == n);
    return r;
}

} // namespace omnisim

#endif // OMNISIM_GRAPH_LONGEST_PATH_HH
