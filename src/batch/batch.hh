/**
 * @file
 * Parallel batch simulation. A Scenario names one simulation to perform —
 * a registered design, the engine to run it under, a workload seed, and
 * optional FIFO-depth overrides — and a BatchRunner fans a set of
 * scenarios out across a pool of worker threads, collecting per-scenario
 * SimResults plus wall-clock statistics and reporting aggregate
 * throughput in simulations per second.
 *
 * This is the workload shape large-scale design-space exploration
 * produces (sweep many FIFO configurations, compare engines, fuzz depth
 * assignments): thousands of independent simulations whose end-to-end
 * rate matters more than any single run's latency. Every scenario is
 * self-contained — each worker builds its own Design instance and the
 * engines are deterministic — so results are bit-identical regardless of
 * pool size or scheduling order, which tests assert.
 */

#ifndef OMNISIM_BATCH_BATCH_HH
#define OMNISIM_BATCH_BATCH_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/result.hh"
#include "support/sync.hh"

namespace omnisim::batch
{

/** The four simulation engines a scenario can select. */
enum class EngineKind : std::uint8_t
{
    CSim,         ///< Naive C simulation (functionality only).
    Cosim,        ///< Clocked co-simulation, RTL cost modeling off.
    LightningSim, ///< Two-phase decoupled baseline (Type A only).
    OmniSim,      ///< The paper's engine.
};

/** @return a stable CLI-facing name ("csim", "cosim", ...). */
const char *engineKindName(EngineKind e);

/**
 * Parse a CLI engine name.
 * @return false when the name matches no engine (out untouched).
 */
bool parseEngineKind(const std::string &name, EngineKind &out);

/** Override one named FIFO's depth before compilation. */
struct DepthOverride
{
    std::string fifo;
    std::uint32_t depth = 2;
};

/** One simulation to perform. */
struct Scenario
{
    /** Registry name of the design (designs::findDesign). */
    std::string design;

    EngineKind engine = EngineKind::OmniSim;

    /**
     * Workload seed. Seed 0 runs the design exactly as registered; a
     * nonzero seed deterministically perturbs every FIFO depth into
     * [max(1, depth/2), 2*depth] via the shared Prng, modeling the
     * randomized configurations a design-space explorer visits. Explicit
     * DepthOverride entries are applied after the perturbation and win.
     */
    std::uint64_t seed = 0;

    std::vector<DepthOverride> depths;

    /** @return "design/engine/seed[/fifo=N...]" for logs and tables. */
    std::string label() const;
};

/** The outcome of one scenario. */
struct ScenarioOutcome
{
    Scenario scenario;

    /** Engine result; default-constructed when failed is set. */
    SimResult result;

    /** Wall-clock seconds spent on this scenario (build + compile + run). */
    double seconds = 0.0;

    /**
     * True when the scenario never produced an engine result: unknown
     * design name, invalid FIFO override, or an engine exception. A
     * failed scenario is reported here and never aborts the batch.
     */
    bool failed = false;

    /** Explanation when failed is set. */
    std::string error;

    /** @return true when the engine ran and reported SimStatus::Ok. */
    bool ok() const { return !failed && result.status == SimStatus::Ok; }
};

/** Aggregate outcome of a batch. */
struct BatchReport
{
    /** Outcomes in the same order as the submitted scenarios. */
    std::vector<ScenarioOutcome> outcomes;

    /** Worker threads actually used. */
    unsigned jobs = 1;

    /** End-to-end wall-clock seconds for the whole batch. */
    double wallSeconds = 0.0;

    /** @return scenarios whose engine reported Ok. */
    std::size_t okCount() const;

    /** @return scenarios that failed before producing a result. */
    std::size_t failedCount() const;

    /** @return aggregate simulations per second (0 when empty). */
    double throughput() const;
};

/** BatchRunner configuration. */
struct BatchOptions
{
    /** Worker threads; 0 selects std::thread::hardware_concurrency(). */
    unsigned jobs = 0;
};

/**
 * Run one scenario in the calling thread: build the design, apply the
 * seed perturbation and overrides, compile, and dispatch to the selected
 * engine. Never throws — configuration and engine errors are captured in
 * the outcome.
 */
ScenarioOutcome runScenario(const Scenario &s);

/**
 * Fixed-size worker pool executing scenarios in parallel. Stateless
 * between run() calls; one instance can serve any number of batches.
 */
class BatchRunner
{
  public:
    explicit BatchRunner(BatchOptions opts = {});

    /** @return the resolved worker count (>= 1). */
    unsigned jobs() const { return jobs_; }

    /** Execute all scenarios and gather the report. */
    BatchReport run(const std::vector<Scenario> &scenarios) const;

    /**
     * Generic fan-out: invoke fn(i) for every i in [0, n) across the
     * worker pool and block until all calls return. The calling thread
     * is worker 0; extra threads spin up only while the pool is busy.
     * fn must be safe to call concurrently; indices are claimed
     * dynamically, so callers needing determinism must make fn(i)
     * independent of execution order (the DSE subsystem's evaluation
     * waves are built this way). If fn throws, remaining indices are
     * abandoned and the first exception is rethrown on the calling
     * thread after all workers drain.
     */
    void forEachIndex(std::size_t n,
                      const std::function<void(std::size_t)> &fn) const;

  private:
    unsigned jobs_;
};

/**
 * Persistent asynchronous worker pool, the dispatch substrate of the
 * long-lived simulation service (src/serve/). Where BatchRunner fans a
 * known work list out and blocks, a TaskPool accepts tasks one at a
 * time as requests arrive, runs them on a fixed set of resident worker
 * threads, and lets the owner drain in-flight work for graceful
 * shutdown. Tasks are fire-and-forget closures; result delivery is the
 * submitter's business (the serve layer captures a response sink).
 *
 * A task must not throw — every serve request handler does its own
 * error isolation — so an escaping exception is treated as a task bug:
 * it is caught, reported via warn(), and the worker keeps serving.
 */
class TaskPool
{
  public:
    /** @param jobs worker threads; 0 selects hardware_concurrency. */
    explicit TaskPool(unsigned jobs = 0);

    /** Drains pending tasks, then joins the workers. */
    ~TaskPool();

    TaskPool(const TaskPool &) = delete;
    TaskPool &operator=(const TaskPool &) = delete;

    /** @return resident worker count (>= 1). */
    unsigned jobs() const { return static_cast<unsigned>(threads_.size()); }

    /**
     * Enqueue one task. Wakes an idle worker; never blocks beyond the
     * queue lock. Submitting after stop() began is a caller bug.
     */
    void submit(std::function<void()> task) OMNISIM_EXCLUDES(mu_);

    /** Block until every submitted task has finished executing. */
    void drain() OMNISIM_EXCLUDES(mu_);

    /** @return tasks executed to completion so far. */
    std::uint64_t completed() const OMNISIM_EXCLUDES(mu_);

  private:
    void workerMain() OMNISIM_EXCLUDES(mu_);

    mutable sync::Mutex mu_;
    sync::CondVar taskCv_; ///< Wakes workers for new tasks.
    sync::CondVar idleCv_; ///< Wakes drain()/~TaskPool().
    std::deque<std::function<void()>> queue_ OMNISIM_GUARDED_BY(mu_);
    /// Tasks currently executing.
    std::size_t active_ OMNISIM_GUARDED_BY(mu_) = 0;
    std::uint64_t completed_ OMNISIM_GUARDED_BY(mu_) = 0;
    bool stopping_ OMNISIM_GUARDED_BY(mu_) = false;
    /// Filled once in the constructor, joined in the destructor; never
    /// mutated while workers run, so not guarded by mu_.
    std::vector<std::thread> threads_;
};

/**
 * Build the standard exploration batch: every design in the Table 4
 * (Type B/C) and Type A registries — or only the named ones, when
 * onlyDesigns is nonempty — crossed with the given engines and seeds
 * 0..seedsPerDesign-1.
 *
 * @throws FatalError when onlyDesigns names an unregistered design.
 */
std::vector<Scenario>
registryScenarios(const std::vector<EngineKind> &engines,
                  unsigned seedsPerDesign = 1,
                  const std::vector<std::string> &onlyDesigns = {});

} // namespace omnisim::batch

#endif // OMNISIM_BATCH_BATCH_HH
