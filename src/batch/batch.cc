#include "batch/batch.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "core/omnisim.hh"
#include "cosim/cosim.hh"
#include "obs/context.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "csim/csim.hh"
#include "design/frontend.hh"
#include "designs/common.hh"
#include "lightningsim/lightningsim.hh"
#include "support/logging.hh"
#include "support/prng.hh"
#include "support/stopwatch.hh"

namespace omnisim::batch
{

const char *
engineKindName(EngineKind e)
{
    switch (e) {
      case EngineKind::CSim:
        return "csim";
      case EngineKind::Cosim:
        return "cosim";
      case EngineKind::LightningSim:
        return "lightning";
      case EngineKind::OmniSim:
        return "omnisim";
    }
    return "unknown";
}

bool
parseEngineKind(const std::string &name, EngineKind &out)
{
    for (EngineKind e : {EngineKind::CSim, EngineKind::Cosim,
                         EngineKind::LightningSim, EngineKind::OmniSim}) {
        if (name == engineKindName(e)) {
            out = e;
            return true;
        }
    }
    return false;
}

std::string
Scenario::label() const
{
    std::string s = design;
    s += '/';
    s += engineKindName(engine);
    s += strf("/s%llu", static_cast<unsigned long long>(seed));
    for (const auto &ov : depths)
        s += strf("/%s=%u", ov.fifo.c_str(), ov.depth);
    return s;
}

std::size_t
BatchReport::okCount() const
{
    return static_cast<std::size_t>(
        std::count_if(outcomes.begin(), outcomes.end(),
                      [](const ScenarioOutcome &o) { return o.ok(); }));
}

std::size_t
BatchReport::failedCount() const
{
    return static_cast<std::size_t>(
        std::count_if(outcomes.begin(), outcomes.end(),
                      [](const ScenarioOutcome &o) { return o.failed; }));
}

double
BatchReport::throughput() const
{
    if (outcomes.empty() || wallSeconds <= 0.0)
        return 0.0;
    return static_cast<double>(outcomes.size()) / wallSeconds;
}

namespace
{

/** Apply the seed perturbation and explicit overrides to a fresh design. */
void
configureDepths(Design &d, const Scenario &s)
{
    if (s.seed != 0) {
        Prng prng(s.seed);
        for (std::size_t f = 0; f < d.fifos().size(); ++f) {
            const std::uint32_t base = d.fifos()[f].depth;
            const std::uint32_t lo = std::max<std::uint32_t>(1, base / 2);
            const std::uint32_t hi = base * 2;
            d.setFifoDepth(static_cast<FifoId>(f),
                           lo + static_cast<std::uint32_t>(
                                    prng.below(hi - lo + 1)));
        }
    }
    for (const auto &ov : s.depths)
        d.setFifoDepth(d.fifoByName(ov.fifo), ov.depth);
}

SimResult
dispatch(EngineKind engine, const CompiledDesign &cd)
{
    switch (engine) {
      case EngineKind::CSim:
        return simulateCSim(cd);
      case EngineKind::Cosim: {
        // Batch exploration compares functionality and cycle counts;
        // the synthetic gate-sweep cost model would only burn CPU.
        CosimOptions opts;
        opts.modelRtlCost = false;
        return simulateCosim(cd, opts);
      }
      case EngineKind::LightningSim:
        return simulateLightningSim(cd);
      case EngineKind::OmniSim:
        return simulateOmniSim(cd);
    }
    omnisim_fatal("unknown engine kind %d", static_cast<int>(engine));
}

} // namespace

ScenarioOutcome
runScenario(const Scenario &s)
{
    static obs::Counter &mScenarios =
        obs::Registry::global().counter("batch.scenarios");
    static obs::Counter &mFailed =
        obs::Registry::global().counter("batch.scenario_failures");
    static obs::Histogram &mScenarioUs =
        obs::Registry::global().histogram("batch.scenario_us");
    // Each scenario is an entry point: it gets its own correlation id
    // (nested under any surrounding request id on this thread) so its
    // events and spans stitch to one scenario, not one batch.
    obs::CorrelationScope cscope(obs::newCorrelationId());
    OMNISIM_SPAN("batch.scenario");
    obs::ScopedLatencyUs timer(mScenarioUs);
    mScenarios.add();

    ScenarioOutcome out;
    out.scenario = s;
    Stopwatch sw;
    OMNISIM_LOG_DEBUG("batch.scenario", "%s", s.label().c_str());
    try {
        Design d = designs::findDesign(s.design).build();
        configureDepths(d, s);
        const CompiledDesign cd = compile(d);
        out.result = dispatch(s.engine, cd);
    } catch (const std::exception &e) {
        out.failed = true;
        out.error = e.what();
        mFailed.add();
        OMNISIM_LOG_WARN("batch.scenario_failed", "%s: %s",
                         s.label().c_str(), e.what());
    }
    out.seconds = sw.seconds();
    return out;
}

BatchRunner::BatchRunner(BatchOptions opts)
{
    jobs_ = opts.jobs != 0 ? opts.jobs
                           : std::max(1u, std::thread::hardware_concurrency());
}

void
BatchRunner::forEachIndex(std::size_t n,
                          const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;

    // An exception escaping fn on a spawned thread would terminate()
    // the process; capture the first one and rethrow it on the calling
    // thread once every worker has drained.
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    sync::Mutex errorMu;
    std::exception_ptr firstError; // written under errorMu; read post-join
    // Spawned threads start with no correlation context; adopt the
    // caller's so per-index work stays stitched to the parent request.
    const obs::CorrelationId parentCid = obs::currentCorrelationId();
    auto worker = [&]() {
        obs::CorrelationScope cscope(parentCid);
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n || failed.load(std::memory_order_relaxed))
                return;
            try {
                fn(i);
            } catch (...) {
                sync::LockGuard lock(errorMu);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    // The calling thread is worker 0; extra threads only when the work
    // list is big enough to feed them.
    const unsigned extra =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, n) - 1);
    std::vector<std::thread> pool;
    pool.reserve(extra);
    for (unsigned t = 0; t < extra; ++t)
        pool.emplace_back(worker);
    worker();
    for (auto &t : pool)
        t.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

BatchReport
BatchRunner::run(const std::vector<Scenario> &scenarios) const
{
    OMNISIM_SPAN("batch.run");
    BatchReport rep;
    rep.jobs = jobs_;
    rep.outcomes.resize(scenarios.size());
    if (scenarios.empty())
        return rep;

    Stopwatch sw;
    forEachIndex(scenarios.size(), [&](std::size_t i) {
        rep.outcomes[i] = runScenario(scenarios[i]);
    });

    rep.wallSeconds = sw.seconds();
    return rep;
}

// ---------------------------------------------------------------------------
// TaskPool.
// ---------------------------------------------------------------------------

TaskPool::TaskPool(unsigned jobs)
{
    const unsigned n =
        jobs != 0 ? jobs
                  : std::max(1u, std::thread::hardware_concurrency());
    threads_.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        threads_.emplace_back([this] { workerMain(); });
}

TaskPool::~TaskPool()
{
    {
        sync::LockGuard lock(mu_);
        stopping_ = true;
    }
    taskCv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
TaskPool::submit(std::function<void()> task)
{
    // Capture the submitter's correlation id so the worker runs the
    // task under the same context it was enqueued from.
    std::function<void()> wrapped =
        [cid = obs::currentCorrelationId(), task = std::move(task)] {
            obs::CorrelationScope cscope(cid);
            task();
        };
    {
        sync::LockGuard lock(mu_);
        omnisim_assert(!stopping_, "TaskPool: submit after shutdown");
        queue_.push_back(std::move(wrapped));
    }
    taskCv_.notify_one();
}

void
TaskPool::drain()
{
    sync::UniqueLock lock(mu_);
    while (!queue_.empty() || active_ != 0)
        idleCv_.wait(lock);
}

std::uint64_t
TaskPool::completed() const
{
    sync::LockGuard lock(mu_);
    return completed_;
}

void
TaskPool::workerMain()
{
    sync::UniqueLock lock(mu_);
    for (;;) {
        while (!stopping_ && queue_.empty())
            taskCv_.wait(lock);
        if (queue_.empty())
            return; // stopping_, and nothing left to drain
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        try {
            task();
        } catch (const std::exception &e) {
            warn(strf("task pool: task leaked an exception: %s",
                      e.what()));
        } catch (...) {
            warn("task pool: task leaked a non-std exception");
        }
        lock.lock();
        --active_;
        ++completed_;
        if (queue_.empty() && active_ == 0)
            idleCv_.notify_all();
    }
}

std::vector<Scenario>
registryScenarios(const std::vector<EngineKind> &engines,
                  unsigned seedsPerDesign,
                  const std::vector<std::string> &onlyDesigns)
{
    std::vector<std::string> names;
    if (onlyDesigns.empty()) {
        for (const auto *suite :
             {&designs::typeBCDesigns(), &designs::typeADesigns()})
            for (const auto &entry : *suite)
                names.push_back(entry.name);
    } else {
        for (const std::string &n : onlyDesigns) {
            designs::findDesign(n); // typos abort before any work runs
            names.push_back(n);
        }
    }

    std::vector<Scenario> out;
    for (const std::string &name : names) {
        for (EngineKind e : engines) {
            for (unsigned s = 0; s < seedsPerDesign; ++s) {
                Scenario sc;
                sc.design = name;
                sc.engine = e;
                sc.seed = s;
                out.push_back(std::move(sc));
            }
        }
    }
    return out;
}

} // namespace omnisim::batch
