/**
 * @file
 * The OmniSim engine (§5.2, §6, §7 of the paper): flexibly coupled
 * functionality and performance simulation.
 *
 * One Func Sim thread per dataflow module free-runs through the design,
 * committing blocking FIFO accesses directly into per-FIFO timing tables
 * (data structure D of Fig. 7) under fine-grained per-FIFO locks — the
 * fast path that lets Type A designs run fully parallel. Non-blocking
 * accesses and status checks are cycle-dependent queries: when their
 * outcome is already decidable from committed table state they resolve
 * in-place; otherwise the thread pauses in the query pool (E) and the
 * dedicated Perf Sim thread resolves them per Table 2. The task tracker
 * (F) counts runnable threads; when it reaches zero the Perf thread
 * either resolves pending queries, applies the earliest-query-false rule
 * (§7.1, footnote 7: when every target event is unknown, all threads have
 * progressed past the earliest query's cycle, so its target must lie in
 * the future and the query safely resolves false), or — when no queries
 * remain — reports a true design deadlock.
 *
 * Every resolved query is recorded as a constraint; finalization freezes
 * the merged thread logs into a CompiledRun (graph/compiled_run.hh):
 * structural CSR, cached topological order, and baseline longest-path
 * node times over the structure plus depth-synthesized write-after-read
 * edges. That compiled form powers the §7.2 incremental re-simulation:
 * under new FIFO depths only the WAR delta of the changed FIFOs is
 * relaxed over the affected cone, the recorded constraints touching it
 * are re-checked, and only a divergent outcome forces a full re-run.
 */

#ifndef OMNISIM_CORE_OMNISIM_HH
#define OMNISIM_CORE_OMNISIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "design/frontend.hh"
#include "graph/csr.hh"
#include "graph/simgraph.hh"
#include "opt/opt.hh"
#include "runtime/fifo_table.hh"
#include "runtime/result.hh"

namespace omnisim
{

/** Engine configuration. */
struct OmniSimOptions
{
    /**
     * Eager write stalls (default): a blocking write to a full FIFO
     * pauses until space is committed, keeping every live cycle exact.
     * When false, threads performing blocking writes never pause (the
     * paper's T4 optimization, §6.2); finalization repairs their timing,
     * reproducing the paper's small (<0.2%) accuracy deltas on designs
     * whose queries observe the optimistic times. Exposed as an ablation.
     */
    bool eagerWriteStall = true;

    /** Elide empty()/full() checks whose results are unused (§7.3.2). */
    bool elideUnusedChecks = true;

    /** Per-thread op watchdog (guards against runaway designs). */
    std::uint64_t opLimit = 200'000'000;

    /**
     * Debug cross-check: verify that finalization's longest-path times
     * reproduce the live commit cycles exactly (eager mode only).
     */
    bool verifyFinalization = false;

    /**
     * Graph compilation level for the frozen run (src/opt/): -O0 keeps
     * the identity layout; -O1 (default) runs the lattice-prune /
     * chain-collapse / dedup pipeline. Bit-identical resimulate()
     * outcomes at every level — this only trades freeze time for probe
     * and rehydration speed.
     */
    opt::OptLevel optLevel = opt::OptLevel::O1;

    /**
     * Relaxation lanes for the frozen run's solver (1 = serial,
     * 0 = one per hardware thread): the baseline freeze solve and every
     * resimulate() probe fan wide partition levels out across the
     * RelaxPool worker team. Only consulted when the -O1 partition pass
     * certified the design (and it clears the size threshold) — results
     * are bit-identical at any value.
     */
    unsigned jobs = 1;
};

/** A recorded query outcome — the §7.2 constraint. */
struct QueryRecord
{
    FifoId fifo = invalidId;
    EventKind kind = EventKind::FifoNbWrite;
    /** Access index being attempted (the w or r of Table 2). */
    std::uint32_t index = 0;
    /** Graph node of the attempt/check. */
    std::uint64_t node = 0;
    /** True iff the target event had occurred strictly before the op. */
    bool outcome = false;
};

/**
 * Self-contained serializable image of one finished successful run:
 * everything CompiledRun rehydration needs — merged node payloads,
 * structural edges, entry-time seeds, the per-FIFO commit tables, the
 * depth vector the run executed under, the recorded constraints, the
 * module tail anchors — plus the baseline SimResult, so a fresh process
 * can serve resimulate() bit-identically without ever re-tracing
 * (src/io/ persists this structure; §7.2 across process boundaries).
 */
struct RunSnapshot
{
    std::vector<NodeInfo> nodes;
    std::vector<CsrGraph::EdgeSpec> edges;
    std::vector<Cycles> seed;
    std::vector<FifoTable> tables;
    std::vector<std::uint32_t> depths;
    std::vector<QueryRecord> constraints;
    std::vector<std::uint64_t> tailNode;
    std::vector<Cycles> tailSlack;

    /** Baseline result of the recorded run (status is always Ok). */
    SimResult result;
};

/** Outcome of an incremental re-simulation attempt (§7.2 / Table 6). */
struct IncrementalOutcome
{
    /** True when all constraints held and the graph was reused. */
    bool reused = false;

    /** Valid when reused: the re-finalized result (same functional
     *  outputs, new cycle count). */
    SimResult result;

    /** Why reuse failed (constraint diverged / timing cycle). */
    std::string reason;

    /** True when the attempt was served by the frozen CompiledRun
     *  (either path) instead of a per-call graph rebuild. */
    bool viaCompiled = false;

    /** True when the delta worklist alone decided the attempt — the
     *  affected-cone fast path, no full relaxation pass at all. */
    bool viaDelta = false;
};

/**
 * The OmniSim simulator. Construct once per design configuration, call
 * run(), then optionally probe alternative FIFO depths with
 * resimulate().
 */
class OmniSim
{
  public:
    explicit OmniSim(const CompiledDesign &cd, OmniSimOptions opts = {});
    ~OmniSim();

    /** Execute the full multi-threaded simulation. */
    SimResult run();

    /**
     * Attempt incremental re-simulation under new FIFO depths without
     * re-running the design (requires a prior successful run()).
     *
     * Served by the CompiledRun frozen at the end of run(): the WAR
     * edge delta is diffed for the changed depths only and node times
     * are relaxed over just the affected cone in cached topological
     * order, falling back to one full relaxation pass over the compiled
     * CSR when the delta is too large or may create a timing cycle.
     * Outcomes are bit-identical to resimulateReference().
     */
    IncrementalOutcome resimulate(const std::vector<std::uint32_t> &depths);

    /**
     * Reference implementation of resimulate(): rebuilds the full
     * adjacency-list graph and re-runs Kahn longest path from scratch
     * on every call. Kept as the ground truth the compiled path is
     * tested against (tests/test_compiled_run.cc) and as the baseline
     * bench/dse_throughput.cc measures its speedup over.
     */
    IncrementalOutcome
    resimulateReference(const std::vector<std::uint32_t> &depths);

    /** @return the constraints recorded by the last run. */
    const std::vector<QueryRecord> &constraints() const;

    /**
     * @return pass statistics of the compilation pipeline the last
     * successful run's graph went through (empty pass list at -O0).
     * Requires a prior successful run().
     */
    const opt::CompileStats &compileStats() const;

    /**
     * Copy the frozen image of the last successful run into out (the
     * input to io::encodeRun / io::StoredRun rehydration).
     * @return false when there is no valid completed run to export.
     */
    bool exportSnapshot(RunSnapshot &out) const;

  private:
    struct RunData;

    const CompiledDesign &cd_;
    OmniSimOptions opts_;
    std::unique_ptr<RunData> data_;
};

/** One-shot convenience wrapper around OmniSim::run(). */
SimResult simulateOmniSim(const CompiledDesign &cd,
                          const OmniSimOptions &opts = {});

} // namespace omnisim

#endif // OMNISIM_CORE_OMNISIM_HH
