#include "core/omnisim.hh"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "design/context.hh"
#include "graph/compiled_run.hh"
#include "graph/csr.hh"
#include "graph/longest_path.hh"
#include "graph/war.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/axi.hh"
#include "runtime/memory.hh"
#include "runtime/timing.hh"
#include "support/logging.hh"
#include "support/sync.hh"

namespace omnisim
{

namespace
{

/** Raised inside context calls to unwind a Func Sim thread. */
struct AbortSim
{};

/** One outstanding cycle-dependent query (pool entry, Fig. 7 (E)). */
struct PendingQuery
{
    ModuleId mod = invalidId;
    FifoId fifo = invalidId;
    EventKind kind = EventKind::FifoNbWrite;
    std::uint32_t index = 0; ///< The w/r of Table 2.
    Cycles at = 0;           ///< Hardware cycle of the attempt.
    std::uint64_t node = 0;  ///< Graph node of the attempt.
    Value writeValue = 0;    ///< Payload committed if an NB write succeeds.

    // Resolution results, written by the Perf Sim thread. Not
    // GUARDED_BY-annotated: the entry is only reachable through
    // GlobalShared::pool, so every access already sits inside a
    // gs.mu region.
    bool resolved = false;
    bool answer = false; ///< Target event happened strictly before `at`.
    Value readValue = 0;
};

/** Global orchestration state (task tracker + query pool). */
struct GlobalShared
{
    sync::Mutex mu;
    sync::CondVar perfCv; ///< Wakes the Perf Sim thread.
    sync::CondVar funcCv; ///< Wakes query-paused Func threads.

    /// Task tracker (F): runnable Func threads.
    std::int64_t running OMNISIM_GUARDED_BY(mu) = 0;
    /// Func threads that have not returned.
    std::size_t live OMNISIM_GUARDED_BY(mu) = 0;

    /** Query pool (E). shared_ptr: an aborting Func thread may unwind
     *  while the Perf thread still inspects its query. */
    std::vector<std::shared_ptr<PendingQuery>> pool OMNISIM_GUARDED_BY(mu);
    bool poolDirty OMNISIM_GUARDED_BY(mu) = false;

    /** Counts query insertions. Together with the sum of the per-FIFO
     *  commit mirrors this versions the engine state: the Perf thread
     *  may apply the earliest-query-false rule only when neither has
     *  changed since its resolution pass — a query or commit that raced
     *  in behind the snapshot could make a pool entry resolvable, and
     *  forcing it false would be unsound. */
    std::uint64_t poolInsertions OMNISIM_GUARDED_BY(mu) = 0;

    std::atomic<bool> abort{false};
    bool crashed OMNISIM_GUARDED_BY(mu) = false;
    bool timedOut OMNISIM_GUARDED_BY(mu) = false;
    bool deadlock OMNISIM_GUARDED_BY(mu) = false;
    /// Written by the Perf thread with every lock *dropped* (taking the
    /// per-FIFO locks to compute it under mu would invert the declared
    /// fs.mu -> gs.mu order); only the main thread reads it, after
    /// joining the writer — so deliberately not GUARDED_BY.
    Cycles deadlockCycle = 0;
    std::string crashMessage OMNISIM_GUARDED_BY(mu);

    /**
     * Per-module lower bound on the cycle of any op the thread may
     * still commit (TimingModel::retroFloor, published when the thread
     * pauses; ~0 once it returned). The Perf thread uses these to
     * resolve stuck queries *soundly*: when every other live thread's
     * floor has passed a query's cycle, its target event can only lie
     * in the future — answer false is then exact, not a guess.
     */
    std::vector<Cycles> floors OMNISIM_GUARDED_BY(mu);

    /** Per-module: paused with an open elastic window (retroFloor <
     *  earliest) — the thread's future ops may still land at cycles
     *  before its current op. */
    std::vector<std::uint8_t> retroOpen OMNISIM_GUARDED_BY(mu);

    std::atomic<std::uint64_t> nextNode{0};

    // Statistics.
    std::uint64_t queries OMNISIM_GUARDED_BY(mu) = 0;
    std::uint64_t forcedFalse OMNISIM_GUARDED_BY(mu) = 0;
    std::uint64_t forcedBlind OMNISIM_GUARDED_BY(mu) = 0;
    bool deadlockRetroSuspect OMNISIM_GUARDED_BY(mu) = false;
    std::uint64_t pauses OMNISIM_GUARDED_BY(mu) = 0;
};

/** Shared per-FIFO state: commit table + the blocking fast path. */
struct FifoShared
{
    /** Back-pointer to the run's orchestration state, set once before
     *  the Func threads launch. Exists to make the process-wide lock
     *  order declarable on `mu` below (a paused thread holds its FIFO
     *  lock while it takes the global one, never the reverse); the
     *  analysis only ever names it, nothing dereferences it at run
     *  time. */
    GlobalShared *gs = nullptr;

    sync::Mutex mu OMNISIM_ACQUIRED_BEFORE(gs->mu);
    sync::CondVar cv;
    FifoTable table OMNISIM_GUARDED_BY(mu);
    std::uint32_t depth OMNISIM_GUARDED_BY(mu) = 2;
    bool readerWaiting OMNISIM_GUARDED_BY(mu) = false;
    bool writerWaiting OMNISIM_GUARDED_BY(mu) = false;

    /** Commit counters mirrored outside the lock so that a peer can
     *  spin briefly (lock-free) before paying for a tracked pause. */
    std::atomic<std::uint32_t> writesSeen{0};
    std::atomic<std::uint32_t> readsSeen{0};
};

/** Bounded lock-free spin: wait for cond() a few microseconds before
 *  falling back to a tracked pause. SPSC streams ping-pong at buffer
 *  boundaries; spinning absorbs the common case where the peer commits
 *  within nanoseconds, which is what lets Type A designs run at full
 *  multi-threaded speed (Table 5). */
template <typename Cond>
bool
spinFor(Cond &&cond)
{
    for (int spin = 0; spin < 1024; ++spin) {
        if (cond())
            return true;
        if ((spin & 63) == 63)
            std::this_thread::yield();
    }
    return false;
}

/** Floor value marking a finished thread (passes every gate). */
constexpr Cycles kFloorDone = ~Cycles{0};

/** Node created by a Func thread, merged into the graph at finalization. */
struct NodeRec
{
    std::uint64_t id = 0;
    NodeInfo info;
};

/** Per-thread collection buffers (merged after join — no contention). */
struct ThreadData
{
    std::vector<NodeRec> nodes;
    /** Node-id block allocation (amortizes the shared counter). */
    std::uint64_t nodeNext = 0;
    std::uint64_t nodeEnd = 0;
    std::vector<CsrGraph::EdgeSpec> edges;
    std::vector<QueryRecord> constraints;
    std::uint64_t entryNode = 0;
    std::uint64_t tailNode = 0;
    Cycles tailSlack = 0;
    Cycles finalNow = 0;
    std::uint64_t events = 0;
    std::uint64_t skipped = 0;
};

} // namespace

/** Everything run() produces that resimulate() later needs. */
struct OmniSim::RunData
{
    std::vector<NodeInfo> nodes;
    std::vector<Cycles> seed;
    std::vector<CsrGraph::EdgeSpec> edges;
    std::vector<FifoTable> tables;
    std::vector<std::uint32_t> depthsUsed;
    std::vector<QueryRecord> constraints;
    std::vector<std::uint64_t> tailNode;
    std::vector<Cycles> tailSlack;
    SimResult result;
    bool valid = false;

    /** Frozen form of the finished run: CSR structure, cached topo
     *  order, baseline times. Declared last so it is destroyed first —
     *  it references tables and constraints above. */
    std::unique_ptr<CompiledRun> compiled;
};

namespace
{

/**
 * The OmniSim Func Sim context: free-running trace execution with
 * per-FIFO fast paths and query-pool pauses.
 */
class OmniContext : public Context
{
  public:
    OmniContext(const Design &design, MemoryPool &pool, GlobalShared &gs,
                std::vector<FifoShared> &fifos, ModuleId mod,
                ThreadData &td, const OmniSimOptions &opts, bool lazy)
        : design_(design), pool_(pool), gs_(gs), fifos_(fifos), mod_(mod),
          td_(td), opts_(opts), lazyWrites_(lazy),
          timing_(makeEntry(), 1)
    {}

    TimingModel &timing() { return timing_; }

    // ---- Blocking FIFO fast path ------------------------------------

    Value
    read(FifoId f) override
    {
        bump();
        FifoShared &fs = fifos_[f];
        sync::UniqueLock flk(fs.mu);
        const std::uint32_t r = fs.table.reads() + 1;
        if (fs.table.writes() < r) {
            flk.unlock();
            spinFor([&] {
                return fs.writesSeen.load(std::memory_order_acquire) >= r;
            });
            flk.lock();
            if (fs.table.writes() < r) {
                pausePrepare(fs, /*reader=*/true);
                while (!gs_.abort.load(std::memory_order_relaxed) &&
                       fs.table.writes() < r)
                    fs.cv.wait(flk);
                if (gs_.abort.load(std::memory_order_relaxed))
                    throw AbortSim{};
            }
        }
        const Cycles at =
            std::max(timing_.earliest(), fs.table.writeCycleOf(r) + 1);
        const std::uint64_t node = newNode(EventKind::FifoRead, f, r, 1);
        td_.edges.push_back({fs.table.writeNodeOf(r), node, 1});
        const Value v = fs.table.commitRead(at, node);
        fs.readsSeen.store(fs.table.reads(), std::memory_order_release);
        wakeWriter(fs);
        flk.unlock();
        recordStructural(timing_.commitOp(at, 1, node), node);
        return v;
    }

    void
    write(FifoId f, Value v) override
    {
        bump();
        FifoShared &fs = fifos_[f];
        sync::UniqueLock flk(fs.mu);
        const std::uint32_t w = fs.table.writes() + 1;
        Cycles at;
        if (w <= fs.depth || lazyWrites_) {
            // Space available — or the paper's "threads with only
            // blocking writes never pause" optimization (§6.2), which
            // assumes infinite depth and lets finalization repair timing.
            at = timing_.earliest();
        } else {
            if (fs.table.reads() < w - fs.depth) {
                const std::uint32_t needed = w - fs.depth;
                flk.unlock();
                spinFor([&] {
                    return fs.readsSeen.load(std::memory_order_acquire) >=
                           needed;
                });
                flk.lock();
                if (fs.table.reads() < needed) {
                    pausePrepare(fs, /*reader=*/false);
                    while (!gs_.abort.load(std::memory_order_relaxed) &&
                           fs.table.reads() < needed)
                        fs.cv.wait(flk);
                    if (gs_.abort.load(std::memory_order_relaxed))
                        throw AbortSim{};
                }
            }
            at = std::max(timing_.earliest(),
                          fs.table.readCycleOf(w - fs.depth) + 1);
        }
        const std::uint64_t node = newNode(EventKind::FifoWrite, f, w, 1);
        fs.table.commitWrite(v, at, node);
        fs.writesSeen.store(fs.table.writes(), std::memory_order_release);
        wakeReader(fs);
        flk.unlock();
        recordStructural(timing_.commitOp(at, 1, node), node);
    }

    // ---- Non-blocking accesses (cycle-dependent queries) ------------

    bool
    readNb(FifoId f, Value &out) override
    {
        bump();
        FifoShared &fs = fifos_[f];
        sync::UniqueLock flk(fs.mu);
        const std::uint32_t r = fs.table.reads() + 1;
        const Cycles at = timing_.earliest();
        const std::uint64_t node = newNode(EventKind::FifoNbRead, f, r, 1);

        // Note: no read-after-write edge is recorded for a successful
        // NB read. The op never waits — success already implies the
        // write committed strictly before `at` — so the edge is
        // non-binding here, and materializing it would let incremental
        // re-simulation silently *delay* the attempt under new depths
        // instead of observing that its outcome flips (§7.2 soundness).
        bool answer = false;
        Value v = 0;
        if (fs.table.writes() >= r) {
            // Target already committed: decidable in place.
            answer = fs.table.writeCycleOf(r) < at;
            if (answer) {
                v = fs.table.commitRead(at, node);
                fs.readsSeen.store(fs.table.reads(),
                                   std::memory_order_release);
                wakeWriter(fs);
            }
            flk.unlock();
        } else {
            flk.unlock();
            auto q = std::make_shared<PendingQuery>();
            q->mod = mod_;
            q->fifo = f;
            q->kind = EventKind::FifoNbRead;
            q->index = r;
            q->at = at;
            q->node = node;
            answer = waitQuery(q);
            v = q->readValue;
        }

        td_.constraints.push_back(
            {f, EventKind::FifoNbRead, r, node, answer});
        recordStructural(timing_.commitOp(at, 1, node), node);
        if (answer)
            out = v;
        return answer;
    }

    bool
    writeNb(FifoId f, Value v) override
    {
        bump();
        FifoShared &fs = fifos_[f];
        sync::UniqueLock flk(fs.mu);
        const std::uint32_t w = fs.table.writes() + 1;
        const Cycles at = timing_.earliest();
        const std::uint64_t node = newNode(EventKind::FifoNbWrite, f, w, 1);

        bool answer = false;
        if (w <= fs.depth) {
            answer = true; // Table 2 row 1: w <= S always succeeds.
            fs.table.commitWrite(v, at, node);
            fs.writesSeen.store(fs.table.writes(),
                                std::memory_order_release);
            wakeReader(fs);
            flk.unlock();
        } else if (fs.table.reads() >= w - fs.depth) {
            answer = fs.table.readCycleOf(w - fs.depth) < at;
            if (answer) {
                fs.table.commitWrite(v, at, node);
                fs.writesSeen.store(fs.table.writes(),
                                    std::memory_order_release);
                wakeReader(fs);
            }
            flk.unlock();
        } else {
            flk.unlock();
            auto q = std::make_shared<PendingQuery>();
            q->mod = mod_;
            q->fifo = f;
            q->kind = EventKind::FifoNbWrite;
            q->index = w;
            q->at = at;
            q->node = node;
            q->writeValue = v;
            answer = waitQuery(q);
        }

        td_.constraints.push_back(
            {f, EventKind::FifoNbWrite, w, node, answer});
        recordStructural(timing_.commitOp(at, 1, node), node);
        return answer;
    }

    bool
    empty(FifoId f) override
    {
        bump();
        FifoShared &fs = fifos_[f];
        sync::UniqueLock flk(fs.mu);
        const std::uint32_t next = fs.table.reads() + 1;
        const Cycles at = timing_.earliest();
        const std::uint64_t node =
            newNode(EventKind::FifoCanRead, f, next, 0);

        bool answer; // "the next-th write happened strictly before at"
        if (fs.table.writes() >= next) {
            answer = fs.table.writeCycleOf(next) < at;
            flk.unlock();
        } else {
            flk.unlock();
            auto q = std::make_shared<PendingQuery>();
            q->mod = mod_;
            q->fifo = f;
            q->kind = EventKind::FifoCanRead;
            q->index = next;
            q->at = at;
            q->node = node;
            answer = waitQuery(q);
        }

        td_.constraints.push_back(
            {f, EventKind::FifoCanRead, next, node, answer});
        recordStructural(timing_.commitOp(at, 0, node), node);
        return !answer;
    }

    bool
    full(FifoId f) override
    {
        bump();
        FifoShared &fs = fifos_[f];
        sync::UniqueLock flk(fs.mu);
        const std::uint32_t next = fs.table.writes() + 1;
        const Cycles at = timing_.earliest();
        const std::uint64_t node =
            newNode(EventKind::FifoCanWrite, f, next, 0);

        bool answer;
        if (next <= fs.depth) {
            answer = true;
            flk.unlock();
        } else if (fs.table.reads() >= next - fs.depth) {
            answer = fs.table.readCycleOf(next - fs.depth) < at;
            flk.unlock();
        } else {
            flk.unlock();
            auto q = std::make_shared<PendingQuery>();
            q->mod = mod_;
            q->fifo = f;
            q->kind = EventKind::FifoCanWrite;
            q->index = next;
            q->at = at;
            q->node = node;
            answer = waitQuery(q);
        }

        td_.constraints.push_back(
            {f, EventKind::FifoCanWrite, next, node, answer});
        recordStructural(timing_.commitOp(at, 0, node), node);
        return !answer;
    }

    void
    emptyUnused(FifoId f) override
    {
        if (opts_.elideUnusedChecks) {
            ++td_.skipped; // §7.3.2: replaced by a skippable marker.
            return;
        }
        (void)empty(f);
    }

    void
    fullUnused(FifoId f) override
    {
        if (opts_.elideUnusedChecks) {
            ++td_.skipped;
            return;
        }
        (void)full(f);
    }

    // ---- Memory and AXI ---------------------------------------------

    Value
    load(MemId m, std::uint64_t idx) override
    {
        bump();
        return pool_.load(m, idx);
    }

    void
    store(MemId m, std::uint64_t idx, Value v) override
    {
        bump();
        pool_.store(m, idx, v);
    }

    void
    axiReadReq(AxiId a, std::uint64_t addr, std::uint32_t len) override
    {
        bump();
        const std::uint64_t node = newNode(EventKind::AxiReadReq, a, 0, 1);
        const Cycles at = timing_.earliest();
        recordStructural(timing_.commitOp(at, 1, node), node);
        axiState(a).pushReadReq(addr, len, at, node);
    }

    Value
    axiRead(AxiId a) override
    {
        bump();
        std::uint64_t addr = 0;
        const AxiPortState::Dep dep = axiState(a).popReadBeat(addr);
        const std::uint64_t node = newNode(EventKind::AxiRead, a, 0, 1);
        td_.edges.push_back({dep.tag, node, dep.weight});
        const Cycles at =
            std::max(timing_.earliest(), dep.time + dep.weight);
        recordStructural(timing_.commitOp(at, 1, node), node);
        return pool_.load(design_.axiPorts()[a].backing, addr);
    }

    void
    axiWriteReq(AxiId a, std::uint64_t addr, std::uint32_t len) override
    {
        bump();
        const std::uint64_t node =
            newNode(EventKind::AxiWriteReq, a, 0, 1);
        const Cycles at = timing_.earliest();
        recordStructural(timing_.commitOp(at, 1, node), node);
        axiState(a).pushWriteReq(addr, len, at, node);
    }

    void
    axiWrite(AxiId a, Value v) override
    {
        bump();
        std::uint64_t addr = 0;
        const AxiPortState::Dep dep = axiState(a).popWriteBeat(addr);
        const std::uint64_t node = newNode(EventKind::AxiWrite, a, 0, 1);
        td_.edges.push_back({dep.tag, node, dep.weight});
        const Cycles at =
            std::max(timing_.earliest(), dep.time + dep.weight);
        recordStructural(timing_.commitOp(at, 1, node), node);
        pool_.store(design_.axiPorts()[a].backing, addr, v);
        lastWriteBeatTime_ = at;
        lastWriteBeatNode_ = node;
    }

    void
    axiWriteResp(AxiId a) override
    {
        bump();
        const AxiPortState::Dep dep =
            axiState(a).popWriteResp(lastWriteBeatTime_,
                                     lastWriteBeatNode_);
        const std::uint64_t node =
            newNode(EventKind::AxiWriteResp, a, 0, 1);
        td_.edges.push_back({dep.tag, node, dep.weight});
        const Cycles at =
            std::max(timing_.earliest(), dep.time + dep.weight);
        recordStructural(timing_.commitOp(at, 1, node), node);
    }

    // ---- Timing -------------------------------------------------------

    void advance(Cycles n) override { timing_.advance(n); }
    Cycles now() const override { return timing_.now(); }
    void pipelineBegin(std::uint32_t ii) override
    {
        timing_.pipelineBegin(ii);
    }
    void iterBegin() override { timing_.iterBegin(); }
    void pipelineEnd() override { timing_.pipelineEnd(); }

  private:
    std::uint64_t
    allocNodeId()
    {
        if (td_.nodeNext == td_.nodeEnd) {
            constexpr std::uint64_t blockSize = 4096;
            td_.nodeNext = gs_.nextNode.fetch_add(blockSize);
            td_.nodeEnd = td_.nodeNext + blockSize;
        }
        return td_.nodeNext++;
    }

    std::uint64_t
    makeEntry()
    {
        const std::uint64_t id = allocNodeId();
        td_.nodes.push_back(
            {id, NodeInfo{EventKind::StartTask, mod_, invalidId, 0, 0}});
        td_.entryNode = id;
        return id;
    }

    std::uint64_t
    newNode(EventKind kind, std::int32_t channel, std::uint32_t index,
            Cycles dur)
    {
        const std::uint64_t id = allocNodeId();
        td_.nodes.push_back({id, NodeInfo{kind, mod_, channel, index, dur}});
        return id;
    }

    void
    recordStructural(const std::vector<TimingModel::Constraint> &cs,
                     std::uint64_t node)
    {
        for (const auto &c : cs)
            td_.edges.push_back({c.tag, node, c.weight});
    }

    void
    bump() OMNISIM_EXCLUDES(gs_.mu)
    {
        if (gs_.abort.load(std::memory_order_relaxed))
            throw AbortSim{};
        if (++td_.events > opts_.opLimit) {
            sync::LockGuard g(gs_.mu);
            if (!gs_.timedOut && !gs_.crashed) {
                gs_.timedOut = true;
                gs_.crashMessage = strf(
                    "module '%s' exceeded the op watchdog limit",
                    design_.modules()[mod_].name.c_str());
            }
            gs_.abort.store(true);
            gs_.perfCv.notify_all();
            gs_.funcCv.notify_all();
            throw AbortSim{};
        }
    }

    /**
     * Bookkeeping before a tracked pause on a FIFO condition. The
     * caller holds fs.mu, has already seen the predicate false, and —
     * immediately after this returns — waits on fs.cv in its own
     * explicit loop (keeping the guarded predicate reads inside the
     * annotated locking scope), rethrowing AbortSim on abort. The waker
     * clears the waiting flag and re-increments the task tracker before
     * notifying, so the tracker can never transiently read zero while a
     * wake is in flight.
     */
    void
    pausePrepare(FifoShared &fs, bool reader)
        OMNISIM_REQUIRES(fs.mu) OMNISIM_EXCLUDES(gs_.mu)
    {
        if (reader)
            fs.readerWaiting = true;
        else
            fs.writerWaiting = true;
        sync::LockGuard g(gs_.mu);
        publishFloorLocked();
        --gs_.running;
        ++gs_.pauses;
        if (gs_.running == 0)
            gs_.perfCv.notify_all();
    }

    /** Publish this thread's retroactive floor (must hold gs_.mu). The
     *  Perf thread reads floors only at quiescence, when every thread
     *  has just published at its pause point. */
    void
    publishFloorLocked() OMNISIM_REQUIRES(gs_.mu)
    {
        const Cycles f = timing_.retroFloor();
        gs_.floors[mod_] = f;
        gs_.retroOpen[mod_] = f < timing_.earliest() ? 1 : 0;
    }

    /** Enqueue a query, pause, and return its resolved answer. */
    bool
    waitQuery(const std::shared_ptr<PendingQuery> &q)
        OMNISIM_EXCLUDES(gs_.mu)
    {
        sync::UniqueLock g(gs_.mu);
        publishFloorLocked();
        gs_.pool.push_back(q);
        gs_.poolDirty = true;
        ++gs_.poolInsertions;
        ++gs_.queries;
        --gs_.running;
        ++gs_.pauses;
        gs_.perfCv.notify_all();
        while (!gs_.abort.load(std::memory_order_relaxed) && !q->resolved)
            gs_.funcCv.wait(g);
        if (!q->resolved)
            throw AbortSim{};
        return q->answer;
    }

    void
    wakeReader(FifoShared &fs)
        OMNISIM_REQUIRES(fs.mu) OMNISIM_EXCLUDES(gs_.mu)
    {
        if (fs.readerWaiting) {
            fs.readerWaiting = false;
            {
                sync::LockGuard g(gs_.mu);
                ++gs_.running;
            }
            fs.cv.notify_all();
        }
    }

    void
    wakeWriter(FifoShared &fs)
        OMNISIM_REQUIRES(fs.mu) OMNISIM_EXCLUDES(gs_.mu)
    {
        if (fs.writerWaiting) {
            fs.writerWaiting = false;
            {
                sync::LockGuard g(gs_.mu);
                ++gs_.running;
            }
            fs.cv.notify_all();
        }
    }

    AxiPortState &
    axiState(AxiId a)
    {
        auto it = axi_.find(a);
        if (it == axi_.end()) {
            it = axi_.emplace(a,
                AxiPortState(design_.axiPorts()[a].config)).first;
        }
        return it->second;
    }

    const Design &design_;
    MemoryPool &pool_;
    GlobalShared &gs_;
    std::vector<FifoShared> &fifos_;
    ModuleId mod_;
    ThreadData &td_;
    const OmniSimOptions &opts_;
    bool lazyWrites_;
    TimingModel timing_;
    std::map<AxiId, AxiPortState> axi_;
    Cycles lastWriteBeatTime_ = 0;
    std::uint64_t lastWriteBeatNode_ = 0;
};

/**
 * The Perf Sim thread: resolves queries against the FIFO tables per
 * Table 2, applies the earliest-query-false rule, detects deadlocks.
 */
class PerfSim
{
  public:
    PerfSim(GlobalShared &gs, std::vector<FifoShared> &fifos)
        : gs_(gs), fifos_(fifos)
    {}

    void
    operator()() OMNISIM_EXCLUDES(gs_.mu)
    {
        sync::UniqueLock g(gs_.mu);
        for (;;) {
            while (!(gs_.abort.load() || gs_.live == 0 || gs_.poolDirty ||
                     (gs_.running == 0 && gs_.live > 0)))
                gs_.perfCv.wait(g);
            if (gs_.abort.load() || gs_.live == 0)
                return;
            gs_.poolDirty = false;

            // Resolution pass over a pool snapshot. Table state is read
            // under per-FIFO locks, so the global lock is dropped.
            std::vector<std::shared_ptr<PendingQuery>> snapshot = gs_.pool;
            const std::uint64_t insertions0 = gs_.poolInsertions;
            g.unlock();
            const std::uint64_t commits0 = commitSum();
            std::vector<std::shared_ptr<PendingQuery>> done;
            for (const auto &q : snapshot) {
                if (tryResolve(*q))
                    done.push_back(q);
            }
            g.lock();

            if (!done.empty()) {
                for (const auto &q : done) {
                    std::erase(gs_.pool, q);
                    q->resolved = true;
                    ++gs_.running;
                }
                gs_.funcCv.notify_all();
                continue;
            }

            if (gs_.running == 0 && gs_.live > 0) {
                if (gs_.poolInsertions != insertions0 ||
                    commitSum() != commits0) {
                    // A query or commit raced in behind the resolution
                    // snapshot; some pool entry may now be resolvable.
                    // Re-run the pass before forcing anything false.
                    gs_.poolDirty = true;
                    continue;
                }
                if (!gs_.pool.empty()) {
                    // §7.1 earliest-query-false, in two tiers. First the
                    // provable cases: a query whose every other live
                    // thread's floor has passed its cycle — no future
                    // commit can precede the attempt, so "false" is
                    // exact. Only when no query qualifies fall back to
                    // the blind guess on the earliest (cycle, module)
                    // pool entry, and record that the precondition was
                    // unproven (stats.forcedBlind; the conformance
                    // harness treats such runs as approximations of the
                    // elastic timing fixpoint).
                    std::vector<std::shared_ptr<PendingQuery>> sound;
                    for (const auto &q : gs_.pool) {
                        bool floorsPass = true;
                        for (std::size_t m = 0; m < gs_.floors.size();
                             ++m) {
                            if (static_cast<ModuleId>(m) == q->mod)
                                continue;
                            if (gs_.floors[m] < q->at) {
                                floorsPass = false;
                                break;
                            }
                        }
                        if (floorsPass)
                            sound.push_back(q);
                    }
                    const bool blind = sound.empty();
                    if (blind) {
                        sound.push_back(*std::min_element(
                            gs_.pool.begin(), gs_.pool.end(),
                            [](const std::shared_ptr<PendingQuery> &a,
                               const std::shared_ptr<PendingQuery> &b) {
                                if (a->at != b->at)
                                    return a->at < b->at;
                                return a->mod < b->mod;
                            }));
                        ++gs_.forcedBlind;
                    }
                    for (const auto &q : sound) {
                        std::erase(gs_.pool, q);
                        q->answer = false;
                        q->resolved = true;
                        ++gs_.running;
                        ++gs_.forcedFalse;
                    }
                    gs_.funcCv.notify_all();
                } else {
                    // All threads blocked, nothing pending: deadlock.
                    // Flag it when a paused thread still had an open
                    // elastic window — real pipelined hardware could
                    // have issued its next iteration's ops and possibly
                    // made progress where the serialized engine cannot.
                    gs_.deadlock = true;
                    for (std::size_t m = 0; m < gs_.floors.size(); ++m)
                        if (gs_.floors[m] != kFloorDone &&
                            gs_.retroOpen[m])
                            gs_.deadlockRetroSuspect = true;
                    gs_.abort.store(true);
                    gs_.funcCv.notify_all();
                    // Per-FIFO locks only with the global lock dropped
                    // (same discipline as the resolution pass): paused
                    // threads acquire fs.mu then gs_.mu, so taking them
                    // here nested would invert the order. deadlockCycle
                    // is safe to write unlocked — only the main thread
                    // reads it, after joining this one.
                    g.unlock();
                    gs_.deadlockCycle = maxCommittedCycle();
                    wakeAllFifos();
                    return;
                }
            }
        }
    }

  private:
    bool
    tryResolve(PendingQuery &q) OMNISIM_EXCLUDES(gs_.mu)
    {
        FifoShared &fs = fifos_[q.fifo];
        sync::LockGuard flk(fs.mu);
        switch (q.kind) {
          case EventKind::FifoNbRead:
          case EventKind::FifoCanRead:
            if (fs.table.writes() < q.index)
                return false;
            q.answer = fs.table.writeCycleOf(q.index) < q.at;
            if (q.answer && q.kind == EventKind::FifoNbRead) {
                q.readValue = fs.table.commitRead(q.at, q.node);
                fs.readsSeen.store(fs.table.reads(),
                                   std::memory_order_release);
                wakeWaiter(fs, fs.writerWaiting);
            }
            return true;

          case EventKind::FifoNbWrite:
          case EventKind::FifoCanWrite:
            if (q.index <= fs.depth) {
                q.answer = true;
            } else if (fs.table.reads() >= q.index - fs.depth) {
                q.answer = fs.table.readCycleOf(q.index - fs.depth) < q.at;
            } else {
                return false;
            }
            if (q.answer && q.kind == EventKind::FifoNbWrite) {
                fs.table.commitWrite(q.writeValue, q.at, q.node);
                fs.writesSeen.store(fs.table.writes(),
                                    std::memory_order_release);
                wakeWaiter(fs, fs.readerWaiting);
            }
            return true;

          default:
            omnisim_panic("non-query kind %s in query pool",
                          eventKindName(q.kind));
        }
    }

    /** Wake a blocking-paused peer after a query-driven commit. `flag`
     *  aliases fs.readerWaiting or fs.writerWaiting, which is why the
     *  caller must hold fs.mu. */
    void
    wakeWaiter(FifoShared &fs, bool &flag)
        OMNISIM_REQUIRES(fs.mu) OMNISIM_EXCLUDES(gs_.mu)
    {
        if (flag) {
            flag = false;
            {
                sync::LockGuard g(gs_.mu);
                ++gs_.running;
            }
            fs.cv.notify_all();
        }
    }

    /** Sum of all per-FIFO commit mirrors: the commit half of the
     *  engine state version. */
    std::uint64_t
    commitSum() const
    {
        std::uint64_t sum = 0;
        for (const auto &fs : fifos_) {
            sum += fs.writesSeen.load(std::memory_order_acquire);
            sum += fs.readsSeen.load(std::memory_order_acquire);
        }
        return sum;
    }

    Cycles
    maxCommittedCycle()
    {
        Cycles mx = 0;
        for (auto &fs : fifos_) {
            sync::LockGuard flk(fs.mu);
            const FifoTable &t = fs.table;
            if (t.writes() > 0)
                mx = std::max(mx, t.writeCycleOf(t.writes()));
            if (t.reads() > 0)
                mx = std::max(mx, t.readCycleOf(t.reads()));
        }
        return mx;
    }

    void
    wakeAllFifos()
    {
        for (auto &fs : fifos_) {
            sync::LockGuard flk(fs.mu);
            fs.cv.notify_all();
        }
    }

    GlobalShared &gs_;
    std::vector<FifoShared> &fifos_;
};

} // namespace

OmniSim::OmniSim(const CompiledDesign &cd, OmniSimOptions opts)
    : cd_(cd), opts_(opts)
{}

OmniSim::~OmniSim() = default;

SimResult
OmniSim::run()
{
    // Resolved once; the registry hands back process-lifetime references.
    static obs::Counter &mRuns =
        obs::Registry::global().counter("engine.omnisim.runs");
    static obs::Counter &mEvents =
        obs::Registry::global().counter("engine.omnisim.events");
    static obs::Counter &mQueries =
        obs::Registry::global().counter("engine.omnisim.queries");
    static obs::Histogram &mRunUs =
        obs::Registry::global().histogram("engine.omnisim.run_us");
    OMNISIM_SPAN("omnisim.run");
    obs::ScopedLatencyUs runTimer(mRunUs);
    mRuns.add();

    const Design &design = cd_.d();
    const std::size_t nmods = design.modules().size();
    const std::size_t nfifos = design.fifos().size();
    OMNISIM_LOG_DEBUG("engine.run", "design=%s modules=%zu fifos=%zu",
                      design.name().c_str(), nmods, nfifos);

    // Pre-spawn initialization. No thread exists yet, but the fields
    // are lock-annotated, so initialization takes the (uncontended)
    // locks rather than poking holes in the analysis.
    GlobalShared gs;
    {
        sync::LockGuard g(gs.mu);
        gs.running = static_cast<std::int64_t>(nmods);
        gs.live = nmods;
        gs.floors.assign(nmods, 1);
        gs.retroOpen.assign(nmods, 0);
    }

    std::vector<FifoShared> fifos(nfifos);
    std::vector<std::uint32_t> depths(nfifos);
    for (std::size_t f = 0; f < nfifos; ++f) {
        fifos[f].gs = &gs; // lock-order witness only (see FifoShared)
        sync::LockGuard flk(fifos[f].mu);
        fifos[f].depth = design.fifos()[f].depth;
        depths[f] = design.fifos()[f].depth;
        fifos[f].table.setLabel(design.fifos()[f].name);
    }

    // Write-stall policy. Type A designs have no cycle-dependent
    // queries, so every writer may free-run under the infinite-depth
    // assumption (finalization recomputes exact times through the
    // synthesized WAR edges) — this is what lets the multi-threaded
    // engine beat the single-threaded baseline (Table 5). For designs
    // with queries, stalls stay eager so query resolution sees exact
    // cycles; the lazy option additionally frees the paper's T4 threads
    // (no FIFO reads, only blocking writes) as an ablation.
    const bool pure_type_a = cd_.classification.type == DesignType::A;
    std::vector<bool> lazy(nmods, pure_type_a);
    if (!opts_.eagerWriteStall && !pure_type_a) {
        std::vector<bool> reads_any(nmods, false);
        std::vector<bool> writes_nb(nmods, false);
        for (const auto &f : design.fifos()) {
            reads_any[f.reader] = true;
            if (f.writeKind != AccessKind::Blocking)
                writes_nb[f.writer] = true;
        }
        for (std::size_t m = 0; m < nmods; ++m)
            lazy[m] = !reads_any[m] && !writes_nb[m];
    }
    const bool any_lazy =
        std::any_of(lazy.begin(), lazy.end(), [](bool b) { return b; });

    MemoryPool pool = design.makeMemoryPool();
    std::vector<ThreadData> tdata(nmods);

    auto funcMain = [&](ModuleId m) {
        OmniContext ctx(design, pool, gs, fifos, m, tdata[m], opts_,
                        lazy[m]);
        bool crashed_here = false;
        std::string crash_msg;
        try {
            design.modules()[m].body(ctx);
        } catch (const AbortSim &) {
            // Unwound by abort; tracker slot already released at pause.
        } catch (const SimCrash &c) {
            crashed_here = true;
            crash_msg =
                strf("@E Simulation failed: SIGSEGV (%s in task '%s')",
                     c.what(), design.modules()[m].name.c_str());
        }
        tdata[m].finalNow = ctx.timing().now();
        tdata[m].tailNode = ctx.timing().lastOpTag();
        tdata[m].tailSlack = ctx.timing().now() - ctx.timing().lastOpTime();
        {
            sync::LockGuard g(gs.mu);
            if (crashed_here && !gs.crashed) {
                gs.crashed = true;
                gs.crashMessage = crash_msg;
                gs.abort.store(true);
                gs.funcCv.notify_all();
            }
            gs.floors[m] = kFloorDone; // nothing further can commit
            gs.retroOpen[m] = 0;
            --gs.live;
            --gs.running;
            gs.perfCv.notify_all();
        }
        if (crashed_here) {
            for (auto &fs : fifos) {
                sync::LockGuard flk(fs.mu);
                fs.cv.notify_all();
            }
        }
    };

    // §6.2 step 1: invoke all threads — Func Sim and Perf Sim.
    {
        OMNISIM_SPAN("omnisim.execute");
        std::vector<std::thread> workers;
        workers.reserve(nmods);
        for (ModuleId m : cd_.threadPlan)
            workers.emplace_back(funcMain, m);
        std::thread perf{PerfSim(gs, fifos)};

        for (auto &w : workers)
            w.join();
        {
            // Ensure the Perf thread observes live == 0 and exits.
            sync::LockGuard g(gs.mu);
            gs.perfCv.notify_all();
        }
        perf.join();
    }

    // Every worker and the Perf thread are joined: one final lock pass
    // snapshots the orchestration outcome, and finalization below runs
    // single-threaded on the locals.
    std::uint64_t queries, forcedFalse, forcedBlind, pauses;
    bool crashed, timedOut, deadlock, retroSuspect;
    std::string crashMessage;
    {
        sync::LockGuard g(gs.mu);
        queries = gs.queries;
        forcedFalse = gs.forcedFalse;
        forcedBlind = gs.forcedBlind;
        pauses = gs.pauses;
        crashed = gs.crashed;
        timedOut = gs.timedOut;
        deadlock = gs.deadlock;
        retroSuspect = gs.deadlockRetroSuspect;
        crashMessage = gs.crashMessage;
    }

    OMNISIM_SPAN("omnisim.finalize");

    // ---- Finalization (§6.2): merge thread logs, rebuild timing -----
    data_ = std::make_unique<RunData>();
    RunData &rd = *data_;
    rd.depthsUsed = depths;

    const std::size_t nnodes = gs.nextNode.load();
    rd.nodes.resize(nnodes);
    rd.seed.assign(nnodes, 0);
    rd.tailNode.resize(nmods);
    rd.tailSlack.resize(nmods);
    std::uint64_t events = 0;
    std::uint64_t skipped = 0;
    for (std::size_t m = 0; m < nmods; ++m) {
        const ThreadData &td = tdata[m];
        for (const NodeRec &nr : td.nodes)
            rd.nodes[nr.id] = nr.info;
        rd.seed[td.entryNode] = 1;
        rd.edges.insert(rd.edges.end(), td.edges.begin(), td.edges.end());
        rd.constraints.insert(rd.constraints.end(), td.constraints.begin(),
                              td.constraints.end());
        rd.tailNode[m] = td.tailNode;
        rd.tailSlack[m] = td.tailSlack;
        events += td.events;
        skipped += td.skipped;
    }
    rd.tables.reserve(nfifos);
    for (auto &fs : fifos) {
        sync::LockGuard flk(fs.mu);
        rd.tables.push_back(std::move(fs.table));
    }

    mEvents.add(events);
    mQueries.add(queries);

    SimResult &r = rd.result;
    r.stats.events = events;
    r.stats.queries = queries;
    r.stats.queriesSkipped = skipped;
    r.stats.forcedFalse = forcedFalse;
    r.stats.forcedBlind = forcedBlind;
    r.stats.deadlockRetroSuspect = retroSuspect ? 1 : 0;
    r.stats.threadPauses = pauses;

    for (std::size_t i = 0; i < design.memories().size(); ++i) {
        r.memories[design.memories()[i].name] =
            pool.contents(static_cast<MemId>(i));
    }
    for (std::size_t f = 0; f < rd.tables.size(); ++f) {
        const auto &pending = rd.tables[f].pendingData();
        if (!pending.empty()) {
            r.warnings.push_back(strf(
                "WARNING: Hls::stream '%s' contains leftover data "
                "(%zu elements)",
                design.fifos()[f].name.c_str(), pending.size()));
        }
    }

    if (crashed) {
        r.status = SimStatus::Crash;
        r.message = crashMessage;
        return r;
    }
    if (timedOut) {
        r.status = SimStatus::Timeout;
        r.message = crashMessage;
        return r;
    }
    if (deadlock) {
        r.status = SimStatus::Deadlock;
        r.deadlockCycle = gs.deadlockCycle;
        r.message = strf("unresolvable deadlock detected at cycle %llu",
                         static_cast<unsigned long long>(gs.deadlockCycle));
        return r;
    }

    // Freeze the finished run through the graph compilation pipeline
    // (src/opt/): optimization passes, then CSR structure + cached
    // topological order + baseline longest-path times, computed once.
    // resimulate() serves every later depth vector from this compiled
    // form.
    {
        OMNISIM_SPAN("omnisim.freeze");
        rd.compiled = std::make_unique<CompiledRun>(
            rd.nodes, rd.edges, rd.seed, rd.tables, depths, rd.constraints,
            rd.tailNode, rd.tailSlack, opts_.optLevel, opts_.jobs);
    }
    r.stats.graphNodes = nnodes;
    r.stats.graphEdges = rd.compiled->numEdges();

    if (!rd.compiled->baselineAcyclic()) {
        // Only reachable in lazy mode, which can sail past a stall
        // pattern that real hardware (and eager mode) would deadlock on.
        r.status = SimStatus::Deadlock;
        r.message = "finalization found an infeasible timing cycle";
        return r;
    }
    r.totalCycles = rd.compiled->baselineTotalCycles();

    if (opts_.verifyFinalization && opts_.eagerWriteStall && !any_lazy) {
        // Recompute the times on the *original* graph (the compiled
        // layout renames and collapses nodes, so its solution cannot be
        // indexed by table node ids). This doubles as an independent
        // cross-check of the pipeline's baselineTotalCycles().
        SimGraph graph;
        graph.reserve(rd.nodes.size(), rd.edges.size());
        for (const NodeInfo &info : rd.nodes)
            graph.addNode(info);
        for (const auto &e : rd.edges)
            graph.addEdge(e.src, e.dst, e.weight);
        synthesizeWarEdges(rd.tables, depths,
                           [&](std::uint64_t s, std::uint64_t d, Cycles w) {
                               graph.addEdge(s, d, w);
                           },
                           [&](std::size_t f, std::uint32_t w) {
                               return rd.nodes[rd.tables[f].writeNodeOf(w)]
                                          .kind == EventKind::FifoWrite;
                           });
        const PathResult pr = longestPath(graph, rd.seed);
        omnisim_assert(pr.acyclic,
                       "verify: baseline overlay is cyclic in eager mode");
        const std::vector<Cycles> &time = pr.time;
        Cycles total = 0;
        for (std::size_t v = 0; v < rd.nodes.size(); ++v)
            total = std::max(total, time[v] + rd.nodes[v].duration);
        for (std::size_t m = 0; m < rd.tailNode.size(); ++m)
            total = std::max(total,
                             time[rd.tailNode[m]] + rd.tailSlack[m]);
        omnisim_assert(total == r.totalCycles,
                       "verify: compiled total %llu != reference %llu",
                       static_cast<unsigned long long>(r.totalCycles),
                       static_cast<unsigned long long>(total));
        for (std::size_t f = 0; f < rd.tables.size(); ++f) {
            const FifoTable &t = rd.tables[f];
            for (std::uint32_t i = 1; i <= t.writes(); ++i) {
                omnisim_assert(time[t.writeNodeOf(i)] ==
                               t.writeCycleOf(i),
                               "write %u of fifo %zu: recomputed %llu != "
                               "live %llu", i, f,
                               static_cast<unsigned long long>(
                                   time[t.writeNodeOf(i)]),
                               static_cast<unsigned long long>(
                                   t.writeCycleOf(i)));
            }
            for (std::uint32_t i = 1; i <= t.reads(); ++i) {
                omnisim_assert(time[t.readNodeOf(i)] ==
                               t.readCycleOf(i),
                               "read %u of fifo %zu: recomputed time "
                               "mismatch", i, f);
            }
        }
    }

    rd.valid = true;
    return r;
}

IncrementalOutcome
OmniSim::resimulate(const std::vector<std::uint32_t> &depths)
{
    static obs::Counter &mAttempts =
        obs::Registry::global().counter("engine.resim.attempts");
    static obs::Counter &mDelta =
        obs::Registry::global().counter("engine.resim.delta");
    static obs::Counter &mFullRelax =
        obs::Registry::global().counter("engine.resim.full_relax");
    static obs::Counter &mDiverged =
        obs::Registry::global().counter("engine.resim.diverged");
    static obs::Counter &mInfeasible =
        obs::Registry::global().counter("engine.resim.infeasible");
    static obs::Counter &mReused =
        obs::Registry::global().counter("engine.resim.reused");
    static obs::Histogram &mConeNodes =
        obs::Registry::global().histogram("engine.resim.cone_nodes");
    static obs::Histogram &mResimUs =
        obs::Registry::global().histogram("engine.resim.us");
    // Hot span: fires per incremental request; the flight mirror keeps
    // serve.request / dse.evaluate as the crash-stack context instead.
    OMNISIM_SPAN_HOT("omnisim.resimulate");
    obs::ScopedLatencyUs resimTimer(mResimUs);

    IncrementalOutcome out;
    if (!data_ || !data_->valid) {
        out.reason = "no prior successful run";
        return out;
    }
    const RunData &rd = *data_;
    omnisim_assert(depths.size() == rd.tables.size(),
                   "depth vector size mismatch");
    omnisim_assert(rd.compiled != nullptr, "valid run has no compiled form");

    const CompiledRun::Attempt a =
        rd.compiled->resimulate(depths, opts_.jobs);
    mAttempts.add();
    if (a.viaDelta)
        mDelta.add();
    else
        mFullRelax.add(); // fell back to a full Kahn relaxation pass
    mConeNodes.record(a.relaxedNodes);
    out.viaCompiled = true;
    out.viaDelta = a.viaDelta;
    switch (a.status) {
      case CompiledRun::Attempt::Status::Infeasible:
        mInfeasible.add();
        out.reason = "new depths make the recorded timing infeasible "
                     "(potential deadlock) — full re-simulation required";
        return out;
      case CompiledRun::Attempt::Status::Diverged: {
        mDiverged.add();
        const QueryRecord &qr = rd.constraints[a.constraintIndex];
        out.reason = strf(
            "constraint violated: %s #%u on fifo '%s' would now "
            "resolve %s", eventKindName(qr.kind), qr.index,
            cd_.d().fifos()[qr.fifo].name.c_str(),
            a.nowAnswer ? "true" : "false");
        return out;
      }
      case CompiledRun::Attempt::Status::Reused:
        mReused.add();
        out.reused = true;
        out.result = rd.result;
        out.result.totalCycles = a.totalCycles;
        return out;
    }
    omnisim_panic("bad compiled attempt status");
}

IncrementalOutcome
OmniSim::resimulateReference(const std::vector<std::uint32_t> &depths)
{
    IncrementalOutcome out;
    if (!data_ || !data_->valid) {
        out.reason = "no prior successful run";
        return out;
    }
    const RunData &rd = *data_;
    omnisim_assert(depths.size() == rd.tables.size(),
                   "depth vector size mismatch");

    SimGraph graph;
    graph.reserve(rd.nodes.size(), rd.edges.size());
    for (const NodeInfo &info : rd.nodes)
        graph.addNode(info);
    for (const auto &e : rd.edges)
        graph.addEdge(e.src, e.dst, e.weight);
    synthesizeWarEdges(rd.tables, depths,
                       [&](std::uint64_t s, std::uint64_t d, Cycles w) {
                           graph.addEdge(s, d, w);
                       },
                       [&](std::size_t f, std::uint32_t w) {
                           // Only a blocking write waits for space; a
                           // committed NB write keeps its attempt time
                           // and its recorded constraint decides (§7.2).
                           return rd.nodes[rd.tables[f].writeNodeOf(w)]
                                      .kind == EventKind::FifoWrite;
                       });

    const PathResult pr = longestPath(graph, rd.seed);
    if (!pr.acyclic) {
        out.reason = "new depths make the recorded timing infeasible "
                     "(potential deadlock) — full re-simulation required";
        return out;
    }

    // Re-evaluate every recorded query outcome under the new depths
    // (§7.2): any divergence means control flow would differ.
    for (const QueryRecord &qr : rd.constraints) {
        const FifoTable &t = rd.tables[qr.fifo];
        const std::uint32_t s = depths[qr.fifo];
        const Cycles at = pr.time[qr.node];
        bool now_answer = false;
        switch (qr.kind) {
          case EventKind::FifoNbRead:
          case EventKind::FifoCanRead:
            now_answer = t.writes() >= qr.index &&
                         pr.time[t.writeNodeOf(qr.index)] < at;
            break;
          case EventKind::FifoNbWrite:
          case EventKind::FifoCanWrite:
            if (qr.index <= s) {
                now_answer = true;
            } else {
                now_answer = t.reads() >= qr.index - s &&
                             pr.time[t.readNodeOf(qr.index - s)] < at;
            }
            break;
          default:
            omnisim_panic("bad constraint kind");
        }
        if (now_answer != qr.outcome) {
            out.reason = strf(
                "constraint violated: %s #%u on fifo '%s' would now "
                "resolve %s", eventKindName(qr.kind), qr.index,
                cd_.d().fifos()[qr.fifo].name.c_str(),
                now_answer ? "true" : "false");
            return out;
        }
    }

    out.reused = true;
    out.result = rd.result;
    Cycles total = 0;
    for (std::size_t n = 0; n < rd.nodes.size(); ++n)
        total = std::max(total, pr.time[n] + rd.nodes[n].duration);
    for (std::size_t m = 0; m < rd.tailNode.size(); ++m) {
        total = std::max(total,
                         pr.time[rd.tailNode[m]] + rd.tailSlack[m]);
    }
    out.result.totalCycles = total;
    return out;
}

const std::vector<QueryRecord> &
OmniSim::constraints() const
{
    omnisim_assert(data_ != nullptr, "no run yet");
    return data_->constraints;
}

const opt::CompileStats &
OmniSim::compileStats() const
{
    omnisim_assert(data_ && data_->valid && data_->compiled != nullptr,
                   "no compiled run yet");
    return data_->compiled->compileStats();
}

bool
OmniSim::exportSnapshot(RunSnapshot &out) const
{
    if (!data_ || !data_->valid)
        return false;
    const RunData &rd = *data_;
    out.nodes = rd.nodes;
    out.edges = rd.edges;
    out.seed = rd.seed;
    out.tables = rd.tables;
    out.depths = rd.depthsUsed;
    out.constraints = rd.constraints;
    out.tailNode = rd.tailNode;
    out.tailSlack = rd.tailSlack;
    out.result = rd.result;
    return true;
}

SimResult
simulateOmniSim(const CompiledDesign &cd, const OmniSimOptions &opts)
{
    OmniSim engine(cd, opts);
    return engine.run();
}

} // namespace omnisim
