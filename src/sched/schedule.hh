/**
 * @file
 * Static scheduling algorithms over operation dependence graphs: ASAP and
 * ALAP schedules, resource-constrained list scheduling, and initiation-
 * interval computation (ResMII / RecMII) for pipelined loops. The result
 * is the "HW static schedule" of Fig. 1 that trace-based simulation
 * consumes.
 */

#ifndef OMNISIM_SCHED_SCHEDULE_HH
#define OMNISIM_SCHED_SCHEDULE_HH

#include <vector>

#include "sched/opgraph.hh"
#include "support/types.hh"

namespace omnisim
{

/** A computed static schedule for one region. */
struct StaticSchedule
{
    /** Start cycle of each op, relative to region start (cycle 0). */
    std::vector<Cycles> start;

    /** Total region latency: max(start + latency) over all ops. */
    Cycles latency = 0;
};

/**
 * Unconstrained as-soon-as-possible schedule (intra-iteration deps only).
 * @throws FatalError when intra-iteration dependences form a cycle.
 */
StaticSchedule asapSchedule(const OpGraph &g);

/**
 * As-late-as-possible schedule against the given deadline (must be >=
 * the ASAP latency).
 */
StaticSchedule alapSchedule(const OpGraph &g, Cycles deadline);

/**
 * Resource-constrained list scheduling with ALAP-slack priority.
 * Ops compete for the functional units in res; ties break toward ops
 * with the least slack.
 */
StaticSchedule listSchedule(const OpGraph &g, const Resources &res);

/**
 * Resource-constrained minimum initiation interval:
 * max over resource classes of ceil(uses / units).
 */
Cycles resMii(const OpGraph &g, const Resources &res);

/**
 * Recurrence-constrained minimum initiation interval: the smallest II
 * such that no dependence cycle requires more latency than II times its
 * iteration distance. Computed by binary search over II with a
 * positive-cycle (Bellman-Ford style) feasibility test.
 *
 * @return 1 when the graph has no loop-carried recurrences.
 */
Cycles recMii(const OpGraph &g);

/** Pipelined-loop schedule summary consumed by design builders. */
struct LoopSchedule
{
    Cycles ii = 1;    ///< Initiation interval.
    Cycles depth = 1; ///< Pipeline depth (iteration latency).
};

/**
 * Schedule a pipelined loop body: II = max(ResMII, RecMII), depth = the
 * resource-constrained iteration latency. (Full modulo scheduling is
 * approximated by the list-schedule depth; see DESIGN.md.)
 */
LoopSchedule scheduleLoop(const OpGraph &g, const Resources &res);

} // namespace omnisim

#endif // OMNISIM_SCHED_SCHEDULE_HH
