#include "sched/opgraph.hh"

#include "support/logging.hh"

namespace omnisim
{

Cycles
opLatency(OpKind k)
{
    switch (k) {
      case OpKind::Const:     return 0;
      case OpKind::Add:       return 1;
      case OpKind::Mul:       return 3;
      case OpKind::Div:       return 16;
      case OpKind::Shift:     return 1;
      case OpKind::Select:    return 1;
      case OpKind::Load:      return 2;
      case OpKind::Store:     return 1;
      case OpKind::FifoRead:  return 1;
      case OpKind::FifoWrite: return 1;
    }
    return 1;
}

ResClass
opResource(OpKind k)
{
    switch (k) {
      case OpKind::Const:     return ResClass::None;
      case OpKind::Add:       return ResClass::Alu;
      case OpKind::Mul:       return ResClass::Mul;
      case OpKind::Div:       return ResClass::Div;
      case OpKind::Shift:     return ResClass::Alu;
      case OpKind::Select:    return ResClass::Alu;
      case OpKind::Load:      return ResClass::MemPort;
      case OpKind::Store:     return ResClass::MemPort;
      case OpKind::FifoRead:  return ResClass::None;
      case OpKind::FifoWrite: return ResClass::None;
    }
    return ResClass::None;
}

std::uint32_t
Resources::countOf(ResClass c) const
{
    switch (c) {
      case ResClass::None:    return 0; // interpreted as unbounded
      case ResClass::Alu:     return alu;
      case ResClass::Mul:     return mul;
      case ResClass::Div:     return div;
      case ResClass::MemPort: return memPorts;
    }
    return 0;
}

std::uint32_t
OpGraph::addOp(OpKind kind)
{
    ops_.push_back(kind);
    return static_cast<std::uint32_t>(ops_.size() - 1);
}

void
OpGraph::addDep(std::uint32_t from, std::uint32_t to)
{
    omnisim_assert(from < ops_.size() && to < ops_.size(),
                   "dep (%u -> %u) out of range", from, to);
    omnisim_assert(from != to, "self dependence must be loop-carried");
    deps_.push_back(Dep{from, to, 0});
}

void
OpGraph::addLoopDep(std::uint32_t from, std::uint32_t to,
                    std::uint32_t distance)
{
    omnisim_assert(from < ops_.size() && to < ops_.size(),
                   "loop dep (%u -> %u) out of range", from, to);
    omnisim_assert(distance >= 1, "loop-carried distance must be >= 1");
    deps_.push_back(Dep{from, to, distance});
}

Cycles
OpGraph::totalLatency() const
{
    Cycles sum = 0;
    for (OpKind k : ops_)
        sum += opLatency(k);
    return sum;
}

} // namespace omnisim
