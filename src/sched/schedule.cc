#include "sched/schedule.hh"

#include <algorithm>
#include <cstdint>
#include <map>
#include <queue>

#include "support/logging.hh"

namespace omnisim
{

namespace
{

/** Intra-iteration adjacency + in-degrees (distance-0 deps only). */
struct IntraGraph
{
    std::vector<std::vector<std::uint32_t>> succ;
    std::vector<std::vector<std::uint32_t>> pred;
    std::vector<std::uint32_t> indeg;

    explicit IntraGraph(const OpGraph &g)
        : succ(g.numOps()), pred(g.numOps()), indeg(g.numOps(), 0)
    {
        for (const auto &d : g.deps()) {
            if (d.distance == 0) {
                succ[d.from].push_back(d.to);
                pred[d.to].push_back(d.from);
                ++indeg[d.to];
            }
        }
    }
};

} // namespace

StaticSchedule
asapSchedule(const OpGraph &g)
{
    const std::size_t n = g.numOps();
    IntraGraph ig(g);

    StaticSchedule s;
    s.start.assign(n, 0);

    std::vector<std::uint32_t> indeg = ig.indeg;
    std::queue<std::uint32_t> ready;
    for (std::uint32_t v = 0; v < n; ++v)
        if (indeg[v] == 0)
            ready.push(v);

    std::size_t done = 0;
    while (!ready.empty()) {
        const std::uint32_t v = ready.front();
        ready.pop();
        ++done;
        const Cycles fin = s.start[v] + opLatency(g.kind(v));
        if (fin > s.latency)
            s.latency = fin;
        for (std::uint32_t w : ig.succ[v]) {
            s.start[w] = std::max(s.start[w], fin);
            if (--indeg[w] == 0)
                ready.push(w);
        }
    }
    if (done != n)
        omnisim_fatal("op graph has an intra-iteration dependence cycle");
    return s;
}

StaticSchedule
alapSchedule(const OpGraph &g, Cycles deadline)
{
    const std::size_t n = g.numOps();
    const StaticSchedule asap = asapSchedule(g);
    if (deadline < asap.latency) {
        omnisim_fatal("ALAP deadline %llu below ASAP latency %llu",
                      static_cast<unsigned long long>(deadline),
                      static_cast<unsigned long long>(asap.latency));
    }

    IntraGraph ig(g);
    StaticSchedule s;
    s.start.assign(n, 0);
    s.latency = deadline;

    // Reverse topological order via out-degrees.
    std::vector<std::uint32_t> outdeg(n, 0);
    for (std::uint32_t v = 0; v < n; ++v)
        outdeg[v] = static_cast<std::uint32_t>(ig.succ[v].size());

    std::vector<Cycles> finish(n, deadline);
    std::queue<std::uint32_t> ready;
    for (std::uint32_t v = 0; v < n; ++v)
        if (outdeg[v] == 0)
            ready.push(v);

    while (!ready.empty()) {
        const std::uint32_t v = ready.front();
        ready.pop();
        s.start[v] = finish[v] - opLatency(g.kind(v));
        for (std::uint32_t p : ig.pred[v]) {
            finish[p] = std::min(finish[p], s.start[v]);
            if (--outdeg[p] == 0)
                ready.push(p);
        }
    }
    return s;
}

StaticSchedule
listSchedule(const OpGraph &g, const Resources &res)
{
    const std::size_t n = g.numOps();
    IntraGraph ig(g);
    const StaticSchedule asap = asapSchedule(g);
    const StaticSchedule alap = alapSchedule(g, asap.latency);

    StaticSchedule s;
    s.start.assign(n, 0);

    std::vector<std::uint32_t> remaining = ig.indeg;
    std::vector<bool> scheduled(n, false);
    std::vector<Cycles> readyAt(n, 0); // earliest start per deps
    std::size_t done = 0;
    Cycles cycle = 0;

    while (done < n) {
        // Collect ops whose deps are satisfied and start time has come,
        // sorted by ALAP slack (least slack first).
        std::vector<std::uint32_t> candidates;
        for (std::uint32_t v = 0; v < n; ++v) {
            if (!scheduled[v] && remaining[v] == 0 && readyAt[v] <= cycle)
                candidates.push_back(v);
        }
        std::sort(candidates.begin(), candidates.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      if (alap.start[a] != alap.start[b])
                          return alap.start[a] < alap.start[b];
                      return a < b;
                  });

        std::map<ResClass, std::uint32_t> used;
        for (std::uint32_t v : candidates) {
            const ResClass rc = opResource(g.kind(v));
            if (rc != ResClass::None) {
                if (used[rc] >= res.countOf(rc))
                    continue; // no unit free this cycle
                ++used[rc];
            }
            scheduled[v] = true;
            s.start[v] = cycle;
            ++done;
            const Cycles fin = cycle + opLatency(g.kind(v));
            if (fin > s.latency)
                s.latency = fin;
            for (std::uint32_t w : ig.succ[v]) {
                readyAt[w] = std::max(readyAt[w], fin);
                --remaining[w];
            }
        }
        ++cycle;
        omnisim_assert(cycle < 1'000'000,
                       "list scheduler failed to converge");
    }
    return s;
}

Cycles
resMii(const OpGraph &g, const Resources &res)
{
    std::map<ResClass, std::uint64_t> uses;
    for (std::uint32_t v = 0; v < g.numOps(); ++v)
        ++uses[opResource(g.kind(v))];

    Cycles mii = 1;
    for (const auto &[rc, cnt] : uses) {
        if (rc == ResClass::None)
            continue;
        const std::uint32_t units = res.countOf(rc);
        omnisim_assert(units > 0, "resource class has zero units");
        const Cycles need = (cnt + units - 1) / units;
        mii = std::max(mii, need);
    }
    return mii;
}

namespace
{

/**
 * Feasibility of initiation interval ii: with edge weight
 * latency(from) - ii * distance, the dependence graph must contain no
 * positive-weight cycle. Bellman-Ford style relaxation over all edges.
 */
bool
iiFeasible(const OpGraph &g, Cycles ii)
{
    const std::size_t n = g.numOps();
    std::vector<double> dist(n, 0.0);
    for (std::size_t round = 0; round <= n; ++round) {
        bool changed = false;
        for (const auto &d : g.deps()) {
            const double w =
                static_cast<double>(opLatency(g.kind(d.from))) -
                static_cast<double>(ii) * d.distance;
            if (dist[d.from] + w > dist[d.to]) {
                dist[d.to] = dist[d.from] + w;
                changed = true;
            }
        }
        if (!changed)
            return true;
    }
    return false; // still relaxing after n rounds -> positive cycle
}

} // namespace

Cycles
recMii(const OpGraph &g)
{
    bool any_carried = false;
    for (const auto &d : g.deps())
        if (d.distance > 0)
            any_carried = true;
    if (!any_carried)
        return 1;

    Cycles lo = 1;
    Cycles hi = std::max<Cycles>(1, g.totalLatency());
    omnisim_assert(iiFeasible(g, hi), "no feasible II up to total latency");
    while (lo < hi) {
        const Cycles mid = lo + (hi - lo) / 2;
        if (iiFeasible(g, mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

LoopSchedule
scheduleLoop(const OpGraph &g, const Resources &res)
{
    LoopSchedule ls;
    ls.ii = std::max(resMii(g, res), recMii(g));
    const StaticSchedule body = listSchedule(g, res);
    ls.depth = std::max<Cycles>(1, body.latency);
    return ls;
}

} // namespace omnisim
