/**
 * @file
 * Operation dependence graphs — the input to static scheduling. This is
 * the reproduction's stand-in for the C-synthesis stage of the HLS flow
 * (Fig. 1 of the paper): where Vitis HLS would schedule LLVM IR
 * operations into FSM states and report initiation intervals, Type A
 * benchmark kernels here describe their loop bodies as small operation
 * DAGs and ask the scheduler for the II/depth constants their pipelines
 * replay through the TimingModel.
 */

#ifndef OMNISIM_SCHED_OPGRAPH_HH
#define OMNISIM_SCHED_OPGRAPH_HH

#include <cstdint>
#include <vector>

#include "support/types.hh"

namespace omnisim
{

/** Operation classes with hardware latencies and resource classes. */
enum class OpKind : std::uint8_t
{
    Const,     ///< Literal; zero latency, no resource.
    Add,       ///< Integer add/sub/compare; 1 cycle on an ALU.
    Mul,       ///< Integer multiply; 3 cycles on a multiplier.
    Div,       ///< Integer divide/modulo; 16 cycles on a divider.
    Shift,     ///< Shift/bitwise; 1 cycle on an ALU.
    Select,    ///< Mux; 1 cycle on an ALU.
    Load,      ///< BRAM load; 2 cycles on a memory port.
    Store,     ///< BRAM store; 1 cycle on a memory port.
    FifoRead,  ///< Stream pop; 1 cycle.
    FifoWrite, ///< Stream push; 1 cycle.
};

/** @return the latency in cycles of an operation kind. */
Cycles opLatency(OpKind k);

/** Hardware resource classes for resource-constrained scheduling. */
enum class ResClass : std::uint8_t { None, Alu, Mul, Div, MemPort };

/** @return the resource class an operation kind occupies. */
ResClass opResource(OpKind k);

/** Available functional units per resource class. */
struct Resources
{
    std::uint32_t alu = 2;
    std::uint32_t mul = 1;
    std::uint32_t div = 1;
    std::uint32_t memPorts = 2;

    /** @return the unit count for a class (unbounded for None). */
    std::uint32_t countOf(ResClass c) const;
};

/**
 * An operation dependence graph for one loop body (or straight-line
 * region). Dependences carry an iteration distance: 0 for intra-iteration
 * edges, >= 1 for loop-carried edges (recurrences).
 */
class OpGraph
{
  public:
    /** One dependence edge: to may not start before from finishes. */
    struct Dep
    {
        std::uint32_t from = 0;
        std::uint32_t to = 0;
        std::uint32_t distance = 0; ///< Iteration distance.
    };

    /** Add an operation; @return its id. */
    std::uint32_t addOp(OpKind kind);

    /** Add an intra-iteration dependence from -> to. */
    void addDep(std::uint32_t from, std::uint32_t to);

    /** Add a loop-carried dependence with the given distance (>= 1). */
    void addLoopDep(std::uint32_t from, std::uint32_t to,
                    std::uint32_t distance);

    std::size_t numOps() const { return ops_.size(); }
    OpKind kind(std::uint32_t op) const { return ops_[op]; }
    const std::vector<Dep> &deps() const { return deps_; }

    /** @return sum of all op latencies (an upper bound on any II). */
    Cycles totalLatency() const;

  private:
    std::vector<OpKind> ops_;
    std::vector<Dep> deps_;
};

} // namespace omnisim

#endif // OMNISIM_SCHED_OPGRAPH_HH
